package lasmq_test

import (
	"bytes"
	"math"
	"testing"

	"lasmq"
)

func TestPublicAPIClusterRoundTrip(t *testing.T) {
	specs, err := lasmq.GenerateWorkload(lasmq.DefaultWorkloadConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 100 {
		t.Fatalf("workload has %d jobs, want 100", len(specs))
	}
	mq, err := lasmq.NewScheduler(lasmq.DefaultSchedulerConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, err := lasmq.RunCluster(specs, mq, lasmq.DefaultClusterConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Jobs) != 100 || res.MeanResponseTime() <= 0 {
		t.Fatalf("unexpected result: %d jobs, mean %v", len(res.Jobs), res.MeanResponseTime())
	}
}

func TestPublicAPIBaselines(t *testing.T) {
	for _, p := range []lasmq.Scheduler{
		lasmq.NewFIFO(), lasmq.NewFair(), lasmq.NewLAS(), lasmq.NewSJF(), lasmq.NewSRTF(),
	} {
		if p.Name() == "" {
			t.Error("baseline scheduler without a name")
		}
	}
}

func TestPublicAPIIsolated(t *testing.T) {
	specs, err := lasmq.GenerateWorkload(lasmq.DefaultWorkloadConfig())
	if err != nil {
		t.Fatal(err)
	}
	iso, err := lasmq.RunIsolated(specs[0], lasmq.NewFIFO(), lasmq.DefaultClusterConfig())
	if err != nil {
		t.Fatal(err)
	}
	if iso <= 0 {
		t.Errorf("isolated runtime = %v", iso)
	}
}

func TestPublicAPITraceRoundTrip(t *testing.T) {
	tcfg := lasmq.DefaultFacebookTraceConfig()
	tcfg.Jobs = 300
	specs, err := lasmq.FacebookTrace(tcfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := lasmq.WriteTraceCSV(&buf, specs); err != nil {
		t.Fatal(err)
	}
	back, err := lasmq.ReadTraceCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(specs) {
		t.Fatalf("round trip lost jobs: %d != %d", len(back), len(specs))
	}
	fcfg := lasmq.DefaultFluidConfig()
	fcfg.Capacity = tcfg.Capacity
	res, err := lasmq.RunTrace(back, lasmq.NewLAS(), fcfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.MeanResponseTime() <= 0 {
		t.Errorf("trace mean response = %v", res.MeanResponseTime())
	}
}

func TestPublicAPIUniformTrace(t *testing.T) {
	specs, err := lasmq.UniformTrace(50, 100)
	if err != nil {
		t.Fatal(err)
	}
	res, err := lasmq.RunTrace(specs, lasmq.NewFair(), lasmq.FluidConfig{Capacity: 1, TaskDuration: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Exact processor sharing: every job finishes at n*size.
	for _, jr := range res.Jobs {
		if math.Abs(jr.Completed-5000) > 1e-6 {
			t.Fatalf("job %d completed at %v, want 5000", jr.ID, jr.Completed)
		}
	}
}

func TestPublicAPITableI(t *testing.T) {
	types := lasmq.TableI()
	if len(types) != 8 {
		t.Fatalf("TableI has %d rows, want 8", len(types))
	}
}

func TestPublicAPIFig1(t *testing.T) {
	res, err := lasmq.Fig1()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.LASMQ["A"]-6) > 1e-2 {
		t.Errorf("Fig1 LAS_MQ A = %v, want 6", res.LASMQ["A"])
	}
}

// TestPublicAPISimResult checks that the cluster and fluid results share the
// kernel accumulator: both embed lasmq.SimResult, so substrate-generic code
// can read response-time statistics through one type.
func TestPublicAPISimResult(t *testing.T) {
	mean := func(r *lasmq.SimResult) float64 { return r.MeanResponseTime() }

	spec := lasmq.JobSpec{
		ID: 1, Name: "j", Bin: 1, Priority: 1,
		Stages: []lasmq.StageSpec{{Name: "map", Tasks: []lasmq.TaskSpec{{Duration: 10, Containers: 1}}}},
	}
	cres, err := lasmq.RunCluster([]lasmq.JobSpec{spec}, lasmq.NewFIFO(), lasmq.ClusterConfig{Containers: 1})
	if err != nil {
		t.Fatal(err)
	}
	fres, err := lasmq.RunTrace([]lasmq.TraceJob{{ID: 1, Size: 10, Width: 1, Priority: 1}},
		lasmq.NewFIFO(), lasmq.FluidConfig{Capacity: 1, TaskDuration: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := mean(&cres.Result); got != 10 {
		t.Errorf("cluster mean through SimResult = %v, want 10", got)
	}
	if got := mean(&fres.Result); got != 10 {
		t.Errorf("fluid mean through SimResult = %v, want 10", got)
	}
}
