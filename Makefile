# Development targets for the lasmq reproduction.

GO ?= go

.PHONY: all build vet test test-race race bench reproduce replicate examples clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Race-detector CI gate: the mini-YARN cluster (internal/yarn) and the
# replication engine's worker pool (internal/runner) are the concurrency
# hot spots — run this before merging anything that touches either.
test-race:
	$(GO) test -race ./...

race: test-race

# One bench iteration per figure/table; see EXPERIMENTS.md for paper-scale runs.
bench:
	$(GO) test -bench=. -benchmem -benchtime=1x .

# Regenerate every table and figure at paper scale (writes full_results.txt).
reproduce:
	$(GO) run ./cmd/lasmq-bench -repeats 3 -seed 1 | tee full_results.txt

# Parallel multi-seed reproduction with 95% CIs; resumable via the cache dir.
replicate:
	$(GO) run ./cmd/lasmq-bench -seeds 8 -workers 8 -cache .lasmq-cache

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/adhoc
	$(GO) run ./examples/tracereplay
	$(GO) run ./examples/tuning
	$(GO) run ./examples/miniyarn
	$(GO) run ./examples/sparkdag
	$(GO) run ./examples/geo

clean:
	rm -f full_results.txt test_output.txt bench_output.txt
