# Development targets for the lasmq reproduction.

GO ?= go

.PHONY: all check lint layering build vet test test-race race bench bench-smoke bench-baseline bench-compare probe-gate crosscheck reproduce replicate examples clean

all: build vet test

# Full pre-merge gate: map-range lint, import-layering gate, build, vet,
# tests, race detector, one race-enabled iteration of the engine benchmarks
# (bench-smoke, so the benchmark tier itself cannot rot or race silently),
# the telemetry zero-overhead assertion (probe-gate), and the analytic M/M/1
# cross-check (crosscheck).
check: lint layering build vet test test-race bench-smoke probe-gate crosscheck

# Policy/kernel packages whose float-bearing maps the lint watches.
LINT_PKGS = internal/sched internal/core internal/mlq internal/substrate internal/engine internal/fluid internal/trace internal/yarn

# Guard against the nondeterminism class PR 2 had to fix by hand: iterating
# an unordered map (allocations, demands, rate bounds, attained-service
# tables) while accumulating floats or mutating policy state makes results
# depend on map iteration order. Any `range` over those maps in non-test
# code must carry a same-line `// range-ok: <why order cannot matter>`
# annotation (e.g. keys are sorted before use, or the body does independent
# per-key writes).
lint:
	@bad=$$(grep -rnE 'range +[A-Za-z_.]*(alloc|demand|rates|attained|counts|sums)\b' \
		--include='*.go' $(LINT_PKGS) | grep -v '_test\.go' | grep -v 'range-ok:'; true); \
	if [ -n "$$bad" ]; then \
		echo "lint: unordered map range over float-bearing maps" \
			"(annotate '// range-ok: <reason>' if order cannot matter):"; \
		echo "$$bad"; exit 1; \
	fi
	@echo "lint: ok"

# Layering gate: the canonical streaming Source/JobSpec live in
# internal/substrate, and internal/trace aliases them from there. The trace
# substrate must never import a simulator — that inversion (trace -> fluid)
# is exactly what the substrate hoist removed, so keep it out for good.
layering:
	@bad=$$(grep -rn '"lasmq/internal/fluid"' internal/trace --include='*.go'; true); \
	if [ -n "$$bad" ]; then \
		echo "layering: internal/trace must not import internal/fluid" \
			"(alias streaming types from internal/substrate instead):"; \
		echo "$$bad"; exit 1; \
	fi
	@echo "layering: ok"

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# `go vet` gates the default test flow so vet regressions fail fast.
test: vet
	$(GO) test ./...

# Race-detector CI gate: the mini-YARN cluster (internal/yarn) and the
# replication engine's worker pool (internal/runner) are the concurrency
# hot spots — run this before merging anything that touches either. It also
# runs the incremental-vs-full differential tests (TestIncrementalMatchesFull
# and the registry-level counterpart) under the race detector, covering the
# engine's scratch-buffer reuse.
test-race:
	$(GO) test -race ./...

race: test-race

# One bench iteration per figure/table; see EXPERIMENTS.md for paper-scale runs.
bench:
	$(GO) test -bench=. -benchmem -benchtime=1x .

# Engine performance record (BENCH_engine.json): the heavy end-to-end benches
# run a few fixed iterations, the scheduling-round/Assign micro benches many,
# and lasmq-benchdiff folds both into the committed JSON. Run bench-baseline
# once before an optimization, bench-compare after; the speedup section then
# holds baseline/current ratios (> 1 is an improvement).
HEAVY_BENCH = ^(BenchmarkFig7Heavy|BenchmarkClusterEngine|BenchmarkFluidEngine)$$
MICRO_BENCH = ^(BenchmarkLASMQAssign|BenchmarkFairAssign|BenchmarkLASAssign)$$

bench_engine.out:
	$(GO) test -run '^$$' -bench '$(HEAVY_BENCH)' -benchmem -benchtime=3x . > bench_engine.out
	$(GO) test -run '^$$' -bench '$(MICRO_BENCH)' -benchmem -benchtime=300x . >> bench_engine.out
	$(GO) test -run '^$$' -bench '^BenchmarkScheduleRound$$' -benchmem -benchtime=300x ./internal/engine >> bench_engine.out
	$(GO) test -run '^$$' -bench '^BenchmarkScheduleRoundProbed$$' -benchmem -benchtime=300x ./internal/engine >> bench_engine.out
	$(GO) test -run '^$$' -bench '^BenchmarkScale100k$$' -benchmem -benchtime=1x -timeout 30m . >> bench_engine.out
	$(GO) test -run '^$$' -bench '^BenchmarkScale1M$$' -benchmem -benchtime=1x -timeout 30m . >> bench_engine.out
	$(GO) test -run '^$$' -bench '^BenchmarkScale10M$$' -benchmem -benchtime=1x -timeout 60m . >> bench_engine.out
	$(GO) test -run '^$$' -bench '^BenchmarkScale1MEngineSharded$$' -benchmem -benchtime=1x -timeout 30m . >> bench_engine.out
	$(GO) test -run '^$$' -bench '^BenchmarkScale10MEngineSharded$$' -benchmem -benchtime=1x -timeout 120m . >> bench_engine.out

# One race-enabled iteration of every benchmark in the repo, with the scale
# tiers shrunk via LASMQ_SCALE_JOBS / LASMQ_SCALE1M_JOBS /
# LASMQ_SCALE10M_JOBS (and their _ENGINE_ twins) so the race detector's ~10x
# slowdown stays tolerable. Part of `make check`: it smoke-tests the
# benchmark code paths themselves (Scale100k's concurrent heap sampler, the
# K=4 sharded work-stealing pools of Scale1M/Scale10M, and the K=4 engine
# sharded runs of the EngineSharded tiers — their _WORKERS=4 overrides force
# a real worker pool even on a single-core runner, where the GOMAXPROCS
# default would silently serialize and give the race detector nothing to
# watch) so they can't silently rot between baseline refreshes.
bench-smoke:
	LASMQ_SCALE_JOBS=2000 LASMQ_SCALE1M_JOBS=8000 LASMQ_SCALE1M_SHARDS=4 \
	LASMQ_SCALE10M_JOBS=8000 LASMQ_SCALE10M_SHARDS=4 \
	LASMQ_SCALE1M_ENGINE_JOBS=6000 LASMQ_SCALE1M_ENGINE_SHARDS=4 LASMQ_SCALE1M_ENGINE_WORKERS=4 \
	LASMQ_SCALE10M_ENGINE_JOBS=6000 LASMQ_SCALE10M_ENGINE_SHARDS=4 LASMQ_SCALE10M_ENGINE_WORKERS=4 \
		$(GO) test -race -run '^$$' -bench . -benchtime=1x ./...

# Telemetry must be free when off, and cheap when on: a scheduling round
# with a nil probe may not allocate (testing.AllocsPerRun == 0), and neither
# may recording one flight-recorder ring event or one histogram observation.
# Run -count=1 so a cached pass cannot mask a regression introduced by an
# unrelated package.
probe-gate:
	$(GO) test -run '^TestScheduleRoundNilProbeZeroAlloc$$' -count=1 ./internal/engine
	$(GO) test -run '^TestZeroAlloc' -count=1 ./internal/obs

# Analytic M/M/1 cross-check: drive the fluid and engine substrates with
# M/M/1 workloads at rho in {0.5, 0.7, 0.9} and assert FIFO/PS/SRPT/LAS
# means converge to the closed forms in internal/analytic (-count=1 so a
# cached pass cannot mask drift introduced by a substrate change). Scale up
# with LASMQ_CROSSCHECK_JOBS / LASMQ_CROSSCHECK_SEEDS for a sharper run.
crosscheck:
	$(GO) test -run '^TestCrossCheck' -count=1 ./internal/analytic

.PHONY: bench_engine.out
bench-baseline: bench_engine.out
	$(GO) run ./cmd/lasmq-benchdiff -mode baseline -out BENCH_engine.json < bench_engine.out

bench-compare: bench_engine.out
	$(GO) run ./cmd/lasmq-benchdiff -mode compare -out BENCH_engine.json < bench_engine.out

# Regenerate every table and figure at paper scale (writes full_results.txt).
reproduce:
	$(GO) run ./cmd/lasmq-bench -repeats 3 -seed 1 | tee full_results.txt

# Parallel multi-seed reproduction with 95% CIs; resumable via the cache dir.
replicate:
	$(GO) run ./cmd/lasmq-bench -seeds 8 -workers 8 -cache .lasmq-cache

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/adhoc
	$(GO) run ./examples/tracereplay
	$(GO) run ./examples/tuning
	$(GO) run ./examples/miniyarn
	$(GO) run ./examples/sparkdag
	$(GO) run ./examples/geo

clean:
	rm -f full_results.txt test_output.txt bench_output.txt bench_engine.out
