package lasmq_test

import (
	"context"
	"math"
	"testing"
	"time"

	"lasmq"
)

func TestPublicAPIDFS(t *testing.T) {
	store, err := lasmq.NewDFS(lasmq.DefaultDFSConfig())
	if err != nil {
		t.Fatal(err)
	}
	blocks, err := store.AddFile("/data/x", 300<<20) // 300 MB -> 3 blocks
	if err != nil {
		t.Fatal(err)
	}
	if len(blocks) != 3 {
		t.Fatalf("got %d blocks, want 3", len(blocks))
	}
	loc, err := lasmq.LocalityFromDFS(store, "/data/x", 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(loc.PreferredNodes) != 3 || loc.RemotePenalty != 2 {
		t.Errorf("locality = %+v", loc)
	}
}

func TestPublicAPIGeo(t *testing.T) {
	specs := []lasmq.GeoJob{
		{ID: 1, Name: "q", Priority: 1, Tasks: []lasmq.GeoTask{
			{Compute: 5, DataSite: 0, DataSize: 1},
			{Compute: 5, DataSite: 1, DataSize: 1},
		}},
	}
	cfg := lasmq.DefaultGeoConfig()
	cfg.BandwidthSigma = 0
	res, err := lasmq.RunGeo(specs, lasmq.NewFair(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Jobs[0].ResponseTime-5) > 1e-9 {
		t.Errorf("response = %v, want 5 (both tasks local and parallel)", res.Jobs[0].ResponseTime)
	}
	if res.Placement != lasmq.GeoPlaceLocalityAware {
		t.Errorf("placement = %v", res.Placement)
	}
}

func TestPublicAPIMapReduce(t *testing.T) {
	jobs := []lasmq.MapReduceJob{{
		ID: 1, Name: "wc", Priority: 1,
		Splits:   lasmq.SynthesizeText(4, 50, 10, 1),
		Reducers: 2,
		Map:      lasmq.WordCountMap,
		Reduce:   lasmq.WordCountReduce,
	}}
	mq, err := lasmq.NewScheduler(lasmq.DefaultSchedulerConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, err := lasmq.RunMapReduce(lasmq.DefaultMapReduceClusterConfig(), mq, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Outputs[1]) == 0 {
		t.Error("empty word-count output")
	}
}

func TestPublicAPIAdaptiveScheduler(t *testing.T) {
	s, err := lasmq.NewAdaptiveScheduler(lasmq.DefaultAdaptiveSchedulerConfig())
	if err != nil {
		t.Fatal(err)
	}
	if s.Name() != "LAS_MQ_ADAPTIVE" {
		t.Errorf("Name = %q", s.Name())
	}
	if len(s.Thresholds()) != 9 {
		t.Errorf("thresholds = %v", s.Thresholds())
	}
}

func TestPublicAPILiveCluster(t *testing.T) {
	cfg := lasmq.DefaultLiveClusterConfig()
	cfg.Nodes = 2
	cfg.ContainersPerNode = 4
	cfg.TimeScale = time.Millisecond
	cfg.HeartbeatInterval = 2 * time.Millisecond

	mq, err := lasmq.NewScheduler(lasmq.DefaultSchedulerConfig())
	if err != nil {
		t.Fatal(err)
	}
	cluster, err := lasmq.NewLiveCluster(cfg, mq)
	if err != nil {
		t.Fatal(err)
	}
	cluster.Start()
	defer cluster.Shutdown()

	spec := lasmq.JobSpec{
		ID: 1, Name: "live", Priority: 1,
		Stages: []lasmq.StageSpec{{Name: "map", Tasks: []lasmq.TaskSpec{
			{Duration: 5, Containers: 1}, {Duration: 5, Containers: 1},
		}}},
	}
	if err := cluster.Submit(spec); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := contextWithTimeout(t)
	defer cancel()
	reports, err := cluster.Drain(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 1 || reports[0].Response < 5 {
		t.Errorf("reports = %+v", reports)
	}
}

func contextWithTimeout(t *testing.T) (context.Context, context.CancelFunc) {
	t.Helper()
	return context.WithTimeout(context.Background(), 30*time.Second)
}
