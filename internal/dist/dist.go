// Package dist provides the seeded random distributions used by the workload
// and trace generators. Every function takes an explicit *rand.Rand so that
// all randomness in a simulation flows from seeds owned by the caller and
// identical seeds reproduce identical runs.
package dist

import (
	"fmt"
	"math"
	"math/rand"
)

// New returns a deterministic generator for the given seed.
func New(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// Exponential draws from an exponential distribution with the given mean.
// It returns 0 if mean <= 0.
func Exponential(r *rand.Rand, mean float64) float64 {
	if mean <= 0 {
		return 0
	}
	return r.ExpFloat64() * mean
}

// Lognormal draws exp(N(mu, sigma^2)).
func Lognormal(r *rand.Rand, mu, sigma float64) float64 {
	return math.Exp(mu + sigma*r.NormFloat64())
}

// LognormalMean draws a lognormal sample with the given mean and shape
// parameter sigma. The location parameter is derived as
// mu = ln(mean) - sigma^2/2 so that E[X] = mean.
func LognormalMean(r *rand.Rand, mean, sigma float64) float64 {
	if mean <= 0 {
		return 0
	}
	mu := math.Log(mean) - sigma*sigma/2
	return Lognormal(r, mu, sigma)
}

// BoundedPareto draws from a bounded Pareto distribution on [lo, hi] with
// shape alpha, via inverse-transform sampling.
func BoundedPareto(r *rand.Rand, alpha, lo, hi float64) float64 {
	if lo <= 0 || hi <= lo || alpha <= 0 {
		return lo
	}
	u := r.Float64()
	la := math.Pow(lo, alpha)
	ha := math.Pow(hi, alpha)
	// Inverse CDF of the bounded Pareto.
	x := math.Pow(-(u*ha-u*la-ha)/(ha*la), -1/alpha)
	return math.Min(math.Max(x, lo), hi)
}

// IntBetween draws a uniform integer in [lo, hi] inclusive.
func IntBetween(r *rand.Rand, lo, hi int) int {
	if hi <= lo {
		return lo
	}
	return lo + r.Intn(hi-lo+1)
}

// PoissonProcess generates arrival times of a Poisson process.
type PoissonProcess struct {
	r    *rand.Rand
	mean float64 // mean inter-arrival time
	now  float64
}

// NewPoissonProcess returns a process whose inter-arrival times are
// exponential with the given mean. It returns an error if mean is not
// positive.
func NewPoissonProcess(r *rand.Rand, meanInterval float64) (*PoissonProcess, error) {
	if meanInterval <= 0 {
		return nil, fmt.Errorf("dist: mean interval must be positive, got %v", meanInterval)
	}
	return &PoissonProcess{r: r, mean: meanInterval}, nil
}

// Next returns the next arrival time. Arrival times are strictly
// non-decreasing.
func (p *PoissonProcess) Next() float64 {
	p.now += Exponential(p.r, p.mean)
	return p.now
}
