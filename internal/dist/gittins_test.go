package dist_test

import (
	"math"
	"testing"

	"lasmq/internal/dist"
)

// Regression suite for the Gittins index table builder: the closed-form
// behaviours the scheduler's correctness leans on, plus a fuzz target pinning
// the structural guarantee (finite-or-+Inf, never NaN) on arbitrary degenerate
// distributions.

// TestGittinsExponentialConstant: the exponential distribution is memoryless,
// so its Gittins index is the constant hazard rate 1/mean — the policy
// degrades to FIFO, which is optimal there. The discretized index must be flat
// across the support (up to grid error) and equal to 1/mean.
func TestGittinsExponentialConstant(t *testing.T) {
	const mean = 4.0
	tab := dist.NewGittinsTable(dist.ExpService{M: mean})
	want := 1 / mean
	// Probe inside the bulk of the support; far in the tail the sampled mass
	// underflows and the index legitimately pins to +Inf.
	for _, a := range []float64{0, 0.1, 1, 2, 5, 10, 20, 40} {
		got := tab.Index(a)
		if math.IsNaN(got) {
			t.Fatalf("Index(%v) is NaN", a)
		}
		if rel := math.Abs(got-want) / want; rel > 0.05 {
			t.Errorf("Index(%v) = %v, want constant hazard %v (rel err %.3f)", a, got, want, rel)
		}
	}
}

// TestGittinsPointMassIncreasing: a deterministic size v has index
// G(a) = 1/(v-a) — certain completion after exactly v-a more service — so the
// index must increase with attained service and explode near v. This is the
// property that makes Gittins serve near-deterministic clusters FIFO-style.
func TestGittinsPointMassIncreasing(t *testing.T) {
	const v = 100.0
	tab := dist.NewGittinsTable(dist.PointMass{V: v})
	// Away from the atom the grid is dense relative to v-a and the closed
	// form holds tightly.
	for _, a := range []float64{0, 10, 25, 50, 75} {
		got := tab.Index(a)
		if math.IsNaN(got) {
			t.Fatalf("Index(%v) is NaN", a)
		}
		want := 1 / (v - a)
		if rel := math.Abs(got-want) / want; rel > 0.15 {
			t.Errorf("Index(%v) = %v, want ~1/(v-a) = %v (rel err %.3f)", a, got, want, rel)
		}
	}
	// Near the atom the table reads the greatest grid level <= a, so the
	// value lags the closed form — but monotone increase must survive.
	prev := 0.0
	for _, a := range []float64{0, 10, 25, 50, 75, 90, 99} {
		got := tab.Index(a)
		if got < prev {
			t.Errorf("Index(%v) = %v decreased below %v: point-mass index must increase", a, got, prev)
		}
		prev = got
	}
	if got := tab.Index(2 * v); !math.IsInf(got, 1) {
		t.Errorf("Index past the atom = %v, want +Inf", got)
	}
}

// TestGittinsParetoDecreasing: a heavy-tailed (decreasing-hazard)
// distribution's index decreases with attained service — the more a job has
// run, the longer it is expected to keep running — which is what makes
// least-attained-service scheduling optimal for such workloads.
func TestGittinsParetoDecreasing(t *testing.T) {
	tab := dist.NewGittinsTable(dist.ParetoService{Alpha: 1.5, Lo: 1, Hi: 1e6})
	prev := math.Inf(1)
	for _, a := range []float64{1, 2, 5, 20, 100, 1000, 1e4} {
		got := tab.Index(a)
		if math.IsNaN(got) {
			t.Fatalf("Index(%v) is NaN", a)
		}
		if got > prev {
			t.Errorf("Index(%v) = %v increased above %v: heavy-tail index must decrease", a, got, prev)
		}
		prev = got
	}
}

// TestGittinsZeroMass: past a truncation point (or for an all-zero tail) the
// index must pin to +Inf, never NaN — an essentially-finished job is driven
// to completion rather than dropped to the bottom of the ranking.
func TestGittinsZeroMass(t *testing.T) {
	// Truncated distribution: tail hits zero at Hi.
	tab := dist.NewGittinsTable(dist.ParetoService{Alpha: 2, Lo: 1, Hi: 100})
	for _, a := range []float64{100, 150, 1e6} {
		if got := tab.Index(a); !math.IsInf(got, 1) {
			t.Errorf("Index(%v) past truncation = %v, want +Inf", a, got)
		}
	}
	// Degenerate all-zero-mass service (the constructor rejects an empty
	// sample set, so build the zero-mass case from a zero-size point mass).
	tab = dist.NewGittinsTable(dist.PointMass{V: 0})
	for _, a := range []float64{0, 1, 1e9} {
		got := tab.Index(a)
		if math.IsNaN(got) {
			t.Fatalf("zero-mass Index(%v) is NaN", a)
		}
	}
}

// TestGittinsHeavyTailTruncationFinite: inside the support of a truncated
// heavy tail the index stays finite — truncation must not leak +Inf into
// levels that still carry mass.
func TestGittinsHeavyTailTruncationFinite(t *testing.T) {
	tab := dist.NewGittinsTable(dist.ParetoService{Alpha: 1.1, Lo: 1, Hi: 1e4})
	for _, a := range []float64{1, 10, 100, 5000} {
		got := tab.Index(a)
		if math.IsInf(got, 1) || math.IsNaN(got) || got <= 0 {
			t.Errorf("Index(%v) = %v, want finite positive inside the support", a, got)
		}
	}
}

// TestGittinsBoundaries pins NextBoundary's contract: strictly increasing
// steps through the grid, +Inf at or past the last level.
func TestGittinsBoundaries(t *testing.T) {
	tab := dist.NewGittinsTable(dist.ExpService{M: 1})
	a := 0.0
	for i := 0; i < tab.Levels()+5; i++ {
		next := tab.NextBoundary(a)
		if math.IsNaN(next) {
			t.Fatalf("NextBoundary(%v) is NaN", a)
		}
		if math.IsInf(next, 1) {
			return // walked off the grid
		}
		if next <= a {
			t.Fatalf("NextBoundary(%v) = %v, not strictly greater", a, next)
		}
		a = next
	}
	t.Fatalf("NextBoundary never reached +Inf after %d steps", tab.Levels()+5)
}

// FuzzGittinsTable feeds arbitrary (including degenerate) lognormal-flavoured
// and empirical distributions through the builder and asserts the structural
// guarantee: every queried index is finite or +Inf — never NaN, never
// negative — and NextBoundary always advances.
func FuzzGittinsTable(f *testing.F) {
	f.Add(1.0, 0.5, 10.0, false)
	f.Add(0.0, 0.0, 0.0, false)      // degenerate: zero mean
	f.Add(-3.0, -1.0, -5.0, false)   // negative garbage
	f.Add(1e300, 1e3, 1e308, false)  // overflow territory
	f.Add(2.0, 0.0, 7.0, true)       // empirical point cloud
	f.Add(1e-12, 1e-12, 1e-9, false) // denormal scale
	// Regression: a large negative sigma once drove Upper subnormal, the log
	// grid collapsed to duplicate levels, and NextBoundary(0) stopped
	// advancing.
	f.Add(33.755102040816325, -29.6, 1.0, false)
	f.Fuzz(func(t *testing.T, mean, sigma, probe float64, empirical bool) {
		var s dist.Service
		if empirical {
			// An empirical cloud seeded from the inputs, including repeats
			// (atoms) and unsorted order; when every sample is rejected as
			// degenerate, fall back to the lognormal path.
			emp, err := dist.NewEmpirical([]float64{mean, sigma, mean, probe, sigma})
			if err == nil {
				s = emp
			}
		}
		if s == nil {
			s = dist.LognormalMeanService(mean, sigma)
		}
		tab := dist.NewGittinsTableN(s, 64)
		for _, a := range []float64{0, probe, mean, math.Abs(probe), math.Inf(1), math.NaN()} {
			got := tab.Index(a)
			if math.IsNaN(got) {
				t.Fatalf("Index(%v) is NaN (mean=%v sigma=%v empirical=%v)", a, mean, sigma, empirical)
			}
			if got < 0 {
				t.Fatalf("Index(%v) = %v negative (mean=%v sigma=%v empirical=%v)", a, got, mean, sigma, empirical)
			}
			if !math.IsNaN(a) {
				if nb := tab.NextBoundary(a); !(nb > a) && !math.IsInf(nb, 1) {
					t.Fatalf("NextBoundary(%v) = %v did not advance", a, nb)
				}
			}
		}
	})
}
