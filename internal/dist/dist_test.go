package dist

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewDeterministic(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 100; i++ {
		if got, want := a.Float64(), b.Float64(); got != want {
			t.Fatalf("draw %d: generators diverged: %v != %v", i, got, want)
		}
	}
}

func TestNewDifferentSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Float64() == b.Float64() {
			same++
		}
	}
	if same == 100 {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestExponentialMean(t *testing.T) {
	r := New(7)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += Exponential(r, 50)
	}
	mean := sum / n
	if math.Abs(mean-50) > 1 {
		t.Errorf("exponential mean = %v, want ~50", mean)
	}
}

func TestExponentialNonPositiveMean(t *testing.T) {
	r := New(1)
	if got := Exponential(r, 0); got != 0 {
		t.Errorf("Exponential(r, 0) = %v, want 0", got)
	}
	if got := Exponential(r, -3); got != 0 {
		t.Errorf("Exponential(r, -3) = %v, want 0", got)
	}
}

func TestLognormalMeanMatches(t *testing.T) {
	r := New(9)
	const n = 400000
	var sum float64
	for i := 0; i < n; i++ {
		sum += LognormalMean(r, 20, 1.0)
	}
	mean := sum / n
	if math.Abs(mean-20) > 0.5 {
		t.Errorf("lognormal mean = %v, want ~20", mean)
	}
}

func TestLognormalMeanNonPositive(t *testing.T) {
	r := New(1)
	if got := LognormalMean(r, 0, 1); got != 0 {
		t.Errorf("LognormalMean(r, 0, 1) = %v, want 0", got)
	}
}

func TestLognormalPositive(t *testing.T) {
	r := New(3)
	for i := 0; i < 1000; i++ {
		if v := Lognormal(r, 0, 2); v <= 0 {
			t.Fatalf("lognormal draw %d not positive: %v", i, v)
		}
	}
}

func TestBoundedParetoWithinBounds(t *testing.T) {
	r := New(5)
	const lo, hi = 1.0, 1000.0
	for i := 0; i < 10000; i++ {
		v := BoundedPareto(r, 1.1, lo, hi)
		if v < lo || v > hi {
			t.Fatalf("draw %d out of bounds: %v", i, v)
		}
	}
}

func TestBoundedParetoDegenerateArgs(t *testing.T) {
	r := New(5)
	if got := BoundedPareto(r, 1.1, 0, 10); got != 0 {
		t.Errorf("lo=0: got %v, want 0", got)
	}
	if got := BoundedPareto(r, 1.1, 5, 5); got != 5 {
		t.Errorf("hi==lo: got %v, want 5", got)
	}
	if got := BoundedPareto(r, 0, 5, 10); got != 5 {
		t.Errorf("alpha=0: got %v, want 5", got)
	}
}

func TestBoundedParetoHeavyTail(t *testing.T) {
	// With alpha ~ 1.1 the max of many draws should be far above the median.
	r := New(11)
	var values []float64
	for i := 0; i < 20000; i++ {
		values = append(values, BoundedPareto(r, 1.1, 1, 5000))
	}
	var max, sum float64
	for _, v := range values {
		sum += v
		if v > max {
			max = v
		}
	}
	mean := sum / float64(len(values))
	if max < 20*mean {
		t.Errorf("max %v not heavy-tailed relative to mean %v", max, mean)
	}
}

func TestIntBetween(t *testing.T) {
	r := New(13)
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		v := IntBetween(r, 1, 5)
		if v < 1 || v > 5 {
			t.Fatalf("IntBetween out of range: %d", v)
		}
		seen[v] = true
	}
	for want := 1; want <= 5; want++ {
		if !seen[want] {
			t.Errorf("value %d never drawn in 1000 tries", want)
		}
	}
	if got := IntBetween(r, 4, 4); got != 4 {
		t.Errorf("IntBetween(4,4) = %d, want 4", got)
	}
	if got := IntBetween(r, 7, 3); got != 7 {
		t.Errorf("IntBetween(7,3) = %d, want lo", got)
	}
}

func TestPoissonProcessMonotonic(t *testing.T) {
	p, err := NewPoissonProcess(New(17), 80)
	if err != nil {
		t.Fatal(err)
	}
	prev := 0.0
	for i := 0; i < 1000; i++ {
		next := p.Next()
		if next < prev {
			t.Fatalf("arrival %d went backwards: %v < %v", i, next, prev)
		}
		prev = next
	}
}

func TestPoissonProcessMeanInterval(t *testing.T) {
	p, err := NewPoissonProcess(New(19), 50)
	if err != nil {
		t.Fatal(err)
	}
	const n = 100000
	var last float64
	for i := 0; i < n; i++ {
		last = p.Next()
	}
	mean := last / n
	if math.Abs(mean-50) > 1 {
		t.Errorf("mean interval = %v, want ~50", mean)
	}
}

func TestPoissonProcessRejectsBadMean(t *testing.T) {
	if _, err := NewPoissonProcess(New(1), 0); err == nil {
		t.Error("expected error for zero mean interval")
	}
	if _, err := NewPoissonProcess(New(1), -1); err == nil {
		t.Error("expected error for negative mean interval")
	}
}

func TestBoundedParetoBoundsProperty(t *testing.T) {
	r := New(23)
	f := func(seedDelta uint8) bool {
		lo := 1 + float64(seedDelta%10)
		hi := lo + 100
		v := BoundedPareto(r, 1.3, lo, hi)
		return v >= lo && v <= hi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
