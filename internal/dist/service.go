package dist

import (
	"fmt"
	"math"
	"sort"
)

// Service describes a job (or stage) service-time distribution through its
// complementary CDF. The theory-grounded baselines build on it: the Gittins
// index table (gittins.go) discretizes a Service, and internal/analytic's
// M/G/1 evaluator integrates one numerically. Implementations must return a
// Tail that is non-increasing in x with Tail(0) <= 1; callers defensively
// clamp, but honest tails keep the numerics sharp.
type Service interface {
	// Tail returns P(S > x). Values outside [0,1] are clamped by consumers.
	Tail(x float64) float64
	// Mean returns E[S] (> 0 for any non-degenerate service distribution).
	Mean() float64
	// Upper returns a finite truncation point U with P(S > U) negligible;
	// numeric consumers integrate over [0, U].
	Upper() float64
}

// ExpService is the exponential distribution with the given mean — the
// service law of the M/M/1 cross-check workloads.
type ExpService struct{ M float64 }

// Tail implements Service.
func (e ExpService) Tail(x float64) float64 {
	if x <= 0 {
		return 1
	}
	return math.Exp(-x / e.M)
}

// Mean implements Service.
func (e ExpService) Mean() float64 { return e.M }

// Upper implements Service: 40 means leave tail mass ~4e-18.
func (e ExpService) Upper() float64 { return 40 * e.M }

// LognormalService is exp(N(Mu, Sigma^2)), matching dist.Lognormal draws.
type LognormalService struct{ Mu, Sigma float64 }

// Tail implements Service.
func (l LognormalService) Tail(x float64) float64 {
	if x <= 0 {
		return 1
	}
	if l.Sigma <= 0 {
		if x < math.Exp(l.Mu) {
			return 1
		}
		return 0
	}
	return 0.5 * math.Erfc((math.Log(x)-l.Mu)/(l.Sigma*math.Sqrt2))
}

// Mean implements Service.
func (l LognormalService) Mean() float64 { return math.Exp(l.Mu + l.Sigma*l.Sigma/2) }

// Upper implements Service: 10 sigma above the log-mean.
func (l LognormalService) Upper() float64 { return math.Exp(l.Mu + 10*l.Sigma) }

// LognormalMeanService parameterizes the lognormal by its mean and shape,
// matching dist.LognormalMean draws.
func LognormalMeanService(mean, sigma float64) LognormalService {
	return LognormalService{Mu: math.Log(mean) - sigma*sigma/2, Sigma: sigma}
}

// ParetoService is the bounded Pareto on [Lo, Hi] with shape Alpha, matching
// dist.BoundedPareto draws.
type ParetoService struct{ Alpha, Lo, Hi float64 }

// Tail implements Service.
func (p ParetoService) Tail(x float64) float64 {
	if x <= p.Lo {
		return 1
	}
	if x >= p.Hi {
		return 0
	}
	la := math.Pow(p.Lo, p.Alpha)
	// P(S > x) = (L^a x^-a - L^a H^-a) / (1 - L^a H^-a)
	num := la*math.Pow(x, -p.Alpha) - la*math.Pow(p.Hi, -p.Alpha)
	den := 1 - math.Pow(p.Lo/p.Hi, p.Alpha)
	if den <= 0 {
		return 0
	}
	return num / den
}

// RawMoment returns E[S^k] in closed form (k != Alpha).
func (p ParetoService) RawMoment(k float64) float64 {
	den := 1 - math.Pow(p.Lo/p.Hi, p.Alpha)
	la := math.Pow(p.Lo, p.Alpha)
	return p.Alpha * la / den * (math.Pow(p.Hi, k-p.Alpha) - math.Pow(p.Lo, k-p.Alpha)) / (k - p.Alpha)
}

// Mean implements Service.
func (p ParetoService) Mean() float64 { return p.RawMoment(1) }

// Upper implements Service.
func (p ParetoService) Upper() float64 { return p.Hi }

// PointMass is the deterministic service of size V.
type PointMass struct{ V float64 }

// Tail implements Service.
func (p PointMass) Tail(x float64) float64 {
	if x < p.V {
		return 1
	}
	return 0
}

// Mean implements Service.
func (p PointMass) Mean() float64 { return p.V }

// Upper implements Service.
func (p PointMass) Upper() float64 { return p.V }

// NormalService is the normal distribution truncated to positive values —
// the stage-total model: a stage of n i.i.d. task durations has an
// approximately normal total by the CLT.
type NormalService struct{ Mu, Sigma float64 }

// phi is the standard normal density.
func phi(z float64) float64 { return math.Exp(-z*z/2) / math.Sqrt(2*math.Pi) }

// bigPhi is the standard normal CDF.
func bigPhi(z float64) float64 { return 0.5 * math.Erfc(-z/math.Sqrt2) }

// Tail implements Service: P(X > x | X > 0) for X ~ N(Mu, Sigma^2).
func (n NormalService) Tail(x float64) float64 {
	if x <= 0 {
		return 1
	}
	if n.Sigma <= 0 {
		return PointMass{V: n.Mu}.Tail(x)
	}
	pos := bigPhi(n.Mu / n.Sigma) // P(X > 0)
	if pos <= 0 {
		return 0
	}
	return bigPhi((n.Mu-x)/n.Sigma) / pos
}

// Mean implements Service: the truncated-normal mean
// Mu + Sigma*phi(Mu/Sigma)/Phi(Mu/Sigma).
func (n NormalService) Mean() float64 {
	if n.Sigma <= 0 {
		return n.Mu
	}
	a := n.Mu / n.Sigma
	pos := bigPhi(a)
	if pos <= 0 {
		return 0
	}
	return n.Mu + n.Sigma*phi(a)/pos
}

// Upper implements Service.
func (n NormalService) Upper() float64 {
	u := n.Mu + 10*n.Sigma
	if u <= 0 {
		return math.SmallestNonzeroFloat64
	}
	return u
}

// EmpiricalService is the empirical distribution of observed sizes — the
// oracle a Gittins scheduler would fit from a measured workload.
type EmpiricalService struct {
	sorted []float64
	mean   float64
}

// NewEmpirical builds the empirical distribution of the samples. It returns
// an error when no positive samples exist.
func NewEmpirical(samples []float64) (*EmpiricalService, error) {
	s := make([]float64, 0, len(samples))
	var sum float64
	for _, v := range samples {
		if v > 0 && !math.IsNaN(v) && !math.IsInf(v, 0) {
			s = append(s, v)
			sum += v
		}
	}
	if len(s) == 0 {
		return nil, fmt.Errorf("dist: empirical distribution needs at least one positive sample")
	}
	sort.Float64s(s)
	return &EmpiricalService{sorted: s, mean: sum / float64(len(s))}, nil
}

// Tail implements Service: the fraction of samples strictly above x.
func (e *EmpiricalService) Tail(x float64) float64 {
	i := sort.SearchFloat64s(e.sorted, math.Nextafter(x, math.Inf(1)))
	return float64(len(e.sorted)-i) / float64(len(e.sorted))
}

// Mean implements Service.
func (e *EmpiricalService) Mean() float64 { return e.mean }

// Upper implements Service.
func (e *EmpiricalService) Upper() float64 { return e.sorted[len(e.sorted)-1] }

// MixtureService is a finite mixture of component services — the Table-I
// workload seen as a distribution: each job type is one component weighted by
// its share of the mix.
type MixtureService struct {
	weights []float64 // normalized
	parts   []Service
}

// NewMixture builds a mixture from components and non-negative weights
// (normalized internally). Zero-weight components are dropped.
func NewMixture(parts []Service, weights []float64) (*MixtureService, error) {
	if len(parts) != len(weights) {
		return nil, fmt.Errorf("dist: mixture has %d parts but %d weights", len(parts), len(weights))
	}
	var total float64
	for _, w := range weights {
		if w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
			return nil, fmt.Errorf("dist: mixture weight %v out of range", w)
		}
		total += w
	}
	if total <= 0 {
		return nil, fmt.Errorf("dist: mixture weights sum to %v", total)
	}
	m := &MixtureService{}
	for i, w := range weights {
		if w == 0 {
			continue
		}
		m.weights = append(m.weights, w/total)
		m.parts = append(m.parts, parts[i])
	}
	return m, nil
}

// Tail implements Service.
func (m *MixtureService) Tail(x float64) float64 {
	var t float64
	for i, p := range m.parts {
		t += m.weights[i] * p.Tail(x)
	}
	return t
}

// Mean implements Service.
func (m *MixtureService) Mean() float64 {
	var mean float64
	for i, p := range m.parts {
		mean += m.weights[i] * p.Mean()
	}
	return mean
}

// Upper implements Service.
func (m *MixtureService) Upper() float64 {
	var u float64
	for _, p := range m.parts {
		u = math.Max(u, p.Upper())
	}
	return u
}

// GridService holds a tail precomputed on an ascending grid, with linear
// interpolation in between. Convolve returns one; it is also a convenient
// cache for expensive tails.
type GridService struct {
	xs    []float64
	tails []float64
	mean  float64
}

// Tail implements Service.
func (g *GridService) Tail(x float64) float64 {
	if x <= g.xs[0] {
		return g.tails[0]
	}
	last := len(g.xs) - 1
	if x >= g.xs[last] {
		return g.tails[last]
	}
	i := sort.SearchFloat64s(g.xs, x)
	// xs[i-1] < x <= xs[i]
	x0, x1 := g.xs[i-1], g.xs[i]
	t0, t1 := g.tails[i-1], g.tails[i]
	if x1 == x0 {
		return t1
	}
	return t0 + (t1-t0)*(x-x0)/(x1-x0)
}

// Mean implements Service.
func (g *GridService) Mean() float64 { return g.mean }

// Upper implements Service.
func (g *GridService) Upper() float64 { return g.xs[len(g.xs)-1] }

// Atoms discretizes s into point masses at grid points: weights[i] is the
// probability mass landing in (xs[i-1], xs[i]] (the head cell starts at 0).
// Tails are clamped to [0,1] and forced non-increasing so a sloppy Service
// cannot produce negative masses.
func Atoms(s Service, points int) (xs, weights []float64) {
	xs = grid(s.Upper(), points)
	prev := math.Min(1, math.Max(0, s.Tail(0)))
	weights = make([]float64, len(xs))
	for i, x := range xs {
		t := math.Min(prev, math.Max(0, s.Tail(x)))
		weights[i] = prev - t
		prev = t
	}
	// Any tail mass beyond Upper is assigned to the last atom so the atoms
	// always sum to Tail(0).
	weights[len(weights)-1] += prev
	return xs, weights
}

// grid returns an ascending integration grid over (0, upper]: log-spaced so
// heavy-tailed distributions resolve both the body and the tail, with the
// first point pinned near zero.
func grid(upper float64, points int) []float64 {
	if points < 2 {
		points = 2
	}
	// The 1e-290 floor keeps lo = upper*1e-9 out of the subnormal range,
	// where it would underflow to 0 and collapse the log ladder into
	// duplicate levels.
	if upper < 1e-290 || math.IsInf(upper, 0) || math.IsNaN(upper) {
		upper = 1
	}
	lo := upper * 1e-9
	ratio := math.Pow(upper/lo, 1/float64(points-1))
	xs := make([]float64, points)
	x := lo
	for i := range xs {
		xs[i] = x
		x *= ratio
	}
	xs[points-1] = upper
	return xs
}

// Convolve numerically builds the distribution of A + B — the total service
// of a two-stage job from its per-stage service distributions. A is
// discretized into point masses; the sum's tail is the mass-weighted shift of
// B's tail.
func Convolve(a, b Service, points int) *GridService {
	axs, aw := Atoms(a, points)
	upper := a.Upper() + b.Upper()
	xs := grid(upper, points)
	tails := make([]float64, len(xs))
	for i, x := range xs {
		var t float64
		for k, av := range axs {
			if aw[k] == 0 {
				continue
			}
			if x <= av {
				t += aw[k]
				continue
			}
			t += aw[k] * math.Min(1, math.Max(0, b.Tail(x-av)))
		}
		tails[i] = math.Min(1, t)
	}
	// Force monotone non-increasing (guards numeric wiggle).
	for i := 1; i < len(tails); i++ {
		if tails[i] > tails[i-1] {
			tails[i] = tails[i-1]
		}
	}
	return &GridService{xs: xs, tails: tails, mean: a.Mean() + b.Mean()}
}
