package dist

import (
	"math"
	"sort"
)

// GittinsTable is a discretized Gittins index for an M/G/1 queue: at attained
// service a, the index is
//
//	G(a) = sup_{d>0} P(S - a <= d | S > a) / E[min(S - a, d) | S > a]
//	     = sup_{d>0} (Tail(a) - Tail(a+d)) / Integral_a^{a+d} Tail(t) dt,
//
// the best achievable ratio of completion probability to expected investment.
// Serving the job with the highest index minimizes mean response time among
// non-anticipating policies (Gittins 1989; Aalto-Ayesta-Righter 2009). The
// table evaluates G on a fixed grid of attained-service levels: tails are
// sampled at the grid points, clamped to [0,1] and forced non-increasing so a
// sloppy Service cannot corrupt the index, and the sup over d is taken over
// grid suffixes using trapezoid cumulative integrals. The index is guaranteed
// finite-or-+Inf and never NaN:
//
//   - zero remaining mass (Tail(a) ~ 0, e.g. past a truncation point) gives
//     +Inf — an essentially-finished job should be driven to completion;
//   - a completion atom at the current level (positive probability mass with
//     zero expected investment) also gives +Inf;
//   - zero completion probability over every horizon gives 0.
type GittinsTable struct {
	levels  []float64 // ascending attained-service grid, levels[0] == 0
	indices []float64 // G(levels[i]); finite or +Inf, never NaN
}

// gittinsPoints is the default grid resolution. The build is O(points^2); at
// 512 points it stays well under a millisecond, and tables are built lazily
// once per distribution.
const gittinsPoints = 512

// tailEps is the remaining-mass floor below which a job is considered past
// the distribution's support and its index pinned to +Inf.
const tailEps = 1e-12

// NewGittinsTable discretizes the Gittins index of s at the default
// resolution.
func NewGittinsTable(s Service) *GittinsTable {
	return NewGittinsTableN(s, gittinsPoints)
}

// NewGittinsTableN discretizes at a caller-chosen resolution (minimum 2
// interior points). Tolerates degenerate Services: NaN/negative tails,
// non-monotone tails, zero-mass distributions, and non-finite Upper all
// produce a well-defined (if uninformative) table rather than NaN indices.
func NewGittinsTableN(s Service, points int) *GittinsTable {
	// Attained-service grid: 0 plus a log-spaced ladder to Upper. grid()
	// sanitizes a non-finite or non-positive Upper.
	ladder := grid(s.Upper(), points)
	levels := make([]float64, 0, len(ladder)+1)
	levels = append(levels, 0)
	// Keep the grid strictly increasing — NextBoundary promises to advance,
	// so duplicate or non-finite levels from a degenerate Upper are dropped.
	for _, a := range ladder {
		if a > levels[len(levels)-1] && !math.IsInf(a, 1) {
			levels = append(levels, a)
		}
	}

	// Sample tails, sanitize, and force non-increasing.
	tails := make([]float64, len(levels))
	prev := 1.0
	for i, a := range levels {
		t := s.Tail(a)
		if math.IsNaN(t) || t < 0 {
			t = 0
		}
		if t > prev {
			t = prev
		}
		tails[i] = t
		prev = t
	}

	// Cumulative trapezoid integral of the tail: integ[i] =
	// Integral_0^{levels[i]} Tail(t) dt.
	integ := make([]float64, len(levels))
	for i := 1; i < len(levels); i++ {
		dx := levels[i] - levels[i-1]
		integ[i] = integ[i-1] + dx*(tails[i]+tails[i-1])/2
	}

	// G_i = max over later grid points j of
	// (tails[i] - tails[j]) / (integ[j] - integ[i]).
	indices := make([]float64, len(levels))
	for i := range levels {
		if tails[i] <= tailEps {
			indices[i] = math.Inf(1)
			continue
		}
		best := 0.0
		unbounded := false
		for j := i + 1; j < len(levels); j++ {
			num := tails[i] - tails[j]
			den := integ[j] - integ[i]
			if den <= 0 {
				if num > 0 {
					// Completion mass with zero expected investment: an atom
					// at the current level.
					unbounded = true
					break
				}
				continue
			}
			if g := num / den; g > best {
				best = g
			}
		}
		if unbounded {
			indices[i] = math.Inf(1)
		} else {
			indices[i] = best
		}
	}

	return &GittinsTable{levels: levels, indices: indices}
}

// Index returns the discretized Gittins index at attained service a, using
// the table entry at the greatest grid level <= a. Negative a reads the
// zero-attained entry. The result is finite or +Inf, never NaN.
func (t *GittinsTable) Index(a float64) float64 {
	return t.indices[t.slot(a)]
}

// NextBoundary returns the smallest grid level strictly greater than a, or
// +Inf when a is at or beyond the last level. Schedulers use it to bound how
// long the current index ranking can stay valid while a job accrues service.
func (t *GittinsTable) NextBoundary(a float64) float64 {
	i := t.slot(a)
	if i+1 >= len(t.levels) {
		return math.Inf(1)
	}
	return t.levels[i+1]
}

// Levels returns the number of grid levels (for tests).
func (t *GittinsTable) Levels() int { return len(t.levels) }

// slot returns the index of the greatest grid level <= a.
func (t *GittinsTable) slot(a float64) int {
	if a <= t.levels[0] || math.IsNaN(a) {
		return 0
	}
	// First level strictly greater than a, minus one.
	i := sort.SearchFloat64s(t.levels, a)
	if i < len(t.levels) && t.levels[i] == a {
		return i
	}
	return i - 1
}
