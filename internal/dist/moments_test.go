package dist_test

import (
	"math"
	"math/rand"
	"testing"

	"lasmq/internal/dist"
	"lasmq/internal/stats"
)

// The moment suite checks every generator in this package against its
// analytic mean, variance and coefficient of variation. Each case draws a
// large sample and asserts the empirical moments fall within three standard
// errors of the closed form — a deterministic test (fixed seed) whose bound
// still carries statistical meaning: were the seed random, a correct
// generator would pass ~99.7% of the time per assertion.

const momentDraws = 1_000_000

// TestGeneratorMoments is the table: one row per generator, each with its
// closed-form mean and variance.
func TestGeneratorMoments(t *testing.T) {
	// Bounded-Pareto closed forms come from the matching analytic service
	// distribution — sampler and evaluator must describe the same law.
	pareto := dist.ParetoService{Alpha: 1.5, Lo: 1, Hi: 1000}
	pVar := pareto.RawMoment(2) - pareto.Mean()*pareto.Mean()

	// Lognormal closed forms: E[X] = exp(mu + sigma^2/2),
	// Var[X] = (exp(sigma^2) - 1) E[X]^2.
	lnMu, lnSigma := 1.0, 0.5
	lnMean := math.Exp(lnMu + lnSigma*lnSigma/2)
	lnVar := (math.Exp(lnSigma*lnSigma) - 1) * lnMean * lnMean

	// IntBetween on [lo, hi]: the discrete uniform over n = hi-lo+1 values
	// has variance (n^2 - 1)/12.
	ibLo, ibHi := 3, 17
	ibN := float64(ibHi - ibLo + 1)

	cases := []struct {
		name           string
		draw           func(r *rand.Rand) float64
		mean, variance float64
	}{
		{
			name: "Exponential",
			draw: func(r *rand.Rand) float64 { return dist.Exponential(r, 7) },
			mean: 7, variance: 49,
		},
		{
			name: "Lognormal",
			draw: func(r *rand.Rand) float64 { return dist.Lognormal(r, lnMu, lnSigma) },
			mean: lnMean, variance: lnVar,
		},
		{
			name: "LognormalMean",
			draw: func(r *rand.Rand) float64 { return dist.LognormalMean(r, 250, 0.4) },
			mean: 250, variance: (math.Exp(0.4*0.4) - 1) * 250 * 250,
		},
		{
			name: "BoundedPareto",
			draw: func(r *rand.Rand) float64 { return dist.BoundedPareto(r, pareto.Alpha, pareto.Lo, pareto.Hi) },
			mean: pareto.Mean(), variance: pVar,
		},
		{
			name: "IntBetween",
			draw: func(r *rand.Rand) float64 { return float64(dist.IntBetween(r, ibLo, ibHi)) },
			mean: float64(ibLo+ibHi) / 2, variance: (ibN*ibN - 1) / 12,
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			r := dist.New(11)
			sample := make([]float64, momentDraws)
			for i := range sample {
				sample[i] = tc.draw(r)
			}
			assertMoments(t, sample, tc.mean, tc.variance)
		})
	}
}

// TestPoissonProcessIntervalMoments covers the remaining generator: the
// process's inter-arrival times must be exponential in both their first and
// second moments, not merely average out.
func TestPoissonProcessIntervalMoments(t *testing.T) {
	const mean = 13.0
	p, err := dist.NewPoissonProcess(dist.New(11), mean)
	if err != nil {
		t.Fatal(err)
	}
	sample := make([]float64, momentDraws)
	prev := 0.0
	for i := range sample {
		next := p.Next()
		sample[i] = next - prev
		prev = next
	}
	assertMoments(t, sample, mean, mean*mean)
}

// assertMoments checks the sample's mean, variance and CV against the closed
// forms within three standard errors. The standard errors themselves use the
// empirical moments (SE(mean) = sqrt(m2/n), SE(var) ~ sqrt((m4-m2^2)/n), CV
// by first-order propagation), which is the standard large-sample treatment.
func assertMoments(t *testing.T, sample []float64, mean, variance float64) {
	t.Helper()
	m := stats.CentralMoments(sample)
	n := float64(m.N)

	seMean := math.Sqrt(m.Variance / n)
	if diff := math.Abs(m.Mean - mean); diff > 3*seMean {
		t.Errorf("mean = %v, want %v (|diff| %v > 3 SE %v)", m.Mean, mean, diff, 3*seMean)
	}

	seVar := math.Sqrt((m.M4 - m.Variance*m.Variance) / n)
	if diff := math.Abs(m.Variance - variance); diff > 3*seVar {
		t.Errorf("variance = %v, want %v (|diff| %v > 3 SE %v)", m.Variance, variance, diff, 3*seVar)
	}

	wantCV := math.Sqrt(variance) / mean
	sd := math.Sqrt(m.Variance)
	seSD := seVar / (2 * sd)
	seCV := math.Sqrt(seSD*seSD/(m.Mean*m.Mean) + m.Variance*seMean*seMean/(m.Mean*m.Mean*m.Mean*m.Mean))
	if diff := math.Abs(m.CV() - wantCV); diff > 3*seCV {
		t.Errorf("CV = %v, want %v (|diff| %v > 3 SE %v)", m.CV(), wantCV, diff, 3*seCV)
	}
}
