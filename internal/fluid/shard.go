// Sharded simulation: the cluster is partitioned into Shards independent
// sub-clusters of equal capacity, each simulated as its own streaming fluid
// run over its own source, and the per-shard results are folded in shard
// order. The two knobs are deliberately distinct:
//
//   - Shards is part of the simulated system. It changes results (jobs in
//     different shards never share capacity) and therefore belongs in cache
//     fingerprints. A Shards=1 run is byte-identical to an unsharded run.
//   - Workers is execution parallelism only — how many OS threads advance
//     shards concurrently, the way internal/runner fans seeds over a worker
//     pool. Shards are independent simulations and the merge folds their
//     results in shard-index order (never completion-race order, which
//     would make floating-point sums racy), so Workers NEVER affects
//     results: Workers=1 and Workers=8 are byte-identical.
package fluid

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"lasmq/internal/sched"
)

// ShardedConfig parameterizes a sharded run. The embedded Config describes
// the whole cluster: Capacity is divided evenly across shards, and
// MaxRunningJobs (if set) applies per shard.
type ShardedConfig struct {
	Config
	// Shards is the number of cluster partitions (>= 1; 0 means 1).
	Shards int
	// Workers bounds concurrently advancing shards; 0 means GOMAXPROCS.
	// It never affects results. When a Probe is attached, execution is
	// serialized (Workers=1) so sinks need not be concurrency-safe and the
	// event stream stays deterministic; being execution-only, that cannot
	// change results either.
	Workers int
}

// RunSharded simulates a trace partitioned across cfg.Shards independent
// sub-clusters. newSource must return shard i's job stream — typically
// Strided(src, i, cfg.Shards) over an independent source instance per shard
// — and newPolicy a fresh scheduler per shard. Per-shard results are folded
// in shard-index order into one StreamResult (Makespan is the max across
// shards, Utilization is total delivered service over total capacity across
// the global makespan).
func RunSharded(newSource func(shard int) (Source, error), newPolicy func() (sched.Scheduler, error), cfg ShardedConfig) (*StreamResult, error) {
	if cfg.Shards == 0 {
		cfg.Shards = 1
	}
	if cfg.Shards < 1 {
		return nil, fmt.Errorf("fluid: shards must be >= 1, got %d", cfg.Shards)
	}
	if cfg.Workers < 0 {
		return nil, fmt.Errorf("fluid: workers must be >= 0, got %d", cfg.Workers)
	}
	if newSource == nil || newPolicy == nil {
		return nil, errors.New("fluid: nil source or policy constructor")
	}
	if err := cfg.Config.validate(); err != nil {
		return nil, err
	}

	shardCfg := cfg.Config
	shardCfg.Capacity = cfg.Capacity / float64(cfg.Shards)

	workers := cfg.Workers
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > cfg.Shards {
		workers = cfg.Shards
	}
	if cfg.Probe != nil {
		workers = 1
	}

	results := make([]*StreamResult, cfg.Shards)
	errs := make([]error, cfg.Shards)
	runShard := func(shard int) {
		src, err := newSource(shard)
		if err != nil {
			errs[shard] = err
			return
		}
		policy, err := newPolicy()
		if err != nil {
			errs[shard] = err
			return
		}
		results[shard], errs[shard] = RunStream(src, policy, shardCfg, nil)
	}

	if workers == 1 {
		// Serial path: shards advance in index order (deterministic probe
		// event stream).
		for shard := 0; shard < cfg.Shards; shard++ {
			runShard(shard)
		}
	} else {
		// Work-stealing pool: every worker claims the next unstarted shard
		// off a shared atomic counter the moment it goes idle, so a worker
		// that drew light shards keeps pulling work while a heavy shard is
		// still running — no dispatcher goroutine, no fixed assignment.
		// Which worker runs a shard remains execution-only: workers write
		// disjoint slots of the results grid and the fold below is in
		// shard-index order, so the pool size (and the claim order) cannot
		// affect the outcome.
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					shard := int(next.Add(1)) - 1
					if shard >= cfg.Shards {
						return
					}
					runShard(shard)
				}
			}()
		}
		wg.Wait()
	}

	// Fold in shard-index order: deterministic float summation.
	out := &StreamResult{}
	for shard, r := range results {
		if errs[shard] != nil {
			return nil, fmt.Errorf("fluid: shard %d: %w", shard, errs[shard])
		}
		if shard == 0 {
			out.Scheduler = r.Scheduler
		}
		out.Jobs += r.Jobs
		out.Rounds += r.Rounds
		out.SumResponse += r.SumResponse
		out.SumSlowdown += r.SumSlowdown
		out.Delivered += r.Delivered
		if r.Makespan > out.Makespan {
			out.Makespan = r.Makespan
		}
		out.Slab.Live += r.Slab.Live
		out.Slab.Peak += r.Slab.Peak
		out.Slab.Recycled += r.Slab.Recycled
	}
	if out.Makespan > 0 {
		out.Utilization = out.Delivered / (out.Makespan * cfg.Capacity)
	}
	return out, nil
}
