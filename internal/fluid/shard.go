// Sharded simulation: the cluster is partitioned into Shards independent
// sub-clusters of equal capacity, each simulated as its own streaming fluid
// run over its own source, and the per-shard results are folded in shard
// order. The plan/pool/latch machinery is the substrate sharded-runner
// kernel (substrate.PlanShards / substrate.RunShards — see
// internal/substrate/shard.go for the Shards-vs-Workers contract); this file
// owns only what is fluid-specific: capacity partitioning and the
// StreamResult fold.
package fluid

import (
	"errors"
	"fmt"

	"lasmq/internal/obs"
	"lasmq/internal/sched"
	"lasmq/internal/substrate"
)

// ShardedConfig parameterizes a sharded run. The embedded Config describes
// the whole cluster: Capacity is divided evenly across shards, and
// MaxRunningJobs (if set) applies per shard.
type ShardedConfig struct {
	Config
	// Shards is the number of cluster partitions (>= 1; 0 means 1). Part of
	// the simulated system: it changes results and is fingerprinted.
	Shards int
	// Workers bounds concurrently advancing shards; 0 means GOMAXPROCS.
	// It never affects results. When a Probe is attached, execution is
	// serialized (Workers=1) so sinks need not be concurrency-safe and the
	// event stream stays deterministic; being execution-only, that cannot
	// change results either.
	Workers int
}

// RunSharded simulates a trace partitioned across cfg.Shards independent
// sub-clusters. newSource must return shard i's job stream — typically
// Strided(src, i, cfg.Shards) over an independent source instance per shard
// — and newPolicy a fresh scheduler per shard. Per-shard results are folded
// in shard-index order into one StreamResult (Makespan is the max across
// shards, Utilization is total delivered service over total capacity across
// the global makespan).
func RunSharded(newSource func(shard int) (Source, error), newPolicy func() (sched.Scheduler, error), cfg ShardedConfig) (*StreamResult, error) {
	if newSource == nil || newPolicy == nil {
		return nil, errors.New("fluid: nil source or policy constructor")
	}
	plan, err := substrate.PlanShards(cfg.Shards, cfg.Workers, cfg.Probe != nil)
	if err != nil {
		return nil, fmt.Errorf("fluid: %w", err)
	}
	if err := cfg.Config.validate(); err != nil {
		return nil, err
	}

	shardCfg := cfg.Config
	shardCfg.Capacity = cfg.Capacity / float64(plan.Shards)

	results, err := substrate.RunShards(plan, func(shard int) (*StreamResult, error) {
		src, err := newSource(shard)
		if err != nil {
			return nil, err
		}
		policy, err := newPolicy()
		if err != nil {
			return nil, err
		}
		scfg := shardCfg
		scfg.Probe = obs.ForShard(cfg.Probe, shard)
		return RunStream(src, policy, scfg, nil)
	})
	if err != nil {
		return nil, fmt.Errorf("fluid: %w", err)
	}

	// Fold in shard-index order: deterministic float summation.
	out := &StreamResult{}
	for shard, r := range results {
		if shard == 0 {
			out.Scheduler = r.Scheduler
		}
		out.Jobs += r.Jobs
		out.Rounds += r.Rounds
		out.SumResponse += r.SumResponse
		out.SumSlowdown += r.SumSlowdown
		out.Delivered += r.Delivered
		if r.Makespan > out.Makespan {
			out.Makespan = r.Makespan
		}
		out.Slab.Live += r.Slab.Live
		out.Slab.Peak += r.Slab.Peak
		out.Slab.Recycled += r.Slab.Recycled
	}
	if out.Makespan > 0 {
		out.Utilization = out.Delivered / (out.Makespan * cfg.Capacity)
	}
	return out, nil
}
