package fluid_test

import (
	"fmt"
	"reflect"
	"testing"

	"lasmq/internal/core"
	"lasmq/internal/fluid"
	"lasmq/internal/sched"
	"lasmq/internal/trace"
)

// The streaming/sharding differential suite pins the tentpole's determinism
// contracts on the Table-I-style heavy-tailed mix (the Fig. 7a generator at
// reduced length), across seeds and all four policies:
//
//   - streaming ≡ materialized: RunStream over a Source yields byte-identical
//     per-job outcomes to Run over the materialized trace (one shared event
//     loop, so the floating-point operation order is the same);
//   - Shards=1 ≡ unsharded: a one-shard sharded run is byte-identical to a
//     plain streaming run;
//   - Workers never affect results: Workers=1 and Workers=8 at Shards=8 are
//     byte-identical (workers write disjoint slots; the merge folds in shard
//     index order).

// diffPolicies returns fresh constructors for the four policies with the
// trace-simulation LAS_MQ configuration.
func diffPolicies(t testing.TB) map[string]func() (sched.Scheduler, error) {
	t.Helper()
	mq := func() (sched.Scheduler, error) {
		cfg := core.DefaultConfig()
		cfg.FirstThreshold = 1
		cfg.StageAware = false
		cfg.OrderByDemand = false
		return core.New(cfg)
	}
	return map[string]func() (sched.Scheduler, error){
		"LAS_MQ": mq,
		"LAS":    func() (sched.Scheduler, error) { return sched.NewLAS(), nil },
		"FAIR":   func() (sched.Scheduler, error) { return sched.NewFair(), nil },
		"FIFO":   func() (sched.Scheduler, error) { return sched.NewFIFO(), nil },
	}
}

func diffTrace(t testing.TB, seed int64) ([]fluid.JobSpec, trace.FacebookConfig) {
	t.Helper()
	tcfg := trace.DefaultFacebookConfig()
	tcfg.Jobs = 3000
	tcfg.Seed = seed
	specs, err := trace.Facebook(tcfg)
	if err != nil {
		t.Fatal(err)
	}
	return specs, tcfg
}

func TestRunStreamMatchesRun(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		specs, tcfg := diffTrace(t, seed)
		fcfg := fluid.DefaultConfig()
		fcfg.Capacity = tcfg.Capacity
		for name, newPolicy := range diffPolicies(t) {
			t.Run(fmt.Sprintf("seed%d/%s", seed, name), func(t *testing.T) {
				p1, err := newPolicy()
				if err != nil {
					t.Fatal(err)
				}
				ref, err := fluid.Run(specs, p1, fcfg)
				if err != nil {
					t.Fatal(err)
				}
				p2, err := newPolicy()
				if err != nil {
					t.Fatal(err)
				}
				byID := make(map[int]fluid.JobResult, len(specs))
				sr, err := fluid.RunStream(fluid.SliceSource(specs), p2, fcfg, func(jr fluid.JobResult) {
					byID[jr.ID] = jr
				})
				if err != nil {
					t.Fatal(err)
				}
				if sr.Jobs != len(ref.Jobs) {
					t.Fatalf("streamed %d jobs, materialized %d", sr.Jobs, len(ref.Jobs))
				}
				for i := range ref.Jobs {
					got, ok := byID[ref.Jobs[i].ID]
					if !ok {
						t.Fatalf("job %d missing from stream", ref.Jobs[i].ID)
					}
					if got != ref.Jobs[i] {
						t.Fatalf("job %d differs:\n stream: %+v\n    run: %+v",
							ref.Jobs[i].ID, got, ref.Jobs[i])
					}
				}
				if sr.Makespan != ref.Makespan {
					t.Errorf("makespan: stream %v, run %v", sr.Makespan, ref.Makespan)
				}
				if sr.Utilization != ref.Utilization {
					t.Errorf("utilization: stream %v, run %v", sr.Utilization, ref.Utilization)
				}
				if sr.Rounds != ref.Rounds {
					t.Errorf("rounds: stream %d, run %d", sr.Rounds, ref.Rounds)
				}
				if sr.Slab.Peak <= 0 || sr.Slab.Peak >= len(specs) {
					t.Errorf("slab peak %d not in (0, %d): free list not recycling",
						sr.Slab.Peak, len(specs))
				}
			})
		}
	}
}

func TestShardedOneShardMatchesStream(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		specs, tcfg := diffTrace(t, seed)
		fcfg := fluid.DefaultConfig()
		fcfg.Capacity = tcfg.Capacity
		for name, newPolicy := range diffPolicies(t) {
			t.Run(fmt.Sprintf("seed%d/%s", seed, name), func(t *testing.T) {
				p, err := newPolicy()
				if err != nil {
					t.Fatal(err)
				}
				ref, err := fluid.RunStream(fluid.SliceSource(specs), p, fcfg, nil)
				if err != nil {
					t.Fatal(err)
				}
				scfg := fluid.ShardedConfig{Config: fcfg, Shards: 1, Workers: 1}
				got, err := fluid.RunSharded(
					func(int) (fluid.Source, error) { return fluid.SliceSource(specs), nil },
					newPolicy, scfg)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(got, ref) {
					t.Fatalf("one-shard sharded run differs from streaming run:\nsharded: %+v\n stream: %+v", got, ref)
				}
			})
		}
	}
}

func TestShardedWorkerCountDoesNotAffectResults(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		_, tcfg := diffTrace(t, seed)
		const shards = 8
		tcfg.Capacity = 20 * shards // per-shard capacity 20, load 0.9 each
		fcfg := fluid.DefaultConfig()
		fcfg.Capacity = tcfg.Capacity
		newSource := func(shard int) (fluid.Source, error) {
			src, err := trace.NewFacebookSource(tcfg)
			if err != nil {
				return nil, err
			}
			return fluid.Strided(src, shard, shards), nil
		}
		for name, newPolicy := range diffPolicies(t) {
			t.Run(fmt.Sprintf("seed%d/%s", seed, name), func(t *testing.T) {
				var runs [2]*fluid.StreamResult
				for i, workers := range []int{1, 8} {
					scfg := fluid.ShardedConfig{Config: fcfg, Shards: shards, Workers: workers}
					res, err := fluid.RunSharded(newSource, newPolicy, scfg)
					if err != nil {
						t.Fatal(err)
					}
					runs[i] = res
				}
				if !reflect.DeepEqual(runs[0], runs[1]) {
					t.Fatalf("worker count changed results:\nworkers=1: %+v\nworkers=8: %+v", runs[0], runs[1])
				}
			})
		}
	}
}

// TestShardedImbalancedWorkStealing pins the Workers contract on the
// work-stealing pool when shard loads are wildly uneven: shard 0 carries
// ~90% of the trace while the other seven split the rest, so workers that
// finish light shards go idle early and claim the queued ones off the
// shared counter. Worker count (and hence claim order) must still never
// affect results.
func TestShardedImbalancedWorkStealing(t *testing.T) {
	specs, _ := diffTrace(t, 5)
	const shards = 8
	parts := make([][]fluid.JobSpec, shards)
	for i, s := range specs {
		shard := 0
		if i%10 == 0 {
			shard = 1 + (i/10)%(shards-1)
		}
		parts[shard] = append(parts[shard], s)
	}
	newSource := func(shard int) (fluid.Source, error) {
		return fluid.SliceSource(parts[shard]), nil
	}
	fcfg := fluid.DefaultConfig()
	fcfg.Capacity = 20 * shards
	for name, newPolicy := range diffPolicies(t) {
		t.Run(name, func(t *testing.T) {
			var runs []*fluid.StreamResult
			for _, workers := range []int{1, 3, 8} {
				scfg := fluid.ShardedConfig{Config: fcfg, Shards: shards, Workers: workers}
				res, err := fluid.RunSharded(newSource, newPolicy, scfg)
				if err != nil {
					t.Fatal(err)
				}
				runs = append(runs, res)
			}
			for i := 1; i < len(runs); i++ {
				if !reflect.DeepEqual(runs[0], runs[i]) {
					t.Fatalf("worker count changed results under imbalance:\nworkers=1: %+v\nother: %+v",
						runs[0], runs[i])
				}
			}
		})
	}
}

// TestRunStreamRejectsUnsortedSource pins the streaming contract: an
// out-of-order arrival is an error, not a silent misordering.
func TestRunStreamRejectsUnsortedSource(t *testing.T) {
	specs := []fluid.JobSpec{
		{ID: 1, Arrival: 5, Size: 1, Width: 1, Priority: 1},
		{ID: 2, Arrival: 1, Size: 1, Width: 1, Priority: 1},
	}
	cfg := fluid.Config{Capacity: 1, TaskDuration: 1}
	if _, err := fluid.RunStream(fluid.SliceSource(specs), sched.NewFair(), cfg, nil); err == nil {
		t.Fatal("unsorted source accepted")
	}
}

// TestStridedPartition pins that striding partitions a stream exactly: the
// shards' unions rebuild the sequence with no duplicates or gaps.
func TestStridedPartition(t *testing.T) {
	specs, _ := diffTrace(t, 1)
	const shards = 4
	seen := make(map[int]int)
	for shard := 0; shard < shards; shard++ {
		src := fluid.Strided(fluid.SliceSource(specs), shard, shards)
		for i := 0; ; i++ {
			spec, ok, err := src.Next()
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				break
			}
			seen[spec.ID]++
			if want := specs[shard+i*shards].ID; spec.ID != want {
				t.Fatalf("shard %d item %d: got job %d, want %d", shard, i, spec.ID, want)
			}
		}
	}
	if len(seen) != len(specs) {
		t.Fatalf("shards cover %d of %d jobs", len(seen), len(specs))
	}
	for id, n := range seen {
		if n != 1 {
			t.Fatalf("job %d yielded %d times", id, n)
		}
	}
}
