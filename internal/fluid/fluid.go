// Package fluid is the event-driven fluid simulator used for the paper's
// trace-driven evaluation (24,443-job Facebook-like trace, 10,000-job uniform
// workload). Jobs are malleable service demands with a parallelism cap
// (width); the scheduler assigns fractional container shares, and between
// scheduling points every job's attained service grows linearly, so job
// completions and policy change points (LAS catch-ups, LAS_MQ threshold
// crossings, via sched.Hinter) are computed exactly instead of stepping a
// fine-grained quantum.
//
// Unlike the task-level engine, fluid jobs have no stage structure, so the
// stage-aware estimate equals the exactly attained service — matching the
// paper's simulations, which exercise the basic multilevel-queue mechanism.
package fluid

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"lasmq/internal/sched"
)

// JobSpec describes one trace job.
type JobSpec struct {
	// ID uniquely identifies the job within a trace.
	ID int
	// Arrival is the submission time.
	Arrival float64
	// Size is the total service demand in container-time units (the paper
	// normalizes Facebook job sizes to a mean of roughly 20).
	Size float64
	// Width is the job's maximum parallelism in containers (>= 1).
	Width float64
	// Priority in [1,5]; used by the Fair baseline.
	Priority int
	// SizeHint is the a priori estimate for SJF/SRTF; zero means exact.
	SizeHint float64
}

// Config parameterizes a fluid run.
type Config struct {
	// Capacity is the cluster capacity in containers.
	Capacity float64
	// TaskDuration is the nominal per-task duration used to derive the
	// container demand of a job's remaining work: demand =
	// min(width, ceil(remaining/TaskDuration)). Default 1.
	TaskDuration float64
	// MaxStep caps event-free time advancement; 0 means unlimited (safe
	// because policies publish change points via sched.Hinter).
	MaxStep float64
	// MaxRunningJobs bounds concurrently running jobs, mirroring the paper's
	// admission module; 0 means unlimited (the trace simulations' setting).
	MaxRunningJobs int
}

// DefaultConfig returns the heavy-tailed trace configuration: 100 containers,
// unit task duration, no admission limit.
func DefaultConfig() Config {
	return Config{Capacity: 100, TaskDuration: 1}
}

func (c *Config) validate() error {
	if c.Capacity <= 0 {
		return fmt.Errorf("fluid: capacity must be positive, got %v", c.Capacity)
	}
	if c.TaskDuration < 0 {
		return fmt.Errorf("fluid: task duration must be >= 0, got %v", c.TaskDuration)
	}
	if c.MaxStep < 0 {
		return fmt.Errorf("fluid: max step must be >= 0, got %v", c.MaxStep)
	}
	if c.MaxRunningJobs < 0 {
		return fmt.Errorf("fluid: max running jobs must be >= 0, got %v", c.MaxRunningJobs)
	}
	return nil
}

// JobResult reports one finished job.
type JobResult struct {
	ID           int
	Arrival      float64
	Completed    float64
	ResponseTime float64
	Size         float64
	Width        float64
	// Slowdown is response time divided by the job's isolated runtime
	// (size / min(width, capacity)).
	Slowdown float64
}

// Result reports a whole fluid run.
type Result struct {
	Scheduler string
	Jobs      []JobResult
	Makespan  float64
	// Rounds is the number of scheduling rounds executed (instrumentation).
	Rounds int
	// Utilization is the time-averaged fraction of capacity in use over the
	// makespan.
	Utilization float64
}

// MeanResponseTime returns the average job response time.
func (r *Result) MeanResponseTime() float64 {
	if len(r.Jobs) == 0 {
		return 0
	}
	var sum float64
	for i := range r.Jobs {
		sum += r.Jobs[i].ResponseTime
	}
	return sum / float64(len(r.Jobs))
}

// ResponseTimes returns per-job response times in trace order.
func (r *Result) ResponseTimes() []float64 {
	out := make([]float64, len(r.Jobs))
	for i := range r.Jobs {
		out[i] = r.Jobs[i].ResponseTime
	}
	return out
}

// Slowdowns returns per-job slowdowns in trace order.
func (r *Result) Slowdowns() []float64 {
	out := make([]float64, len(r.Jobs))
	for i := range r.Jobs {
		out[i] = r.Jobs[i].Slowdown
	}
	return out
}

type fluidJob struct {
	spec     JobSpec
	seq      int
	attained float64
	rate     float64
	done     bool
	view     jobView // embedded adapter, reused across rounds
}

func (j *fluidJob) remaining() float64 { return j.spec.Size - j.attained }

func (j *fluidJob) finished() bool {
	return j.remaining() <= 1e-9*math.Max(1, j.spec.Size)
}

// jobView adapts fluidJob to sched.JobView with the run's demand granularity.
type jobView struct {
	j            *fluidJob
	taskDuration float64
}

var _ sched.JobView = (*jobView)(nil)

func (v *jobView) ID() int           { return v.j.spec.ID }
func (v *jobView) Seq() int          { return v.j.seq }
func (v *jobView) Priority() int     { return v.j.spec.Priority }
func (v *jobView) Attained() float64 { return v.j.attained }

// Estimated equals Attained: fluid jobs have no stage structure to project.
func (v *jobView) Estimated() float64 { return v.j.attained }

func (v *jobView) demand() float64 {
	rem := v.j.remaining()
	if rem <= 0 {
		return 0
	}
	tasks := rem
	if v.taskDuration > 0 {
		tasks = math.Ceil(rem / v.taskDuration)
	}
	return math.Min(v.j.spec.Width, tasks)
}

func (v *jobView) ReadyDemand() float64     { return v.demand() }
func (v *jobView) RemainingDemand() float64 { return v.demand() }

func (v *jobView) SizeHint() float64 {
	if v.j.spec.SizeHint > 0 {
		return v.j.spec.SizeHint
	}
	return v.j.spec.Size
}

func (v *jobView) RemainingSizeHint() float64 {
	rem := v.SizeHint() - v.j.attained
	if rem < 0 {
		return 0
	}
	return rem
}

// Run simulates the trace under the given policy. The scheduler instance
// must be fresh.
func Run(specs []JobSpec, policy sched.Scheduler, cfg Config) (*Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if policy == nil {
		return nil, errors.New("fluid: nil scheduler")
	}
	seen := make(map[int]bool, len(specs))
	for i := range specs {
		s := &specs[i]
		if s.Size <= 0 {
			return nil, fmt.Errorf("fluid: job %d has non-positive size %v", s.ID, s.Size)
		}
		if s.Width < 1 {
			return nil, fmt.Errorf("fluid: job %d has width %v < 1", s.ID, s.Width)
		}
		if s.Arrival < 0 {
			return nil, fmt.Errorf("fluid: job %d has negative arrival %v", s.ID, s.Arrival)
		}
		if seen[s.ID] {
			return nil, fmt.Errorf("fluid: duplicate job ID %d", s.ID)
		}
		seen[s.ID] = true
	}

	// Pending jobs sorted by arrival (stable on trace order).
	pending := make([]*fluidJob, len(specs))
	for i := range specs {
		pending[i] = &fluidJob{spec: specs[i]}
		pending[i].view.j = pending[i]
		pending[i].view.taskDuration = cfg.TaskDuration
	}
	sort.SliceStable(pending, func(i, j int) bool {
		return pending[i].spec.Arrival < pending[j].spec.Arrival
	})

	var (
		delivered float64
		res       = &Result{Scheduler: policy.Name()}
		results   = make(map[int]JobResult, len(specs))
		active    []*fluidJob
		waiting   []*fluidJob // arrived but not admitted (admission limit)
		now       float64
		nextSeq   int
		pi        int // next pending index
		hinter    sched.Hinter
		buffered  sched.BufferedAssigner
		views     []sched.JobView
		alloc     sched.Assignment
		capacity  = cfg.Capacity
	)
	if h, ok := policy.(sched.Hinter); ok {
		hinter = h
	}
	if b, ok := policy.(sched.BufferedAssigner); ok {
		buffered = b
		alloc = make(sched.Assignment)
	}

	admit := func() {
		for len(waiting) > 0 {
			if cfg.MaxRunningJobs > 0 && len(active) >= cfg.MaxRunningJobs {
				return
			}
			j := waiting[0]
			waiting = waiting[1:]
			j.seq = nextSeq
			nextSeq++
			active = append(active, j)
		}
	}

	for pi < len(pending) || len(active) > 0 || len(waiting) > 0 {
		// Admit arrivals due by now.
		for pi < len(pending) && pending[pi].spec.Arrival <= now+1e-12 {
			waiting = append(waiting, pending[pi])
			pi++
		}
		admit()

		if len(active) == 0 {
			// Idle: jump to the next arrival.
			if pi >= len(pending) {
				if len(waiting) > 0 {
					return nil, fmt.Errorf("fluid: %d jobs stuck in admission with empty cluster", len(waiting))
				}
				break
			}
			if t := pending[pi].spec.Arrival; t > now {
				now = t
			}
			continue
		}

		// Build views and ask the policy for shares, reusing the allocation
		// map when the policy supports buffered assignment.
		views = views[:0]
		for _, j := range active {
			views = append(views, &j.view)
		}
		if buffered != nil {
			buffered.AssignInto(now, capacity, views, alloc)
		} else {
			alloc = policy.Assign(now, capacity, views)
		}
		res.Rounds++

		// Apply rates (defensively capped by width).
		for _, j := range active {
			j.rate = math.Min(alloc[j.spec.ID], j.spec.Width)
			if j.rate < 0 {
				j.rate = 0
			}
		}

		// Next event: arrival, earliest completion, policy horizon, step cap.
		next := math.Inf(1)
		if pi < len(pending) {
			next = pending[pi].spec.Arrival
		}
		for _, j := range active {
			if j.rate > 0 {
				if t := now + j.remaining()/j.rate; t < next {
					next = t
				}
			}
		}
		if hinter != nil {
			if h := hinter.Horizon(now, views, alloc); h < next {
				next = h
			}
		}
		if cfg.MaxStep > 0 && now+cfg.MaxStep < next {
			next = now + cfg.MaxStep
		}
		if math.IsInf(next, 1) || next <= now {
			return nil, fmt.Errorf("fluid: no progress at t=%v with %d active jobs (total rate %v)",
				now, len(active), alloc.Total())
		}

		// Advance time and service.
		dt := next - now
		now = next
		live := active[:0]
		for _, j := range active {
			delivered += j.rate * dt
			j.attained += j.rate * dt
			if j.attained > j.spec.Size {
				j.attained = j.spec.Size
			}
			if j.finished() {
				j.done = true
				iso := j.spec.Size / math.Min(j.spec.Width, capacity)
				response := now - j.spec.Arrival
				results[j.spec.ID] = JobResult{
					ID:           j.spec.ID,
					Arrival:      j.spec.Arrival,
					Completed:    now,
					ResponseTime: response,
					Size:         j.spec.Size,
					Width:        j.spec.Width,
					Slowdown:     response / iso,
				}
				if now > res.Makespan {
					res.Makespan = now
				}
				continue
			}
			live = append(live, j)
		}
		active = live
	}

	if res.Makespan > 0 {
		res.Utilization = delivered / (res.Makespan * capacity)
	}

	// Report in trace order.
	for i := range specs {
		res.Jobs = append(res.Jobs, results[specs[i].ID])
	}
	return res, nil
}
