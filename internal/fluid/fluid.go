// Package fluid is the event-driven fluid simulator used for the paper's
// trace-driven evaluation (24,443-job Facebook-like trace, 10,000-job uniform
// workload). Jobs are malleable service demands with a parallelism cap
// (width); the scheduler assigns fractional container shares, and between
// scheduling points every job's attained service grows linearly, so job
// completions and policy change points (LAS catch-ups, LAS_MQ threshold
// crossings, via sched.Hinter) are computed exactly instead of stepping a
// fine-grained quantum.
//
// Unlike the task-level engine, fluid jobs have no stage structure, so the
// stage-aware estimate equals the exactly attained service — matching the
// paper's simulations, which exercise the basic multilevel-queue mechanism.
package fluid

import (
	"errors"
	"fmt"
	"math"
	"slices"
	"sync"

	"lasmq/internal/obs"
	"lasmq/internal/sched"
	"lasmq/internal/substrate"
)

// JobSpec describes one trace job — an alias of the substrate streaming
// kernel's canonical spec type (see substrate.JobSpec for the field docs).
type JobSpec = substrate.JobSpec

// Config parameterizes a fluid run.
type Config struct {
	// Capacity is the cluster capacity in containers.
	Capacity float64
	// TaskDuration is the nominal per-task duration used to derive the
	// container demand of a job's remaining work: demand =
	// min(width, ceil(remaining/TaskDuration)). Default 1.
	TaskDuration float64
	// MaxStep caps event-free time advancement; 0 means unlimited (safe
	// because policies publish change points via sched.Hinter).
	MaxStep float64
	// MaxRunningJobs bounds concurrently running jobs, mirroring the paper's
	// admission module; 0 means unlimited (the trace simulations' setting).
	MaxRunningJobs int
	// Probe, when non-nil, receives telemetry events (see internal/obs).
	// Attached probes never perturb results; a nil probe costs nothing.
	Probe obs.Probe
}

// DefaultConfig returns the heavy-tailed trace configuration: 100 containers,
// unit task duration, no admission limit.
func DefaultConfig() Config {
	return Config{Capacity: 100, TaskDuration: 1}
}

func (c *Config) validate() error {
	if c.Capacity <= 0 {
		return fmt.Errorf("fluid: capacity must be positive, got %v", c.Capacity)
	}
	if c.TaskDuration < 0 {
		return fmt.Errorf("fluid: task duration must be >= 0, got %v", c.TaskDuration)
	}
	if c.MaxStep < 0 {
		return fmt.Errorf("fluid: max step must be >= 0, got %v", c.MaxStep)
	}
	if c.MaxRunningJobs < 0 {
		return fmt.Errorf("fluid: max running jobs must be >= 0, got %v", c.MaxRunningJobs)
	}
	return nil
}

// JobResult reports one finished job.
type JobResult struct {
	ID           int
	Arrival      float64
	Completed    float64
	ResponseTime float64
	Size         float64
	Width        float64
	// Slowdown is response time divided by the job's isolated runtime
	// (size / min(width, capacity)).
	Slowdown float64
}

// Result reports a whole fluid run. The embedded kernel accumulator
// provides Scheduler, Makespan, Utilization and the response-time/slowdown
// statistics (MeanResponseTime, ResponseTimes, Slowdowns), recorded in
// trace order.
type Result struct {
	substrate.Result
	Jobs []JobResult
	// Rounds is the number of scheduling rounds executed (instrumentation).
	Rounds int
}

type fluidJob struct {
	spec     JobSpec
	seq      int
	attained float64
	rate     float64
	done     bool
	view     jobView // embedded adapter, reused across rounds
}

func (j *fluidJob) remaining() float64 { return j.spec.Size - j.attained }

func (j *fluidJob) finished() bool {
	return j.remaining() <= 1e-9*math.Max(1, j.spec.Size)
}

// jobView adapts fluidJob to sched.JobView with the run's demand granularity.
type jobView struct {
	j            *fluidJob
	taskDuration float64
}

var (
	_ sched.JobView    = (*jobView)(nil)
	_ sched.ExactSizer = (*jobView)(nil)
)

func (v *jobView) ID() int           { return v.j.spec.ID }
func (v *jobView) Seq() int          { return v.j.seq }
func (v *jobView) Priority() int     { return v.j.spec.Priority }
func (v *jobView) Attained() float64 { return v.j.attained }

// Estimated equals Attained: fluid jobs have no stage structure to project.
func (v *jobView) Estimated() float64 { return v.j.attained }

func (v *jobView) demand() float64 {
	rem := v.j.remaining()
	if rem <= 0 {
		return 0
	}
	tasks := rem
	if v.taskDuration > 0 {
		tasks = math.Ceil(rem / v.taskDuration)
	}
	return math.Min(v.j.spec.Width, tasks)
}

func (v *jobView) ReadyDemand() float64     { return v.demand() }
func (v *jobView) RemainingDemand() float64 { return v.demand() }

func (v *jobView) SizeHint() float64 {
	if v.j.spec.SizeHint > 0 {
		return v.j.spec.SizeHint
	}
	return v.j.spec.Size
}

func (v *jobView) RemainingSizeHint() float64 {
	rem := v.SizeHint() - v.j.attained
	if rem < 0 {
		return 0
	}
	return rem
}

// ExactRemaining implements sched.ExactSizer: the true remaining service,
// independent of any SizeHint perturbation — the clairvoyant input SRPT
// needs.
func (v *jobView) ExactRemaining() float64 {
	rem := v.j.remaining()
	if rem < 0 {
		return 0
	}
	return rem
}

// Run simulates the trace under the given policy. The scheduler instance
// must be fresh.
func Run(specs []JobSpec, policy sched.Scheduler, cfg Config) (*Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if policy == nil {
		return nil, errors.New("fluid: nil scheduler")
	}
	seen := make(map[int]bool, len(specs))
	for i := range specs {
		s := &specs[i]
		if s.Size <= 0 {
			return nil, fmt.Errorf("fluid: job %d has non-positive size %v", s.ID, s.Size)
		}
		if s.Width < 1 {
			return nil, fmt.Errorf("fluid: job %d has width %v < 1", s.ID, s.Width)
		}
		if s.Arrival < 0 {
			return nil, fmt.Errorf("fluid: job %d has negative arrival %v", s.ID, s.Arrival)
		}
		if seen[s.ID] {
			return nil, fmt.Errorf("fluid: duplicate job ID %d", s.ID)
		}
		seen[s.ID] = true
	}
	s := newSim(specs, policy, cfg)
	defer s.release()
	if err := s.run(); err != nil {
		return nil, err
	}
	return s.result(), nil
}

// arena is the fluid run's slab-allocated state: all fluidJob records live
// in one flat slice (fixed length per run, so pointers into it are stable),
// with the pending/active pointer lists, the result map and the view
// registry keeping their backing storage. Arenas are pooled so repeated runs
// on one worker — the replication engine sweeping seeds — reuse storage
// instead of re-allocating one fluidJob per trace job per run.
type arena struct {
	jobs    []fluidJob
	pending []*fluidJob // sorted by arrival (stable on trace order)
	active  []*fluidJob
	results map[int]JobResult
	vs      substrate.ViewSet
}

var arenaPool = sync.Pool{New: func() any { return new(arena) }}

// build lays the trace out in the slab and sorts the pending list.
func (a *arena) build(specs []JobSpec, taskDuration float64) {
	a.jobs = substrate.GrowSlab(a.jobs, len(specs))
	a.pending = a.pending[:0]
	a.active = a.active[:0]
	if a.results == nil {
		a.results = make(map[int]JobResult, len(specs))
	} else {
		clear(a.results)
	}
	for i := range specs {
		j := &a.jobs[i]
		j.spec = specs[i]
		j.view.j = j
		j.view.taskDuration = taskDuration
		a.pending = append(a.pending, j)
	}
	slices.SortStableFunc(a.pending, func(x, y *fluidJob) int {
		if x.spec.Arrival < y.spec.Arrival {
			return -1
		}
		if x.spec.Arrival > y.spec.Arrival {
			return 1
		}
		return 0
	})
}

// buildStream resets the arena for a streaming run: job records come from
// the run's free-list pool rather than the jobs slab, so only the pointer
// lists, result map and view registry are prepared (with backing storage
// kept, as in build).
func (a *arena) buildStream() {
	a.pending = a.pending[:0]
	a.active = a.active[:0]
	clear(a.results)
}

// scrub drops every reference the arena holds into the finished run so a
// pooled arena cannot pin caller memory, keeping the backing storage.
func (a *arena) scrub() {
	clear(a.jobs)
	clear(a.pending)
	a.pending = a.pending[:0]
	clear(a.active)
	a.active = a.active[:0]
	clear(a.results)
	a.vs.Reset()
}

// arrivalCursor feeds the run loop its arrival stream: Peek reports the next
// arrival time (or that the stream is exhausted, or a source error), and Pop
// consumes the peeked job. Run walks the arena's pre-sorted pending list
// (substrate.SliceCursor); RunStream pulls specs from a Source and
// materializes job records from a free-list pool on demand
// (substrate.StreamCursor), so both share one event loop — the operations
// (and their floating-point order) are identical, which is what makes the
// streaming-versus-materialized differential byte-exact.
type arrivalCursor = substrate.Cursor[fluidJob]

func fluidJobArrival(j *fluidJob) float64 { return j.spec.Arrival }

// sim is one fluid run: the kernel modules (policy driver, admission queue,
// view registry) plus the fluid-specific state — continuous time, fractional
// rates, and exact event computation. The embedded arena holds the slab of
// job records and the reused per-run storage.
type sim struct {
	cfg    Config
	specs  []JobSpec
	probe  obs.Probe
	driver *substrate.Driver
	adm    *substrate.Queue[*fluidJob]
	*arena

	// slowdowns receives per-job slowdowns at completion, resolved once from
	// the probe (obs.FindHistograms). Slowdown is fluid-derived state, not a
	// probe event, so it reaches the histogram sink through this side-channel.
	slowdowns obs.SlowdownObserver

	cur    arrivalCursor
	finish func(j *fluidJob, jr JobResult) // per-completion sink
	now    float64

	rounds    int
	makespan  float64
	delivered float64
}

func newSim(specs []JobSpec, policy sched.Scheduler, cfg Config) *sim {
	ar := arenaPool.Get().(*arena)
	reused := cap(ar.jobs) > 0
	ar.build(specs, cfg.TaskDuration)
	s := &sim{
		cfg:    cfg,
		specs:  specs,
		probe:  cfg.Probe,
		driver: substrate.NewDriver(policy),
		adm:    substrate.NewQueue[*fluidJob](cfg.MaxRunningJobs),
		arena:  ar,
	}
	s.cur = &substrate.SliceCursor[fluidJob]{List: ar.pending, Arrival: fluidJobArrival}
	s.finish = func(j *fluidJob, jr JobResult) { s.results[j.spec.ID] = jr }
	s.driver.SetProbe(cfg.Probe)
	if h := obs.FindHistograms(cfg.Probe); h != nil {
		s.slowdowns = h
	}
	if s.probe != nil {
		s.probe.ArenaReuse(len(specs), 0, reused)
	}
	return s
}

// release scrubs the sim's arena and returns it to the pool. The sim must
// not be used afterwards.
func (s *sim) release() {
	ar := s.arena
	s.arena = nil
	ar.scrub()
	arenaPool.Put(ar)
}

// admit releases waiting jobs while the admission limit allows; released
// jobs join the active set with their kernel-issued sequence number.
func (s *sim) admit() {
	s.adm.Admit(func(j *fluidJob, seq int) {
		j.seq = seq
		s.active = append(s.active, j)
		if s.probe != nil {
			s.probe.JobAdmitted(s.now, j.spec.ID, math.Max(0, s.now-j.spec.Arrival))
		}
	})
}

func (s *sim) run() error {
	capacity := s.cfg.Capacity
	for {
		// Admit arrivals due by now.
		for {
			t, ok, err := s.cur.Peek()
			if err != nil {
				return err
			}
			if !ok || t > s.now+1e-12 {
				break
			}
			j := s.cur.Pop()
			s.adm.Push(j)
			if s.probe != nil {
				s.probe.JobSubmitted(s.now, j.spec.ID)
			}
		}
		s.admit()

		if len(s.active) == 0 {
			// Idle: jump to the next arrival.
			t, ok, err := s.cur.Peek()
			if err != nil {
				return err
			}
			if !ok {
				if s.adm.Waiting() > 0 {
					return s.adm.Stuck("fluid")
				}
				break
			}
			if t > s.now {
				s.now = t
			}
			continue
		}

		// Build views and ask the policy for shares through the kernel driver
		// (which reuses the allocation map for buffered policies).
		s.vs.Begin(false, false)
		for _, j := range s.active {
			s.vs.Add(&j.view)
		}
		views := s.vs.Views()
		alloc := s.driver.Assign(s.now, capacity, views)
		s.rounds++

		// Apply rates (defensively capped by width).
		for _, j := range s.active {
			j.rate = math.Min(alloc[j.spec.ID], j.spec.Width)
			if j.rate < 0 {
				j.rate = 0
			}
		}

		// Next event: arrival, earliest completion, policy horizon, step cap.
		next := math.Inf(1)
		if t, ok, err := s.cur.Peek(); err != nil {
			return err
		} else if ok {
			next = t
		}
		for _, j := range s.active {
			if j.rate > 0 {
				if t := s.now + j.remaining()/j.rate; t < next {
					next = t
				}
			}
		}
		if h := s.driver.Horizon(s.now, views, alloc); h < next {
			next = h
		}
		if s.cfg.MaxStep > 0 && s.now+s.cfg.MaxStep < next {
			next = s.now + s.cfg.MaxStep
		}
		if math.IsInf(next, 1) || next <= s.now {
			return fmt.Errorf("fluid: no progress at t=%v with %d active jobs (total rate %v)",
				s.now, len(s.active), alloc.Total())
		}

		// Advance time and service.
		dt := next - s.now
		s.now = next
		live := s.active[:0]
		for _, j := range s.active {
			s.delivered += j.rate * dt
			j.attained += j.rate * dt
			if j.attained > j.spec.Size {
				j.attained = j.spec.Size
			}
			if j.finished() {
				j.done = true
				s.adm.Done()
				iso := j.spec.Size / math.Min(j.spec.Width, capacity)
				response := s.now - j.spec.Arrival
				jr := JobResult{
					ID:           j.spec.ID,
					Arrival:      j.spec.Arrival,
					Completed:    s.now,
					ResponseTime: response,
					Size:         j.spec.Size,
					Width:        j.spec.Width,
					Slowdown:     response / iso,
				}
				if s.now > s.makespan {
					s.makespan = s.now
				}
				if s.probe != nil {
					s.probe.JobDone(s.now, j.spec.ID, response)
				}
				if s.slowdowns != nil {
					s.slowdowns.ObserveSlowdown(jr.Slowdown)
				}
				s.finish(j, jr)
				continue
			}
			live = append(live, j)
		}
		s.active = live
	}
	return nil
}

func (s *sim) result() *Result {
	res := &Result{Rounds: s.rounds}
	res.Scheduler = s.driver.Name()
	res.Makespan = s.makespan
	if s.makespan > 0 {
		res.Utilization = s.delivered / (s.makespan * s.cfg.Capacity)
	}
	// Report in trace order.
	for i := range s.specs {
		jr := s.results[s.specs[i].ID]
		res.Jobs = append(res.Jobs, jr)
		res.Record(0, jr.ResponseTime)
		res.RecordSlowdown(jr.Slowdown)
	}
	res.FoldCounters(s.probe)
	return res
}
