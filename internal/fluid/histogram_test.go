package fluid_test

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"lasmq/internal/fluid"
	"lasmq/internal/obs"
	"lasmq/internal/sched"
)

// TestHistogramSideChannels pins the fluid substrate's wiring into the
// Histograms sink: every completed job feeds the response histogram via
// JobDone and the slowdown histogram via the SlowdownObserver side-channel
// (slowdown is fluid-derived state, not a probe event), every admission
// feeds the wait histogram, and the driver feeds wall-clock round latency —
// all without perturbing the simulation.
func TestHistogramSideChannels(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	specs := make([]fluid.JobSpec, 60)
	for i := range specs {
		specs[i] = fluid.JobSpec{
			ID:      i,
			Arrival: rng.Float64() * 50,
			Size:    1 + rng.ExpFloat64()*20,
			Width:   1 + float64(rng.Intn(4)),
		}
	}
	cfg := fluid.Config{Capacity: 8, TaskDuration: 1, MaxRunningJobs: 6}
	plain, err := fluid.Run(specs, sched.NewLAS(), cfg)
	if err != nil {
		t.Fatal(err)
	}

	h := obs.NewHistograms()
	cfg.Probe = h
	probed, err := fluid.Run(specs, sched.NewLAS(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	probed.Counters = nil
	if !reflect.DeepEqual(plain, probed) {
		t.Fatal("attaching the histogram sink changed the fluid result")
	}

	resp, _ := h.Histogram(obs.HistResponse)
	slow, _ := h.Histogram(obs.HistSlowdown)
	wait, _ := h.Histogram(obs.HistAdmissionWait)
	lat, _ := h.Histogram(obs.HistRoundLatency)
	if int(resp.Count()) != len(specs) || int(slow.Count()) != len(specs) {
		t.Fatalf("response/slowdown saw %d/%d jobs, want %d each", resp.Count(), slow.Count(), len(specs))
	}
	if int(wait.Count()) != len(specs) {
		t.Fatalf("admission wait saw %d jobs, want %d", wait.Count(), len(specs))
	}
	if lat.Count() == 0 {
		t.Fatal("driver recorded no round latency")
	}

	// The histogram aggregates must agree with the exact per-job results.
	sl := probed.Slowdowns()
	var sum float64
	mn, mx := math.Inf(1), math.Inf(-1)
	for _, s := range sl {
		sum += s
		mn = math.Min(mn, s)
		mx = math.Max(mx, s)
	}
	snap := slow.Snapshot()
	if snap.Min != mn || snap.Max != mx {
		t.Fatalf("slowdown extremes: hist [%g, %g], exact [%g, %g]", snap.Min, snap.Max, mn, mx)
	}
	if math.Abs(snap.Sum-sum) > 1e-9*math.Abs(sum) {
		t.Fatalf("slowdown sum: hist %g, exact %g", snap.Sum, sum)
	}
	if mn > 0 && (snap.P50 <= 0 || snap.P50 > mx) {
		t.Fatalf("slowdown p50 %g escapes (0, %g]", snap.P50, mx)
	}
}
