// Streaming trace substrate: a Source yields job specs one at a time, so a
// run's memory tracks the jobs that are live at once instead of the trace
// length. The interface lives here (not in internal/trace) because trace
// imports fluid for the JobSpec type; trace re-exports it as trace.Source.
package fluid

// Source streams the jobs of a trace in nondecreasing arrival order. Next
// returns the next spec and true, or a zero spec and false once the trace is
// exhausted; an error aborts the consuming run. Implementations must be
// deterministic: two sources built from the same inputs (same seed, same
// bytes) must yield identical sequences, the property the streaming-versus-
// materialized differential tests pin.
type Source interface {
	Next() (JobSpec, bool, error)
}

// sliceSource adapts a materialized trace to the Source interface.
type sliceSource struct {
	specs []JobSpec
	i     int
}

// SliceSource returns a Source that replays an in-memory trace in slice
// order (the caller must have sorted it by arrival, as trace generators do).
func SliceSource(specs []JobSpec) Source { return &sliceSource{specs: specs} }

func (s *sliceSource) Next() (JobSpec, bool, error) {
	if s.i >= len(s.specs) {
		return JobSpec{}, false, nil
	}
	spec := s.specs[s.i]
	s.i++
	return spec, true, nil
}

// Strided filters a source down to one shard's jobs: of the stream's items
// (0-indexed), it yields those whose index is congruent to offset modulo
// stride. Each shard of a sharded run wraps its own independent source
// instance — every shard regenerates or re-reads the full sequence and keeps
// every stride-th item — so shards never contend on a shared reader and a
// bounded worker pool cannot deadlock on a demultiplexed stream.
func Strided(src Source, offset, stride int) Source {
	return &stridedSource{src: src, offset: offset, stride: stride}
}

type stridedSource struct {
	src            Source
	offset, stride int
	i              int
}

func (s *stridedSource) Next() (JobSpec, bool, error) {
	for {
		spec, ok, err := s.src.Next()
		if !ok || err != nil {
			return JobSpec{}, false, err
		}
		mine := s.i%s.stride == s.offset
		s.i++
		if mine {
			return spec, true, nil
		}
	}
}
