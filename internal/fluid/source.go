// Streaming trace substrate: a Source yields job specs one at a time, so a
// run's memory tracks the jobs that are live at once instead of the trace
// length. The canonical contract lives in internal/substrate's streaming
// kernel (so internal/trace depends on substrate, not on a simulator); this
// file re-exports it under the names fluid call sites have always used.
package fluid

import "lasmq/internal/substrate"

// Source streams the jobs of a trace in nondecreasing arrival order — an
// alias of the substrate kernel's canonical Source. Next returns the next
// spec and true, or a zero spec and false once the trace is exhausted; an
// error aborts the consuming run. Implementations must be deterministic: two
// sources built from the same inputs (same seed, same bytes) must yield
// identical sequences, the property the streaming-versus-materialized
// differential tests pin.
type Source = substrate.Source

// SliceSource returns a Source that replays an in-memory trace in slice
// order (the caller must have sorted it by arrival, as trace generators do).
func SliceSource(specs []JobSpec) Source { return substrate.SliceStream(specs) }

// Strided filters a source down to one shard's jobs: of the stream's items
// (0-indexed), it yields those whose index is congruent to offset modulo
// stride. Each shard of a sharded run wraps its own independent source
// instance — every shard regenerates or re-reads the full sequence and keeps
// every stride-th item — so shards never contend on a shared reader and a
// bounded worker pool cannot deadlock on a demultiplexed stream.
func Strided(src Source, offset, stride int) Source {
	return substrate.Strided(src, offset, stride)
}
