package fluid

import (
	"strings"
	"testing"

	"lasmq/internal/sched"
)

// TestStuckAdmission drives the defensive stuck-admission error path: the
// cluster is idle, no arrivals remain, yet the admission module still holds
// jobs it can never release. The state is unreachable through Run's public
// API (every admitted fluid job eventually finishes and frees its slot), so
// the test leaks an admission slot through the kernel queue directly.
func TestStuckAdmission(t *testing.T) {
	specs := []JobSpec{{ID: 1, Arrival: 0, Size: 1, Width: 1}}
	s := newSim(specs, sched.NewFIFO(), Config{Capacity: 1, TaskDuration: 1, MaxRunningJobs: 1})
	// Leak the only admission slot: a phantom job is released (occupying the
	// slot) but never joins the active set, so it can never complete.
	s.adm.Push(&fluidJob{spec: JobSpec{ID: 99}})
	s.adm.Admit(func(*fluidJob, int) {})

	err := s.run()
	if err == nil {
		t.Fatal("run with a leaked admission slot must fail, got nil")
	}
	want := "fluid: 1 jobs stuck in admission with empty cluster"
	if !strings.Contains(err.Error(), want) {
		t.Fatalf("error = %q, want it to contain %q", err, want)
	}
}
