package fluid

import (
	"errors"
	"fmt"

	"lasmq/internal/sched"
	"lasmq/internal/substrate"
)

// StreamResult reports a streaming (or sharded) fluid run. Unlike Result it
// holds no per-job slice — a million-job run keeps running aggregates only;
// per-job records flow through RunStream's callback as jobs complete. The
// response and slowdown sums accumulate in completion order (deterministic
// for a given seeded run), not trace order, so their last-ulp values may
// differ from a materialized Result's trace-order sums; the differential
// tests compare the per-job outcomes, which are byte-identical.
type StreamResult struct {
	// Scheduler is the policy name (sched.Scheduler.Name).
	Scheduler string
	// Jobs is the number of completed jobs.
	Jobs int
	// Makespan is the completion time of the last job.
	Makespan float64
	// Utilization is the time-averaged fraction of capacity in use over the
	// makespan.
	Utilization float64
	// Delivered is the total service delivered in capacity-time units
	// (Utilization's numerator, kept explicit so sharded runs can fold
	// per-shard results exactly).
	Delivered float64
	// Rounds is the number of scheduling rounds executed.
	Rounds int
	// SumResponse and SumSlowdown accumulate per-job response times and
	// slowdowns in completion order.
	SumResponse float64
	SumSlowdown float64
	// Slab reports the job-record free list: peak live jobs bounds the run's
	// state memory, recycled counts mid-run slot reuses. Sharded runs sum the
	// per-shard values.
	Slab substrate.SlabStats
}

// MeanResponseTime is the average job response time; 0 with no jobs.
func (r *StreamResult) MeanResponseTime() float64 {
	if r.Jobs == 0 {
		return 0
	}
	return r.SumResponse / float64(r.Jobs)
}

// MeanSlowdown is the average job slowdown; 0 with no jobs.
func (r *StreamResult) MeanSlowdown() float64 {
	if r.Jobs == 0 {
		return 0
	}
	return r.SumSlowdown / float64(r.Jobs)
}

// validateStreamSpec checks one streamed spec before the run admits it: the
// same per-spec checks Run applies up front, plus the nondecreasing-order
// contract a streaming run must enforce on the fly (prev is the previously
// yielded arrival, meaningful when n > 0). Wired into the substrate kernel's
// StreamCursor as its Validate hook.
func validateStreamSpec(n int, prev float64, s *JobSpec) error {
	if s.Size <= 0 {
		return fmt.Errorf("fluid: job %d has non-positive size %v", s.ID, s.Size)
	}
	if s.Width < 1 {
		return fmt.Errorf("fluid: job %d has width %v < 1", s.ID, s.Width)
	}
	if s.Arrival < 0 {
		return fmt.Errorf("fluid: job %d has negative arrival %v", s.ID, s.Arrival)
	}
	if n > 0 && s.Arrival < prev {
		return fmt.Errorf("fluid: source not sorted: job %d arrives at %v after %v",
			s.ID, s.Arrival, prev)
	}
	return nil
}

// sourceCursor instantiates the substrate kernel's StreamCursor for fluid:
// Peek reads one spec ahead (validating it), Pop materializes the job record
// from the free-list pool. Completed records return to the pool, so the
// run's job state is bounded by the peak number of live jobs.
func sourceCursor(src Source, pool *substrate.SlabPool[fluidJob], taskDuration float64) arrivalCursor {
	return &substrate.StreamCursor[JobSpec, fluidJob]{
		Src:      src,
		Pool:     pool,
		Arrival:  func(s *JobSpec) float64 { return s.Arrival },
		Validate: validateStreamSpec,
		Wrap:     func(err error) error { return fmt.Errorf("fluid: source: %w", err) },
		Fill: func(j *fluidJob, spec *JobSpec) {
			j.spec = *spec
			j.view.j = j
			j.view.taskDuration = taskDuration
		},
	}
}

// RunStream simulates a streamed trace under the given policy. The source
// must yield jobs in nondecreasing arrival order (trace generators and
// WriteCSV output are; an unsorted stream is an error — a streaming run
// cannot sort what it has not read). Completed jobs are reported through
// each (in completion order) when non-nil, and their records return to a
// free-list pool, so peak memory is bounded by the jobs live at once, not
// the trace length. The scheduler instance must be fresh. Unlike Run,
// duplicate job IDs are not detected (that check needs trace-length state).
func RunStream(src Source, policy sched.Scheduler, cfg Config, each func(JobResult)) (*StreamResult, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if policy == nil {
		return nil, errors.New("fluid: nil scheduler")
	}
	if src == nil {
		return nil, errors.New("fluid: nil source")
	}
	ar := arenaPool.Get().(*arena)
	ar.buildStream()
	var pool substrate.SlabPool[fluidJob]
	out := &StreamResult{}
	s := &sim{
		cfg:    cfg,
		probe:  cfg.Probe,
		driver: substrate.NewDriver(policy),
		adm:    substrate.NewQueue[*fluidJob](cfg.MaxRunningJobs),
		arena:  ar,
		cur:    sourceCursor(src, &pool, cfg.TaskDuration),
	}
	s.finish = func(j *fluidJob, jr JobResult) {
		out.Jobs++
		out.SumResponse += jr.ResponseTime
		out.SumSlowdown += jr.Slowdown
		if each != nil {
			each(jr)
		}
		pool.Put(j)
	}
	s.driver.SetProbe(cfg.Probe)
	defer s.release()
	if err := s.run(); err != nil {
		return nil, err
	}
	out.Scheduler = s.driver.Name()
	out.Makespan = s.makespan
	out.Delivered = s.delivered
	if s.makespan > 0 {
		out.Utilization = s.delivered / (s.makespan * s.cfg.Capacity)
	}
	out.Rounds = s.rounds
	out.Slab = pool.Stats()
	if s.probe != nil {
		s.probe.SlabStats(s.now, out.Slab.Live, out.Slab.Peak, out.Slab.Recycled)
	}
	return out, nil
}
