package fluid_test

import (
	"reflect"
	"testing"

	"lasmq/internal/fluid"
	"lasmq/internal/sched"
)

// TestAdmissionLimitEdgeCasesFluid covers the kernel admission queue's
// boundary settings through the fluid simulator: limit 0 means unlimited,
// and a limit above the job count must behave identically to unlimited.
// (Limit 1 serialization is covered by TestAdmissionLimit.)
func TestAdmissionLimitEdgeCasesFluid(t *testing.T) {
	specs := []fluid.JobSpec{
		{ID: 1, Arrival: 0, Size: 10, Width: 5, Priority: 1},
		{ID: 2, Arrival: 1, Size: 6, Width: 3, Priority: 1},
		{ID: 3, Arrival: 2, Size: 4, Width: 2, Priority: 1},
	}
	run := func(limit int) *fluid.Result {
		t.Helper()
		cfg := fluid.Config{Capacity: 10, TaskDuration: 1, MaxRunningJobs: limit}
		res, err := fluid.Run(specs, sched.NewFair(), cfg)
		if err != nil {
			t.Fatalf("limit %d: %v", limit, err)
		}
		if got := len(res.Jobs); got != len(specs) {
			t.Fatalf("limit %d: completed %d jobs, want %d", limit, got, len(specs))
		}
		for _, jr := range res.Jobs {
			if jr.ResponseTime <= 0 {
				t.Fatalf("limit %d: job %d has response %v, want > 0", limit, jr.ID, jr.ResponseTime)
			}
		}
		return res
	}

	unlimited := run(0)
	above := run(len(specs) + 10)
	if !reflect.DeepEqual(unlimited.Jobs, above.Jobs) {
		t.Errorf("limit above job count diverged from unlimited:\n  limit 0: %+v\n  limit %d: %+v",
			unlimited.Jobs, len(specs)+10, above.Jobs)
	}
	if unlimited.MeanResponseTime() != above.MeanResponseTime() {
		t.Errorf("mean response: limit 0 = %v, limit above count = %v",
			unlimited.MeanResponseTime(), above.MeanResponseTime())
	}
}
