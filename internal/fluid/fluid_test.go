package fluid_test

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"lasmq/internal/core"
	"lasmq/internal/fluid"
	"lasmq/internal/sched"
)

func cfg1() fluid.Config {
	return fluid.Config{Capacity: 1, TaskDuration: 1}
}

func newLASMQ(t *testing.T, mutate func(*core.Config)) *core.LASMQ {
	t.Helper()
	c := core.DefaultConfig()
	c.FirstThreshold = 1
	if mutate != nil {
		mutate(&c)
	}
	s, err := core.New(c)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSingleJob(t *testing.T) {
	specs := []fluid.JobSpec{{ID: 1, Size: 10, Width: 2, Priority: 1}}
	cfg := fluid.Config{Capacity: 10, TaskDuration: 1}
	res, err := fluid.Run(specs, sched.NewFIFO(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	jr := res.Jobs[0]
	if math.Abs(jr.ResponseTime-5) > 1e-6 {
		t.Errorf("response = %v, want 5 (size 10 at width 2)", jr.ResponseTime)
	}
	if math.Abs(jr.Slowdown-1) > 1e-6 {
		t.Errorf("slowdown = %v, want 1 for an isolated job", jr.Slowdown)
	}
}

func TestWidthCapsRate(t *testing.T) {
	// Plenty of capacity, but the job can only use 2 containers.
	specs := []fluid.JobSpec{{ID: 1, Size: 100, Width: 2, Priority: 1}}
	res, err := fluid.Run(specs, sched.NewFair(), fluid.Config{Capacity: 50, TaskDuration: 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Jobs[0].ResponseTime-50) > 1e-6 {
		t.Errorf("response = %v, want 50", res.Jobs[0].ResponseTime)
	}
}

func TestFIFOSequential(t *testing.T) {
	specs := []fluid.JobSpec{
		{ID: 1, Arrival: 0, Size: 100, Width: 10, Priority: 1},
		{ID: 2, Arrival: 0, Size: 10, Width: 10, Priority: 1},
	}
	res, err := fluid.Run(specs, sched.NewFIFO(), fluid.Config{Capacity: 10, TaskDuration: 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Jobs[0].Completed-10) > 1e-6 {
		t.Errorf("job 1 completed = %v, want 10", res.Jobs[0].Completed)
	}
	if math.Abs(res.Jobs[1].Completed-11) > 1e-6 {
		t.Errorf("job 2 completed = %v, want 11 (blocked behind job 1)", res.Jobs[1].Completed)
	}
}

func TestFairProcessorSharing(t *testing.T) {
	specs := []fluid.JobSpec{
		{ID: 1, Size: 10, Width: 10, Priority: 1},
		{ID: 2, Size: 10, Width: 10, Priority: 1},
	}
	res, err := fluid.Run(specs, sched.NewFair(), fluid.Config{Capacity: 10, TaskDuration: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, jr := range res.Jobs {
		if math.Abs(jr.Completed-2) > 1e-6 {
			t.Errorf("job %d completed = %v, want 2 (even sharing)", jr.ID, jr.Completed)
		}
	}
}

// TestFig1LAS reproduces the paper's motivating example (Fig. 1a): jobs A, B,
// C with sizes 4, 4, 1 arriving at t = 0, 1, 2 on a unit-capacity cluster.
func TestFig1LAS(t *testing.T) {
	specs := []fluid.JobSpec{
		{ID: 1, Arrival: 0, Size: 4, Width: 1, Priority: 1}, // A
		{ID: 2, Arrival: 1, Size: 4, Width: 1, Priority: 1}, // B
		{ID: 3, Arrival: 2, Size: 1, Width: 1, Priority: 1}, // C
	}
	res, err := fluid.Run(specs, sched.NewLAS(), cfg1())
	if err != nil {
		t.Fatal(err)
	}
	wants := map[int]float64{1: 9, 2: 8, 3: 1} // responses from Fig. 1a
	for _, jr := range res.Jobs {
		if math.Abs(jr.ResponseTime-wants[jr.ID]) > 1e-3 {
			t.Errorf("LAS job %d response = %v, want %v", jr.ID, jr.ResponseTime, wants[jr.ID])
		}
	}
}

// TestFig1LASMQ reproduces Fig. 1b: with a 2-level queue (threshold 1) job A's
// response time drops from 9 to 6 while B and C keep theirs.
func TestFig1LASMQ(t *testing.T) {
	specs := []fluid.JobSpec{
		{ID: 1, Arrival: 0, Size: 4, Width: 1, Priority: 1},
		{ID: 2, Arrival: 1, Size: 4, Width: 1, Priority: 1},
		{ID: 3, Arrival: 2, Size: 1, Width: 1, Priority: 1},
	}
	mq := newLASMQ(t, func(c *core.Config) {
		c.Queues = 2
		c.FirstThreshold = 1
		// Fig. 1 assumes strict priority between the two queues; a huge decay
		// emulates it.
		c.QueueWeightDecay = 1e9
	})
	res, err := fluid.Run(specs, mq, cfg1())
	if err != nil {
		t.Fatal(err)
	}
	wants := map[int]float64{1: 6, 2: 8, 3: 1}
	for _, jr := range res.Jobs {
		if math.Abs(jr.ResponseTime-wants[jr.ID]) > 1e-3 {
			t.Errorf("LAS_MQ job %d response = %v, want %v", jr.ID, jr.ResponseTime, wants[jr.ID])
		}
	}
}

func TestUniformBatchFIFOBeatsProcessorSharing(t *testing.T) {
	// Small-scale version of Fig. 7b: identical jobs in a batch. FIFO (and
	// LAS_MQ) halve the mean response of Fair/LAS.
	var specs []fluid.JobSpec
	for i := 1; i <= 8; i++ {
		specs = append(specs, fluid.JobSpec{ID: i, Size: 10, Width: 1, Priority: 1})
	}
	run := func(p sched.Scheduler) float64 {
		res, err := fluid.Run(specs, p, cfg1())
		if err != nil {
			t.Fatal(err)
		}
		return res.MeanResponseTime()
	}
	fifo := run(sched.NewFIFO())
	fair := run(sched.NewFair())
	las := run(sched.NewLAS())
	mq := run(newLASMQ(t, nil))

	if math.Abs(fifo-45) > 1e-6 { // (10+20+...+80)/8
		t.Errorf("FIFO mean = %v, want 45", fifo)
	}
	if math.Abs(fair-80) > 1e-6 { // all complete at 80
		t.Errorf("Fair mean = %v, want 80", fair)
	}
	if las < fifo {
		t.Errorf("LAS mean %v beat FIFO %v on identical sizes", las, fifo)
	}
	if mq > 1.3*fifo {
		t.Errorf("LAS_MQ mean %v should stay close to FIFO %v on identical sizes", mq, fifo)
	}
	if fair < 1.5*mq {
		t.Errorf("Fair mean %v should be well above LAS_MQ %v on identical sizes", fair, mq)
	}
}

func TestHeavyTailLASMQBeatsFair(t *testing.T) {
	// A small heavy-tailed mix: many small jobs, one huge job.
	r := rand.New(rand.NewSource(3))
	var specs []fluid.JobSpec
	arrival := 0.0
	for i := 1; i <= 40; i++ {
		size := 2 + r.Float64()*4
		if i%10 == 0 {
			size = 400
		}
		arrival += r.ExpFloat64() * 2
		specs = append(specs, fluid.JobSpec{
			ID: i, Arrival: arrival, Size: size,
			Width: math.Max(1, math.Ceil(size)), Priority: r.Intn(5) + 1,
		})
	}
	cfg := fluid.Config{Capacity: 10, TaskDuration: 1}
	run := func(p sched.Scheduler) float64 {
		res, err := fluid.Run(specs, p, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.MeanResponseTime()
	}
	fair := run(sched.NewFair())
	mq := run(newLASMQ(t, nil))
	fifo := run(sched.NewFIFO())
	if mq >= fair {
		t.Errorf("LAS_MQ mean %v not better than Fair %v on heavy tail", mq, fair)
	}
	if fifo <= fair {
		t.Errorf("FIFO mean %v should be worst on heavy tail (Fair %v)", fifo, fair)
	}
}

func TestAdmissionLimit(t *testing.T) {
	specs := []fluid.JobSpec{
		{ID: 1, Size: 10, Width: 5, Priority: 1},
		{ID: 2, Size: 10, Width: 5, Priority: 1},
	}
	cfg := fluid.Config{Capacity: 10, TaskDuration: 1, MaxRunningJobs: 1}
	res, err := fluid.Run(specs, sched.NewFair(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Jobs[0].Completed-2) > 1e-6 {
		t.Errorf("job 1 completed = %v, want 2", res.Jobs[0].Completed)
	}
	if math.Abs(res.Jobs[1].Completed-4) > 1e-6 {
		t.Errorf("job 2 completed = %v, want 4 (admitted after job 1)", res.Jobs[1].Completed)
	}
}

func TestIdlePeriodSkipped(t *testing.T) {
	specs := []fluid.JobSpec{
		{ID: 1, Arrival: 0, Size: 1, Width: 1, Priority: 1},
		{ID: 2, Arrival: 100, Size: 1, Width: 1, Priority: 1},
	}
	res, err := fluid.Run(specs, sched.NewFIFO(), cfg1())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Jobs[1].Completed-101) > 1e-6 {
		t.Errorf("job 2 completed = %v, want 101", res.Jobs[1].Completed)
	}
	if math.Abs(res.Jobs[1].ResponseTime-1) > 1e-6 {
		t.Errorf("job 2 response = %v, want 1", res.Jobs[1].ResponseTime)
	}
}

func TestValidation(t *testing.T) {
	good := []fluid.JobSpec{{ID: 1, Size: 1, Width: 1, Priority: 1}}
	tests := []struct {
		name  string
		specs []fluid.JobSpec
		cfg   fluid.Config
	}{
		{name: "zero capacity", specs: good, cfg: fluid.Config{Capacity: 0}},
		{name: "negative step", specs: good, cfg: fluid.Config{Capacity: 1, MaxStep: -1}},
		{name: "negative task duration", specs: good, cfg: fluid.Config{Capacity: 1, TaskDuration: -1}},
		{name: "zero size", specs: []fluid.JobSpec{{ID: 1, Width: 1}}, cfg: cfg1()},
		{name: "zero width", specs: []fluid.JobSpec{{ID: 1, Size: 1}}, cfg: cfg1()},
		{name: "negative arrival", specs: []fluid.JobSpec{{ID: 1, Size: 1, Width: 1, Arrival: -1}}, cfg: cfg1()},
		{
			name: "duplicate IDs",
			specs: []fluid.JobSpec{
				{ID: 1, Size: 1, Width: 1},
				{ID: 1, Size: 1, Width: 1},
			},
			cfg: cfg1(),
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := fluid.Run(tt.specs, sched.NewFIFO(), tt.cfg); err == nil {
				t.Error("expected validation error")
			}
		})
	}
	if _, err := fluid.Run(good, nil, cfg1()); err == nil {
		t.Error("expected error for nil scheduler")
	}
}

func TestDeterministic(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	var specs []fluid.JobSpec
	arrival := 0.0
	for i := 1; i <= 30; i++ {
		arrival += r.ExpFloat64()
		specs = append(specs, fluid.JobSpec{
			ID: i, Arrival: arrival, Size: 1 + r.Float64()*50,
			Width: float64(1 + r.Intn(5)), Priority: 1 + r.Intn(5),
		})
	}
	cfg := fluid.Config{Capacity: 5, TaskDuration: 1}
	a, err := fluid.Run(specs, newLASMQ(t, nil), cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := fluid.Run(specs, newLASMQ(t, nil), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Jobs {
		if a.Jobs[i] != b.Jobs[i] {
			t.Errorf("job %d differs across identical runs:\n%+v\n%+v", i, a.Jobs[i], b.Jobs[i])
		}
	}
}

func TestConservationProperty(t *testing.T) {
	policies := []func() sched.Scheduler{
		func() sched.Scheduler { return sched.NewFIFO() },
		func() sched.Scheduler { return sched.NewFair() },
		func() sched.Scheduler { return sched.NewLAS() },
		func() sched.Scheduler {
			c := core.DefaultConfig()
			c.FirstThreshold = 1
			s, _ := core.New(c)
			return s
		},
	}
	f := func(seed int64, n uint8) bool {
		r := rand.New(rand.NewSource(seed))
		count := int(n%15) + 1
		var specs []fluid.JobSpec
		arrival := 0.0
		var totalSize float64
		for i := 1; i <= count; i++ {
			arrival += r.ExpFloat64() * 2
			size := 0.5 + r.Float64()*30
			totalSize += size
			specs = append(specs, fluid.JobSpec{
				ID: i, Arrival: arrival, Size: size,
				Width: float64(1 + r.Intn(4)), Priority: 1 + r.Intn(5),
			})
		}
		capacity := 3.0
		for _, mk := range policies {
			res, err := fluid.Run(specs, mk(), fluid.Config{Capacity: capacity, TaskDuration: 1})
			if err != nil {
				return false
			}
			if len(res.Jobs) != count {
				return false
			}
			for _, jr := range res.Jobs {
				if jr.ResponseTime <= 0 || jr.Completed < jr.Arrival {
					return false
				}
				if jr.Slowdown < 1-1e-6 {
					return false // cannot beat isolated execution
				}
			}
			// Service conservation: the cluster cannot deliver more than
			// capacity x makespan.
			if totalSize > capacity*res.Makespan+1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestSRTFPreemptsForShorterJob(t *testing.T) {
	specs := []fluid.JobSpec{
		{ID: 1, Arrival: 0, Size: 100, Width: 1, Priority: 1},
		{ID: 2, Arrival: 5, Size: 2, Width: 1, Priority: 1},
	}
	res, err := fluid.Run(specs, sched.NewSRTF(), cfg1())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Jobs[1].Completed-7) > 1e-6 {
		t.Errorf("short job completed = %v, want 7 (preempts long job)", res.Jobs[1].Completed)
	}
	if math.Abs(res.Jobs[0].Completed-102) > 1e-6 {
		t.Errorf("long job completed = %v, want 102", res.Jobs[0].Completed)
	}
}

func TestSJFWithBadEstimateHurts(t *testing.T) {
	// The motivation experiment: an under-estimated large job blocks a small
	// one under SJF; LAS_MQ (estimate-free) does not fall for it.
	specs := []fluid.JobSpec{
		{ID: 1, Arrival: 0, Size: 200, Width: 1, Priority: 1, SizeHint: 1}, // lies about its size
		{ID: 2, Arrival: 1, Size: 5, Width: 1, Priority: 1},
	}
	sjf, err := fluid.Run(specs, sched.NewSJF(), cfg1())
	if err != nil {
		t.Fatal(err)
	}
	mq, err := fluid.Run(specs, newLASMQ(t, nil), cfg1())
	if err != nil {
		t.Fatal(err)
	}
	if sjf.Jobs[1].ResponseTime <= mq.Jobs[1].ResponseTime {
		t.Errorf("small job under mis-estimated SJF (%v) should be worse than under LAS_MQ (%v)",
			sjf.Jobs[1].ResponseTime, mq.Jobs[1].ResponseTime)
	}
}

func TestMaxStepCapsAdvancement(t *testing.T) {
	// With a step cap, extra scheduling rounds occur but results are
	// unchanged.
	specs := []fluid.JobSpec{
		{ID: 1, Size: 100, Width: 1, Priority: 1},
		{ID: 2, Arrival: 5, Size: 10, Width: 1, Priority: 1},
	}
	free, err := fluid.Run(specs, sched.NewFIFO(), fluid.Config{Capacity: 1, TaskDuration: 1})
	if err != nil {
		t.Fatal(err)
	}
	capped, err := fluid.Run(specs, sched.NewFIFO(), fluid.Config{Capacity: 1, TaskDuration: 1, MaxStep: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := range free.Jobs {
		if math.Abs(free.Jobs[i].ResponseTime-capped.Jobs[i].ResponseTime) > 1e-6 {
			t.Errorf("job %d: capped response %v differs from uncapped %v",
				i+1, capped.Jobs[i].ResponseTime, free.Jobs[i].ResponseTime)
		}
	}
	if capped.Rounds <= free.Rounds {
		t.Errorf("capped run used %d rounds, uncapped %d; expected more with MaxStep", capped.Rounds, free.Rounds)
	}
}

func TestUtilizationReported(t *testing.T) {
	specs := []fluid.JobSpec{{ID: 1, Size: 10, Width: 1, Priority: 1}}
	res, err := fluid.Run(specs, sched.NewFIFO(), fluid.Config{Capacity: 2, TaskDuration: 1})
	if err != nil {
		t.Fatal(err)
	}
	// One width-1 job on capacity 2: utilization exactly 0.5 over its run.
	if math.Abs(res.Utilization-0.5) > 1e-9 {
		t.Errorf("utilization = %v, want 0.5", res.Utilization)
	}
}

func TestDefaultConfig(t *testing.T) {
	cfg := fluid.DefaultConfig()
	if cfg.Capacity != 100 || cfg.TaskDuration != 1 {
		t.Errorf("DefaultConfig = %+v", cfg)
	}
}

func TestResultAccessors(t *testing.T) {
	specs := []fluid.JobSpec{
		{ID: 1, Size: 4, Width: 1, Priority: 1},
		{ID: 2, Arrival: 1, Size: 2, Width: 1, Priority: 1},
	}
	res, err := fluid.Run(specs, sched.NewFIFO(), cfg1())
	if err != nil {
		t.Fatal(err)
	}
	rts := res.ResponseTimes()
	if len(rts) != 2 || rts[0] != 4 || rts[1] != 5 {
		t.Errorf("ResponseTimes = %v", rts)
	}
	slow := res.Slowdowns()
	if len(slow) != 2 || slow[0] != 1 || slow[1] != 2.5 {
		t.Errorf("Slowdowns = %v", slow)
	}
	if got := res.MeanResponseTime(); math.Abs(got-4.5) > 1e-9 {
		t.Errorf("mean = %v", got)
	}
	var empty fluid.Result
	if empty.MeanResponseTime() != 0 {
		t.Error("empty mean should be 0")
	}
}

func TestSRTFHintClamped(t *testing.T) {
	// A job with an under-estimated hint: once attained exceeds the hint,
	// remaining-size hints clamp at zero and the run still completes.
	specs := []fluid.JobSpec{
		{ID: 1, Size: 10, Width: 1, Priority: 1, SizeHint: 2},
		{ID: 2, Arrival: 1, Size: 3, Width: 1, Priority: 1},
	}
	res, err := fluid.Run(specs, sched.NewSRTF(), cfg1())
	if err != nil {
		t.Fatal(err)
	}
	// The lying job keeps absolute priority (remaining hint 0).
	if math.Abs(res.Jobs[0].Completed-10) > 1e-6 {
		t.Errorf("job 1 completed = %v, want 10", res.Jobs[0].Completed)
	}
	if math.Abs(res.Jobs[1].Completed-13) > 1e-6 {
		t.Errorf("job 2 completed = %v, want 13 (blocked by the lying job)", res.Jobs[1].Completed)
	}
}
