// Package cli holds helpers shared by the command-line tools: scheduler
// construction from flag values and small output formatters.
package cli

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"lasmq/internal/core"
	"lasmq/internal/sched"
	"lasmq/internal/stats"
)

// SchedulerNames lists the accepted -scheduler flag values.
func SchedulerNames() string { return "lasmq, las, fair, fifo, sjf, srtf" }

// BuildScheduler constructs a fresh scheduler from a flag value. The mqCfg
// is used when name selects LAS_MQ.
func BuildScheduler(name string, mqCfg core.Config) (sched.Scheduler, error) {
	switch strings.ToLower(name) {
	case "lasmq", "las_mq", "las-mq":
		return core.New(mqCfg)
	case "las":
		return sched.NewLAS(), nil
	case "fair":
		return sched.NewFair(), nil
	case "fifo":
		return sched.NewFIFO(), nil
	case "sjf":
		return sched.NewSJF(), nil
	case "srtf":
		return sched.NewSRTF(), nil
	default:
		return nil, fmt.Errorf("unknown scheduler %q (want one of %s)", name, SchedulerNames())
	}
}

// PrintSummary writes a response-time summary block.
func PrintSummary(w io.Writer, label string, responses []float64) {
	s := stats.Summarize(responses)
	fmt.Fprintf(w, "%s: n=%d mean=%.4g p50=%.4g p90=%.4g p99=%.4g max=%.4g\n",
		label, s.Count, s.Mean, s.P50, s.P90, s.P99, s.Max)
}

// PrintCDF writes an empirical CDF, downsampled to at most points rows.
func PrintCDF(w io.Writer, values []float64, points int) {
	cdf := stats.CDF(values)
	if len(cdf) == 0 {
		return
	}
	step := 1
	if points > 0 && len(cdf) > points {
		step = len(cdf) / points
	}
	fmt.Fprintln(w, "value,cdf")
	for i := 0; i < len(cdf); i += step {
		fmt.Fprintf(w, "%g,%g\n", cdf[i].X, cdf[i].P)
	}
	if (len(cdf)-1)%step != 0 {
		last := cdf[len(cdf)-1]
		fmt.Fprintf(w, "%g,%g\n", last.X, last.P)
	}
}

// PrintBinMeans writes per-bin mean response times in bin order.
func PrintBinMeans(w io.Writer, bins []int, responses []float64) error {
	means, err := stats.GroupMeans(bins, responses)
	if err != nil {
		return err
	}
	keys := make([]int, 0, len(means))
	for k := range means {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	for _, k := range keys {
		fmt.Fprintf(w, "bin %d: mean response %.4g\n", k, means[k])
	}
	return nil
}
