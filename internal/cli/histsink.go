package cli

import (
	"fmt"
	"io"
	"os"

	"lasmq/internal/obs"
)

// HistSink bundles the distribution sinks behind the CLIs' -hist-out /
// -series-out flags: mergeable log-scale histograms (job response, slowdown,
// admission wait, task duration, per-round scheduler latency) and a windowed
// virtual-time series (utilization, queue depths, live jobs, events/sec),
// each written as CSV when the sink is closed. Like tracing, attaching the
// sink never changes simulated results.
type HistSink struct {
	// Histograms aggregates the run's latency/size distributions.
	Histograms *obs.Histograms
	// Series samples gauge state on scheduling-round boundaries; nil when
	// -series-out is unset.
	Series *obs.Series

	histPath, seriesPath string
	histFile, seriesFile *os.File
	probe                obs.Probe
}

// OpenHistSink creates the sinks for the given flag values; window and
// capacity configure the series sampler (virtual seconds per point and the
// cluster's container count, the utilization denominator). Both paths empty
// returns (nil, nil): distribution telemetry off.
func OpenHistSink(histPath, seriesPath string, window float64, capacity int) (*HistSink, error) {
	if histPath == "" && seriesPath == "" {
		return nil, nil
	}
	h := &HistSink{histPath: histPath, seriesPath: seriesPath}
	var probes []obs.Probe
	if histPath != "" {
		f, err := os.Create(histPath)
		if err != nil {
			return nil, err
		}
		h.histFile = f
		h.Histograms = obs.NewHistograms()
		probes = append(probes, h.Histograms)
	}
	if seriesPath != "" {
		f, err := os.Create(seriesPath)
		if err != nil {
			if h.histFile != nil {
				h.histFile.Close()
				os.Remove(histPath)
			}
			return nil, err
		}
		h.seriesFile = f
		h.Series = obs.NewSeries(window, capacity)
		probes = append(probes, h.Series)
	}
	h.probe = obs.Multi(probes...)
	return h, nil
}

// Probe returns the probe to attach to the run. Safe on a nil sink (returns
// nil: distribution telemetry off, zero overhead).
func (h *HistSink) Probe() obs.Probe {
	if h == nil {
		return nil
	}
	return h.probe
}

// Close writes the CSVs and closes the files. Safe on a nil sink.
func (h *HistSink) Close() error {
	if h == nil {
		return nil
	}
	if h.histFile != nil {
		err := obs.WriteHistogramCSV(h.histFile, h.Histograms)
		if cerr := h.histFile.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return fmt.Errorf("histograms %s: %w", h.histPath, err)
		}
	}
	if h.seriesFile != nil {
		err := h.Series.WriteCSV(h.seriesFile)
		if cerr := h.seriesFile.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return fmt.Errorf("series %s: %w", h.seriesPath, err)
		}
	}
	return nil
}

// PrintSummary writes the response-time tail and the output paths to w.
// Safe on a nil sink (no output).
func (h *HistSink) PrintSummary(w io.Writer) {
	if h == nil {
		return
	}
	if h.Histograms != nil {
		resp, ok := h.Histograms.Histogram(obs.HistResponse)
		if ok && resp.Count() > 0 {
			s := resp.Snapshot()
			fmt.Fprintf(w, "response histogram (written to %s): n=%d p50=%.4g p90=%.4g p95=%.4g p99=%.4g p999=%.4g\n",
				h.histPath, s.Count, s.P50, s.P90, s.P95, s.P99, s.P999)
		} else {
			fmt.Fprintf(w, "histograms written to %s\n", h.histPath)
		}
	}
	if h.Series != nil {
		fmt.Fprintf(w, "series (written to %s): %d point(s), %d event(s)\n",
			h.seriesPath, len(h.Series.Points()), h.Series.Events())
	}
}
