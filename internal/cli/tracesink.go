package cli

import (
	"fmt"
	"io"
	"os"

	"lasmq/internal/obs"
)

// TraceFormats lists the accepted -trace-format flag values.
func TraceFormats() string { return "jsonl, chrome" }

// TraceSink bundles the telemetry sinks behind the CLIs' -trace-out /
// -trace-format flags: a file-backed event trace (JSONL or Chrome
// trace-event JSON) plus an aggregating obs.Counters whose summary the
// CLIs print after the run.
type TraceSink struct {
	// Counters aggregates scheduler telemetry for the end-of-run summary.
	Counters *obs.Counters

	path   string
	file   *os.File
	jsonl  *obs.JSONL
	chrome *obs.ChromeTrace
	probe  obs.Probe
}

// OpenTraceSink creates the sinks for the given flag values. An empty path
// returns (nil, nil): tracing off. The returned sink must be Closed to
// flush the trace file.
func OpenTraceSink(path, format string) (*TraceSink, error) {
	if path == "" {
		return nil, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	t := &TraceSink{Counters: obs.NewCounters(), path: path, file: f}
	switch format {
	case "jsonl":
		t.jsonl = obs.NewJSONL(f)
		t.probe = obs.Multi(t.Counters, t.jsonl)
	case "chrome":
		t.chrome = obs.NewChromeTrace()
		t.probe = obs.Multi(t.Counters, t.chrome)
	default:
		f.Close()
		os.Remove(path)
		return nil, fmt.Errorf("unknown trace format %q (want %s)", format, TraceFormats())
	}
	return t, nil
}

// Probe returns the probe to attach to the run. Safe on a nil sink (returns
// nil: tracing off, zero overhead).
func (t *TraceSink) Probe() obs.Probe {
	if t == nil {
		return nil
	}
	return t.probe
}

// Close flushes and closes the trace file. Safe on a nil sink.
func (t *TraceSink) Close() error {
	if t == nil {
		return nil
	}
	var err error
	switch {
	case t.jsonl != nil:
		err = t.jsonl.Flush()
	case t.chrome != nil:
		err = t.chrome.Export(t.file)
	}
	if cerr := t.file.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("trace %s: %w", t.path, err)
	}
	return nil
}

// PrintSummary writes the aggregated counters (and the trace file path) to
// w. Safe on a nil sink (no output).
func (t *TraceSink) PrintSummary(w io.Writer) {
	if t == nil {
		return
	}
	fmt.Fprintf(w, "telemetry (trace written to %s):\n", t.path)
	snap := t.Counters.Snapshot()
	snap.WriteSummary(w)
}
