package cli

import (
	"strings"
	"testing"

	"lasmq/internal/core"
)

func TestBuildScheduler(t *testing.T) {
	tests := []struct {
		give string
		want string
	}{
		{give: "lasmq", want: "LAS_MQ"},
		{give: "LAS_MQ", want: "LAS_MQ"},
		{give: "las-mq", want: "LAS_MQ"},
		{give: "las", want: "LAS"},
		{give: "fair", want: "FAIR"},
		{give: "FIFO", want: "FIFO"},
		{give: "sjf", want: "SJF"},
		{give: "srtf", want: "SRTF"},
	}
	for _, tt := range tests {
		t.Run(tt.give, func(t *testing.T) {
			s, err := BuildScheduler(tt.give, core.DefaultConfig())
			if err != nil {
				t.Fatal(err)
			}
			if s.Name() != tt.want {
				t.Errorf("BuildScheduler(%q).Name() = %q, want %q", tt.give, s.Name(), tt.want)
			}
		})
	}
}

func TestBuildSchedulerUnknown(t *testing.T) {
	if _, err := BuildScheduler("bogus", core.DefaultConfig()); err == nil {
		t.Error("expected error for unknown scheduler")
	}
}

func TestBuildSchedulerInvalidConfig(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.Queues = 0
	if _, err := BuildScheduler("lasmq", cfg); err == nil {
		t.Error("expected error for invalid LAS_MQ config")
	}
}

func TestPrintSummary(t *testing.T) {
	var b strings.Builder
	PrintSummary(&b, "resp", []float64{1, 2, 3, 4})
	out := b.String()
	for _, want := range []string{"resp:", "n=4", "mean=2.5"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary %q missing %q", out, want)
		}
	}
}

func TestPrintCDF(t *testing.T) {
	var b strings.Builder
	PrintCDF(&b, []float64{1, 2, 3}, 10)
	out := b.String()
	if !strings.HasPrefix(out, "value,cdf\n") {
		t.Errorf("CDF output missing header: %q", out)
	}
	if !strings.Contains(out, "3,1") {
		t.Errorf("CDF output missing final point: %q", out)
	}
	var empty strings.Builder
	PrintCDF(&empty, nil, 10)
	if empty.Len() != 0 {
		t.Errorf("empty CDF produced output %q", empty.String())
	}
}

func TestPrintCDFDownsamples(t *testing.T) {
	values := make([]float64, 1000)
	for i := range values {
		values[i] = float64(i)
	}
	var b strings.Builder
	PrintCDF(&b, values, 10)
	lines := strings.Count(b.String(), "\n")
	if lines > 120 {
		t.Errorf("downsampled CDF has %d lines, want around 10", lines)
	}
	if !strings.Contains(b.String(), "999,1") {
		t.Errorf("downsampled CDF lost final point:\n%s", b.String())
	}
}

func TestPrintBinMeans(t *testing.T) {
	var b strings.Builder
	if err := PrintBinMeans(&b, []int{1, 1, 2}, []float64{10, 20, 30}); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "bin 1: mean response 15") || !strings.Contains(out, "bin 2: mean response 30") {
		t.Errorf("bin means output wrong:\n%s", out)
	}
	if err := PrintBinMeans(&b, []int{1}, []float64{1, 2}); err == nil {
		t.Error("expected error for mismatched lengths")
	}
}
