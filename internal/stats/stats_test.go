package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.Count != 0 || s.Mean != 0 {
		t.Errorf("empty summary = %+v, want zero value", s)
	}
}

func TestSummarizeBasic(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.Count != 5 {
		t.Errorf("Count = %d, want 5", s.Count)
	}
	if s.Mean != 3 {
		t.Errorf("Mean = %v, want 3", s.Mean)
	}
	if s.Min != 1 || s.Max != 5 {
		t.Errorf("Min/Max = %v/%v, want 1/5", s.Min, s.Max)
	}
	if s.P50 != 3 {
		t.Errorf("P50 = %v, want 3", s.P50)
	}
	want := math.Sqrt(2)
	if math.Abs(s.StdDev-want) > 1e-9 {
		t.Errorf("StdDev = %v, want %v", s.StdDev, want)
	}
}

func TestSummarizeDoesNotMutateInput(t *testing.T) {
	in := []float64{3, 1, 2}
	Summarize(in)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Errorf("input mutated: %v", in)
	}
}

func TestMean(t *testing.T) {
	tests := []struct {
		name string
		give []float64
		want float64
	}{
		{name: "empty", give: nil, want: 0},
		{name: "single", give: []float64{7}, want: 7},
		{name: "several", give: []float64{1, 2, 3}, want: 2},
		{name: "negative", give: []float64{-2, 2}, want: 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Mean(tt.give); got != tt.want {
				t.Errorf("Mean(%v) = %v, want %v", tt.give, got, tt.want)
			}
		})
	}
}

func TestPercentile(t *testing.T) {
	values := []float64{10, 20, 30, 40, 50, 60, 70, 80, 90, 100}
	tests := []struct {
		q    float64
		want float64
	}{
		{q: 0, want: 10},
		{q: 1, want: 100},
		{q: 0.5, want: 55},
		{q: -0.5, want: 10},
		{q: 1.5, want: 100},
	}
	for _, tt := range tests {
		if got := Percentile(values, tt.q); math.Abs(got-tt.want) > 1e-9 {
			t.Errorf("Percentile(q=%v) = %v, want %v", tt.q, got, tt.want)
		}
	}
	if got := Percentile(nil, 0.5); got != 0 {
		t.Errorf("Percentile(nil) = %v, want 0", got)
	}
}

func TestCDF(t *testing.T) {
	points := CDF([]float64{3, 1, 2, 2})
	want := []CDFPoint{{X: 1, P: 0.25}, {X: 2, P: 0.75}, {X: 3, P: 1}}
	if len(points) != len(want) {
		t.Fatalf("CDF has %d points, want %d: %v", len(points), len(want), points)
	}
	for i := range want {
		if points[i] != want[i] {
			t.Errorf("point %d = %+v, want %+v", i, points[i], want[i])
		}
	}
	if got := CDF(nil); got != nil {
		t.Errorf("CDF(nil) = %v, want nil", got)
	}
}

func TestCDFProperties(t *testing.T) {
	f := func(values []float64) bool {
		for i, v := range values {
			if math.IsNaN(v) {
				values[i] = 0
			}
		}
		points := CDF(values)
		if len(values) == 0 {
			return points == nil
		}
		// P must be non-decreasing, end at 1, and X strictly increasing.
		prevP, prevX := 0.0, math.Inf(-1)
		for _, pt := range points {
			if pt.P < prevP || pt.X <= prevX {
				return false
			}
			prevP, prevX = pt.P, pt.X
		}
		return math.Abs(points[len(points)-1].P-1) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestFractionBelow(t *testing.T) {
	values := []float64{100, 200, 300, 400}
	if got := FractionBelow(values, 250); got != 0.5 {
		t.Errorf("FractionBelow(250) = %v, want 0.5", got)
	}
	if got := FractionBelow(values, 50); got != 0 {
		t.Errorf("FractionBelow(50) = %v, want 0", got)
	}
	if got := FractionBelow(values, 400); got != 1 {
		t.Errorf("FractionBelow(400) = %v, want 1", got)
	}
	if got := FractionBelow(nil, 10); got != 0 {
		t.Errorf("FractionBelow(nil) = %v, want 0", got)
	}
}

func TestGroupMeans(t *testing.T) {
	keys := []int{1, 1, 2, 4}
	values := []float64{10, 20, 30, 40}
	means, err := GroupMeans(keys, values)
	if err != nil {
		t.Fatal(err)
	}
	if means[1] != 15 || means[2] != 30 || means[4] != 40 {
		t.Errorf("GroupMeans = %v", means)
	}
	if _, ok := means[3]; ok {
		t.Error("GroupMeans invented a key")
	}
}

func TestGroupMeansLengthMismatch(t *testing.T) {
	if _, err := GroupMeans([]int{1}, []float64{1, 2}); err == nil {
		t.Error("expected error for mismatched lengths")
	}
}

func TestJainIndex(t *testing.T) {
	tests := []struct {
		name string
		give []float64
		want float64
	}{
		{name: "empty", give: nil, want: 0},
		{name: "equal values", give: []float64{3, 3, 3, 3}, want: 1},
		{name: "all zero", give: []float64{0, 0}, want: 1},
		{name: "single", give: []float64{7}, want: 1},
		{name: "one job gets all", give: []float64{10, 0, 0, 0}, want: 0.25},
		{name: "two of four", give: []float64{5, 5, 0, 0}, want: 0.5},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := JainIndex(tt.give); math.Abs(got-tt.want) > 1e-9 {
				t.Errorf("JainIndex(%v) = %v, want %v", tt.give, got, tt.want)
			}
		})
	}
}

func TestJainIndexBoundsProperty(t *testing.T) {
	f := func(raw []float64) bool {
		var values []float64
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				values = append(values, math.Abs(v))
			}
		}
		if len(values) == 0 {
			return true
		}
		j := JainIndex(values)
		return j >= 1/float64(len(values))-1e-9 && j <= 1+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestNormalized(t *testing.T) {
	if got := Normalized(200, 100); got != 2 {
		t.Errorf("Normalized(200,100) = %v, want 2", got)
	}
	if got := Normalized(100, 200); got != 0.5 {
		t.Errorf("Normalized(100,200) = %v, want 0.5", got)
	}
	if got := Normalized(0, 0); got != 0 {
		t.Errorf("Normalized(0,0) = %v, want 0", got)
	}
	if got := Normalized(5, 0); !math.IsInf(got, 1) {
		t.Errorf("Normalized(5,0) = %v, want +Inf", got)
	}
}

func TestPercentileMatchesSortedIndexForExactRanks(t *testing.T) {
	f := func(raw []float64) bool {
		var values []float64
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				values = append(values, v)
			}
		}
		if len(values) == 0 {
			return true
		}
		sorted := append([]float64(nil), values...)
		sort.Float64s(sorted)
		return Percentile(values, 0) == sorted[0] && Percentile(values, 1) == sorted[len(sorted)-1]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestReplicateEmptyAndSingle(t *testing.T) {
	if r := Replicate(nil); r.N != 0 || r.Mean != 0 || r.CI95 != 0 {
		t.Errorf("empty replication = %+v", r)
	}
	r := Replicate([]float64{42})
	if r.N != 1 || r.Mean != 42 || r.Min != 42 || r.Max != 42 {
		t.Errorf("single replication = %+v", r)
	}
	if r.CI95 != 0 || r.StdDev != 0 {
		t.Errorf("single replication carries spread: %+v", r)
	}
}

func TestReplicateTInterval(t *testing.T) {
	// {1,2,3}: mean 2, sample stddev 1, CI95 = t(2) * 1/sqrt(3) = 2.484...
	r := Replicate([]float64{1, 2, 3})
	if r.N != 3 || math.Abs(r.Mean-2) > 1e-12 {
		t.Fatalf("replication = %+v", r)
	}
	if math.Abs(r.StdDev-1) > 1e-12 {
		t.Errorf("stddev = %v, want 1", r.StdDev)
	}
	want := 4.303 / math.Sqrt(3)
	if math.Abs(r.CI95-want) > 1e-9 {
		t.Errorf("CI95 = %v, want %v", r.CI95, want)
	}
	if r.Min != 1 || r.Max != 3 {
		t.Errorf("spread = [%v,%v], want [1,3]", r.Min, r.Max)
	}
	// Identical values: zero-width interval.
	r = Replicate([]float64{5, 5, 5, 5})
	if r.CI95 != 0 || r.StdDev != 0 {
		t.Errorf("constant replication has spread: %+v", r)
	}
}

func TestTCritical95(t *testing.T) {
	if !math.IsInf(TCritical95(0), 1) {
		t.Error("df=0 should have no finite critical value")
	}
	if got := TCritical95(1); math.Abs(got-12.706) > 1e-9 {
		t.Errorf("t(1) = %v", got)
	}
	if got := TCritical95(7); math.Abs(got-2.365) > 1e-9 {
		t.Errorf("t(7) = %v", got)
	}
	if got := TCritical95(1000); got != 1.96 {
		t.Errorf("t(1000) = %v, want asymptotic 1.96", got)
	}
	// Monotone non-increasing in df.
	prev := math.Inf(1)
	for df := 1; df <= 40; df++ {
		cur := TCritical95(df)
		if cur > prev {
			t.Fatalf("t critical not monotone at df=%d: %v > %v", df, cur, prev)
		}
		prev = cur
	}
}

// TestCentralMoments checks the helper on a hand-computed sample.
func TestCentralMoments(t *testing.T) {
	m := CentralMoments([]float64{1, 2, 3, 4})
	if m.N != 4 {
		t.Errorf("N = %d, want 4", m.N)
	}
	if m.Mean != 2.5 {
		t.Errorf("Mean = %v, want 2.5", m.Mean)
	}
	if m.Variance != 1.25 {
		t.Errorf("Variance = %v, want 1.25", m.Variance)
	}
	if m.M4 != 2.5625 {
		t.Errorf("M4 = %v, want 2.5625", m.M4)
	}
	if want := math.Sqrt(1.25) / 2.5; math.Abs(m.CV()-want) > 1e-15 {
		t.Errorf("CV = %v, want %v", m.CV(), want)
	}
	zero := CentralMoments(nil)
	if zero != (Moments{}) {
		t.Errorf("empty sample = %+v, want zero Moments", zero)
	}
	if got := zero.CV(); got != 0 {
		t.Errorf("zero-mean CV = %v, want 0", got)
	}
}
