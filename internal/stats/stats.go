// Package stats computes the evaluation metrics reported in the paper:
// average job response times, per-bin aggregates, response-time and slowdown
// CDFs, and normalized response times (Fair / algorithm).
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary describes a sample of observations.
type Summary struct {
	Count  int
	Mean   float64
	Min    float64
	Max    float64
	P50    float64
	P90    float64
	P95    float64
	P99    float64
	P999   float64
	StdDev float64
}

// Summarize computes a Summary of values. It returns a zero Summary for an
// empty input.
func Summarize(values []float64) Summary {
	if len(values) == 0 {
		return Summary{}
	}
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)

	var sum, sumSq float64
	for _, v := range sorted {
		sum += v
		sumSq += v * v
	}
	n := float64(len(sorted))
	mean := sum / n
	variance := sumSq/n - mean*mean
	if variance < 0 {
		variance = 0
	}
	return Summary{
		Count:  len(sorted),
		Mean:   mean,
		Min:    sorted[0],
		Max:    sorted[len(sorted)-1],
		P50:    percentileSorted(sorted, 0.50),
		P90:    percentileSorted(sorted, 0.90),
		P95:    percentileSorted(sorted, 0.95),
		P99:    percentileSorted(sorted, 0.99),
		P999:   percentileSorted(sorted, 0.999),
		StdDev: math.Sqrt(variance),
	}
}

// Mean returns the arithmetic mean, or 0 for an empty input.
func Mean(values []float64) float64 {
	if len(values) == 0 {
		return 0
	}
	var sum float64
	for _, v := range values {
		sum += v
	}
	return sum / float64(len(values))
}

// Moments holds empirical central moments of one sample, the inputs to
// standard-error formulas for moment-matching tests: the standard error of
// the sample mean is sqrt(Variance/N) and of the sample variance
// approximately sqrt((M4-Variance^2)/N).
type Moments struct {
	// N is the sample size.
	N int
	// Mean is the sample mean.
	Mean float64
	// Variance is the population-style second central moment (1/N).
	Variance float64
	// M4 is the fourth central moment (1/N).
	M4 float64
}

// CV returns the coefficient of variation StdDev/Mean, or 0 for Mean == 0.
func (m Moments) CV() float64 {
	if m.Mean == 0 {
		return 0
	}
	return math.Sqrt(m.Variance) / m.Mean
}

// CentralMoments computes sample central moments in two passes (the second
// pass over explicit deviations keeps the higher moments numerically stable
// for means far from zero). It returns a zero Moments for an empty input.
func CentralMoments(values []float64) Moments {
	if len(values) == 0 {
		return Moments{}
	}
	m := Moments{N: len(values), Mean: Mean(values)}
	n := float64(len(values))
	for _, v := range values {
		d := v - m.Mean
		d2 := d * d
		m.Variance += d2
		m.M4 += d2 * d2
	}
	m.Variance /= n
	m.M4 /= n
	return m
}

// Percentile returns the q-quantile (q in [0,1]) using linear interpolation
// between closest ranks. It returns 0 for an empty input.
func Percentile(values []float64, q float64) float64 {
	if len(values) == 0 {
		return 0
	}
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	return percentileSorted(sorted, q)
}

func percentileSorted(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// CDFPoint is one point of an empirical CDF.
type CDFPoint struct {
	X float64 // observation value
	P float64 // fraction of observations <= X
}

// CDF returns the empirical CDF of values as a step function sampled at each
// distinct observation.
func CDF(values []float64) []CDFPoint {
	if len(values) == 0 {
		return nil
	}
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	n := float64(len(sorted))
	points := make([]CDFPoint, 0, len(sorted))
	for i, v := range sorted {
		if i+1 < len(sorted) && sorted[i+1] == v {
			continue // keep only the last occurrence of each distinct value
		}
		points = append(points, CDFPoint{X: v, P: float64(i+1) / n})
	}
	return points
}

// FractionBelow reports the fraction of observations <= x.
func FractionBelow(values []float64, x float64) float64 {
	if len(values) == 0 {
		return 0
	}
	count := 0
	for _, v := range values {
		if v <= x {
			count++
		}
	}
	return float64(count) / float64(len(values))
}

// GroupMeans computes the mean of values per group key, e.g. average response
// time per workload bin. Keys absent from the input are absent from the
// result.
func GroupMeans(keys []int, values []float64) (map[int]float64, error) {
	if len(keys) != len(values) {
		return nil, fmt.Errorf("stats: %d keys but %d values", len(keys), len(values))
	}
	sums := make(map[int]float64)
	counts := make(map[int]int)
	for i, k := range keys {
		sums[k] += values[i]
		counts[k]++
	}
	means := make(map[int]float64, len(sums))
	for k, s := range sums {
		means[k] = s / float64(counts[k])
	}
	return means, nil
}

// JainIndex returns Jain's fairness index (Σx)²/(n·Σx²) of the values,
// in (0, 1]: 1 means perfectly equal values (e.g. identical slowdowns —
// every job stretched by the same factor), 1/n means one job received
// everything. The paper evaluates fairness through slowdowns; the index
// condenses a slowdown distribution into one number.
func JainIndex(values []float64) float64 {
	if len(values) == 0 {
		return 0
	}
	// Scale by the largest magnitude so squaring cannot overflow.
	var maxAbs float64
	for _, v := range values {
		if a := math.Abs(v); a > maxAbs {
			maxAbs = a
		}
	}
	if maxAbs == 0 {
		return 1 // all zero: perfectly equal
	}
	var sum, sumSq float64
	for _, v := range values {
		s := v / maxAbs
		sum += s
		sumSq += s * s
	}
	return sum * sum / (float64(len(values)) * sumSq)
}

// Replication summarizes one metric observed across independent seeded
// replications of an experiment: the mean with a 95 % confidence interval
// (Student's t, the small-sample regime multi-seed runs live in) plus the
// per-seed spread.
type Replication struct {
	// N is the number of replications.
	N int
	// Mean is the cross-replication mean.
	Mean float64
	// StdDev is the sample standard deviation (n-1 denominator).
	StdDev float64
	// CI95 is the half-width of the 95 % t-interval around Mean; 0 when
	// N < 2 (a single replication carries no spread information).
	CI95 float64
	// Min and Max bound the per-seed spread.
	Min float64
	Max float64
}

// Replicate aggregates one metric's per-seed values. It returns a zero
// Replication for an empty input.
func Replicate(values []float64) Replication {
	if len(values) == 0 {
		return Replication{}
	}
	r := Replication{N: len(values), Min: values[0], Max: values[0]}
	var sum float64
	for _, v := range values {
		sum += v
		if v < r.Min {
			r.Min = v
		}
		if v > r.Max {
			r.Max = v
		}
	}
	r.Mean = sum / float64(r.N)
	if r.N < 2 {
		return r
	}
	var sumSq float64
	for _, v := range values {
		d := v - r.Mean
		sumSq += d * d
	}
	r.StdDev = math.Sqrt(sumSq / float64(r.N-1))
	r.CI95 = TCritical95(r.N-1) * r.StdDev / math.Sqrt(float64(r.N))
	return r
}

// t95 tabulates the two-sided 95 % Student's t critical values for small
// degrees of freedom (index = df, entry 0 unused).
var t95 = [...]float64{
	0, 12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262,
	2.228, 2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093,
	2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045,
	2.042,
}

// TCritical95 returns the two-sided 95 % Student's t critical value for the
// given degrees of freedom, falling back to the asymptotic normal value
// (1.96) beyond the tabulated range. df < 1 returns +Inf: no interval can be
// formed from a single observation.
func TCritical95(df int) float64 {
	if df < 1 {
		return math.Inf(1)
	}
	if df < len(t95) {
		return t95[df]
	}
	return 1.96
}

// Normalized returns the paper's "normalized average job response time":
// the Fair scheduler's result divided by the algorithm's result. Values above
// 1 mean the algorithm beats Fair. It returns +Inf when algorithm is 0 and
// fair is positive, and 0 when both are 0.
func Normalized(fair, algorithm float64) float64 {
	if algorithm == 0 {
		if fair == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return fair / algorithm
}
