package geo

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"lasmq/internal/core"
	"lasmq/internal/sched"
)

// localJob builds a job with n tasks, all data at one site.
func localJob(id int, arrival float64, n int, compute float64, site int, dataSize float64) JobSpec {
	tasks := make([]TaskSpec, n)
	for i := range tasks {
		tasks[i] = TaskSpec{Compute: compute, DataSite: site, DataSize: dataSize}
	}
	return JobSpec{ID: id, Name: "local", Arrival: arrival, Priority: 1, Tasks: tasks}
}

// spreadJob builds a job whose tasks' data is spread round-robin over sites.
func spreadJob(id int, arrival float64, n int, compute float64, sites int, dataSize float64) JobSpec {
	tasks := make([]TaskSpec, n)
	for i := range tasks {
		tasks[i] = TaskSpec{Compute: compute, DataSite: i % sites, DataSize: dataSize}
	}
	return JobSpec{ID: id, Name: "spread", Arrival: arrival, Priority: 1, Tasks: tasks}
}

func constantLinks() Config {
	cfg := DefaultConfig()
	cfg.BandwidthSigma = 0 // deterministic links
	return cfg
}

func TestValidation(t *testing.T) {
	good := []JobSpec{localJob(1, 0, 1, 1, 0, 1)}
	tests := []struct {
		name   string
		specs  []JobSpec
		mutate func(*Config)
	}{
		{name: "no sites", specs: good, mutate: func(c *Config) { c.SiteContainers = nil }},
		{name: "zero capacity", specs: good, mutate: func(c *Config) { c.SiteContainers = []int{0} }},
		{name: "zero bandwidth", specs: good, mutate: func(c *Config) { c.BaseBandwidth = 0 }},
		{name: "negative sigma", specs: good, mutate: func(c *Config) { c.BandwidthSigma = -1 }},
		{name: "zero resample", specs: good, mutate: func(c *Config) { c.ResampleInterval = 0 }},
		{name: "bad placement", specs: good, mutate: func(c *Config) { c.Placement = 0 }},
		{name: "no tasks", specs: []JobSpec{{ID: 1, Tasks: nil}}, mutate: nil},
		{name: "bad site", specs: []JobSpec{localJob(1, 0, 1, 1, 99, 1)}, mutate: nil},
		{name: "zero compute", specs: []JobSpec{localJob(1, 0, 1, 0, 0, 1)}, mutate: nil},
		{name: "negative data", specs: []JobSpec{localJob(1, 0, 1, 1, 0, -1)}, mutate: nil},
		{
			name:   "duplicate ids",
			specs:  []JobSpec{localJob(1, 0, 1, 1, 0, 1), localJob(1, 0, 1, 1, 0, 1)},
			mutate: nil,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := constantLinks()
			if tt.mutate != nil {
				tt.mutate(&cfg)
			}
			if _, err := Run(tt.specs, sched.NewFIFO(), cfg); err == nil {
				t.Error("expected validation error")
			}
		})
	}
	if _, err := Run(good, nil, constantLinks()); err == nil {
		t.Error("expected error for nil scheduler")
	}
}

func TestLocalExecutionNoTransfer(t *testing.T) {
	cfg := constantLinks()
	cfg.SiteContainers = []int{4, 4, 4}
	specs := []JobSpec{localJob(1, 0, 4, 10, 1, 100)}
	res, err := Run(specs, sched.NewFIFO(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	jr := res.Jobs[0]
	if jr.ResponseTime != 10 {
		t.Errorf("response = %v, want 10 (all tasks local)", jr.ResponseTime)
	}
	if jr.RemoteTasks != 0 || jr.TransferTime != 0 {
		t.Errorf("local job transferred: %d remote tasks, %v transfer", jr.RemoteTasks, jr.TransferTime)
	}
}

func TestRemoteExecutionPaysTransfer(t *testing.T) {
	cfg := constantLinks()
	cfg.SiteContainers = []int{1, 1} // site 0 too small for the job
	cfg.BaseBandwidth = 2
	// 2 tasks, data at site 0, 10 data units each: one task must run at
	// site 1 and pay 10/2 = 5 seconds of transfer.
	specs := []JobSpec{localJob(1, 0, 2, 10, 0, 10)}
	res, err := Run(specs, sched.NewFIFO(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	jr := res.Jobs[0]
	if jr.RemoteTasks != 1 {
		t.Fatalf("remote tasks = %d, want 1", jr.RemoteTasks)
	}
	if math.Abs(jr.TransferTime-5) > 1e-9 {
		t.Errorf("transfer time = %v, want 5", jr.TransferTime)
	}
	if math.Abs(jr.ResponseTime-15) > 1e-9 {
		t.Errorf("response = %v, want 15 (10 compute + 5 transfer on the critical path)", jr.ResponseTime)
	}
}

func TestLocalityAwareBeatsBlind(t *testing.T) {
	// Jobs whose tasks' data is spread across the sites: locality-aware
	// placement runs every task next to its data, while blind placement
	// fills site 0 first and pays WAN transfers.
	cfg := constantLinks()
	cfg.SiteContainers = []int{8, 8, 8}
	cfg.BaseBandwidth = 0.5 // slow WAN: transfers dominate (paper's premise)
	var specs []JobSpec
	for i := 0; i < 6; i++ {
		specs = append(specs, spreadJob(i+1, float64(5*i), 9, 5, 3, 10))
	}
	run := func(p PlacementPolicy) float64 {
		c := cfg
		c.Placement = p
		res, err := Run(specs, sched.NewFair(), c)
		if err != nil {
			t.Fatal(err)
		}
		return res.MeanResponseTime()
	}
	aware := run(PlaceLocalityAware)
	blind := run(PlaceBlind)
	if aware >= blind {
		t.Errorf("locality-aware mean %v not better than blind %v on a slow WAN", aware, blind)
	}
	if blind < 2*aware {
		t.Errorf("blind (%v) should pay heavily versus aware (%v) when transfers dominate", blind, aware)
	}
}

func TestLASMQBeatsFairInGeo(t *testing.T) {
	// The paper's headline effect must survive the geo setting: small
	// queries overtake demoted big ones.
	// Deep contention (the regime where size-oblivious ordering matters, as
	// in the testbed experiments): a few huge queries and many small ones.
	cfg := constantLinks()
	cfg.SiteContainers = []int{6, 6, 6}
	r := rand.New(rand.NewSource(7))
	var specs []JobSpec
	arrival := 0.0
	for i := 1; i <= 30; i++ {
		arrival += r.ExpFloat64() * 8
		if i%5 == 0 {
			specs = append(specs, spreadJob(i, arrival, 400, 5, 3, 2))
		} else {
			specs = append(specs, spreadJob(i, arrival, 12, 3, 3, 5))
		}
	}
	run := func(p sched.Scheduler) float64 {
		res, err := Run(specs, p, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.MeanResponseTime()
	}
	mqCfg := core.DefaultConfig()
	mqCfg.FirstThreshold = 10
	mq, err := core.New(mqCfg)
	if err != nil {
		t.Fatal(err)
	}
	mqMean := run(mq)
	fairMean := run(sched.NewFair())
	if mqMean >= fairMean {
		t.Errorf("LAS_MQ mean %v not better than Fair %v in the geo setting", mqMean, fairMean)
	}
}

func TestBandwidthVariabilityHurts(t *testing.T) {
	// With variable links, some transfers land on slow epochs: mean response
	// of a transfer-heavy workload should not improve.
	base := constantLinks()
	base.SiteContainers = []int{2, 2}
	base.BaseBandwidth = 1
	var specs []JobSpec
	for i := 0; i < 8; i++ {
		specs = append(specs, localJob(i+1, float64(5*i), 4, 3, 0, 8))
	}
	run := func(sigma float64) float64 {
		c := base
		c.BandwidthSigma = sigma
		c.Seed = 3
		res, err := Run(specs, sched.NewFIFO(), c)
		if err != nil {
			t.Fatal(err)
		}
		return res.MeanResponseTime()
	}
	constant := run(0)
	variable := run(0.8)
	// Lognormal variability with the same mean stretches the slow transfers
	// more than it shrinks the fast ones (transfer time is convex in
	// bandwidth), so the variable case is worse on average.
	if variable < constant*0.95 {
		t.Errorf("variable links (%v) suspiciously better than constant (%v)", variable, constant)
	}
}

func TestDeterministicRuns(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Seed = 11
	var specs []JobSpec
	r := rand.New(rand.NewSource(1))
	for i := 1; i <= 12; i++ {
		specs = append(specs, spreadJob(i, float64(i)*3, 3+r.Intn(10), 2+r.Float64()*8, 3, r.Float64()*10))
	}
	a, err := Run(specs, sched.NewLAS(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(specs, sched.NewLAS(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Jobs {
		if a.Jobs[i] != b.Jobs[i] {
			t.Fatalf("job %d differs across identical runs", i)
		}
	}
}

func TestLinksDeterministicAndVariable(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Seed = 5
	l := newLinks(&cfg)
	a := l.bandwidth(0, 1, 10)
	b := l.bandwidth(0, 1, 10)
	if a != b {
		t.Errorf("same link/epoch sampled differently: %v vs %v", a, b)
	}
	if l.bandwidth(0, 1, 10) == l.bandwidth(1, 0, 10) && l.bandwidth(0, 2, 10) == l.bandwidth(2, 0, 10) {
		t.Error("all link directions identical; per-link variation missing")
	}
	// Across epochs the bandwidth varies.
	varies := false
	for e := 0; e < 10; e++ {
		if l.bandwidth(0, 1, float64(e)*cfg.ResampleInterval) != a {
			varies = true
			break
		}
	}
	if !varies {
		t.Error("bandwidth constant across epochs despite sigma > 0")
	}
}

func TestPlacementPolicyString(t *testing.T) {
	if got := PlaceLocalityAware.String(); got != "locality-aware" {
		t.Errorf("String = %q", got)
	}
	if got := PlaceBlind.String(); got != "blind" {
		t.Errorf("String = %q", got)
	}
	if got := PlacementPolicy(9).String(); !strings.Contains(got, "9") {
		t.Errorf("String = %q", got)
	}
}

func TestTotalCompute(t *testing.T) {
	j := localJob(1, 0, 3, 7, 0, 1)
	if got := j.TotalCompute(); got != 21 {
		t.Errorf("TotalCompute = %v, want 21", got)
	}
}
