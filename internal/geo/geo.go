// Package geo extends the cluster simulator to geo-distributed analytics —
// the paper's third future-work direction: "how to design the scheduling
// algorithm in cases with low and diverse network bandwidths like
// geo-distributed big data processing", where "the network transfer times
// could be comparable or even larger than the CPU times" and scheduling must
// couple compute (containers) with network resources.
//
// The model follows the geo-analytics systems the paper cites (WANalytics,
// Iridium, Flutter): a query's tasks each consume data resident at one of
// several sites. Running a task at its data's site costs only compute; running
// it elsewhere first pulls the data over an inter-site link whose bandwidth
// varies over time (the paper quotes 95th-percentile capacities several times
// the 5th percentile within 35 hours). Job ordering is delegated to any
// sched.Scheduler (LAS_MQ or a baseline); task placement is a separate,
// pluggable policy, so the experiments can separate the two effects.
package geo

import (
	"errors"
	"fmt"
	"math/rand"

	"lasmq/internal/dist"
	"sort"

	"lasmq/internal/eventq"
	"lasmq/internal/sched"
)

// PlacementPolicy decides where a task runs.
type PlacementPolicy int

const (
	// PlaceLocalityAware prefers the task's data site; if it has no free
	// containers, it picks the site with the fastest current transfer
	// (bandwidth-aware spillover).
	PlaceLocalityAware PlacementPolicy = iota + 1
	// PlaceBlind picks the first site with a free container, ignoring data
	// location — the strawman that decouples compute from the network.
	PlaceBlind
)

// String implements fmt.Stringer.
func (p PlacementPolicy) String() string {
	switch p {
	case PlaceLocalityAware:
		return "locality-aware"
	case PlaceBlind:
		return "blind"
	default:
		return fmt.Sprintf("PlacementPolicy(%d)", int(p))
	}
}

// TaskSpec is one geo-analytics task.
type TaskSpec struct {
	// Compute is the task's computation time in seconds once its data is
	// local.
	Compute float64
	// DataSite is the index of the site holding the task's input.
	DataSite int
	// DataSize is the input volume in arbitrary data units; transferring it
	// across sites takes DataSize / bandwidth seconds.
	DataSize float64
}

// JobSpec is a geo-analytics job: a bag of tasks over distributed data
// (single-stage, as in the geo-analytics query systems the paper cites).
type JobSpec struct {
	ID       int
	Name     string
	Arrival  float64
	Priority int
	Tasks    []TaskSpec
}

// TotalCompute returns the job's total computation in container-seconds.
func (j *JobSpec) TotalCompute() float64 {
	var total float64
	for _, t := range j.Tasks {
		total += t.Compute
	}
	return total
}

// Config describes the geo-distributed deployment.
type Config struct {
	// SiteContainers is each site's container capacity.
	SiteContainers []int
	// BaseBandwidth is the mean inter-site bandwidth in data units per
	// second (all ordered site pairs share the mean; instantaneous values
	// diverge per link).
	BaseBandwidth float64
	// BandwidthSigma is the lognormal variability of link bandwidth; 0 means
	// constant links. The paper quotes several-fold 95th/5th-percentile
	// ratios, i.e. sigma around 0.5-0.8.
	BandwidthSigma float64
	// ResampleInterval is how often each link's bandwidth changes (seconds).
	ResampleInterval float64
	// Placement selects the task placement policy.
	Placement PlacementPolicy
	// Seed drives bandwidth sampling.
	Seed int64
}

// DefaultConfig returns three 20-container sites with several-fold bandwidth
// variability and locality-aware placement.
func DefaultConfig() Config {
	return Config{
		SiteContainers:   []int{20, 20, 20},
		BaseBandwidth:    2,
		BandwidthSigma:   0.6,
		ResampleInterval: 60,
		Placement:        PlaceLocalityAware,
	}
}

func (c *Config) validate() error {
	if len(c.SiteContainers) == 0 {
		return errors.New("geo: need at least one site")
	}
	for i, n := range c.SiteContainers {
		if n <= 0 {
			return fmt.Errorf("geo: site %d has non-positive capacity %d", i, n)
		}
	}
	if c.BaseBandwidth <= 0 {
		return fmt.Errorf("geo: base bandwidth must be positive, got %v", c.BaseBandwidth)
	}
	if c.BandwidthSigma < 0 {
		return fmt.Errorf("geo: bandwidth sigma must be >= 0, got %v", c.BandwidthSigma)
	}
	if c.ResampleInterval <= 0 {
		return fmt.Errorf("geo: resample interval must be positive, got %v", c.ResampleInterval)
	}
	switch c.Placement {
	case PlaceLocalityAware, PlaceBlind:
	default:
		return fmt.Errorf("geo: unknown placement policy %v", c.Placement)
	}
	return nil
}

// JobResult reports one finished geo job.
type JobResult struct {
	ID           int
	Name         string
	Arrival      float64
	Completed    float64
	ResponseTime float64
	// RemoteTasks counts tasks that ran away from their data.
	RemoteTasks int
	// TransferTime is the total seconds tasks spent pulling remote data.
	TransferTime float64
}

// Result reports a geo simulation run.
type Result struct {
	Scheduler string
	Placement PlacementPolicy
	Jobs      []JobResult
	Makespan  float64
}

// MeanResponseTime returns the average job response time.
func (r *Result) MeanResponseTime() float64 {
	if len(r.Jobs) == 0 {
		return 0
	}
	var sum float64
	for i := range r.Jobs {
		sum += r.Jobs[i].ResponseTime
	}
	return sum / float64(len(r.Jobs))
}

// links models time-varying inter-site bandwidth: piecewise constant per
// epoch, resampled lazily per (link, epoch) so runs stay deterministic
// regardless of query order.
type links struct {
	base     float64
	sigma    float64
	interval float64
	seed     int64
	sites    int
	cache    map[int64]float64
}

func newLinks(cfg *Config) *links {
	return &links{
		base:     cfg.BaseBandwidth,
		sigma:    cfg.BandwidthSigma,
		interval: cfg.ResampleInterval,
		seed:     cfg.Seed,
		sites:    len(cfg.SiteContainers),
		cache:    make(map[int64]float64),
	}
}

// bandwidth returns the src->dst bandwidth at time now.
func (l *links) bandwidth(src, dst int, now float64) float64 {
	if src == dst {
		return 0 // unused: local tasks transfer nothing
	}
	if l.sigma == 0 {
		return l.base
	}
	epoch := int64(now / l.interval)
	key := (epoch*int64(l.sites)+int64(src))*int64(l.sites) + int64(dst)
	if bw, ok := l.cache[key]; ok {
		return bw
	}
	// A per-(link, epoch) generator keeps sampling order-independent.
	const mix = int64(-0x61C8864680B583EB) // golden-ratio mixing constant
	r := rand.New(rand.NewSource(l.seed ^ (key * mix)))
	bw := dist.LognormalMean(r, l.base, l.sigma)
	l.cache[key] = bw
	return bw
}

// --- Simulation ---

type geoTask struct {
	spec    TaskSpec
	started bool
	done    bool
}

type geoJob struct {
	spec      JobSpec
	seq       int
	remaining int // tasks not yet completed
	pending   []int
	usage     int
	attained  float64 // container-seconds consumed by finished attempts
	usageW    float64 // sum of start times weighted by containers (1 each)

	remoteTasks  int
	transferTime float64
	tasks        []geoTask
}

type geoView struct {
	j   *geoJob
	now float64
}

var _ sched.JobView = (*geoView)(nil)

func (v *geoView) ID() int           { return v.j.spec.ID }
func (v *geoView) Seq() int          { return v.j.seq }
func (v *geoView) Priority() int     { return v.j.spec.Priority }
func (v *geoView) Attained() float64 { return v.j.attainedAt(v.now) }

// Estimated equals Attained: geo jobs are single-stage bags of tasks.
func (v *geoView) Estimated() float64       { return v.j.attainedAt(v.now) }
func (v *geoView) ReadyDemand() float64     { return float64(len(v.j.pending)) }
func (v *geoView) RemainingDemand() float64 { return float64(v.j.remaining) }
func (v *geoView) SizeHint() float64        { return v.j.spec.TotalCompute() }
func (v *geoView) RemainingSizeHint() float64 {
	rem := v.j.spec.TotalCompute() - v.j.attainedAt(v.now)
	if rem < 0 {
		return 0
	}
	return rem
}

func (j *geoJob) attainedAt(now float64) float64 {
	running := now*float64(j.usage) - j.usageW
	if running < 0 {
		running = 0
	}
	return j.attained + running
}

type geoEvent struct {
	kind  int // 1 arrival, 2 task done
	jobID int
	site  int
	task  int
	start float64
}

// Run simulates the workload; job ordering comes from policy, task placement
// from cfg.Placement.
func Run(specs []JobSpec, policy sched.Scheduler, cfg Config) (*Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if policy == nil {
		return nil, errors.New("geo: nil scheduler")
	}
	sites := len(cfg.SiteContainers)
	seen := make(map[int]bool, len(specs))
	for i := range specs {
		s := &specs[i]
		if len(s.Tasks) == 0 {
			return nil, fmt.Errorf("geo: job %d has no tasks", s.ID)
		}
		if s.Arrival < 0 {
			return nil, fmt.Errorf("geo: job %d has negative arrival", s.ID)
		}
		if seen[s.ID] {
			return nil, fmt.Errorf("geo: duplicate job ID %d", s.ID)
		}
		seen[s.ID] = true
		for ti, t := range s.Tasks {
			if t.Compute <= 0 {
				return nil, fmt.Errorf("geo: job %d task %d has non-positive compute", s.ID, ti)
			}
			if t.DataSite < 0 || t.DataSite >= sites {
				return nil, fmt.Errorf("geo: job %d task %d data site %d out of range", s.ID, ti, t.DataSite)
			}
			if t.DataSize < 0 {
				return nil, fmt.Errorf("geo: job %d task %d has negative data size", s.ID, ti)
			}
		}
	}

	var (
		queue    eventq.Queue[geoEvent]
		jobs     = make(map[int]*geoJob, len(specs))
		order    []int
		now      float64
		nextSeq  int
		freeOn   = append([]int(nil), cfg.SiteContainers...)
		capacity int
		net      = newLinks(&cfg)
		res      = &Result{Scheduler: policy.Name(), Placement: cfg.Placement}
		results  = make(map[int]JobResult, len(specs))
		left     = len(specs)
	)
	for _, n := range cfg.SiteContainers {
		capacity += n
	}
	for i := range specs {
		gj := &geoJob{spec: specs[i], remaining: len(specs[i].Tasks)}
		gj.tasks = make([]geoTask, len(specs[i].Tasks))
		for ti := range specs[i].Tasks {
			gj.tasks[ti] = geoTask{spec: specs[i].Tasks[ti]}
			gj.pending = append(gj.pending, ti)
		}
		jobs[specs[i].ID] = gj
		queue.Push(specs[i].Arrival, geoEvent{kind: 1, jobID: specs[i].ID})
	}

	schedule := func() {
		views := make([]sched.JobView, 0, len(order))
		demand := make(map[int]float64, len(order))
		for _, id := range order {
			gj := jobs[id]
			if gj.remaining == 0 {
				continue
			}
			v := &geoView{j: gj, now: now}
			views = append(views, v)
			demand[id] = v.ReadyDemand()
		}
		if len(views) == 0 {
			return
		}
		alloc := policy.Assign(now, float64(capacity), views)
		targets := sched.Quantize(alloc, demand, capacity)

		launch := func(gj *geoJob) bool {
			if len(gj.pending) == 0 {
				return false
			}
			ti := gj.pending[0]
			task := &gj.tasks[ti]
			site := pickSite(cfg.Placement, task.spec, freeOn, net, now)
			if site < 0 {
				return false
			}
			gj.pending = gj.pending[1:]
			task.started = true
			freeOn[site]--
			gj.usage++
			gj.usageW += now

			duration := task.spec.Compute
			if site != task.spec.DataSite && task.spec.DataSize > 0 {
				transfer := task.spec.DataSize / net.bandwidth(task.spec.DataSite, site, now)
				duration += transfer
				gj.remoteTasks++
				gj.transferTime += transfer
			}
			queue.Push(now+duration, geoEvent{
				kind: 2, jobID: gj.spec.ID, site: site, task: ti, start: now,
			})
			return true
		}

		// Serve the largest allocation deficits first, so freed containers go
		// to the policy's most-preferred jobs (as in the cluster engine).
		type cand struct {
			gj     *geoJob
			target int
		}
		var cands []cand
		for _, id := range order {
			gj := jobs[id]
			if gj.remaining == 0 {
				continue
			}
			if t := targets[id]; t > gj.usage {
				cands = append(cands, cand{gj: gj, target: t})
			}
		}
		sort.SliceStable(cands, func(i, j int) bool {
			di := cands[i].target - cands[i].gj.usage
			dj := cands[j].target - cands[j].gj.usage
			if di != dj {
				return di > dj
			}
			return cands[i].gj.seq < cands[j].gj.seq
		})
		for _, c := range cands {
			for c.gj.usage < c.target {
				if !launch(c.gj) {
					break
				}
			}
		}
		// Work conservation: leftover containers to any pending task.
		progress := true
		for progress {
			progress = false
			for _, id := range order {
				gj := jobs[id]
				if gj.remaining == 0 {
					continue
				}
				if launch(gj) {
					progress = true
				}
			}
		}
	}

	for left > 0 {
		t, ev, ok := queue.Pop()
		if !ok {
			return nil, fmt.Errorf("geo: deadlock at t=%v with %d unfinished jobs", now, left)
		}
		now = t
		switch ev.kind {
		case 1:
			gj := jobs[ev.jobID]
			gj.seq = nextSeq
			nextSeq++
			order = append(order, ev.jobID)
		case 2:
			gj := jobs[ev.jobID]
			task := &gj.tasks[ev.task]
			task.done = true
			freeOn[ev.site]++
			gj.usage--
			gj.usageW -= ev.start
			gj.attained += now - ev.start
			gj.remaining--
			if gj.remaining == 0 {
				left--
				results[gj.spec.ID] = JobResult{
					ID:           gj.spec.ID,
					Name:         gj.spec.Name,
					Arrival:      gj.spec.Arrival,
					Completed:    now,
					ResponseTime: now - gj.spec.Arrival,
					RemoteTasks:  gj.remoteTasks,
					TransferTime: gj.transferTime,
				}
				if now > res.Makespan {
					res.Makespan = now
				}
			}
		}
		schedule()
	}

	for i := range specs {
		res.Jobs = append(res.Jobs, results[specs[i].ID])
	}
	return res, nil
}

// pickSite returns the site to run the task at, or -1 if no site has a free
// container.
func pickSite(policy PlacementPolicy, task TaskSpec, freeOn []int, net *links, now float64) int {
	switch policy {
	case PlaceBlind:
		for site, free := range freeOn {
			if free > 0 {
				return site
			}
		}
		return -1
	default: // PlaceLocalityAware
		if freeOn[task.DataSite] > 0 {
			return task.DataSite
		}
		// Spill to the site with the cheapest transfer right now.
		best, bestTime := -1, 0.0
		for site, free := range freeOn {
			if free <= 0 || site == task.DataSite {
				continue
			}
			transfer := 0.0
			if task.DataSize > 0 {
				transfer = task.DataSize / net.bandwidth(task.DataSite, site, now)
			}
			if best < 0 || transfer < bestTime {
				best, bestTime = site, transfer
			}
		}
		return best
	}
}
