package runner

import (
	"fmt"
	"io"
	"strings"
)

// Table renders the aggregate as a fixed-width text table: one row per
// metric cell, mean ± 95 % CI plus the per-seed spread. With a single seed
// the ± column collapses to "-" (no interval exists).
func (a *Aggregate) Table() string {
	header := []string{"group", "key", "mean", "±95% CI", "min", "max", "seeds"}
	rows := make([][]string, 0, len(a.Cells))
	for i := range a.Cells {
		c := &a.Cells[i]
		ci := "-"
		if c.Stats.N >= 2 {
			ci = fmt.Sprintf("±%.4g", c.Stats.CI95)
		}
		rows = append(rows, []string{
			c.Group,
			c.Key,
			fmt.Sprintf("%.4g", c.Stats.Mean),
			ci,
			fmt.Sprintf("%.4g", c.Stats.Min),
			fmt.Sprintf("%.4g", c.Stats.Max),
			fmt.Sprintf("%d", c.Stats.N),
		})
	}
	return renderTable(header, rows)
}

// WriteCSV emits every aggregate as CSV rows:
// experiment,group,key,n,mean,stddev,ci95,min,max.
func (r *Report) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "experiment,group,key,n,mean,stddev,ci95,min,max"); err != nil {
		return err
	}
	for i := range r.Aggregates {
		a := &r.Aggregates[i]
		for j := range a.Cells {
			c := &a.Cells[j]
			if _, err := fmt.Fprintf(w, "%s,%s,%s,%d,%g,%g,%g,%g,%g\n",
				a.Experiment, c.Group, c.Key,
				c.Stats.N, c.Stats.Mean, c.Stats.StdDev, c.Stats.CI95,
				c.Stats.Min, c.Stats.Max); err != nil {
				return err
			}
		}
	}
	return nil
}

// renderTable renders rows as a fixed-width text table (same layout as the
// experiments package's tables, duplicated to keep the dependency pointing
// experiments -> runner only).
func renderTable(header []string, rows [][]string) string {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range rows {
		writeRow(row)
	}
	return b.String()
}
