// Package runner is the concurrent experiment-replication engine: it fans
// every registered experiment out over N seeds on a bounded worker pool,
// serves completed (experiment, seed) cells from a content-addressed on-disk
// cache, and merges the per-seed samples deterministically into
// cross-replication aggregates (mean ± 95 % t-interval per metric cell).
//
// Experiments are pure functions of the seed: the same (name, fingerprint,
// seed) triple must always produce the same Sample, which is what makes the
// cache sound and the merged report byte-identical regardless of worker
// count or completion order.
package runner

import (
	"fmt"
	"runtime"
	"sync"

	"lasmq/internal/stats"
)

// Cell is one scalar metric of an experiment sample: Group names the series
// (typically a policy), Key the point within it (a bin, a sweep value, or
// "all"), and Value the measurement.
type Cell struct {
	Group string  `json:"group"`
	Key   string  `json:"key"`
	Value float64 `json:"value"`
}

// Sample is one experiment's complete result at one seed. Cells must be
// emitted in a deterministic order (the experiment's canonical reporting
// order), never from bare map iteration.
type Sample struct {
	Experiment string `json:"experiment"`
	Seed       int64  `json:"seed"`
	Cells      []Cell `json:"cells"`
}

// Experiment is one entry of the replication table.
type Experiment struct {
	// Name identifies the experiment ("fig5", "fig8a", ...).
	Name string
	// Fingerprint captures every configuration knob that changes the result
	// (trace lengths, workload scale); it keys the cache alongside the name
	// and seed so runs at different scales never collide.
	Fingerprint string
	// Run produces the experiment's sample for one seed. It must be pure:
	// no shared state, same seed in, same cells out.
	Run func(seed int64) (*Sample, error)
}

// Options tune a replicated run.
type Options struct {
	// Seeds is the number of replications; seed values are
	// BaseSeed .. BaseSeed+Seeds-1. Default 1.
	Seeds int
	// BaseSeed is the first seed. Default 1.
	BaseSeed int64
	// Workers bounds the worker pool. Default GOMAXPROCS.
	Workers int
	// CacheDir, when non-empty, enables the content-addressed result cache
	// (one JSON file per (experiment, fingerprint, seed) cell).
	CacheDir string
}

// Defaults fills unset fields.
func (o Options) Defaults() Options {
	if o.Seeds <= 0 {
		o.Seeds = 1
	}
	if o.BaseSeed == 0 {
		o.BaseSeed = 1
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	return o
}

// AggregateCell is one metric cell merged across all seeds.
type AggregateCell struct {
	Group string `json:"group"`
	Key   string `json:"key"`
	// Stats is the cross-replication aggregate (mean, stddev, 95 % CI,
	// min/max spread).
	Stats stats.Replication `json:"stats"`
	// PerSeed holds the metric's value per replication, ordered by seed.
	PerSeed []float64 `json:"per_seed"`
}

// Aggregate is one experiment merged across all seeds.
type Aggregate struct {
	Experiment string          `json:"experiment"`
	Seeds      []int64         `json:"seeds"`
	Cells      []AggregateCell `json:"cells"`
}

// Report is a full replicated run.
type Report struct {
	// Aggregates are ordered as the experiments were registered.
	Aggregates []Aggregate `json:"aggregates"`
	// CacheHits and CacheMisses count cells served from / written to the
	// cache (both zero when caching is disabled).
	CacheHits   int `json:"cache_hits"`
	CacheMisses int `json:"cache_misses"`
}

// Aggregate returns the named experiment's aggregate, or nil.
func (r *Report) Aggregate(name string) *Aggregate {
	for i := range r.Aggregates {
		if r.Aggregates[i].Experiment == name {
			return &r.Aggregates[i]
		}
	}
	return nil
}

// Cell returns the aggregate cell for (group, key), or nil.
func (a *Aggregate) Cell(group, key string) *AggregateCell {
	for i := range a.Cells {
		if a.Cells[i].Group == group && a.Cells[i].Key == key {
			return &a.Cells[i]
		}
	}
	return nil
}

// cellJob is one (experiment, seed) unit of work.
type cellJob struct {
	exp     int // index into the experiment table
	seedIdx int // index into the seed sequence
	seed    int64
}

// Run fans the experiments out over the seeds on a bounded worker pool and
// merges the samples. The merge is deterministic: samples land in a grid
// indexed by (experiment, seed) before aggregation, so worker count and
// completion order never change the report.
func Run(exps []Experiment, opts Options) (*Report, error) {
	opts = opts.Defaults()
	if len(exps) == 0 {
		return nil, fmt.Errorf("runner: no experiments registered")
	}
	names := make(map[string]bool, len(exps))
	for _, e := range exps {
		if e.Name == "" || e.Run == nil {
			return nil, fmt.Errorf("runner: experiment with empty name or nil Run")
		}
		if names[e.Name] {
			return nil, fmt.Errorf("runner: duplicate experiment %q", e.Name)
		}
		names[e.Name] = true
	}

	var cache *diskCache
	if opts.CacheDir != "" {
		c, err := newDiskCache(opts.CacheDir)
		if err != nil {
			return nil, err
		}
		cache = c
	}

	seeds := make([]int64, opts.Seeds)
	for i := range seeds {
		seeds[i] = opts.BaseSeed + int64(i)
	}

	// The sample grid: grid[exp][seedIdx]. Workers write disjoint slots, so
	// no lock is needed beyond the WaitGroup's happens-before edge.
	grid := make([][]*Sample, len(exps))
	errs := make([][]error, len(exps))
	for i := range grid {
		grid[i] = make([]*Sample, len(seeds))
		errs[i] = make([]error, len(seeds))
	}

	jobs := make(chan cellJob)
	var hitCount, missCount int
	var counterMu sync.Mutex

	var wg sync.WaitGroup
	for w := 0; w < opts.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for jb := range jobs {
				e := exps[jb.exp]
				sample, fromCache, err := runCell(e, jb.seed, cache)
				if err != nil {
					errs[jb.exp][jb.seedIdx] = err
					continue
				}
				grid[jb.exp][jb.seedIdx] = sample
				counterMu.Lock()
				if fromCache {
					hitCount++
				} else if cache != nil {
					missCount++
				}
				counterMu.Unlock()
			}
		}()
	}
	for ei := range exps {
		for si, seed := range seeds {
			jobs <- cellJob{exp: ei, seedIdx: si, seed: seed}
		}
	}
	close(jobs)
	wg.Wait()

	// Surface the first error in registration-then-seed order so the failure
	// reported is deterministic too.
	for ei := range exps {
		for si := range seeds {
			if err := errs[ei][si]; err != nil {
				return nil, fmt.Errorf("runner: %s seed %d: %w", exps[ei].Name, seeds[si], err)
			}
		}
	}

	report := &Report{
		Aggregates:  make([]Aggregate, 0, len(exps)),
		CacheHits:   hitCount,
		CacheMisses: missCount,
	}
	for ei := range exps {
		agg, err := merge(exps[ei].Name, seeds, grid[ei])
		if err != nil {
			return nil, err
		}
		report.Aggregates = append(report.Aggregates, *agg)
	}
	return report, nil
}

// runCell computes or loads one (experiment, seed) sample.
func runCell(e Experiment, seed int64, cache *diskCache) (*Sample, bool, error) {
	var key string
	if cache != nil {
		key = cacheKey(e.Name, e.Fingerprint, seed)
		if s, ok := cache.load(key, e.Name, seed); ok {
			return s, true, nil
		}
	}
	s, err := e.Run(seed)
	if err != nil {
		return nil, false, err
	}
	if s == nil {
		return nil, false, fmt.Errorf("nil sample")
	}
	if s.Experiment == "" {
		s.Experiment = e.Name
	}
	if s.Experiment != e.Name {
		return nil, false, fmt.Errorf("sample labeled %q", s.Experiment)
	}
	s.Seed = seed
	if cache != nil {
		if err := cache.store(key, s); err != nil {
			return nil, false, err
		}
	}
	return s, false, nil
}

// merge folds one experiment's per-seed samples into an Aggregate. Every
// sample must expose the same cell set; the first seed's cell order is the
// canonical order (experiments emit cells deterministically, so all seeds
// agree on it up to values).
func merge(name string, seeds []int64, samples []*Sample) (*Aggregate, error) {
	if len(samples) == 0 {
		return nil, fmt.Errorf("runner: %s: no samples", name)
	}
	ref := samples[0]
	index := make(map[[2]string]int, len(ref.Cells))
	for i, c := range ref.Cells {
		k := [2]string{c.Group, c.Key}
		if _, dup := index[k]; dup {
			return nil, fmt.Errorf("runner: %s: duplicate cell (%s, %s)", name, c.Group, c.Key)
		}
		index[k] = i
	}
	perCell := make([][]float64, len(ref.Cells))
	for i := range perCell {
		perCell[i] = make([]float64, len(samples))
	}
	for si, s := range samples {
		if len(s.Cells) != len(ref.Cells) {
			return nil, fmt.Errorf("runner: %s: seed %d produced %d cells, seed %d produced %d",
				name, seeds[si], len(s.Cells), seeds[0], len(ref.Cells))
		}
		for _, c := range s.Cells {
			i, ok := index[[2]string{c.Group, c.Key}]
			if !ok {
				return nil, fmt.Errorf("runner: %s: seed %d emitted unknown cell (%s, %s)",
					name, seeds[si], c.Group, c.Key)
			}
			perCell[i][si] = c.Value
		}
	}
	agg := &Aggregate{
		Experiment: name,
		Seeds:      append([]int64(nil), seeds...),
		Cells:      make([]AggregateCell, len(ref.Cells)),
	}
	for i, c := range ref.Cells {
		agg.Cells[i] = AggregateCell{
			Group:   c.Group,
			Key:     c.Key,
			Stats:   stats.Replicate(perCell[i]),
			PerSeed: perCell[i],
		}
	}
	return agg, nil
}
