package runner

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// fakeExperiment derives cells purely from the seed, with an optional delay
// to shuffle worker completion order.
func fakeExperiment(name string, delay time.Duration, calls *atomic.Int64) Experiment {
	return Experiment{
		Name:        name,
		Fingerprint: "fake",
		Run: func(seed int64) (*Sample, error) {
			if calls != nil {
				calls.Add(1)
			}
			if delay > 0 {
				time.Sleep(delay)
			}
			return &Sample{
				Experiment: name,
				Seed:       seed,
				Cells: []Cell{
					{Group: "a", Key: "x", Value: float64(seed) * 2},
					{Group: "a", Key: "y", Value: float64(seed) + 0.5},
					{Group: "b", Key: "x", Value: math.Sqrt(float64(seed))},
				},
			}, nil
		},
	}
}

func TestRunAggregates(t *testing.T) {
	exps := []Experiment{fakeExperiment("e1", 0, nil), fakeExperiment("e2", 0, nil)}
	report, err := Run(exps, Options{Seeds: 4, BaseSeed: 10, Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Aggregates) != 2 {
		t.Fatalf("got %d aggregates, want 2", len(report.Aggregates))
	}
	a := report.Aggregate("e1")
	if a == nil {
		t.Fatal("aggregate e1 missing")
	}
	wantSeeds := []int64{10, 11, 12, 13}
	for i, s := range a.Seeds {
		if s != wantSeeds[i] {
			t.Fatalf("seeds = %v, want %v", a.Seeds, wantSeeds)
		}
	}
	// Cell (a, x) holds 2*seed: per-seed 20,22,24,26 -> mean 23.
	c := a.Cell("a", "x")
	if c == nil {
		t.Fatal("cell (a,x) missing")
	}
	if c.Stats.N != 4 || math.Abs(c.Stats.Mean-23) > 1e-12 {
		t.Errorf("cell (a,x) stats = %+v, want n=4 mean=23", c.Stats)
	}
	if c.Stats.Min != 20 || c.Stats.Max != 26 {
		t.Errorf("cell (a,x) spread = [%v,%v], want [20,26]", c.Stats.Min, c.Stats.Max)
	}
	if len(c.PerSeed) != 4 || c.PerSeed[0] != 20 || c.PerSeed[3] != 26 {
		t.Errorf("per-seed = %v, want [20 22 24 26]", c.PerSeed)
	}
	if c.Stats.CI95 <= 0 {
		t.Errorf("CI95 = %v, want > 0 for varying cells", c.Stats.CI95)
	}
	if tbl := a.Table(); !strings.Contains(tbl, "±") || !strings.Contains(tbl, "23") {
		t.Errorf("table missing CI annotation:\n%s", tbl)
	}
	var buf bytes.Buffer
	if err := report.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "e1,a,x,4,23,") {
		t.Errorf("CSV missing aggregate row:\n%s", buf.String())
	}
}

// TestDeterminismAcrossWorkers is the regression for the merge path: the
// same seeds must produce byte-identical merged reports whether one worker
// or eight run the cells (and regardless of completion order, which the
// staggered delays scramble).
func TestDeterminismAcrossWorkers(t *testing.T) {
	mk := func() []Experiment {
		return []Experiment{
			fakeExperiment("slow", 3*time.Millisecond, nil),
			fakeExperiment("fast", 0, nil),
			fakeExperiment("mid", 1*time.Millisecond, nil),
		}
	}
	var blobs [][]byte
	for _, workers := range []int{1, 8} {
		report, err := Run(mk(), Options{Seeds: 5, BaseSeed: 3, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		blob, err := json.Marshal(report)
		if err != nil {
			t.Fatal(err)
		}
		blobs = append(blobs, blob)
	}
	if !bytes.Equal(blobs[0], blobs[1]) {
		t.Errorf("merged reports differ between -workers 1 and -workers 8:\n%s\nvs\n%s",
			blobs[0], blobs[1])
	}
}

func TestCacheServesSecondRun(t *testing.T) {
	dir := t.TempDir()
	var calls atomic.Int64
	exps := func() []Experiment { return []Experiment{fakeExperiment("cached", 0, &calls)} }
	opts := Options{Seeds: 4, Workers: 2, CacheDir: dir}

	first, err := Run(exps(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if first.CacheHits != 0 || first.CacheMisses != 4 {
		t.Fatalf("first run: %d hits / %d misses, want 0/4", first.CacheHits, first.CacheMisses)
	}
	if calls.Load() != 4 {
		t.Fatalf("first run executed %d cells, want 4", calls.Load())
	}

	second, err := Run(exps(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if second.CacheHits != 4 || second.CacheMisses != 0 {
		t.Fatalf("second run: %d hits / %d misses, want 4/0", second.CacheHits, second.CacheMisses)
	}
	if calls.Load() != 4 {
		t.Fatalf("second run re-executed cells: %d total calls", calls.Load())
	}

	// Cached and fresh aggregates must match bit for bit (counters aside).
	if !bytes.Equal(mustJSON(t, first.Aggregates), mustJSON(t, second.Aggregates)) {
		t.Error("cached aggregates differ from fresh ones")
	}
}

func TestCacheKeySeparatesConfigurations(t *testing.T) {
	if cacheKey("fig5", "trace=100", 1) == cacheKey("fig5", "trace=200", 1) {
		t.Error("different fingerprints share a cache key")
	}
	if cacheKey("fig5", "trace=100", 1) == cacheKey("fig5", "trace=100", 2) {
		t.Error("different seeds share a cache key")
	}
	if cacheKey("fig5", "trace=100", 1) == cacheKey("fig6", "trace=100", 1) {
		t.Error("different experiments share a cache key")
	}
}

func TestCorruptCacheCellRecomputed(t *testing.T) {
	dir := t.TempDir()
	var calls atomic.Int64
	exps := func() []Experiment { return []Experiment{fakeExperiment("corrupt", 0, &calls)} }
	opts := Options{Seeds: 1, BaseSeed: 7, Workers: 1, CacheDir: dir}
	if _, err := Run(exps(), opts); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil || len(entries) != 1 {
		t.Fatalf("cache dir: %v entries, err %v", len(entries), err)
	}
	if err := os.WriteFile(filepath.Join(dir, entries[0].Name()), []byte("{torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	report, err := Run(exps(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if report.CacheHits != 0 || report.CacheMisses != 1 {
		t.Errorf("corrupt cell: %d hits / %d misses, want 0/1", report.CacheHits, report.CacheMisses)
	}
	if calls.Load() != 2 {
		t.Errorf("corrupt cell not recomputed: %d calls", calls.Load())
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(nil, Options{}); err == nil {
		t.Error("empty experiment table accepted")
	}
	dup := []Experiment{fakeExperiment("x", 0, nil), fakeExperiment("x", 0, nil)}
	if _, err := Run(dup, Options{}); err == nil {
		t.Error("duplicate experiment names accepted")
	}
	bad := []Experiment{{Name: "bad", Run: func(seed int64) (*Sample, error) {
		return nil, fmt.Errorf("boom at seed %d", seed)
	}}}
	_, err := Run(bad, Options{Seeds: 3, Workers: 2})
	if err == nil || !strings.Contains(err.Error(), "bad seed 1") {
		t.Errorf("error not surfaced deterministically: %v", err)
	}
}

func TestMergeRejectsMismatchedCells(t *testing.T) {
	shifty := Experiment{
		Name: "shifty",
		Run: func(seed int64) (*Sample, error) {
			cells := []Cell{{Group: "a", Key: "x", Value: 1}}
			if seed%2 == 0 {
				cells = append(cells, Cell{Group: "a", Key: "extra", Value: 2})
			}
			return &Sample{Experiment: "shifty", Seed: seed, Cells: cells}, nil
		},
	}
	if _, err := Run([]Experiment{shifty}, Options{Seeds: 2, Workers: 1}); err == nil {
		t.Error("mismatched cell sets across seeds accepted")
	}
}

func mustJSON(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}
