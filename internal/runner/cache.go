package runner

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// cacheVersion is baked into every cache key; bump it whenever the Sample
// schema or an experiment's semantics change incompatibly, so stale cells
// are recomputed instead of silently reused.
const cacheVersion = "1"

// cacheKey derives the content address of one (experiment, fingerprint,
// seed) cell.
func cacheKey(name, fingerprint string, seed int64) string {
	h := sha256.New()
	fmt.Fprintf(h, "lasmq-runner/v%s\x00%s\x00%s\x00%d", cacheVersion, name, fingerprint, seed)
	return hex.EncodeToString(h.Sum(nil))
}

// diskCache stores one JSON-encoded Sample per cell under its content
// address. Writes are atomic (temp file + rename) so a crashed run never
// leaves a torn cell behind, and concurrent workers writing the same cell
// (impossible within one run, possible across processes) settle on a
// complete file either way.
type diskCache struct {
	dir string
}

func newDiskCache(dir string) (*diskCache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("runner: create cache dir: %w", err)
	}
	return &diskCache{dir: dir}, nil
}

func (c *diskCache) path(key string) string {
	return filepath.Join(c.dir, key+".json")
}

// load returns the cached sample for key if present and well-formed. A
// corrupt or mismatched cell is treated as a miss (it will be recomputed and
// overwritten), never as an error: the cache is an accelerator, not a source
// of truth.
func (c *diskCache) load(key, wantExperiment string, wantSeed int64) (*Sample, bool) {
	data, err := os.ReadFile(c.path(key))
	if err != nil {
		return nil, false
	}
	var s Sample
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, false
	}
	if s.Experiment != wantExperiment || s.Seed != wantSeed || len(s.Cells) == 0 {
		return nil, false
	}
	return &s, true
}

func (c *diskCache) store(key string, s *Sample) error {
	data, err := json.Marshal(s)
	if err != nil {
		return fmt.Errorf("runner: encode cache cell: %w", err)
	}
	tmp, err := os.CreateTemp(c.dir, key+".tmp-*")
	if err != nil {
		return fmt.Errorf("runner: cache temp file: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("runner: write cache cell: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("runner: close cache cell: %w", err)
	}
	if err := os.Rename(tmp.Name(), c.path(key)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("runner: commit cache cell: %w", err)
	}
	return nil
}
