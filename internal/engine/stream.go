package engine

import (
	"errors"
	"fmt"

	"lasmq/internal/dist"
	"lasmq/internal/job"
	"lasmq/internal/sched"
	"lasmq/internal/substrate"
)

// Source streams the jobs of a workload in nondecreasing arrival order —
// the substrate kernel's Stream instantiated over the engine's structured
// job.Spec (stages, tasks, DAG dependencies), the way fluid.Source
// instantiates it over the flat trace spec. Implementations must be
// deterministic: two sources built from the same inputs must yield identical
// sequences, the property the streaming-versus-materialized differential
// tests pin.
type Source = substrate.Stream[job.Spec]

// SliceSource returns a Source that replays an in-memory workload in slice
// order (the caller must have sorted it by arrival).
func SliceSource(specs []job.Spec) Source { return substrate.SliceStream(specs) }

// arrivalCursor feeds the run loop its arrival stream: Peek reports the next
// arrival time (or that the stream is exhausted, or a source error), and Pop
// consumes the peeked job. Run walks the arena's pre-sorted pending list
// (substrate.SliceCursor); RunStream pulls specs from a Source and
// materializes pooled job records on demand (substrate.StreamCursor via
// recordCursor).
type arrivalCursor = substrate.Cursor[jobState]

// jobRecord is one streaming job's pooled storage: a deep-owned copy of the
// spec (sources may reuse their buffers, and the job's view reads
// spec.Stages — TotalService — for the job's whole lifetime), plus the
// runtime state the arena slabs hold in a materialized run. Records recycle
// through a substrate.SlabPool, so a run's heap is bounded by the peak
// number of live jobs rather than the stream length.
type jobRecord struct {
	spec       job.Spec
	specStages []job.StageSpec // backing for spec.Stages
	specTasks  []job.TaskSpec  // backing for all stages' Tasks
	specInts   []int           // backing for non-empty DependsOn lists

	js     jobState
	stages []stageState
	tasks  []taskState
	ints   []int // index-list backing (activeStages, attemptIDs, readyIdx)
}

// emptyDeps marks explicit root stages in deep-copied specs: job.Spec.Deps
// distinguishes a nil DependsOn (the linear default, depend on stage i-1)
// from an empty non-nil one (an explicit root), so the copy must preserve
// empty-but-non-nil without carving zero-length slices that compare nil.
var emptyDeps = []int{}

// fillJobRecord materializes a pooled record from a streamed spec: deep-copy
// the spec into the record's own backings, then wire the runtime state over
// them exactly as the materialized arena layout does (buildJobState). The
// GrowSlab calls re-zero each slab to this job's sizes, so a recycled
// record's stale contents are never observed.
func fillJobRecord(r *jobRecord, spec *job.Spec) {
	ns := len(spec.Stages)
	nt, nd := 0, 0
	for si := range spec.Stages {
		nt += len(spec.Stages[si].Tasks)
		nd += len(spec.Stages[si].DependsOn)
	}

	r.spec = *spec
	r.specStages = substrate.GrowSlab(r.specStages, ns)
	r.specTasks = substrate.GrowSlab(r.specTasks, nt)
	r.specInts = substrate.GrowSlab(r.specInts, nd)
	taskOff, depOff := 0, 0
	for si := range spec.Stages {
		src := &spec.Stages[si]
		dst := &r.specStages[si]
		*dst = *src
		k := len(src.Tasks)
		copy(r.specTasks[taskOff:taskOff+k], src.Tasks)
		dst.Tasks = r.specTasks[taskOff : taskOff+k : taskOff+k]
		taskOff += k
		switch {
		case src.DependsOn == nil:
			dst.DependsOn = nil
		case len(src.DependsOn) == 0:
			dst.DependsOn = emptyDeps
		default:
			d := len(src.DependsOn)
			copy(r.specInts[depOff:depOff+d], src.DependsOn)
			dst.DependsOn = r.specInts[depOff : depOff+d : depOff+d]
			depOff += d
		}
	}
	r.spec.Stages = r.specStages[:ns:ns]

	r.stages = substrate.GrowSlab(r.stages, ns)
	r.tasks = substrate.GrowSlab(r.tasks, nt)
	r.ints = substrate.GrowSlab(r.ints, ns+2*nt)
	intOff := 0
	carve := func(n int) []int {
		b := r.ints[intOff : intOff : intOff+n]
		intOff += n
		return b
	}
	buildJobState(&r.js, &r.spec, r.stages[:ns:ns], r.tasks[:nt:nt], carve)
	r.js.rec = r
}

// resetJobRecord is the job pool's Reset hook, run as records are returned:
// it zeroes the per-run scalar state while keeping every slice's backing
// capacity (fillJobRecord re-zeroes the slabs to the next job's exact sizes
// via GrowSlab, so stale slice contents are never observed).
func resetJobRecord(r *jobRecord) {
	r.spec = job.Spec{}
	r.js = jobState{}
}

// recordCursor adapts the kernel's StreamCursor (which pools jobRecords) to
// the run loop's jobState cursor.
type recordCursor struct {
	c substrate.StreamCursor[job.Spec, jobRecord]
}

func (rc *recordCursor) Peek() (float64, bool, error) { return rc.c.Peek() }
func (rc *recordCursor) Pop() *jobState               { return &rc.c.Pop().js }

// validateStreamSpec checks one streamed spec before the run admits it: the
// same per-spec validation Run applies up front, plus the nondecreasing-
// order contract a streaming run must enforce on the fly (prev is the
// previously yielded arrival, meaningful when n > 0).
func validateStreamSpec(n int, prev float64, s *job.Spec) error {
	if err := s.Validate(); err != nil {
		return fmt.Errorf("engine: %w", err)
	}
	if n > 0 && s.Arrival < prev {
		return fmt.Errorf("engine: source not sorted: job %d arrives at %v after %v",
			s.ID, s.Arrival, prev)
	}
	return nil
}

// sourceCursor instantiates the substrate kernel's StreamCursor for the
// engine: Peek reads one spec ahead (validating it), Pop deep-copies it into
// a pooled record.
func sourceCursor(src Source, pool *substrate.SlabPool[jobRecord]) arrivalCursor {
	return &recordCursor{c: substrate.StreamCursor[job.Spec, jobRecord]{
		Src:      src,
		Pool:     pool,
		Arrival:  func(s *job.Spec) float64 { return s.Arrival },
		Validate: validateStreamSpec,
		Wrap:     func(err error) error { return fmt.Errorf("engine: source: %w", err) },
		Fill:     fillJobRecord,
	}}
}

// StreamResult reports a streaming engine run. Unlike Result it holds no
// per-job slice or timeline — an arbitrarily long run keeps running
// aggregates only; per-job records flow through RunStream's callback as jobs
// complete. SumResponse accumulates in completion order (deterministic for a
// given seeded run), not workload order, so its last-ulp value may differ
// from a materialized Result's workload-order sum; the differential tests
// compare the per-job outcomes, which are byte-identical.
type StreamResult struct {
	// Scheduler is the policy name (sched.Scheduler.Name).
	Scheduler string
	// Jobs is the number of completed jobs.
	Jobs int
	// Makespan is the completion time of the last job.
	Makespan float64
	// Utilization is the time-averaged fraction of containers busy over the
	// makespan: Busy / (Makespan * Containers).
	Utilization float64
	// Busy is the integral of busy containers over time (container-seconds of
	// work actually executed, including failed and killed attempts). It is
	// kept explicit, not just folded into Utilization, so sharded runs can
	// fold per-shard results exactly: total busy over the global makespan.
	Busy float64
	// PeakUsage is the maximum number of containers simultaneously busy.
	PeakUsage int
	// SumResponse and SumService accumulate per-job response times and
	// consumed container-seconds in completion order.
	SumResponse float64
	SumService  float64
	// Attempts, Failures and Speculative total the per-job attempt counters.
	Attempts    int
	Failures    int
	Speculative int
	// Slab reports the job-record free list: peak live jobs bounds the run's
	// state memory, recycled counts mid-run record reuses. Live counts
	// records still held at exit (jobs whose killed copies' completion
	// events never drained).
	Slab substrate.SlabStats
	// AttemptSlab reports the attempt free list the same way (the stats Run
	// emits through obs.Probe.SlabStats).
	AttemptSlab substrate.SlabStats
}

// MeanResponseTime is the average job response time; 0 with no jobs.
func (r *StreamResult) MeanResponseTime() float64 {
	if r.Jobs == 0 {
		return 0
	}
	return r.SumResponse / float64(r.Jobs)
}

// RunStream simulates a streamed workload under the given policy. The source
// must yield jobs in nondecreasing arrival order (an unsorted stream is an
// error — a streaming run cannot sort what it has not read). Completed jobs
// are reported through each (in completion order) when non-nil, and their
// records return to a free-list pool, so peak memory is bounded by the jobs
// live at once, not the stream length. The scheduler instance must be fresh.
// Unlike Run, duplicate job IDs are detected only while both jobs are live,
// and Config.SampleInterval is ignored (no timeline is kept).
func RunStream(src Source, policy sched.Scheduler, cfg Config, each func(JobResult)) (*StreamResult, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if policy == nil {
		return nil, errors.New("engine: nil scheduler")
	}
	if src == nil {
		return nil, errors.New("engine: nil source")
	}
	ar := arenaPool.Get().(*arena)
	ar.buildStream()
	pool := &substrate.SlabPool[jobRecord]{Reset: resetJobRecord}
	out := &StreamResult{}
	s := &sim{
		cfg:       cfg,
		probe:     cfg.Probe,
		driver:    substrate.NewDriver(policy),
		adm:       substrate.NewQueue[*jobState](cfg.MaxRunningJobs),
		rng:       dist.New(cfg.Seed),
		arena:     ar,
		streaming: true,
		pool:      pool,
		cur:       sourceCursor(src, pool),
	}
	s.finish = func(js *jobState, jr JobResult) {
		out.Jobs++
		out.SumResponse += jr.ResponseTime
		out.SumService += jr.Service
		out.Attempts += jr.Attempts
		out.Failures += jr.Failures
		out.Speculative += jr.Speculative
		if each != nil {
			each(jr)
		}
	}
	s.driver.SetProbe(cfg.Probe)
	defer s.release()
	if err := s.run(); err != nil {
		return nil, err
	}
	out.Scheduler = s.driver.Name()
	out.Makespan = s.makespan
	out.Busy = s.busyIntegral
	if s.makespan > 0 {
		out.Utilization = out.Busy / (s.makespan * float64(s.cfg.Containers))
	}
	out.PeakUsage = s.peakUsage
	out.Slab = pool.Stats()
	out.AttemptSlab = substrate.SlabStats{
		Live:     s.attemptLive,
		Peak:     s.attemptPeak,
		Recycled: s.attemptRecycled,
	}
	if s.probe != nil {
		// The job-record pool's stats, after run() has emitted the attempt
		// slab's: both are functions of the simulated run alone, so the
		// events are byte-deterministic.
		s.probe.SlabStats(s.now, out.Slab.Live, out.Slab.Peak, out.Slab.Recycled)
	}
	return out, nil
}
