// Sharded task-level simulation: the cluster is partitioned into Shards
// independent sub-clusters of equal container counts, each simulated as its
// own streaming engine run (its own pooled job records, attempt slabs, and
// RNG stream), and the per-shard StreamResults are folded in shard order.
// The plan/pool/latch machinery is the substrate sharded-runner kernel
// (substrate.PlanShards / substrate.RunShards — see
// internal/substrate/shard.go for the Shards-vs-Workers contract); this file
// owns what is engine-specific: container partitioning, per-shard seed
// derivation, and the StreamResult fold.
package engine

import (
	"errors"
	"fmt"

	"lasmq/internal/obs"
	"lasmq/internal/sched"
	"lasmq/internal/substrate"
)

// ShardedConfig parameterizes a sharded engine run. The embedded Config
// describes the whole cluster: Containers is divided evenly across shards
// (it must be divisible by Shards — containers are discrete), and
// MaxRunningJobs (if set) applies per shard. Chaos injection (failures,
// stragglers, speculation) runs inside each shard with its own RNG stream
// seeded Seed+shard, so chaos is per-shard-deterministic: part of the
// simulated system, invariant under Workers.
type ShardedConfig struct {
	Config
	// Shards is the number of cluster partitions (>= 1; 0 means 1). Part of
	// the simulated system: it changes results and is fingerprinted.
	Shards int
	// Workers bounds concurrently advancing shards; 0 means GOMAXPROCS.
	// It never affects results. When a Probe is attached, execution is
	// serialized (Workers=1) so sinks need not be concurrency-safe and the
	// event stream stays deterministic; being execution-only, that cannot
	// change results either.
	Workers int
}

// RunSharded simulates a workload partitioned across cfg.Shards independent
// sub-clusters, each a full streaming engine run with chaos injection.
// newSource must return shard i's job stream — typically
// substrate.Strided(src, i, cfg.Shards) over an independent source instance
// per shard — and newPolicy a fresh scheduler per shard. Shard i runs with
// Containers/Shards containers and RNG seed cfg.Seed+i (so Shards=1
// reproduces RunStream with cfg.Seed byte-identically). Per-shard results
// are folded in shard-index order into one StreamResult: Makespan is the max
// across shards, Utilization is total busy container-seconds over total
// containers across the global makespan, and PeakUsage sums the per-shard
// peaks (an upper bound on global concurrency — shard peaks need not
// coincide in time).
func RunSharded(newSource func(shard int) (Source, error), newPolicy func() (sched.Scheduler, error), cfg ShardedConfig) (*StreamResult, error) {
	if newSource == nil || newPolicy == nil {
		return nil, errors.New("engine: nil source or policy constructor")
	}
	plan, err := substrate.PlanShards(cfg.Shards, cfg.Workers, cfg.Probe != nil)
	if err != nil {
		return nil, fmt.Errorf("engine: %w", err)
	}
	if err := cfg.Config.validate(); err != nil {
		return nil, err
	}
	if cfg.Containers%plan.Shards != 0 {
		return nil, fmt.Errorf("engine: containers (%d) must divide evenly across shards (%d)",
			cfg.Containers, plan.Shards)
	}

	shardCfg := cfg.Config
	shardCfg.Containers = cfg.Containers / plan.Shards

	results, err := substrate.RunShards(plan, func(shard int) (*StreamResult, error) {
		src, err := newSource(shard)
		if err != nil {
			return nil, err
		}
		policy, err := newPolicy()
		if err != nil {
			return nil, err
		}
		scfg := shardCfg
		scfg.Seed = cfg.Seed + int64(shard)
		scfg.Probe = obs.ForShard(cfg.Probe, shard)
		return RunStream(src, policy, scfg, nil)
	})
	if err != nil {
		return nil, fmt.Errorf("engine: %w", err)
	}

	// Fold in shard-index order: deterministic float summation.
	out := &StreamResult{}
	for shard, r := range results {
		if shard == 0 {
			out.Scheduler = r.Scheduler
		}
		out.Jobs += r.Jobs
		out.SumResponse += r.SumResponse
		out.SumService += r.SumService
		out.Busy += r.Busy
		out.Attempts += r.Attempts
		out.Failures += r.Failures
		out.Speculative += r.Speculative
		out.PeakUsage += r.PeakUsage
		if r.Makespan > out.Makespan {
			out.Makespan = r.Makespan
		}
		out.Slab.Live += r.Slab.Live
		out.Slab.Peak += r.Slab.Peak
		out.Slab.Recycled += r.Slab.Recycled
		out.AttemptSlab.Live += r.AttemptSlab.Live
		out.AttemptSlab.Peak += r.AttemptSlab.Peak
		out.AttemptSlab.Recycled += r.AttemptSlab.Recycled
	}
	if out.Makespan > 0 {
		out.Utilization = out.Busy / (out.Makespan * float64(cfg.Containers))
	}
	return out, nil
}
