package engine

import (
	"fmt"
	"reflect"
	"testing"

	"lasmq/internal/core"
	"lasmq/internal/workload"
)

// TestAttemptRecyclingByteIdentical pins the free-list contract: recycling
// ended attempts' slab slots must not change any result. It runs the Table-I
// mix — including a failures+stragglers+speculation configuration, whose kill
// paths and speculation scans are exactly where a stale recycled slot would
// leak into results — with recycling on and off and requires deep equality.
func TestAttemptRecyclingByteIdentical(t *testing.T) {
	defer func(orig bool) { attemptRecycling = orig }(attemptRecycling)

	configs := map[string]func() Config{
		"default": DefaultConfig,
		"chaos": func() Config {
			cfg := DefaultConfig()
			cfg.FailureProb = 0.1
			cfg.StragglerProb = 0.1
			cfg.StragglerFactor = 4
			cfg.Speculation = true
			cfg.Seed = 7
			return cfg
		},
	}
	for _, seed := range []int64{1, 2, 3} {
		wcfg := workload.DefaultConfig()
		wcfg.Seed = seed
		specs, err := workload.Generate(wcfg)
		if err != nil {
			t.Fatal(err)
		}
		for name, mkCfg := range configs {
			t.Run(fmt.Sprintf("seed%d/%s", seed, name), func(t *testing.T) {
				var runs [2]*Result
				for i, recycle := range []bool{false, true} {
					attemptRecycling = recycle
					mq, err := core.New(core.DefaultConfig())
					if err != nil {
						t.Fatal(err)
					}
					res, err := Run(specs, mq, mkCfg())
					if err != nil {
						t.Fatal(err)
					}
					runs[i] = res
				}
				if !reflect.DeepEqual(runs[0], runs[1]) {
					t.Fatal("attempt recycling changed results")
				}
			})
		}
	}
}

// TestAttemptRecyclingBoundsSlab pins the memory property the free list
// exists for: with recycling, the attempt slab's length stays far below the
// total number of attempts launched (it tracks peak in-flight attempts).
func TestAttemptRecyclingBoundsSlab(t *testing.T) {
	if !attemptRecycling {
		t.Skip("recycling disabled")
	}
	wcfg := workload.DefaultConfig()
	wcfg.Seed = 1
	specs, err := workload.Generate(wcfg)
	if err != nil {
		t.Fatal(err)
	}
	mq, err := core.New(core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	s := newSim(specs, mq, cfg)
	defer s.release()
	if err := s.run(); err != nil {
		t.Fatal(err)
	}
	launched := len(s.attempts) + s.attemptRecycled
	if launched < 1000 {
		t.Fatalf("workload too small to exercise recycling: %d attempts", launched)
	}
	if len(s.attempts) != s.attemptPeak {
		t.Errorf("slab length %d != peak in-flight %d", len(s.attempts), s.attemptPeak)
	}
	if s.attemptPeak*4 > s.attemptRecycled {
		t.Errorf("peak %d not far below recycled %d: slab not bounded by in-flight attempts",
			s.attemptPeak, s.attemptRecycled)
	}
	if s.attemptLive != 0 {
		t.Errorf("%d attempts still live after a clean run", s.attemptLive)
	}
}
