package engine_test

import (
	"strings"
	"testing"

	"lasmq/internal/engine"
	"lasmq/internal/job"
	"lasmq/internal/sched"
)

// stage builds a stage of n 1-container tasks with explicit dependencies.
func stage(name string, n int, duration float64, deps ...int) job.StageSpec {
	tasks := make([]job.TaskSpec, n)
	for i := range tasks {
		tasks[i] = job.TaskSpec{Duration: duration, Containers: 1}
	}
	if deps == nil {
		deps = []int{}
	}
	return job.StageSpec{Name: name, Tasks: tasks, DependsOn: deps}
}

func TestDAGDiamond(t *testing.T) {
	// scan -> {filter, aggregate} -> join: the two middle branches run
	// concurrently, so the critical path is 10 + max(20, 5) + 10 = 40.
	spec := job.Spec{
		ID: 1, Name: "diamond", Priority: 1,
		Stages: []job.StageSpec{
			stage("scan", 4, 10),
			stage("filter", 2, 20, 0),
			stage("aggregate", 2, 5, 0),
			stage("join", 2, 10, 1, 2),
		},
	}
	res, err := engine.Run([]job.Spec{spec}, sched.NewFIFO(), engine.Config{Containers: 10})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Jobs[0].ResponseTime; got != 40 {
		t.Errorf("diamond response = %v, want 40 (parallel branches)", got)
	}
	// The linear chain of the same stages would need 10+20+5+10 = 45.
}

func TestDAGIndependentRoots(t *testing.T) {
	// Two independent root stages start together; a final stage joins them.
	spec := job.Spec{
		ID: 1, Name: "roots", Priority: 1,
		Stages: []job.StageSpec{
			stage("left", 3, 10),
			stage("right", 3, 10, []int{}...), // explicit empty: also a root
			stage("merge", 1, 5, 0, 1),
		},
	}
	// Force the explicit empty slice (stage helper turns nil into empty).
	spec.Stages[1].DependsOn = []int{}
	res, err := engine.Run([]job.Spec{spec}, sched.NewFIFO(), engine.Config{Containers: 10})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Jobs[0].ResponseTime; got != 15 {
		t.Errorf("response = %v, want 15 (roots in parallel, then merge)", got)
	}
}

func TestDAGLinearDefaultUnchanged(t *testing.T) {
	// nil DependsOn keeps the Hadoop map->reduce chain semantics.
	spec := job.Spec{
		ID: 1, Name: "chain", Priority: 1,
		Stages: []job.StageSpec{
			{Name: "map", Tasks: []job.TaskSpec{{Duration: 10, Containers: 1}}},
			{Name: "reduce", Tasks: []job.TaskSpec{{Duration: 5, Containers: 2}}},
		},
	}
	res, err := engine.Run([]job.Spec{spec}, sched.NewFIFO(), engine.Config{Containers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Jobs[0].ResponseTime; got != 15 {
		t.Errorf("response = %v, want 15 (sequential stages)", got)
	}
}

func TestDAGWideFanOut(t *testing.T) {
	// One root fanning out to 4 independent branches, all joined at the end.
	stages := []job.StageSpec{stage("root", 2, 5)}
	for i := 0; i < 4; i++ {
		stages = append(stages, stage("branch", 2, 10, 0))
	}
	stages = append(stages, stage("sink", 1, 5, 1, 2, 3, 4))
	spec := job.Spec{ID: 1, Name: "fan", Priority: 1, Stages: stages}
	res, err := engine.Run([]job.Spec{spec}, sched.NewFIFO(), engine.Config{Containers: 16})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Jobs[0].ResponseTime; got != 20 {
		t.Errorf("response = %v, want 20 (5 + 10 parallel + 5)", got)
	}
}

func TestDAGBranchCapacityContention(t *testing.T) {
	// Branches are parallel in the DAG but must still share containers.
	spec := job.Spec{
		ID: 1, Name: "contended", Priority: 1,
		Stages: []job.StageSpec{
			stage("root", 1, 1),
			stage("a", 4, 10, 0),
			stage("b", 4, 10, 0),
		},
	}
	// Only 4 containers: the 8 branch tasks need two waves.
	res, err := engine.Run([]job.Spec{spec}, sched.NewFIFO(), engine.Config{Containers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Jobs[0].ResponseTime; got != 21 {
		t.Errorf("response = %v, want 21 (1 + two 10s waves)", got)
	}
}

func TestDAGValidationCycle(t *testing.T) {
	spec := job.Spec{
		ID: 1, Name: "cycle", Priority: 1,
		Stages: []job.StageSpec{
			stage("a", 1, 1, 1),
			stage("b", 1, 1, 0),
		},
	}
	err := spec.Validate()
	if err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Errorf("Validate = %v, want cycle error", err)
	}
}

func TestDAGValidationBadIndex(t *testing.T) {
	spec := job.Spec{
		ID: 1, Name: "bad", Priority: 1,
		Stages: []job.StageSpec{stage("a", 1, 1, 7)},
	}
	if err := spec.Validate(); err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Errorf("Validate = %v, want out-of-range error", err)
	}
	spec.Stages[0].DependsOn = []int{0}
	if err := spec.Validate(); err == nil || !strings.Contains(err.Error(), "itself") {
		t.Errorf("Validate = %v, want self-dependency error", err)
	}
}

func TestDAGStageAwareEstimateCoversActiveBranches(t *testing.T) {
	// With two active branches, LAS_MQ's demotion metric should reflect both
	// branches' projected service, demoting the job faster than a job with a
	// single equal-sized active stage completes its estimate. Behavioural
	// check: a DAG job with heavy parallel branches is demoted and a small
	// late job overtakes it.
	heavy := job.Spec{
		ID: 1, Name: "heavy-dag", Priority: 1,
		Stages: []job.StageSpec{
			stage("root", 1, 1),
			stage("a", 30, 40, 0),
			stage("b", 30, 40, 0),
		},
	}
	small := job.Spec{
		ID: 2, Name: "small", Priority: 1, Arrival: 30,
		Stages: []job.StageSpec{stage("s", 2, 2)},
	}
	mq := newLASMQ(t)
	res, err := engine.Run([]job.Spec{heavy, small}, mq, engine.Config{Containers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if res.Jobs[1].ResponseTime > res.Jobs[0].ResponseTime/5 {
		t.Errorf("small job response %v not well below heavy DAG job %v",
			res.Jobs[1].ResponseTime, res.Jobs[0].ResponseTime)
	}
}

func TestDAGWithFailures(t *testing.T) {
	spec := job.Spec{
		ID: 1, Name: "dag-failures", Priority: 1,
		Stages: []job.StageSpec{
			stage("scan", 6, 5),
			stage("left", 4, 8, 0),
			stage("right", 4, 8, 0),
			stage("join", 2, 5, 1, 2),
		},
	}
	cfg := engine.Config{Containers: 8, FailureProb: 0.25, Seed: 5, StragglerFactor: 3}
	res, err := engine.Run([]job.Spec{spec}, sched.NewFair(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	jr := res.Jobs[0]
	if jr.Failures == 0 {
		t.Error("expected failures at FailureProb=0.25")
	}
	if jr.ResponseTime <= 18 {
		t.Errorf("response %v should exceed the failure-free critical path 18", jr.ResponseTime)
	}
}
