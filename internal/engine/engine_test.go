package engine_test

import (
	"math"
	"strings"
	"testing"

	"lasmq/internal/core"
	"lasmq/internal/engine"
	"lasmq/internal/job"
	"lasmq/internal/sched"
)

// uniformJob builds a job with one map-like stage of n tasks.
func uniformJob(id int, arrival float64, n int, duration float64) job.Spec {
	tasks := make([]job.TaskSpec, n)
	for i := range tasks {
		tasks[i] = job.TaskSpec{Duration: duration, Containers: 1}
	}
	return job.Spec{
		ID:       id,
		Name:     "uniform",
		Bin:      1,
		Priority: 1,
		Arrival:  arrival,
		Stages:   []job.StageSpec{{Name: "map", Tasks: tasks}},
	}
}

// mapReduceJob builds a two-stage job: nMap 1-container map tasks followed by
// nReduce 2-container reduce tasks.
func mapReduceJob(id int, arrival float64, nMap int, mapDur float64, nReduce int, redDur float64) job.Spec {
	maps := make([]job.TaskSpec, nMap)
	for i := range maps {
		maps[i] = job.TaskSpec{Duration: mapDur, Containers: 1}
	}
	reduces := make([]job.TaskSpec, nReduce)
	for i := range reduces {
		reduces[i] = job.TaskSpec{Duration: redDur, Containers: 2}
	}
	return job.Spec{
		ID:       id,
		Name:     "mapreduce",
		Bin:      2,
		Priority: 1,
		Arrival:  arrival,
		Stages: []job.StageSpec{
			{Name: "map", Tasks: maps},
			{Name: "reduce", Tasks: reduces},
		},
	}
}

func smallConfig(containers int) engine.Config {
	cfg := engine.DefaultConfig()
	cfg.Containers = containers
	cfg.MaxRunningJobs = 0
	return cfg
}

func newLASMQ(t *testing.T) *core.LASMQ {
	t.Helper()
	s, err := core.New(core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSingleJobCompletesAtDuration(t *testing.T) {
	specs := []job.Spec{uniformJob(1, 0, 4, 10)}
	res, err := engine.Run(specs, sched.NewFIFO(), smallConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Jobs[0].ResponseTime; got != 10 {
		t.Errorf("response time = %v, want 10 (all tasks in parallel)", got)
	}
	if res.Makespan != 10 {
		t.Errorf("makespan = %v, want 10", res.Makespan)
	}
}

func TestWavesWhenCapacityScarce(t *testing.T) {
	// 10 tasks of 10s on 5 containers -> two waves -> 20s.
	specs := []job.Spec{uniformJob(1, 0, 10, 10)}
	res, err := engine.Run(specs, sched.NewFIFO(), smallConfig(5))
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Jobs[0].ResponseTime; got != 20 {
		t.Errorf("response time = %v, want 20 (two waves)", got)
	}
}

func TestStageDependency(t *testing.T) {
	// Map stage (10s) must complete before the reduce stage (5s) starts.
	specs := []job.Spec{mapReduceJob(1, 0, 4, 10, 2, 5)}
	res, err := engine.Run(specs, sched.NewFIFO(), smallConfig(10))
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Jobs[0].ResponseTime; got != 15 {
		t.Errorf("response time = %v, want 15 (map 10 + reduce 5)", got)
	}
}

func TestReduceTasksUseTwoContainers(t *testing.T) {
	// 4 reduce tasks x 2 containers on 5 containers: only 2 at a time.
	specs := []job.Spec{mapReduceJob(1, 0, 1, 1, 4, 10)}
	res, err := engine.Run(specs, sched.NewFIFO(), smallConfig(5))
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Jobs[0].ResponseTime; got != 21 {
		t.Errorf("response time = %v, want 21 (1 map + 2 reduce waves)", got)
	}
}

func TestResponseTimeIncludesArrival(t *testing.T) {
	specs := []job.Spec{uniformJob(1, 100, 2, 10)}
	res, err := engine.Run(specs, sched.NewFIFO(), smallConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Jobs[0].Completed; got != 110 {
		t.Errorf("completed = %v, want 110", got)
	}
	if got := res.Jobs[0].ResponseTime; got != 10 {
		t.Errorf("response = %v, want 10", got)
	}
}

func TestAdmissionControlSerializesJobs(t *testing.T) {
	cfg := smallConfig(100)
	cfg.MaxRunningJobs = 1
	specs := []job.Spec{
		uniformJob(1, 0, 2, 10),
		uniformJob(2, 0, 2, 10),
	}
	res, err := engine.Run(specs, sched.NewFIFO(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Jobs[0].ResponseTime; got != 10 {
		t.Errorf("job 1 response = %v, want 10", got)
	}
	// Job 2 waits in the admission queue until job 1 finishes.
	if got := res.Jobs[1].Admitted; got != 10 {
		t.Errorf("job 2 admitted = %v, want 10", got)
	}
	if got := res.Jobs[1].ResponseTime; got != 20 {
		t.Errorf("job 2 response = %v, want 20 (includes admission wait)", got)
	}
}

func TestFIFOHeadOfLineBlocking(t *testing.T) {
	// A large job ahead of a small one: FIFO delays the small job, while
	// LAS_MQ lets it overtake once the large job is demoted.
	large := uniformJob(1, 0, 40, 100)
	small := uniformJob(2, 1, 2, 1)
	cfg := smallConfig(10)

	fifoRes, err := engine.Run([]job.Spec{large, small}, sched.NewFIFO(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	mq, err := core.New(core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	mqRes, err := engine.Run([]job.Spec{large, small}, mq, cfg)
	if err != nil {
		t.Fatal(err)
	}
	fifoSmall := fifoRes.Jobs[1].ResponseTime
	mqSmall := mqRes.Jobs[1].ResponseTime
	if mqSmall >= fifoSmall {
		t.Errorf("LAS_MQ small-job response %v not better than FIFO %v", mqSmall, fifoSmall)
	}
	if fifoSmall < 300 {
		t.Errorf("FIFO small-job response %v suspiciously small; head-of-line blocking not modeled?", fifoSmall)
	}
}

func TestServiceAccountingExact(t *testing.T) {
	specs := []job.Spec{
		mapReduceJob(1, 0, 7, 13, 3, 9),
		uniformJob(2, 5, 11, 4),
	}
	res, err := engine.Run(specs, sched.NewFair(), smallConfig(6))
	if err != nil {
		t.Fatal(err)
	}
	for i, jr := range res.Jobs {
		want := specs[i].TotalService()
		if math.Abs(jr.Service-want) > 1e-6 {
			t.Errorf("job %d consumed service %v, want %v", jr.ID, jr.Service, want)
		}
	}
}

func TestMakespanLowerBound(t *testing.T) {
	specs := []job.Spec{
		uniformJob(1, 0, 20, 10),
		uniformJob(2, 0, 20, 10),
	}
	res, err := engine.Run(specs, sched.NewFair(), smallConfig(8))
	if err != nil {
		t.Fatal(err)
	}
	var total float64
	for i := range specs {
		total += specs[i].TotalService()
	}
	bound := total / 8
	if res.Makespan < bound-1e-9 {
		t.Errorf("makespan %v below capacity bound %v: capacity overcommitted", res.Makespan, bound)
	}
}

func TestFailuresRetryUntilSuccess(t *testing.T) {
	cfg := smallConfig(4)
	cfg.FailureProb = 0.3
	cfg.Seed = 42
	specs := []job.Spec{uniformJob(1, 0, 20, 5)}
	res, err := engine.Run(specs, sched.NewFIFO(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	jr := res.Jobs[0]
	if jr.Failures == 0 {
		t.Error("expected some failed attempts with FailureProb=0.3")
	}
	if jr.Attempts != 20+jr.Failures {
		t.Errorf("attempts = %d, want tasks + failures = %d", jr.Attempts, 20+jr.Failures)
	}
	if jr.Service <= specs[0].TotalService() {
		t.Errorf("service %v should exceed nominal %v when attempts fail", jr.Service, specs[0].TotalService())
	}
	if jr.ResponseTime <= 25 {
		t.Errorf("response %v should exceed failure-free 25", jr.ResponseTime)
	}
}

func TestStragglersSlowJobDown(t *testing.T) {
	base := smallConfig(4)
	specs := []job.Spec{uniformJob(1, 0, 8, 10)}
	clean, err := engine.Run(specs, sched.NewFIFO(), base)
	if err != nil {
		t.Fatal(err)
	}
	slow := base
	slow.StragglerProb = 0.5
	slow.StragglerFactor = 4
	slow.Seed = 7
	straggled, err := engine.Run(specs, sched.NewFIFO(), slow)
	if err != nil {
		t.Fatal(err)
	}
	if straggled.Jobs[0].ResponseTime <= clean.Jobs[0].ResponseTime {
		t.Errorf("straggler run %v not slower than clean run %v",
			straggled.Jobs[0].ResponseTime, clean.Jobs[0].ResponseTime)
	}
}

func TestSpeculationMitigatesStragglers(t *testing.T) {
	cfg := smallConfig(16)
	cfg.StragglerProb = 0.3
	cfg.StragglerFactor = 8
	cfg.Seed = 11
	specs := []job.Spec{uniformJob(1, 0, 8, 10)}

	plain, err := engine.Run(specs, sched.NewFIFO(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Speculation = true
	spec, err := engine.Run(specs, sched.NewFIFO(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if spec.Jobs[0].Speculative == 0 {
		t.Error("no speculative attempts launched despite free containers")
	}
	if spec.Jobs[0].ResponseTime > plain.Jobs[0].ResponseTime {
		t.Errorf("speculation made the job slower: %v > %v",
			spec.Jobs[0].ResponseTime, plain.Jobs[0].ResponseTime)
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	cfg := smallConfig(8)
	cfg.FailureProb = 0.2
	cfg.StragglerProb = 0.2
	cfg.StragglerFactor = 3
	cfg.Seed = 99
	specs := []job.Spec{
		mapReduceJob(1, 0, 9, 7, 4, 5),
		uniformJob(2, 3, 6, 11),
	}
	a, err := engine.Run(specs, sched.NewLAS(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := engine.Run(specs, sched.NewLAS(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Jobs {
		if a.Jobs[i] != b.Jobs[i] {
			t.Errorf("job %d results differ across identical runs:\n%+v\n%+v", i, a.Jobs[i], b.Jobs[i])
		}
	}
}

func TestRunIsolated(t *testing.T) {
	spec := uniformJob(1, 500, 10, 10)
	got, err := engine.RunIsolated(spec, sched.NewFIFO(), smallConfig(5))
	if err != nil {
		t.Fatal(err)
	}
	if got != 20 {
		t.Errorf("isolated runtime = %v, want 20 (arrival ignored)", got)
	}
}

func TestOversizedTaskDeadlocks(t *testing.T) {
	spec := job.Spec{
		ID: 1, Name: "huge", Priority: 1,
		Stages: []job.StageSpec{{Name: "map", Tasks: []job.TaskSpec{{Duration: 1, Containers: 10}}}},
	}
	_, err := engine.Run([]job.Spec{spec}, sched.NewFIFO(), smallConfig(2))
	if err == nil || !strings.Contains(err.Error(), "deadlock") {
		t.Errorf("err = %v, want deadlock error for task larger than the cluster", err)
	}
}

func TestConfigValidation(t *testing.T) {
	specs := []job.Spec{uniformJob(1, 0, 1, 1)}
	tests := []struct {
		name   string
		mutate func(*engine.Config)
	}{
		{name: "zero containers", mutate: func(c *engine.Config) { c.Containers = 0 }},
		{name: "negative admission", mutate: func(c *engine.Config) { c.MaxRunningJobs = -1 }},
		{name: "failure prob 1", mutate: func(c *engine.Config) { c.FailureProb = 1 }},
		{name: "negative failure prob", mutate: func(c *engine.Config) { c.FailureProb = -0.1 }},
		{name: "straggler prob above 1", mutate: func(c *engine.Config) { c.StragglerProb = 1.5 }},
		{name: "straggler factor 1", mutate: func(c *engine.Config) { c.StragglerProb = 0.5; c.StragglerFactor = 1 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := smallConfig(4)
			tt.mutate(&cfg)
			if _, err := engine.Run(specs, sched.NewFIFO(), cfg); err == nil {
				t.Error("expected config validation error")
			}
		})
	}
	if _, err := engine.Run(specs, nil, smallConfig(4)); err == nil {
		t.Error("expected error for nil scheduler")
	}
	bad := uniformJob(1, 0, 1, 1)
	bad.Stages[0].Tasks[0].Duration = -1
	if _, err := engine.Run([]job.Spec{bad}, sched.NewFIFO(), smallConfig(4)); err == nil {
		t.Error("expected error for invalid spec")
	}
}

func TestAllSchedulersCompleteMixedWorkload(t *testing.T) {
	mkSpecs := func() []job.Spec {
		return []job.Spec{
			mapReduceJob(1, 0, 12, 8, 4, 6),
			uniformJob(2, 2, 30, 3),
			mapReduceJob(3, 10, 5, 20, 2, 10),
			uniformJob(4, 11, 1, 1),
		}
	}
	cfg := smallConfig(10)
	cfg.MaxRunningJobs = 2

	policies := []func() sched.Scheduler{
		func() sched.Scheduler { return sched.NewFIFO() },
		func() sched.Scheduler { return sched.NewFair() },
		func() sched.Scheduler { return sched.NewLAS() },
		func() sched.Scheduler { return sched.NewSJF() },
		func() sched.Scheduler { return sched.NewSRTF() },
		func() sched.Scheduler {
			s, err := core.New(core.DefaultConfig())
			if err != nil {
				t.Fatal(err)
			}
			return s
		},
	}
	for _, mk := range policies {
		policy := mk()
		res, err := engine.Run(mkSpecs(), policy, cfg)
		if err != nil {
			t.Fatalf("%s: %v", policy.Name(), err)
		}
		if len(res.Jobs) != 4 {
			t.Fatalf("%s: %d results, want 4", policy.Name(), len(res.Jobs))
		}
		for _, jr := range res.Jobs {
			if jr.ResponseTime <= 0 {
				t.Errorf("%s: job %d response time %v", policy.Name(), jr.ID, jr.ResponseTime)
			}
			if jr.Completed < jr.Arrival {
				t.Errorf("%s: job %d completed before arrival", policy.Name(), jr.ID)
			}
		}
	}
}

func TestLASMQStageAwareDemotesFasterThanBlind(t *testing.T) {
	// With stage awareness the long job should be identified (and demoted)
	// quickly, so a later small job finishes sooner.
	long := uniformJob(1, 0, 50, 50)
	smallJobs := []job.Spec{
		uniformJob(2, 10, 4, 2),
		uniformJob(3, 20, 4, 2),
	}
	cfg := smallConfig(8)

	run := func(stageAware bool) float64 {
		c := core.DefaultConfig()
		c.StageAware = stageAware
		mq, err := core.New(c)
		if err != nil {
			t.Fatal(err)
		}
		res, err := engine.Run(append([]job.Spec{long}, smallJobs...), mq, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.Jobs[1].ResponseTime + res.Jobs[2].ResponseTime
	}
	aware := run(true)
	blind := run(false)
	if aware > blind {
		t.Errorf("stage-aware small-job response %v worse than blind %v", aware, blind)
	}
}

func TestMeanResponseTime(t *testing.T) {
	res := &engine.Result{}
	res.Record(1, 10)
	res.Record(1, 30)
	if got := res.MeanResponseTime(); got != 20 {
		t.Errorf("mean = %v, want 20", got)
	}
	empty := &engine.Result{}
	if got := empty.MeanResponseTime(); got != 0 {
		t.Errorf("mean of empty = %v, want 0", got)
	}
	if got := res.ResponseTimes(); len(got) != 2 || got[0] != 10 || got[1] != 30 {
		t.Errorf("ResponseTimes = %v", got)
	}
}

func TestFailuresAndSpeculationTogether(t *testing.T) {
	cfg := smallConfig(12)
	cfg.FailureProb = 0.15
	cfg.StragglerProb = 0.2
	cfg.StragglerFactor = 5
	cfg.Speculation = true
	cfg.Seed = 21
	specs := []job.Spec{
		mapReduceJob(1, 0, 10, 8, 3, 6),
		uniformJob(2, 4, 8, 5),
	}
	res, err := engine.Run(specs, sched.NewFair(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, jr := range res.Jobs {
		if jr.ResponseTime <= 0 {
			t.Errorf("job %d response %v", jr.ID, jr.ResponseTime)
		}
	}
	totalSpec := res.Jobs[0].Speculative + res.Jobs[1].Speculative
	totalFail := res.Jobs[0].Failures + res.Jobs[1].Failures
	if totalFail == 0 {
		t.Error("expected failures")
	}
	if totalSpec == 0 {
		t.Error("expected speculative attempts with free containers")
	}
}
