package engine_test

import (
	"reflect"
	"testing"

	"lasmq/internal/engine"
	"lasmq/internal/job"
	"lasmq/internal/sched"
)

// TestAdmissionLimitEdgeCases covers the kernel admission queue's boundary
// settings through the task engine: limit 0 means unlimited, and a limit
// above the job count must behave identically to unlimited. (Limit 1
// serialization is covered by TestAdmissionControlSerializesJobs.)
func TestAdmissionLimitEdgeCases(t *testing.T) {
	specs := []job.Spec{
		uniformJob(1, 0, 2, 10),
		uniformJob(2, 1, 2, 10),
		uniformJob(3, 2, 2, 10),
	}
	run := func(limit int) *engine.Result {
		t.Helper()
		cfg := smallConfig(8)
		cfg.MaxRunningJobs = limit
		res, err := engine.Run(specs, sched.NewFIFO(), cfg)
		if err != nil {
			t.Fatalf("limit %d: %v", limit, err)
		}
		if got := len(res.Jobs); got != len(specs) {
			t.Fatalf("limit %d: completed %d jobs, want %d", limit, got, len(specs))
		}
		for _, jr := range res.Jobs {
			if jr.ResponseTime <= 0 {
				t.Fatalf("limit %d: job %d has response %v, want > 0", limit, jr.ID, jr.ResponseTime)
			}
		}
		return res
	}

	unlimited := run(0)
	above := run(len(specs) + 10)
	if !reflect.DeepEqual(unlimited.Jobs, above.Jobs) {
		t.Errorf("limit above job count diverged from unlimited:\n  limit 0: %+v\n  limit %d: %+v",
			unlimited.Jobs, len(specs)+10, above.Jobs)
	}
	if unlimited.MeanResponseTime() != above.MeanResponseTime() {
		t.Errorf("mean response: limit 0 = %v, limit above count = %v",
			unlimited.MeanResponseTime(), above.MeanResponseTime())
	}
	// With unlimited admission nobody waits for a slot.
	for _, jr := range unlimited.Jobs {
		if jr.Admitted != jr.Arrival {
			t.Errorf("limit 0: job %d admitted at %v, want arrival %v", jr.ID, jr.Admitted, jr.Arrival)
		}
	}
}
