package engine_test

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"lasmq/internal/core"
	"lasmq/internal/engine"
	"lasmq/internal/fluid"
	"lasmq/internal/job"
	"lasmq/internal/sched"
)

// randomWorkload builds a random mixed workload (some linear map-reduce
// jobs, some DAGs) from a seed.
func randomWorkload(seed int64, jobs int) []job.Spec {
	r := rand.New(rand.NewSource(seed))
	specs := make([]job.Spec, 0, jobs)
	arrival := 0.0
	for i := 1; i <= jobs; i++ {
		arrival += r.ExpFloat64() * 15
		var spec job.Spec
		switch r.Intn(3) {
		case 0: // single stage
			spec = job.Spec{
				ID: i, Name: "single", Bin: 1, Priority: r.Intn(5) + 1, Arrival: arrival,
				Stages: []job.StageSpec{randStage(r, 1+r.Intn(12), 1)},
			}
		case 1: // map-reduce chain
			spec = job.Spec{
				ID: i, Name: "chain", Bin: 2, Priority: r.Intn(5) + 1, Arrival: arrival,
				Stages: []job.StageSpec{
					randStage(r, 2+r.Intn(10), 1),
					randStage(r, 1+r.Intn(4), 2),
				},
			}
		default: // diamond DAG
			root := randStage(r, 1+r.Intn(6), 1)
			root.DependsOn = []int{}
			left := randStage(r, 1+r.Intn(6), 1)
			left.DependsOn = []int{0}
			right := randStage(r, 1+r.Intn(6), 1)
			right.DependsOn = []int{0}
			sink := randStage(r, 1+r.Intn(3), 2)
			sink.DependsOn = []int{1, 2}
			spec = job.Spec{
				ID: i, Name: "dag", Bin: 3, Priority: r.Intn(5) + 1, Arrival: arrival,
				Stages: []job.StageSpec{root, left, right, sink},
			}
		}
		specs = append(specs, spec)
	}
	return specs
}

func randStage(r *rand.Rand, n, containers int) job.StageSpec {
	tasks := make([]job.TaskSpec, n)
	for i := range tasks {
		tasks[i] = job.TaskSpec{Duration: 1 + r.Float64()*20, Containers: containers}
	}
	return job.StageSpec{Name: "s", Tasks: tasks}
}

// TestEngineInvariantsProperty checks, across random workloads and policies:
// every job completes after its arrival, consumed service equals nominal
// (without failures/speculation), peak usage respects capacity, utilization
// is a fraction, and the makespan respects the capacity bound.
func TestEngineInvariantsProperty(t *testing.T) {
	mkPolicies := []func() sched.Scheduler{
		func() sched.Scheduler { return sched.NewFIFO() },
		func() sched.Scheduler { return sched.NewFair() },
		func() sched.Scheduler { return sched.NewLAS() },
		func() sched.Scheduler {
			s, _ := core.New(core.DefaultConfig())
			return s
		},
	}
	f := func(seed int64, nRaw uint8, mrRaw uint8) bool {
		jobs := int(nRaw%12) + 2
		specs := randomWorkload(seed, jobs)
		cfg := engine.Config{
			Containers:     10,
			MaxRunningJobs: int(mrRaw % 5), // 0..4 (0 = unlimited)
		}
		var totalService float64
		for i := range specs {
			totalService += specs[i].TotalService()
		}
		for _, mk := range mkPolicies {
			res, err := engine.Run(specs, mk(), cfg)
			if err != nil {
				return false
			}
			if len(res.Jobs) != jobs {
				return false
			}
			var consumed float64
			for i, jr := range res.Jobs {
				if jr.Completed < jr.Arrival || jr.ResponseTime <= 0 {
					return false
				}
				if jr.Admitted < jr.Arrival {
					return false
				}
				if jr.Failures != 0 || jr.Speculative != 0 {
					return false
				}
				if jr.Attempts != specs[i].TotalTasks() {
					return false
				}
				consumed += jr.Service
			}
			if math.Abs(consumed-totalService) > 1e-6*totalService {
				return false
			}
			if res.PeakUsage > cfg.Containers || res.PeakUsage <= 0 {
				return false
			}
			if res.Utilization <= 0 || res.Utilization > 1+1e-9 {
				return false
			}
			// Work conservation bound: the cluster cannot finish faster than
			// total service / capacity.
			if res.Makespan < totalService/float64(cfg.Containers)-1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// fluidEquivalent converts a single-stage, uniform-task-duration workload
// into its fluid-simulator form: a job with n tasks of duration d and one
// container each is a malleable demand of size n*d with parallelism cap n.
func fluidEquivalent(specs []job.Spec, taskDuration float64) []fluid.JobSpec {
	out := make([]fluid.JobSpec, len(specs))
	for i := range specs {
		n := specs[i].TotalTasks()
		out[i] = fluid.JobSpec{
			ID:       specs[i].ID,
			Arrival:  specs[i].Arrival,
			Size:     float64(n) * taskDuration,
			Width:    float64(n),
			Priority: specs[i].Priority,
		}
	}
	return out
}

// crossEngineWorkload builds a workload both engines represent exactly:
// single-stage jobs, every task the same duration, one container per task,
// equal priorities, with a heavy-tailed task-count mix so the policies
// separate.
func crossEngineWorkload(seed int64, jobs int, taskDuration float64) []job.Spec {
	r := rand.New(rand.NewSource(seed))
	specs := make([]job.Spec, 0, jobs)
	arrival := 0.0
	for i := 1; i <= jobs; i++ {
		arrival += r.ExpFloat64() * 1.5
		n := 1 + r.Intn(4)
		if r.Float64() < 0.25 { // a quarter of the jobs are an order heavier
			n = 15 + r.Intn(25)
		}
		tasks := make([]job.TaskSpec, n)
		for t := range tasks {
			tasks[t] = job.TaskSpec{Duration: taskDuration, Containers: 1}
		}
		specs = append(specs, job.Spec{
			ID: i, Name: "uniform", Bin: 1, Priority: 1, Arrival: arrival,
			Stages: []job.StageSpec{{Name: "s", Tasks: tasks}},
		})
	}
	return specs
}

// TestCrossEngineRankingAgreement is the differential property test between
// the task-level engine and the fluid simulator: on workloads both model
// exactly, the two must agree on the relative ordering of {FIFO, FAIR, LAS,
// LAS_MQ} mean response times. The engines discretize differently (whole
// containers vs. fractional shares), so pairs whose means sit within a
// tolerance band in either engine count as ties; what must never happen is a
// strict inversion — one engine claiming a policy clearly wins while the
// other claims it clearly loses.
//
// Both simulators drive policies through the internal/substrate kernel
// (driver dispatch, admission, view registry, result accumulation), so this
// doubles as a kernel differential: the means compared below come from the
// shared substrate.Result accumulator on each side. The live mini-YARN leg
// of the same property is yarn.TestEngineYarnCompletionOrderAgreement.
func TestCrossEngineRankingAgreement(t *testing.T) {
	const (
		taskDuration = 2.0
		containers   = 10
		margin       = 0.15 // relative gap below which a pair is a tie
	)
	mqConfig := func() core.Config {
		cfg := core.DefaultConfig()
		cfg.Queues = 5
		cfg.FirstThreshold = 4
		cfg.Step = 3
		cfg.StageAware = false // fluid jobs have no stages; compare like with like
		cfg.OrderByDemand = false
		return cfg
	}
	policies := []struct {
		name string
		mk   func() sched.Scheduler
	}{
		{name: "FIFO", mk: func() sched.Scheduler { return sched.NewFIFO() }},
		{name: "FAIR", mk: func() sched.Scheduler { return sched.NewFair() }},
		{name: "LAS", mk: func() sched.Scheduler { return sched.NewLAS() }},
		{name: "LAS_MQ", mk: func() sched.Scheduler {
			s, err := core.New(mqConfig())
			if err != nil {
				t.Fatal(err)
			}
			return s
		}},
	}
	agreements := 0 // pairs clearly ordered in BOTH engines, same way
	for _, seed := range []int64{1, 2, 3, 4, 5, 6, 7, 8} {
		specs := crossEngineWorkload(seed, 20, taskDuration)
		fspecs := fluidEquivalent(specs, taskDuration)
		engineMeans := make(map[string]float64, len(policies))
		fluidMeans := make(map[string]float64, len(policies))
		for _, p := range policies {
			eres, err := engine.Run(specs, p.mk(), engine.Config{Containers: containers})
			if err != nil {
				t.Fatalf("seed %d engine %s: %v", seed, p.name, err)
			}
			engineMeans[p.name] = eres.MeanResponseTime()
			fres, err := fluid.Run(fspecs, p.mk(), fluid.Config{
				Capacity:     containers,
				TaskDuration: taskDuration,
			})
			if err != nil {
				t.Fatalf("seed %d fluid %s: %v", seed, p.name, err)
			}
			fluidMeans[p.name] = fres.MeanResponseTime()
		}
		for i := range policies {
			for j := i + 1; j < len(policies); j++ {
				a, b := policies[i].name, policies[j].name
				eCmp := clearOrder(engineMeans[a], engineMeans[b], margin)
				fCmp := clearOrder(fluidMeans[a], fluidMeans[b], margin)
				if eCmp != 0 && fCmp != 0 {
					if eCmp != fCmp {
						t.Errorf("seed %d: engines disagree on %s vs %s: engine means %.2f/%.2f, fluid means %.2f/%.2f",
							seed, a, b, engineMeans[a], engineMeans[b], fluidMeans[a], fluidMeans[b])
					} else {
						agreements++
					}
				}
			}
		}
	}
	// The property is vacuous if every pair ties everywhere; the workload is
	// built to separate the policies, so demand real agreement.
	if agreements < 8 {
		t.Errorf("only %d clearly-ordered pair agreements across all seeds; workload no longer separates the policies", agreements)
	}
}

// clearOrder returns -1 if a is clearly smaller than b, +1 if clearly
// larger, and 0 when the pair is within the relative tie margin.
func clearOrder(a, b, margin float64) int {
	if a < b*(1-margin) {
		return -1
	}
	if a > b*(1+margin) {
		return 1
	}
	return 0
}

// TestEngineResponseNeverBeatsIsolated: contention can only slow a job down.
func TestEngineResponseNeverBeatsIsolated(t *testing.T) {
	specs := randomWorkload(3, 8)
	cfg := engine.Config{Containers: 10}
	for _, mk := range []func() sched.Scheduler{
		func() sched.Scheduler { return sched.NewFIFO() },
		func() sched.Scheduler {
			s, _ := core.New(core.DefaultConfig())
			return s
		},
	} {
		res, err := engine.Run(specs, mk(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		for i := range specs {
			iso, err := engine.RunIsolated(specs[i], sched.NewFIFO(), cfg)
			if err != nil {
				t.Fatal(err)
			}
			if res.Jobs[i].ResponseTime < iso-1e-9 {
				t.Errorf("%s job %d response %v beats isolated %v",
					res.Scheduler, specs[i].ID, res.Jobs[i].ResponseTime, iso)
			}
		}
	}
}

func TestTimelineSampling(t *testing.T) {
	specs := randomWorkload(5, 10)
	cfg := engine.Config{Containers: 10, SampleInterval: 5}
	res, err := engine.Run(specs, sched.NewFair(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Timeline) == 0 {
		t.Fatal("no timeline samples despite SampleInterval > 0")
	}
	prev := -1.0
	for _, s := range res.Timeline {
		if s.Time < prev {
			t.Fatalf("timeline not ordered: %v after %v", s.Time, prev)
		}
		if prev >= 0 && s.Time-prev < 5-1e-9 {
			t.Fatalf("samples %v and %v closer than the interval", prev, s.Time)
		}
		prev = s.Time
		if s.UsedContainers < 0 || s.UsedContainers > 10 {
			t.Fatalf("sample usage %d out of [0,10]", s.UsedContainers)
		}
		if s.RunningJobs < 0 || s.WaitingJobs < 0 {
			t.Fatalf("negative job counts in sample %+v", s)
		}
	}

	// Sampling off: no timeline.
	cfg.SampleInterval = 0
	res, err = engine.Run(specs, sched.NewFair(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Timeline != nil {
		t.Errorf("timeline recorded despite sampling off: %d samples", len(res.Timeline))
	}

	// Negative interval rejected.
	cfg.SampleInterval = -1
	if _, err := engine.Run(specs, sched.NewFair(), cfg); err == nil {
		t.Error("expected validation error for negative sample interval")
	}
}

// TestUtilizationHighUnderOverload: with far more demand than capacity, the
// cluster should be nearly fully utilized until the work drains.
func TestUtilizationHighUnderOverload(t *testing.T) {
	var specs []job.Spec
	for i := 1; i <= 6; i++ {
		specs = append(specs, job.Spec{
			ID: i, Name: "load", Bin: 1, Priority: 1,
			Stages: []job.StageSpec{randStage(rand.New(rand.NewSource(int64(i))), 40, 1)},
		})
	}
	res, err := engine.Run(specs, sched.NewFair(), engine.Config{Containers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if res.Utilization < 0.9 {
		t.Errorf("utilization = %v, want >= 0.9 under overload", res.Utilization)
	}
	if res.PeakUsage != 8 {
		t.Errorf("peak usage = %d, want full capacity 8", res.PeakUsage)
	}
}
