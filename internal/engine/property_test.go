package engine_test

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"lasmq/internal/core"
	"lasmq/internal/engine"
	"lasmq/internal/job"
	"lasmq/internal/sched"
)

// randomWorkload builds a random mixed workload (some linear map-reduce
// jobs, some DAGs) from a seed.
func randomWorkload(seed int64, jobs int) []job.Spec {
	r := rand.New(rand.NewSource(seed))
	specs := make([]job.Spec, 0, jobs)
	arrival := 0.0
	for i := 1; i <= jobs; i++ {
		arrival += r.ExpFloat64() * 15
		var spec job.Spec
		switch r.Intn(3) {
		case 0: // single stage
			spec = job.Spec{
				ID: i, Name: "single", Bin: 1, Priority: r.Intn(5) + 1, Arrival: arrival,
				Stages: []job.StageSpec{randStage(r, 1+r.Intn(12), 1)},
			}
		case 1: // map-reduce chain
			spec = job.Spec{
				ID: i, Name: "chain", Bin: 2, Priority: r.Intn(5) + 1, Arrival: arrival,
				Stages: []job.StageSpec{
					randStage(r, 2+r.Intn(10), 1),
					randStage(r, 1+r.Intn(4), 2),
				},
			}
		default: // diamond DAG
			root := randStage(r, 1+r.Intn(6), 1)
			root.DependsOn = []int{}
			left := randStage(r, 1+r.Intn(6), 1)
			left.DependsOn = []int{0}
			right := randStage(r, 1+r.Intn(6), 1)
			right.DependsOn = []int{0}
			sink := randStage(r, 1+r.Intn(3), 2)
			sink.DependsOn = []int{1, 2}
			spec = job.Spec{
				ID: i, Name: "dag", Bin: 3, Priority: r.Intn(5) + 1, Arrival: arrival,
				Stages: []job.StageSpec{root, left, right, sink},
			}
		}
		specs = append(specs, spec)
	}
	return specs
}

func randStage(r *rand.Rand, n, containers int) job.StageSpec {
	tasks := make([]job.TaskSpec, n)
	for i := range tasks {
		tasks[i] = job.TaskSpec{Duration: 1 + r.Float64()*20, Containers: containers}
	}
	return job.StageSpec{Name: "s", Tasks: tasks}
}

// TestEngineInvariantsProperty checks, across random workloads and policies:
// every job completes after its arrival, consumed service equals nominal
// (without failures/speculation), peak usage respects capacity, utilization
// is a fraction, and the makespan respects the capacity bound.
func TestEngineInvariantsProperty(t *testing.T) {
	mkPolicies := []func() sched.Scheduler{
		func() sched.Scheduler { return sched.NewFIFO() },
		func() sched.Scheduler { return sched.NewFair() },
		func() sched.Scheduler { return sched.NewLAS() },
		func() sched.Scheduler {
			s, _ := core.New(core.DefaultConfig())
			return s
		},
	}
	f := func(seed int64, nRaw uint8, mrRaw uint8) bool {
		jobs := int(nRaw%12) + 2
		specs := randomWorkload(seed, jobs)
		cfg := engine.Config{
			Containers:     10,
			MaxRunningJobs: int(mrRaw % 5), // 0..4 (0 = unlimited)
		}
		var totalService float64
		for i := range specs {
			totalService += specs[i].TotalService()
		}
		for _, mk := range mkPolicies {
			res, err := engine.Run(specs, mk(), cfg)
			if err != nil {
				return false
			}
			if len(res.Jobs) != jobs {
				return false
			}
			var consumed float64
			for i, jr := range res.Jobs {
				if jr.Completed < jr.Arrival || jr.ResponseTime <= 0 {
					return false
				}
				if jr.Admitted < jr.Arrival {
					return false
				}
				if jr.Failures != 0 || jr.Speculative != 0 {
					return false
				}
				if jr.Attempts != specs[i].TotalTasks() {
					return false
				}
				consumed += jr.Service
			}
			if math.Abs(consumed-totalService) > 1e-6*totalService {
				return false
			}
			if res.PeakUsage > cfg.Containers || res.PeakUsage <= 0 {
				return false
			}
			if res.Utilization <= 0 || res.Utilization > 1+1e-9 {
				return false
			}
			// Work conservation bound: the cluster cannot finish faster than
			// total service / capacity.
			if res.Makespan < totalService/float64(cfg.Containers)-1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestEngineResponseNeverBeatsIsolated: contention can only slow a job down.
func TestEngineResponseNeverBeatsIsolated(t *testing.T) {
	specs := randomWorkload(3, 8)
	cfg := engine.Config{Containers: 10}
	for _, mk := range []func() sched.Scheduler{
		func() sched.Scheduler { return sched.NewFIFO() },
		func() sched.Scheduler {
			s, _ := core.New(core.DefaultConfig())
			return s
		},
	} {
		res, err := engine.Run(specs, mk(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		for i := range specs {
			iso, err := engine.RunIsolated(specs[i], sched.NewFIFO(), cfg)
			if err != nil {
				t.Fatal(err)
			}
			if res.Jobs[i].ResponseTime < iso-1e-9 {
				t.Errorf("%s job %d response %v beats isolated %v",
					res.Scheduler, specs[i].ID, res.Jobs[i].ResponseTime, iso)
			}
		}
	}
}

func TestTimelineSampling(t *testing.T) {
	specs := randomWorkload(5, 10)
	cfg := engine.Config{Containers: 10, SampleInterval: 5}
	res, err := engine.Run(specs, sched.NewFair(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Timeline) == 0 {
		t.Fatal("no timeline samples despite SampleInterval > 0")
	}
	prev := -1.0
	for _, s := range res.Timeline {
		if s.Time < prev {
			t.Fatalf("timeline not ordered: %v after %v", s.Time, prev)
		}
		if prev >= 0 && s.Time-prev < 5-1e-9 {
			t.Fatalf("samples %v and %v closer than the interval", prev, s.Time)
		}
		prev = s.Time
		if s.UsedContainers < 0 || s.UsedContainers > 10 {
			t.Fatalf("sample usage %d out of [0,10]", s.UsedContainers)
		}
		if s.RunningJobs < 0 || s.WaitingJobs < 0 {
			t.Fatalf("negative job counts in sample %+v", s)
		}
	}

	// Sampling off: no timeline.
	cfg.SampleInterval = 0
	res, err = engine.Run(specs, sched.NewFair(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Timeline != nil {
		t.Errorf("timeline recorded despite sampling off: %d samples", len(res.Timeline))
	}

	// Negative interval rejected.
	cfg.SampleInterval = -1
	if _, err := engine.Run(specs, sched.NewFair(), cfg); err == nil {
		t.Error("expected validation error for negative sample interval")
	}
}

// TestUtilizationHighUnderOverload: with far more demand than capacity, the
// cluster should be nearly fully utilized until the work drains.
func TestUtilizationHighUnderOverload(t *testing.T) {
	var specs []job.Spec
	for i := 1; i <= 6; i++ {
		specs = append(specs, job.Spec{
			ID: i, Name: "load", Bin: 1, Priority: 1,
			Stages: []job.StageSpec{randStage(rand.New(rand.NewSource(int64(i))), 40, 1)},
		})
	}
	res, err := engine.Run(specs, sched.NewFair(), engine.Config{Containers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if res.Utilization < 0.9 {
		t.Errorf("utilization = %v, want >= 0.9 under overload", res.Utilization)
	}
	if res.PeakUsage != 8 {
		t.Errorf("peak usage = %d, want full capacity 8", res.PeakUsage)
	}
}
