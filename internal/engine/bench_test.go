package engine

// White-box benchmarks of the scheduling round itself: a saturated sim where
// schedule() must run the policy, quantize, and scan candidates but cannot
// launch anything — the steady-path overhead the incremental round work
// targets. `make bench-baseline` / `make bench-compare` track these through
// BENCH_engine.json.

import (
	"testing"

	"lasmq/internal/core"
	"lasmq/internal/job"
	"lasmq/internal/obs"
	"lasmq/internal/sched"
)

// benchSpecs builds n single-stage jobs (duration skewed by index) that
// together demand far more containers than the bench cluster offers.
func benchSpecs(n int) []job.Spec {
	specs := make([]job.Spec, n)
	for i := range specs {
		tasks := make([]job.TaskSpec, 40)
		for t := range tasks {
			tasks[t] = job.TaskSpec{Duration: float64(10 + (i*7+t)%90), Containers: 1}
		}
		specs[i] = job.Spec{
			ID:       i + 1,
			Priority: i%5 + 1,
			Arrival:  0,
			Stages:   []job.StageSpec{{Name: "map", Tasks: tasks}},
		}
	}
	return specs
}

// newBenchSim admits every job at t=0 and runs one round to saturate the
// cluster, so subsequent schedule() calls measure pure round overhead.
// FullReschedule keeps the saturated-round short-circuit out of the way: the
// benchmark measures the cost of a complete policy + quantize + scan round.
// probe, when non-nil, is attached as the sim's telemetry probe (see
// BenchmarkScheduleRoundProbed).
func newBenchSim(tb testing.TB, policy sched.Scheduler, probe obs.Probe) *sim {
	tb.Helper()
	cfg := DefaultConfig()
	cfg.MaxRunningJobs = 0
	cfg.FullReschedule = true
	cfg.Probe = probe
	s := newSim(benchSpecs(200), policy, cfg)
	if err := s.armArrivals(); err != nil {
		tb.Fatal(err)
	}
	t, batch, ok := s.queue.popBatch(nil)
	if !ok || t != 0 || len(batch) != 1 || batch[0].kind != evArrivals {
		tb.Fatalf("expected the arrivals sentinel at t=0, got t=%v ok=%v batch=%v", t, ok, batch)
	}
	if err := s.drainArrivals(t); err != nil {
		tb.Fatal(err)
	}
	s.admit()
	s.schedule()
	if s.usedSlots != cfg.Containers {
		tb.Fatalf("bench sim not saturated: %d/%d containers busy", s.usedSlots, cfg.Containers)
	}
	return s
}

func BenchmarkScheduleRound(b *testing.B) {
	cases := []struct {
		name string
		mk   func(b *testing.B) sched.Scheduler
	}{
		{"LASMQ", func(b *testing.B) sched.Scheduler {
			mq, err := core.New(core.DefaultConfig())
			if err != nil {
				b.Fatal(err)
			}
			return mq
		}},
		{"Fair", func(*testing.B) sched.Scheduler { return sched.NewFair() }},
		{"LAS", func(*testing.B) sched.Scheduler { return sched.NewLAS() }},
		{"FIFO", func(*testing.B) sched.Scheduler { return sched.NewFIFO() }},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			s := newBenchSim(b, tc.mk(b), nil)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.schedule()
			}
		})
	}
}
