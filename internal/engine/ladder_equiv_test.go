package engine

// White-box proof that the event-queue migration is invisible: a run forced
// onto the ladder queue from (nearly) the first event must produce a Result
// byte-identical to the default run, which stays on the binary heap for
// workloads this small. Together with the eventq differential fuzz this pins
// the engine-level selection logic, not just the queue in isolation.

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"lasmq/internal/core"
	"lasmq/internal/job"
	"lasmq/internal/sched"
)

// ladderSpecs builds a bursty mixed workload whose arrivals are quantized to
// half-units, so many events carry exactly equal timestamps and the
// equal-time FIFO contract is load-bearing.
func ladderSpecs(seed int64, n int) []job.Spec {
	rng := rand.New(rand.NewSource(seed))
	specs := make([]job.Spec, 0, n)
	var arrival float64
	for i := 0; i < n; i++ {
		if rng.Float64() < 0.25 {
			arrival += float64(rng.Intn(60)) / 2 // idle gap, keeps ties exact
		}
		nt := 1 + rng.Intn(10)
		tasks := make([]job.TaskSpec, nt)
		for t := range tasks {
			tasks[t] = job.TaskSpec{Duration: float64(1+rng.Intn(20)) / 2, Containers: 1}
		}
		spec := job.Spec{
			ID:      i + 1,
			Bin:     i%3 + 1,
			Arrival: arrival,
			Stages:  []job.StageSpec{{Name: "map", Tasks: tasks}},
		}
		if i%3 == 1 {
			spec.Stages = append(spec.Stages, job.StageSpec{
				Name:  "reduce",
				Tasks: []job.TaskSpec{{Duration: float64(2 + rng.Intn(8)), Containers: 2}},
			})
		}
		specs = append(specs, spec)
		arrival += float64(rng.Intn(4)) / 2
	}
	return specs
}

func TestLadderQueueByteIdentical(t *testing.T) {
	policies := map[string]func() sched.Scheduler{
		"FIFO": func() sched.Scheduler { return sched.NewFIFO() },
		"Fair": func() sched.Scheduler { return sched.NewFair() },
		"LASMQ": func() sched.Scheduler {
			mq, err := core.New(core.DefaultConfig())
			if err != nil {
				t.Fatal(err)
			}
			return mq
		},
	}
	configs := map[string]func(*Config){
		"clean": func(*Config) {},
		"noisy": func(c *Config) {
			c.Containers = 24
			c.MaxRunningJobs = 6
			c.FailureProb = 0.1
			c.StragglerProb = 0.1
			c.Speculation = true
			c.SampleInterval = 5
		},
	}
	for pname, mk := range policies {
		for cname, tweak := range configs {
			for seed := int64(1); seed <= 2; seed++ {
				t.Run(fmt.Sprintf("%s/%s/seed%d", pname, cname, seed), func(t *testing.T) {
					specs := ladderSpecs(seed, 60)
					cfg := DefaultConfig()
					tweak(&cfg)
					cfg.Seed = seed

					run := func(threshold int) *Result {
						t.Helper()
						old := ladderThreshold
						ladderThreshold = threshold
						defer func() { ladderThreshold = old }()
						res, err := Run(specs, mk(), cfg)
						if err != nil {
							t.Fatal(err)
						}
						return res
					}
					heapRes := run(1 << 30) // never migrate
					ladderRes := run(2)     // migrate almost immediately
					if !reflect.DeepEqual(heapRes, ladderRes) {
						t.Fatalf("ladder run diverged from heap run:\nheap:   %+v\nladder: %+v",
							heapRes, ladderRes)
					}
				})
			}
		}
	}
}
