package engine_test

import (
	"io"
	"reflect"
	"testing"

	"lasmq/internal/engine"
	"lasmq/internal/obs"
)

// TestProbedMatchesUnprobed is the telemetry layer's correctness gate on the
// task-level engine: attaching a probe (with every sink type fanned in) must
// not perturb the simulation. Results are compared byte-for-byte across the
// same policy families and adversarial config the incremental differential
// test uses; only the Counters snapshot — telemetry, not a simulated
// outcome — may differ, so it is nulled before the comparison.
func TestProbedMatchesUnprobed(t *testing.T) {
	for pname, mk := range diffPolicies(t) {
		t.Run(pname, func(t *testing.T) {
			for seed := int64(1); seed <= 2; seed++ {
				cfg := engine.DefaultConfig()
				cfg.Containers = 16
				cfg.MaxRunningJobs = 4
				cfg.FailureProb = 0.1
				cfg.StragglerProb = 0.2
				cfg.StragglerFactor = 3
				cfg.Speculation = true
				cfg.SampleInterval = 5
				cfg.Seed = seed
				specs := diffWorkload(seed, 24)

				plain, err := engine.Run(specs, mk(), cfg)
				if err != nil {
					t.Fatalf("seed %d unprobed: %v", seed, err)
				}
				cfg.Probe = obs.Multi(obs.NewCounters(), obs.NewJSONL(io.Discard), obs.NewChromeTrace(),
					obs.NewRing(1<<12), obs.NewHistograms(), obs.NewSeries(50, cfg.Containers))
				probed, err := engine.Run(specs, mk(), cfg)
				if err != nil {
					t.Fatalf("seed %d probed: %v", seed, err)
				}
				if probed.Counters == nil {
					t.Fatalf("seed %d: probed run did not fold a Counters snapshot into its Result", seed)
				}
				probed.Counters = nil
				if !reflect.DeepEqual(plain, probed) {
					t.Fatalf("seed %d: attaching a probe changed the simulation result\n plain: %+v\n probed: %+v",
						seed, plain, probed)
				}
			}
		})
	}
}

// TestProbedCountersConsistency sanity-checks the aggregate snapshot against
// the run it observed: every submitted job was admitted and completed, tasks
// balance, and round accounting covers both executed and skipped rounds.
func TestProbedCountersConsistency(t *testing.T) {
	cfg := engine.DefaultConfig()
	cfg.Containers = 16
	cfg.MaxRunningJobs = 4
	cfg.FailureProb = 0.1
	counters := obs.NewCounters()
	cfg.Probe = counters

	specs := diffWorkload(7, 30)
	res, err := engine.Run(specs, diffPolicies(t)["LASMQ-stageaware"](), cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := res.Counters
	if s == nil {
		t.Fatal("Result.Counters not folded")
	}
	if int(s.JobsSubmitted) != len(specs) || int(s.JobsCompleted) != len(specs) || int(s.JobsAdmitted) != len(specs) {
		t.Fatalf("job accounting: submitted=%d admitted=%d completed=%d, want all %d",
			s.JobsSubmitted, s.JobsAdmitted, s.JobsCompleted, len(specs))
	}
	if s.TasksCompleted+s.TaskFailures != s.TasksLaunched {
		t.Fatalf("task accounting: %d done + %d failed != %d launched",
			s.TasksCompleted, s.TaskFailures, s.TasksLaunched)
	}
	if s.TaskFailures == 0 {
		t.Fatal("failure injection emitted no TaskFail events")
	}
	if s.RoundsExecuted == 0 {
		t.Fatal("no RoundExecuted events")
	}
	if s.PeakAdmissionBacklog == 0 {
		t.Fatal("MaxRunningJobs=4 on 30 jobs should have produced an admission backlog")
	}
	if s.TotalDemotions() == 0 {
		t.Fatal("LAS_MQ demoted no jobs on a multi-bin workload")
	}
}
