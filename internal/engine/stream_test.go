package engine_test

import (
	"errors"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"lasmq/internal/engine"
	"lasmq/internal/job"
	"lasmq/internal/obs"
	"lasmq/internal/sched"
)

// streamChaosConfig is the differential configuration: failures, stragglers
// and speculation all on, plus a tight admission limit, so the streaming
// path must reproduce the RNG stream, the kill-sibling bookkeeping and the
// admission queue byte for byte.
func streamChaosConfig(seed int64) engine.Config {
	cfg := engine.DefaultConfig()
	cfg.Containers = 20
	cfg.MaxRunningJobs = 4
	cfg.FailureProb = 0.1
	cfg.StragglerProb = 0.2
	cfg.StragglerFactor = 3
	cfg.Speculation = true
	cfg.Seed = seed
	return cfg
}

// TestEngineRunStreamMatchesRun is the tentpole differential: RunStream over
// a SliceSource must produce byte-identical per-job results — and identical
// makespan, peak usage and utilization — to Run on the materialized
// workload, across seeds and policy families, with chaos injection on.
func TestEngineRunStreamMatchesRun(t *testing.T) {
	policies := diffPolicies(t)
	for _, name := range []string{"FIFO", "LASMQ-stageaware", "SRTF", "Adaptive"} {
		newPolicy := policies[name]
		if newPolicy == nil {
			t.Fatalf("unknown differential policy %q", name)
		}
		for seed := int64(1); seed <= 3; seed++ {
			t.Run(fmt.Sprintf("%s/seed%d", name, seed), func(t *testing.T) {
				specs := diffWorkload(seed, 60)
				cfg := streamChaosConfig(seed)

				ref, err := engine.Run(specs, newPolicy(), cfg)
				if err != nil {
					t.Fatal(err)
				}
				want := make(map[int]engine.JobResult, len(ref.Jobs))
				for _, jr := range ref.Jobs {
					want[jr.ID] = jr
				}

				got := make(map[int]engine.JobResult, len(specs))
				res, err := engine.RunStream(engine.SliceSource(specs), newPolicy(), cfg,
					func(jr engine.JobResult) { got[jr.ID] = jr })
				if err != nil {
					t.Fatal(err)
				}

				if res.Jobs != len(ref.Jobs) {
					t.Fatalf("streamed %d jobs, materialized %d", res.Jobs, len(ref.Jobs))
				}
				for id, w := range want {
					g, ok := got[id]
					if !ok {
						t.Fatalf("job %d missing from streamed results", id)
					}
					if g != w {
						t.Fatalf("job %d diverged:\n stream: %+v\n    run: %+v", id, g, w)
					}
				}
				if res.Makespan != ref.Makespan {
					t.Fatalf("makespan diverged: stream %v, run %v", res.Makespan, ref.Makespan)
				}
				if res.PeakUsage != ref.PeakUsage {
					t.Fatalf("peak usage diverged: stream %d, run %d", res.PeakUsage, ref.PeakUsage)
				}
				if res.Utilization != ref.Utilization {
					t.Fatalf("utilization diverged: stream %v, run %v", res.Utilization, ref.Utilization)
				}
			})
		}
	}
}

// TestEngineStreamPoolBounded pins the recycling payoff: a workload whose
// jobs never overlap must be simulated with a couple of live records no
// matter how long the stream is, recycling one record per completed job.
func TestEngineStreamPoolBounded(t *testing.T) {
	const n = 500
	specs := make([]job.Spec, n)
	for i := range specs {
		// Each job finishes (duration 5) well before the next arrives.
		specs[i] = uniformJob(i+1, float64(i)*10, 1, 5)
	}
	cfg := engine.DefaultConfig()
	res, err := engine.RunStream(engine.SliceSource(specs), sched.NewFIFO(), cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Jobs != n {
		t.Fatalf("completed %d jobs, want %d", res.Jobs, n)
	}
	if res.Slab.Peak > 2 {
		t.Fatalf("job-record pool peaked at %d live records for serial jobs, want <= 2", res.Slab.Peak)
	}
	if res.Slab.Live != 0 {
		t.Fatalf("%d records still live at exit, want 0", res.Slab.Live)
	}
	if res.Slab.Recycled < n-2 {
		t.Fatalf("only %d records recycled out of %d jobs", res.Slab.Recycled, n)
	}
}

// TestEngineRunStreamRejectsUnsortedSource pins the streaming contract: an
// out-of-order arrival is an error, not a silent misordering.
func TestEngineRunStreamRejectsUnsortedSource(t *testing.T) {
	specs := []job.Spec{
		uniformJob(1, 5, 1, 1),
		uniformJob(2, 1, 1, 1),
	}
	cfg := engine.DefaultConfig()
	_, err := engine.RunStream(engine.SliceSource(specs), sched.NewFIFO(), cfg, nil)
	if err == nil || !strings.Contains(err.Error(), "not sorted") {
		t.Fatalf("expected a not-sorted error, got %v", err)
	}
}

// erroringSource yields one valid job and then fails, checking mid-stream
// source errors surface wrapped instead of ending the run silently.
type erroringSource struct{ n int }

func (s *erroringSource) Next() (job.Spec, bool, error) {
	if s.n == 0 {
		s.n++
		return uniformJob(1, 0, 1, 1), true, nil
	}
	return job.Spec{}, false, errors.New("disk on fire")
}

func TestEngineRunStreamSourceError(t *testing.T) {
	cfg := engine.DefaultConfig()
	_, err := engine.RunStream(&erroringSource{}, sched.NewFIFO(), cfg, nil)
	if err == nil || !strings.Contains(err.Error(), "engine: source: disk on fire") {
		t.Fatalf("expected the wrapped source error, got %v", err)
	}
}

// TestEngineRunStreamDeepCopiesSpecs guards the record pool's ownership
// contract: a source that reuses one spec buffer across Next calls must
// still stream correctly, because the run deep-copies each spec (stages,
// tasks and dependency lists) into the pooled record.
func TestEngineRunStreamDeepCopiesSpecs(t *testing.T) {
	const n = 40
	specs := diffWorkload(9, n)
	ref, err := engine.Run(specs, sched.NewLAS(), streamChaosConfig(9))
	if err != nil {
		t.Fatal(err)
	}
	want := make(map[int]engine.JobResult, len(ref.Jobs))
	for _, jr := range ref.Jobs {
		want[jr.ID] = jr
	}

	// bufferReusingSource hands out every spec through the same scratch
	// variable, scribbling over the previous job's stages each time.
	scratch := new(job.Spec)
	i := 0
	src := sourceFunc(func() (job.Spec, bool, error) {
		if i >= len(specs) {
			return job.Spec{}, false, nil
		}
		*scratch = specs[i]
		scratch.Stages = append([]job.StageSpec(nil), specs[i].Stages...)
		i++
		return *scratch, true, nil
	})
	got := make(map[int]engine.JobResult, n)
	if _, err := engine.RunStream(src, sched.NewLAS(), streamChaosConfig(9),
		func(jr engine.JobResult) { got[jr.ID] = jr }); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("buffer-reusing source diverged from materialized run:\n want %d jobs, got %d", len(want), len(got))
	}
}

// sourceFunc adapts a closure to engine.Source.
type sourceFunc func() (job.Spec, bool, error)

func (f sourceFunc) Next() (job.Spec, bool, error) { return f() }

// TestEngineRunStreamProbeSlabStats pins the telemetry wiring: a streaming
// run emits both free lists' stats through obs.Probe.SlabStats (the attempt
// slab's from the event loop, the job-record pool's at the end), a probed
// run's results are byte-identical to an unprobed one, and the counters
// agree with the StreamResult's own pool stats.
func TestEngineRunStreamProbeSlabStats(t *testing.T) {
	specs := diffWorkload(4, 60)
	cfg := streamChaosConfig(4)

	var plain []engine.JobResult
	ref, err := engine.RunStream(engine.SliceSource(specs), sched.NewLAS(), cfg,
		func(jr engine.JobResult) { plain = append(plain, jr) })
	if err != nil {
		t.Fatal(err)
	}

	counters := obs.NewCounters()
	cfg.Probe = counters
	var probed []engine.JobResult
	res, err := engine.RunStream(engine.SliceSource(specs), sched.NewLAS(), cfg,
		func(jr engine.JobResult) { probed = append(probed, jr) })
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, probed) {
		t.Fatal("attaching a probe changed the streamed per-job results")
	}

	snap := counters.Snapshot()
	// Counters keeps the max peak across SlabStats events and sums the
	// recycle counts, so across the two pools we expect max and sum.
	wantPeak := int64(res.Slab.Peak)
	if int64(res.AttemptSlab.Peak) > wantPeak {
		wantPeak = int64(res.AttemptSlab.Peak)
	}
	wantRecycled := int64(res.Slab.Recycled + res.AttemptSlab.Recycled)
	if snap.SlabPeakLive != wantPeak {
		t.Errorf("slab_peak_live = %d, want %d (max of job pool %d, attempt slab %d)",
			snap.SlabPeakLive, wantPeak, res.Slab.Peak, res.AttemptSlab.Peak)
	}
	if snap.SlabRecycled != wantRecycled {
		t.Errorf("slab_recycled = %d, want %d (job pool %d + attempt slab %d)",
			snap.SlabRecycled, wantRecycled, res.Slab.Recycled, res.AttemptSlab.Recycled)
	}
	if res.Slab.Recycled == 0 {
		t.Error("job-record pool recycled nothing over 60 jobs")
	}
	if ref.Slab != res.Slab {
		t.Errorf("probe changed pool stats: %+v vs %+v", res.Slab, ref.Slab)
	}
}
