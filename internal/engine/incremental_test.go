package engine_test

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"lasmq/internal/core"
	"lasmq/internal/engine"
	"lasmq/internal/job"
	"lasmq/internal/sched"
)

// diffPolicies builds every scheduler family the engine supports, covering
// stateless policies (no Observer), LAS_MQ in both metric modes
// (ObserveHinter with the stage-aware and the plain-attained metric), the
// adaptive wrapper (Observer but deliberately no ObserveHinter), and a blend
// whose Observe must forward to exactly the components its Assign invokes.
func diffPolicies(t *testing.T) map[string]func() sched.Scheduler {
	t.Helper()
	mustLASMQ := func(cfg core.Config) *core.LASMQ {
		s, err := core.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	return map[string]func() sched.Scheduler{
		"FIFO": func() sched.Scheduler { return sched.NewFIFO() },
		"Fair": func() sched.Scheduler { return sched.NewFair() },
		"LAS":  func() sched.Scheduler { return sched.NewLAS() },
		"SJF":  func() sched.Scheduler { return sched.NewSJF() },
		"SRTF": func() sched.Scheduler { return sched.NewSRTF() },
		"LASMQ-stageaware": func() sched.Scheduler {
			return mustLASMQ(core.DefaultConfig())
		},
		"LASMQ-attained": func() sched.Scheduler {
			cfg := core.DefaultConfig()
			cfg.FirstThreshold = 10
			cfg.StageAware = false
			cfg.OrderByDemand = false
			return mustLASMQ(cfg)
		},
		"Adaptive": func() sched.Scheduler {
			cfg := core.DefaultAdaptiveConfig()
			cfg.WarmupJobs = 4
			cfg.RefitEvery = 4
			a, err := core.NewAdaptive(cfg)
			if err != nil {
				t.Fatal(err)
			}
			return a
		},
		"Blend": func() sched.Scheduler {
			b, err := sched.NewBlend(mustLASMQ(core.DefaultConfig()), sched.NewFair(), 0.4)
			if err != nil {
				t.Fatal(err)
			}
			return b
		},
	}
}

// diffWorkload synthesizes a seed-dependent mix of single-stage, map-reduce
// and diamond-DAG jobs with bursty arrivals, so runs exercise admission
// queuing, multi-container reservations, dependent-stage activation and idle
// gaps — every path the incremental round logic short-circuits around.
func diffWorkload(seed int64, n int) []job.Spec {
	rng := rand.New(rand.NewSource(seed))
	specs := make([]job.Spec, 0, n)
	var arrival float64
	for i := 0; i < n; i++ {
		if rng.Float64() < 0.3 {
			arrival += rng.Float64() * 40 // idle gap between bursts
		}
		switch i % 3 {
		case 0:
			specs = append(specs, uniformJob(i+1, arrival, 1+rng.Intn(12), 1+rng.Float64()*15))
		case 1:
			specs = append(specs, mapReduceJob(i+1, arrival,
				1+rng.Intn(8), 1+rng.Float64()*10, 1+rng.Intn(3), 2+rng.Float64()*8))
		default:
			specs = append(specs, job.Spec{
				ID:      i + 1,
				Name:    "diamond",
				Bin:     3,
				Arrival: arrival,
				Stages: []job.StageSpec{
					stage("root", 1+rng.Intn(4), 1+rng.Float64()*6),
					stage("left", 1+rng.Intn(3), 1+rng.Float64()*6, 0),
					stage("right", 1+rng.Intn(3), 1+rng.Float64()*6, 0),
					stage("join", 1, 1+rng.Float64()*4, 1, 2),
				},
			})
		}
		arrival += rng.Float64() * 3
	}
	return specs
}

// TestIncrementalMatchesFull is the correctness gate of the incremental
// scheduling rounds: for every policy family, noise configuration and seed,
// a run with the fast paths enabled must produce a byte-identical Result to
// a run that re-invokes the policy every round.
func TestIncrementalMatchesFull(t *testing.T) {
	configs := map[string]func(*engine.Config){
		"clean":     func(*engine.Config) {},
		"admission": func(c *engine.Config) { c.Containers = 12; c.MaxRunningJobs = 3 },
		"failures":  func(c *engine.Config) { c.FailureProb = 0.15 },
		"stragglers": func(c *engine.Config) {
			c.StragglerProb = 0.25
			c.StragglerFactor = 4
		},
		"speculation": func(c *engine.Config) {
			c.StragglerProb = 0.25
			c.StragglerFactor = 4
			c.Speculation = true
		},
		"everything": func(c *engine.Config) {
			c.Containers = 16
			c.MaxRunningJobs = 4
			c.FailureProb = 0.1
			c.StragglerProb = 0.2
			c.StragglerFactor = 3
			c.Speculation = true
			c.SampleInterval = 5
		},
	}
	for pname, mk := range diffPolicies(t) {
		for cname, tweak := range configs {
			t.Run(fmt.Sprintf("%s/%s", pname, cname), func(t *testing.T) {
				for seed := int64(1); seed <= 3; seed++ {
					cfg := engine.DefaultConfig()
					cfg.Containers = 20
					cfg.MaxRunningJobs = 0
					cfg.Seed = seed
					tweak(&cfg)

					specs := diffWorkload(seed, 24)

					cfg.FullReschedule = true
					full, err := engine.Run(specs, mk(), cfg)
					if err != nil {
						t.Fatalf("seed %d full: %v", seed, err)
					}
					cfg.FullReschedule = false
					incr, err := engine.Run(specs, mk(), cfg)
					if err != nil {
						t.Fatalf("seed %d incremental: %v", seed, err)
					}
					if !reflect.DeepEqual(full, incr) {
						for i := range full.Jobs {
							if full.Jobs[i] != incr.Jobs[i] {
								t.Errorf("seed %d job %d differs:\n full %+v\n incr %+v",
									seed, full.Jobs[i].ID, full.Jobs[i], incr.Jobs[i])
							}
						}
						t.Fatalf("seed %d: incremental result differs from full reschedule\n full: makespan=%v util=%v peak=%d\n incr: makespan=%v util=%v peak=%d",
							seed, full.Makespan, full.Utilization, full.PeakUsage,
							incr.Makespan, incr.Utilization, incr.PeakUsage)
					}
				}
			})
		}
	}
}

// TestIncrementalSkipsAreExercised guards the differential test against
// silently testing nothing: on a saturated workload the incremental mode
// must actually take its fast paths, which we detect indirectly by asserting
// both modes agree on a workload long enough that skipped rounds dominate.
// A direct skip counter would live on sim (unexported); instead this test
// stresses the LAS_MQ ObserveHorizon gating specifically with a workload
// whose jobs cross several queue thresholds while the cluster is saturated.
func TestIncrementalObserveHorizonCrossings(t *testing.T) {
	// Jobs long enough to be demoted across thresholds 10, 100 while running.
	specs := []job.Spec{
		uniformJob(1, 0, 6, 200),
		uniformJob(2, 0, 6, 120),
		uniformJob(3, 1, 4, 90),
		mapReduceJob(4, 2, 6, 50, 2, 40),
	}
	for _, stageAware := range []bool{false, true} {
		ccfg := core.DefaultConfig()
		ccfg.FirstThreshold = 10
		ccfg.StageAware = stageAware

		cfg := engine.DefaultConfig()
		cfg.Containers = 8 // saturated: 20 ready containers at t=0
		cfg.MaxRunningJobs = 0

		run := func(full bool) *engine.Result {
			t.Helper()
			mq, err := core.New(ccfg)
			if err != nil {
				t.Fatal(err)
			}
			c := cfg
			c.FullReschedule = full
			res, err := engine.Run(specs, mq, c)
			if err != nil {
				t.Fatal(err)
			}
			return res
		}
		full, incr := run(true), run(false)
		if !reflect.DeepEqual(full, incr) {
			t.Fatalf("stageAware=%v: incremental result differs under threshold crossings", stageAware)
		}
	}
}
