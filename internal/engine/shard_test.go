package engine_test

import (
	"errors"
	"math"
	"reflect"
	"strings"
	"testing"

	"lasmq/internal/engine"
	"lasmq/internal/job"
	"lasmq/internal/obs"
	"lasmq/internal/sched"
	"lasmq/internal/substrate"
)

// shardPolicies is the four-policy differential set the sharded contracts
// are pinned over (mirrors the fluid sharded differentials).
var shardPolicyNames = []string{"LASMQ-attained", "LAS", "Fair", "FIFO"}

// shardSource returns shard's stream of a workload: Strided over its own
// independent slice replay, the per-shard source shape RunSharded documents.
func shardSource(specs []job.Spec, shard, shards int) engine.Source {
	return substrate.Strided[job.Spec](engine.SliceSource(specs), shard, shards)
}

// TestEngineShardedOneShardMatchesStream pins the Shards=1 byte-identity
// contract: a one-shard sharded run is exactly RunStream — same seed, same
// container count, DeepEqual result — across 3 seeds × 4 policies, with
// chaos injection on.
func TestEngineShardedOneShardMatchesStream(t *testing.T) {
	policies := diffPolicies(t)
	for _, seed := range []int64{1, 7, 42} {
		specs := diffWorkload(seed, 90)
		for _, name := range shardPolicyNames {
			newPolicy := policies[name]
			if newPolicy == nil {
				t.Fatalf("unknown policy %q", name)
			}
			want, err := engine.RunStream(engine.SliceSource(specs), newPolicy(), streamChaosConfig(seed), nil)
			if err != nil {
				t.Fatal(err)
			}
			scfg := engine.ShardedConfig{Config: streamChaosConfig(seed), Shards: 1, Workers: 1}
			got, err := engine.RunSharded(
				func(shard int) (engine.Source, error) { return shardSource(specs, shard, 1), nil },
				func() (sched.Scheduler, error) { return newPolicy(), nil },
				scfg)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("seed %d %s: Shards=1 diverged from RunStream:\n want %+v\n  got %+v", seed, name, want, got)
			}
		}
	}
}

// TestEngineShardedWorkerCountDoesNotAffectResults pins the Workers contract
// under full chaos (failures, stragglers, speculation): Workers is execution
// parallelism only, so Workers=1 and Workers=8 at Shards=8 are DeepEqual.
func TestEngineShardedWorkerCountDoesNotAffectResults(t *testing.T) {
	policies := diffPolicies(t)
	const shards = 8
	for _, seed := range []int64{3, 11} {
		specs := diffWorkload(seed, 120)
		for _, name := range shardPolicyNames {
			newPolicy := policies[name]
			cfg := streamChaosConfig(seed)
			cfg.Containers = 40 // divides by 8; 5 containers per shard
			newSource := func(shard int) (engine.Source, error) {
				return shardSource(specs, shard, shards), nil
			}
			newPol := func() (sched.Scheduler, error) { return newPolicy(), nil }

			serial, err := engine.RunSharded(newSource, newPol,
				engine.ShardedConfig{Config: cfg, Shards: shards, Workers: 1})
			if err != nil {
				t.Fatal(err)
			}
			parallel, err := engine.RunSharded(newSource, newPol,
				engine.ShardedConfig{Config: cfg, Shards: shards, Workers: 8})
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(serial, parallel) {
				t.Fatalf("seed %d %s: Workers=8 diverged from Workers=1:\n want %+v\n  got %+v",
					seed, name, serial, parallel)
			}
			if serial.Jobs != len(specs) {
				t.Fatalf("seed %d %s: %d jobs completed, want %d", seed, name, serial.Jobs, len(specs))
			}
			if serial.Attempts < serial.Jobs {
				t.Fatalf("seed %d %s: %d attempts < %d jobs", seed, name, serial.Attempts, serial.Jobs)
			}
		}
	}
}

// TestEngineShardedSeedsDiffer pins that shards are chaos-independent: each
// shard draws from its own RNG stream (Seed+shard), so changing the base
// seed changes the folded outcome (chaos is simulated state, not noise).
func TestEngineShardedSeedsDiffer(t *testing.T) {
	specs := diffWorkload(5, 120)
	cfg := streamChaosConfig(5)
	cfg.Containers = 40
	run := func(seed int64) *engine.StreamResult {
		t.Helper()
		cfg := cfg
		cfg.Seed = seed
		res, err := engine.RunSharded(
			func(shard int) (engine.Source, error) { return shardSource(specs, shard, 4), nil },
			func() (sched.Scheduler, error) { return sched.NewLAS(), nil },
			engine.ShardedConfig{Config: cfg, Shards: 4})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(5), run(6)
	if reflect.DeepEqual(a, b) {
		t.Fatal("different seeds produced identical sharded results; chaos RNG not wired per shard")
	}
}

// TestEngineShardedValidation pins the config error surface: flag-naming
// shard/worker validation from the substrate plan, and the engine-specific
// container-divisibility check.
func TestEngineShardedValidation(t *testing.T) {
	specs := diffWorkload(2, 10)
	newSource := func(shard int) (engine.Source, error) { return shardSource(specs, shard, 1), nil }
	newPol := func() (sched.Scheduler, error) { return sched.NewFIFO(), nil }

	cfg := streamChaosConfig(2)
	if _, err := engine.RunSharded(newSource, newPol,
		engine.ShardedConfig{Config: cfg, Shards: -1}); err == nil || !strings.Contains(err.Error(), "-shards") {
		t.Fatalf("negative shards error should name the -shards flag, got %v", err)
	}
	if _, err := engine.RunSharded(newSource, newPol,
		engine.ShardedConfig{Config: cfg, Shards: 2, Workers: -3}); err == nil || !strings.Contains(err.Error(), "-shard-workers") {
		t.Fatalf("negative workers error should name the -shard-workers flag, got %v", err)
	}
	cfg.Containers = 20
	if _, err := engine.RunSharded(newSource, newPol,
		engine.ShardedConfig{Config: cfg, Shards: 3}); err == nil || !strings.Contains(err.Error(), "divide evenly") {
		t.Fatalf("20 containers across 3 shards should fail divisibility, got %v", err)
	}
}

// TestEngineShardedMoreShardsThanJobs pins the empty-shard fold: with more
// shards than jobs the high shards run over empty strided streams, complete
// with zero jobs, and the fold still accounts for every job exactly once.
func TestEngineShardedMoreShardsThanJobs(t *testing.T) {
	specs := diffWorkload(8, 3) // 3 jobs across 8 shards
	cfg := streamChaosConfig(8)
	cfg.Containers = 40
	res, err := engine.RunSharded(
		func(shard int) (engine.Source, error) { return shardSource(specs, shard, 8), nil },
		func() (sched.Scheduler, error) { return sched.NewLAS(), nil },
		engine.ShardedConfig{Config: cfg, Shards: 8})
	if err != nil {
		t.Fatal(err)
	}
	if res.Jobs != len(specs) {
		t.Fatalf("%d jobs completed, want %d", res.Jobs, len(specs))
	}
	if res.Makespan <= 0 || res.Utilization <= 0 {
		t.Fatalf("degenerate fold: makespan %v utilization %v", res.Makespan, res.Utilization)
	}
}

// TestEngineShardedSourceErrorNamesShard pins the latched-error surface: a
// source failure inside shard k>0 aborts the run and names the shard.
func TestEngineShardedSourceErrorNamesShard(t *testing.T) {
	sentinel := errors.New("tape ran out")
	specs := diffWorkload(6, 40)
	cfg := streamChaosConfig(6)
	cfg.Containers = 40
	_, err := engine.RunSharded(
		func(shard int) (engine.Source, error) {
			if shard != 2 {
				return shardSource(specs, shard, 4), nil
			}
			i := 0
			return sourceFunc(func() (job.Spec, bool, error) {
				if i >= 5 {
					return job.Spec{}, false, sentinel
				}
				s := specs[i*4+2]
				i++
				return s, true, nil
			}), nil
		},
		func() (sched.Scheduler, error) { return sched.NewFIFO(), nil },
		engine.ShardedConfig{Config: cfg, Shards: 4, Workers: 1})
	if !errors.Is(err, sentinel) {
		t.Fatalf("error %v should wrap the source error", err)
	}
	if !strings.Contains(err.Error(), "shard 2") {
		t.Fatalf("error %q should name the failed shard", err)
	}
}

// TestEngineShardedProbePerShardCounters pins the telemetry fan-in: a
// Counters sink attached to a sharded run collects per-shard SlabStats and
// round events under the shard label while the global aggregates still fold
// everything — and attaching the probe does not change results.
func TestEngineShardedProbePerShardCounters(t *testing.T) {
	specs := diffWorkload(9, 80)
	cfg := streamChaosConfig(9)
	cfg.Containers = 40
	const shards = 4
	newSource := func(shard int) (engine.Source, error) { return shardSource(specs, shard, shards), nil }
	newPol := func() (sched.Scheduler, error) { return sched.NewLAS(), nil }

	bare, err := engine.RunSharded(newSource, newPol,
		engine.ShardedConfig{Config: cfg, Shards: shards, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}

	c := obs.NewCounters()
	pcfg := cfg
	pcfg.Probe = c
	probed, err := engine.RunSharded(newSource, newPol,
		engine.ShardedConfig{Config: pcfg, Shards: shards, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(bare, probed) {
		t.Fatalf("probe perturbed sharded results:\n want %+v\n  got %+v", bare, probed)
	}

	if n := c.ShardCount(); n != shards {
		t.Fatalf("ShardCount = %d, want %d", n, shards)
	}
	var jobs, peak int64
	for shard := 0; shard < shards; shard++ {
		s, ok := c.ShardSnapshot(shard)
		if !ok {
			t.Fatalf("no counters recorded for shard %d", shard)
		}
		if s.RoundsExecuted == 0 {
			t.Fatalf("shard %d recorded no scheduling rounds", shard)
		}
		jobs += s.JobsCompleted
		if s.SlabPeakLive > peak {
			peak = s.SlabPeakLive
		}
	}
	global := c.Snapshot()
	if jobs != global.JobsCompleted || int(jobs) != probed.Jobs {
		t.Fatalf("per-shard jobs %d, global %d, result %d — shard attribution leaks",
			jobs, global.JobsCompleted, probed.Jobs)
	}
	if global.SlabPeakLive != peak {
		t.Fatalf("global slab peak %d, max per-shard %d", global.SlabPeakLive, peak)
	}
}

// TestEngineShardedHistogramMerge is the histogram merge contract over the
// sharded engine, 3 seeds x 4 policies with chaos on: a Histograms sink
// attached to a K-shard run must (a) not perturb results, (b) see every
// completion exactly once globally, and (c) satisfy the shard-merge
// identity — folding the per-shard histograms in ascending shard-index
// order reproduces the global histogram bucket-for-bucket, so the K-shard
// merged distribution IS the run's single global distribution. For K=1 the
// same identity pins the sharded fan-in against the plain stream sink.
func TestEngineShardedHistogramMerge(t *testing.T) {
	policies := diffPolicies(t)
	const shards = 4
	for _, seed := range []int64{1, 7, 42} {
		specs := diffWorkload(seed, 90)
		for _, name := range shardPolicyNames {
			newPolicy := policies[name]
			cfg := streamChaosConfig(seed)
			cfg.Containers = 40
			newSource := func(shard int) (engine.Source, error) {
				return shardSource(specs, shard, shards), nil
			}
			newPol := func() (sched.Scheduler, error) { return newPolicy(), nil }

			bare, err := engine.RunSharded(newSource, newPol,
				engine.ShardedConfig{Config: cfg, Shards: shards, Workers: 8})
			if err != nil {
				t.Fatal(err)
			}
			h := obs.NewHistograms()
			pcfg := cfg
			pcfg.Probe = h
			probed, err := engine.RunSharded(newSource, newPol,
				engine.ShardedConfig{Config: pcfg, Shards: shards, Workers: 8})
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(bare, probed) {
				t.Fatalf("seed %d %s: histogram sink perturbed sharded results", seed, name)
			}
			if got := len(h.ShardIndexes()); got != shards {
				t.Fatalf("seed %d %s: %d shard histograms derived, want %d", seed, name, got, shards)
			}
			for _, hist := range []string{obs.HistResponse, obs.HistTaskDuration, obs.HistAdmissionWait} {
				global, ok := h.Histogram(hist)
				if !ok {
					t.Fatalf("unknown histogram %q", hist)
				}
				merged := h.MergeShards(hist)
				if !merged.BucketsEqual(&global) {
					t.Fatalf("seed %d %s: shard-merged %s histogram differs from the global sink bucket-for-bucket",
						seed, name, hist)
				}
			}
			resp, _ := h.Histogram(obs.HistResponse)
			if int(resp.Count()) != probed.Jobs || probed.Jobs != len(specs) {
				t.Fatalf("seed %d %s: response histogram saw %d jobs, run completed %d of %d",
					seed, name, resp.Count(), probed.Jobs, len(specs))
			}
			if mean := resp.Sum() / float64(resp.Count()); math.Abs(mean-probed.MeanResponseTime()) > 1e-9*math.Abs(mean) {
				t.Fatalf("seed %d %s: histogram mean %g != stream mean %g", seed, name, mean, probed.MeanResponseTime())
			}
		}
	}
}
