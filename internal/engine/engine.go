// Package engine is the task-level discrete-event cluster simulator — the
// YARN substrate the paper's scheduler plugs into. It models a cluster as a
// pool of identical containers, runs jobs stage by stage (reduce tasks only
// start once the map stage completes), feeds schedulers the exact inputs the
// paper's implementation observes (attained service, stage progress,
// remaining-task container demand), and mirrors the implementation section's
// architecture: a job-admission module bounding concurrently running jobs,
// task-status monitoring that counts only successful task attempts, and
// work-conserving leftover allocation with optional speculative execution.
package engine

import (
	"errors"
	"fmt"
	"math/rand"
	"slices"

	"lasmq/internal/dist"
	"lasmq/internal/job"
	"lasmq/internal/obs"
	"lasmq/internal/sched"
	"lasmq/internal/substrate"
)

// Config parameterizes a simulation run.
type Config struct {
	// Containers is the cluster capacity (the paper's testbed starts up to
	// 120 containers of 1 vcore / 2 GB).
	Containers int
	// MaxRunningJobs bounds concurrently running jobs (the paper's job
	// admission module; 30 in the experiments). Zero means unlimited.
	MaxRunningJobs int
	// FailureProb is the probability that a task attempt fails after
	// consuming part of its duration; failed tasks are re-queued, and their
	// consumed container time still counts toward attained service (the
	// paper's status monitor filters unsuccessful attempts out of the
	// remaining-task counters only).
	FailureProb float64
	// StragglerProb is the probability that an attempt is a straggler.
	StragglerProb float64
	// StragglerFactor multiplies a straggler attempt's duration (> 1).
	StragglerFactor float64
	// Speculation launches duplicate copies of running tasks on leftover
	// containers (the paper's work-conservation remark); whichever attempt
	// finishes first completes the task and the other copy is killed.
	Speculation bool
	// Seed drives failure and straggler sampling.
	Seed int64
	// SampleInterval, when positive, records a cluster timeline sample
	// (container usage, running and waiting jobs) at most every
	// SampleInterval seconds of virtual time.
	SampleInterval float64
	// FullReschedule disables the incremental fast paths and re-invokes the
	// policy on every scheduling round, as the engine originally did. The
	// default (false) skips rounds that provably cannot launch a task —
	// keeping stateful policies' internal clocks in sync via sched.Observer —
	// and must produce byte-identical results; it exists as an escape hatch
	// and for the differential tests that prove the equivalence.
	FullReschedule bool
	// Probe, when non-nil, receives telemetry events (see internal/obs). A
	// nil probe costs nothing on the hot path, and an attached probe must
	// not perturb results — probed and unprobed runs are byte-identical.
	Probe obs.Probe
}

// DefaultConfig returns the paper's testbed configuration with failures,
// stragglers and speculation disabled.
func DefaultConfig() Config {
	return Config{
		Containers:      120,
		MaxRunningJobs:  30,
		StragglerFactor: 3,
	}
}

func (c *Config) validate() error {
	if c.Containers <= 0 {
		return fmt.Errorf("engine: containers must be positive, got %d", c.Containers)
	}
	if c.MaxRunningJobs < 0 {
		return fmt.Errorf("engine: max running jobs must be >= 0, got %d", c.MaxRunningJobs)
	}
	if c.FailureProb < 0 || c.FailureProb >= 1 {
		return fmt.Errorf("engine: failure probability must be in [0,1), got %v", c.FailureProb)
	}
	if c.StragglerProb < 0 || c.StragglerProb > 1 {
		return fmt.Errorf("engine: straggler probability must be in [0,1], got %v", c.StragglerProb)
	}
	if c.StragglerProb > 0 && c.StragglerFactor <= 1 {
		return fmt.Errorf("engine: straggler factor must be > 1, got %v", c.StragglerFactor)
	}
	if c.SampleInterval < 0 {
		return fmt.Errorf("engine: sample interval must be >= 0, got %v", c.SampleInterval)
	}
	return nil
}

// Sample is one point of the cluster timeline (recorded when
// Config.SampleInterval is positive).
type Sample struct {
	Time           float64
	UsedContainers int
	RunningJobs    int
	WaitingJobs    int
}

// JobResult reports one finished job.
type JobResult struct {
	ID           int
	Name         string
	Bin          int
	Arrival      float64 // submission time
	Admitted     float64 // time the admission module released the job
	Completed    float64 // completion time
	ResponseTime float64 // Completed - Arrival
	Service      float64 // container-seconds consumed (incl. failed/killed attempts)
	Attempts     int     // task attempts launched
	Failures     int     // failed attempts
	Speculative  int     // speculative attempts launched
}

// Result reports a whole simulation run. The embedded kernel accumulator
// provides Scheduler, Makespan, Utilization and the response-time/slowdown
// statistics (MeanResponseTime, ResponseTimes, BinMeans), recorded in
// workload order.
type Result struct {
	substrate.Result
	Jobs []JobResult
	// PeakUsage is the maximum number of containers simultaneously busy.
	PeakUsage int
	// Timeline holds utilization samples when Config.SampleInterval > 0.
	Timeline []Sample
}

// Run simulates the workload under the given scheduling policy and returns
// per-job results. The scheduler instance must be fresh (stateful policies
// such as LAS_MQ remember queue membership between rounds).
func Run(specs []job.Spec, policy sched.Scheduler, cfg Config) (*Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if policy == nil {
		return nil, errors.New("engine: nil scheduler")
	}
	if err := job.ValidateAll(specs); err != nil {
		return nil, fmt.Errorf("engine: %w", err)
	}
	s := newSim(specs, policy, cfg)
	defer s.release()
	if err := s.run(); err != nil {
		return nil, err
	}
	return s.result(), nil
}

// RunIsolated simulates a single job alone on the cluster and returns its
// completion time, the denominator of the paper's slowdown metric. Failures,
// stragglers and speculation are disabled so the baseline is deterministic.
func RunIsolated(spec job.Spec, policy sched.Scheduler, cfg Config) (float64, error) {
	cfg.FailureProb = 0
	cfg.StragglerProb = 0
	cfg.Speculation = false
	cfg.MaxRunningJobs = 0
	spec.Arrival = 0
	res, err := Run([]job.Spec{spec}, policy, cfg)
	if err != nil {
		return 0, err
	}
	return res.Jobs[0].ResponseTime, nil
}

// Event kinds inside the simulator.
const (
	// evArrivals is the single pending-arrivals sentinel: at most one is in
	// the queue at any time, scheduled at the arrival cursor's head time.
	// Firing it drains every arrival due at that instant and re-arms the
	// sentinel at the next head — so a run holds one arrival event instead
	// of one per trace job, and equal-time arrivals still land in one batch
	// exactly as the old per-job arrival events did.
	evArrivals = iota + 1
	evAttemptDone
)

type event struct {
	kind    int
	attempt int // attempt index for evAttemptDone
}

type sim struct {
	cfg   Config
	rng   *rand.Rand
	probe obs.Probe // nil-checked at every emission site

	// Kernel modules: policy capability dispatch and observation gating
	// (driver) and the FIFO admission module (adm). The embedded arena holds
	// the slab-allocated job/stage/task/attempt state, the event queue, the
	// view registry (vs) and the round-local scratch; it is pooled, so
	// repeated runs on one worker reuse the same storage.
	driver *substrate.Driver
	adm    *substrate.Queue[*jobState]
	*arena

	// cur feeds the run loop its arrival stream: a substrate.SliceCursor
	// over the arena's sorted pending list in a materialized run, a
	// substrate.StreamCursor materializing pooled records from a Source in a
	// streaming run. Both modes share run()'s event loop, so the operations
	// (and their floating-point order) are identical.
	cur          arrivalCursor
	moreArrivals bool // the arrivals sentinel is armed (cursor not exhausted)

	// Streaming-run extras: finish receives each job's result the moment it
	// completes, pool recycles the per-job records (see releaseJob). Both
	// are nil/false in materialized runs.
	finish    func(*jobState, JobResult)
	pool      *substrate.SlabPool[jobRecord]
	streaming bool

	remaining  int // arrived jobs not yet completed
	usedSlots  int // containers currently occupied
	readySlots int // containers needed by ready tasks of admitted jobs
	now        float64
	makespan   float64

	busyIntegral float64 // container-seconds delivered (for utilization)
	peakUsage    int
	lastSample   float64

	// Attempt-slab free-list accounting (see attemptRecycling).
	attemptLive     int
	attemptPeak     int
	attemptRecycled int
}

// launchCand is one job below its container target in a scheduling round.
type launchCand struct {
	js     *jobState
	target int
}

// specCand is one speculation candidate (a running, unduplicated task).
type specCand struct {
	js        *jobState
	stage     int
	task      int
	remaining float64
}

func newSim(specs []job.Spec, policy sched.Scheduler, cfg Config) *sim {
	ar := arenaPool.Get().(*arena)
	reused := cap(ar.jobs) > 0
	ar.build(specs)
	s := &sim{
		cfg:    cfg,
		probe:  cfg.Probe,
		driver: substrate.NewDriver(policy),
		adm:    substrate.NewQueue[*jobState](cfg.MaxRunningJobs),
		rng:    dist.New(cfg.Seed),
		arena:  ar,
	}
	s.cur = &substrate.SliceCursor[jobState]{List: ar.pending, Arrival: jobStateArrival}
	s.driver.SetProbe(cfg.Probe)
	if s.probe != nil {
		s.probe.ArenaReuse(len(specs), len(ar.tasks), reused)
	}
	return s
}

func jobStateArrival(js *jobState) float64 { return js.spec.Arrival }

// push enqueues a simulator event, reporting the one-time heap->ladder
// migration to the probe when it happens inside this push.
func (s *sim) push(t float64, ev event) {
	if s.probe == nil {
		s.queue.push(t, ev)
		return
	}
	wasLadder := s.queue.useLadder
	s.queue.push(t, ev)
	if !wasLadder && s.queue.useLadder {
		s.probe.EventqMigrate(s.now, s.queue.ladder.Len())
	}
}

// release scrubs the sim's arena and returns it to the pool. The sim must
// not be used afterwards.
func (s *sim) release() {
	ar := s.arena
	s.arena = nil
	ar.scrub()
	arenaPool.Put(ar)
}

func (s *sim) run() error {
	if err := s.armArrivals(); err != nil {
		return err
	}
	for s.remaining > 0 || s.moreArrivals {
		t, batch, ok := s.queue.popBatch(s.batchBuf)
		s.batchBuf = batch
		if !ok {
			return fmt.Errorf("engine: deadlock at t=%v with %d unfinished jobs", s.now, s.remaining)
		}
		if t < s.now {
			return fmt.Errorf("engine: time went backwards: %v -> %v", s.now, t)
		}
		s.busyIntegral += float64(s.usedSlots) * (t - s.now)
		s.now = t
		for _, ev := range batch {
			switch ev.kind {
			case evArrivals:
				if err := s.drainArrivals(t); err != nil {
					return err
				}
			case evAttemptDone:
				// Attempt endings change usage and progress aggregates, so any
				// previously computed observation horizon is stale.
				s.driver.MarkDirty()
				s.handleAttemptDone(ev.attempt)
			}
		}
		s.admit()
		s.schedule()
		s.sample()
	}
	if s.probe != nil {
		// All three values are functions of the simulated run alone, so the
		// event is byte-deterministic. Live counts slots still held at exit
		// (killed copies whose completion events never drained).
		s.probe.SlabStats(s.now, s.attemptLive, s.attemptPeak, s.attemptRecycled)
	}
	return nil
}

// armArrivals peeks the arrival cursor and, when arrivals remain, pushes the
// pending-arrivals sentinel at the head arrival time.
func (s *sim) armArrivals() error {
	t, ok, err := s.cur.Peek()
	if err != nil {
		return err
	}
	if !ok {
		s.moreArrivals = false
		return nil
	}
	s.moreArrivals = true
	s.push(t, event{kind: evArrivals})
	return nil
}

// drainArrivals consumes every arrival due at t — the sentinel's fire time,
// which is the exact head-arrival float, so the equality test batches
// precisely the arrivals the old per-job events would have batched — then
// re-arms the sentinel at the next head arrival.
func (s *sim) drainArrivals(t float64) error {
	for {
		a, ok, err := s.cur.Peek()
		if err != nil {
			return err
		}
		if !ok {
			s.moreArrivals = false
			return nil
		}
		if a > t {
			s.push(a, event{kind: evArrivals})
			return nil
		}
		js := s.cur.Pop()
		if s.streaming {
			if _, dup := s.byID[js.spec.ID]; dup {
				return fmt.Errorf("engine: duplicate live job ID %d in stream", js.spec.ID)
			}
		}
		s.handleArrival(js)
	}
}

// sample records a timeline point if sampling is on and due. Streaming runs
// keep no timeline (StreamResult holds aggregates only), so they skip it.
func (s *sim) sample() {
	if s.cfg.SampleInterval <= 0 || s.streaming {
		return
	}
	if len(s.timeline) > 0 && s.now < s.lastSample+s.cfg.SampleInterval {
		return
	}
	s.lastSample = s.now
	s.timeline = append(s.timeline, Sample{
		Time:           s.now,
		UsedContainers: s.usedSlots,
		RunningJobs:    s.adm.Running(),
		WaitingJobs:    s.adm.Waiting(),
	})
}

func (s *sim) handleArrival(js *jobState) {
	if s.streaming {
		// Streaming jobs join the live set on arrival: the materialized run
		// indexed every job up front in build.
		s.byID[js.spec.ID] = js
		s.jobSeq = append(s.jobSeq, js)
	}
	s.remaining++
	js.arrived = true
	s.adm.Push(js)
	if s.probe != nil {
		s.probe.JobSubmitted(s.now, js.spec.ID)
	}
}

// admit releases waiting jobs into the cluster while the admission limit
// allows, in arrival order (the kernel's job-admission module).
func (s *sim) admit() {
	s.adm.Admit(func(js *jobState, seq int) {
		js.admitted = true
		js.admittedAt = s.now
		js.seq = seq
		s.readySlots += js.readyContainersTotal()
		s.driver.MarkDirty() // the schedulable job set changed
		if s.probe != nil {
			s.probe.JobAdmitted(s.now, js.spec.ID, s.now-js.spec.Arrival)
		}
	})
}

func (s *sim) handleAttemptDone(attemptID int) {
	a := &s.attempts[attemptID]
	js := s.byID[a.jobID]
	if !a.ended {
		s.processAttemptDone(a)
	}
	// The slot is freed exactly when its own completion event fires: every
	// attempt has exactly one pending event, so after this no reference to
	// the slot remains (freeAttempt prunes it from the task's attempt list).
	if attemptRecycling {
		s.freeAttempt(a)
	}
	// A streaming run recycles the job's pooled record once the job has
	// completed and its last pending attempt event — possibly a killed
	// copy's, long after completion — has fired.
	js.pendingEvents--
	if s.streaming && js.completed && js.pendingEvents == 0 {
		s.releaseJob(js)
	}
}

// releaseJob removes a completed job from the live set and returns its
// record to the pool. The linear jobSeq removal preserves relative order;
// the scan is cheap because the live set is bounded by in-flight jobs, not
// trace length.
func (s *sim) releaseJob(js *jobState) {
	delete(s.byID, js.spec.ID)
	for i, x := range s.jobSeq {
		if x == js {
			s.jobSeq = append(s.jobSeq[:i], s.jobSeq[i+1:]...)
			break
		}
	}
	s.pool.Put(js.rec)
}

// freeAttempt returns an ended attempt's slab slot to the free list.
func (s *sim) freeAttempt(a *attempt) {
	js := s.byID[a.jobID]
	task := &js.stages[a.stage].tasks[a.task]
	task.attemptIDs = removeID(task.attemptIDs, a.id)
	s.freeAttempts = append(s.freeAttempts, a.id)
	s.attemptLive--
}

// removeID deletes the first occurrence of id, shifting in place.
func removeID(ids []int, id int) []int {
	for i, v := range ids {
		if v == id {
			return append(ids[:i], ids[i+1:]...)
		}
	}
	return ids
}

// processAttemptDone handles a not-yet-ended attempt's completion event.
func (s *sim) processAttemptDone(a *attempt) {
	s.finishAttempt(a)
	js := s.byID[a.jobID]
	st := &js.stages[a.stage]
	task := &st.tasks[a.task]
	task.runningAttempts--

	if !a.success {
		js.failures++
		if s.probe != nil {
			s.probe.TaskFail(s.now, a.jobID, a.stage, a.task, a.start)
		}
		// Re-queue the task unless a sibling attempt is still running.
		if task.runningAttempts == 0 && !task.done {
			s.requeueTask(st, a.task)
		}
		return
	}

	if task.done {
		return // a sibling attempt already completed this task
	}
	task.done = true
	st.doneTasks++
	st.doneContainers += task.spec.Containers
	if s.probe != nil {
		s.probe.TaskDone(s.now, a.jobID, a.stage, a.task, a.start, a.speculative)
	}

	// Kill the remaining sibling attempts of the completed task.
	for _, sibID := range task.attemptIDs {
		sib := &s.attempts[sibID]
		if !sib.ended {
			s.finishAttempt(sib)
			task.runningAttempts--
		}
	}

	if st.doneTasks == len(st.tasks) && !st.completed {
		s.completeStage(js, a.stage)
	}
}

func (s *sim) requeueTask(st *stageState, taskIdx int) {
	task := &st.tasks[taskIdx]
	task.ready = true
	st.pushReady(taskIdx)
	st.readyContainers += task.spec.Containers
	s.readySlots += task.spec.Containers // requeues only happen to admitted jobs
}

// finishAttempt finalizes service accounting for an attempt that ended
// (successfully, by failure, or killed) and releases its containers.
func (s *sim) finishAttempt(a *attempt) {
	a.ended = true
	consumed := float64(a.containers) * (s.now - a.start)
	js := s.byID[a.jobID]
	st := &js.stages[a.stage]

	js.finalizedService += consumed
	js.usage -= a.containers
	js.runStartWeight -= float64(a.containers) * a.start

	st.finalizedService += consumed
	st.usage -= a.containers
	st.runStartWeight -= float64(a.containers) * a.start

	if a.invDur > 0 {
		st.invDurSum -= a.invDur
		st.startInvDurSum -= a.invDur * a.start
		// Progress contributed by an unfinished primary attempt disappears
		// with it; completed tasks are counted via doneTasks instead.
	}
	s.usedSlots -= a.containers
}

// completeStage marks a stage done and unlocks dependents whose dependencies
// are now all satisfied (dependency handling: reduce tasks only become ready
// once the map stage completes; Spark DAG branches unlock independently).
func (s *sim) completeStage(js *jobState, idx int) {
	st := &js.stages[idx]
	st.completed = true
	st.active = false
	if s.probe != nil {
		s.probe.StageDone(s.now, js.spec.ID, idx)
	}
	js.completedStagesService += st.finalizedService
	js.doneStages++
	js.deactivateStage(idx)
	for _, dep := range st.dependents {
		next := &js.stages[dep]
		next.remainingDeps--
		if next.remainingDeps == 0 {
			js.activateStage(dep)
			s.readySlots += next.readyContainers
		}
	}
	if js.doneStages < len(js.stages) {
		return
	}
	// All stages complete: the job is done.
	js.completed = true
	js.completedAt = s.now
	s.adm.Done()
	s.remaining--
	if s.now > s.makespan {
		s.makespan = s.now
	}
	if s.probe != nil {
		s.probe.JobDone(s.now, js.spec.ID, s.now-js.spec.Arrival)
	}
	if s.finish != nil {
		// Every field is final here: killed siblings were finalized
		// synchronously when their tasks completed, and events that fire
		// after this (ended copies draining) change no job counter.
		s.finish(js, JobResult{
			ID:           js.spec.ID,
			Name:         js.spec.Name,
			Bin:          js.spec.Bin,
			Arrival:      js.spec.Arrival,
			Admitted:     js.admittedAt,
			Completed:    js.completedAt,
			ResponseTime: js.completedAt - js.spec.Arrival,
			Service:      js.finalizedService,
			Attempts:     js.attempts,
			Failures:     js.failures,
			Speculative:  js.speculative,
		})
	}
}

// schedule runs one scheduling round: query the policy, quantize its shares
// to whole containers, launch ready tasks up to each job's target, then apply
// work-conserving leftover allocation and optional speculation.
//
// Rounds that provably cannot launch a task are short-circuited (see
// canSkipRound in incremental.go): the policy's allocation would be thrown
// away, so only its state mutation is replayed via sched.Observer.
func (s *sim) schedule() {
	if !s.cfg.FullReschedule && s.canSkipRound() {
		s.observeRound()
		return
	}
	// A full round may launch tasks, changing usage rates and the policy's
	// state; any previously computed observation horizon is stale.
	s.driver.MarkDirty()

	s.collectViews(true, false)
	if s.vs.Len() == 0 {
		return
	}
	alloc := s.driver.Assign(s.now, float64(s.cfg.Containers), s.vs.Views())
	targets := s.quant.QuantizeInto(alloc, s.vs.Demand(), s.cfg.Containers)

	// Launch ready tasks while a job is below its target, serving the
	// largest allocation deficits first (the policy's most-preferred jobs).
	// If a preferred job's next task needs more containers than are free —
	// a 2-container reduce task against a single free container — the free
	// containers are RESERVED for it, as YARN's schedulers do; without the
	// reservation, 1-container map tasks of lower-priority jobs would snatch
	// every freed container and starve multi-container tasks indefinitely.
	cands := s.cands[:0]
	for _, js := range s.jobSeq {
		if !js.schedulable() {
			continue
		}
		if t := targets[js.spec.ID]; t > js.usage {
			cands = append(cands, launchCand{js: js, target: t})
		}
	}
	s.cands = cands
	// The comparator is a total order (admission sequences are unique), so an
	// unstable sort is deterministic. slices.SortFunc with a capture-free
	// comparator keeps the round allocation free, unlike sort.Slice.
	slices.SortFunc(cands, func(a, b launchCand) int {
		da := a.target - a.js.usage
		db := b.target - b.js.usage
		if da != db {
			if da > db {
				return -1
			}
			return 1
		}
		if a.js.seq < b.js.seq {
			return -1
		}
		return 1
	})
	reserved := 0
	for _, c := range cands {
		for c.js.usage < c.target {
			started, need := s.startNextReadyTask(c.js, reserved)
			if started {
				continue
			}
			if need > 0 {
				// Reserve the free containers for this starved task.
				free := s.cfg.Containers - s.usedSlots
				if need > free {
					need = free
				}
				reserved += need
			}
			break
		}
	}

	// Work conservation (Algorithm 2, last step): hand unreserved leftover
	// containers to any ready task, round-robin across jobs.
	progress := true
	for progress && s.usedSlots+reserved < s.cfg.Containers {
		progress = false
		for _, js := range s.jobSeq {
			if !js.schedulable() {
				continue
			}
			if started, _ := s.startNextReadyTask(js, reserved); started {
				progress = true
			}
		}
	}

	if s.cfg.Speculation {
		s.speculate(reserved)
	}
	if s.usedSlots > s.peakUsage {
		s.peakUsage = s.usedSlots
	}
}

// startNextReadyTask starts the next ready task of js's active stages
// (lowest stage index first) if enough unreserved containers are free. It
// reports whether a task was started; when the next task exists but does not
// fit, need is its container requirement so the caller can reserve capacity
// for it.
func (s *sim) startNextReadyTask(js *jobState, reserved int) (started bool, need int) {
	free := s.cfg.Containers - s.usedSlots - reserved
	for _, si := range js.activeStages {
		st := &js.stages[si]
		for !st.readyEmpty() {
			ti := st.peekReady()
			task := &st.tasks[ti]
			if !task.ready || task.done {
				st.popReady() // stale entry
				continue
			}
			if task.spec.Containers > free {
				return false, task.spec.Containers
			}
			st.popReady()
			st.readyContainers -= task.spec.Containers
			s.readySlots -= task.spec.Containers
			task.ready = false
			s.launchAttempt(js, si, ti, false)
			return true, 0
		}
	}
	return false, 0
}

// launchAttempt starts an attempt of the given task now. The caller must
// have already removed the task from the ready queue (for primary attempts).
func (s *sim) launchAttempt(js *jobState, stage, taskIdx int, speculative bool) {
	st := &js.stages[stage]
	task := &st.tasks[taskIdx]

	// Full (progress-relevant) duration, possibly stretched by a straggler.
	duration := task.spec.Duration
	if s.cfg.StragglerProb > 0 && s.rng.Float64() < s.cfg.StragglerProb {
		duration *= s.cfg.StragglerFactor
	}
	// Failure injection: the attempt dies after a uniform fraction of its
	// duration without completing the task.
	success := true
	runtime := duration
	if s.cfg.FailureProb > 0 && s.rng.Float64() < s.cfg.FailureProb {
		success = false
		runtime = duration * s.rng.Float64()
		if runtime <= 0 {
			runtime = 1e-9
		}
	}

	// Take an attempt slot: a recycled one off the free list when available,
	// else a value append into the slab. Take the pointer only after the
	// append (a slab growth would strand a pre-append pointer).
	var id int
	if n := len(s.freeAttempts); attemptRecycling && n > 0 {
		id = s.freeAttempts[n-1]
		s.freeAttempts = s.freeAttempts[:n-1]
		s.attemptRecycled++
	} else {
		id = len(s.attempts)
		s.attempts = append(s.attempts, attempt{})
	}
	s.attempts[id] = attempt{
		id:          id,
		jobID:       js.spec.ID,
		stage:       stage,
		task:        taskIdx,
		containers:  task.spec.Containers,
		start:       s.now,
		success:     success,
		speculative: speculative,
	}
	a := &s.attempts[id]
	s.attemptLive++
	if s.attemptLive > s.attemptPeak {
		s.attemptPeak = s.attemptLive
	}
	task.lastStart = s.now
	if !speculative {
		a.invDur = 1 / duration
	}
	task.attemptIDs = append(task.attemptIDs, a.id)
	task.runningAttempts++
	if s.probe != nil {
		if js.attempts == 0 {
			s.probe.JobStarted(s.now, js.spec.ID)
		}
		s.probe.TaskStart(s.now, js.spec.ID, stage, taskIdx, a.containers, speculative)
	}
	js.attempts++
	if speculative {
		js.speculative++
	}

	js.usage += a.containers
	js.runStartWeight += float64(a.containers) * a.start
	st.usage += a.containers
	st.runStartWeight += float64(a.containers) * a.start
	if a.invDur > 0 {
		st.invDurSum += a.invDur
		st.startInvDurSum += a.invDur * a.start
	}
	s.usedSlots += a.containers
	js.pendingEvents++
	s.push(s.now+runtime, event{kind: evAttemptDone, attempt: a.id})
}

// speculate launches duplicate copies of the running tasks with the largest
// expected remaining time on leftover containers, at most one copy per task.
func (s *sim) speculate(reserved int) {
	free := s.cfg.Containers - s.usedSlots - reserved
	if free <= 0 {
		return
	}
	cands := s.specCands[:0]
	for _, js := range s.jobSeq {
		if !js.schedulable() {
			continue
		}
		for _, si := range js.activeStages {
			st := &js.stages[si]
			for ti := range st.tasks {
				task := &st.tasks[ti]
				if task.done || task.runningAttempts != 1 {
					continue // not running, or already duplicated
				}
				// lastStart is the most recent attempt's launch time — the same
				// value the attempt slab's newest entry for this task holds, but
				// safe to read when recycling has repurposed ended slots.
				worstCase := task.lastStart + task.spec.Duration*s.cfg.StragglerFactor
				cands = append(cands, specCand{js: js, stage: si, task: ti, remaining: worstCase - s.now})
			}
		}
	}
	s.specCands = cands
	// Longest expected remaining time first; deterministic tie-break on job ID.
	for i := range cands {
		best := i
		for j := i + 1; j < len(cands); j++ {
			if cands[j].remaining > cands[best].remaining ||
				(cands[j].remaining == cands[best].remaining &&
					cands[j].js.spec.ID < cands[best].js.spec.ID) {
				best = j
			}
		}
		cands[i], cands[best] = cands[best], cands[i]
	}
	for _, c := range cands {
		task := &c.js.stages[c.stage].tasks[c.task]
		if task.done || task.spec.Containers > s.cfg.Containers-s.usedSlots-reserved {
			continue
		}
		s.launchAttempt(c.js, c.stage, c.task, true)
		if s.usedSlots+reserved >= s.cfg.Containers {
			return
		}
	}
}

// collectViews rebuilds the kernel's view registry with the scheduler-facing
// snapshots of all admitted, unfinished jobs, reusing the per-job view
// adapters. Full rounds request the ready-demand map (withDemand, for share
// quantization); observation rounds for horizon-hinting policies request the
// per-job metric-rate bounds instead (withRates).
func (s *sim) collectViews(withDemand, withRates bool) {
	s.vs.Begin(withDemand, withRates)
	for _, js := range s.jobSeq {
		if !js.schedulable() {
			continue
		}
		js.view.now = s.now
		s.vs.Add(&js.view)
		if withDemand {
			s.vs.SetDemand(js.spec.ID, js.readyDemand())
		}
		if withRates {
			s.vs.SetRate(js.spec.ID, s.metricRateBound(js))
		}
	}
}

func (s *sim) result() *Result {
	res := &Result{
		PeakUsage: s.peakUsage,
	}
	// The timeline must be copied out: its backing array belongs to the
	// pooled arena and is reused by the next run.
	if len(s.timeline) > 0 {
		res.Timeline = append([]Sample(nil), s.timeline...)
	}
	res.Scheduler = s.driver.Name()
	res.Makespan = s.makespan
	if s.makespan > 0 {
		res.Utilization = s.busyIntegral / (s.makespan * float64(s.cfg.Containers))
	}
	for _, js := range s.jobSeq {
		res.Jobs = append(res.Jobs, JobResult{
			ID:           js.spec.ID,
			Name:         js.spec.Name,
			Bin:          js.spec.Bin,
			Arrival:      js.spec.Arrival,
			Admitted:     js.admittedAt,
			Completed:    js.completedAt,
			ResponseTime: js.completedAt - js.spec.Arrival,
			Service:      js.finalizedService,
			Attempts:     js.attempts,
			Failures:     js.failures,
			Speculative:  js.speculative,
		})
		res.Record(js.spec.Bin, js.completedAt-js.spec.Arrival)
	}
	res.FoldCounters(s.probe)
	return res
}
