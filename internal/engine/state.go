package engine

import (
	"slices"
	"sync"

	"lasmq/internal/eventq"
	"lasmq/internal/job"
	"lasmq/internal/sched"
	"lasmq/internal/substrate"
)

// attempt is one execution attempt of a task on physical containers.
// Attempts live in the arena's flat slab and are addressed by index; the
// slab grows during a run, so pointers into it must not be held across a
// launchAttempt call.
type attempt struct {
	id          int
	jobID       int
	stage       int
	task        int
	containers  int
	start       float64
	success     bool // outcome decided at launch (failure injection)
	speculative bool
	ended       bool
	// invDur is 1/duration for primary attempts (progress accounting);
	// zero for speculative copies so they do not double-count progress.
	invDur float64
}

// taskState tracks one task across its attempts.
type taskState struct {
	spec            job.TaskSpec
	ready           bool
	done            bool
	runningAttempts int
	attemptIDs      []int
	// lastStart is the launch time of the task's most recent attempt. The
	// speculation scan reads it instead of indexing the attempt slab, so
	// recycling an ended attempt's slot cannot change what speculate sees.
	lastStart float64
}

// stageState tracks one stage, with O(1) aggregates for service accounting
// and stage progress (the paper's stage-awareness inputs).
type stageState struct {
	spec  *job.StageSpec
	tasks []taskState
	// Ready-task queue: the live entries are readyIdx[readyHead:]. Dequeuing
	// advances readyHead instead of re-slicing so the backing array is not
	// abandoned (and reallocated) on every launch; the queue is reset to its
	// full capacity whenever it drains.
	readyIdx  []int
	readyHead int
	doneTasks int

	// DAG bookkeeping: a stage activates when remainingDeps reaches zero and
	// completes when all its tasks succeed.
	remainingDeps int
	active        bool
	completed     bool
	dependents    []int

	totalContainers int // sum of task container requirements
	doneContainers  int
	readyContainers int

	// Service accounting: finalized covers ended attempts; running attempts
	// contribute containers*(now-start) = now*usage - runStartWeight.
	finalizedService float64
	usage            int
	runStartWeight   float64

	// Progress accounting over primary (non-speculative) running attempts:
	// fraction progressed = (doneTasks + now*invDurSum - startInvDurSum) / n.
	invDurSum      float64
	startInvDurSum float64
}

// pushReady enqueues a ready task index.
func (st *stageState) pushReady(ti int) { st.readyIdx = append(st.readyIdx, ti) }

// readyEmpty reports whether the ready queue has no live entries.
func (st *stageState) readyEmpty() bool { return st.readyHead >= len(st.readyIdx) }

// peekReady returns the next ready task index; the queue must be non-empty.
func (st *stageState) peekReady() int { return st.readyIdx[st.readyHead] }

// popReady dequeues the next entry, reclaiming the backing array once the
// queue drains.
func (st *stageState) popReady() {
	st.readyHead++
	if st.readyHead == len(st.readyIdx) {
		st.readyIdx = st.readyIdx[:0]
		st.readyHead = 0
	}
}

func (st *stageState) attained(now float64) float64 {
	return st.finalizedService + now*float64(st.usage) - st.runStartWeight
}

// progress returns the completed fraction of the stage in [0,1], counting
// completed tasks plus the partial progress of running primary attempts —
// the simulator's analog of the data-processed percentage Hadoop and Spark
// expose. Task-duration skew makes the early progress rate unstable, so the
// projection over-estimates at times, matching the paper's observation that
// over-estimates occur and mostly penalize only the job itself.
func (st *stageState) progress(now float64) float64 {
	p := (float64(st.doneTasks) + now*st.invDurSum - st.startInvDurSum) / float64(len(st.tasks))
	if p < 0 {
		return 0
	}
	if p > 1 {
		return 1
	}
	return p
}

// jobState is the runtime state of one job. Job states live in the arena's
// fixed-length slab, so pointers to them are stable for the whole run.
type jobState struct {
	spec *job.Spec

	arrived     bool
	admitted    bool
	completed   bool
	admittedAt  float64
	completedAt float64
	seq         int // admission sequence

	stages       []stageState
	activeStages []int // indices of unlocked, uncompleted stages, ascending
	doneStages   int

	// Whole-job service accounting, mirroring the per-stage aggregates.
	finalizedService       float64
	usage                  int
	runStartWeight         float64
	completedStagesService float64

	attempts    int
	failures    int
	speculative int

	// pendingEvents counts attempt-completion events still in the queue for
	// this job (each launch pushes exactly one). A streaming run recycles the
	// job's record only when the job has completed AND this reaches zero —
	// killed copies' events still index into the job's task state when they
	// fire, so the record must outlive them.
	pendingEvents int

	// rec points back to the streaming run's pooled record holding this
	// state (nil in materialized runs, whose jobStates live in the arena
	// slab).
	rec *jobRecord

	// view is the job's persistent sched.JobView adapter, re-stamped with the
	// current time each round instead of allocated anew.
	view jobView
}

// activateStage unlocks a stage: its tasks become ready.
func (js *jobState) activateStage(i int) {
	st := &js.stages[i]
	st.active = true
	for ti := range st.tasks {
		st.tasks[ti].ready = true
		st.pushReady(ti)
		st.readyContainers += st.tasks[ti].spec.Containers
	}
	// Keep activeStages sorted ascending so task launch order is stable.
	pos := len(js.activeStages)
	for pos > 0 && js.activeStages[pos-1] > i {
		pos--
	}
	js.activeStages = append(js.activeStages, 0)
	copy(js.activeStages[pos+1:], js.activeStages[pos:])
	js.activeStages[pos] = i
}

// deactivateStage removes a completed stage from the active list.
func (js *jobState) deactivateStage(i int) {
	for k, idx := range js.activeStages {
		if idx == i {
			js.activeStages = append(js.activeStages[:k], js.activeStages[k+1:]...)
			return
		}
	}
}

func (js *jobState) schedulable() bool { return js.admitted && !js.completed }

func (js *jobState) attained(now float64) float64 {
	return js.finalizedService + now*float64(js.usage) - js.runStartWeight
}

// estimated is the stage-aware service estimate: exact service of completed
// stages plus each active stage's attained service divided by its progress
// (paper Sec. III-B). Locked stages contribute nothing — their cost cannot
// be predicted, as the paper's motivation section argues.
func (js *jobState) estimated(now float64) float64 {
	est := js.completedStagesService
	for _, i := range js.activeStages {
		st := &js.stages[i]
		stageAttained := st.attained(now)
		stageEst := stageAttained
		if p := st.progress(now); p > 0 {
			stageEst = stageAttained / p
		}
		est += stageEst
	}
	return est
}

// readyContainersTotal is the number of containers needed by the ready
// (startable) tasks of the active stages.
func (js *jobState) readyContainersTotal() int {
	var total int
	for _, i := range js.activeStages {
		total += js.stages[i].readyContainers
	}
	return total
}

// readyDemand is readyContainersTotal as the scheduler-facing float.
func (js *jobState) readyDemand() float64 {
	return float64(js.readyContainersTotal())
}

// remainingDemand is the number of containers needed by all remaining tasks
// of the job, including running ones (the paper's in-queue ordering key).
func (js *jobState) remainingDemand() float64 {
	var total int
	for i := range js.stages {
		if js.stages[i].completed {
			continue
		}
		total += js.stages[i].totalContainers - js.stages[i].doneContainers
	}
	return float64(total)
}

// jobView adapts jobState to sched.JobView at a fixed instant.
type jobView struct {
	js  *jobState
	now float64
}

var (
	_ sched.JobView    = (*jobView)(nil)
	_ sched.ExactSizer = (*jobView)(nil)
)

func (v *jobView) ID() int            { return v.js.spec.ID }
func (v *jobView) Seq() int           { return v.js.seq }
func (v *jobView) Priority() int      { return v.js.spec.Priority }
func (v *jobView) Attained() float64  { return v.js.attained(v.now) }
func (v *jobView) Estimated() float64 { return v.js.estimated(v.now) }
func (v *jobView) ReadyDemand() float64 {
	return v.js.readyDemand()
}
func (v *jobView) RemainingDemand() float64 {
	return v.js.remainingDemand()
}
func (v *jobView) SizeHint() float64 { return v.js.spec.EffectiveSizeHint() }
func (v *jobView) RemainingSizeHint() float64 {
	rem := v.js.spec.EffectiveSizeHint() - v.js.attained(v.now)
	if rem < 0 {
		return 0
	}
	return rem
}

// ExactRemaining implements sched.ExactSizer: the true remaining service
// (total minus attained), independent of SizeHint perturbation.
func (v *jobView) ExactRemaining() float64 {
	rem := v.js.spec.TotalService() - v.js.attained(v.now)
	if rem < 0 {
		return 0
	}
	return rem
}

// ladderThreshold is the pending-event population at which the engine's
// event queue migrates from the binary heap to the bucketed ladder queue:
// small simulations keep the heap's simplicity, large traces (whose arrival
// events are all pushed up front) get O(1) amortized event handling. A var
// so the equivalence test can force the migration on small workloads.
var ladderThreshold = 4096

// attemptRecycling returns ended attempts' slab slots to a free list as soon
// as their completion event fires, bounding the attempt slab by the peak
// number of in-flight attempts instead of the total launched. A var so the
// differential tests can prove the recycled and append-only slabs produce
// byte-identical results.
var attemptRecycling = true

// eventHeap wraps the two event-queue implementations behind one push/pop
// surface with same-timestamp batching, so a burst of simultaneous
// completions triggers a single scheduling round. It starts on the binary
// heap and migrates — once, irreversibly for the run — to the ladder queue
// when the pending population crosses ladderThreshold.
type eventHeap struct {
	heap      eventq.Queue[event]
	ladder    eventq.Ladder[event]
	useLadder bool
}

func (h *eventHeap) push(t float64, ev event) {
	if !h.useLadder {
		if h.heap.Len() < ladderThreshold {
			h.heap.Push(t, ev)
			return
		}
		h.migrate()
	}
	h.ladder.Push(t, ev)
}

// migrate drains the heap into the ladder in delivery order. The re-pushes
// receive fresh, increasing sequence numbers in exactly the old (time, seq)
// order, and every later push sequences after them, so delivery order is
// preserved bit for bit across the migration.
func (h *eventHeap) migrate() {
	for {
		t, ev, ok := h.heap.Pop()
		if !ok {
			break
		}
		h.ladder.Push(t, ev)
	}
	h.useLadder = true
}

// popBatch drains all events sharing the earliest timestamp into buf
// (reusing its backing array), so the simulator's per-iteration batch is
// allocation-free in steady state.
func (h *eventHeap) popBatch(buf []event) (float64, []event, bool) {
	if h.useLadder {
		return h.ladder.PopBatch(buf)
	}
	return h.heap.PopBatch(buf)
}

// reset empties both queues, keeping their backing arrays for the next run.
func (h *eventHeap) reset() {
	h.heap.Reset()
	h.ladder.Reset()
	h.useLadder = false
}

// arena is the slab-allocated simulation state: jobs, stages, tasks and
// attempts live in flat, index-addressed slices partitioned into
// per-job/per-stage subslices, and every piece of round-local scratch keeps
// its backing storage. Arenas are pooled, so repeated runs — the replication
// engine fanning one experiment over many seeds, a benchmark loop — reuse
// one arena per worker instead of re-allocating the per-run state from
// scratch (the former per-run `make` storm).
type arena struct {
	jobs   []jobState
	stages []stageState // flat; jobState.stages are full-capacity subslices
	tasks  []taskState  // flat; stageState.tasks are full-capacity subslices
	// ints backs the small per-stage/per-task index lists (ready queues,
	// active-stage lists, the one-attempt common case of attemptIDs). Each
	// carve is a zero-length, capacity-bounded subslice: appends fill it in
	// place and a rare overflow (task retries) spills to the heap safely.
	ints     []int
	attempts []attempt // value slab; grows by append during the run
	// freeAttempts lists recycled attempt slots (see attemptRecycling); an
	// ended attempt's slot joins it when the attempt's own completion event
	// fires, the one moment no pending event references the slot.
	freeAttempts []int

	byID map[int]*jobState // job ID -> live job state (pointers are stable)
	// jobSeq is the deterministic iteration order of live job states:
	// workload order in a materialized run (every job, for the whole run);
	// arrival order in a streaming run (jobs join on arrival and leave when
	// their record is recycled). When a streaming source is sorted by arrival
	// — which RunStream requires — the two orders coincide, one of the
	// ingredients of the Run/RunStream byte-identity.
	jobSeq []*jobState
	// pending is the materialized run's not-yet-arrived jobs, stable-sorted
	// by arrival; the arrival cursor walks it (streaming runs pull from the
	// source instead and leave it empty).
	pending []*jobState

	queue eventHeap
	vs    substrate.ViewSet

	// Round-local scratch reused across scheduling rounds.
	batchBuf  []event
	quant     sched.Quantizer
	cands     []launchCand
	specCands []specCand

	timeline []Sample
}

// arenaPool recycles simulation arenas across runs; each concurrent worker
// effectively owns one.
var arenaPool = sync.Pool{New: func() any { return new(arena) }}

// build lays the workload out in the arena's slabs. Subslices are carved
// with their capacity pinned (three-index slices), so a neighbor can never
// be overwritten by an append.
func (a *arena) build(specs []job.Spec) {
	nStages, nTasks := 0, 0
	for i := range specs {
		nStages += len(specs[i].Stages)
		for si := range specs[i].Stages {
			nTasks += len(specs[i].Stages[si].Tasks)
		}
	}
	a.jobs = substrate.GrowSlab(a.jobs, len(specs))
	a.stages = substrate.GrowSlab(a.stages, nStages)
	a.tasks = substrate.GrowSlab(a.tasks, nTasks)
	a.ints = substrate.GrowSlab(a.ints, nStages+2*nTasks)
	if attemptRecycling {
		// Recycling bounds the slab by peak in-flight attempts; let it grow
		// on demand instead of pre-sizing for one attempt per task.
		a.attempts = a.attempts[:0]
	} else if cap(a.attempts) < nTasks {
		a.attempts = make([]attempt, 0, nTasks)
	} else {
		a.attempts = a.attempts[:0]
	}
	a.freeAttempts = a.freeAttempts[:0]
	if a.byID == nil {
		a.byID = make(map[int]*jobState, len(specs))
	} else {
		clear(a.byID)
	}
	a.jobSeq = a.jobSeq[:0]
	a.pending = a.pending[:0]
	a.queue.reset()
	a.timeline = a.timeline[:0]

	stageOff, taskOff, intOff := 0, 0, 0
	carve := func(n int) []int {
		b := a.ints[intOff : intOff : intOff+n]
		intOff += n
		return b
	}
	for i := range specs {
		spec := &specs[i]
		js := &a.jobs[i]
		ns := len(spec.Stages)
		nt := 0
		for si := range spec.Stages {
			nt += len(spec.Stages[si].Tasks)
		}
		stages := a.stages[stageOff : stageOff+ns : stageOff+ns]
		stageOff += ns
		tasks := a.tasks[taskOff : taskOff+nt : taskOff+nt]
		taskOff += nt
		buildJobState(js, spec, stages, tasks, carve)
		a.byID[spec.ID] = js
		a.jobSeq = append(a.jobSeq, js)
		a.pending = append(a.pending, js)
	}
	slices.SortStableFunc(a.pending, func(x, y *jobState) int {
		if x.spec.Arrival < y.spec.Arrival {
			return -1
		}
		if x.spec.Arrival > y.spec.Arrival {
			return 1
		}
		return 0
	})
}

// buildJobState wires one job's runtime state over caller-provided storage:
// stages and tasks are exact-capacity zeroed slices for this job's
// stage/task records, and carve hands out zero-length capacity-pinned int
// slices for the index lists (activeStages needs ns, each task's attemptIDs
// 1, each stage's readyIdx its task count — ns+2·nt in total). Shared by
// the materialized arena layout and the streaming per-job pooled records.
func buildJobState(js *jobState, spec *job.Spec, stages []stageState, tasks []taskState, carve func(int) []int) {
	js.spec = spec
	js.view.js = js
	js.stages = stages
	js.activeStages = carve(len(spec.Stages))
	taskOff := 0
	for si := range spec.Stages {
		st := &js.stages[si]
		st.spec = &spec.Stages[si]
		nt := len(st.spec.Tasks)
		st.tasks = tasks[taskOff : taskOff+nt : taskOff+nt]
		taskOff += nt
		for ti := range st.spec.Tasks {
			task := &st.tasks[ti]
			task.spec = st.spec.Tasks[ti]
			task.attemptIDs = carve(1)
			st.totalContainers += task.spec.Containers
		}
		st.readyIdx = carve(nt)
		for _, dep := range spec.Deps(si) {
			st.remainingDeps++
			js.stages[dep].dependents = append(js.stages[dep].dependents, si)
		}
	}
	// Root stages (no dependencies) are ready once the job is admitted.
	for si := range js.stages {
		if js.stages[si].remainingDeps == 0 {
			js.activateStage(si)
		}
	}
}

// buildStream resets the arena for a streaming run: job records come from
// the run's free-list pool rather than the jobs/stages/tasks slabs, so only
// the live-job index, the pointer lists, the event queue and the scratch are
// prepared (with backing storage kept, as in build).
func (a *arena) buildStream() {
	a.attempts = a.attempts[:0]
	a.freeAttempts = a.freeAttempts[:0]
	if a.byID == nil {
		a.byID = make(map[int]*jobState, 64)
	} else {
		clear(a.byID)
	}
	a.jobSeq = a.jobSeq[:0]
	a.pending = a.pending[:0]
	a.queue.reset()
	a.timeline = a.timeline[:0]
}

// scrub zeroes the slabs that hold references into caller-owned memory (the
// job specs), so a pooled arena cannot pin a workload after its run, and
// empties the event queue and view registry.
func (a *arena) scrub() {
	clear(a.jobs)
	clear(a.stages)
	clear(a.tasks)
	clear(a.byID)
	clear(a.jobSeq)
	a.jobSeq = a.jobSeq[:0]
	clear(a.pending)
	a.pending = a.pending[:0]
	a.queue.reset()
	a.vs.Reset()
}
