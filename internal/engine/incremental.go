package engine

import "math"

// This file implements the engine's incremental scheduling rounds: the
// short-circuit that skips policy invocation for rounds that provably cannot
// launch a task, and the conservative metric-growth bounds that let
// sched.ObserveHinter policies (LAS_MQ) skip even the state-observation call
// until the next possible queue demotion.
//
// Soundness argument. schedule() only mutates the simulation through task
// launches (and, transitively, the events they enqueue); reservations are
// local variables of a single round. Therefore a round in which no launch is
// possible is observationally identical to no round at all — EXCEPT for the
// policy's internal state mutation performed inside Assign (LAS_MQ demotes
// jobs across queue thresholds and drops departed jobs every time it is
// invoked). sched.Observer captures exactly that mutation, so replaying it
// keeps the policy's state trajectory — and hence every later allocation —
// bit-for-bit identical to the full-reschedule mode. The failure-injection
// RNG is only consumed by launchAttempt, so skipped rounds leave the random
// stream untouched as well.

// canSkipRound reports whether the current round provably cannot launch any
// task attempt, making the policy's allocation dead output:
//
//   - the cluster is saturated (every container occupied), so neither the
//     deficit pass, the work-conserving backfill, nor speculation can place
//     anything; or
//   - no admitted job has a ready task and speculation is off, so there is
//     nothing to place (speculation can duplicate running tasks even when
//     nothing is ready, so it forces a full round).
func (s *sim) canSkipRound() bool {
	if s.usedSlots == s.cfg.Containers {
		return true
	}
	return s.readySlots == 0 && !s.cfg.Speculation
}

// observeRound replays the policy's per-round state mutation for a skipped
// round through the kernel driver. Stateless policies need nothing at all.
// For policies that can bound their next state change (sched.ObserveHinter),
// the Observe call itself is skipped while the schedulable job set is
// unchanged and no attempt has ended since the horizon was computed (the
// driver is not dirty — arrivals that stay in the admission queue do not
// invalidate it) and the current time is strictly before the horizon. The
// engine supplies the metric-rate bounds below; the gating itself lives in
// substrate.Driver.
func (s *sim) observeRound() {
	due := s.driver.ObservationDue(s.now)
	if s.probe != nil {
		s.probe.RoundSkipped(s.now, due)
	}
	if !due {
		return
	}
	s.collectViews(false, s.driver.NeedsRates())
	s.driver.Observe(s.now, &s.vs)
}

// metricRateBound returns an upper bound, valid until the next simulator
// event, on the growth rate of both decision metrics a policy may demote on:
// exactly attained service (which grows at the job's container usage) and
// the stage-aware estimate. Overestimating only shortens the observation
// horizon, never misses a demotion.
func (s *sim) metricRateBound(js *jobState) float64 {
	rate := float64(js.usage)
	var est float64
	for _, i := range js.activeStages {
		b := stageEstRateBound(&js.stages[i], s.now)
		if math.IsInf(b, 1) {
			return b
		}
		est += b
	}
	if est > rate {
		rate = est
	}
	return rate
}

// stageEstRateBound bounds the growth rate of one active stage's
// contribution to the stage-aware estimate, attained/progress, while no
// event occurs. Between events attained grows linearly at u = usage
// containers and raw progress at r = invDurSum/n, so the derivative is
// (u·p − A·r)/p² with a constant numerator and a growing denominator: when
// positive it is maximal right now. Once progress clamps at 1 the estimate
// reverts to plain attained service and grows at u.
func stageEstRateBound(st *stageState, now float64) float64 {
	u := float64(st.usage)
	n := float64(len(st.tasks))
	r := st.invDurSum / n
	praw := (float64(st.doneTasks) + now*st.invDurSum - st.startInvDurSum) / n
	if praw >= 1 {
		return u // progress stays clamped at 1; estimate == attained
	}
	if praw <= 0 {
		if r > 0 {
			return math.Inf(1) // the estimate blows up as progress leaves zero
		}
		return u // progress frozen at zero; estimate == attained
	}
	bound := u // covers the regime after progress clamps at 1
	if c := u*praw - st.attained(now)*r; c > 0 {
		if b := c / (praw * praw); b > bound {
			bound = b
		}
	}
	return bound
}
