package engine_test

import (
	"fmt"
	"sort"
	"testing"

	"lasmq/internal/engine"
	"lasmq/internal/fluid"
	"lasmq/internal/job"
	"lasmq/internal/sched"
)

// The differential suite runs the same staggered Table-I-style mix through
// both substrates — the task-level engine and the fluid simulator — under the
// theory baselines PS and exact SRPT, and asserts the substrates agree on the
// order jobs complete in. Absolute times differ (the engine quantizes shares
// to whole containers and work-conserves the remainder; the fluid model
// serves continuous rates), but with unit tasks the engine reschedules at
// every task boundary, so both models realize the same preemptive discipline
// and must rank the jobs identically.

// diffJob is one job of the differential mix.
type diffJob struct {
	id      int
	arrival float64
	tasks   int
}

// diffMix builds the staggered mix: four size classes with the paper's
// Table-I bin ratios (TeraGen : Classification : SequenceCount : WordCount
// total service is about 1 : 2.4 : 9.5 : 93), three jobs each, every size
// perturbed by its index so no two jobs tie, arrivals spread so the backlog
// builds while small jobs keep arriving. The wide inter-class gaps matter:
// the engine's largest-remainder quantizer breaks ties toward earlier jobs,
// a within-rounding bias that reinforces arrival order inside a class but
// would let two near-simultaneous finishers of different classes swap if the
// classes were close in size.
func diffMix() []diffJob {
	classes := []int{15, 36, 143, 1401}
	var jobs []diffJob
	id := 0
	for rep := 0; rep < 3; rep++ {
		for _, base := range classes {
			id++
			jobs = append(jobs, diffJob{
				id:      id,
				arrival: 3*float64(id-1) + 0.1*float64(id),
				tasks:   base + id,
			})
		}
	}
	return jobs
}

// engineSpecs converts the mix to task-level jobs: one stage of unit tasks,
// one container each, so the engine can reassign capacity at task granularity.
func engineSpecs(jobs []diffJob) []job.Spec {
	specs := make([]job.Spec, len(jobs))
	for i, dj := range jobs {
		tasks := make([]job.TaskSpec, dj.tasks)
		for t := range tasks {
			tasks[t] = job.TaskSpec{Duration: 1, Containers: 1}
		}
		specs[i] = job.Spec{
			ID:       dj.id,
			Name:     fmt.Sprintf("diff-%d", dj.tasks),
			Priority: 1,
			Arrival:  dj.arrival,
			Stages:   []job.StageSpec{{Name: "work", Tasks: tasks}},
		}
	}
	return specs
}

// fluidSpecs converts the mix to fluid jobs with matching width semantics:
// size = task count (unit durations), width = task count (all parallel).
func fluidSpecs(jobs []diffJob) []fluid.JobSpec {
	specs := make([]fluid.JobSpec, len(jobs))
	for i, dj := range jobs {
		specs[i] = fluid.JobSpec{
			ID:       dj.id,
			Arrival:  dj.arrival,
			Size:     float64(dj.tasks),
			Width:    float64(dj.tasks),
			Priority: 1,
		}
	}
	return specs
}

func TestFluidEngineCompletionOrder(t *testing.T) {
	mix := diffMix()
	const capacity = 6
	for _, tc := range []struct {
		name string
		mk   func() sched.Scheduler
	}{
		{"PS", func() sched.Scheduler { return sched.NewPS() }},
		{"SRPT", func() sched.Scheduler { return sched.NewSRPT() }},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			eres, err := engine.Run(engineSpecs(mix), tc.mk(), engine.Config{
				Containers:      capacity,
				StragglerFactor: 3,
			})
			if err != nil {
				t.Fatal(err)
			}
			fres, err := fluid.Run(fluidSpecs(mix), tc.mk(), fluid.Config{
				Capacity:     capacity,
				TaskDuration: 1,
			})
			if err != nil {
				t.Fatal(err)
			}

			ecomp := make(map[int]float64, len(eres.Jobs))
			for _, j := range eres.Jobs {
				ecomp[j.ID] = j.Completed
			}
			fcomp := make(map[int]float64, len(fres.Jobs))
			for _, j := range fres.Jobs {
				fcomp[j.ID] = j.Completed
			}
			if len(ecomp) != len(mix) || len(fcomp) != len(mix) {
				t.Fatalf("completed %d engine / %d fluid jobs, want %d", len(ecomp), len(fcomp), len(mix))
			}

			ids := make([]int, 0, len(mix))
			for _, dj := range mix {
				ids = append(ids, dj.id)
			}
			eorder := sortByCompletion(ids, ecomp)
			forder := sortByCompletion(ids, fcomp)
			for i := range eorder {
				if eorder[i] != forder[i] {
					t.Fatalf("completion order diverges at rank %d:\nengine %v\nfluid  %v\nengine times %v\nfluid times %v",
						i, eorder, forder, ecomp, fcomp)
				}
			}
		})
	}
}

// sortByCompletion returns ids ordered by their completion times.
func sortByCompletion(ids []int, completed map[int]float64) []int {
	order := make([]int, len(ids))
	copy(order, ids)
	sort.SliceStable(order, func(a, b int) bool {
		return completed[order[a]] < completed[order[b]]
	})
	return order
}
