package engine

// White-box benchmarks and gates for the telemetry probe's zero-overhead
// contract: a nil probe must leave the scheduling round allocation-free
// (`make check` enforces this via TestScheduleRoundNilProbeZeroAlloc), and
// an attached aggregating sink must cost only its counter updates.

import (
	"testing"

	"lasmq/internal/core"
	"lasmq/internal/obs"
	"lasmq/internal/sched"
)

func benchLASMQ(tb testing.TB) sched.Scheduler {
	tb.Helper()
	mq, err := core.New(core.DefaultConfig())
	if err != nil {
		tb.Fatal(err)
	}
	return mq
}

// BenchmarkScheduleRoundProbed measures the steady-state scheduling round
// with no probe attached against the same round feeding each sink family:
// the mutex-guarded obs.Counters, the lock-free obs.Ring flight recorder,
// and the obs.Histograms distribution sink — the overhead a user pays for
// each flavor of live telemetry (ring-vs-counters is the number
// BENCH_engine.json tracks).
func BenchmarkScheduleRoundProbed(b *testing.B) {
	cases := []struct {
		name  string
		probe obs.Probe
	}{
		{"nil", nil},
		{"counters", obs.NewCounters()},
		{"ring", obs.NewRing(1 << 16)},
		{"histograms", obs.NewHistograms()},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			s := newBenchSim(b, benchLASMQ(b), tc.probe)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.schedule()
			}
		})
	}
}

// TestScheduleRoundNilProbeZeroAlloc pins the nil-probe fast path: the
// telemetry layer's `if probe != nil` guards must compile away to nothing,
// so an un-probed scheduling round allocates exactly as before the layer
// existed — zero.
func TestScheduleRoundNilProbeZeroAlloc(t *testing.T) {
	s := newBenchSim(t, benchLASMQ(t), nil)
	if avg := testing.AllocsPerRun(100, s.schedule); avg != 0 {
		t.Fatalf("nil-probe scheduling round allocates %v allocs/op, want 0", avg)
	}
}
