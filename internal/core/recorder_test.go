package core_test

import (
	"testing"

	"lasmq/internal/core"
	"lasmq/internal/engine"
	"lasmq/internal/sched"
	"lasmq/internal/workload"
)

func TestQueueRecorderSnapshots(t *testing.T) {
	mq := newLASMQ(t, nil)
	rec := core.NewQueueRecorder(mq, 0)

	j1 := job(1, 1, 0, 10)
	j2 := job(2, 2, 5000, 10)
	rec.Assign(0, 100, views(j1, j2))
	rec.Assign(1, 100, views(j1, j2))

	samples := rec.Samples()
	if len(samples) != 2 {
		t.Fatalf("got %d samples, want 2", len(samples))
	}
	if samples[0].Time != 0 || samples[1].Time != 1 {
		t.Errorf("sample times = %v, %v", samples[0].Time, samples[1].Time)
	}
	// j1 in queue 0, j2 (5000 > 1000) in queue 2.
	if samples[0].Sizes[0] != 1 || samples[0].Sizes[2] != 1 {
		t.Errorf("queue sizes = %v, want job in queues 0 and 2", samples[0].Sizes)
	}
}

func TestQueueRecorderSpacing(t *testing.T) {
	mq := newLASMQ(t, nil)
	rec := core.NewQueueRecorder(mq, 10)
	j := job(1, 1, 0, 10)
	for now := 0.0; now < 35; now++ {
		rec.Assign(now, 100, views(j))
	}
	samples := rec.Samples()
	// At times 0, 10, 20, 30.
	if len(samples) != 4 {
		t.Fatalf("got %d samples, want 4: %v", len(samples), samples)
	}
	for i := 1; i < len(samples); i++ {
		if samples[i].Time-samples[i-1].Time < 10 {
			t.Errorf("samples %v and %v closer than spacing", samples[i-1].Time, samples[i].Time)
		}
	}
}

func TestQueueRecorderEndToEnd(t *testing.T) {
	// Drive a whole engine run through the recorder: a large job must be
	// observed in progressively deeper queues.
	mq := newLASMQ(t, nil)
	rec := core.NewQueueRecorder(mq, 0)

	wcfg := workload.DefaultConfig()
	wcfg.Seed = 4
	specs, err := workload.Generate(wcfg)
	if err != nil {
		t.Fatal(err)
	}
	specs = specs[:20]
	if _, err := engine.Run(specs, rec, engine.DefaultConfig()); err != nil {
		t.Fatal(err)
	}
	samples := rec.Samples()
	if len(samples) == 0 {
		t.Fatal("no samples recorded")
	}
	deepest := 0
	for _, s := range samples {
		for q, n := range s.Sizes {
			if n > 0 && q > deepest {
				deepest = q
			}
		}
	}
	if deepest < 2 {
		t.Errorf("deepest occupied queue = %d; large jobs never demoted past queue 1?", deepest)
	}
	if rec.Name() != "LAS_MQ" {
		t.Errorf("Name = %q", rec.Name())
	}
	_ = sched.Scheduler(rec)
}
