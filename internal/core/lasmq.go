// Package core implements LAS_MQ, the paper's job scheduler: a multilevel
// queue that mimics shortest-job-first without prior size information.
//
// Jobs enter the highest-priority queue and are demoted as the service they
// have attained (optionally projected forward with stage awareness) crosses
// exponentially increasing thresholds (Algorithm 1). Capacity is split across
// queues by weighted fair sharing to avoid starvation, jobs within a queue
// are served one by one ordered by the container demand of their remaining
// tasks, and leftover capacity spills over so the scheduler stays work
// conserving (Algorithm 2).
package core

import (
	"fmt"
	"math"
	"slices"

	"lasmq/internal/mlq"
	"lasmq/internal/obs"
	"lasmq/internal/sched"
)

// Config controls the LAS_MQ policy. The zero value is not valid; start from
// DefaultConfig.
type Config struct {
	// Queues is the number of priority queues k (paper default: 10).
	Queues int
	// FirstThreshold is α₀, the service threshold of the highest-priority
	// queue in container-time units (paper: 100 on the testbed, 1 in the
	// trace-driven simulations).
	FirstThreshold float64
	// Step is the multiplicative factor p between consecutive thresholds
	// (paper default: 10).
	Step float64
	// QueueWeightDecay sets the weighted sharing across queues: queue i+1
	// receives 1/QueueWeightDecay times the weight of queue i. Weights are
	// normalized over non-empty queues. Must be >= 1; 1 means equal weights.
	// The paper does not specify the weights; 8 is our default (calibrated
	// against the paper's Fig. 7 shapes) and an ablation bench covers the
	// choice.
	QueueWeightDecay float64
	// StageAware selects the demotion metric: when true, the stage-aware
	// estimate (attained + projected current-stage service) drives queue
	// placement; when false, only exactly attained service does
	// (paper Sec. III-B).
	StageAware bool
	// OrderByDemand orders jobs within a queue by the container demand of
	// their remaining tasks (paper Sec. III-C); when false, queues are FIFO.
	OrderByDemand bool
}

// DefaultConfig returns the paper's testbed configuration.
func DefaultConfig() Config {
	return Config{
		Queues:           10,
		FirstThreshold:   100,
		Step:             10,
		QueueWeightDecay: 8,
		StageAware:       true,
		OrderByDemand:    true,
	}
}

// trackRec is the scheduler's persistent record of one job: the queue it
// occupies plus the exact ordering key — (demand, seq) — its entry in that
// queue's ordered list carries. Keeping the key cached is what makes the
// incremental list maintenance possible: removal and repositioning locate
// the entry by binary search on the stored key instead of scanning.
type trackRec struct {
	queue  int
	demand float64
	seq    int
}

// ordEntry is one job inside a queue's persistent within-queue order.
type ordEntry struct {
	demand float64 // RemainingDemand, the primary key under OrderByDemand
	seq    int
	id     int
}

// LASMQ is the multilevel-queue scheduler. It is stateful: it remembers which
// queue each job occupies — and each queue's within-queue order — across
// scheduling rounds. Use one instance per simulation run; it is not safe for
// concurrent use.
//
// The within-queue order is maintained incrementally (Algorithm 1 line 10):
// arrivals and demotions binary-insert into the target queue's persistent
// ordered list, and a demand change that leaves a job in place only marks its
// queue dirty. A dirty queue is re-checked for sortedness in one walk at the
// next allocation round, and the sort fallback fires only when the changed
// demands actually inverted the order — round-over-round, queues mostly stay
// sorted, so the steady path is O(live jobs) with no sorting at all.
type LASMQ struct {
	cfg    Config
	levels *mlq.Levels

	// Persistent incremental state: tracked mirrors every live job's queue
	// and ordering key, ordered holds each queue's (demand, seq)-sorted
	// entries, touched flags queues whose members changed demand in place,
	// and orderValid gates the full-rebuild path (cleared when queue
	// membership changes wholesale, e.g. an adaptive refit).
	tracked    map[int]trackRec
	ordered    [][]ordEntry
	touched    []bool
	orderValid bool

	// Scratch buffers reused across rounds to keep large simulations
	// allocation-free on the hot path.
	seen      map[int]bool
	remaining map[int]float64
	weights   []float64
	departed  []int

	// probe, when non-nil, receives queue-trajectory telemetry (enter/
	// demote/exit). Emissions never read back into scheduling decisions.
	probe obs.Probe
}

var (
	_ sched.Scheduler        = (*LASMQ)(nil)
	_ sched.BufferedAssigner = (*LASMQ)(nil)
	_ sched.Observer         = (*LASMQ)(nil)
	_ sched.ObserveHinter    = (*LASMQ)(nil)
	_ sched.Hinter           = (*LASMQ)(nil)
	_ obs.ProbeSetter        = (*LASMQ)(nil)
)

// New validates cfg and returns a fresh LAS_MQ scheduler.
func New(cfg Config) (*LASMQ, error) {
	levels, err := mlq.New(cfg.Queues, cfg.FirstThreshold, cfg.Step)
	if err != nil {
		return nil, err
	}
	if cfg.QueueWeightDecay < 1 {
		return nil, fmt.Errorf("core: queue weight decay must be >= 1, got %v", cfg.QueueWeightDecay)
	}
	return &LASMQ{
		cfg:        cfg,
		levels:     levels,
		tracked:    make(map[int]trackRec),
		ordered:    make([][]ordEntry, cfg.Queues),
		touched:    make([]bool, cfg.Queues),
		orderValid: true,
		seen:       make(map[int]bool),
		remaining:  make(map[int]float64),
		weights:    make([]float64, cfg.Queues),
	}, nil
}

// Name implements sched.Scheduler.
func (s *LASMQ) Name() string { return "LAS_MQ" }

// SetProbe implements obs.ProbeSetter, attaching the telemetry probe that
// receives queue enter/demote/exit events.
func (s *LASMQ) SetProbe(p obs.Probe) { s.probe = p }

// Config returns the configuration the scheduler was built with.
func (s *LASMQ) Config() Config { return s.cfg }

// QueueOf reports the queue index the given job currently occupies and
// whether the job is known to the scheduler. Exposed for tests and
// instrumentation.
func (s *LASMQ) QueueOf(jobID int) (int, bool) {
	rec, ok := s.tracked[jobID]
	return rec.queue, ok
}

// QueueSizes returns the current number of tracked jobs per queue, for
// instrumentation (e.g. occupancy timelines).
func (s *LASMQ) QueueSizes() []int {
	sizes := make([]int, s.levels.Queues())
	for _, rec := range s.tracked {
		sizes[rec.queue]++
	}
	return sizes
}

// resetLevels installs a freshly fitted threshold ladder and re-places every
// job in metrics under it (placement, not demote-only). Queue membership
// changes wholesale, so the persistent within-queue order is invalidated and
// rebuilt from the next round's views. Used by the adaptive wrapper's refit.
func (s *LASMQ) resetLevels(levels *mlq.Levels, metrics map[int]float64) {
	s.levels = levels
	for id, metric := range metrics { // range-ok: independent per-key writes, no accumulation
		rec := s.tracked[id]
		rec.queue = levels.Placement(metric)
		s.tracked[id] = rec
	}
	s.orderValid = false
}

// metric returns the service value used for demotion decisions.
func (s *LASMQ) metric(j sched.JobView) float64 {
	if s.cfg.StageAware {
		return j.Estimated()
	}
	return j.Attained()
}

// Assign implements sched.Scheduler.
func (s *LASMQ) Assign(now float64, capacity float64, jobs []sched.JobView) sched.Assignment {
	out := make(sched.Assignment, len(jobs))
	s.AssignInto(now, capacity, jobs, out)
	return out
}

// Observe implements sched.Observer: it applies exactly the state mutation
// Assign performs — demote-only queue membership updates and dropping state
// for departed jobs (Algorithm 1) — without computing an allocation. The
// task-level engine calls it at instants where no launch is possible, so
// that skipping the full round cannot change queue trajectories. Demotion is
// deterministic in the current metric, so observing twice at one instant is
// the same as observing once.
func (s *LASMQ) Observe(now float64, jobs []sched.JobView) {
	s.sweep(now, jobs)
}

// ObserveHorizon implements sched.ObserveHinter: after an Observe every
// job's metric sits at or below its queue's threshold (demotion is
// strict-exceed), so given per-job upper bounds on metric growth rate the
// earliest possible next demotion is the earliest threshold crossing. A job
// whose bound is missing or infinite makes the horizon collapse to now
// (no skipping). Departures are not covered: the caller must not skip past
// a job-set change.
func (s *LASMQ) ObserveHorizon(now float64, jobs []sched.JobView, rates sched.Assignment) float64 {
	horizon := math.Inf(1)
	for _, j := range jobs {
		rec, ok := s.tracked[j.ID()]
		if !ok {
			return now // not yet observed; cannot bound
		}
		threshold := s.levels.Threshold(rec.queue)
		if math.IsInf(threshold, 1) {
			continue // last queue: never demoted again
		}
		rate := rates[j.ID()]
		if rate <= 0 {
			continue // metric cannot grow
		}
		if math.IsInf(rate, 1) {
			return now
		}
		gap := threshold - s.metric(j)
		if gap <= 0 {
			return now // sitting on the threshold; next growth demotes
		}
		if t := now + gap/rate; t < horizon {
			horizon = t
		}
	}
	return horizon
}

// AssignInto implements sched.BufferedAssigner. It first updates queue
// membership and per-queue order (Algorithm 1), then splits capacity across
// queues by weighted sharing and serves jobs one by one within each queue,
// spilling leftover capacity to any job with unmet demand (Algorithm 2).
func (s *LASMQ) AssignInto(now float64, capacity float64, jobs []sched.JobView, out sched.Assignment) {
	k := s.levels.Queues()

	// Algorithm 1: demote-only queue updates, arrivals, departures, and the
	// incremental within-queue order maintenance (line 10).
	s.sweep(now, jobs)
	s.restoreOrder()

	// Algorithm 2 line 1: split capacity across non-empty queues by weight.
	weights := s.weights[:k]
	var totalWeight float64
	w := 1.0
	for i := 0; i < k; i++ {
		weights[i] = 0
		if len(s.ordered[i]) > 0 {
			weights[i] = w
			totalWeight += w
		}
		w /= s.cfg.QueueWeightDecay
	}
	clear(out)
	if totalWeight == 0 {
		return
	}

	remaining := s.remaining // unmet ready demand per job
	clear(remaining)
	for _, j := range jobs {
		if d := j.ReadyDemand(); d > 0 {
			remaining[j.ID()] = d
		}
	}

	// Algorithm 2 lines 3-12: within each queue's budget, serve jobs one by
	// one in queue order.
	leftover := 0.0
	for i := 0; i < k; i++ {
		budget := capacity * weights[i] / totalWeight
		for _, e := range s.ordered[i] {
			if budget <= 0 {
				break
			}
			d := remaining[e.id]
			if d <= 0 {
				continue
			}
			x := math.Min(budget, d)
			out[e.id] += x
			remaining[e.id] -= x
			budget -= x
		}
		leftover += budget
	}

	// Algorithm 2 line 13 (work conservation): spill leftover capacity to any
	// job with unmet demand, highest-priority queues first.
	for i := 0; i < k && leftover > 1e-12; i++ {
		for _, e := range s.ordered[i] {
			if leftover <= 1e-12 {
				break
			}
			d := remaining[e.id]
			if d <= 0 {
				continue
			}
			x := math.Min(leftover, d)
			out[e.id] += x
			remaining[e.id] -= x
			leftover -= x
		}
	}
}

// sweep applies Algorithm 1's per-round state mutation over the current job
// views: demote-only queue updates, binary insertion of arrivals and demoted
// jobs, removal of departed jobs, and in-place demand refresh (which marks
// the queue dirty instead of re-sorting eagerly). Shared by Observe and
// AssignInto so skipped rounds keep the persistent order exactly in sync.
func (s *LASMQ) sweep(now float64, jobs []sched.JobView) {
	if !s.orderValid {
		s.rebuild(now, jobs)
		return
	}
	seen := s.seen
	clear(seen)
	for _, j := range jobs {
		id := j.ID()
		seen[id] = true
		m := s.metric(j)
		rec, ok := s.tracked[id]
		if !ok {
			// Arrival: place from the top queue and binary-insert.
			d, seq := j.RemainingDemand(), j.Seq()
			q := s.levels.Demote(0, m)
			s.insertEntry(q, ordEntry{demand: d, seq: seq, id: id})
			s.tracked[id] = trackRec{queue: q, demand: d, seq: seq}
			if s.probe != nil {
				s.probe.QueueEnter(now, id, q)
			}
			continue
		}
		q := s.levels.Demote(rec.queue, m)
		d := j.RemainingDemand()
		if q != rec.queue {
			// Demotion: move the entry between queue lists by its stored key.
			s.removeEntry(rec.queue, rec, id)
			s.insertEntry(q, ordEntry{demand: d, seq: rec.seq, id: id})
			s.tracked[id] = trackRec{queue: q, demand: d, seq: rec.seq}
			if s.probe != nil {
				s.probe.QueueDemote(now, id, rec.queue, q, m)
			}
			continue
		}
		if s.cfg.OrderByDemand && d != rec.demand {
			// Demand changed but the job stays put: refresh the entry's key in
			// place and defer the (usually unnecessary) re-sort to
			// restoreOrder's single sortedness walk.
			if pos := s.findEntry(rec.queue, rec, id); pos >= 0 {
				s.ordered[rec.queue][pos].demand = d
			}
			s.touched[rec.queue] = true
			rec.demand = d
			s.tracked[id] = rec
		}
	}
	s.departed = s.departed[:0]
	for id := range s.tracked { // range-ok: per-id collection, order restored by sort below
		if !seen[id] {
			s.departed = append(s.departed, id)
		}
	}
	slices.Sort(s.departed) // deterministic departure order for removal + telemetry
	for _, id := range s.departed {
		rec := s.tracked[id]
		s.removeEntry(rec.queue, rec, id)
		delete(s.tracked, id)
		if s.probe != nil {
			s.probe.QueueExit(now, id, rec.queue)
		}
	}
}

// rebuild reconstructs every queue's ordered list from scratch — the cold
// path, taken after resetLevels invalidates the order wholesale.
func (s *LASMQ) rebuild(now float64, jobs []sched.JobView) {
	for i := range s.ordered {
		s.ordered[i] = s.ordered[i][:0]
		s.touched[i] = false
	}
	seen := s.seen
	clear(seen)
	for _, j := range jobs {
		id := j.ID()
		seen[id] = true
		rec, known := s.tracked[id] // zero record places arrivals from the top queue
		q := s.levels.Demote(rec.queue, s.metric(j))
		d, seq := j.RemainingDemand(), j.Seq()
		s.tracked[id] = trackRec{queue: q, demand: d, seq: seq}
		s.ordered[q] = append(s.ordered[q], ordEntry{demand: d, seq: seq, id: id})
		if s.probe != nil {
			if !known {
				s.probe.QueueEnter(now, id, q)
			} else if q != rec.queue {
				s.probe.QueueDemote(now, id, rec.queue, q, s.metric(j))
			}
		}
	}
	s.departed = s.departed[:0]
	for id := range s.tracked { // range-ok: per-id collection, order restored by sort below
		if !seen[id] {
			s.departed = append(s.departed, id)
		}
	}
	slices.Sort(s.departed)
	for _, id := range s.departed {
		rec := s.tracked[id]
		delete(s.tracked, id)
		if s.probe != nil {
			s.probe.QueueExit(now, id, rec.queue)
		}
	}
	for i := range s.ordered {
		if !s.isSorted(s.ordered[i]) {
			s.sortList(s.ordered[i])
		}
	}
	s.orderValid = true
}

// restoreOrder re-checks the queues whose members changed demand in place
// since the last allocation round. One linear walk per dirty queue; the sort
// fallback fires only when the demand changes actually inverted the order.
func (s *LASMQ) restoreOrder() {
	for q := range s.touched {
		if !s.touched[q] {
			continue
		}
		s.touched[q] = false
		if !s.isSorted(s.ordered[q]) {
			s.sortList(s.ordered[q])
		}
	}
}

// insertEntry binary-inserts e into queue q's ordered list. Inserting into a
// dirty (touched) list may place e imprecisely; restoreOrder repairs that
// before the order is ever read.
func (s *LASMQ) insertEntry(q int, e ordEntry) {
	list := s.ordered[q]
	lo, hi := 0, len(list)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if s.entryLess(list[mid], e) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	list = append(list, ordEntry{})
	copy(list[lo+1:], list[lo:])
	list[lo] = e
	s.ordered[q] = list
}

// findEntry locates the job's entry in queue q by its stored key, falling
// back to a linear scan when the list is dirty. Returns -1 if absent.
func (s *LASMQ) findEntry(q int, rec trackRec, id int) int {
	list := s.ordered[q]
	key := ordEntry{demand: rec.demand, seq: rec.seq, id: id}
	lo, hi := 0, len(list)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if s.entryLess(list[mid], key) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(list) && list[lo].id == id {
		return lo
	}
	for i := range list {
		if list[i].id == id {
			return i
		}
	}
	return -1
}

// removeEntry deletes the job's entry from queue q's ordered list.
func (s *LASMQ) removeEntry(q int, rec trackRec, id int) {
	if pos := s.findEntry(q, rec, id); pos >= 0 {
		list := s.ordered[q]
		copy(list[pos:], list[pos+1:])
		s.ordered[q] = list[:len(list)-1]
	}
}

// entryLess orders jobs within one queue (Algorithm 1 line 10). Sequence
// numbers are unique, making the order total (stability is irrelevant).
func (s *LASMQ) entryLess(a, b ordEntry) bool {
	if s.cfg.OrderByDemand && a.demand != b.demand {
		return a.demand < b.demand
	}
	return a.seq < b.seq
}

func (s *LASMQ) isSorted(list []ordEntry) bool {
	for i := 1; i < len(list); i++ {
		if s.entryLess(list[i], list[i-1]) {
			return false
		}
	}
	return true
}

// sortList is the metric-inversion fallback. Capture-free comparators keep
// the (rare) path allocation-free.
func (s *LASMQ) sortList(list []ordEntry) {
	if s.cfg.OrderByDemand {
		slices.SortFunc(list, compareDemandSeq)
	} else {
		slices.SortFunc(list, compareSeq)
	}
}

func compareDemandSeq(a, b ordEntry) int {
	if a.demand != b.demand {
		if a.demand < b.demand {
			return -1
		}
		return 1
	}
	return compareSeq(a, b)
}

func compareSeq(a, b ordEntry) int {
	if a.seq < b.seq {
		return -1
	}
	return 1
}

// Horizon implements sched.Hinter: the decision can change before the next
// external event when a running job's service metric crosses its queue's
// demotion threshold. Used by the fluid engine, where the metric grows at
// exactly the allocation rate.
func (s *LASMQ) Horizon(now float64, jobs []sched.JobView, alloc sched.Assignment) float64 {
	horizon := math.Inf(1)
	for _, j := range jobs {
		rate := alloc[j.ID()]
		if rate <= 0 {
			continue
		}
		rec, ok := s.tracked[j.ID()]
		if !ok {
			continue
		}
		threshold := s.levels.Threshold(rec.queue)
		if math.IsInf(threshold, 1) {
			continue // last queue: never demoted again
		}
		gap := threshold - s.metric(j)
		t := now + math.Max(gap, 0)/rate
		if t <= now {
			// The metric sits exactly on the threshold; a strictly positive
			// nudge lets it cross so the next round demotes the job.
			t = now + 1e-9
		}
		if t < horizon {
			horizon = t
		}
	}
	return horizon
}
