// Package core implements LAS_MQ, the paper's job scheduler: a multilevel
// queue that mimics shortest-job-first without prior size information.
//
// Jobs enter the highest-priority queue and are demoted as the service they
// have attained (optionally projected forward with stage awareness) crosses
// exponentially increasing thresholds (Algorithm 1). Capacity is split across
// queues by weighted fair sharing to avoid starvation, jobs within a queue
// are served one by one ordered by the container demand of their remaining
// tasks, and leftover capacity spills over so the scheduler stays work
// conserving (Algorithm 2).
package core

import (
	"fmt"
	"math"
	"sort"

	"lasmq/internal/mlq"
	"lasmq/internal/sched"
)

// Config controls the LAS_MQ policy. The zero value is not valid; start from
// DefaultConfig.
type Config struct {
	// Queues is the number of priority queues k (paper default: 10).
	Queues int
	// FirstThreshold is α₀, the service threshold of the highest-priority
	// queue in container-time units (paper: 100 on the testbed, 1 in the
	// trace-driven simulations).
	FirstThreshold float64
	// Step is the multiplicative factor p between consecutive thresholds
	// (paper default: 10).
	Step float64
	// QueueWeightDecay sets the weighted sharing across queues: queue i+1
	// receives 1/QueueWeightDecay times the weight of queue i. Weights are
	// normalized over non-empty queues. Must be >= 1; 1 means equal weights.
	// The paper does not specify the weights; 8 is our default (calibrated
	// against the paper's Fig. 7 shapes) and an ablation bench covers the
	// choice.
	QueueWeightDecay float64
	// StageAware selects the demotion metric: when true, the stage-aware
	// estimate (attained + projected current-stage service) drives queue
	// placement; when false, only exactly attained service does
	// (paper Sec. III-B).
	StageAware bool
	// OrderByDemand orders jobs within a queue by the container demand of
	// their remaining tasks (paper Sec. III-C); when false, queues are FIFO.
	OrderByDemand bool
}

// DefaultConfig returns the paper's testbed configuration.
func DefaultConfig() Config {
	return Config{
		Queues:           10,
		FirstThreshold:   100,
		Step:             10,
		QueueWeightDecay: 8,
		StageAware:       true,
		OrderByDemand:    true,
	}
}

// queueEntry is one job inside a queue, with its within-queue ordering keys
// cached so sorting does not make interface calls.
type queueEntry struct {
	demand float64 // RemainingDemand, the primary key under OrderByDemand
	seq    int
	job    sched.JobView
}

// LASMQ is the multilevel-queue scheduler. It is stateful: it remembers which
// queue each job occupies across scheduling rounds. Use one instance per
// simulation run; it is not safe for concurrent use.
type LASMQ struct {
	cfg    Config
	levels *mlq.Levels
	queue  map[int]int // job ID -> current queue index

	// Scratch buffers reused across rounds to keep large simulations
	// allocation-free on the hot path.
	seen      map[int]bool
	remaining map[int]float64
	perQueue  [][]queueEntry
	weights   []float64
}

var (
	_ sched.Scheduler        = (*LASMQ)(nil)
	_ sched.BufferedAssigner = (*LASMQ)(nil)
	_ sched.Observer         = (*LASMQ)(nil)
	_ sched.ObserveHinter    = (*LASMQ)(nil)
	_ sched.Hinter           = (*LASMQ)(nil)
)

// New validates cfg and returns a fresh LAS_MQ scheduler.
func New(cfg Config) (*LASMQ, error) {
	levels, err := mlq.New(cfg.Queues, cfg.FirstThreshold, cfg.Step)
	if err != nil {
		return nil, err
	}
	if cfg.QueueWeightDecay < 1 {
		return nil, fmt.Errorf("core: queue weight decay must be >= 1, got %v", cfg.QueueWeightDecay)
	}
	return &LASMQ{
		cfg:       cfg,
		levels:    levels,
		queue:     make(map[int]int),
		seen:      make(map[int]bool),
		remaining: make(map[int]float64),
		perQueue:  make([][]queueEntry, cfg.Queues),
		weights:   make([]float64, cfg.Queues),
	}, nil
}

// Name implements sched.Scheduler.
func (s *LASMQ) Name() string { return "LAS_MQ" }

// Config returns the configuration the scheduler was built with.
func (s *LASMQ) Config() Config { return s.cfg }

// QueueOf reports the queue index the given job currently occupies and
// whether the job is known to the scheduler. Exposed for tests and
// instrumentation.
func (s *LASMQ) QueueOf(jobID int) (int, bool) {
	q, ok := s.queue[jobID]
	return q, ok
}

// QueueSizes returns the current number of tracked jobs per queue, for
// instrumentation (e.g. occupancy timelines).
func (s *LASMQ) QueueSizes() []int {
	sizes := make([]int, s.levels.Queues())
	for _, q := range s.queue {
		sizes[q]++
	}
	return sizes
}

// metric returns the service value used for demotion decisions.
func (s *LASMQ) metric(j sched.JobView) float64 {
	if s.cfg.StageAware {
		return j.Estimated()
	}
	return j.Attained()
}

// Assign implements sched.Scheduler.
func (s *LASMQ) Assign(now float64, capacity float64, jobs []sched.JobView) sched.Assignment {
	out := make(sched.Assignment, len(jobs))
	s.AssignInto(now, capacity, jobs, out)
	return out
}

// Observe implements sched.Observer: it applies exactly the state mutation
// Assign performs — demote-only queue membership updates and dropping state
// for departed jobs (Algorithm 1) — without computing an allocation. The
// task-level engine calls it at instants where no launch is possible, so
// that skipping the full round cannot change queue trajectories. Demotion is
// deterministic in the current metric, so observing twice at one instant is
// the same as observing once.
func (s *LASMQ) Observe(now float64, jobs []sched.JobView) {
	seen := s.seen
	clear(seen)
	for _, j := range jobs {
		id := j.ID()
		seen[id] = true
		s.queue[id] = s.levels.Demote(s.queue[id], s.metric(j))
	}
	for id := range s.queue {
		if !seen[id] {
			delete(s.queue, id)
		}
	}
}

// ObserveHorizon implements sched.ObserveHinter: after an Observe every
// job's metric sits at or below its queue's threshold (demotion is
// strict-exceed), so given per-job upper bounds on metric growth rate the
// earliest possible next demotion is the earliest threshold crossing. A job
// whose bound is missing or infinite makes the horizon collapse to now
// (no skipping). Departures are not covered: the caller must not skip past
// a job-set change.
func (s *LASMQ) ObserveHorizon(now float64, jobs []sched.JobView, rates sched.Assignment) float64 {
	horizon := math.Inf(1)
	for _, j := range jobs {
		q, ok := s.queue[j.ID()]
		if !ok {
			return now // not yet observed; cannot bound
		}
		threshold := s.levels.Threshold(q)
		if math.IsInf(threshold, 1) {
			continue // last queue: never demoted again
		}
		rate := rates[j.ID()]
		if rate <= 0 {
			continue // metric cannot grow
		}
		if math.IsInf(rate, 1) {
			return now
		}
		gap := threshold - s.metric(j)
		if gap <= 0 {
			return now // sitting on the threshold; next growth demotes
		}
		if t := now + gap/rate; t < horizon {
			horizon = t
		}
	}
	return horizon
}

// AssignInto implements sched.BufferedAssigner. It first updates queue
// membership and per-queue order (Algorithm 1), then splits capacity across
// queues by weighted sharing and serves jobs one by one within each queue,
// spilling leftover capacity to any job with unmet demand (Algorithm 2).
func (s *LASMQ) AssignInto(now float64, capacity float64, jobs []sched.JobView, out sched.Assignment) {
	k := s.levels.Queues()

	// Algorithm 1: update queue membership (demote-only) and drop state for
	// jobs that have left the system.
	seen := s.seen
	clear(seen)
	perQueue := s.perQueue
	for i := range perQueue {
		perQueue[i] = perQueue[i][:0]
	}
	for _, j := range jobs {
		id := j.ID()
		seen[id] = true
		q := s.levels.Demote(s.queue[id], s.metric(j))
		s.queue[id] = q
		perQueue[q] = append(perQueue[q], queueEntry{demand: j.RemainingDemand(), seq: j.Seq(), job: j})
	}
	for id := range s.queue {
		if !seen[id] {
			delete(s.queue, id)
		}
	}

	// Algorithm 1 line 10: order each queue. Entries arrive in view order,
	// which is already the final order in the common round-over-round case, so
	// a linear sortedness check avoids most sort calls. Sequence numbers are
	// unique, making the order total (stability is irrelevant).
	for _, q := range perQueue {
		sorted := true
		for i := 1; i < len(q); i++ {
			if s.entryLess(q[i], q[i-1]) {
				sorted = false
				break
			}
		}
		if !sorted {
			sort.Slice(q, func(i, j int) bool { return s.entryLess(q[i], q[j]) })
		}
	}

	// Algorithm 2 line 1: split capacity across non-empty queues by weight.
	weights := s.weights[:k]
	var totalWeight float64
	w := 1.0
	for i := 0; i < k; i++ {
		weights[i] = 0
		if len(perQueue[i]) > 0 {
			weights[i] = w
			totalWeight += w
		}
		w /= s.cfg.QueueWeightDecay
	}
	clear(out)
	if totalWeight == 0 {
		return
	}

	remaining := s.remaining // unmet ready demand per job
	clear(remaining)
	for _, j := range jobs {
		if d := j.ReadyDemand(); d > 0 {
			remaining[j.ID()] = d
		}
	}

	// Algorithm 2 lines 3-12: within each queue's budget, serve jobs one by
	// one in queue order.
	leftover := 0.0
	for i := 0; i < k; i++ {
		budget := capacity * weights[i] / totalWeight
		for _, e := range perQueue[i] {
			if budget <= 0 {
				break
			}
			id := e.job.ID()
			d := remaining[id]
			if d <= 0 {
				continue
			}
			x := math.Min(budget, d)
			out[id] += x
			remaining[id] -= x
			budget -= x
		}
		leftover += budget
	}

	// Algorithm 2 line 13 (work conservation): spill leftover capacity to any
	// job with unmet demand, highest-priority queues first.
	for i := 0; i < k && leftover > 1e-12; i++ {
		for _, e := range perQueue[i] {
			if leftover <= 1e-12 {
				break
			}
			id := e.job.ID()
			d := remaining[id]
			if d <= 0 {
				continue
			}
			x := math.Min(leftover, d)
			out[id] += x
			remaining[id] -= x
			leftover -= x
		}
	}
}

// entryLess orders jobs within one queue (Algorithm 1 line 10).
func (s *LASMQ) entryLess(a, b queueEntry) bool {
	if s.cfg.OrderByDemand && a.demand != b.demand {
		return a.demand < b.demand
	}
	return a.seq < b.seq
}

// Horizon implements sched.Hinter: the decision can change before the next
// external event when a running job's service metric crosses its queue's
// demotion threshold. Used by the fluid engine, where the metric grows at
// exactly the allocation rate.
func (s *LASMQ) Horizon(now float64, jobs []sched.JobView, alloc sched.Assignment) float64 {
	horizon := math.Inf(1)
	for _, j := range jobs {
		rate := alloc[j.ID()]
		if rate <= 0 {
			continue
		}
		q, ok := s.queue[j.ID()]
		if !ok {
			continue
		}
		threshold := s.levels.Threshold(q)
		if math.IsInf(threshold, 1) {
			continue // last queue: never demoted again
		}
		gap := threshold - s.metric(j)
		t := now + math.Max(gap, 0)/rate
		if t <= now {
			// The metric sits exactly on the threshold; a strictly positive
			// nudge lets it cross so the next round demotes the job.
			t = now + 1e-9
		}
		if t < horizon {
			horizon = t
		}
	}
	return horizon
}
