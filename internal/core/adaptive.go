package core

import (
	"fmt"
	"math"
	"sort"

	"lasmq/internal/mlq"
	"lasmq/internal/obs"
	"lasmq/internal/sched"
)

// AdaptiveConfig controls the adaptive-threshold variant of LAS_MQ — the
// paper's first future-work direction ("make the scheduler more adaptable
// for different workloads"): instead of fixing the first threshold and step
// a priori, the scheduler refits the whole threshold ladder online from the
// sizes of completed jobs.
type AdaptiveConfig struct {
	// Queues is the number of priority queues k.
	Queues int
	// QueueWeightDecay is the cross-queue weight decay (see Config).
	QueueWeightDecay float64
	// StageAware and OrderByDemand select the two testbed features
	// (see Config).
	StageAware    bool
	OrderByDemand bool
	// Initial provides the threshold ladder used until enough completions
	// have been observed: first threshold and step.
	InitialThreshold float64
	InitialStep      float64
	// WarmupJobs is the number of completed jobs observed before the first
	// refit.
	WarmupJobs int
	// RefitEvery is the number of completions between refits.
	RefitEvery int
	// LowQuantile sets the first threshold: the q-quantile of observed
	// completed-job sizes (so roughly a q fraction of jobs finish in the
	// top queue). HighQuantile anchors the last threshold.
	LowQuantile  float64
	HighQuantile float64
	// MaxHistory bounds the completion-size history (a sliding window, so
	// the ladder tracks workload drift). Zero means unbounded.
	MaxHistory int
}

// DefaultAdaptiveConfig returns an adaptive scheduler that starts from the
// paper's testbed ladder and refits every 50 completions.
func DefaultAdaptiveConfig() AdaptiveConfig {
	return AdaptiveConfig{
		Queues:           10,
		QueueWeightDecay: 8,
		StageAware:       true,
		OrderByDemand:    true,
		InitialThreshold: 100,
		InitialStep:      10,
		WarmupJobs:       50,
		RefitEvery:       50,
		LowQuantile:      0.2,
		HighQuantile:     0.98,
		MaxHistory:       5000,
	}
}

// Adaptive is LAS_MQ with an online-fitted threshold ladder. It observes the
// attained service of jobs that leave the system, and periodically rebuilds
// the exponential ladder so the first threshold sits at the LowQuantile of
// completed job sizes and the second-to-last queue's threshold at the
// HighQuantile. Jobs are re-placed under the new ladder from their current
// service metric.
type Adaptive struct {
	cfg   AdaptiveConfig
	inner *LASMQ

	attained   map[int]float64 // last observed metric per live job
	history    []float64       // completed-job sizes (sliding window)
	sinceRefit int
	refits     int
	totalSeen  int

	// Scratch reused across rounds.
	seen     map[int]bool
	departed []int

	// probe, when non-nil, receives threshold-refit telemetry; queue events
	// flow from the inner LAS_MQ, which shares the same probe.
	probe obs.Probe
}

var (
	_ sched.Scheduler        = (*Adaptive)(nil)
	_ sched.BufferedAssigner = (*Adaptive)(nil)
	_ sched.Observer         = (*Adaptive)(nil)
	_ sched.Hinter           = (*Adaptive)(nil)
	_ obs.ProbeSetter        = (*Adaptive)(nil)
)

// NewAdaptive validates cfg and returns a fresh adaptive scheduler.
func NewAdaptive(cfg AdaptiveConfig) (*Adaptive, error) {
	if cfg.WarmupJobs < 1 {
		return nil, fmt.Errorf("core: warmup jobs must be >= 1, got %d", cfg.WarmupJobs)
	}
	if cfg.RefitEvery < 1 {
		return nil, fmt.Errorf("core: refit interval must be >= 1, got %d", cfg.RefitEvery)
	}
	if cfg.LowQuantile <= 0 || cfg.HighQuantile >= 1 || cfg.LowQuantile >= cfg.HighQuantile {
		return nil, fmt.Errorf("core: need 0 < low quantile < high quantile < 1, got %v and %v",
			cfg.LowQuantile, cfg.HighQuantile)
	}
	if cfg.MaxHistory < 0 {
		return nil, fmt.Errorf("core: max history must be >= 0, got %d", cfg.MaxHistory)
	}
	inner, err := New(Config{
		Queues:           cfg.Queues,
		FirstThreshold:   cfg.InitialThreshold,
		Step:             cfg.InitialStep,
		QueueWeightDecay: cfg.QueueWeightDecay,
		StageAware:       cfg.StageAware,
		OrderByDemand:    cfg.OrderByDemand,
	})
	if err != nil {
		return nil, err
	}
	return &Adaptive{
		cfg:      cfg,
		inner:    inner,
		attained: make(map[int]float64),
		seen:     make(map[int]bool),
	}, nil
}

// Name implements sched.Scheduler.
func (a *Adaptive) Name() string { return "LAS_MQ_ADAPTIVE" }

// SetProbe implements obs.ProbeSetter, forwarding the probe to the inner
// LAS_MQ so queue-trajectory events keep flowing when the policy is used
// through the adaptive wrapper.
func (a *Adaptive) SetProbe(p obs.Probe) {
	a.probe = p
	a.inner.SetProbe(p)
}

// Refits reports how many times the threshold ladder has been refitted.
func (a *Adaptive) Refits() int { return a.refits }

// Thresholds returns the current ladder (first threshold of each demoting
// queue), for instrumentation.
func (a *Adaptive) Thresholds() []float64 {
	out := make([]float64, 0, a.cfg.Queues-1)
	for i := 0; i < a.cfg.Queues-1; i++ {
		out = append(out, a.inner.levels.Threshold(i))
	}
	return out
}

// Assign implements sched.Scheduler: record completions, refit if due, then
// delegate to the inner LAS_MQ.
func (a *Adaptive) Assign(now float64, capacity float64, jobs []sched.JobView) sched.Assignment {
	out := make(sched.Assignment, len(jobs))
	a.AssignInto(now, capacity, jobs, out)
	return out
}

// AssignInto implements sched.BufferedAssigner: record completions, refit if
// due, then delegate to the inner LAS_MQ.
func (a *Adaptive) AssignInto(now float64, capacity float64, jobs []sched.JobView, out sched.Assignment) {
	a.observe(jobs)
	if a.dueForRefit() {
		a.refit(now)
	}
	a.inner.AssignInto(now, capacity, jobs, out)
}

// Observe implements sched.Observer: exactly the state mutation AssignInto
// performs, without computing an allocation. The Adaptive scheduler does NOT
// implement sched.ObserveHinter: its completion-size history depends on
// seeing every round's job view, so Observe itself must never be skipped.
func (a *Adaptive) Observe(now float64, jobs []sched.JobView) {
	a.observe(jobs)
	if a.dueForRefit() {
		a.refit(now)
	}
	a.inner.Observe(now, jobs)
}

// Horizon implements sched.Hinter by delegation.
func (a *Adaptive) Horizon(now float64, jobs []sched.JobView, alloc sched.Assignment) float64 {
	return a.inner.Horizon(now, jobs, alloc)
}

// observe tracks live jobs' service metrics; a job that disappears from the
// view completed with (approximately) its last observed metric as size.
// Departures are appended to the history in ascending job-ID order so the
// sliding window's contents — and therefore the fitted ladder — do not
// depend on map iteration order.
func (a *Adaptive) observe(jobs []sched.JobView) {
	seen := a.seen
	clear(seen)
	for _, j := range jobs {
		seen[j.ID()] = true
		a.attained[j.ID()] = j.Attained()
	}
	departed := a.departed[:0]
	for id := range a.attained { // range-ok: departed ids are sorted before use
		if !seen[id] {
			departed = append(departed, id)
		}
	}
	a.departed = departed
	sort.Ints(departed)
	for _, id := range departed {
		size := a.attained[id]
		delete(a.attained, id)
		if size <= 0 {
			continue
		}
		a.history = append(a.history, size)
		if a.cfg.MaxHistory > 0 && len(a.history) > a.cfg.MaxHistory {
			a.history = a.history[len(a.history)-a.cfg.MaxHistory:]
		}
		a.sinceRefit++
		a.totalSeen++
	}
}

func (a *Adaptive) dueForRefit() bool {
	if a.totalSeen < a.cfg.WarmupJobs {
		return false
	}
	if a.refits == 0 {
		return true // first refit right after warmup
	}
	return a.sinceRefit >= a.cfg.RefitEvery
}

// refit rebuilds the exponential ladder from the completion-size history and
// re-places all tracked jobs under it.
func (a *Adaptive) refit(now float64) {
	k := a.cfg.Queues
	if k < 2 || len(a.history) == 0 {
		return
	}
	sorted := append([]float64(nil), a.history...)
	sort.Float64s(sorted)
	low := quantileSorted(sorted, a.cfg.LowQuantile)
	high := quantileSorted(sorted, a.cfg.HighQuantile)
	if low <= 0 {
		low = math.SmallestNonzeroFloat64
	}
	if high < low*2 {
		high = low * 2
	}
	// Ladder: alpha_0 = low, alpha_{k-2} = high.
	step := 2.0
	if k > 2 {
		step = math.Pow(high/low, 1/float64(k-2))
		if step < 1.5 {
			step = 1.5
		}
	}
	levels, err := mlq.New(k, low, step)
	if err != nil {
		return // keep the previous ladder; inputs were degenerate
	}
	// Re-place live jobs from their current metric (placement under a fresh
	// ladder; the demote-only rule applies from here on). The wholesale
	// re-placement invalidates the inner scheduler's incremental within-queue
	// order, which it rebuilds on its next round.
	a.inner.resetLevels(levels, a.attained)
	a.sinceRefit = 0
	a.refits++
	if a.probe != nil {
		a.probe.ThresholdRefit(now, low, step)
	}
}

// quantileSorted returns the q-quantile of a sorted slice.
func quantileSorted(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo < 0 {
		lo = 0
	}
	if hi >= len(sorted) {
		hi = len(sorted) - 1
	}
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}
