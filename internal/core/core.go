package core
