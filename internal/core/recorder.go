package core

import (
	"lasmq/internal/obs"
	"lasmq/internal/sched"
)

// QueueSample is one snapshot of LAS_MQ's per-queue job occupancy.
type QueueSample struct {
	Time  float64
	Sizes []int
}

// QueueRecorder wraps a LAS_MQ scheduler and records per-queue occupancy
// over virtual time — instrumentation for watching the multilevel queue at
// work (small jobs churning through the top queues, large jobs settling at
// the bottom). It is itself a sched.Scheduler and can be passed to any
// engine.
//
// The recorder is built on the probe layer: it installs itself as the inner
// scheduler's obs.Probe and maintains the occupancy incrementally from
// queue enter/demote/exit events, snapshotting at allocation rounds. It
// forwards every optional scheduling capability of the inner LAS_MQ —
// BufferedAssigner, Observer, ObserveHinter, Hinter — so wrapping the
// policy neither breaks incremental-round replay nor changes results; a
// probe attached from outside (obs.ProbeSetter) is chained after the
// recorder's own bookkeeping.
type QueueRecorder struct {
	obs.Nop
	inner *LASMQ
	every float64
	last  float64

	sizes   []int
	samples []QueueSample

	// user is an externally attached probe (e.g. the substrate driver's);
	// queue events are forwarded to it after the occupancy update. The
	// inner LAS_MQ emits only queue events, so forwarding those three is a
	// complete relay.
	user obs.Probe
}

var (
	_ sched.Scheduler        = (*QueueRecorder)(nil)
	_ sched.BufferedAssigner = (*QueueRecorder)(nil)
	_ sched.Observer         = (*QueueRecorder)(nil)
	_ sched.ObserveHinter    = (*QueueRecorder)(nil)
	_ sched.Hinter           = (*QueueRecorder)(nil)
	_ obs.ProbeSetter        = (*QueueRecorder)(nil)
)

// NewQueueRecorder wraps inner, recording a snapshot at most every `every`
// units of virtual time (0 records at every scheduling round).
func NewQueueRecorder(inner *LASMQ, every float64) *QueueRecorder {
	r := &QueueRecorder{
		inner: inner,
		every: every,
		last:  -1,
		sizes: make([]int, inner.levels.Queues()),
	}
	inner.SetProbe(r)
	return r
}

// Name implements sched.Scheduler.
func (r *QueueRecorder) Name() string { return r.inner.Name() }

// SetProbe implements obs.ProbeSetter: external probes chain behind the
// recorder's occupancy bookkeeping.
func (r *QueueRecorder) SetProbe(p obs.Probe) { r.user = p }

// QueueEnter implements obs.Probe for the inner scheduler's events.
func (r *QueueRecorder) QueueEnter(now float64, job, queue int) {
	r.sizes[queue]++
	if r.user != nil {
		r.user.QueueEnter(now, job, queue)
	}
}

// QueueDemote implements obs.Probe for the inner scheduler's events.
func (r *QueueRecorder) QueueDemote(now float64, job, from, to int, attained float64) {
	r.sizes[from]--
	r.sizes[to]++
	if r.user != nil {
		r.user.QueueDemote(now, job, from, to, attained)
	}
}

// QueueExit implements obs.Probe for the inner scheduler's events.
func (r *QueueRecorder) QueueExit(now float64, job, queue int) {
	r.sizes[queue]--
	if r.user != nil {
		r.user.QueueExit(now, job, queue)
	}
}

// Assign implements sched.Scheduler: delegate, then snapshot.
func (r *QueueRecorder) Assign(now float64, capacity float64, jobs []sched.JobView) sched.Assignment {
	out := make(sched.Assignment, len(jobs))
	r.AssignInto(now, capacity, jobs, out)
	return out
}

// AssignInto implements sched.BufferedAssigner: delegate, then snapshot.
func (r *QueueRecorder) AssignInto(now float64, capacity float64, jobs []sched.JobView, out sched.Assignment) {
	r.inner.AssignInto(now, capacity, jobs, out)
	if r.last < 0 || now >= r.last+r.every {
		r.last = now
		r.samples = append(r.samples, QueueSample{Time: now, Sizes: append([]int(nil), r.sizes...)})
	}
}

// Observe implements sched.Observer by delegation, so skipped rounds keep
// the inner scheduler's queue state (and this recorder's occupancy, via the
// probe events the delegated sweep emits) in sync.
func (r *QueueRecorder) Observe(now float64, jobs []sched.JobView) {
	r.inner.Observe(now, jobs)
}

// ObserveHorizon implements sched.ObserveHinter by delegation.
func (r *QueueRecorder) ObserveHorizon(now float64, jobs []sched.JobView, rates sched.Assignment) float64 {
	return r.inner.ObserveHorizon(now, jobs, rates)
}

// Horizon implements sched.Hinter by delegation.
func (r *QueueRecorder) Horizon(now float64, jobs []sched.JobView, alloc sched.Assignment) float64 {
	return r.inner.Horizon(now, jobs, alloc)
}

// Samples returns the recorded snapshots in time order.
func (r *QueueRecorder) Samples() []QueueSample { return r.samples }
