package core

import "lasmq/internal/sched"

// QueueSample is one snapshot of LAS_MQ's per-queue job occupancy.
type QueueSample struct {
	Time  float64
	Sizes []int
}

// QueueRecorder wraps a LAS_MQ scheduler and records per-queue occupancy
// over virtual time — instrumentation for watching the multilevel queue at
// work (small jobs churning through the top queues, large jobs settling at
// the bottom). It is itself a sched.Scheduler and can be passed to any
// engine.
type QueueRecorder struct {
	inner *LASMQ
	every float64
	last  float64

	samples []QueueSample
}

var (
	_ sched.Scheduler = (*QueueRecorder)(nil)
	_ sched.Hinter    = (*QueueRecorder)(nil)
)

// NewQueueRecorder wraps inner, recording a snapshot at most every `every`
// units of virtual time (0 records at every scheduling round).
func NewQueueRecorder(inner *LASMQ, every float64) *QueueRecorder {
	return &QueueRecorder{inner: inner, every: every, last: -1}
}

// Name implements sched.Scheduler.
func (r *QueueRecorder) Name() string { return r.inner.Name() }

// Assign implements sched.Scheduler: delegate, then snapshot.
func (r *QueueRecorder) Assign(now float64, capacity float64, jobs []sched.JobView) sched.Assignment {
	alloc := r.inner.Assign(now, capacity, jobs)
	if r.last < 0 || now >= r.last+r.every {
		r.last = now
		r.samples = append(r.samples, QueueSample{Time: now, Sizes: r.inner.QueueSizes()})
	}
	return alloc
}

// Horizon implements sched.Hinter by delegation.
func (r *QueueRecorder) Horizon(now float64, jobs []sched.JobView, alloc sched.Assignment) float64 {
	return r.inner.Horizon(now, jobs, alloc)
}

// Samples returns the recorded snapshots in time order.
func (r *QueueRecorder) Samples() []QueueSample { return r.samples }
