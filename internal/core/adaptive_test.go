package core_test

import (
	"math"
	"testing"

	"lasmq/internal/core"
	"lasmq/internal/fluid"
	"lasmq/internal/sched"
	"lasmq/internal/trace"
)

func newAdaptive(t *testing.T, mutate func(*core.AdaptiveConfig)) *core.Adaptive {
	t.Helper()
	cfg := core.DefaultAdaptiveConfig()
	if mutate != nil {
		mutate(&cfg)
	}
	s, err := core.NewAdaptive(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewAdaptiveValidation(t *testing.T) {
	mutations := []func(*core.AdaptiveConfig){
		func(c *core.AdaptiveConfig) { c.WarmupJobs = 0 },
		func(c *core.AdaptiveConfig) { c.RefitEvery = 0 },
		func(c *core.AdaptiveConfig) { c.LowQuantile = 0 },
		func(c *core.AdaptiveConfig) { c.HighQuantile = 1 },
		func(c *core.AdaptiveConfig) { c.LowQuantile = 0.9; c.HighQuantile = 0.5 },
		func(c *core.AdaptiveConfig) { c.MaxHistory = -1 },
		func(c *core.AdaptiveConfig) { c.Queues = 0 },
	}
	for i, mutate := range mutations {
		cfg := core.DefaultAdaptiveConfig()
		mutate(&cfg)
		if _, err := core.NewAdaptive(cfg); err == nil {
			t.Errorf("mutation %d: expected validation error", i)
		}
	}
}

func TestAdaptiveRefitsAfterWarmup(t *testing.T) {
	s := newAdaptive(t, func(c *core.AdaptiveConfig) { c.WarmupJobs = 5; c.RefitEvery = 5 })
	initial := s.Thresholds()

	// Simulate 10 jobs appearing and completing with sizes around 1000.
	for i := 1; i <= 10; i++ {
		j := job(i, i, 1000, 10)
		s.Assign(float64(i), 100, views(j))
		s.Assign(float64(i)+0.5, 100, views()) // job vanished: completed
	}
	if s.Refits() == 0 {
		t.Fatal("no refit after warmup completions")
	}
	refitted := s.Thresholds()
	if len(refitted) != len(initial) {
		t.Fatalf("ladder size changed: %d -> %d", len(initial), len(refitted))
	}
	// The new first threshold should be near the observed sizes (~1000), not
	// the initial 100.
	if refitted[0] < 500 || refitted[0] > 1100 {
		t.Errorf("first threshold after refit = %v, want near observed size 1000", refitted[0])
	}
}

func TestAdaptiveNoRefitDuringWarmup(t *testing.T) {
	s := newAdaptive(t, func(c *core.AdaptiveConfig) { c.WarmupJobs = 100 })
	for i := 1; i <= 20; i++ {
		j := job(i, i, 50, 10)
		s.Assign(float64(i), 100, views(j))
		s.Assign(float64(i)+0.5, 100, views())
	}
	if s.Refits() != 0 {
		t.Errorf("refitted %d times during warmup", s.Refits())
	}
}

func TestAdaptiveLadderCoversObservedRange(t *testing.T) {
	s := newAdaptive(t, func(c *core.AdaptiveConfig) {
		c.WarmupJobs = 20
		c.RefitEvery = 20
	})
	// Sizes spanning 1 .. 10000.
	for i := 1; i <= 40; i++ {
		size := math.Pow(10, float64(i%5)) // 1, 10, 100, 1000, 10000
		j := job(i, i, size, 10)
		s.Assign(float64(i), 100, views(j))
		s.Assign(float64(i)+0.5, 100, views())
	}
	if s.Refits() == 0 {
		t.Fatal("expected at least one refit")
	}
	th := s.Thresholds()
	if th[0] > 100 {
		t.Errorf("first threshold %v too high for sizes starting at 1", th[0])
	}
	last := th[len(th)-1]
	if last < 1000 {
		t.Errorf("last threshold %v does not cover the large sizes", last)
	}
	// Monotone increasing ladder.
	for i := 1; i < len(th); i++ {
		if th[i] <= th[i-1] {
			t.Errorf("ladder not increasing at %d: %v", i, th)
		}
	}
}

func TestAdaptiveSchedulesLikeLASMQ(t *testing.T) {
	// Behavioural check: after adaptation, small jobs still overtake large
	// demoted ones.
	s := newAdaptive(t, nil)
	long := job(1, 1, 0, 1000)
	for i := 0; i < 5; i++ {
		long.AttainedVal += 400
		long.EstimatedVal = long.AttainedVal
		s.Assign(float64(i), 100, views(long))
	}
	small := job(2, 2, 0, 1000)
	alloc := s.Assign(10, 100, views(long, small))
	if alloc[2] <= alloc[1] {
		t.Errorf("small job got %v vs demoted long job %v", alloc[2], alloc[1])
	}
}

// TestAdaptiveRecoversFromMisconfiguredLadder is the headline test for the
// extension: with thresholds wildly wrong for the workload's scale, the
// adaptive variant should approach the well-configured fixed ladder.
func TestAdaptiveRecoversFromMisconfiguredLadder(t *testing.T) {
	tcfg := trace.DefaultFacebookConfig()
	tcfg.Jobs = 4000
	tcfg.Seed = 3
	specs, err := trace.Facebook(tcfg)
	if err != nil {
		t.Fatal(err)
	}
	fcfg := fluid.Config{Capacity: tcfg.Capacity, TaskDuration: 1}

	run := func(policy sched.Scheduler) float64 {
		res, err := fluid.Run(specs, policy, fcfg)
		if err != nil {
			t.Fatal(err)
		}
		var sum float64
		for _, jr := range res.Jobs {
			sum += jr.ResponseTime
		}
		return sum / float64(len(res.Jobs))
	}

	// Fixed ladder misconfigured by 6 orders of magnitude: every job crosses
	// all thresholds immediately, collapsing the multilevel structure.
	badCfg := core.Config{
		Queues: 10, FirstThreshold: 1e-6, Step: 2,
		QueueWeightDecay: 8,
	}
	bad, err := core.New(badCfg)
	if err != nil {
		t.Fatal(err)
	}
	badMean := run(bad)

	acfg := core.DefaultAdaptiveConfig()
	acfg.StageAware = false
	acfg.OrderByDemand = false
	acfg.InitialThreshold = 1e-6
	acfg.InitialStep = 2
	adaptive, err := core.NewAdaptive(acfg)
	if err != nil {
		t.Fatal(err)
	}
	adaptiveMean := run(adaptive)

	if adaptive.Refits() == 0 {
		t.Fatal("adaptive scheduler never refitted")
	}
	if adaptiveMean >= badMean {
		t.Errorf("adaptive (%v) did not improve on the misconfigured fixed ladder (%v)",
			adaptiveMean, badMean)
	}
}
