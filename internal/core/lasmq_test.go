package core_test

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"lasmq/internal/core"
	"lasmq/internal/sched"
	"lasmq/internal/sched/schedtest"
)

func newLASMQ(t *testing.T, mutate func(*core.Config)) *core.LASMQ {
	t.Helper()
	cfg := core.DefaultConfig()
	if mutate != nil {
		mutate(&cfg)
	}
	s, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func job(id, seq int, attained, ready float64) *schedtest.FakeJob {
	return &schedtest.FakeJob{
		JobID:        id,
		JobSeq:       seq,
		JobPriority:  1,
		AttainedVal:  attained,
		EstimatedVal: attained,
		ReadyVal:     ready,
		RemainingVal: ready,
	}
}

func views(jobs ...*schedtest.FakeJob) []sched.JobView {
	out := make([]sched.JobView, len(jobs))
	for i, j := range jobs {
		out[i] = j
	}
	return out
}

func TestNewValidation(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.QueueWeightDecay = 0.5
	if _, err := core.New(cfg); err == nil {
		t.Error("expected error for decay < 1")
	}
	cfg = core.DefaultConfig()
	cfg.Queues = 0
	if _, err := core.New(cfg); err == nil {
		t.Error("expected error for zero queues")
	}
}

func TestNewJobsEnterTopQueue(t *testing.T) {
	s := newLASMQ(t, nil)
	s.Assign(0, 100, views(job(1, 1, 0, 10)))
	if q, ok := s.QueueOf(1); !ok || q != 0 {
		t.Errorf("QueueOf(1) = %d,%v, want 0,true", q, ok)
	}
}

func TestDemotionAcrossThresholds(t *testing.T) {
	s := newLASMQ(t, func(c *core.Config) { c.FirstThreshold = 100; c.Step = 10 })
	j := job(1, 1, 0, 10)
	s.Assign(0, 100, views(j))
	// Exceed the first threshold: moves to queue 1.
	j.AttainedVal, j.EstimatedVal = 150, 150
	s.Assign(1, 100, views(j))
	if q, _ := s.QueueOf(1); q != 1 {
		t.Errorf("queue after 150 service = %d, want 1", q)
	}
	// Jump far: skips directly to the queue whose threshold covers it.
	j.AttainedVal, j.EstimatedVal = 5e4, 5e4
	s.Assign(2, 100, views(j))
	if q, _ := s.QueueOf(1); q != 3 {
		t.Errorf("queue after 5e4 service = %d, want 3", q)
	}
}

func TestStageAwareDemotesEarly(t *testing.T) {
	aware := newLASMQ(t, nil)
	blind := newLASMQ(t, func(c *core.Config) { c.StageAware = false })
	// A job that has only attained 50 but whose stage projection says 5000.
	j := job(1, 1, 50, 10)
	j.EstimatedVal = 5000
	aware.Assign(0, 100, views(j))
	blind.Assign(0, 100, views(j))
	if q, _ := aware.QueueOf(1); q != 2 {
		t.Errorf("stage-aware queue = %d, want 2 (projected 5000 > 1000)", q)
	}
	if q, _ := blind.QueueOf(1); q != 0 {
		t.Errorf("attained-only queue = %d, want 0 (attained 50 <= 100)", q)
	}
}

func TestDemoteOnlyOnShrinkingEstimate(t *testing.T) {
	s := newLASMQ(t, nil)
	j := job(1, 1, 50, 10)
	j.EstimatedVal = 5000
	s.Assign(0, 100, views(j))
	// The over-estimate is corrected downward; the job must stay demoted.
	j.EstimatedVal = 60
	s.Assign(1, 100, views(j))
	if q, _ := s.QueueOf(1); q != 2 {
		t.Errorf("queue after estimate shrank = %d, want 2 (demote-only)", q)
	}
}

func TestCompletedJobsArePurged(t *testing.T) {
	s := newLASMQ(t, nil)
	s.Assign(0, 100, views(job(1, 1, 0, 10), job(2, 2, 0, 10)))
	s.Assign(1, 100, views(job(2, 2, 5, 10)))
	if _, ok := s.QueueOf(1); ok {
		t.Error("completed job still tracked")
	}
	if _, ok := s.QueueOf(2); !ok {
		t.Error("live job lost")
	}
}

func TestHigherQueueGetsLargerShare(t *testing.T) {
	s := newLASMQ(t, func(c *core.Config) { c.FirstThreshold = 100; c.QueueWeightDecay = 2 })
	small := job(1, 1, 10, 1000)   // queue 0
	large := job(2, 2, 5000, 1000) // queue 2 (threshold 100, 1000, ...)
	alloc := s.Assign(0, 90, views(small, large))
	if alloc[1] <= alloc[2] {
		t.Errorf("top-queue job got %v, lower-queue job %v; want strictly more for the top queue", alloc[1], alloc[2])
	}
	// weight 1 vs 0.25 over queues 0 and 2: shares 72 and 18.
	if math.Abs(alloc[1]-72) > 1e-9 || math.Abs(alloc[2]-18) > 1e-9 {
		t.Errorf("alloc = %v, want 72/18 weighted split", alloc)
	}
}

func TestLowerQueueNotStarved(t *testing.T) {
	// Weighted sharing (not strict priority): a demoted job keeps progressing
	// even while the top queue has unmet demand.
	s := newLASMQ(t, nil)
	top := job(1, 1, 0, 10000)
	bottom := job(2, 2, 1e9, 10000)
	alloc := s.Assign(0, 100, views(top, bottom))
	if alloc[2] <= 0 {
		t.Errorf("demoted job starved: alloc = %v", alloc)
	}
}

func TestWorkConservationSpillover(t *testing.T) {
	// Queue 0's budget exceeds its demand; the excess must reach the lower
	// queue instead of idling.
	s := newLASMQ(t, nil)
	top := job(1, 1, 0, 5)
	bottom := job(2, 2, 1e9, 1000)
	alloc := s.Assign(0, 100, views(top, bottom))
	if alloc[1] != 5 {
		t.Errorf("top job got %v, want its demand 5", alloc[1])
	}
	if math.Abs(alloc[2]-95) > 1e-9 {
		t.Errorf("bottom job got %v, want spilled-over 95", alloc[2])
	}
}

func TestInQueueOrderingByDemand(t *testing.T) {
	s := newLASMQ(t, nil)
	// Same queue; the job with fewer remaining containers goes first.
	wide := job(1, 1, 0, 80)
	narrow := job(2, 2, 0, 20)
	alloc := s.Assign(0, 50, views(wide, narrow))
	if alloc[2] != 20 {
		t.Errorf("narrow job got %v, want full demand 20", alloc[2])
	}
	if math.Abs(alloc[1]-30) > 1e-9 {
		t.Errorf("wide job got %v, want leftover 30", alloc[1])
	}
}

func TestInQueueFIFOWhenOrderingDisabled(t *testing.T) {
	s := newLASMQ(t, func(c *core.Config) { c.OrderByDemand = false })
	wide := job(1, 1, 0, 80)
	narrow := job(2, 2, 0, 20)
	alloc := s.Assign(0, 50, views(wide, narrow))
	if alloc[1] != 50 {
		t.Errorf("earlier job got %v, want all 50 under FIFO", alloc[1])
	}
	if alloc[2] != 0 {
		t.Errorf("later job got %v, want 0", alloc[2])
	}
}

func TestHorizonPredictsDemotion(t *testing.T) {
	s := newLASMQ(t, func(c *core.Config) { c.FirstThreshold = 100; c.StageAware = false })
	j := job(1, 1, 40, 10)
	alloc := s.Assign(0, 10, views(j))
	if alloc[1] != 10 {
		t.Fatalf("alloc = %v, want 10", alloc)
	}
	// Attained 40 grows at rate 10; crosses threshold 100 at t = 6.
	h := s.Horizon(0, views(j), alloc)
	if math.Abs(h-6) > 1e-9 {
		t.Errorf("horizon = %v, want 6", h)
	}
}

func TestHorizonInfiniteInLastQueue(t *testing.T) {
	s := newLASMQ(t, func(c *core.Config) { c.Queues = 2; c.StageAware = false })
	j := job(1, 1, 1e6, 10)
	alloc := s.Assign(0, 10, views(j))
	if h := s.Horizon(0, views(j), alloc); !math.IsInf(h, 1) {
		t.Errorf("horizon = %v, want +Inf for last queue", h)
	}
}

func TestHorizonStrictlyAfterNow(t *testing.T) {
	s := newLASMQ(t, func(c *core.Config) { c.FirstThreshold = 100; c.StageAware = false })
	j := job(1, 1, 100, 10) // exactly on the threshold
	alloc := s.Assign(0, 10, views(j))
	h := s.Horizon(0, views(j), alloc)
	if h <= 0 {
		t.Errorf("horizon = %v, want strictly after now", h)
	}
}

func TestAssignInvariantsProperty(t *testing.T) {
	f := func(seed int64, n uint8, capRaw uint16) bool {
		r := rand.New(rand.NewSource(seed))
		s, err := core.New(core.DefaultConfig())
		if err != nil {
			return false
		}
		count := int(n%25) + 1
		capacity := float64(capRaw%200) + 1
		jobs := make([]sched.JobView, 0, count)
		var totalDemand float64
		for i := 0; i < count; i++ {
			fj := job(i+1, i+1, r.Float64()*1e5, float64(r.Intn(150)))
			fj.EstimatedVal = fj.AttainedVal * (1 + r.Float64())
			jobs = append(jobs, fj)
			totalDemand += fj.ReadyVal
		}
		alloc := s.Assign(0, capacity, jobs)
		const eps = 1e-6
		if alloc.Total() > capacity+eps {
			return false
		}
		for _, j := range jobs {
			if alloc[j.ID()] < -eps || alloc[j.ID()] > j.ReadyDemand()+eps {
				return false
			}
		}
		// Work conservation.
		want := math.Min(capacity, totalDemand)
		return math.Abs(alloc.Total()-want) <= eps
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestQueueMembershipMonotoneProperty(t *testing.T) {
	// Across repeated rounds with growing attained service, a job's queue
	// index never decreases.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s, err := core.New(core.DefaultConfig())
		if err != nil {
			return false
		}
		j := job(1, 1, 0, 50)
		prevQ := 0
		for round := 0; round < 50; round++ {
			j.AttainedVal += r.Float64() * 500
			j.EstimatedVal = j.AttainedVal * (1 + r.Float64()*2)
			s.Assign(float64(round), 100, views(j))
			q, ok := s.QueueOf(1)
			if !ok || q < prevQ {
				return false
			}
			prevQ = q
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestQueueSizes(t *testing.T) {
	s := newLASMQ(t, nil)
	jobs := views(
		job(1, 1, 0, 10),      // queue 0
		job(2, 2, 50, 10),     // queue 0 (50 <= 100)
		job(3, 3, 500, 10),    // queue 1
		job(4, 4, 500000, 10), // queue 4
	)
	s.Assign(0, 100, jobs)
	sizes := s.QueueSizes()
	if len(sizes) != 10 {
		t.Fatalf("QueueSizes returned %d queues, want 10", len(sizes))
	}
	want := map[int]int{0: 2, 1: 1, 4: 1}
	for q, n := range sizes {
		if n != want[q] {
			t.Errorf("queue %d has %d jobs, want %d", q, n, want[q])
		}
	}
}

func TestMimicsSJFWithoutSizeInfo(t *testing.T) {
	// Behavioural check of the headline claim: once a long-running job has
	// been demoted, a newly arriving small job receives the larger share
	// even though the scheduler was never told either size.
	s := newLASMQ(t, nil)
	long := job(1, 1, 0, 1000)
	// Run several rounds growing the long job's attained service.
	for i := 0; i < 5; i++ {
		long.AttainedVal += 400
		long.EstimatedVal = long.AttainedVal
		s.Assign(float64(i), 100, views(long))
	}
	small := job(2, 2, 0, 1000)
	alloc := s.Assign(10, 100, views(long, small))
	if alloc[2] <= alloc[1] {
		t.Errorf("new small job got %v vs long job %v; want more for the small job", alloc[2], alloc[1])
	}
}
