package core_test

import (
	"reflect"
	"testing"

	"lasmq/internal/core"
	"lasmq/internal/engine"
	jobspec "lasmq/internal/job"
	"lasmq/internal/sched"
)

// wrapWorkload is a seed-varied mix of small and large multi-stage jobs with
// enough spread to cross LAS_MQ thresholds and queue at admission.
func wrapWorkload(seed int64) []jobspec.Spec {
	specs := make([]jobspec.Spec, 0, 20)
	for i := 0; i < 20; i++ {
		id := i + 1
		arrival := float64(i) * float64(2+seed%3)
		dur := float64(3 + (i*int(seed+7))%60)
		tasks := make([]jobspec.TaskSpec, 2+i%5)
		for t := range tasks {
			tasks[t] = jobspec.TaskSpec{Duration: dur + float64(t), Containers: 1 + t%2}
		}
		specs = append(specs, jobspec.Spec{
			ID: id, Bin: 1 + i%4, Priority: 1 + i%5, Arrival: arrival,
			Stages: []jobspec.StageSpec{
				{Name: "map", Tasks: tasks},
				{Name: "reduce", Tasks: []jobspec.TaskSpec{{Duration: dur / 2, Containers: 2}}},
			},
		})
	}
	return specs
}

func wrapConfig(seed int64) engine.Config {
	cfg := engine.DefaultConfig()
	cfg.Containers = 14
	cfg.MaxRunningJobs = 5
	cfg.FailureProb = 0.1
	cfg.Seed = seed
	return cfg
}

func runWrapped(t *testing.T, seed int64, mk func() sched.Scheduler, full bool) *engine.Result {
	t.Helper()
	cfg := wrapConfig(seed)
	cfg.FullReschedule = full
	res, err := engine.Run(wrapWorkload(seed), mk(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestQueueRecorderTransparent is the capability-forwarding regression gate:
// wrapping LAS_MQ in a QueueRecorder must leave every simulated outcome
// byte-identical, in both scheduling modes. Before the recorder forwarded
// Observer/ObserveHinter, the wrapped policy silently missed skipped-round
// state replay and its queue state — hence allocations — desynced from the
// unwrapped run in incremental mode.
func TestQueueRecorderTransparent(t *testing.T) {
	for _, full := range []bool{true, false} {
		for seed := int64(1); seed <= 3; seed++ {
			bare := runWrapped(t, seed, func() sched.Scheduler {
				mq, err := core.New(core.DefaultConfig())
				if err != nil {
					t.Fatal(err)
				}
				return mq
			}, full)
			wrapped := runWrapped(t, seed, func() sched.Scheduler {
				mq, err := core.New(core.DefaultConfig())
				if err != nil {
					t.Fatal(err)
				}
				return core.NewQueueRecorder(mq, 10)
			}, full)
			if !reflect.DeepEqual(bare, wrapped) {
				t.Fatalf("full=%v seed %d: QueueRecorder wrapping changed the result\n bare: %+v\n wrapped: %+v",
					full, seed, bare, wrapped)
			}
		}
	}
}

// TestBlendDegenerateTransparent: a theta=0 blend must schedule exactly like
// its bare primary (and theta=1 like its bare secondary) — in incremental
// mode this only holds if Blend forwards Observe/ObserveHorizon correctly.
// Only the Scheduler name may differ.
func TestBlendDegenerateTransparent(t *testing.T) {
	mkLASMQ := func() sched.Scheduler {
		mq, err := core.New(core.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		return mq
	}
	cases := []struct {
		name  string
		bare  func() sched.Scheduler
		theta float64
	}{
		{"theta0-lasmq-primary", mkLASMQ, 0},
		{"theta1-fair-secondary", func() sched.Scheduler { return sched.NewFair() }, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for seed := int64(1); seed <= 2; seed++ {
				bare := runWrapped(t, seed, tc.bare, false)
				blended := runWrapped(t, seed, func() sched.Scheduler {
					b, err := sched.NewBlend(mkLASMQ(), sched.NewFair(), tc.theta)
					if err != nil {
						t.Fatal(err)
					}
					return b
				}, false)
				blended.Scheduler = bare.Scheduler // names legitimately differ
				if !reflect.DeepEqual(bare, blended) {
					t.Fatalf("seed %d: degenerate blend differs from its active component", seed)
				}
			}
		})
	}
}

// TestRecorderSizesMatchInner cross-checks the recorder's incrementally
// maintained occupancy (built from probe events) against the inner
// scheduler's authoritative QueueSizes at every sample instant of a live
// run's final state.
func TestRecorderSizesMatchInner(t *testing.T) {
	mq, err := core.New(core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	rec := core.NewQueueRecorder(mq, 0) // sample every round
	cfg := wrapConfig(3)
	if _, err := engine.Run(wrapWorkload(3), rec, cfg); err != nil {
		t.Fatal(err)
	}
	samples := rec.Samples()
	if len(samples) == 0 {
		t.Fatal("no samples recorded")
	}
	// The final sample must agree with the inner scheduler's final state.
	last := samples[len(samples)-1]
	if got := mq.QueueSizes(); !reflect.DeepEqual(last.Sizes, got) {
		t.Fatalf("final sample %v != inner QueueSizes %v", last.Sizes, got)
	}
	deepest := 0
	for _, s := range samples {
		for q, n := range s.Sizes {
			if n < 0 {
				t.Fatalf("sample at t=%v has negative occupancy: %v", s.Time, s.Sizes)
			}
			if n > 0 && q > deepest {
				deepest = q
			}
		}
	}
	if deepest < 2 {
		t.Fatalf("workload never pushed jobs past queue %d; the cross-check is too weak", deepest)
	}
}
