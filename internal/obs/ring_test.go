package obs

import (
	"sync"
	"testing"
	"unsafe"
)

// TestRingSlotLayout pins the packed-record claim: one Event is 48 bytes
// and one ring slot exactly one 64-byte cache line (also asserted at
// compile time in ring.go).
func TestRingSlotLayout(t *testing.T) {
	if s := unsafe.Sizeof(Event{}); s != 48 {
		t.Fatalf("Event is %d bytes, want 48", s)
	}
	if s := unsafe.Sizeof(slot{}); s != 64 {
		t.Fatalf("slot is %d bytes, want 64", s)
	}
}

// emitAll drives every Probe method once with distinct payloads and returns
// the expected packed events in order.
func emitAll(p Probe) []Event {
	p.JobSubmitted(1, 2)
	p.JobAdmitted(3, 4, 5.5)
	p.JobStarted(6, 7)
	p.StageDone(8, 9, 10)
	p.JobDone(11, 12, 13.5)
	p.TaskStart(14, 15, 16, 17, 18, true)
	p.TaskDone(19, 20, 21, 22, 23.5, false)
	p.TaskFail(24, 25, 26, 27, 28.5)
	p.QueueEnter(29, 30, 31)
	p.QueueDemote(32, 33, 34, 35, 36.5)
	p.QueueExit(37, 38, 39)
	p.ThresholdRefit(40, 41.5, 42.5)
	p.RoundExecuted(43, 44)
	p.RoundSkipped(45, true)
	p.EventqMigrate(46, 47)
	p.ArenaReuse(48, 49, true)
	p.SlabStats(50, 51, 52, 53)
	return []Event{
		{Kind: KindJobSubmitted, T: 1, A: 2},
		{Kind: KindJobAdmitted, T: 3, A: 4, F: 5.5},
		{Kind: KindJobStarted, T: 6, A: 7},
		{Kind: KindStageDone, T: 8, A: 9, B: 10},
		{Kind: KindJobDone, T: 11, A: 12, F: 13.5},
		{Kind: KindTaskStart, T: 14, A: 15, B: 16, C: 17, D: 18, Flags: FlagTrue},
		{Kind: KindTaskDone, T: 19, A: 20, B: 21, C: 22, F: 23.5},
		{Kind: KindTaskFail, T: 24, A: 25, B: 26, C: 27, F: 28.5},
		{Kind: KindQueueEnter, T: 29, A: 30, B: 31},
		{Kind: KindQueueDemote, T: 32, A: 33, B: 34, C: 35, F: 36.5},
		{Kind: KindQueueExit, T: 37, A: 38, B: 39},
		{Kind: KindThresholdRefit, T: 40, F: 41.5, G: 42.5},
		{Kind: KindRoundExecuted, T: 43, A: 44},
		{Kind: KindRoundSkipped, T: 45, Flags: FlagTrue},
		{Kind: KindEventqMigrate, T: 46, A: 47},
		{Kind: KindArenaReuse, A: 48, B: 49, Flags: FlagTrue},
		{Kind: KindSlabStats, T: 50, A: 51, B: 52, C: 53},
	}
}

// TestRingPackUnpackRoundTrip drives every probe method through the ring
// and checks the retained tail decodes each payload exactly.
func TestRingPackUnpackRoundTrip(t *testing.T) {
	r := NewRing(64)
	want := emitAll(r)
	got := r.Tail(nil)
	if len(got) != len(want) {
		t.Fatalf("tail has %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("event %d: got %+v, want %+v", i, got[i], want[i])
		}
	}
}

// TestRingApplyRoundTrip replays a drained ring into a second ring; both
// event streams must match, proving Apply inverts the packing for every
// kind.
func TestRingApplyRoundTrip(t *testing.T) {
	src := NewRing(64)
	want := emitAll(src)
	dst := NewRing(64)
	replayed, lost := src.Drain(dst)
	if lost != 0 || replayed != uint64(len(want)) {
		t.Fatalf("Drain = (%d, %d), want (%d, 0)", replayed, lost, len(want))
	}
	got := dst.Tail(nil)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("replayed event %d: got %+v, want %+v", i, got[i], want[i])
		}
	}
	// A second drain is a no-op.
	if n, _ := src.Drain(nil); n != 0 {
		t.Fatalf("second Drain replayed %d events, want 0", n)
	}
}

// TestRingOverwriteKeepsNewest pins the flight-recorder semantics: with no
// consumer, producing past capacity drops the oldest records, keeps the
// newest Cap(), and Drain reports the loss.
func TestRingOverwriteKeepsNewest(t *testing.T) {
	r := NewRing(16)
	n := uint64(3*r.Cap() + 5)
	for i := uint64(0); i < n; i++ {
		r.RoundExecuted(float64(i), int(i))
	}
	tail := r.Tail(nil)
	if len(tail) != r.Cap() {
		t.Fatalf("tail holds %d events, want %d", len(tail), r.Cap())
	}
	for k, ev := range tail {
		if want := n - uint64(r.Cap()) + uint64(k); ev.T != float64(want) {
			t.Fatalf("tail[%d].T = %g, want %d (newest %d must survive)", k, ev.T, want, r.Cap())
		}
	}
	var sink Counters
	replayed, lost := r.Drain(&sink)
	if replayed != uint64(r.Cap()) || lost != n-uint64(r.Cap()) {
		t.Fatalf("Drain = (%d, %d), want (%d, %d)", replayed, lost, r.Cap(), n-uint64(r.Cap()))
	}
	if r.Dropped() != lost {
		t.Fatalf("Dropped() = %d, want %d", r.Dropped(), lost)
	}
	if r.Recorded() != n {
		t.Fatalf("Recorded() = %d, want %d", r.Recorded(), n)
	}
}

// TestRingConcurrentDrain runs the single producer against a concurrent
// consumer goroutine: every record is either replayed intact (valid kind,
// consistent payload) or reported lost — never torn. Run under -race this
// also proves the seqlock publication is data-race-free.
func TestRingConcurrentDrain(t *testing.T) {
	r := NewRing(64)
	const n = 200000
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < n; i++ {
			r.JobDone(float64(i), i, float64(i)+0.5)
		}
	}()
	var replayed, lost uint64
	check := checkProbe{t: t}
	for replayed+lost < n {
		got, dropped := r.Drain(&check)
		replayed += got
		lost += dropped
	}
	wg.Wait()
	got, dropped := r.Drain(&check)
	replayed += got
	lost += dropped
	if replayed+lost != n {
		t.Fatalf("replayed %d + lost %d != produced %d", replayed, lost, n)
	}
	if replayed == 0 {
		t.Fatal("consumer replayed nothing")
	}
}

// checkProbe asserts every replayed record is internally consistent with
// the producer's encoding in TestRingConcurrentDrain.
type checkProbe struct {
	Nop
	t    *testing.T
	last float64
}

func (c *checkProbe) JobDone(now float64, job int, response float64) {
	if float64(job) != now || response != now+0.5 {
		c.t.Errorf("torn record: now=%g job=%d response=%g", now, job, response)
	}
	if now < c.last {
		c.t.Errorf("out-of-order replay: %g after %g", now, c.last)
	}
	c.last = now
}

// TestZeroAllocRingRecord is part of the probe-gate: recording into the
// ring must not allocate on the steady-state path.
func TestZeroAllocRingRecord(t *testing.T) {
	r := NewRing(1024)
	if avg := testing.AllocsPerRun(1000, func() {
		r.JobSubmitted(1, 2)
		r.TaskDone(3, 4, 5, 6, 2.5, false)
		r.RoundExecuted(7, 8)
	}); avg != 0 {
		t.Fatalf("ring record path allocates %.1f allocs/op, want 0", avg)
	}
}
