package obs

import (
	"fmt"
	"io"
	"sync"
)

// CounterSnapshot is an immutable copy of a Counters sink's aggregates.
// It is the form folded into substrate.Result and served by lasmq-live's
// debug endpoint.
type CounterSnapshot struct {
	JobsSubmitted int64 `json:"jobs_submitted"`
	JobsAdmitted  int64 `json:"jobs_admitted"`
	JobsCompleted int64 `json:"jobs_completed"`
	// PeakAdmissionBacklog is the high-water mark of submitted-but-not-yet-
	// admitted jobs.
	PeakAdmissionBacklog int64   `json:"peak_admission_backlog"`
	MaxAdmissionWait     float64 `json:"max_admission_wait"`

	TasksLaunched  int64 `json:"tasks_launched"`
	TasksCompleted int64 `json:"tasks_completed"`
	TaskFailures   int64 `json:"task_failures"`
	// SpecLaunches counts speculative copies launched; SpecWins counts the
	// ones that finished before the original attempt.
	SpecLaunches int64 `json:"spec_launches"`
	SpecWins     int64 `json:"spec_wins"`

	// Demotions[q] counts LAS_MQ demotions whose destination was queue q.
	Demotions []int64 `json:"demotions,omitempty"`
	Refits    int64   `json:"refits"`

	RoundsExecuted int64 `json:"rounds_executed"`
	RoundsSkipped  int64 `json:"rounds_skipped"`
	// RoundsObserved counts skipped rounds that still replayed policy
	// observation (a subset of RoundsSkipped).
	RoundsObserved int64 `json:"rounds_observed"`

	EventqMigrations int64 `json:"eventq_migrations"`
	ArenaReuses      int64 `json:"arena_reuses"`

	// SlabPeakLive is the largest per-run peak of live slab free-list
	// records seen; SlabRecycled sums mid-run slot recycles across runs.
	SlabPeakLive int64 `json:"slab_peak_live"`
	SlabRecycled int64 `json:"slab_recycled"`
}

// TotalDemotions sums demotions across destination queues.
func (s CounterSnapshot) TotalDemotions() int64 {
	var total int64
	for _, n := range s.Demotions {
		total += n
	}
	return total
}

// SkippedRoundRatio is skipped / (skipped + executed), or 0 with no rounds.
func (s CounterSnapshot) SkippedRoundRatio() float64 {
	total := s.RoundsExecuted + s.RoundsSkipped
	if total == 0 {
		return 0
	}
	return float64(s.RoundsSkipped) / float64(total)
}

// WriteSummary prints the snapshot as an aligned key/value block, the form
// lasmq-bench and lasmq-sim append after their result tables.
func (s CounterSnapshot) WriteSummary(w io.Writer) {
	fmt.Fprintf(w, "  jobs submitted/admitted/completed  %d / %d / %d\n",
		s.JobsSubmitted, s.JobsAdmitted, s.JobsCompleted)
	fmt.Fprintf(w, "  peak admission backlog             %d (max wait %.3f)\n",
		s.PeakAdmissionBacklog, s.MaxAdmissionWait)
	fmt.Fprintf(w, "  tasks launched/completed/failed    %d / %d / %d\n",
		s.TasksLaunched, s.TasksCompleted, s.TaskFailures)
	if s.SpecLaunches > 0 {
		fmt.Fprintf(w, "  speculative launches/wins          %d / %d\n", s.SpecLaunches, s.SpecWins)
	}
	if n := s.TotalDemotions(); n > 0 {
		fmt.Fprintf(w, "  queue demotions                    %d (per dest queue %v)\n", n, s.Demotions)
	}
	if s.Refits > 0 {
		fmt.Fprintf(w, "  threshold refits                   %d\n", s.Refits)
	}
	fmt.Fprintf(w, "  rounds executed/skipped            %d / %d (skip ratio %.3f, %d observed)\n",
		s.RoundsExecuted, s.RoundsSkipped, s.SkippedRoundRatio(), s.RoundsObserved)
	if s.EventqMigrations > 0 {
		fmt.Fprintf(w, "  eventq heap->ladder migrations     %d\n", s.EventqMigrations)
	}
	if s.ArenaReuses > 0 {
		fmt.Fprintf(w, "  arena reuses                       %d\n", s.ArenaReuses)
	}
	if s.SlabRecycled > 0 || s.SlabPeakLive > 0 {
		fmt.Fprintf(w, "  slab free-list peak live/recycled  %d / %d\n",
			s.SlabPeakLive, s.SlabRecycled)
	}
}

// Counters is an aggregating Probe sink. It is safe for concurrent use:
// the live cluster's resource manager emits events while the HTTP debug
// endpoint snapshots them.
type Counters struct {
	mu sync.Mutex
	s  CounterSnapshot
	// backlog tracks submitted - admitted to maintain the high-water mark.
	backlog int64
	// shards holds the per-shard sub-sinks derived via ShardProbe, keyed by
	// shard index (nil until a sharded run attaches this sink).
	shards map[int]*Counters
}

// NewCounters returns an empty Counters sink.
func NewCounters() *Counters { return &Counters{} }

// Snapshot returns a copy of the current aggregates.
func (c *Counters) Snapshot() CounterSnapshot {
	c.mu.Lock()
	defer c.mu.Unlock()
	snap := c.s
	snap.Demotions = append([]int64(nil), c.s.Demotions...)
	return snap
}

func (c *Counters) JobSubmitted(float64, int) {
	c.mu.Lock()
	c.s.JobsSubmitted++
	c.backlog++
	if c.backlog > c.s.PeakAdmissionBacklog {
		c.s.PeakAdmissionBacklog = c.backlog
	}
	c.mu.Unlock()
}

func (c *Counters) JobAdmitted(_ float64, _ int, waited float64) {
	c.mu.Lock()
	c.s.JobsAdmitted++
	c.backlog--
	if waited > c.s.MaxAdmissionWait {
		c.s.MaxAdmissionWait = waited
	}
	c.mu.Unlock()
}

func (c *Counters) JobStarted(float64, int) {}

func (c *Counters) StageDone(float64, int, int) {}

func (c *Counters) JobDone(float64, int, float64) {
	c.mu.Lock()
	c.s.JobsCompleted++
	c.mu.Unlock()
}

func (c *Counters) TaskStart(_ float64, _, _, _, _ int, speculative bool) {
	c.mu.Lock()
	c.s.TasksLaunched++
	if speculative {
		c.s.SpecLaunches++
	}
	c.mu.Unlock()
}

func (c *Counters) TaskDone(_ float64, _, _, _ int, _ float64, speculative bool) {
	c.mu.Lock()
	c.s.TasksCompleted++
	if speculative {
		c.s.SpecWins++
	}
	c.mu.Unlock()
}

func (c *Counters) TaskFail(float64, int, int, int, float64) {
	c.mu.Lock()
	c.s.TaskFailures++
	c.mu.Unlock()
}

func (c *Counters) QueueEnter(float64, int, int) {}

func (c *Counters) QueueDemote(_ float64, _, _, to int, _ float64) {
	c.mu.Lock()
	for len(c.s.Demotions) <= to {
		c.s.Demotions = append(c.s.Demotions, 0)
	}
	c.s.Demotions[to]++
	c.mu.Unlock()
}

func (c *Counters) QueueExit(float64, int, int) {}

func (c *Counters) ThresholdRefit(float64, float64, float64) {
	c.mu.Lock()
	c.s.Refits++
	c.mu.Unlock()
}

func (c *Counters) RoundExecuted(float64, int) {
	c.mu.Lock()
	c.s.RoundsExecuted++
	c.mu.Unlock()
}

func (c *Counters) RoundSkipped(_ float64, observed bool) {
	c.mu.Lock()
	c.s.RoundsSkipped++
	if observed {
		c.s.RoundsObserved++
	}
	c.mu.Unlock()
}

func (c *Counters) EventqMigrate(float64, int) {
	c.mu.Lock()
	c.s.EventqMigrations++
	c.mu.Unlock()
}

func (c *Counters) ArenaReuse(_, _ int, reused bool) {
	c.mu.Lock()
	if reused {
		c.s.ArenaReuses++
	}
	c.mu.Unlock()
}

func (c *Counters) SlabStats(_ float64, _, peak, recycled int) {
	c.mu.Lock()
	if int64(peak) > c.s.SlabPeakLive {
		c.s.SlabPeakLive = int64(peak)
	}
	c.s.SlabRecycled += int64(recycled)
	c.mu.Unlock()
}
