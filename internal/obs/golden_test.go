package obs_test

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sync"
	"testing"

	"lasmq/internal/core"
	"lasmq/internal/engine"
	"lasmq/internal/job"
	"lasmq/internal/obs"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata/golden.jsonl from the current emission order")

// goldenSpecs is a small fixed workload exercising every event family:
// admission queuing (MaxRunningJobs below the job count), multi-stage DAGs
// (stage-done events), failure injection (task-fail), and sizes crossing
// LAS_MQ thresholds (queue demotions).
func goldenSpecs() []job.Spec {
	specs := make([]job.Spec, 0, 8)
	for i := 0; i < 8; i++ {
		id := i + 1
		arrival := float64(i) * 3
		switch i % 3 {
		case 0: // small single-stage job
			specs = append(specs, job.Spec{
				ID: id, Bin: 1, Priority: 1, Arrival: arrival,
				Stages: []job.StageSpec{{
					Name:  "map",
					Tasks: []job.TaskSpec{{Duration: 4, Containers: 1}, {Duration: 6, Containers: 1}},
				}},
			})
		case 1: // map-reduce job large enough to be demoted
			maps := make([]job.TaskSpec, 6)
			for t := range maps {
				maps[t] = job.TaskSpec{Duration: float64(20 + 5*t), Containers: 1}
			}
			specs = append(specs, job.Spec{
				ID: id, Bin: 3, Priority: 2, Arrival: arrival,
				Stages: []job.StageSpec{
					{Name: "map", Tasks: maps},
					{Name: "reduce", Tasks: []job.TaskSpec{{Duration: 30, Containers: 2}}},
				},
			})
		default: // medium diamond DAG
			specs = append(specs, job.Spec{
				ID: id, Bin: 2, Priority: 3, Arrival: arrival,
				Stages: []job.StageSpec{
					{Name: "root", Tasks: []job.TaskSpec{{Duration: 8, Containers: 1}}},
					{Name: "left", Tasks: []job.TaskSpec{{Duration: 12, Containers: 1}}, DependsOn: []int{0}},
					{Name: "right", Tasks: []job.TaskSpec{{Duration: 10, Containers: 1}}, DependsOn: []int{0}},
					{Name: "join", Tasks: []job.TaskSpec{{Duration: 5, Containers: 2}}, DependsOn: []int{1, 2}},
				},
			})
		}
	}
	return specs
}

func goldenConfig() engine.Config {
	cfg := engine.DefaultConfig()
	cfg.Containers = 6
	cfg.MaxRunningJobs = 3
	cfg.FailureProb = 0.2
	cfg.Seed = 42
	return cfg
}

// runGoldenJSONL executes the golden workload with a JSONL sink and returns
// the emitted bytes.
func runGoldenJSONL(t *testing.T) []byte {
	t.Helper()
	mq, err := core.New(core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	sink := obs.NewJSONL(&buf)
	cfg := goldenConfig()
	cfg.Probe = sink
	if _, err := engine.Run(goldenSpecs(), mq, cfg); err != nil {
		t.Fatal(err)
	}
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestGoldenJSONL pins the JSONL event log byte-for-byte: same seed, same
// workload, same bytes. Any change to event order, field order or number
// formatting shows up as a diff against testdata/golden.jsonl (regenerate
// deliberately with -update-golden).
func TestGoldenJSONL(t *testing.T) {
	got := runGoldenJSONL(t)
	const path = "testdata/golden.jsonl"
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", path, len(got))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (regenerate with `go test ./internal/obs -run TestGoldenJSONL -update-golden`)", err)
	}
	if !bytes.Equal(got, want) {
		gotLines, wantLines := bytes.Split(got, []byte("\n")), bytes.Split(want, []byte("\n"))
		for i := 0; i < len(gotLines) && i < len(wantLines); i++ {
			if !bytes.Equal(gotLines[i], wantLines[i]) {
				t.Fatalf("line %d differs:\n got: %s\nwant: %s", i+1, gotLines[i], wantLines[i])
			}
		}
		t.Fatalf("event log diverges from golden: got %d lines, want %d", len(gotLines), len(wantLines))
	}
}

// TestJSONLStableAcrossParallelRuns re-runs the golden workload on 8
// concurrent goroutines, each with its own sink, and requires every trace to
// be byte-identical to the single-goroutine bytes: event emission must
// depend only on the seeded run, never on scheduling of other goroutines
// (the worker-pool setting of the replication engine).
func TestJSONLStableAcrossParallelRuns(t *testing.T) {
	want := runGoldenJSONL(t)
	const workers = 8
	traces := make([][]byte, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			mq, err := core.New(core.DefaultConfig())
			if err != nil {
				t.Error(err)
				return
			}
			var buf bytes.Buffer
			sink := obs.NewJSONL(&buf)
			cfg := goldenConfig()
			cfg.Probe = sink
			if _, err := engine.Run(goldenSpecs(), mq, cfg); err != nil {
				t.Error(err)
				return
			}
			if err := sink.Flush(); err != nil {
				t.Error(err)
				return
			}
			traces[w] = buf.Bytes()
		}(w)
	}
	wg.Wait()
	for w, trace := range traces {
		if !bytes.Equal(trace, want) {
			t.Fatalf("worker %d produced a different trace (%d vs %d bytes)", w, len(trace), len(want))
		}
	}
}

// TestJSONLLinesAreValidJSON parses every emitted line: the hand-built
// encoder must produce real JSON with the event tag present.
func TestJSONLLinesAreValidJSON(t *testing.T) {
	got := runGoldenJSONL(t)
	lines := bytes.Split(bytes.TrimSuffix(got, []byte("\n")), []byte("\n"))
	if len(lines) < 50 {
		t.Fatalf("suspiciously short trace: %d events", len(lines))
	}
	for i, line := range lines {
		var ev struct {
			Ev string  `json:"ev"`
			T  float64 `json:"t"`
		}
		if err := json.Unmarshal(line, &ev); err != nil {
			t.Fatalf("line %d is not JSON: %v\n%s", i+1, err, line)
		}
		if ev.Ev == "" {
			t.Fatalf("line %d has no event tag: %s", i+1, line)
		}
	}
}

// TestChromeTraceValidity drives the golden workload into the Chrome
// trace-event exporter and checks the invariants a viewer depends on: the
// export is one JSON array, timestamps are non-negative and monotone
// non-decreasing per (pid, tid) track, durations are non-negative, and
// async queue spans balance their begin/end pairs.
func TestChromeTraceValidity(t *testing.T) {
	mq, err := core.New(core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	trace := obs.NewChromeTrace()
	cfg := goldenConfig()
	cfg.Probe = trace
	if _, err := engine.Run(goldenSpecs(), mq, cfg); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := trace.Export(&buf); err != nil {
		t.Fatal(err)
	}

	var events []struct {
		Name string   `json:"name"`
		Cat  string   `json:"cat"`
		Ph   string   `json:"ph"`
		Ts   float64  `json:"ts"`
		Dur  *float64 `json:"dur"`
		Pid  int      `json:"pid"`
		Tid  int      `json:"tid"`
		// The trace-event format allows string or numeric span ids; the
		// exporter emits numbers.
		ID json.RawMessage `json:"id"`
	}
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("export is not a JSON array: %v", err)
	}
	if len(events) == 0 {
		t.Fatal("empty trace")
	}
	lastTs := make(map[[2]int]float64)
	spanDepth := make(map[string]int)
	for i, ev := range events {
		if ev.Ph == "M" {
			continue // metadata records carry no timestamp
		}
		if ev.Ts < 0 {
			t.Fatalf("event %d (%s) has negative ts %v", i, ev.Name, ev.Ts)
		}
		key := [2]int{ev.Pid, ev.Tid}
		if prev, ok := lastTs[key]; ok && ev.Ts < prev {
			t.Fatalf("event %d (%s) breaks track (%d,%d) monotonicity: ts %v after %v",
				i, ev.Name, ev.Pid, ev.Tid, ev.Ts, prev)
		}
		lastTs[key] = ev.Ts
		if ev.Dur != nil && *ev.Dur < 0 {
			t.Fatalf("event %d (%s) has negative duration %v", i, ev.Name, *ev.Dur)
		}
		switch ev.Ph {
		case "b":
			spanDepth[ev.Cat+"/"+string(ev.ID)+"/"+ev.Name]++
		case "e":
			k := ev.Cat + "/" + string(ev.ID) + "/" + ev.Name
			spanDepth[k]--
			if spanDepth[k] < 0 {
				t.Fatalf("event %d: async span %s ends before it begins", i, k)
			}
		}
	}
	for k, depth := range spanDepth {
		if depth != 0 {
			t.Fatalf("async span %s left %d unbalanced begin(s)", k, depth)
		}
	}
}

// TestMultiFansOut checks the fan-out combinator: both sinks see the same
// events, and nil/singleton edge cases collapse correctly.
func TestMultiFansOut(t *testing.T) {
	if obs.Multi() != nil {
		t.Fatal("Multi() should be nil (tracing off)")
	}
	c := obs.NewCounters()
	if obs.Multi(c, nil) != obs.Probe(c) {
		t.Fatal("Multi(c, nil) should collapse to c itself")
	}
	c2 := obs.NewCounters()
	m := obs.Multi(c, c2)
	m.JobSubmitted(1, 7)
	m.JobDone(5, 7, 4)
	for i, cc := range []*obs.Counters{c, c2} {
		s := cc.Snapshot()
		if s.JobsSubmitted != 1 || s.JobsCompleted != 1 {
			t.Fatalf("sink %d missed events: %+v", i, s)
		}
	}
	if fc := obs.FindCounters(m); fc != c {
		t.Fatalf("FindCounters(multi) = %p, want first counters %p", fc, c)
	}
}

func TestCountersSnapshotIsDetached(t *testing.T) {
	c := obs.NewCounters()
	c.QueueDemote(1, 1, 0, 1, 5)
	s := c.Snapshot()
	c.QueueDemote(2, 2, 0, 1, 6)
	if s.Demotions[1] != 1 {
		t.Fatalf("snapshot mutated by later events: %v", s.Demotions)
	}
	s2 := c.Snapshot()
	if s2.Demotions[1] != 2 || s2.TotalDemotions() != 2 {
		t.Fatalf("second snapshot wrong: %v", s2.Demotions)
	}
	var buf bytes.Buffer
	s2.WriteSummary(&buf)
	if !bytes.Contains(buf.Bytes(), []byte("demotions")) {
		t.Fatalf("summary missing demotions line:\n%s", buf.String())
	}
	if _, err := fmt.Fprintf(&buf, "%v", s2.SkippedRoundRatio()); err != nil {
		t.Fatal(err)
	}
}
