package obs

import (
	"io"
	"strconv"
)

// Prometheus text exposition (version 0.0.4), hand-written against the
// stdlib only. Output is byte-deterministic for a given state: metric
// families emit in a fixed order, histogram buckets in ascending bound
// order, and floats through strconv's shortest round-trip form — pinned by
// a golden test, so scrapers and humans can diff two scrapes textually.

// WritePrometheus writes snap (if non-nil) as counter/gauge families and
// hists (if non-nil) as histogram families, all under the lasmq_ prefix.
func WritePrometheus(w io.Writer, snap *CounterSnapshot, hists *Histograms) error {
	pw := promWriter{w: w, buf: make([]byte, 0, 256)}
	if snap != nil {
		pw.counter("lasmq_jobs_submitted_total", "Jobs that arrived at the admission queue.", float64(snap.JobsSubmitted))
		pw.counter("lasmq_jobs_admitted_total", "Jobs released by the admission queue to the scheduler.", float64(snap.JobsAdmitted))
		pw.counter("lasmq_jobs_completed_total", "Jobs whose last stage completed.", float64(snap.JobsCompleted))
		pw.gauge("lasmq_admission_backlog_peak", "High-water mark of submitted-but-not-admitted jobs.", float64(snap.PeakAdmissionBacklog))
		pw.gauge("lasmq_admission_wait_max_seconds", "Longest admission wait observed.", snap.MaxAdmissionWait)
		pw.counter("lasmq_tasks_launched_total", "Task attempts launched, including speculative copies.", float64(snap.TasksLaunched))
		pw.counter("lasmq_tasks_completed_total", "Task attempts that completed their task.", float64(snap.TasksCompleted))
		pw.counter("lasmq_task_failures_total", "Task attempts that failed and were re-queued.", float64(snap.TaskFailures))
		pw.counter("lasmq_spec_launches_total", "Speculative task copies launched.", float64(snap.SpecLaunches))
		pw.counter("lasmq_spec_wins_total", "Speculative copies that beat the original attempt.", float64(snap.SpecWins))
		pw.demotions(snap.Demotions)
		pw.counter("lasmq_threshold_refits_total", "Adaptive demotion-ladder refits.", float64(snap.Refits))
		pw.counter("lasmq_rounds_executed_total", "Full scheduling rounds executed.", float64(snap.RoundsExecuted))
		pw.counter("lasmq_rounds_skipped_total", "Scheduling rounds proven unable to launch work and skipped.", float64(snap.RoundsSkipped))
		pw.counter("lasmq_rounds_observed_total", "Skipped rounds that replayed policy observation.", float64(snap.RoundsObserved))
		pw.counter("lasmq_eventq_migrations_total", "Event-queue heap-to-ladder migrations.", float64(snap.EventqMigrations))
		pw.counter("lasmq_arena_reuses_total", "Runs served by a recycled slab arena.", float64(snap.ArenaReuses))
		pw.gauge("lasmq_slab_peak_live", "Peak live slab free-list records.", float64(snap.SlabPeakLive))
		pw.counter("lasmq_slab_recycled_total", "Slab allocations served by recycling a completed record.", float64(snap.SlabRecycled))
	}
	if hists != nil {
		for _, nh := range hists.SnapshotAll() {
			pw.histogram(nh.Name, nh.HistogramSnapshot)
		}
	}
	return pw.err
}

// promHistogramMeta maps a Histograms sink name to its exposition name and
// help line. Units: virtual-time seconds except slowdown (a ratio) and
// round latency (wall-clock seconds).
func promHistogramMeta(name string) (metric, help string) {
	switch name {
	case HistAdmissionWait:
		return "lasmq_admission_wait_seconds", "Admission-queue wait per admitted job (virtual time)."
	case HistResponse:
		return "lasmq_response_seconds", "Job response time (virtual time)."
	case HistRoundLatency:
		return "lasmq_round_latency_seconds", "Wall-clock time per scheduling round spent in the policy."
	case HistSlowdown:
		return "lasmq_slowdown_ratio", "Job slowdown: response time over isolated runtime (fluid substrate)."
	case HistTaskDuration:
		return "lasmq_task_duration_seconds", "Task attempt duration (virtual time)."
	}
	return "lasmq_" + name, name + "."
}

type promWriter struct {
	w   io.Writer
	buf []byte
	err error
}

func (p *promWriter) flush() {
	if p.err == nil {
		_, p.err = p.w.Write(p.buf)
	}
	p.buf = p.buf[:0]
}

func (p *promWriter) header(name, help, typ string) {
	p.buf = append(p.buf, "# HELP "...)
	p.buf = append(p.buf, name...)
	p.buf = append(p.buf, ' ')
	p.buf = append(p.buf, help...)
	p.buf = append(p.buf, "\n# TYPE "...)
	p.buf = append(p.buf, name...)
	p.buf = append(p.buf, ' ')
	p.buf = append(p.buf, typ...)
	p.buf = append(p.buf, '\n')
}

func (p *promWriter) value(v float64) {
	p.buf = strconv.AppendFloat(p.buf, v, 'g', -1, 64)
	p.buf = append(p.buf, '\n')
}

func (p *promWriter) counter(name, help string, v float64) {
	p.header(name, help, "counter")
	p.buf = append(p.buf, name...)
	p.buf = append(p.buf, ' ')
	p.value(v)
	p.flush()
}

func (p *promWriter) gauge(name, help string, v float64) {
	p.header(name, help, "gauge")
	p.buf = append(p.buf, name...)
	p.buf = append(p.buf, ' ')
	p.value(v)
	p.flush()
}

// demotions emits the per-destination-queue demotion counter family in
// ascending queue order (the slice index is the queue, so order is
// inherently deterministic).
func (p *promWriter) demotions(counts []int64) {
	p.header("lasmq_queue_demotions_total", "LAS_MQ demotions by destination queue.", "counter")
	for q, n := range counts {
		p.buf = append(p.buf, `lasmq_queue_demotions_total{queue="`...)
		p.buf = strconv.AppendInt(p.buf, int64(q), 10)
		p.buf = append(p.buf, `"} `...)
		p.value(float64(n))
	}
	p.flush()
}

// histogram emits one histogram family: cumulative counts at each non-empty
// bucket's upper bound, the mandatory +Inf bucket, then _sum and _count.
// Out-of-range observations (v <= 0) are below every bound, so they join
// the first bucket's cumulative count.
func (p *promWriter) histogram(name string, snap HistogramSnapshot) {
	metric, help := promHistogramMeta(name)
	p.header(metric, help, "histogram")
	cum := snap.OutOfRange
	for _, b := range snap.Buckets {
		cum += b.Count
		p.buf = append(p.buf, metric...)
		p.buf = append(p.buf, `_bucket{le="`...)
		p.buf = strconv.AppendFloat(p.buf, b.Upper, 'g', -1, 64)
		p.buf = append(p.buf, `"} `...)
		p.value(float64(cum))
	}
	p.buf = append(p.buf, metric...)
	p.buf = append(p.buf, `_bucket{le="+Inf"} `...)
	p.value(float64(snap.Count))
	p.buf = append(p.buf, metric...)
	p.buf = append(p.buf, "_sum "...)
	p.value(snap.Sum)
	p.buf = append(p.buf, metric...)
	p.buf = append(p.buf, "_count "...)
	p.value(float64(snap.Count))
	p.flush()
}

// WriteSchedHist writes the /debug/schedhist JSON document: every histogram
// snapshot as an array in the fixed sorted name order (never a map, so key
// order cannot depend on Go's map iteration), hand-encoded like the JSONL
// sink for byte determinism.
func WriteSchedHist(w io.Writer, hists *Histograms) error {
	buf := make([]byte, 0, 1024)
	buf = append(buf, "{\"histograms\":["...)
	for i, nh := range hists.SnapshotAll() {
		if i > 0 {
			buf = append(buf, ',')
		}
		buf = appendHistJSON(buf, nh.Name, nh.HistogramSnapshot)
	}
	buf = append(buf, "]}\n"...)
	_, err := w.Write(buf)
	return err
}

func appendHistJSON(buf []byte, name string, s HistogramSnapshot) []byte {
	buf = append(buf, `{"name":"`...)
	buf = append(buf, name...)
	buf = append(buf, `","count":`...)
	buf = strconv.AppendInt(buf, s.Count, 10)
	buf = append(buf, `,"sum":`...)
	buf = strconv.AppendFloat(buf, s.Sum, 'g', -1, 64)
	buf = append(buf, `,"min":`...)
	buf = strconv.AppendFloat(buf, s.Min, 'g', -1, 64)
	buf = append(buf, `,"max":`...)
	buf = strconv.AppendFloat(buf, s.Max, 'g', -1, 64)
	buf = append(buf, `,"mean":`...)
	buf = strconv.AppendFloat(buf, s.Mean, 'g', -1, 64)
	for _, q := range [...]struct {
		key string
		v   float64
	}{{"p50", s.P50}, {"p90", s.P90}, {"p95", s.P95}, {"p99", s.P99}, {"p999", s.P999}} {
		buf = append(buf, `,"`...)
		buf = append(buf, q.key...)
		buf = append(buf, `":`...)
		buf = strconv.AppendFloat(buf, q.v, 'g', -1, 64)
	}
	if s.OutOfRange > 0 {
		buf = append(buf, `,"out_of_range":`...)
		buf = strconv.AppendInt(buf, s.OutOfRange, 10)
	}
	buf = append(buf, `,"buckets":[`...)
	for i, b := range s.Buckets {
		if i > 0 {
			buf = append(buf, ',')
		}
		buf = append(buf, `{"le":`...)
		buf = strconv.AppendFloat(buf, b.Upper, 'g', -1, 64)
		buf = append(buf, `,"count":`...)
		buf = strconv.AppendInt(buf, b.Count, 10)
		buf = append(buf, '}')
	}
	buf = append(buf, "]}"...)
	return buf
}

// WriteHistogramCSV writes every histogram's summary row plus its non-empty
// buckets in the fixed sorted name order:
//
//	hist,kind,le,count,sum,min,max,mean,p50,p90,p95,p99,p999
//
// kind is "summary" for the per-histogram aggregate row (le empty) and
// "bucket" for one bucket's own count at upper bound le. This is the
// -hist-out format of lasmq-sim / lasmq-bench.
func WriteHistogramCSV(w io.Writer, hists *Histograms) error {
	buf := make([]byte, 0, 256)
	buf = append(buf, "hist,kind,le,count,sum,min,max,mean,p50,p90,p95,p99,p999\n"...)
	if _, err := w.Write(buf); err != nil {
		return err
	}
	for _, nh := range hists.SnapshotAll() {
		s := nh.HistogramSnapshot
		buf = buf[:0]
		buf = append(buf, nh.Name...)
		buf = append(buf, ",summary,,"...)
		buf = strconv.AppendInt(buf, s.Count, 10)
		for _, v := range [...]float64{s.Sum, s.Min, s.Max, s.Mean, s.P50, s.P90, s.P95, s.P99, s.P999} {
			buf = append(buf, ',')
			buf = strconv.AppendFloat(buf, v, 'g', -1, 64)
		}
		buf = append(buf, '\n')
		for _, b := range s.Buckets {
			buf = append(buf, nh.Name...)
			buf = append(buf, ",bucket,"...)
			buf = strconv.AppendFloat(buf, b.Upper, 'g', -1, 64)
			buf = append(buf, ',')
			buf = strconv.AppendInt(buf, b.Count, 10)
			buf = append(buf, ",,,,,,,,,\n"...)
		}
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	return nil
}
