package obs

import (
	"strings"
	"testing"
)

// TestSeriesSampling drives a small synthetic run through the Series sink
// and checks the gauges, windowing and CSV shape.
func TestSeriesSampling(t *testing.T) {
	s := NewSeries(10, 4)
	s.JobSubmitted(0, 1)
	s.JobSubmitted(0, 2)
	s.QueueEnter(0, 1, 0)
	s.QueueEnter(0, 2, 0)
	s.TaskStart(0, 1, 0, 0, 1, false)
	s.TaskStart(0, 2, 0, 0, 1, false)
	s.RoundExecuted(0, 2) // establishes the window origin, no point yet
	if len(s.Points()) != 0 {
		t.Fatal("first round boundary should only start the window")
	}
	s.QueueDemote(5, 1, 0, 1, 100)
	s.RoundExecuted(5, 2) // inside the window: no sample
	if len(s.Points()) != 0 {
		t.Fatal("mid-window round sampled a point")
	}
	s.TaskDone(12, 2, 0, 0, 0, false)
	s.JobDone(12, 2, 12)
	s.QueueExit(12, 2, 0)
	s.RoundExecuted(12, 1) // crosses the t=10 edge: sample
	pts := s.Points()
	if len(pts) != 1 {
		t.Fatalf("got %d points, want 1", len(pts))
	}
	pt := pts[0]
	if pt.Time != 12 || pt.LiveJobs != 1 || pt.RunningTasks != 1 {
		t.Fatalf("point = %+v, want time 12, 1 live job, 1 running task", pt)
	}
	if pt.QueueDepth[0] != 0 || pt.QueueDepth[1] != 1 {
		t.Fatalf("queue depths = %v, want job 1 demoted to level 1", pt.QueueDepth)
	}
	if pt.Utilization != 0.25 {
		t.Fatalf("utilization = %g, want 1/4", pt.Utilization)
	}
	if pt.EventsPerSec <= 0 {
		t.Fatalf("events/sec = %g, want > 0", pt.EventsPerSec)
	}

	var sb strings.Builder
	if err := s.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("CSV has %d lines, want header + 1 point", len(lines))
	}
	if want := "time,utilization,live_jobs,running_tasks,events_per_sec,q0,q1,q2,q3,q4,q5,q6,q7"; lines[0] != want {
		t.Fatalf("CSV header = %q, want %q", lines[0], want)
	}
	if !strings.HasPrefix(lines[1], "12,0.25,1,1,") {
		t.Fatalf("CSV point = %q", lines[1])
	}
}

// TestSeriesDeepLevelsClamp checks queue levels beyond SeriesLevels fold
// into the last tracked slot instead of indexing out of bounds.
func TestSeriesDeepLevelsClamp(t *testing.T) {
	s := NewSeries(1, 0)
	s.QueueEnter(0, 1, SeriesLevels+5)
	s.QueueDemote(0, 1, SeriesLevels+5, SeriesLevels+6, 1)
	s.RoundExecuted(0, 1)
	s.RoundExecuted(2, 1)
	pts := s.Points()
	if len(pts) != 1 {
		t.Fatalf("got %d points, want 1", len(pts))
	}
	if d := pts[0].QueueDepth[SeriesLevels-1]; d != 1 {
		t.Fatalf("deep level depth = %d, want 1 (clamped)", d)
	}
}
