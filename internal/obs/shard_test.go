package obs

import "testing"

func TestForShardNilStaysNil(t *testing.T) {
	if p := ForShard(nil, 3); p != nil {
		t.Fatalf("ForShard(nil) = %v, want nil (zero-overhead contract)", p)
	}
}

func TestForShardPassesThroughPlainProbes(t *testing.T) {
	var plain Nop
	if p := ForShard(plain, 2); p != Probe(plain) {
		t.Fatalf("plain probe should pass through unchanged, got %T", p)
	}
}

func TestCountersShardProbe(t *testing.T) {
	c := NewCounters()
	p0 := ForShard(Probe(c), 0)
	p1 := ForShard(Probe(c), 1)

	p0.SlabStats(0, 0, 100, 7)
	p0.RoundExecuted(0, 3)
	p1.SlabStats(0, 0, 40, 5)
	p1.RoundExecuted(0, 2)
	p1.RoundSkipped(0, false)

	global := c.Snapshot()
	if global.SlabPeakLive != 100 || global.SlabRecycled != 12 {
		t.Fatalf("global slab peak/recycled = %d/%d, want 100/12", global.SlabPeakLive, global.SlabRecycled)
	}
	if global.RoundsExecuted != 2 || global.RoundsSkipped != 1 {
		t.Fatalf("global rounds = %d/%d, want 2/1", global.RoundsExecuted, global.RoundsSkipped)
	}

	if n := c.ShardCount(); n != 2 {
		t.Fatalf("ShardCount = %d, want 2", n)
	}
	s0, ok := c.ShardSnapshot(0)
	if !ok || s0.SlabPeakLive != 100 || s0.SlabRecycled != 7 || s0.RoundsExecuted != 1 {
		t.Fatalf("shard 0 snapshot = %+v ok=%v", s0, ok)
	}
	s1, ok := c.ShardSnapshot(1)
	if !ok || s1.SlabPeakLive != 40 || s1.SlabRecycled != 5 || s1.RoundsExecuted != 1 || s1.RoundsSkipped != 1 {
		t.Fatalf("shard 1 snapshot = %+v ok=%v", s1, ok)
	}
	if _, ok := c.ShardSnapshot(9); ok {
		t.Fatal("unknown shard should report !ok")
	}
}

func TestForShardRebuildsMulti(t *testing.T) {
	c := NewCounters()
	j := NewCounters() // stands in for a second sink in the multi
	p := ForShard(Multi(c, j), 4)
	p.RoundExecuted(0, 1)

	if got := c.Snapshot().RoundsExecuted; got != 1 {
		t.Fatalf("first sink rounds = %d, want 1", got)
	}
	if got := j.Snapshot().RoundsExecuted; got != 1 {
		t.Fatalf("second sink rounds = %d, want 1", got)
	}
	if s, ok := c.ShardSnapshot(4); !ok || s.RoundsExecuted != 1 {
		t.Fatalf("shard 4 view of first sink = %+v ok=%v", s, ok)
	}
	// FindCounters must still find a Counters through the shard fan-in so
	// substrates keep folding final snapshots into results.
	if FindCounters(p) == nil {
		t.Fatal("FindCounters lost the Counters through ForShard")
	}
}
