package obs

import (
	"encoding/json"
	"io"
	"sort"
)

// ChromeTrace is a Probe sink that renders a run in the Chrome trace-event
// JSON format, loadable in chrome://tracing or Perfetto (ui.perfetto.dev).
// Jobs appear as threads of a "jobs" process: each job track carries one
// complete ("X") slice spanning the whole job with its task attempts nested
// inside, plus async ("b"/"e") spans for the job's residency in each LAS_MQ
// queue level. Scheduler-wide moments (threshold refits, eventq migrations)
// appear as instant events on a separate "scheduler" process. All
// timestamps are virtual time scaled to microseconds.
//
// Events accumulate in memory; Export sorts them by timestamp (stably, so
// equal-time events keep emission order) and writes the JSON array.
type ChromeTrace struct {
	Nop
	events []chromeEvent
	seen   map[int]bool
	// open tracks queue spans begun but not yet ended, so Export can close
	// the spans of jobs still resident in a queue when the trace stops (the
	// scheduler only detects departures on its next round, which an ending
	// run never executes).
	open  map[[2]int]int // (job, queue) -> open depth
	maxTs float64
}

type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  *float64       `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	ID   int            `json:"id,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

const (
	chromeJobsPid  = 0 // one thread per job
	chromeSchedPid = 1 // scheduler-wide instants
)

// NewChromeTrace returns an empty ChromeTrace sink.
func NewChromeTrace() *ChromeTrace {
	t := &ChromeTrace{seen: make(map[int]bool), open: make(map[[2]int]int)}
	t.meta(chromeJobsPid, 0, "process_name", "jobs")
	t.meta(chromeSchedPid, 0, "process_name", "scheduler")
	return t
}

func (t *ChromeTrace) meta(pid, tid int, key, name string) {
	t.events = append(t.events, chromeEvent{
		Name: key, Ph: "M", Pid: pid, Tid: tid,
		Args: map[string]any{"name": name},
	})
}

// track registers a named thread for a job the first time it is seen.
func (t *ChromeTrace) track(job int) {
	if !t.seen[job] {
		t.seen[job] = true
		t.meta(chromeJobsPid, job, "thread_name", "job "+itoa(job))
	}
}

func itoa(v int) string {
	// small positive IDs only; avoids pulling strconv into the hot path
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	neg := v < 0
	if neg {
		v = -v
	}
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}

const usec = 1e6 // virtual seconds -> trace microseconds

func (t *ChromeTrace) JobSubmitted(now float64, job int) {
	t.track(job)
	t.events = append(t.events, chromeEvent{
		Name: "submitted", Cat: "job", Ph: "i",
		Ts: now * usec, Pid: chromeJobsPid, Tid: job,
	})
	t.stamp(now * usec)
}

func (t *ChromeTrace) JobDone(now float64, job int, response float64) {
	t.track(job)
	dur := response * usec
	t.events = append(t.events, chromeEvent{
		Name: "job", Cat: "job", Ph: "X",
		Ts: (now - response) * usec, Dur: &dur,
		Pid: chromeJobsPid, Tid: job,
	})
	t.stamp(now * usec)
}

func (t *ChromeTrace) TaskDone(now float64, job, stage, task int, start float64, speculative bool) {
	t.track(job)
	dur := (now - start) * usec
	ev := chromeEvent{
		Name: "s" + itoa(stage) + "/t" + itoa(task), Cat: "task", Ph: "X",
		Ts: start * usec, Dur: &dur, Pid: chromeJobsPid, Tid: job,
	}
	if speculative {
		ev.Args = map[string]any{"speculative": true}
	}
	t.events = append(t.events, ev)
	t.stamp(now * usec)
}

func (t *ChromeTrace) TaskFail(now float64, job, stage, task int, start float64) {
	t.track(job)
	dur := (now - start) * usec
	t.events = append(t.events, chromeEvent{
		Name: "s" + itoa(stage) + "/t" + itoa(task) + " FAIL", Cat: "task", Ph: "X",
		Ts: start * usec, Dur: &dur, Pid: chromeJobsPid, Tid: job,
		Args: map[string]any{"failed": true},
	})
	t.stamp(now * usec)
}

func (t *ChromeTrace) QueueEnter(now float64, job, queue int) {
	t.track(job)
	t.span(now, job, queue, "b")
}

func (t *ChromeTrace) QueueDemote(now float64, job, from, to int, attained float64) {
	t.track(job)
	t.span(now, job, from, "e")
	t.span(now, job, to, "b")
}

func (t *ChromeTrace) QueueExit(now float64, job, queue int) {
	t.track(job)
	t.span(now, job, queue, "e")
}

// span emits one end of a queue-residency async span. Spans pair up by
// (cat, id, name), so each (job, queue level) stretch is its own span on
// the job's async row.
func (t *ChromeTrace) span(now float64, job, queue int, ph string) {
	t.events = append(t.events, chromeEvent{
		Name: "Q" + itoa(queue), Cat: "queue", Ph: ph,
		Ts: now * usec, Pid: chromeJobsPid, Tid: job, ID: job + 1,
	})
	if ph == "b" {
		t.open[[2]int{job, queue}]++
	} else {
		t.open[[2]int{job, queue}]--
		if t.open[[2]int{job, queue}] == 0 {
			delete(t.open, [2]int{job, queue})
		}
	}
	t.stamp(now * usec)
}

// stamp advances the end-of-trace high-water mark.
func (t *ChromeTrace) stamp(ts float64) {
	if ts > t.maxTs {
		t.maxTs = ts
	}
}

func (t *ChromeTrace) ThresholdRefit(now, first, step float64) {
	t.events = append(t.events, chromeEvent{
		Name: "refit", Cat: "scheduler", Ph: "i",
		Ts: now * usec, Pid: chromeSchedPid, Tid: 0,
		Args: map[string]any{"first": first, "step": step},
	})
}

func (t *ChromeTrace) EventqMigrate(now float64, pending int) {
	t.events = append(t.events, chromeEvent{
		Name: "eventq migrate", Cat: "scheduler", Ph: "i",
		Ts: now * usec, Pid: chromeSchedPid, Tid: 0,
		Args: map[string]any{"pending": pending},
	})
}

func (t *ChromeTrace) SlabStats(now float64, live, peak, recycled int) {
	t.events = append(t.events, chromeEvent{
		Name: "slab free-list", Cat: "scheduler", Ph: "i",
		Ts: now * usec, Pid: chromeSchedPid, Tid: 0,
		Args: map[string]any{"live": live, "peak": peak, "recycled": recycled},
	})
	t.stamp(now * usec)
}

// Export closes the queue spans of jobs still resident at end of trace,
// sorts the collected events by timestamp (metadata first), and writes the
// Chrome trace JSON array.
func (t *ChromeTrace) Export(w io.Writer) error {
	openKeys := make([][2]int, 0, len(t.open))
	for k := range t.open {
		openKeys = append(openKeys, k)
	}
	sort.Slice(openKeys, func(i, k int) bool {
		if openKeys[i][0] != openKeys[k][0] {
			return openKeys[i][0] < openKeys[k][0]
		}
		return openKeys[i][1] < openKeys[k][1]
	})
	for _, k := range openKeys {
		for n := t.open[k]; n > 0; n-- {
			t.events = append(t.events, chromeEvent{
				Name: "Q" + itoa(k[1]), Cat: "queue", Ph: "e",
				Ts: t.maxTs, Pid: chromeJobsPid, Tid: k[0], ID: k[0] + 1,
			})
		}
		delete(t.open, k)
	}
	sort.SliceStable(t.events, func(i, k int) bool {
		a, b := t.events[i], t.events[k]
		if (a.Ph == "M") != (b.Ph == "M") {
			return a.Ph == "M"
		}
		return a.Ts < b.Ts
	})
	data, err := json.Marshal(t.events)
	if err != nil {
		return err
	}
	_, err = w.Write(append(data, '\n'))
	return err
}
