package obs

import (
	"math"
	"sort"
	"sync"
)

// Histogram bucketing: base-2 log scale with 8 sub-buckets per octave
// (subBits=3), covering 2^-64 .. 2^64 — ~38 decimal orders of magnitude at
// ≤ 12.5% relative bucket width, wide enough for admission waits measured in
// milliseconds and 10M-job makespans alike. Values at or below zero (and
// NaN) land in a dedicated out-of-range tally; values beyond the range
// clamp to the edge buckets. The bucket array is fixed-size, so Observe
// never allocates.
const (
	histSubBits    = 3
	histSubBuckets = 1 << histSubBits
	histMinExp     = -64
	histMaxExp     = 64
	histBuckets    = (histMaxExp - histMinExp) * histSubBuckets
)

// Histogram is an allocation-free log-scale histogram. It is a plain value
// (no internal locking): single-writer on the record path, with the owning
// sink providing synchronization for snapshots. The zero value is ready to
// use.
type Histogram struct {
	counts [histBuckets]int64
	// outOfRange tallies observations the log buckets cannot place:
	// v <= 0 and NaN. They still count toward Count/Sum/Min/Max and rank
	// below every bucket for quantile purposes.
	outOfRange int64
	count      int64
	sum        float64
	min, max   float64
}

// bucketIndex places a positive finite v: Frexp splits v = frac * 2^exp
// with frac in [0.5, 1), the octave selects the bucket group, and frac
// linearly selects one of the 8 sub-buckets within it.
func bucketIndex(v float64) int {
	frac, exp := math.Frexp(v)
	e := exp - histMinExp
	if e < 0 {
		return 0
	}
	if e >= histMaxExp-histMinExp {
		return histBuckets - 1
	}
	sub := int((frac - 0.5) * (2 * histSubBuckets))
	if sub >= histSubBuckets {
		sub = histSubBuckets - 1
	}
	return e<<histSubBits | sub
}

// BucketBounds returns bucket i's half-open value range (lo, hi]: values v
// with lo < v <= hi are counted in bucket i (up to edge clamping).
func BucketBounds(i int) (lo, hi float64) {
	e := i>>histSubBits + histMinExp
	sub := i & (histSubBuckets - 1)
	lo = math.Ldexp(0.5+float64(sub)/(2*histSubBuckets), e)
	hi = math.Ldexp(0.5+float64(sub+1)/(2*histSubBuckets), e)
	return lo, hi
}

// Observe records one value. It never allocates.
func (h *Histogram) Observe(v float64) {
	h.count++
	h.sum += v
	if h.count == 1 {
		h.min, h.max = v, v
	} else {
		if v < h.min {
			h.min = v
		}
		if v > h.max {
			h.max = v
		}
	}
	if v > 0 && !math.IsNaN(v) {
		h.counts[bucketIndex(v)]++
	} else {
		h.outOfRange++
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count }

// Sum returns the running sum of observations.
func (h *Histogram) Sum() float64 { return h.sum }

// Mean returns the mean observation, or 0 with no observations.
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

// Merge folds o into h. The merge contract is exact on all integer state:
// bucket counts, Count, Min, Max and the out-of-range tally are identical
// whether events were observed directly or merged from per-shard
// histograms, in any merge order (bucket addition is associative and
// commutative) — there is no sketch-style approximation. Sum is a float
// accumulation, so re-associating it (per-shard subtotals vs. one global
// stream) can differ in the last ulps; consumers needing a distribution
// identity compare BucketsEqual, not Sum.
func (h *Histogram) Merge(o *Histogram) {
	if o.count == 0 {
		return
	}
	if h.count == 0 {
		h.min, h.max = o.min, o.max
	} else {
		if o.min < h.min {
			h.min = o.min
		}
		if o.max > h.max {
			h.max = o.max
		}
	}
	h.count += o.count
	h.sum += o.sum
	h.outOfRange += o.outOfRange
	for i, n := range o.counts {
		if n != 0 {
			h.counts[i] += n
		}
	}
}

// Quantile returns an estimate of the q-quantile (q in [0, 1]) by walking
// the cumulative bucket counts and interpolating linearly inside the
// selected bucket. Out-of-range observations rank below every bucket. With
// no observations it returns 0; the estimate's relative error is bounded by
// the sub-bucket width (≤ 12.5%).
func (h *Histogram) Quantile(q float64) float64 {
	if h.count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(h.count)
	cum := float64(h.outOfRange)
	if rank <= cum && h.outOfRange > 0 {
		return h.min
	}
	for i, n := range h.counts {
		if n == 0 {
			continue
		}
		next := cum + float64(n)
		if rank <= next {
			lo, hi := BucketBounds(i)
			frac := (rank - cum) / float64(n)
			v := lo + frac*(hi-lo)
			// Clamp to the observed extremes so single-bucket histograms
			// report the exact value, not the bucket edge.
			if v < h.min {
				v = h.min
			}
			if v > h.max {
				v = h.max
			}
			return v
		}
		cum = next
	}
	return h.max
}

// HistogramBucket is one non-empty bucket in a snapshot: the bucket's
// inclusive upper bound and its own (non-cumulative) count.
type HistogramBucket struct {
	Upper float64 `json:"le"`
	Count int64   `json:"count"`
}

// HistogramSnapshot is an immutable copy of a Histogram with derived
// quantiles, the form served by /debug/schedhist and written to CSV.
type HistogramSnapshot struct {
	Count      int64             `json:"count"`
	Sum        float64           `json:"sum"`
	Min        float64           `json:"min"`
	Max        float64           `json:"max"`
	Mean       float64           `json:"mean"`
	P50        float64           `json:"p50"`
	P90        float64           `json:"p90"`
	P95        float64           `json:"p95"`
	P99        float64           `json:"p99"`
	P999       float64           `json:"p999"`
	OutOfRange int64             `json:"out_of_range,omitempty"`
	Buckets    []HistogramBucket `json:"buckets,omitempty"`
}

// Snapshot copies the histogram's state, materializing only non-empty
// buckets in ascending bound order.
func (h *Histogram) Snapshot() HistogramSnapshot {
	snap := HistogramSnapshot{
		Count:      h.count,
		Sum:        h.sum,
		Min:        h.min,
		Max:        h.max,
		Mean:       h.Mean(),
		P50:        h.Quantile(0.50),
		P90:        h.Quantile(0.90),
		P95:        h.Quantile(0.95),
		P99:        h.Quantile(0.99),
		P999:       h.Quantile(0.999),
		OutOfRange: h.outOfRange,
	}
	for i, n := range h.counts {
		if n != 0 {
			_, hi := BucketBounds(i)
			snap.Buckets = append(snap.Buckets, HistogramBucket{Upper: hi, Count: n})
		}
	}
	return snap
}

// BucketsEqual reports whether two histograms hold identical integer state
// bucket-for-bucket: counts, Count, Min, Max and the out-of-range tally.
// Sum is deliberately excluded — it is an order-dependent float
// accumulation (see Merge).
func (h *Histogram) BucketsEqual(o *Histogram) bool {
	if h.count != o.count || h.outOfRange != o.outOfRange {
		return false
	}
	if h.count > 0 && (h.min != o.min || h.max != o.max) {
		return false
	}
	return h.counts == o.counts
}

// Histogram names, in the fixed sorted order every exposition surface
// (Prometheus text, schedhist JSON, CSV) emits them.
const (
	HistAdmissionWait = "admission_wait"
	HistResponse      = "response"
	HistRoundLatency  = "round_latency"
	HistSlowdown      = "slowdown"
	HistTaskDuration  = "task_duration"
)

// HistogramNames lists the Histograms sink's histogram names in emission
// (sorted) order.
func HistogramNames() []string {
	return []string{HistAdmissionWait, HistResponse, HistRoundLatency, HistSlowdown, HistTaskDuration}
}

// Histograms is the distribution-aggregating Probe sink: log-scale
// histograms of job response time, slowdown, admission wait, task duration
// and per-round wall-clock scheduler latency. The record path takes one
// uncontended mutex (snapshots may race it on the live cluster) and never
// allocates — enforced, like the Ring, by the probe-gate zero-alloc test.
//
// Response, admission wait and task duration feed from the generic probe
// events; slowdown and round latency are pushed by the substrates through
// the SlowdownObserver / RoundLatencyObserver side-channels, because neither
// is a simulation event (slowdown is fluid-only derived state, round latency
// is wall-clock and would poison deterministic event-stream sinks).
type Histograms struct {
	mu            sync.Mutex
	response      Histogram
	slowdown      Histogram
	admissionWait Histogram
	taskDuration  Histogram
	roundLatency  Histogram
	// shards holds per-shard sub-sinks derived via ShardProbe, keyed by
	// shard index (nil until a sharded run attaches this sink).
	shards map[int]*Histograms
	Nop
}

// NewHistograms returns an empty Histograms sink.
func NewHistograms() *Histograms { return &Histograms{} }

// SlowdownObserver receives job slowdowns (response / isolated runtime).
// The fluid simulator resolves it from its probe once (FindHistograms) and
// pushes at each job completion.
type SlowdownObserver interface {
	ObserveSlowdown(slowdown float64)
}

// RoundLatencyObserver receives the wall-clock seconds one scheduling round
// spent inside the policy. substrate.Driver resolves it from its probe once
// at SetProbe and pushes per executed round. Wall-clock latency deliberately
// bypasses the Probe event stream: it differs run to run, and the JSONL /
// ChromeTrace sinks must stay byte-deterministic.
type RoundLatencyObserver interface {
	ObserveRoundLatency(seconds float64)
}

// FindHistograms returns the first Histograms sink reachable from p — p
// itself or a member of a (possibly nested) Multi — mirroring FindCounters,
// so substrates can resolve the side-channel observers once per run.
func FindHistograms(p Probe) *Histograms {
	switch v := p.(type) {
	case *Histograms:
		return v
	case multi:
		for _, q := range v {
			if h := FindHistograms(q); h != nil {
				return h
			}
		}
	}
	return nil
}

func (h *Histograms) JobAdmitted(_ float64, _ int, waited float64) {
	h.mu.Lock()
	h.admissionWait.Observe(waited)
	h.mu.Unlock()
}

func (h *Histograms) JobDone(_ float64, _ int, response float64) {
	h.mu.Lock()
	h.response.Observe(response)
	h.mu.Unlock()
}

func (h *Histograms) TaskDone(now float64, _, _, _ int, start float64, _ bool) {
	h.mu.Lock()
	h.taskDuration.Observe(now - start)
	h.mu.Unlock()
}

// ObserveSlowdown implements SlowdownObserver.
func (h *Histograms) ObserveSlowdown(slowdown float64) {
	h.mu.Lock()
	h.slowdown.Observe(slowdown)
	h.mu.Unlock()
}

// ObserveRoundLatency implements RoundLatencyObserver.
func (h *Histograms) ObserveRoundLatency(seconds float64) {
	h.mu.Lock()
	h.roundLatency.Observe(seconds)
	h.mu.Unlock()
}

// get returns the histogram registered under name, or nil.
func (h *Histograms) get(name string) *Histogram {
	switch name {
	case HistAdmissionWait:
		return &h.admissionWait
	case HistResponse:
		return &h.response
	case HistRoundLatency:
		return &h.roundLatency
	case HistSlowdown:
		return &h.slowdown
	case HistTaskDuration:
		return &h.taskDuration
	}
	return nil
}

// Histogram returns a copy of the named histogram's current state and
// whether the name is known.
func (h *Histograms) Histogram(name string) (Histogram, bool) {
	g := h.get(name)
	if g == nil {
		return Histogram{}, false
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return *g, true
}

// NamedHistogram pairs a histogram name with its snapshot for ordered
// exposition surfaces.
type NamedHistogram struct {
	Name string `json:"name"`
	HistogramSnapshot
}

// SnapshotAll snapshots every histogram in the fixed sorted name order —
// the deterministic-ordering contract every summary/JSON surface follows.
func (h *Histograms) SnapshotAll() []NamedHistogram {
	h.mu.Lock()
	defer h.mu.Unlock()
	names := HistogramNames()
	out := make([]NamedHistogram, 0, len(names))
	for _, name := range names {
		out = append(out, NamedHistogram{Name: name, HistogramSnapshot: h.get(name).Snapshot()})
	}
	return out
}

// ShardProbe implements ShardSink: the returned probe feeds both the global
// histograms and a per-shard Histograms, so a sharded run's distributions
// are queryable per shard as well as merged.
func (h *Histograms) ShardProbe(shard int) Probe {
	h.mu.Lock()
	if h.shards == nil {
		h.shards = make(map[int]*Histograms)
	}
	sub, ok := h.shards[shard]
	if !ok {
		sub = NewHistograms()
		h.shards[shard] = sub
	}
	h.mu.Unlock()
	return Multi(h, sub)
}

// ShardHistogram returns a copy of one shard's named histogram and whether
// that shard ever derived a probe.
func (h *Histograms) ShardHistogram(shard int, name string) (Histogram, bool) {
	h.mu.Lock()
	sub, ok := h.shards[shard]
	h.mu.Unlock()
	if !ok {
		return Histogram{}, false
	}
	return sub.Histogram(name)
}

// ShardIndexes returns the derived shard indexes in ascending order.
func (h *Histograms) ShardIndexes() []int {
	h.mu.Lock()
	defer h.mu.Unlock()
	idx := make([]int, 0, len(h.shards))
	for i := range h.shards { // range-ok: indexes are sorted before use
		idx = append(idx, i)
	}
	sort.Ints(idx)
	return idx
}

// MergeShards folds every per-shard histogram named name in ascending
// shard-index order into a fresh Histogram. For a probed (hence serialized,
// index-ordered) sharded run the result equals the global histogram
// bucket-for-bucket (BucketsEqual) — the merge-contract test pins this.
func (h *Histograms) MergeShards(name string) Histogram {
	var merged Histogram
	for _, i := range h.ShardIndexes() {
		sub, ok := h.ShardHistogram(i, name)
		if !ok {
			continue
		}
		merged.Merge(&sub)
	}
	return merged
}
