// Package obs is the unified telemetry layer shared by the task-level
// engine, the fluid simulator, and the live mini-YARN cluster. It defines
// a typed Probe interface that substrates and schedulers call at the
// moments the paper's evaluation cares about (admission waits, LAS_MQ
// queue demotions, threshold refits, skipped scheduling rounds, event-queue
// ladder migrations, arena reuse) plus three sinks: a deterministic JSONL
// event log (JSONL), a Chrome trace-event exporter (ChromeTrace), and an
// aggregating Counters sink.
//
// Zero-overhead contract: every emission site is guarded by a nil check on
// a concrete interface field and passes only scalar arguments, so a nil
// probe costs one predicted branch — no allocations, no boxing. Attached
// probes observe but never mutate simulation state, so a probed run is
// byte-identical to an unprobed one (enforced by differential tests).
package obs

// Probe receives simulation and scheduler events. All timestamps are in
// virtual time (seconds in the engine/fluid substrates; scaled wall-clock
// seconds in the live cluster). Implementations must treat every call as
// read-only with respect to the simulation: the same run with and without
// a probe attached must produce byte-identical results.
//
// Embed Nop to implement only the events a sink cares about.
type Probe interface {
	// JobSubmitted fires when a job arrives at the admission queue.
	JobSubmitted(now float64, job int)
	// JobAdmitted fires when the admission queue releases a job to the
	// scheduler; waited is the time spent queued (now - arrival).
	JobAdmitted(now float64, job int, waited float64)
	// JobStarted fires when a job's first task attempt launches.
	JobStarted(now float64, job int)
	// StageDone fires when every task of a stage has completed.
	StageDone(now float64, job, stage int)
	// JobDone fires when the last stage completes; response is the job's
	// response time (now - arrival).
	JobDone(now float64, job int, response float64)

	// TaskStart fires per launched attempt (including speculative copies).
	TaskStart(now float64, job, stage, task, containers int, speculative bool)
	// TaskDone fires when an attempt completes its task; speculative is
	// true when a speculative copy beat the original (a spec-exec win).
	TaskDone(now float64, job, stage, task int, start float64, speculative bool)
	// TaskFail fires when an attempt fails and the task is re-queued.
	TaskFail(now float64, job, stage, task int, start float64)

	// QueueEnter fires when LAS_MQ first places a job in a queue level.
	QueueEnter(now float64, job, queue int)
	// QueueDemote fires on a demote-only queue move; attained is the
	// service metric that crossed the threshold.
	QueueDemote(now float64, job, from, to int, attained float64)
	// QueueExit fires when a job departs the multilevel queue.
	QueueExit(now float64, job, queue int)
	// ThresholdRefit fires when Adaptive refits the demotion ladder;
	// first and step describe the new geometric threshold ladder.
	ThresholdRefit(now float64, first, step float64)

	// RoundExecuted fires when the driver runs a full scheduling round
	// over jobs active views.
	RoundExecuted(now float64, jobs int)
	// RoundSkipped fires when a substrate proves a round cannot launch
	// work and skips it; observed reports whether policy observation
	// replay ran in its place.
	RoundSkipped(now float64, observed bool)

	// EventqMigrate fires when the engine's event queue migrates from the
	// binary heap to the ladder past the pending-event threshold.
	EventqMigrate(now float64, pending int)
	// ArenaReuse fires once per run with slab-arena statistics: the job
	// and task counts carved, and whether a pooled arena was reused.
	ArenaReuse(jobs, tasks int, reused bool)
	// SlabStats fires once per run (or per shard of a sharded run) with the
	// run's slab free-list statistics: records still live at the end, the
	// peak live high-water mark, and how many allocations were served by
	// recycling a completed record's slot mid-run.
	SlabStats(now float64, live, peak, recycled int)
}

// ProbeSetter is implemented by schedulers (and scheduler wrappers) that
// emit probe events. substrate.Driver forwards its probe to the policy
// through this interface, so wrapping or embedding a policy keeps the
// telemetry path intact.
type ProbeSetter interface {
	SetProbe(Probe)
}

// Nop implements Probe with no-ops. Sinks embed it so they only spell out
// the events they consume.
type Nop struct{}

func (Nop) JobSubmitted(float64, int)                      {}
func (Nop) JobAdmitted(float64, int, float64)              {}
func (Nop) JobStarted(float64, int)                        {}
func (Nop) StageDone(float64, int, int)                    {}
func (Nop) JobDone(float64, int, float64)                  {}
func (Nop) TaskStart(float64, int, int, int, int, bool)    {}
func (Nop) TaskDone(float64, int, int, int, float64, bool) {}
func (Nop) TaskFail(float64, int, int, int, float64)       {}
func (Nop) QueueEnter(float64, int, int)                   {}
func (Nop) QueueDemote(float64, int, int, int, float64)    {}
func (Nop) QueueExit(float64, int, int)                    {}
func (Nop) ThresholdRefit(float64, float64, float64)       {}
func (Nop) RoundExecuted(float64, int)                     {}
func (Nop) RoundSkipped(float64, bool)                     {}
func (Nop) EventqMigrate(float64, int)                     {}
func (Nop) ArenaReuse(int, int, bool)                      {}
func (Nop) SlabStats(float64, int, int, int)               {}

// multi fans every event out to each attached probe in order.
type multi []Probe

// Multi combines probes into one; nil entries are dropped. It returns nil
// for an empty set and the probe itself for a single one, so the zero-
// overhead nil check still short-circuits downstream.
func Multi(probes ...Probe) Probe {
	kept := make(multi, 0, len(probes))
	for _, p := range probes {
		if p != nil {
			kept = append(kept, p)
		}
	}
	switch len(kept) {
	case 0:
		return nil
	case 1:
		return kept[0]
	}
	return kept
}

// FindCounters returns the first Counters sink reachable from p — p itself
// or a member of a (possibly nested) Multi, recursing so the shard fan-in
// built by ForShard stays transparent — so substrates can fold the final
// counter snapshot into their Result.
func FindCounters(p Probe) *Counters {
	switch v := p.(type) {
	case *Counters:
		return v
	case multi:
		for _, q := range v {
			if c := FindCounters(q); c != nil {
				return c
			}
		}
	}
	return nil
}

func (m multi) JobSubmitted(now float64, job int) {
	for _, p := range m {
		p.JobSubmitted(now, job)
	}
}

func (m multi) JobAdmitted(now float64, job int, waited float64) {
	for _, p := range m {
		p.JobAdmitted(now, job, waited)
	}
}

func (m multi) JobStarted(now float64, job int) {
	for _, p := range m {
		p.JobStarted(now, job)
	}
}

func (m multi) StageDone(now float64, job, stage int) {
	for _, p := range m {
		p.StageDone(now, job, stage)
	}
}

func (m multi) JobDone(now float64, job int, response float64) {
	for _, p := range m {
		p.JobDone(now, job, response)
	}
}

func (m multi) TaskStart(now float64, job, stage, task, containers int, speculative bool) {
	for _, p := range m {
		p.TaskStart(now, job, stage, task, containers, speculative)
	}
}

func (m multi) TaskDone(now float64, job, stage, task int, start float64, speculative bool) {
	for _, p := range m {
		p.TaskDone(now, job, stage, task, start, speculative)
	}
}

func (m multi) TaskFail(now float64, job, stage, task int, start float64) {
	for _, p := range m {
		p.TaskFail(now, job, stage, task, start)
	}
}

func (m multi) QueueEnter(now float64, job, queue int) {
	for _, p := range m {
		p.QueueEnter(now, job, queue)
	}
}

func (m multi) QueueDemote(now float64, job, from, to int, attained float64) {
	for _, p := range m {
		p.QueueDemote(now, job, from, to, attained)
	}
}

func (m multi) QueueExit(now float64, job, queue int) {
	for _, p := range m {
		p.QueueExit(now, job, queue)
	}
}

func (m multi) ThresholdRefit(now, first, step float64) {
	for _, p := range m {
		p.ThresholdRefit(now, first, step)
	}
}

func (m multi) RoundExecuted(now float64, jobs int) {
	for _, p := range m {
		p.RoundExecuted(now, jobs)
	}
}

func (m multi) RoundSkipped(now float64, observed bool) {
	for _, p := range m {
		p.RoundSkipped(now, observed)
	}
}

func (m multi) EventqMigrate(now float64, pending int) {
	for _, p := range m {
		p.EventqMigrate(now, pending)
	}
}

func (m multi) ArenaReuse(jobs, tasks int, reused bool) {
	for _, p := range m {
		p.ArenaReuse(jobs, tasks, reused)
	}
}

func (m multi) SlabStats(now float64, live, peak, recycled int) {
	for _, p := range m {
		p.SlabStats(now, live, peak, recycled)
	}
}
