package obs

// ShardSink is implemented by sinks that can attribute events to the shard
// of a sharded run that emitted them. ShardProbe returns the probe a sharded
// runner should hand to shard's sub-simulation; events sent to it are
// recorded both globally and under the shard label.
type ShardSink interface {
	ShardProbe(shard int) Probe
}

// ForShard derives shard's view of p for a sharded run. Sinks that implement
// ShardSink (Counters) get a shard-labelled sub-view; a Multi is rebuilt
// member-wise; any other probe is returned unchanged, so event-stream sinks
// (JSONL, ChromeTrace) keep receiving the fan-in exactly as before — the
// sharded runners serialize execution whenever a probe is attached, so the
// combined stream stays deterministic. A nil probe stays nil, preserving the
// zero-overhead contract.
func ForShard(p Probe, shard int) Probe {
	switch v := p.(type) {
	case nil:
		return nil
	case ShardSink:
		return v.ShardProbe(shard)
	case multi:
		out := make([]Probe, len(v))
		for i, q := range v {
			out[i] = ForShard(q, shard)
		}
		return Multi(out...)
	}
	return p
}

// ShardProbe implements ShardSink: the returned probe feeds both the global
// aggregates and a per-shard Counters, so SlabStats / round events of a
// sharded run are queryable per shard (ShardSnapshot) as well as in total.
func (c *Counters) ShardProbe(shard int) Probe {
	c.mu.Lock()
	if c.shards == nil {
		c.shards = make(map[int]*Counters)
	}
	sub, ok := c.shards[shard]
	if !ok {
		sub = NewCounters()
		c.shards[shard] = sub
	}
	c.mu.Unlock()
	return Multi(c, sub)
}

// ShardSnapshot returns the aggregates of one shard's events and whether
// that shard ever emitted any (i.e. a shard probe was derived for it).
func (c *Counters) ShardSnapshot(shard int) (CounterSnapshot, bool) {
	c.mu.Lock()
	sub, ok := c.shards[shard]
	c.mu.Unlock()
	if !ok {
		return CounterSnapshot{}, false
	}
	return sub.Snapshot(), true
}

// ShardCount reports how many shard-labelled sub-sinks have been derived.
func (c *Counters) ShardCount() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.shards)
}
