package obs

import (
	"fmt"
	"io"
	"sort"
)

// ShardSink is implemented by sinks that can attribute events to the shard
// of a sharded run that emitted them. ShardProbe returns the probe a sharded
// runner should hand to shard's sub-simulation; events sent to it are
// recorded both globally and under the shard label.
type ShardSink interface {
	ShardProbe(shard int) Probe
}

// ForShard derives shard's view of p for a sharded run. Sinks that implement
// ShardSink (Counters) get a shard-labelled sub-view; a Multi is rebuilt
// member-wise; any other probe is returned unchanged, so event-stream sinks
// (JSONL, ChromeTrace) keep receiving the fan-in exactly as before — the
// sharded runners serialize execution whenever a probe is attached, so the
// combined stream stays deterministic. A nil probe stays nil, preserving the
// zero-overhead contract.
func ForShard(p Probe, shard int) Probe {
	switch v := p.(type) {
	case nil:
		return nil
	case ShardSink:
		return v.ShardProbe(shard)
	case multi:
		out := make([]Probe, len(v))
		for i, q := range v {
			out[i] = ForShard(q, shard)
		}
		return Multi(out...)
	}
	return p
}

// ShardProbe implements ShardSink: the returned probe feeds both the global
// aggregates and a per-shard Counters, so SlabStats / round events of a
// sharded run are queryable per shard (ShardSnapshot) as well as in total.
func (c *Counters) ShardProbe(shard int) Probe {
	c.mu.Lock()
	if c.shards == nil {
		c.shards = make(map[int]*Counters)
	}
	sub, ok := c.shards[shard]
	if !ok {
		sub = NewCounters()
		c.shards[shard] = sub
	}
	c.mu.Unlock()
	return Multi(c, sub)
}

// ShardSnapshot returns the aggregates of one shard's events and whether
// that shard ever emitted any (i.e. a shard probe was derived for it).
func (c *Counters) ShardSnapshot(shard int) (CounterSnapshot, bool) {
	c.mu.Lock()
	sub, ok := c.shards[shard]
	c.mu.Unlock()
	if !ok {
		return CounterSnapshot{}, false
	}
	return sub.Snapshot(), true
}

// ShardCount reports how many shard-labelled sub-sinks have been derived.
func (c *Counters) ShardCount() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.shards)
}

// ShardIndexes returns the derived shard indexes in ascending order. Every
// summary/JSON surface iterates shards through this, never the map itself,
// so output order cannot depend on Go's map iteration (pinned by test).
func (c *Counters) ShardIndexes() []int {
	c.mu.Lock()
	defer c.mu.Unlock()
	idx := make([]int, 0, len(c.shards))
	for i := range c.shards { // range-ok: indexes are sorted before use
		idx = append(idx, i)
	}
	sort.Ints(idx)
	return idx
}

// WriteSummary prints the global snapshot followed by a one-line-per-shard
// breakdown in ascending shard-index order (empty for unsharded runs). It
// is the deterministic-order counterpart of CounterSnapshot.WriteSummary
// for sinks that saw a sharded run.
func (c *Counters) WriteSummary(w io.Writer) {
	c.Snapshot().WriteSummary(w)
	for _, i := range c.ShardIndexes() {
		snap, ok := c.ShardSnapshot(i)
		if !ok {
			continue
		}
		fmt.Fprintf(w, "  shard %-3d jobs %d/%d/%d tasks %d/%d/%d rounds %d/%d\n",
			i, snap.JobsSubmitted, snap.JobsAdmitted, snap.JobsCompleted,
			snap.TasksLaunched, snap.TasksCompleted, snap.TaskFailures,
			snap.RoundsExecuted, snap.RoundsSkipped)
	}
}
