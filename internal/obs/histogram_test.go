package obs

import (
	"math"
	"math/rand"
	"testing"
)

// TestHistogramBucketBounds checks the bucket geometry: bounds are
// monotonically increasing, every positive finite value lands in the bucket
// whose (lo, hi] range contains it, and the relative bucket width stays
// within the advertised 12.5%.
func TestHistogramBucketBounds(t *testing.T) {
	prev := 0.0
	for i := 0; i < histBuckets; i++ {
		lo, hi := BucketBounds(i)
		if lo >= hi {
			t.Fatalf("bucket %d: lo %g >= hi %g", i, lo, hi)
		}
		if lo < prev {
			t.Fatalf("bucket %d: lo %g < previous hi %g", i, lo, prev)
		}
		prev = hi
	}
	rng := rand.New(rand.NewSource(1))
	for n := 0; n < 10000; n++ {
		v := math.Ldexp(0.5+rng.Float64()/2, rng.Intn(100)-50)
		i := bucketIndex(v)
		lo, hi := BucketBounds(i)
		if !(v > lo && v <= hi) && v != lo {
			// v == lo can occur when Frexp's frac is exactly a sub-bucket
			// edge; the half-open convention then differs by one bucket,
			// which the ≤12.5% width bound makes immaterial. Anything else
			// is a placement bug.
			t.Fatalf("v=%g landed in bucket %d (%g, %g]", v, i, lo, hi)
		}
		if (hi-lo)/lo > 0.125+1e-12 {
			t.Fatalf("bucket %d relative width %g > 12.5%%", i, (hi-lo)/lo)
		}
	}
}

// TestHistogramQuantile checks quantile estimates against exact order
// statistics within the bucket width bound.
func TestHistogramQuantile(t *testing.T) {
	var h Histogram
	rng := rand.New(rand.NewSource(7))
	values := make([]float64, 0, 5000)
	for i := 0; i < 5000; i++ {
		v := rng.ExpFloat64() * 100
		values = append(values, v)
		h.Observe(v)
	}
	if h.Count() != 5000 {
		t.Fatalf("Count = %d", h.Count())
	}
	exact := append([]float64(nil), values...)
	sortFloats(exact)
	for _, q := range []float64{0.5, 0.9, 0.95, 0.99, 0.999} {
		got := h.Quantile(q)
		want := exact[int(q*float64(len(exact)-1))]
		if rel := math.Abs(got-want) / want; rel > 0.13 {
			t.Fatalf("q=%g: histogram %g vs exact %g (rel err %.3f)", q, got, want, rel)
		}
	}
	if h.Quantile(0) < h.min || h.Quantile(1) > h.max {
		t.Fatalf("quantiles escape [min, max]: q0=%g min=%g q1=%g max=%g",
			h.Quantile(0), h.min, h.Quantile(1), h.max)
	}
}

func sortFloats(v []float64) {
	for i := 1; i < len(v); i++ {
		for j := i; j > 0 && v[j] < v[j-1]; j-- {
			v[j], v[j-1] = v[j-1], v[j]
		}
	}
}

// TestHistogramMergeProperties is the merge-contract property test: over
// seeded random shard splits, Merge is associative and commutative on the
// integer state (bucket counts, Count, Min, Max, out-of-range), and with
// exactly-representable values even Sum survives any association.
func TestHistogramMergeProperties(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		rng := rand.New(rand.NewSource(seed))
		// Dyadic values (k/8 for small k) add exactly in float64, so Sum
		// equality is testable alongside the integer state.
		parts := make([]*Histogram, 4)
		var direct Histogram
		for i := range parts {
			parts[i] = &Histogram{}
			for n := 0; n < 500+rng.Intn(500); n++ {
				v := float64(rng.Intn(1<<16)) / 8
				parts[i].Observe(v)
				direct.Observe(v)
			}
		}
		// (((a+b)+c)+d)
		var left Histogram
		for _, p := range parts {
			left.Merge(p)
		}
		// ((a+b)+(c+d))
		var ab, cd, tree Histogram
		ab.Merge(parts[0])
		ab.Merge(parts[1])
		cd.Merge(parts[2])
		cd.Merge(parts[3])
		tree.Merge(&ab)
		tree.Merge(&cd)
		// reversed order (commutativity)
		var rev Histogram
		for i := len(parts) - 1; i >= 0; i-- {
			rev.Merge(parts[i])
		}
		for name, m := range map[string]*Histogram{"left-fold": &left, "tree": &tree, "reversed": &rev} {
			if !m.BucketsEqual(&direct) {
				t.Fatalf("seed %d: %s merge differs from direct observation bucket-for-bucket", seed, name)
			}
			if m.Sum() != direct.Sum() {
				t.Fatalf("seed %d: %s merge Sum %g != direct %g on dyadic values", seed, name, m.Sum(), direct.Sum())
			}
		}
	}
}

// TestHistogramOutOfRange pins the contract for values the log buckets
// cannot place: zeros and negatives count, rank below every bucket, and
// survive merging.
func TestHistogramOutOfRange(t *testing.T) {
	var h Histogram
	h.Observe(0)
	h.Observe(-3)
	h.Observe(1)
	if h.Count() != 3 || h.outOfRange != 2 {
		t.Fatalf("count=%d outOfRange=%d, want 3, 2", h.Count(), h.outOfRange)
	}
	if h.min != -3 || h.max != 1 {
		t.Fatalf("min=%g max=%g", h.min, h.max)
	}
	if q := h.Quantile(0.5); q != -3 {
		t.Fatalf("median with majority out-of-range = %g, want min (-3)", q)
	}
	var m Histogram
	m.Merge(&h)
	if !m.BucketsEqual(&h) {
		t.Fatal("merge dropped out-of-range state")
	}
}

// TestHistogramsSinkEvents checks the Probe wiring: JobDone feeds response,
// JobAdmitted feeds admission wait, TaskDone feeds duration (now - start),
// and the side-channel observers feed slowdown and round latency.
func TestHistogramsSinkEvents(t *testing.T) {
	h := NewHistograms()
	h.JobDone(10, 1, 7.5)
	h.JobAdmitted(3, 1, 0.25)
	h.TaskDone(9, 1, 0, 0, 4, false)
	h.ObserveSlowdown(3)
	h.ObserveRoundLatency(1e-6)
	for name, want := range map[string]float64{
		HistResponse:      7.5,
		HistAdmissionWait: 0.25,
		HistTaskDuration:  5,
		HistSlowdown:      3,
		HistRoundLatency:  1e-6,
	} {
		g, ok := h.Histogram(name)
		if !ok || g.Count() != 1 || g.Sum() != want {
			t.Fatalf("%s: ok=%t count=%d sum=%g, want one observation of %g", name, ok, g.Count(), g.Sum(), want)
		}
	}
	if _, ok := h.Histogram("nope"); ok {
		t.Fatal("unknown histogram name reported ok")
	}
}

// TestHistogramsShardMerge checks the ShardSink plumbing directly: events
// sent to shard probes land in both the global and per-shard histograms,
// and MergeShards reproduces the global state bucket-for-bucket.
func TestHistogramsShardMerge(t *testing.T) {
	h := NewHistograms()
	rng := rand.New(rand.NewSource(11))
	for shard := 0; shard < 3; shard++ {
		p := ForShard(Probe(h), shard)
		for n := 0; n < 200; n++ {
			p.JobDone(1, n, rng.ExpFloat64()*50)
		}
	}
	if got := h.ShardIndexes(); len(got) != 3 || got[0] != 0 || got[1] != 1 || got[2] != 2 {
		t.Fatalf("ShardIndexes = %v, want [0 1 2]", got)
	}
	global, _ := h.Histogram(HistResponse)
	merged := h.MergeShards(HistResponse)
	if !merged.BucketsEqual(&global) {
		t.Fatal("shard-merged response histogram differs from the global sink bucket-for-bucket")
	}
	if global.Count() != 600 {
		t.Fatalf("global count = %d, want 600", global.Count())
	}
}

// TestFindHistograms checks sink resolution through nested Multi fan-ins,
// mirroring FindCounters.
func TestFindHistograms(t *testing.T) {
	h := NewHistograms()
	if FindHistograms(nil) != nil {
		t.Fatal("nil probe resolved a sink")
	}
	if FindHistograms(h) != h {
		t.Fatal("direct resolution failed")
	}
	p := Multi(NewCounters(), Multi(NewRing(16), h))
	if FindHistograms(p) != h {
		t.Fatal("nested Multi resolution failed")
	}
	if FindCounters(p) == nil {
		t.Fatal("FindCounters broken by the added members")
	}
}

// TestZeroAllocHistogramObserve is part of the probe-gate: the Histograms
// record path (probe events, raw Observe, and both side-channel observers)
// must not allocate.
func TestZeroAllocHistogramObserve(t *testing.T) {
	h := NewHistograms()
	var raw Histogram
	if avg := testing.AllocsPerRun(1000, func() {
		raw.Observe(3.7)
		h.JobDone(10, 1, 7.5)
		h.JobAdmitted(3, 1, 0.25)
		h.TaskDone(9, 1, 0, 0, 4, false)
		h.ObserveSlowdown(3)
		h.ObserveRoundLatency(1e-6)
	}); avg != 0 {
		t.Fatalf("histogram record path allocates %.1f allocs/op, want 0", avg)
	}
}
