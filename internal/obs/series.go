package obs

import (
	"fmt"
	"io"
	"strconv"
	"sync"
)

// SeriesLevels is how many LAS_MQ queue levels a Series tracks depth for;
// deeper levels fold into the last slot. Fixed so sampling never allocates
// per point beyond the appended point itself.
const SeriesLevels = 8

// SeriesPoint is one windowed sample of the run's live state, taken on the
// first scheduling-round boundary at or past each window edge. Times are
// virtual; EventsPerSec is probe events per virtual second over the window.
type SeriesPoint struct {
	Time float64 `json:"time"`
	// Utilization is RunningTasks / Capacity when the Series was given a
	// capacity, else 0.
	Utilization  float64             `json:"utilization"`
	LiveJobs     int32               `json:"live_jobs"`
	RunningTasks int32               `json:"running_tasks"`
	QueueDepth   [SeriesLevels]int32 `json:"queue_depth"`
	EventsPerSec float64             `json:"events_per_sec"`
}

// Series is the windowed virtual-time series Probe sink: utilization, queue
// depth per LAS_MQ level, live jobs and event rate, sampled on scheduling-
// round boundaries (RoundExecuted / RoundSkipped are the only moments a
// consistent cut of the run exists). Gauges update allocation-free on every
// event; appending a point on a window flush amortizes against the window
// width. Like the other sinks it observes without mutating, so probed runs
// stay byte-identical.
type Series struct {
	mu       sync.Mutex
	window   float64
	capacity float64
	// gauges, updated on every event
	live    int32
	running int32
	depth   [SeriesLevels]int32
	// window accumulation
	events    uint64
	winStart  float64
	winEvents uint64
	started   bool
	points    []SeriesPoint
}

// NewSeries returns a Series sampling one point per window virtual seconds
// (window <= 0 defaults to 1). capacity is the cluster's container count
// for the utilization gauge; 0 disables it.
func NewSeries(window float64, capacity int) *Series {
	if window <= 0 {
		window = 1
	}
	return &Series{window: window, capacity: float64(capacity)}
}

func (s *Series) event() { s.events++; s.winEvents++ }

func (s *Series) JobSubmitted(float64, int) {
	s.mu.Lock()
	s.event()
	s.live++
	s.mu.Unlock()
}

func (s *Series) JobAdmitted(float64, int, float64) {
	s.mu.Lock()
	s.event()
	s.mu.Unlock()
}

func (s *Series) JobStarted(float64, int) {
	s.mu.Lock()
	s.event()
	s.mu.Unlock()
}

func (s *Series) StageDone(float64, int, int) {
	s.mu.Lock()
	s.event()
	s.mu.Unlock()
}

func (s *Series) JobDone(float64, int, float64) {
	s.mu.Lock()
	s.event()
	s.live--
	s.mu.Unlock()
}

func (s *Series) TaskStart(float64, int, int, int, int, bool) {
	s.mu.Lock()
	s.event()
	s.running++
	s.mu.Unlock()
}

func (s *Series) TaskDone(float64, int, int, int, float64, bool) {
	s.mu.Lock()
	s.event()
	s.running--
	s.mu.Unlock()
}

func (s *Series) TaskFail(float64, int, int, int, float64) {
	s.mu.Lock()
	s.event()
	s.running--
	s.mu.Unlock()
}

func clampLevel(q int) int {
	if q < 0 {
		q = 0
	}
	if q >= SeriesLevels {
		q = SeriesLevels - 1
	}
	return q
}

func (s *Series) QueueEnter(_ float64, _, queue int) {
	s.mu.Lock()
	s.event()
	s.depth[clampLevel(queue)]++
	s.mu.Unlock()
}

func (s *Series) QueueDemote(_ float64, _, from, to int, _ float64) {
	s.mu.Lock()
	s.event()
	s.depth[clampLevel(from)]--
	s.depth[clampLevel(to)]++
	s.mu.Unlock()
}

func (s *Series) QueueExit(_ float64, _, queue int) {
	s.mu.Lock()
	s.event()
	s.depth[clampLevel(queue)]--
	s.mu.Unlock()
}

func (s *Series) ThresholdRefit(float64, float64, float64) {
	s.mu.Lock()
	s.event()
	s.mu.Unlock()
}

func (s *Series) RoundExecuted(now float64, _ int) {
	s.mu.Lock()
	s.event()
	s.sample(now)
	s.mu.Unlock()
}

func (s *Series) RoundSkipped(now float64, _ bool) {
	s.mu.Lock()
	s.event()
	s.sample(now)
	s.mu.Unlock()
}

func (s *Series) EventqMigrate(float64, int) {
	s.mu.Lock()
	s.event()
	s.mu.Unlock()
}

func (s *Series) ArenaReuse(int, int, bool) {
	s.mu.Lock()
	s.event()
	s.mu.Unlock()
}

func (s *Series) SlabStats(float64, int, int, int) {
	s.mu.Lock()
	s.event()
	s.mu.Unlock()
}

// sample flushes a point if now has crossed the current window's edge.
// Called with s.mu held, from round boundaries only.
func (s *Series) sample(now float64) {
	if !s.started {
		s.started = true
		s.winStart = now
		s.winEvents = 0
		return
	}
	if now < s.winStart+s.window {
		return
	}
	span := now - s.winStart
	pt := SeriesPoint{
		Time:         now,
		LiveJobs:     s.live,
		RunningTasks: s.running,
		QueueDepth:   s.depth,
		EventsPerSec: float64(s.winEvents) / span,
	}
	if s.capacity > 0 {
		pt.Utilization = float64(s.running) / s.capacity
	}
	s.points = append(s.points, pt)
	s.winStart = now
	s.winEvents = 0
}

// Points returns a copy of the sampled points in time order.
func (s *Series) Points() []SeriesPoint {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]SeriesPoint(nil), s.points...)
}

// Events returns the total probe events observed.
func (s *Series) Events() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.events
}

// WriteCSV writes the sampled series with a fixed header:
//
//	time,utilization,live_jobs,running_tasks,events_per_sec,q0..q7
func (s *Series) WriteCSV(w io.Writer) error {
	if _, err := io.WriteString(w, seriesHeader()); err != nil {
		return err
	}
	buf := make([]byte, 0, 128)
	for _, pt := range s.Points() {
		buf = buf[:0]
		buf = strconv.AppendFloat(buf, pt.Time, 'g', -1, 64)
		buf = append(buf, ',')
		buf = strconv.AppendFloat(buf, pt.Utilization, 'g', -1, 64)
		buf = append(buf, ',')
		buf = strconv.AppendInt(buf, int64(pt.LiveJobs), 10)
		buf = append(buf, ',')
		buf = strconv.AppendInt(buf, int64(pt.RunningTasks), 10)
		buf = append(buf, ',')
		buf = strconv.AppendFloat(buf, pt.EventsPerSec, 'g', -1, 64)
		for _, d := range pt.QueueDepth {
			buf = append(buf, ',')
			buf = strconv.AppendInt(buf, int64(d), 10)
		}
		buf = append(buf, '\n')
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	return nil
}

func seriesHeader() string {
	h := "time,utilization,live_jobs,running_tasks,events_per_sec"
	for q := 0; q < SeriesLevels; q++ {
		h += fmt.Sprintf(",q%d", q)
	}
	return h + "\n"
}
