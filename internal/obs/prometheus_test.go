package obs

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenState builds a fixed telemetry state: every counter field non-zero
// via real probe events, and dyadic histogram observations so the exposition
// floats are exact.
func goldenState() (*Counters, *Histograms) {
	c := NewCounters()
	h := NewHistograms()
	p := Multi(c, h)
	p.JobSubmitted(0, 1)
	p.JobSubmitted(0.5, 2)
	p.JobAdmitted(1, 1, 1)
	p.JobAdmitted(1.5, 2, 1)
	p.JobStarted(1, 1)
	p.TaskStart(1, 1, 0, 0, 1, false)
	p.TaskStart(1.25, 1, 0, 1, 1, true)
	p.TaskDone(3, 1, 0, 0, 1, false)
	p.TaskDone(3.5, 1, 0, 1, 1.25, true)
	p.TaskFail(2, 2, 0, 0, 1.5)
	p.QueueEnter(1, 1, 0)
	p.QueueDemote(2, 1, 0, 1, 16)
	p.QueueExit(3, 1, 1)
	p.ThresholdRefit(4, 16, 10)
	p.RoundExecuted(1, 2)
	p.RoundSkipped(2, true)
	p.EventqMigrate(3, 4096)
	p.ArenaReuse(2, 8, true)
	p.SlabStats(8, 0, 6, 3)
	p.StageDone(7, 1, 0)
	p.JobDone(7.5, 1, 6.5)
	p.JobDone(8, 2, 7.5)
	h.ObserveSlowdown(2)
	h.ObserveSlowdown(4)
	h.ObserveRoundLatency(0.000244140625) // 2^-12, exact
	return c, h
}

// TestPrometheusGolden pins the /metrics exposition byte-for-byte against
// testdata/metrics.golden (regenerate with `go test ./internal/obs -run
// Golden -update` and review the diff).
func TestPrometheusGolden(t *testing.T) {
	c, h := goldenState()
	snap := c.Snapshot()
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, &snap, h); err != nil {
		t.Fatal(err)
	}
	compareGolden(t, "metrics.golden", buf.Bytes())
}

// TestSchedHistGolden pins the /debug/schedhist JSON document the same way.
func TestSchedHistGolden(t *testing.T) {
	_, h := goldenState()
	var buf bytes.Buffer
	if err := WriteSchedHist(&buf, h); err != nil {
		t.Fatal(err)
	}
	compareGolden(t, "schedhist.golden", buf.Bytes())
}

// TestHistogramCSVGolden pins the -hist-out CSV format.
func TestHistogramCSVGolden(t *testing.T) {
	_, h := goldenState()
	var buf bytes.Buffer
	if err := WriteHistogramCSV(&buf, h); err != nil {
		t.Fatal(err)
	}
	compareGolden(t, "hist.golden.csv", buf.Bytes())
}

func compareGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (regenerate with -update)", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("%s drifted from golden (regenerate with -update and review):\ngot:\n%s\nwant:\n%s",
			name, got, want)
	}
}

// TestPrometheusWellFormed sanity-checks exposition grammar independent of
// the golden bytes: every non-comment line is "name[{labels}] value", every
// histogram ends with a +Inf bucket whose count equals _count, and families
// appear in the fixed order.
func TestPrometheusWellFormed(t *testing.T) {
	c, h := goldenState()
	snap := c.Snapshot()
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, &snap, h); err != nil {
		t.Fatal(err)
	}
	var lastHelp string
	var helps []string
	for _, line := range strings.Split(strings.TrimSuffix(buf.String(), "\n"), "\n") {
		if strings.HasPrefix(line, "# HELP ") {
			lastHelp = strings.Fields(line)[2]
			helps = append(helps, lastHelp)
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			if name := strings.Fields(line)[2]; name != lastHelp {
				t.Fatalf("TYPE %s does not follow its HELP", name)
			}
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			t.Fatalf("sample line %q is not `name value`", line)
		}
		if !strings.HasPrefix(fields[0], "lasmq_") {
			t.Fatalf("sample %q lacks the lasmq_ prefix", fields[0])
		}
	}
	// Histogram families emit after the counters, in sorted name order.
	var histFamilies []string
	for _, name := range HistogramNames() {
		m, _ := promHistogramMeta(name)
		histFamilies = append(histFamilies, m)
	}
	if len(helps) < len(histFamilies) {
		t.Fatalf("only %d families", len(helps))
	}
	tail := helps[len(helps)-len(histFamilies):]
	for i, m := range histFamilies {
		if tail[i] != m {
			t.Fatalf("histogram family order: got %v, want %v", tail, histFamilies)
		}
	}
}

// TestCountersShardSummaryOrder pins satellite-level determinism: the
// per-shard summary lines emit in ascending shard-index order no matter the
// order shard probes were derived or the map's iteration order.
func TestCountersShardSummaryOrder(t *testing.T) {
	c := NewCounters()
	for _, shard := range []int{7, 2, 11, 0, 5} {
		p := c.ShardProbe(shard)
		p.JobSubmitted(0, shard)
	}
	if got := c.ShardIndexes(); len(got) != 5 || got[0] != 0 || got[4] != 11 {
		t.Fatalf("ShardIndexes = %v, want ascending [0 2 5 7 11]", got)
	}
	var buf bytes.Buffer
	c.WriteSummary(&buf)
	var order []string
	for _, line := range strings.Split(buf.String(), "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), "shard ") {
			order = append(order, strings.Fields(line)[1])
		}
	}
	want := []string{"0", "2", "5", "7", "11"}
	if len(order) != len(want) {
		t.Fatalf("got %d shard lines, want %d:\n%s", len(order), len(want), buf.String())
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("shard summary order = %v, want %v", order, want)
		}
	}
}
