package obs

import (
	"bufio"
	"io"
	"strconv"
)

// JSONL is a Probe sink that writes one JSON object per event, in emission
// order, with a fixed field order per event type. Field values are scalars
// formatted with strconv (shortest round-trip floats), so the byte stream
// for a given run is deterministic — the golden-file and concurrency tests
// rely on that.
//
// JSONL buffers internally; call Flush when the run completes. It is not
// safe for concurrent emitters — attach one JSONL sink per run.
type JSONL struct {
	w   *bufio.Writer
	buf []byte
	err error
}

// NewJSONL returns a JSONL sink writing to w.
func NewJSONL(w io.Writer) *JSONL {
	return &JSONL{w: bufio.NewWriter(w), buf: make([]byte, 0, 128)}
}

// Flush drains the internal buffer and returns the first write error seen.
func (j *JSONL) Flush() error {
	if err := j.w.Flush(); j.err == nil {
		j.err = err
	}
	return j.err
}

// line starts an event object: {"ev":"<name>","t":<now>.
func (j *JSONL) line(ev string, now float64) {
	j.buf = append(j.buf[:0], `{"ev":"`...)
	j.buf = append(j.buf, ev...)
	j.buf = append(j.buf, `","t":`...)
	j.buf = strconv.AppendFloat(j.buf, now, 'g', -1, 64)
}

func (j *JSONL) intField(key string, v int) {
	j.buf = append(j.buf, ',', '"')
	j.buf = append(j.buf, key...)
	j.buf = append(j.buf, '"', ':')
	j.buf = strconv.AppendInt(j.buf, int64(v), 10)
}

func (j *JSONL) floatField(key string, v float64) {
	j.buf = append(j.buf, ',', '"')
	j.buf = append(j.buf, key...)
	j.buf = append(j.buf, '"', ':')
	j.buf = strconv.AppendFloat(j.buf, v, 'g', -1, 64)
}

func (j *JSONL) boolField(key string, v bool) {
	j.buf = append(j.buf, ',', '"')
	j.buf = append(j.buf, key...)
	j.buf = append(j.buf, '"', ':')
	j.buf = strconv.AppendBool(j.buf, v)
}

func (j *JSONL) end() {
	j.buf = append(j.buf, '}', '\n')
	if _, err := j.w.Write(j.buf); err != nil && j.err == nil {
		j.err = err
	}
}

func (j *JSONL) JobSubmitted(now float64, job int) {
	j.line("job-submit", now)
	j.intField("job", job)
	j.end()
}

func (j *JSONL) JobAdmitted(now float64, job int, waited float64) {
	j.line("job-admit", now)
	j.intField("job", job)
	j.floatField("wait", waited)
	j.end()
}

func (j *JSONL) JobStarted(now float64, job int) {
	j.line("job-start", now)
	j.intField("job", job)
	j.end()
}

func (j *JSONL) StageDone(now float64, job, stage int) {
	j.line("stage-done", now)
	j.intField("job", job)
	j.intField("stage", stage)
	j.end()
}

func (j *JSONL) JobDone(now float64, job int, response float64) {
	j.line("job-done", now)
	j.intField("job", job)
	j.floatField("response", response)
	j.end()
}

func (j *JSONL) TaskStart(now float64, job, stage, task, containers int, speculative bool) {
	j.line("task-start", now)
	j.intField("job", job)
	j.intField("stage", stage)
	j.intField("task", task)
	j.intField("containers", containers)
	j.boolField("spec", speculative)
	j.end()
}

func (j *JSONL) TaskDone(now float64, job, stage, task int, start float64, speculative bool) {
	j.line("task-done", now)
	j.intField("job", job)
	j.intField("stage", stage)
	j.intField("task", task)
	j.floatField("start", start)
	j.boolField("spec", speculative)
	j.end()
}

func (j *JSONL) TaskFail(now float64, job, stage, task int, start float64) {
	j.line("task-fail", now)
	j.intField("job", job)
	j.intField("stage", stage)
	j.intField("task", task)
	j.floatField("start", start)
	j.end()
}

func (j *JSONL) QueueEnter(now float64, job, queue int) {
	j.line("queue-enter", now)
	j.intField("job", job)
	j.intField("queue", queue)
	j.end()
}

func (j *JSONL) QueueDemote(now float64, job, from, to int, attained float64) {
	j.line("queue-demote", now)
	j.intField("job", job)
	j.intField("from", from)
	j.intField("to", to)
	j.floatField("attained", attained)
	j.end()
}

func (j *JSONL) QueueExit(now float64, job, queue int) {
	j.line("queue-exit", now)
	j.intField("job", job)
	j.intField("queue", queue)
	j.end()
}

func (j *JSONL) ThresholdRefit(now, first, step float64) {
	j.line("refit", now)
	j.floatField("first", first)
	j.floatField("step", step)
	j.end()
}

func (j *JSONL) RoundExecuted(now float64, jobs int) {
	j.line("round-exec", now)
	j.intField("jobs", jobs)
	j.end()
}

func (j *JSONL) RoundSkipped(now float64, observed bool) {
	j.line("round-skip", now)
	j.boolField("observed", observed)
	j.end()
}

func (j *JSONL) EventqMigrate(now float64, pending int) {
	j.line("eventq-migrate", now)
	j.intField("pending", pending)
	j.end()
}

// ArenaReuse logs the arena dimensions but deliberately not the reused
// flag: whether a run draws a pooled arena or a fresh one depends on
// process-global sync.Pool state (what other runs finished first), and the
// JSONL log must be byte-deterministic for a given seeded run. Counters
// still aggregate the flag.
func (j *JSONL) ArenaReuse(jobs, tasks int, _ bool) {
	j.line("arena", 0)
	j.intField("jobs", jobs)
	j.intField("tasks", tasks)
	j.end()
}

// SlabStats logs the per-run free-list counts. All three are functions of
// the simulated run alone (not of pool state shared across runs), so the
// event is byte-deterministic for a given seeded run.
func (j *JSONL) SlabStats(now float64, live, peak, recycled int) {
	j.line("slab", now)
	j.intField("live", live)
	j.intField("peak", peak)
	j.intField("recycled", recycled)
	j.end()
}
