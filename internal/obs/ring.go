package obs

import (
	"math"
	"sync/atomic"
	"unsafe"
)

// Event is one probe event packed into a fixed-size scalar record: no
// interface boxing, no per-event allocation, one record per cache line once
// padded into a ring slot. Kind selects the probe method; T is the event's
// virtual timestamp; F and G carry float payloads (waited, response, start,
// attained, first/step); A..D carry integer payloads (job, stage, task,
// containers, queue indices, counts); Flags carries the event's booleans.
type Event struct {
	T     float64 // virtual time ("now"); unused by ArenaReuse
	F     float64 // first float payload (waited / response / start / attained / first)
	G     float64 // second float payload (ThresholdRefit step)
	A     int32   // first int payload (job / pending / jobs / live)
	B     int32   // second int payload (stage / queue / from / tasks / peak)
	C     int32   // third int payload (task / to / recycled)
	D     int32   // fourth int payload (containers)
	Kind  uint8
	Flags uint8
	_     [6]byte
}

// Event kinds, one per Probe method.
const (
	KindJobSubmitted uint8 = iota + 1
	KindJobAdmitted
	KindJobStarted
	KindStageDone
	KindJobDone
	KindTaskStart
	KindTaskDone
	KindTaskFail
	KindQueueEnter
	KindQueueDemote
	KindQueueExit
	KindThresholdRefit
	KindRoundExecuted
	KindRoundSkipped
	KindEventqMigrate
	KindArenaReuse
	KindSlabStats
)

// FlagTrue is the single boolean payload bit: speculative (TaskStart,
// TaskDone), observed (RoundSkipped), reused (ArenaReuse).
const FlagTrue uint8 = 1

// Apply replays the event into p, invoking the probe method it was packed
// from. It is how a drained ring feeds downstream sinks (Counters,
// Histograms, Series) without those sinks knowing about the ring.
func (e *Event) Apply(p Probe) {
	switch e.Kind {
	case KindJobSubmitted:
		p.JobSubmitted(e.T, int(e.A))
	case KindJobAdmitted:
		p.JobAdmitted(e.T, int(e.A), e.F)
	case KindJobStarted:
		p.JobStarted(e.T, int(e.A))
	case KindStageDone:
		p.StageDone(e.T, int(e.A), int(e.B))
	case KindJobDone:
		p.JobDone(e.T, int(e.A), e.F)
	case KindTaskStart:
		p.TaskStart(e.T, int(e.A), int(e.B), int(e.C), int(e.D), e.Flags&FlagTrue != 0)
	case KindTaskDone:
		p.TaskDone(e.T, int(e.A), int(e.B), int(e.C), e.F, e.Flags&FlagTrue != 0)
	case KindTaskFail:
		p.TaskFail(e.T, int(e.A), int(e.B), int(e.C), e.F)
	case KindQueueEnter:
		p.QueueEnter(e.T, int(e.A), int(e.B))
	case KindQueueDemote:
		p.QueueDemote(e.T, int(e.A), int(e.B), int(e.C), e.F)
	case KindQueueExit:
		p.QueueExit(e.T, int(e.A), int(e.B))
	case KindThresholdRefit:
		p.ThresholdRefit(e.T, e.F, e.G)
	case KindRoundExecuted:
		p.RoundExecuted(e.T, int(e.A))
	case KindRoundSkipped:
		p.RoundSkipped(e.T, e.Flags&FlagTrue != 0)
	case KindEventqMigrate:
		p.EventqMigrate(e.T, int(e.A))
	case KindArenaReuse:
		p.ArenaReuse(int(e.A), int(e.B), e.Flags&FlagTrue != 0)
	case KindSlabStats:
		p.SlabStats(e.T, int(e.A), int(e.B), int(e.C))
	}
}

// slot is one ring cell: a seqlock version word plus the event packed into
// six atomic words, padded to exactly one 64-byte cache line. The event
// words are stored atomically (not as a raw Event) so a concurrent reader
// never races the writer in the memory model's sense; the version word is
// what detects torn or overwritten reads. seq holds (index+1)<<1 after
// write index's record is complete, and an odd value while it is being
// written.
type slot struct {
	seq   atomic.Uint64
	words [6]atomic.Uint64
	_     [8]byte
}

// Compile-time layout pins: a packed Event is 48 bytes, a slot exactly one
// 64-byte cache line. Either drifting breaks the one-line-per-record claim,
// so the build fails if they do.
var (
	_ = [1]struct{}{}[unsafe.Sizeof(Event{})-48]
	_ = [1]struct{}{}[unsafe.Sizeof(slot{})-64]
)

// pack encodes an Event into a slot's six words.
func (s *slot) pack(ev *Event) {
	s.words[0].Store(math.Float64bits(ev.T))
	s.words[1].Store(math.Float64bits(ev.F))
	s.words[2].Store(math.Float64bits(ev.G))
	s.words[3].Store(uint64(uint32(ev.A))<<32 | uint64(uint32(ev.B)))
	s.words[4].Store(uint64(uint32(ev.C))<<32 | uint64(uint32(ev.D)))
	s.words[5].Store(uint64(ev.Kind)<<8 | uint64(ev.Flags))
}

// unpack decodes a slot's six words into ev.
func (s *slot) unpack(ev *Event) {
	ev.T = math.Float64frombits(s.words[0].Load())
	ev.F = math.Float64frombits(s.words[1].Load())
	ev.G = math.Float64frombits(s.words[2].Load())
	ab := s.words[3].Load()
	ev.A = int32(uint32(ab >> 32))
	ev.B = int32(uint32(ab))
	cd := s.words[4].Load()
	ev.C = int32(uint32(cd >> 32))
	ev.D = int32(uint32(cd))
	kf := s.words[5].Load()
	ev.Kind = uint8(kf >> 8)
	ev.Flags = uint8(kf)
}

// Ring is a fixed-capacity single-producer lock-free flight recorder for
// probe events. The producer (the simulation or resource-manager goroutine
// the probe is attached to) records without taking any lock and without
// allocating; exactly one consumer goroutine drains concurrently (Drain),
// or the owner dumps the retained tail after the run (Tail). When the
// consumer falls behind, the producer overwrites the oldest records —
// flight-recorder semantics: the most recent Cap() events always survive,
// and Drain reports how many were dropped.
//
// Each slot is a per-slot seqlock: the producer bumps the slot's version to
// an odd value, stores the packed event, then publishes the even version
// that encodes the write index. A reader that observes a version change (or
// an odd version) discards the read, so overwritten records are detected,
// never misread.
//
// Ring implements Probe, so it attaches anywhere a Counters sink does. It
// deliberately does not implement ShardSink: a sharded run serializes when
// any probe is attached, so the single-producer contract holds there too.
type Ring struct {
	slots []slot
	mask  uint64
	// w is the producer cursor: the index of the next record to write.
	// Stored atomically so the consumer can bound its scan.
	w atomic.Uint64
	// r is the consumer cursor: the index of the next record to read.
	// Owned by the single consumer; no atomicity needed.
	r uint64
	// dropped accumulates records overwritten before the consumer reached
	// them, maintained by the consumer during Drain.
	dropped uint64
}

// NewRing returns a ring holding capacity events; capacity is rounded up to
// a power of two, minimum 16.
func NewRing(capacity int) *Ring {
	n := 16
	for n < capacity {
		n <<= 1
	}
	return &Ring{slots: make([]slot, n), mask: uint64(n - 1)}
}

// Cap returns the ring's slot count.
func (r *Ring) Cap() int { return len(r.slots) }

// Recorded returns how many events the producer has recorded in total
// (including any since overwritten).
func (r *Ring) Recorded() uint64 { return r.w.Load() }

// Dropped returns how many records were overwritten before being drained.
// Only meaningful on the consumer side, after Drain calls.
func (r *Ring) Dropped() uint64 { return r.dropped }

// push records one event. Producer side: must only ever be called from one
// goroutine at a time.
func (r *Ring) push(ev *Event) {
	w := r.w.Load()
	s := &r.slots[w&r.mask]
	s.seq.Store(w<<1 | 1)
	s.pack(ev)
	s.seq.Store((w + 1) << 1)
	r.w.Store(w + 1)
}

// Drain replays every un-drained record into p in recording order and
// returns how many were replayed and how many were lost to overwriting
// since the previous Drain. Consumer side: must only ever be called from
// one goroutine. p may be nil to discard (advancing the cursor only).
func (r *Ring) Drain(p Probe) (replayed, lost uint64) {
	var ev Event
	for {
		w := r.w.Load()
		if r.r == w {
			r.dropped += lost
			return replayed, lost
		}
		// The producer may have lapped us: everything older than w-cap is
		// already overwritten (or mid-overwrite). Skip straight past it.
		if cap := uint64(len(r.slots)); w-r.r > cap {
			lost += w - cap - r.r
			r.r = w - cap
		}
		i := r.r
		s := &r.slots[i&r.mask]
		want := (i + 1) << 1
		if v := s.seq.Load(); v != want {
			if v > want {
				// Overwritten (or being overwritten) while we approached it;
				// re-derive the cursor from the producer position.
				continue
			}
			// v < want: record i not published yet (producer is mid-write
			// after bumping w is impossible — w is stored after seq — so
			// this means we raced the odd mark; retry).
			continue
		}
		s.unpack(&ev)
		if s.seq.Load() != want {
			continue // torn: producer lapped us mid-copy
		}
		r.r = i + 1
		if p != nil {
			ev.Apply(p)
		}
		replayed++
	}
}

// Tail appends the retained records (oldest first) to buf and returns it.
// It is a post-run accessor for single-threaded use — call it only once the
// producer has stopped; concurrent production would tear the scan.
func (r *Ring) Tail(buf []Event) []Event {
	w := r.w.Load()
	lo := r.r
	if cap := uint64(len(r.slots)); w-lo > cap {
		lo = w - cap
	}
	for i := lo; i < w; i++ {
		var ev Event
		r.slots[i&r.mask].unpack(&ev)
		buf = append(buf, ev)
	}
	return buf
}

// Probe implementation: pack scalars into an Event and push. Every method
// is allocation-free (enforced by the probe-gate zero-alloc test).

func (r *Ring) JobSubmitted(now float64, job int) {
	r.push(&Event{Kind: KindJobSubmitted, T: now, A: int32(job)})
}

func (r *Ring) JobAdmitted(now float64, job int, waited float64) {
	r.push(&Event{Kind: KindJobAdmitted, T: now, A: int32(job), F: waited})
}

func (r *Ring) JobStarted(now float64, job int) {
	r.push(&Event{Kind: KindJobStarted, T: now, A: int32(job)})
}

func (r *Ring) StageDone(now float64, job, stage int) {
	r.push(&Event{Kind: KindStageDone, T: now, A: int32(job), B: int32(stage)})
}

func (r *Ring) JobDone(now float64, job int, response float64) {
	r.push(&Event{Kind: KindJobDone, T: now, A: int32(job), F: response})
}

func (r *Ring) TaskStart(now float64, job, stage, task, containers int, speculative bool) {
	r.push(&Event{Kind: KindTaskStart, T: now, A: int32(job), B: int32(stage),
		C: int32(task), D: int32(containers), Flags: boolFlag(speculative)})
}

func (r *Ring) TaskDone(now float64, job, stage, task int, start float64, speculative bool) {
	r.push(&Event{Kind: KindTaskDone, T: now, A: int32(job), B: int32(stage),
		C: int32(task), F: start, Flags: boolFlag(speculative)})
}

func (r *Ring) TaskFail(now float64, job, stage, task int, start float64) {
	r.push(&Event{Kind: KindTaskFail, T: now, A: int32(job), B: int32(stage),
		C: int32(task), F: start})
}

func (r *Ring) QueueEnter(now float64, job, queue int) {
	r.push(&Event{Kind: KindQueueEnter, T: now, A: int32(job), B: int32(queue)})
}

func (r *Ring) QueueDemote(now float64, job, from, to int, attained float64) {
	r.push(&Event{Kind: KindQueueDemote, T: now, A: int32(job), B: int32(from),
		C: int32(to), F: attained})
}

func (r *Ring) QueueExit(now float64, job, queue int) {
	r.push(&Event{Kind: KindQueueExit, T: now, A: int32(job), B: int32(queue)})
}

func (r *Ring) ThresholdRefit(now, first, step float64) {
	r.push(&Event{Kind: KindThresholdRefit, T: now, F: first, G: step})
}

func (r *Ring) RoundExecuted(now float64, jobs int) {
	r.push(&Event{Kind: KindRoundExecuted, T: now, A: int32(jobs)})
}

func (r *Ring) RoundSkipped(now float64, observed bool) {
	r.push(&Event{Kind: KindRoundSkipped, T: now, Flags: boolFlag(observed)})
}

func (r *Ring) EventqMigrate(now float64, pending int) {
	r.push(&Event{Kind: KindEventqMigrate, T: now, A: int32(pending)})
}

func (r *Ring) ArenaReuse(jobs, tasks int, reused bool) {
	r.push(&Event{Kind: KindArenaReuse, A: int32(jobs), B: int32(tasks), Flags: boolFlag(reused)})
}

func (r *Ring) SlabStats(now float64, live, peak, recycled int) {
	r.push(&Event{Kind: KindSlabStats, T: now, A: int32(live), B: int32(peak), C: int32(recycled)})
}

func boolFlag(b bool) uint8 {
	if b {
		return FlagTrue
	}
	return 0
}
