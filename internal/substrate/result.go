package substrate

import "lasmq/internal/obs"

// Result is the run-outcome accumulator embedded in every substrate's
// result type, deduplicating the response-time/slowdown/per-bin method sets
// the engine and fluid results used to reimplement separately. Substrates
// record each finished job in their canonical reporting order (workload
// order for the simulators), so the derived statistics — including the
// floating-point summation order behind MeanResponseTime — are deterministic
// and identical across substrates.
type Result struct {
	// Scheduler is the policy name (sched.Scheduler.Name).
	Scheduler string
	// Makespan is the completion time of the last job.
	Makespan float64
	// Utilization is the time-averaged fraction of capacity in use over the
	// makespan.
	Utilization float64
	// Counters holds the final aggregate snapshot when the run was driven
	// with an obs.Counters sink attached to its probe; nil otherwise. It is
	// telemetry about the run, not part of the simulated outcome —
	// differential tests that compare probed against unprobed runs null it
	// before comparing.
	Counters *obs.CounterSnapshot

	bins      []int
	responses []float64
	slowdowns []float64
}

// FoldCounters captures the final snapshot of the Counters sink attached to
// probe, if any. Substrates call it once while building their result.
func (r *Result) FoldCounters(probe obs.Probe) {
	if c := obs.FindCounters(probe); c != nil {
		snap := c.Snapshot()
		r.Counters = &snap
	}
}

// Record appends one finished job's Table-I bin (0 when the workload has no
// bins) and response time, in reporting order.
func (r *Result) Record(bin int, response float64) {
	r.bins = append(r.bins, bin)
	r.responses = append(r.responses, response)
}

// RecordSlowdown appends one finished job's slowdown (response over isolated
// runtime), in reporting order. Substrates that cannot compute an isolated
// baseline record none.
func (r *Result) RecordSlowdown(s float64) { r.slowdowns = append(r.slowdowns, s) }

// Count is the number of recorded jobs.
func (r *Result) Count() int { return len(r.responses) }

// MeanResponseTime returns the average job response time, the paper's
// primary metric; 0 when no jobs were recorded. The sum runs in recording
// order so replays are bit-identical.
func (r *Result) MeanResponseTime() float64 {
	if len(r.responses) == 0 {
		return 0
	}
	var sum float64
	for _, x := range r.responses {
		sum += x
	}
	return sum / float64(len(r.responses))
}

// ResponseTimes returns a copy of the per-job response times in recording
// order.
func (r *Result) ResponseTimes() []float64 {
	out := make([]float64, len(r.responses))
	copy(out, r.responses)
	return out
}

// Slowdowns returns a copy of the per-job slowdowns in recording order.
func (r *Result) Slowdowns() []float64 {
	out := make([]float64, len(r.slowdowns))
	copy(out, r.slowdowns)
	return out
}

// BinMeans returns the mean response time per Table-I bin, accumulated in
// recording order.
func (r *Result) BinMeans() map[int]float64 {
	sums := make(map[int]float64)
	counts := make(map[int]int)
	for i, bin := range r.bins {
		sums[bin] += r.responses[i]
		counts[bin]++
	}
	out := make(map[int]float64, len(sums))
	for bin, n := range counts { // range-ok: per-key division, no cross-key accumulation
		out[bin] = sums[bin] / float64(n)
	}
	return out
}
