package substrate

import "lasmq/internal/sched"

// ViewSet is the job-view registry a substrate refills every scheduling
// round: the sched.JobView slice handed to the policy, plus two optional
// side maps — each job's ready container demand (consumed by share
// quantization) and an upper bound on each job's decision-metric growth rate
// (consumed by sched.ObserveHinter horizon gating). All three reuse their
// backing storage across rounds, which is what keeps the steady scheduling
// path allocation-free.
type ViewSet struct {
	views    []sched.JobView
	demand   map[int]float64
	rates    sched.Assignment
	hasRates bool
}

// Begin starts a new round, clearing the view slice and whichever side maps
// the round needs: withDemand for full rounds that quantize shares,
// withRates for observation rounds feeding a horizon-hinting policy.
// Untouched maps keep their (stale) contents and must not be read.
func (vs *ViewSet) Begin(withDemand, withRates bool) {
	vs.views = vs.views[:0]
	if withDemand {
		if vs.demand == nil {
			vs.demand = make(map[int]float64)
		}
		clear(vs.demand)
	}
	vs.hasRates = withRates
	if withRates {
		if vs.rates == nil {
			vs.rates = make(sched.Assignment)
		}
		clear(vs.rates)
	}
}

// Add registers one schedulable job's view for this round.
func (vs *ViewSet) Add(v sched.JobView) { vs.views = append(vs.views, v) }

// SetDemand records a job's ready container demand (Begin(true, ·) rounds).
func (vs *ViewSet) SetDemand(id int, d float64) { vs.demand[id] = d }

// SetRate records a job's metric-rate bound (Begin(·, true) rounds).
func (vs *ViewSet) SetRate(id int, r float64) { vs.rates[id] = r }

// Len is the number of views registered this round.
func (vs *ViewSet) Len() int { return len(vs.views) }

// Views returns this round's view slice, valid until the next Begin.
func (vs *ViewSet) Views() []sched.JobView { return vs.views }

// Demand returns the ready-demand map filled since Begin(true, ·).
func (vs *ViewSet) Demand() map[int]float64 { return vs.demand }

// Rates returns the metric-rate-bound map filled since Begin(·, true).
func (vs *ViewSet) Rates() sched.Assignment { return vs.rates }

// HasRates reports whether this round carries rate bounds (Begin(·, true)).
func (vs *ViewSet) HasRates() bool { return vs.hasRates }

// Reset empties the registry, dropping references into the caller's job
// state while keeping the backing storage — a pooled substrate arena calls
// this between runs so a recycled ViewSet cannot pin the previous workload.
func (vs *ViewSet) Reset() {
	clear(vs.views)
	vs.views = vs.views[:0]
	clear(vs.demand)
	clear(vs.rates)
	vs.hasRates = false
}
