package substrate

// SlabPool is a chunked free-list arena: records are carved from fixed-size
// chunks (so pointers to them are stable for the pool's lifetime) and
// returned records are recycled before a new chunk is touched. It is the
// streaming substrates' complement to GrowSlab: where GrowSlab sizes a slab
// to the whole trace up front, a SlabPool holds only the records that are
// live at once, so a million-job run whose live set peaks at a few thousand
// jobs allocates a few thousand records — peak heap tracks live jobs, not
// trace length. Like the rest of the kernel it is single-loop state: not
// safe for concurrent use.
type SlabPool[T any] struct {
	// Reset, when non-nil, replaces the default zero-on-Get recycling: it
	// runs on each record as it is Put back, and must leave the record
	// equivalent to the zero value for the pool's users while retaining any
	// reusable backing capacity (slices trimmed to length 0, not nil).
	// Running at Put time means a parked record never pins memory beyond
	// what its Reset deliberately keeps.
	Reset func(*T)

	chunks [][]T
	free   []*T
	next   int // carve index into the newest chunk
	stats  SlabStats
}

// slabChunk is the per-chunk record count: large enough to amortize chunk
// allocations, small enough that a near-idle run wastes little.
const slabChunk = 1024

// SlabStats reports a pool's recycling behaviour: Live records currently
// checked out, the Peak live high-water mark, and how many Gets were served
// by Recycled (previously returned) records rather than fresh carves.
type SlabStats struct {
	Live     int
	Peak     int
	Recycled int
}

// Get returns a zeroed record, recycling a returned one when available.
func (p *SlabPool[T]) Get() *T {
	p.stats.Live++
	if p.stats.Live > p.stats.Peak {
		p.stats.Peak = p.stats.Live
	}
	if n := len(p.free); n > 0 {
		x := p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
		if p.Reset == nil {
			var zero T
			*x = zero
		}
		p.stats.Recycled++
		return x
	}
	if len(p.chunks) == 0 || p.next == slabChunk {
		p.chunks = append(p.chunks, make([]T, slabChunk))
		p.next = 0
	}
	x := &p.chunks[len(p.chunks)-1][p.next]
	p.next++
	return x
}

// Put returns a record to the pool for recycling. The caller must not use it
// afterwards; the record is zeroed on its next Get, or — when Reset is set —
// reset immediately here.
func (p *SlabPool[T]) Put(x *T) {
	p.stats.Live--
	if p.Reset != nil {
		p.Reset(x)
	}
	p.free = append(p.free, x)
}

// Stats returns the pool's current recycling statistics.
func (p *SlabPool[T]) Stats() SlabStats { return p.stats }
