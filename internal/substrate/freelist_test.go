package substrate

import "testing"

func TestSlabPoolRecycles(t *testing.T) {
	var p SlabPool[[4]int]
	a := p.Get()
	b := p.Get()
	if a == b {
		t.Fatal("distinct Gets returned the same record")
	}
	(*a)[0] = 7
	p.Put(a)
	c := p.Get()
	if c != a {
		t.Fatal("Get did not recycle the returned record")
	}
	if (*c)[0] != 0 {
		t.Fatal("recycled record not zeroed")
	}
	s := p.Stats()
	if s.Live != 2 || s.Peak != 2 || s.Recycled != 1 {
		t.Fatalf("stats = %+v, want Live 2 Peak 2 Recycled 1", s)
	}
}

func TestSlabPoolStablePointersAcrossChunks(t *testing.T) {
	var p SlabPool[int]
	n := 3*slabChunk + 5
	ptrs := make([]*int, n)
	for i := range ptrs {
		ptrs[i] = p.Get()
		*ptrs[i] = i
	}
	for i, x := range ptrs {
		if *x != i {
			t.Fatalf("record %d clobbered after later carves: got %d", i, *x)
		}
	}
	s := p.Stats()
	if s.Live != n || s.Peak != n || s.Recycled != 0 {
		t.Fatalf("stats = %+v, want Live/Peak %d Recycled 0", s, n)
	}
}

func TestSlabPoolPeakBoundsLive(t *testing.T) {
	var p SlabPool[int]
	// Churn far more records than are ever live at once: peak stays at the
	// live bound and all but the first window recycle.
	const window, total = 16, 1000
	live := make([]*int, 0, window)
	for i := 0; i < total; i++ {
		if len(live) == window {
			p.Put(live[0])
			live = live[1:]
		}
		live = append(live, p.Get())
	}
	s := p.Stats()
	if s.Peak != window {
		t.Fatalf("peak = %d, want %d", s.Peak, window)
	}
	if s.Recycled != total-window {
		t.Fatalf("recycled = %d, want %d", s.Recycled, total-window)
	}
	if got := len(p.chunks); got != 1 {
		t.Fatalf("allocated %d chunks for a %d-record live set", got, window)
	}
}
