package substrate

// GrowSlab returns s resized to length n with zeroed contents, reusing the
// backing array when its capacity allows. It is the building block of the
// substrates' pooled arenas: per-run state lives in flat slabs that one
// worker reuses across runs (seed replication, benchmark loops) instead of
// re-allocating each time.
func GrowSlab[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	s = s[:n]
	clear(s)
	return s
}
