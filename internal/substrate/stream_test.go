package substrate

import (
	"errors"
	"fmt"
	"strings"
	"testing"
)

// failAfter yields ints 0..n-1 and then errors.
type failAfter struct {
	n, i int
}

func (s *failAfter) Next() (int, bool, error) {
	if s.i < s.n {
		s.i++
		return s.i - 1, true, nil
	}
	return 0, false, errors.New("tape ran out")
}

func TestSliceStream(t *testing.T) {
	src := SliceStream([]int{3, 1, 4})
	for _, want := range []int{3, 1, 4} {
		got, ok, err := src.Next()
		if err != nil || !ok || got != want {
			t.Fatalf("Next() = %v, %v, %v, want %v, true, nil", got, ok, err, want)
		}
	}
	for i := 0; i < 2; i++ { // exhaustion is sticky
		if got, ok, err := src.Next(); ok || err != nil || got != 0 {
			t.Fatalf("exhausted Next() = %v, %v, %v", got, ok, err)
		}
	}
}

// TestStridedPartitions pins the sharding contract: the strided shards of a
// stream partition it exactly — item i lands on shard i mod stride, every
// item on exactly one shard.
func TestStridedPartitions(t *testing.T) {
	items := make([]int, 17)
	for i := range items {
		items[i] = i * 10
	}
	const stride = 4
	seen := make(map[int]int)
	for offset := 0; offset < stride; offset++ {
		src := Strided(SliceStream(items), offset, stride)
		for k := 0; ; k++ {
			item, ok, err := src.Next()
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				break
			}
			if want := (offset + k*stride) * 10; item != want {
				t.Fatalf("shard %d item %d: got %d, want %d", offset, k, item, want)
			}
			seen[item]++
		}
	}
	if len(seen) != len(items) {
		t.Fatalf("shards cover %d of %d items", len(seen), len(items))
	}
	for item, n := range seen {
		if n != 1 {
			t.Fatalf("item %d yielded %d times", item, n)
		}
	}
}

func TestStridedPropagatesError(t *testing.T) {
	// Offset 2 of stride 4 over a stream that dies after 1 item: the shard
	// never owns an item, but must still surface the error.
	src := Strided[int](&failAfter{n: 1}, 2, 4)
	if _, ok, err := src.Next(); ok || err == nil {
		t.Fatalf("Next() = _, %v, %v, want error", ok, err)
	}
}

// rec is the test record type for cursor and pool tests.
type rec struct {
	val     float64
	scratch []int
}

func testCursor(src Stream[float64], pool *SlabPool[rec], validate func(int, float64, *float64) error) *StreamCursor[float64, rec] {
	return &StreamCursor[float64, rec]{
		Src:      src,
		Pool:     pool,
		Arrival:  func(s *float64) float64 { return *s },
		Validate: validate,
		Fill:     func(r *rec, s *float64) { r.val = *s },
		Wrap:     func(err error) error { return fmt.Errorf("test: source: %w", err) },
	}
}

func TestStreamCursorPeekPop(t *testing.T) {
	pool := &SlabPool[rec]{}
	c := testCursor(SliceStream([]float64{1, 2, 2, 5}), pool, nil)
	for _, want := range []float64{1, 2, 2, 5} {
		// Peek is idempotent until Pop.
		for i := 0; i < 2; i++ {
			a, ok, err := c.Peek()
			if err != nil || !ok || a != want {
				t.Fatalf("Peek() = %v, %v, %v, want %v, true, nil", a, ok, err, want)
			}
		}
		if r := c.Pop(); r.val != want {
			t.Fatalf("Pop().val = %v, want %v", r.val, want)
		}
	}
	if a, ok, err := c.Peek(); ok || err != nil {
		t.Fatalf("exhausted Peek() = %v, %v, %v", a, ok, err)
	}
	if got := pool.Stats().Live; got != 4 {
		t.Fatalf("pool live = %d, want 4 (nothing returned)", got)
	}
}

// TestStreamCursorValidateLatches pins the error protocol: a Validate
// rejection surfaces from Peek with the substrate's own error surface, and
// every later Peek repeats it instead of reading further.
func TestStreamCursorValidateLatches(t *testing.T) {
	reads := 0
	src := SliceStream([]float64{1, 5, 2, 9})
	counted := streamFunc[float64](func() (float64, bool, error) {
		reads++
		return src.Next()
	})
	c := testCursor(counted, &SlabPool[rec]{}, func(n int, prev float64, s *float64) error {
		if n > 0 && *s < prev {
			return fmt.Errorf("test: not sorted at item %d", n)
		}
		return nil
	})
	for i := 0; i < 2; i++ { // 1 then 5 pass validation
		if _, ok, err := c.Peek(); !ok || err != nil {
			t.Fatal(ok, err)
		}
		c.Pop()
	}
	_, ok, err := c.Peek()
	if ok || err == nil || !strings.Contains(err.Error(), "not sorted at item 2") {
		t.Fatalf("Peek() = _, %v, %v, want validation error", ok, err)
	}
	readsAtError := reads
	for i := 0; i < 3; i++ {
		if _, ok, err2 := c.Peek(); ok || err2 == nil || err2.Error() != err.Error() {
			t.Fatalf("latched Peek() = _, %v, %v, want repeated %v", ok, err2, err)
		}
	}
	if reads != readsAtError {
		t.Fatalf("latched cursor read %d more items from the stream", reads-readsAtError)
	}
}

func TestStreamCursorWrapsSourceError(t *testing.T) {
	c := &StreamCursor[int, rec]{
		Src:     &failAfter{n: 0},
		Pool:    &SlabPool[rec]{},
		Arrival: func(s *int) float64 { return float64(*s) },
		Fill:    func(r *rec, s *int) { r.val = float64(*s) },
		Wrap:    func(err error) error { return fmt.Errorf("test: source: %w", err) },
	}
	_, ok, err := c.Peek()
	if ok || err == nil || err.Error() != "test: source: tape ran out" {
		t.Fatalf("Peek() = _, %v, %v, want wrapped source error", ok, err)
	}
}

// streamFunc adapts a closure to Stream.
type streamFunc[S any] func() (S, bool, error)

func (f streamFunc[S]) Next() (S, bool, error) { return f() }

// TestSlabPoolResetHook pins the Reset recycling contract: Reset runs at Put
// time, recycled records are handed back un-zeroed (Reset owns hygiene), and
// backing capacity a Reset retains survives the round trip.
func TestSlabPoolResetHook(t *testing.T) {
	resets := 0
	pool := &SlabPool[rec]{Reset: func(r *rec) {
		resets++
		r.val = 0
		r.scratch = r.scratch[:0] // keep capacity
	}}
	a := pool.Get()
	a.val = 7
	a.scratch = append(a.scratch, 1, 2, 3)
	pool.Put(a)
	if resets != 1 {
		t.Fatalf("Reset ran %d times at Put, want 1", resets)
	}
	b := pool.Get()
	if b != a {
		t.Fatal("pool did not recycle the returned record")
	}
	if b.val != 0 || len(b.scratch) != 0 {
		t.Fatalf("recycled record not reset: %+v", b)
	}
	if cap(b.scratch) < 3 {
		t.Fatalf("recycled record lost its backing capacity: cap %d", cap(b.scratch))
	}
	st := pool.Stats()
	if st.Live != 1 || st.Peak != 1 || st.Recycled != 1 {
		t.Fatalf("stats = %+v, want Live 1 Peak 1 Recycled 1", st)
	}
}
