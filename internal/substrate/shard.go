// Sharded-runner kernel: the substrate-neutral machinery every sharded
// simulation runs on. A sharded run partitions the simulated system into
// Shards independent sub-systems, simulates each as its own run over its own
// source instance (typically Strided over a fresh stream), and folds the
// per-shard results in shard-index order. The two knobs are deliberately
// distinct:
//
//   - Shards is part of the simulated system. It changes results (jobs in
//     different shards never share capacity) and therefore belongs in cache
//     fingerprints. A Shards=1 run is byte-identical to an unsharded run.
//   - Workers is execution parallelism only — how many OS threads advance
//     shards concurrently, the way internal/runner fans seeds over a worker
//     pool. Shards are independent simulations, workers write disjoint result
//     slots, and the caller folds in shard-index order (never completion-race
//     order, which would make floating-point sums racy), so Workers NEVER
//     affects results: Workers=1 and Workers=8 are byte-identical.
//
// The machinery lived in internal/fluid first (PR 7); it moved here so the
// task-level engine's RunSharded is the same kernel instantiated over its own
// StreamResult rather than a re-implementation.
package substrate

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// ShardPlan is a validated, normalized execution shape for a sharded run:
// how many shards are simulated and how many workers advance them. Build one
// with PlanShards.
type ShardPlan struct {
	// Shards is the number of simulated partitions (>= 1).
	Shards int
	// Workers is the worker-pool size actually used (>= 1, <= Shards).
	Workers int
}

// PlanShards validates and normalizes the two sharding knobs shared by every
// substrate's sharded runner. shards is the number of simulated partitions
// (0 means 1); workers bounds concurrently advancing shards and defaults to
// runtime.GOMAXPROCS(0) when 0, so callers scale out to the machine without
// picking a number. serialize forces Workers to 1 — substrates set it when a
// probe is attached, so sinks need not be concurrency-safe and the event
// stream stays deterministic; being execution-only, that cannot change
// results either. Errors name the CLI flags (-shards, -shard-workers) that
// feed the knobs.
func PlanShards(shards, workers int, serialize bool) (ShardPlan, error) {
	if shards == 0 {
		shards = 1
	}
	if shards < 1 {
		return ShardPlan{}, fmt.Errorf("shards (-shards) must be >= 1, got %d", shards)
	}
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers < 1 {
		return ShardPlan{}, fmt.Errorf("shard workers (-shard-workers) must be >= 1, got %d (0 selects GOMAXPROCS)", workers)
	}
	if workers > shards {
		workers = shards
	}
	if serialize {
		workers = 1
	}
	return ShardPlan{Shards: shards, Workers: workers}, nil
}

// RunShards executes run for every shard of the plan and returns the
// per-shard results in shard-index order, ready for a deterministic fold.
//
// With Workers=1 shards advance serially in index order (the deterministic-
// probe-stream path). Otherwise a work-stealing pool runs them: every worker
// claims the next unstarted shard off a shared atomic counter the moment it
// goes idle, so a worker that drew light shards keeps pulling work while a
// heavy shard is still running — no dispatcher goroutine, no fixed
// assignment. Which worker runs a shard remains execution-only: workers
// write disjoint slots of the results grid, so the pool size (and the claim
// order) cannot affect the outcome.
//
// Errors latch: the first failure stops further shards from being claimed
// (already-running shards finish), and the error of the lowest-index failed
// shard is returned, wrapped as "shard K: ...". With Workers=1 the latch
// makes the run stop at the first failing shard, which is also the
// lowest-index one, so serial error surfaces are deterministic.
func RunShards[R any](plan ShardPlan, run func(shard int) (R, error)) ([]R, error) {
	results := make([]R, plan.Shards)
	errs := make([]error, plan.Shards)
	var failed atomic.Bool
	runShard := func(shard int) {
		r, err := run(shard)
		if err != nil {
			errs[shard] = err
			failed.Store(true)
			return
		}
		results[shard] = r
	}

	if plan.Workers <= 1 {
		for shard := 0; shard < plan.Shards && !failed.Load(); shard++ {
			runShard(shard)
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < plan.Workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for !failed.Load() {
					shard := int(next.Add(1)) - 1
					if shard >= plan.Shards {
						return
					}
					runShard(shard)
				}
			}()
		}
		wg.Wait()
	}

	for shard, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("shard %d: %w", shard, err)
		}
	}
	return results, nil
}
