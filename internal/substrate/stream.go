// Streaming kernel: the substrate-neutral machinery both simulators stream
// traces through. A Stream yields one item at a time in nondecreasing arrival
// order; a Cursor adapts either a pre-materialized record list (SliceCursor)
// or a live Stream backed by a SlabPool (StreamCursor) to a run loop's
// peek/pop arrival split. The contract moved here from internal/fluid so the
// trace substrate no longer has to import a simulator for the JobSpec type:
// fluid and trace alias Source/JobSpec from this package, and the task-level
// engine instantiates the same generics over job.Spec.
package substrate

// Stream yields the items of a trace one at a time in nondecreasing arrival
// order. Next returns the next item and true, or a zero item and false once
// the stream is exhausted; an error aborts the consuming run. Implementations
// must be deterministic: two streams built from the same inputs (same seed,
// same bytes) must yield identical sequences, the property the streaming-
// versus-materialized differential tests pin.
type Stream[S any] interface {
	Next() (S, bool, error)
}

// JobSpec describes one flat trace job — the canonical spec type of the
// streaming kernel, re-exported as fluid.JobSpec and trace.JobSpec.
type JobSpec struct {
	// ID uniquely identifies the job within a trace.
	ID int
	// Arrival is the submission time.
	Arrival float64
	// Size is the total service demand in container-time units (the paper
	// normalizes Facebook job sizes to a mean of roughly 20).
	Size float64
	// Width is the job's maximum parallelism in containers (>= 1).
	Width float64
	// Priority in [1,5]; used by the Fair baseline.
	Priority int
	// SizeHint is the a priori estimate for SJF/SRTF; zero means exact.
	SizeHint float64
}

// Source is the canonical trace-source contract: a Stream of flat JobSpecs.
// fluid.Source and trace.Source alias it.
type Source = Stream[JobSpec]

// sliceStream adapts a materialized item list to the Stream interface.
type sliceStream[S any] struct {
	items []S
	i     int
}

// SliceStream returns a Stream that replays an in-memory list in slice order
// (the caller must have sorted it by arrival, as trace generators do).
func SliceStream[S any](items []S) Stream[S] { return &sliceStream[S]{items: items} }

func (s *sliceStream[S]) Next() (S, bool, error) {
	if s.i >= len(s.items) {
		var zero S
		return zero, false, nil
	}
	item := s.items[s.i]
	s.i++
	return item, true, nil
}

// Strided filters a stream down to one shard's items: of the stream's items
// (0-indexed), it yields those whose index is congruent to offset modulo
// stride. Each shard of a sharded run wraps its own independent stream
// instance — every shard regenerates or re-reads the full sequence and keeps
// every stride-th item — so shards never contend on a shared reader and a
// bounded worker pool cannot deadlock on a demultiplexed stream.
func Strided[S any](src Stream[S], offset, stride int) Stream[S] {
	return &stridedStream[S]{src: src, offset: offset, stride: stride}
}

type stridedStream[S any] struct {
	src            Stream[S]
	offset, stride int
	i              int
}

func (s *stridedStream[S]) Next() (S, bool, error) {
	for {
		item, ok, err := s.src.Next()
		if !ok || err != nil {
			var zero S
			return zero, false, err
		}
		mine := s.i%s.stride == s.offset
		s.i++
		if mine {
			return item, true, nil
		}
	}
}

// Cursor feeds a run loop its arrival stream: Peek reports the next arrival
// time (or that the stream is exhausted, or a source error), and Pop consumes
// the peeked record. A materialized run walks its pre-sorted record list
// (SliceCursor); a streaming run pulls specs from a Stream and materializes
// records from a free-list pool on demand (StreamCursor). Both feed one event
// loop, so the operations — and their floating-point order — are identical,
// which is what makes the streaming-versus-materialized differentials
// byte-exact.
type Cursor[R any] interface {
	Peek() (arrival float64, ok bool, err error)
	Pop() *R
}

// SliceCursor walks a materialized run's record list, pre-sorted by arrival.
type SliceCursor[R any] struct {
	// List is the pre-sorted record list (stable on trace order).
	List []*R
	// Arrival extracts a record's arrival time.
	Arrival func(*R) float64

	i int
}

// Peek reports the next record's arrival time, or exhaustion.
func (c *SliceCursor[R]) Peek() (float64, bool, error) {
	if c.i >= len(c.List) {
		return 0, false, nil
	}
	return c.Arrival(c.List[c.i]), true, nil
}

// Pop consumes the peeked record.
func (c *SliceCursor[R]) Pop() *R {
	x := c.List[c.i]
	c.i++
	return x
}

// StreamCursor adapts a Stream to the arrival-cursor contract: Peek reads one
// spec ahead (validating it), Pop materializes the run's record from the
// free-list pool via the Fill hook. Completed records return to the pool
// through the consuming run's completion path, so run state is bounded by the
// peak number of live records, not the stream length.
type StreamCursor[S, R any] struct {
	// Src is the stream of specs; Pool recycles the materialized records.
	Src  Stream[S]
	Pool *SlabPool[R]
	// Arrival extracts a spec's arrival time.
	Arrival func(*S) float64
	// Validate, when non-nil, checks each spec before it is admitted to the
	// run; prev is the previously yielded spec's arrival (meaningful when
	// n > 0), so substrates enforce the nondecreasing-order contract with
	// their own error surface.
	Validate func(n int, prev float64, s *S) error
	// Fill materializes a pooled record from the popped spec.
	Fill func(*R, *S)
	// Wrap, when non-nil, decorates errors the stream itself returns.
	Wrap func(error) error

	spec S
	arr  float64
	have bool
	done bool
	err  error
	last float64 // last yielded arrival, for Validate's nondecreasing check
	n    int     // specs yielded, for error positions
}

// Peek reports the next spec's arrival time, reading (and validating) one
// spec ahead of the run loop.
func (c *StreamCursor[S, R]) Peek() (float64, bool, error) {
	if c.err != nil {
		return 0, false, c.err
	}
	if c.have {
		return c.arr, true, nil
	}
	if c.done {
		return 0, false, nil
	}
	spec, ok, err := c.Src.Next()
	if err != nil {
		if c.Wrap != nil {
			err = c.Wrap(err)
		}
		c.err = err
		return 0, false, c.err
	}
	if !ok {
		c.done = true
		return 0, false, nil
	}
	if c.Validate != nil {
		if err := c.Validate(c.n, c.last, &spec); err != nil {
			c.err = err
			return 0, false, c.err
		}
	}
	c.n++
	c.arr = c.Arrival(&spec)
	c.last = c.arr
	c.spec = spec
	c.have = true
	return c.arr, true, nil
}

// Pop materializes the peeked spec as a pooled record.
func (c *StreamCursor[S, R]) Pop() *R {
	x := c.Pool.Get()
	c.Fill(x, &c.spec)
	c.have = false
	return x
}
