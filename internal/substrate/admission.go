package substrate

import "fmt"

// Queue is the paper's job-admission module, generic over the substrate's
// job record: arrived jobs wait in submission order and are released while
// the running-job cap allows, each receiving a dense admission sequence
// number — the tie-break every policy and launch comparator uses, so
// admission order is what makes runs deterministic. Like the rest of the
// kernel it is single-loop state: not safe for concurrent use.
type Queue[J any] struct {
	limit   int // max concurrently running jobs; 0 means unlimited
	waiting []J
	running int
	nextSeq int
}

// NewQueue returns an admission queue bounding concurrently running jobs to
// limit; 0 means unlimited.
func NewQueue[J any](limit int) *Queue[J] {
	return &Queue[J]{limit: limit}
}

// Push appends an arrived job to the waiting queue.
func (q *Queue[J]) Push(j J) { q.waiting = append(q.waiting, j) }

// Admit releases waiting jobs in FIFO order while the running-job cap
// allows, calling release with each job and its admission sequence number.
func (q *Queue[J]) Admit(release func(j J, seq int)) {
	for len(q.waiting) > 0 {
		if q.limit > 0 && q.running >= q.limit {
			return
		}
		j := q.waiting[0]
		q.waiting = q.waiting[1:]
		q.running++
		seq := q.nextSeq
		q.nextSeq++
		release(j, seq)
	}
}

// Done records one running job's completion, freeing an admission slot.
func (q *Queue[J]) Done() { q.running-- }

// Running is the number of admitted, uncompleted jobs.
func (q *Queue[J]) Running() int { return q.running }

// Waiting is the number of arrived jobs still held by the admission module.
func (q *Queue[J]) Waiting() int { return len(q.waiting) }

// Stuck reports the inconsistency a substrate checks for when its cluster
// has gone idle with jobs still waiting: admission can never release them,
// so the run would hang. The substrate name prefixes the error ("engine",
// "fluid").
func (q *Queue[J]) Stuck(substrate string) error {
	return fmt.Errorf("%s: %d jobs stuck in admission with empty cluster", substrate, len(q.waiting))
}
