package substrate

import (
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
)

func TestPlanShardsDefaults(t *testing.T) {
	p, err := PlanShards(0, 0, false)
	if err != nil {
		t.Fatalf("PlanShards(0,0): %v", err)
	}
	if p.Shards != 1 {
		t.Fatalf("Shards = %d, want 1 (0 means 1)", p.Shards)
	}
	// Workers defaults to GOMAXPROCS then clamps to Shards.
	if p.Workers != 1 {
		t.Fatalf("Workers = %d, want 1 (clamped to shards)", p.Workers)
	}

	want := runtime.GOMAXPROCS(0)
	p, err = PlanShards(want+7, 0, false)
	if err != nil {
		t.Fatalf("PlanShards: %v", err)
	}
	if p.Workers != want {
		t.Fatalf("Workers = %d, want GOMAXPROCS default %d", p.Workers, want)
	}
}

func TestPlanShardsValidation(t *testing.T) {
	if _, err := PlanShards(-2, 1, false); err == nil || !strings.Contains(err.Error(), "-shards") {
		t.Fatalf("negative shards error should name the -shards flag, got %v", err)
	}
	if _, err := PlanShards(4, -1, false); err == nil || !strings.Contains(err.Error(), "-shard-workers") {
		t.Fatalf("negative workers error should name the -shard-workers flag, got %v", err)
	}
}

func TestPlanShardsClampAndSerialize(t *testing.T) {
	p, err := PlanShards(3, 16, false)
	if err != nil {
		t.Fatalf("PlanShards: %v", err)
	}
	if p.Workers != 3 {
		t.Fatalf("Workers = %d, want clamp to 3 shards", p.Workers)
	}
	p, err = PlanShards(8, 8, true)
	if err != nil {
		t.Fatalf("PlanShards: %v", err)
	}
	if p.Workers != 1 {
		t.Fatalf("Workers = %d, want 1 under serialize", p.Workers)
	}
}

func TestRunShardsOrderAndResults(t *testing.T) {
	for _, workers := range []int{1, 4} {
		plan := ShardPlan{Shards: 9, Workers: workers}
		got, err := RunShards(plan, func(shard int) (int, error) {
			return shard * shard, nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(got) != 9 {
			t.Fatalf("workers=%d: %d results, want 9", workers, len(got))
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: slot %d = %d, want %d (results must land in shard-index order)", workers, i, v, i*i)
			}
		}
	}
}

func TestRunShardsErrorNamesShardIndex(t *testing.T) {
	sentinel := errors.New("source exploded")
	for _, workers := range []int{1, 4} {
		_, err := RunShards(ShardPlan{Shards: 6, Workers: workers}, func(shard int) (int, error) {
			if shard == 3 {
				return 0, sentinel
			}
			return shard, nil
		})
		if err == nil {
			t.Fatalf("workers=%d: want error", workers)
		}
		if !errors.Is(err, sentinel) {
			t.Fatalf("workers=%d: error %v should wrap the shard's error", workers, err)
		}
		if !strings.Contains(err.Error(), "shard 3") {
			t.Fatalf("workers=%d: error %q should carry the failed shard index", workers, err)
		}
	}
}

func TestRunShardsLowestIndexErrorWins(t *testing.T) {
	// Two shards fail; the reported error must be the lowest-index one
	// regardless of completion order.
	_, err := RunShards(ShardPlan{Shards: 8, Workers: 4}, func(shard int) (int, error) {
		if shard == 2 || shard == 6 {
			return 0, fmt.Errorf("boom %d", shard)
		}
		return shard, nil
	})
	if err == nil || !strings.Contains(err.Error(), "shard 2") {
		t.Fatalf("error %v, want the lowest failed shard (2) reported", err)
	}
}

func TestRunShardsSerialErrorLatch(t *testing.T) {
	// With Workers=1 the first failure stops later shards from running at all.
	var ran atomic.Int64
	_, err := RunShards(ShardPlan{Shards: 5, Workers: 1}, func(shard int) (int, error) {
		ran.Add(1)
		if shard == 1 {
			return 0, errors.New("stop here")
		}
		return shard, nil
	})
	if err == nil {
		t.Fatal("want error")
	}
	if n := ran.Load(); n != 2 {
		t.Fatalf("ran %d shards, want 2 (latch stops the serial loop)", n)
	}
}

func TestRunShardsWorkStealing(t *testing.T) {
	// More shards than workers: every shard must still run exactly once.
	var ran atomic.Int64
	got, err := RunShards(ShardPlan{Shards: 32, Workers: 4}, func(shard int) (int, error) {
		ran.Add(1)
		return shard, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if n := ran.Load(); n != 32 {
		t.Fatalf("ran %d shards, want 32", n)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("slot %d = %d", i, v)
		}
	}
}

// More shards than items: the high shards see empty strided streams and must
// yield valid empty results that fold cleanly (the sharded runners' zero
// StreamResult), not errors.
func TestStridedMoreShardsThanItems(t *testing.T) {
	const shards = 8
	items := []int{10, 20, 30} // fewer items than shards
	var total int
	for shard := 0; shard < shards; shard++ {
		s := Strided(SliceStream(items), shard, shards)
		n := 0
		for {
			v, ok, err := s.Next()
			if err != nil {
				t.Fatalf("shard %d: %v", shard, err)
			}
			if !ok {
				break
			}
			if v != items[shard] {
				t.Fatalf("shard %d got %d, want %d", shard, v, items[shard])
			}
			n++
			total++
		}
		if shard < len(items) && n != 1 {
			t.Fatalf("shard %d yielded %d items, want 1", shard, n)
		}
		if shard >= len(items) && n != 0 {
			t.Fatalf("empty shard %d yielded %d items, want 0", shard, n)
		}
		// Exhausted streams must stay exhausted.
		if _, ok, err := s.Next(); ok || err != nil {
			t.Fatalf("shard %d: Next after exhaustion = (%v, %v)", shard, ok, err)
		}
	}
	if total != len(items) {
		t.Fatalf("shards saw %d items total, want %d", total, len(items))
	}
}

type errStream struct {
	items []int
	i     int
	err   error
}

func (s *errStream) Next() (int, bool, error) {
	if s.i >= len(s.items) {
		return 0, false, s.err
	}
	v := s.items[s.i]
	s.i++
	return v, true, nil
}

// A source error inside shard k>0's strided stream must propagate out of the
// sharded run with the shard index attached.
func TestStridedErrorSurfacesWithShardIndex(t *testing.T) {
	sentinel := errors.New("read failed")
	const shards = 4
	results, err := RunShards(ShardPlan{Shards: shards, Workers: 1}, func(shard int) (int, error) {
		src := Strided[int](&errStream{items: []int{1, 2, 3, 4, 5, 6}, err: sentinel}, shard, shards)
		sum := 0
		for {
			v, ok, err := src.Next()
			if err != nil {
				return 0, err
			}
			if !ok {
				return sum, nil
			}
			sum += v
		}
	})
	if results != nil {
		t.Fatalf("results = %v, want nil on error", results)
	}
	if !errors.Is(err, sentinel) {
		t.Fatalf("error %v should wrap the source error", err)
	}
	// Shard 0 hits the latched error first (serial order), so the surfaced
	// index is 0 here; the shard-k>0 case needs shard 0 to succeed.
	if !strings.Contains(err.Error(), "shard 0") {
		t.Fatalf("error %q should carry a shard index", err)
	}

	// Now only shard 2 errors: index 2 must be named.
	_, err = RunShards(ShardPlan{Shards: shards, Workers: 1}, func(shard int) (int, error) {
		var src Stream[int]
		if shard == 2 {
			src = Strided[int](&errStream{items: []int{1, 2, 3, 4, 5, 6}, err: sentinel}, shard, shards)
		} else {
			src = Strided(SliceStream([]int{1, 2, 3, 4, 5, 6}), shard, shards)
		}
		sum := 0
		for {
			v, ok, err := src.Next()
			if err != nil {
				return 0, err
			}
			if !ok {
				return sum, nil
			}
			sum += v
		}
	})
	if !errors.Is(err, sentinel) || !strings.Contains(err.Error(), "shard 2") {
		t.Fatalf("error %v, want source error surfaced as shard 2", err)
	}
}
