package substrate_test

import (
	"math"
	"testing"

	"lasmq/internal/sched"
	"lasmq/internal/substrate"
)

// fakeView is a minimal sched.JobView for kernel tests.
type fakeView struct{ id, seq int }

func (v fakeView) ID() int                    { return v.id }
func (v fakeView) Seq() int                   { return v.seq }
func (v fakeView) Priority() int              { return 1 }
func (v fakeView) Attained() float64          { return 0 }
func (v fakeView) Estimated() float64         { return 0 }
func (v fakeView) ReadyDemand() float64       { return 1 }
func (v fakeView) RemainingDemand() float64   { return 1 }
func (v fakeView) SizeHint() float64          { return 1 }
func (v fakeView) RemainingSizeHint() float64 { return 1 }

// fakePolicy counts plain Assign invocations.
type fakePolicy struct{ assigns int }

func (p *fakePolicy) Name() string { return "fake" }
func (p *fakePolicy) Assign(now, capacity float64, jobs []sched.JobView) sched.Assignment {
	p.assigns++
	out := make(sched.Assignment, len(jobs))
	for _, j := range jobs {
		out[j.ID()] = 1
	}
	return out
}

// fakeBuffered adds the allocation-free assignment capability.
type fakeBuffered struct {
	fakePolicy
	intoCalls int
}

func (p *fakeBuffered) AssignInto(now, capacity float64, jobs []sched.JobView, out sched.Assignment) {
	p.intoCalls++
	clear(out)
	for _, j := range jobs {
		out[j.ID()] = 2
	}
}

// fakeObserver is a stateful policy without horizon hints.
type fakeObserver struct {
	fakePolicy
	observes int
	lastNow  float64
}

func (p *fakeObserver) Observe(now float64, jobs []sched.JobView) {
	p.observes++
	p.lastNow = now
}

// fakeHintObserver can bound its next state change.
type fakeHintObserver struct {
	fakeObserver
	horizon      float64
	horizonCalls int
}

func (p *fakeHintObserver) ObserveHorizon(now float64, jobs []sched.JobView, rates sched.Assignment) float64 {
	p.horizonCalls++
	return p.horizon
}

func admitAll(q *substrate.Queue[int]) (jobs, seqs []int) {
	q.Admit(func(j, seq int) {
		jobs = append(jobs, j)
		seqs = append(seqs, seq)
	})
	return jobs, seqs
}

func TestQueueUnlimited(t *testing.T) {
	q := substrate.NewQueue[int](0)
	for i := 10; i < 15; i++ {
		q.Push(i)
	}
	jobs, seqs := admitAll(q)
	if len(jobs) != 5 || q.Running() != 5 || q.Waiting() != 0 {
		t.Fatalf("unlimited admit released %d jobs, running=%d waiting=%d", len(jobs), q.Running(), q.Waiting())
	}
	for i := range jobs {
		if jobs[i] != 10+i || seqs[i] != i {
			t.Fatalf("release %d = (job %d, seq %d), want FIFO (job %d, seq %d)", i, jobs[i], seqs[i], 10+i, i)
		}
	}
}

func TestQueueLimitOne(t *testing.T) {
	q := substrate.NewQueue[int](1)
	q.Push(1)
	q.Push(2)
	jobs, _ := admitAll(q)
	if len(jobs) != 1 || jobs[0] != 1 || q.Waiting() != 1 {
		t.Fatalf("limit-1 admit released %v, waiting=%d", jobs, q.Waiting())
	}
	q.Done()
	jobs, seqs := admitAll(q)
	if len(jobs) != 1 || jobs[0] != 2 || seqs[0] != 1 {
		t.Fatalf("post-Done admit released %v seqs %v, want job 2 with seq 1", jobs, seqs)
	}
}

func TestQueueLimitAboveCount(t *testing.T) {
	q := substrate.NewQueue[int](100)
	q.Push(1)
	q.Push(2)
	if jobs, _ := admitAll(q); len(jobs) != 2 {
		t.Fatalf("limit above count should behave as unlimited, released %v", jobs)
	}
}

func TestQueueStuck(t *testing.T) {
	q := substrate.NewQueue[int](1)
	q.Push(1)
	q.Push(2)
	q.Push(3)
	admitAll(q)
	err := q.Stuck("fluid")
	want := "fluid: 2 jobs stuck in admission with empty cluster"
	if err == nil || err.Error() != want {
		t.Fatalf("Stuck = %v, want %q", err, want)
	}
}

func TestDriverBufferedDispatch(t *testing.T) {
	p := &fakeBuffered{}
	d := substrate.NewDriver(p)
	views := []sched.JobView{fakeView{id: 7}}
	a1 := d.Assign(0, 4, views)
	a2 := d.Assign(1, 4, views)
	if p.intoCalls != 2 || p.assigns != 0 {
		t.Fatalf("buffered dispatch: AssignInto called %d times, Assign %d; want 2, 0", p.intoCalls, p.assigns)
	}
	if a1[7] != 2 || a2[7] != 2 {
		t.Fatalf("buffered shares = %v / %v, want 2", a1[7], a2[7])
	}
}

func TestDriverPlainDispatch(t *testing.T) {
	p := &fakePolicy{}
	d := substrate.NewDriver(p)
	a := d.Assign(0, 4, []sched.JobView{fakeView{id: 3}})
	if p.assigns != 1 || a[3] != 1 {
		t.Fatalf("plain dispatch: assigns=%d alloc=%v", p.assigns, a)
	}
	if d.Observes() || d.NeedsRates() || d.ObservationDue(0) {
		t.Fatal("stateless policy should need no observation")
	}
	if h := d.Horizon(0, nil, nil); !math.IsInf(h, 1) {
		t.Fatalf("hintless Horizon = %v, want +Inf", h)
	}
}

func TestDriverObservationGating(t *testing.T) {
	p := &fakeHintObserver{horizon: 50}
	d := substrate.NewDriver(p)
	if !d.Observes() || !d.NeedsRates() {
		t.Fatal("capabilities not resolved")
	}
	if !d.ObservationDue(0) {
		t.Fatal("fresh driver must be dirty: first skipped round observes")
	}

	var vs substrate.ViewSet
	vs.Begin(false, true)
	vs.Add(fakeView{id: 1})
	vs.SetRate(1, 2.5)
	d.Observe(10, &vs)
	if p.observes != 1 || p.lastNow != 10 || p.horizonCalls != 1 {
		t.Fatalf("observe with rates: observes=%d lastNow=%v horizonCalls=%d", p.observes, p.lastNow, p.horizonCalls)
	}
	if d.ObservationDue(20) {
		t.Fatal("before the horizon with clean metrics, observation must be elided")
	}
	if !d.ObservationDue(50) {
		t.Fatal("at the horizon, observation is due again")
	}
	d.MarkDirty()
	if !d.ObservationDue(20) {
		t.Fatal("MarkDirty must force the next observation")
	}

	// An empty view set is a no-op and must not clear the dirty flag.
	vs.Begin(false, true)
	d.Observe(30, &vs)
	if p.observes != 1 {
		t.Fatalf("empty observe must not reach the policy, observes=%d", p.observes)
	}
	if !d.ObservationDue(20) {
		t.Fatal("empty observe must leave the driver dirty")
	}
}

func TestDriverObserveWithoutRates(t *testing.T) {
	p := &fakeHintObserver{horizon: 1e9}
	d := substrate.NewDriver(p)
	var vs substrate.ViewSet
	vs.Begin(false, false)
	vs.Add(fakeView{id: 1})
	d.Observe(5, &vs)
	if p.observes != 1 || p.horizonCalls != 0 {
		t.Fatalf("rate-less observe: observes=%d horizonCalls=%d, want 1, 0", p.observes, p.horizonCalls)
	}
	// A substrate that supplies no rate bounds (mini-YARN) gets no horizon
	// fast path: every skipped round observes.
	if !d.ObservationDue(6) {
		t.Fatal("without rate bounds the driver must stay dirty")
	}
}

func TestDriverPlainObserver(t *testing.T) {
	p := &fakeObserver{}
	d := substrate.NewDriver(p)
	if d.NeedsRates() {
		t.Fatal("plain observer must not request rates")
	}
	for _, now := range []float64{1, 2, 3} {
		if !d.ObservationDue(now) {
			t.Fatalf("plain observer must observe every skipped round (t=%v)", now)
		}
		var vs substrate.ViewSet
		vs.Begin(false, false)
		vs.Add(fakeView{id: 1})
		d.Observe(now, &vs)
	}
	if p.observes != 3 {
		t.Fatalf("observes = %d, want 3", p.observes)
	}
}

func TestViewSetReuse(t *testing.T) {
	var vs substrate.ViewSet
	vs.Begin(true, true)
	vs.Add(fakeView{id: 1})
	vs.SetDemand(1, 4)
	vs.SetRate(1, 0.5)
	if vs.Len() != 1 || vs.Demand()[1] != 4 || vs.Rates()[1] != 0.5 || !vs.HasRates() {
		t.Fatalf("round 1 state wrong: len=%d demand=%v rates=%v", vs.Len(), vs.Demand(), vs.Rates())
	}
	vs.Begin(true, false)
	if vs.Len() != 0 || len(vs.Demand()) != 0 || vs.HasRates() {
		t.Fatalf("Begin must clear requested maps: len=%d demand=%v hasRates=%v", vs.Len(), vs.Demand(), vs.HasRates())
	}
}

func TestResultAccumulator(t *testing.T) {
	var r substrate.Result
	if r.MeanResponseTime() != 0 || r.Count() != 0 {
		t.Fatal("empty accumulator must report zero")
	}
	r.Record(1, 10)
	r.Record(2, 30)
	r.Record(1, 20)
	r.RecordSlowdown(2)
	r.RecordSlowdown(6)
	if got := r.MeanResponseTime(); got != 20 {
		t.Fatalf("mean = %v, want 20", got)
	}
	if rt := r.ResponseTimes(); len(rt) != 3 || rt[0] != 10 || rt[2] != 20 {
		t.Fatalf("ResponseTimes = %v", rt)
	}
	if sd := r.Slowdowns(); len(sd) != 2 || sd[0] != 2 || sd[1] != 6 {
		t.Fatalf("Slowdowns = %v", sd)
	}
	bm := r.BinMeans()
	if bm[1] != 15 || bm[2] != 30 {
		t.Fatalf("BinMeans = %v", bm)
	}
	// Returned slices are copies: mutating them must not corrupt the record.
	r.ResponseTimes()[0] = -1
	if got := r.MeanResponseTime(); got != 20 {
		t.Fatalf("mean after external mutation = %v, want 20", got)
	}
}
