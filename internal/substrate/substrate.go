// Package substrate is the scheduling-substrate kernel shared by the three
// YARN-like substrates of this reproduction: the task-level discrete-event
// simulator (internal/engine), the event-driven fluid simulator
// (internal/fluid), and the live concurrent mini-YARN (internal/yarn). The
// paper's Fig. 4 architecture is one pluggable scheduler plugged into one
// substrate; this package is the substrate-independent half of that plug —
// everything a substrate needs to drive a sched.Scheduler correctly without
// knowing how time, containers, or task execution work.
//
// The kernel owns four pieces:
//
//   - Queue: the job-admission module (FIFO waiting queue, running-job cap,
//     admission sequence numbers, stuck-admission detection).
//   - ViewSet: the scratch-reusing registry of scheduler-facing job views a
//     substrate rebuilds each round, with the optional ready-demand and
//     metric-rate-bound side maps.
//   - Driver: the policy invocation loop — BufferedAssigner/Observer/
//     ObserveHinter/Hinter capability dispatch, allocation-buffer reuse, and
//     the observation-horizon gating that lets substrates skip dead rounds
//     without desynchronizing stateful policies.
//   - Result: the response-time/slowdown/per-bin accumulator behind every
//     substrate's result type.
//
// What stays substrate-local, deliberately: time itself (virtual event time,
// fluid continuous time, scaled wall clock), allocation enforcement
// (container quantization and task launch vs. fractional rates), and the
// metric-rate physics feeding ObserveHorizon — those depend on how each
// substrate models execution.
package substrate

import (
	"math"
	"time"

	"lasmq/internal/obs"
	"lasmq/internal/sched"
)

// Driver drives one sched.Scheduler on behalf of a substrate. It resolves
// the policy's optional capabilities once at construction, owns the reused
// allocation buffer for buffered policies, and tracks the observation
// horizon that bounds when a skipped round must replay the policy's state
// mutation. A Driver (like the policy it wraps) is not safe for concurrent
// use: each run drives it from a single scheduling loop.
type Driver struct {
	policy    sched.Scheduler
	buffered  sched.BufferedAssigner
	observer  sched.Observer
	obsHinter sched.ObserveHinter
	hinter    sched.Hinter
	alloc     sched.Assignment
	probe     obs.Probe
	// latency receives the wall-clock seconds each round spends inside the
	// policy, resolved once at SetProbe. It is a side-channel, not a Probe
	// event: wall-clock readings differ run to run, and the deterministic
	// event-stream sinks (JSONL, ChromeTrace) must never see them.
	latency obs.RoundLatencyObserver

	// Observation gating for skipped rounds: obsHorizon is the earliest time
	// the policy's state could change, valid while dirty is false.
	dirty      bool
	obsHorizon float64
}

// NewDriver wraps a fresh policy instance for one run.
func NewDriver(policy sched.Scheduler) *Driver {
	d := &Driver{policy: policy, dirty: true}
	if b, ok := policy.(sched.BufferedAssigner); ok {
		d.buffered = b
		d.alloc = make(sched.Assignment)
	}
	if o, ok := policy.(sched.Observer); ok {
		d.observer = o
	}
	if h, ok := policy.(sched.ObserveHinter); ok {
		d.obsHinter = h
	}
	if h, ok := policy.(sched.Hinter); ok {
		d.hinter = h
	}
	return d
}

// Policy returns the wrapped scheduler.
func (d *Driver) Policy() sched.Scheduler { return d.policy }

// SetProbe attaches a telemetry probe to the driver and, when the policy
// (or a wrapper around it) emits its own events, forwards the probe through
// obs.ProbeSetter. A nil probe detaches telemetry everywhere.
func (d *Driver) SetProbe(p obs.Probe) {
	d.probe = p
	d.latency = nil
	if h := obs.FindHistograms(p); h != nil {
		d.latency = h
	}
	if ps, ok := d.policy.(obs.ProbeSetter); ok {
		ps.SetProbe(p)
	}
}

// Name reports the policy name for results.
func (d *Driver) Name() string { return d.policy.Name() }

// Assign runs one full policy invocation, going through AssignInto when the
// policy supports buffered assignment. The returned assignment aliases the
// driver's buffer for buffered policies and is valid until the next Assign
// call. A full invocation mutates stateful policies, so it also invalidates
// any previously computed observation horizon.
func (d *Driver) Assign(now, capacity float64, views []sched.JobView) sched.Assignment {
	d.dirty = true
	if d.probe != nil {
		d.probe.RoundExecuted(now, len(views))
	}
	if d.latency != nil {
		// Time only the policy invocation (wall-clock), feeding the
		// round-latency histogram. Guarded so unprobed runs never touch the
		// clock — the nil-probe path stays branch-and-return.
		start := time.Now()
		var out sched.Assignment
		if d.buffered != nil {
			d.buffered.AssignInto(now, capacity, views, d.alloc)
			out = d.alloc
		} else {
			out = d.policy.Assign(now, capacity, views)
		}
		d.latency.ObserveRoundLatency(time.Since(start).Seconds())
		return out
	}
	if d.buffered != nil {
		d.buffered.AssignInto(now, capacity, views, d.alloc)
		return d.alloc
	}
	return d.policy.Assign(now, capacity, views)
}

// MarkDirty invalidates the observation horizon. Substrates call it whenever
// the inputs behind the policy's decision metrics change outside a round —
// an attempt ends, a job is admitted — so the next skipped round re-observes.
func (d *Driver) MarkDirty() { d.dirty = true }

// Observes reports whether the policy is stateful (implements
// sched.Observer) and therefore needs skipped rounds replayed at all.
func (d *Driver) Observes() bool { return d.observer != nil }

// NeedsRates reports whether Observe can exploit per-job metric-rate bounds
// (the policy implements sched.ObserveHinter); substrates that can compute
// bounds should fill them into the ViewSet so observation calls are gated by
// the horizon instead of firing every skipped round.
func (d *Driver) NeedsRates() bool { return d.obsHinter != nil }

// ObservationDue reports whether a skipped round at time now must replay the
// policy's state mutation via Observe. Stateless policies never need it; for
// horizon-hinting policies the call is elided while the job set and metric
// rates are unchanged (not dirty) and now is strictly before the horizon.
func (d *Driver) ObservationDue(now float64) bool {
	if d.observer == nil {
		return false
	}
	if d.obsHinter != nil && !d.dirty && now < d.obsHorizon {
		return false
	}
	return true
}

// Observe replays the policy's per-round state mutation for a skipped round
// over the views in vs. An empty view set is a no-op: a full round returns
// before invoking the policy when there is nothing to schedule, and skipped
// rounds must match. When the policy hints horizons and vs carries rate
// bounds, the next horizon is recorded and the dirty flag cleared, arming
// ObservationDue's fast path.
func (d *Driver) Observe(now float64, vs *ViewSet) {
	if d.observer == nil || vs.Len() == 0 {
		return
	}
	d.observer.Observe(now, vs.views)
	if d.obsHinter != nil && vs.hasRates {
		d.obsHorizon = d.obsHinter.ObserveHorizon(now, vs.views, vs.rates)
		d.dirty = false
	}
}

// Horizon returns the earliest time strictly after now at which the policy's
// decision could change given the allocation it just returned, or +Inf when
// the policy publishes no change points (does not implement sched.Hinter).
func (d *Driver) Horizon(now float64, views []sched.JobView, alloc sched.Assignment) float64 {
	if d.hinter == nil {
		return math.Inf(1)
	}
	return d.hinter.Horizon(now, views, alloc)
}
