package substrate_test

import (
	"math"
	"testing"
	"testing/quick"

	"lasmq/internal/dist"
	"lasmq/internal/fluid"
	"lasmq/internal/sched"
	"lasmq/internal/substrate"
)

// The Result property suite: every derived statistic the accumulator reports
// must equal a brute-force recomputation from the raw recorded events. The
// accumulator sums in recording order and so does the reference, so the
// comparisons are exact (==), not approximate — any drift is a real
// bookkeeping bug, not float noise.

// recomputed is the brute-force reference built directly from the events.
type recomputed struct {
	count     int
	mean      float64
	responses []float64
	slowdowns []float64
	binMeans  map[int]float64
}

// recompute folds the raw (bin, response) and slowdown streams the way the
// accumulator documents: sums in recording order.
func recompute(bins []int, responses, slowdowns []float64) recomputed {
	ref := recomputed{
		count:     len(responses),
		responses: responses,
		slowdowns: slowdowns,
		binMeans:  make(map[int]float64),
	}
	if len(responses) > 0 {
		var sum float64
		for _, x := range responses {
			sum += x
		}
		ref.mean = sum / float64(len(responses))
	}
	binSums := make(map[int]float64)
	binCounts := make(map[int]int)
	for i, bin := range bins {
		binSums[bin] += responses[i]
		binCounts[bin]++
	}
	for bin, n := range binCounts { // range-ok: per-key division, no cross-key accumulation
		ref.binMeans[bin] = binSums[bin] / float64(n)
	}
	return ref
}

// assertMatches compares the accumulator against the reference exactly.
func assertMatches(t *testing.T, res *substrate.Result, ref recomputed) bool {
	t.Helper()
	ok := true
	if got := res.Count(); got != ref.count {
		t.Errorf("Count = %d, want %d", got, ref.count)
		ok = false
	}
	if got := res.MeanResponseTime(); got != ref.mean {
		t.Errorf("MeanResponseTime = %v, brute force %v", got, ref.mean)
		ok = false
	}
	got := res.ResponseTimes()
	for i := range ref.responses {
		if got[i] != ref.responses[i] {
			t.Errorf("ResponseTimes[%d] = %v, want %v", i, got[i], ref.responses[i])
			ok = false
		}
	}
	gotS := res.Slowdowns()
	if len(gotS) != len(ref.slowdowns) {
		t.Errorf("Slowdowns len = %d, want %d", len(gotS), len(ref.slowdowns))
		ok = false
	} else {
		for i := range ref.slowdowns {
			if gotS[i] != ref.slowdowns[i] {
				t.Errorf("Slowdowns[%d] = %v, want %v", i, gotS[i], ref.slowdowns[i])
				ok = false
			}
		}
	}
	gotB := res.BinMeans()
	if len(gotB) != len(ref.binMeans) {
		t.Errorf("BinMeans has %d bins, want %d", len(gotB), len(ref.binMeans))
		ok = false
	}
	for bin, want := range ref.binMeans { // range-ok: independent per-bin equality checks
		if gotB[bin] != want {
			t.Errorf("BinMeans[%d] = %v, brute force %v", bin, gotB[bin], want)
			ok = false
		}
	}
	return ok
}

// TestResultMatchesBruteForce drives the accumulator with randomized event
// streams — varied lengths, bins and magnitudes — and checks every statistic
// against the reference.
func TestResultMatchesBruteForce(t *testing.T) {
	property := func(seed int64, n uint8) bool {
		r := dist.New(seed)
		jobs := int(n % 64)
		bins := make([]int, jobs)
		responses := make([]float64, jobs)
		slowdowns := make([]float64, jobs)
		var res substrate.Result
		for i := 0; i < jobs; i++ {
			bins[i] = dist.IntBetween(r, 0, 4)
			// Heavy-tailed magnitudes exercise non-associative float sums.
			responses[i] = dist.BoundedPareto(r, 1.1, 1e-3, 1e9)
			slowdowns[i] = 1 + dist.Exponential(r, 10)
			res.Record(bins[i], responses[i])
			res.RecordSlowdown(slowdowns[i])
		}
		return assertMatches(t, &res, recompute(bins, responses, slowdowns))
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestResultMatchesFluidRawEvents closes the loop on a real substrate: run
// randomized traces through the fluid simulator and recompute the statistics
// from the raw per-job completion records (Result.Jobs). The accumulator and
// the recomputation must agree exactly, event for event.
func TestResultMatchesFluidRawEvents(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		r := dist.New(seed)
		jobs := dist.IntBetween(r, 1, 60)
		arrivals, err := dist.NewPoissonProcess(r, 5)
		if err != nil {
			t.Fatal(err)
		}
		specs := make([]fluid.JobSpec, jobs)
		for i := range specs {
			specs[i] = fluid.JobSpec{
				ID:       i + 1,
				Arrival:  arrivals.Next(),
				Size:     dist.BoundedPareto(r, 1.3, 1, 1e4),
				Width:    float64(dist.IntBetween(r, 1, 8)),
				Priority: 1,
			}
		}
		res, err := fluid.Run(specs, sched.NewLAS(), fluid.Config{Capacity: 4, TaskDuration: 1})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if len(res.Jobs) != jobs {
			t.Fatalf("seed %d: %d job records, want %d", seed, len(res.Jobs), jobs)
		}
		bins := make([]int, len(res.Jobs))
		responses := make([]float64, len(res.Jobs))
		slowdowns := make([]float64, len(res.Jobs))
		for i, j := range res.Jobs {
			// The fluid substrate records bin 0 and response = completion
			// minus arrival for every job, in trace order.
			responses[i] = j.Completed - j.Arrival
			slowdowns[i] = j.Slowdown
			if j.ResponseTime != responses[i] {
				t.Errorf("seed %d: job %d ResponseTime %v != Completed-Arrival %v",
					seed, j.ID, j.ResponseTime, responses[i])
			}
		}
		if !assertMatches(t, &res.Result, recompute(bins, responses, slowdowns)) {
			t.Fatalf("seed %d: accumulator diverged from raw completion events", seed)
		}
	}
}

// TestResultEmpty pins the zero-event conventions the brute-force reference
// can't distinguish (0/0 would be NaN; the accumulator promises 0).
func TestResultEmpty(t *testing.T) {
	var res substrate.Result
	if got := res.MeanResponseTime(); got != 0 || math.IsNaN(got) {
		t.Errorf("empty MeanResponseTime = %v, want 0", got)
	}
	if got := res.Count(); got != 0 {
		t.Errorf("empty Count = %d, want 0", got)
	}
	if got := res.BinMeans(); len(got) != 0 {
		t.Errorf("empty BinMeans = %v, want empty", got)
	}
}
