package mlq

import (
	"math"
	"testing"
	"testing/quick"
)

func mustNew(t *testing.T, k int, first, step float64) *Levels {
	t.Helper()
	l, err := New(k, first, step)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestNewValidation(t *testing.T) {
	tests := []struct {
		name    string
		k       int
		first   float64
		step    float64
		wantErr bool
	}{
		{name: "valid paper testbed", k: 10, first: 100, step: 10},
		{name: "valid paper simulation", k: 10, first: 1, step: 10},
		{name: "single queue ignores thresholds", k: 1, first: 0, step: 0},
		{name: "zero queues", k: 0, first: 1, step: 10, wantErr: true},
		{name: "negative first", k: 3, first: -1, step: 10, wantErr: true},
		{name: "zero first", k: 3, first: 0, step: 10, wantErr: true},
		{name: "step below one", k: 3, first: 1, step: 0.5, wantErr: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := New(tt.k, tt.first, tt.step)
			if (err != nil) != tt.wantErr {
				t.Errorf("New(%d, %v, %v) error = %v, wantErr %v", tt.k, tt.first, tt.step, err, tt.wantErr)
			}
		})
	}
}

func TestThresholdsExponential(t *testing.T) {
	l := mustNew(t, 5, 100, 10)
	want := []float64{100, 1000, 10000, 100000}
	for i, w := range want {
		if got := l.Threshold(i); got != w {
			t.Errorf("Threshold(%d) = %v, want %v", i, got, w)
		}
	}
	if got := l.Threshold(4); !math.IsInf(got, 1) {
		t.Errorf("last queue threshold = %v, want +Inf", got)
	}
	if got := l.Threshold(-1); !math.IsInf(got, 1) {
		t.Errorf("Threshold(-1) = %v, want +Inf", got)
	}
}

func TestQueues(t *testing.T) {
	if got := mustNew(t, 10, 1, 10).Queues(); got != 10 {
		t.Errorf("Queues = %d, want 10", got)
	}
	if got := mustNew(t, 1, 1, 10).Queues(); got != 1 {
		t.Errorf("Queues = %d, want 1", got)
	}
}

func TestPlacement(t *testing.T) {
	l := mustNew(t, 4, 100, 10) // thresholds 100, 1000, 10000
	tests := []struct {
		estimate float64
		want     int
	}{
		{estimate: 0, want: 0},
		{estimate: 100, want: 0},     // stays while service <= threshold
		{estimate: 100.001, want: 1}, // demoted only when strictly above
		{estimate: 1000, want: 1},
		{estimate: 5000, want: 2},
		{estimate: 10000, want: 2},
		{estimate: 1e9, want: 3}, // anything beyond the last threshold -> last queue
	}
	for _, tt := range tests {
		if got := l.Placement(tt.estimate); got != tt.want {
			t.Errorf("Placement(%v) = %d, want %d", tt.estimate, got, tt.want)
		}
	}
}

func TestDemoteOnly(t *testing.T) {
	l := mustNew(t, 4, 100, 10)
	// A job in queue 2 whose estimate shrinks (stage-aware over-estimate
	// corrected) must not be promoted back.
	if got := l.Demote(2, 50); got != 2 {
		t.Errorf("Demote(2, 50) = %d, want 2 (demote-only)", got)
	}
	if got := l.Demote(0, 5000); got != 2 {
		t.Errorf("Demote(0, 5000) = %d, want 2", got)
	}
	if got := l.Demote(1, 500); got != 1 {
		t.Errorf("Demote(1, 500) = %d, want 1", got)
	}
}

func TestDemoteClampsCurrent(t *testing.T) {
	l := mustNew(t, 3, 1, 10)
	if got := l.Demote(-5, 0); got != 0 {
		t.Errorf("Demote(-5, 0) = %d, want 0", got)
	}
	if got := l.Demote(99, 0); got != 2 {
		t.Errorf("Demote(99, 0) = %d, want last queue 2", got)
	}
}

func TestSingleQueueNeverDemotes(t *testing.T) {
	l := mustNew(t, 1, 0, 0)
	if got := l.Placement(1e18); got != 0 {
		t.Errorf("Placement = %d, want 0", got)
	}
	if got := l.Demote(0, 1e18); got != 0 {
		t.Errorf("Demote = %d, want 0", got)
	}
}

func TestPlacementMonotoneProperty(t *testing.T) {
	l := mustNew(t, 10, 1, 10)
	f := func(a, b float64) bool {
		a, b = math.Abs(a), math.Abs(b)
		if a > b {
			a, b = b, a
		}
		return l.Placement(a) <= l.Placement(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestPlacementRespectsThresholdProperty(t *testing.T) {
	l := mustNew(t, 10, 1, 10)
	f := func(raw float64) bool {
		est := math.Abs(raw)
		if math.IsInf(est, 0) || math.IsNaN(est) {
			return true
		}
		q := l.Placement(est)
		// The estimate must be within the assigned queue's threshold and above
		// the previous queue's threshold.
		if est > l.Threshold(q) {
			return false
		}
		if q > 0 && est <= l.Threshold(q-1) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
