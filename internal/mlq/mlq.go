// Package mlq implements the multilevel-queue structure underlying LAS_MQ:
// exponentially increasing service thresholds and demote-only job placement
// (paper Sec. III-A and III-E).
//
// Queues are 0-indexed. Queue i (for i < k-1) demotes a job once the job's
// (estimated) attained service exceeds Thresholds[i]; the last queue has no
// threshold. With first threshold α₀ and step p, the thresholds are
// α₀, α₀·p, α₀·p², …
package mlq

import (
	"fmt"
	"math"
)

// Levels holds the demotion thresholds of a k-queue hierarchy.
type Levels struct {
	thresholds []float64 // len k-1; thresholds[i] belongs to queue i
}

// New builds the threshold hierarchy for k queues with the given first
// threshold and multiplicative step. k must be >= 1; if k == 1 there are no
// thresholds and every job stays in the single queue. first and step must be
// positive (step may be 1 for linear, equal thresholds are rejected below 1).
func New(k int, first, step float64) (*Levels, error) {
	if k < 1 {
		return nil, fmt.Errorf("mlq: number of queues must be >= 1, got %d", k)
	}
	if k > 1 {
		if first <= 0 {
			return nil, fmt.Errorf("mlq: first threshold must be positive, got %v", first)
		}
		if step < 1 {
			return nil, fmt.Errorf("mlq: step must be >= 1, got %v", step)
		}
	}
	thresholds := make([]float64, 0, k-1)
	t := first
	for i := 0; i < k-1; i++ {
		thresholds = append(thresholds, t)
		t *= step
	}
	return &Levels{thresholds: thresholds}, nil
}

// Queues returns the number of queues k.
func (l *Levels) Queues() int { return len(l.thresholds) + 1 }

// Threshold returns the demotion threshold of queue i, or +Inf for the last
// queue (which never demotes).
func (l *Levels) Threshold(i int) float64 {
	if i < 0 {
		return math.Inf(1)
	}
	if i >= len(l.thresholds) {
		return math.Inf(1)
	}
	return l.thresholds[i]
}

// Placement returns the queue a job with the given attained-service estimate
// belongs to: the first queue whose threshold is at least the estimate
// (a job is demoted from queue i only when its service strictly exceeds
// threshold i, per Algorithm 1).
func (l *Levels) Placement(estimate float64) int {
	for i, t := range l.thresholds {
		if estimate <= t {
			return i
		}
	}
	return len(l.thresholds)
}

// Demote returns the queue for a job currently in queue current with the
// given service estimate. Movement is demote-only: stage-aware
// over-estimates that later shrink never promote a job back to a higher
// queue.
func (l *Levels) Demote(current int, estimate float64) int {
	if current < 0 {
		current = 0
	}
	last := len(l.thresholds)
	if current > last {
		current = last
	}
	p := l.Placement(estimate)
	if p < current {
		return current
	}
	return p
}
