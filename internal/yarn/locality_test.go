package yarn

import (
	"testing"

	"lasmq/internal/dfs"
	"lasmq/internal/sched"
)

func TestSubmitWithLocalityValidation(t *testing.T) {
	c, err := New(fastConfig(), sched.NewFIFO())
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	defer c.Shutdown()

	spec := uniformJob(1, 4, 10)
	if err := c.SubmitWithLocality(spec, Locality{
		PreferredNodes: [][]int{{0}}, // wrong length
		RemotePenalty:  2,
	}); err == nil {
		t.Error("expected error for mismatched locality length")
	}
	if err := c.SubmitWithLocality(spec, Locality{
		PreferredNodes: [][]int{{0}, {0}, {0}, {0}},
		RemotePenalty:  0.5, // < 1
	}); err == nil {
		t.Error("expected error for penalty < 1")
	}
	if err := c.SubmitWithLocality(spec, Locality{
		PreferredNodes: [][]int{{0}, {0}, {0}, {99}}, // unknown node
		RemotePenalty:  2,
	}); err == nil {
		t.Error("expected error for unknown node")
	}
}

func TestLocalityPreferredNodesUsed(t *testing.T) {
	cfg := fastConfig() // 2 nodes x 4 containers
	c, err := New(cfg, sched.NewFIFO())
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	defer c.Shutdown()

	// 8 tasks, blocks alternating between the two nodes; capacity suffices,
	// so every task can run local.
	spec := uniformJob(1, 8, 10)
	preferred := make([][]int, 8)
	for i := range preferred {
		preferred[i] = []int{i % 2}
	}
	if err := c.SubmitWithLocality(spec, Locality{PreferredNodes: preferred, RemotePenalty: 5}); err != nil {
		t.Fatal(err)
	}
	reports := drain(t, c)
	r := reports[0]
	if r.LocalTasks != 8 || r.RemoteTasks != 0 {
		t.Errorf("local/remote = %d/%d, want 8/0", r.LocalTasks, r.RemoteTasks)
	}
	// No remote penalty: response near the 10s wave.
	if r.Response > 40 {
		t.Errorf("response = %v, want near 10 with all-local tasks", r.Response)
	}
}

func TestLocalityRemotePenaltyApplied(t *testing.T) {
	cfg := fastConfig() // 2 nodes x 4 containers
	c, err := New(cfg, sched.NewFIFO())
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	defer c.Shutdown()

	// All 8 blocks on node 0 (4 containers): half the tasks must run remote
	// and pay a 4x duration penalty.
	spec := uniformJob(1, 8, 10)
	preferred := make([][]int, 8)
	for i := range preferred {
		preferred[i] = []int{0}
	}
	if err := c.SubmitWithLocality(spec, Locality{PreferredNodes: preferred, RemotePenalty: 4}); err != nil {
		t.Fatal(err)
	}
	reports := drain(t, c)
	r := reports[0]
	if r.RemoteTasks == 0 {
		t.Fatal("expected some remote tasks with all blocks on one half-sized node")
	}
	// Remote tasks run 40 spec-seconds: response must reflect it.
	if r.Response < 40 {
		t.Errorf("response = %v, want >= 40 (remote penalty on the critical path)", r.Response)
	}
	// Consumed service exceeds the all-local nominal 80.
	if r.Service <= 80 {
		t.Errorf("service = %v, want > 80 with penalized tasks", r.Service)
	}
}

func TestLocalityFromDFS(t *testing.T) {
	store, err := dfs.New(dfs.Config{Nodes: 2, BlockSize: 100, Replication: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := store.AddFile("input", 350); err != nil { // 4 blocks
		t.Fatal(err)
	}
	loc, err := LocalityFromDFS(store, "input", 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(loc.PreferredNodes) != 4 {
		t.Fatalf("got %d block locations, want 4", len(loc.PreferredNodes))
	}
	if loc.RemotePenalty != 3 {
		t.Errorf("penalty = %v", loc.RemotePenalty)
	}
	if _, err := LocalityFromDFS(store, "missing", 3); err == nil {
		t.Error("expected error for unknown file")
	}

	// End to end: the number of map tasks comes from the store's splits, as
	// in the paper's implementation.
	cfg := fastConfig()
	c, err := New(cfg, sched.NewFIFO())
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	defer c.Shutdown()
	spec := uniformJob(1, store.Splits("input"), 10)
	if err := c.SubmitWithLocality(spec, loc); err != nil {
		t.Fatal(err)
	}
	reports := drain(t, c)
	if got := reports[0].LocalTasks + reports[0].RemoteTasks; got != 4 {
		t.Errorf("placed tasks = %d, want 4", got)
	}
}

func TestLocalityWithDAGStagesOnlyFirstStage(t *testing.T) {
	// Locality applies to stage 0 only; reduce tasks place freely.
	cfg := fastConfig()
	c, err := New(cfg, sched.NewFIFO())
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	defer c.Shutdown()

	spec := mapReduceJob(1, 4, 10, 2, 5)
	preferred := [][]int{{0}, {0}, {1}, {1}}
	if err := c.SubmitWithLocality(spec, Locality{PreferredNodes: preferred, RemotePenalty: 2}); err != nil {
		t.Fatal(err)
	}
	reports := drain(t, c)
	r := reports[0]
	if r.LocalTasks+r.RemoteTasks != 4 {
		t.Errorf("locality counted %d tasks, want the 4 maps only", r.LocalTasks+r.RemoteTasks)
	}
}
