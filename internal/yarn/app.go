package yarn

import (
	"time"

	"lasmq/internal/job"
	"lasmq/internal/sched"
)

// application is the ResourceManager's record of one job: the ApplicationMaster
// duties (tracking stage progress, requesting containers for ready tasks,
// reporting completion) folded into RM-owned state, which keeps the whole
// cluster lock-free. All service quantities are kept in spec seconds.
type application struct {
	spec        job.Spec
	submittedAt time.Time
	admittedAt  time.Time
	admitted    bool
	started     bool // first attempt launched (telemetry only)
	seq         int

	stages       []appStage
	activeStages []int // unlocked, uncompleted stage indices, ascending
	doneStages   int
	usage        int // containers currently held

	finalizedService       float64 // container-spec-seconds of finished attempts
	completedStagesService float64
	// Running-attempt aggregate: attained adds
	// (now - start) * containers / scale per running attempt, tracked as
	// usage*now - runWeight in wall nanoseconds.
	runWeight float64

	failures int
	work     TaskWork  // nil for simulated (timer-based) jobs
	locality *Locality // nil when the job has no block locations

	localTasks  int
	remoteTasks int

	// viewAdapter is the persistent sched.JobView adapter re-stamped by
	// view() each round, so view construction allocates nothing.
	viewAdapter appView
}

type appStage struct {
	tasks    []job.TaskSpec
	readyIdx []int
	doneTask int
	launched []bool

	// DAG bookkeeping (see engine.stageState).
	remainingDeps int
	completed     bool
	dependents    []int

	totalContainers int
	doneContainers  int
	readyContainers int

	finalized float64
	usage     int
	runWeight float64

	// Progress aggregates over running attempts, in wall nanoseconds:
	// progressed fraction = (done + now*invDurSum - startInvDurSum) / n.
	invDurSum      float64
	startInvDurSum float64
}

func newApplication(spec job.Spec, now time.Time) *application {
	app := &application{spec: spec, submittedAt: now}
	app.stages = make([]appStage, len(spec.Stages))
	for i := range spec.Stages {
		st := &app.stages[i]
		st.tasks = spec.Stages[i].Tasks
		st.launched = make([]bool, len(st.tasks))
		for _, t := range st.tasks {
			st.totalContainers += t.Containers
		}
		for _, dep := range spec.Deps(i) {
			st.remainingDeps++
			app.stages[dep].dependents = append(app.stages[dep].dependents, i)
		}
	}
	for i := range app.stages {
		if app.stages[i].remainingDeps == 0 {
			app.activateStage(i)
		}
	}
	return app
}

// activateStage unlocks a stage: its tasks become ready.
func (a *application) activateStage(i int) {
	st := &a.stages[i]
	for ti := range st.tasks {
		st.readyIdx = append(st.readyIdx, ti)
		st.readyContainers += st.tasks[ti].Containers
	}
	pos := len(a.activeStages)
	for pos > 0 && a.activeStages[pos-1] > i {
		pos--
	}
	a.activeStages = append(a.activeStages, 0)
	copy(a.activeStages[pos+1:], a.activeStages[pos:])
	a.activeStages[pos] = i
}

func (a *application) deactivateStage(i int) {
	for k, idx := range a.activeStages {
		if idx == i {
			a.activeStages = append(a.activeStages[:k], a.activeStages[k+1:]...)
			return
		}
	}
}

func (a *application) done() bool { return a.doneStages >= len(a.stages) }

// peekReady returns the next ready task across the active stages.
func (a *application) peekReady() (spec job.TaskSpec, stage, taskIdx int, ok bool) {
	for _, si := range a.activeStages {
		st := &a.stages[si]
		if len(st.readyIdx) == 0 {
			continue
		}
		ti := st.readyIdx[0]
		return st.tasks[ti], si, ti, true
	}
	return job.TaskSpec{}, 0, 0, false
}

// markLaunched removes the task from the ready queue and starts its service
// accounting. The task must be the head of its stage's ready queue (as
// returned by peekReady).
func (a *application) markLaunched(stage, taskIdx, containers int, start time.Time) {
	st := &a.stages[stage]
	st.readyIdx = st.readyIdx[1:]
	st.readyContainers -= containers
	st.launched[taskIdx] = true

	startNanos := float64(start.UnixNano())
	a.usage += containers
	a.runWeight += float64(containers) * startNanos
	st.usage += containers
	st.runWeight += float64(containers) * startNanos

	durWall := st.tasks[taskIdx].Duration // spec seconds; scaled at view time
	if durWall > 0 {
		st.invDurSum += 1 / durWall
		st.startInvDurSum += startNanos / durWall
	}
}

// completeTask finalizes a finished attempt's accounting and unlocks the next
// stage when the current one completes.
func (a *application) completeTask(comp completion, scale time.Duration) {
	st := &a.stages[comp.stage]
	task := st.tasks[comp.task]

	elapsedSpec := float64(comp.finished.Sub(comp.started)) / float64(scale)
	consumed := float64(comp.containers) * elapsedSpec
	startNanos := float64(comp.started.UnixNano())

	a.usage -= comp.containers
	a.runWeight -= float64(comp.containers) * startNanos
	a.finalizedService += consumed
	st.usage -= comp.containers
	st.runWeight -= float64(comp.containers) * startNanos
	st.finalized += consumed
	if task.Duration > 0 {
		st.invDurSum -= 1 / task.Duration
		st.startInvDurSum -= startNanos / task.Duration
	}

	if !comp.success {
		// Failed attempt: the consumed service stays counted (as in the
		// paper's implementation, which filters unsuccessful attempts only
		// out of the remaining-task counters), and the task is re-queued.
		a.failures++
		st.readyIdx = append(st.readyIdx, comp.task)
		st.readyContainers += task.Containers
		return
	}

	st.doneTask++
	st.doneContainers += task.Containers
	if st.doneTask == len(st.tasks) && !st.completed {
		st.completed = true
		a.completedStagesService += st.finalized
		a.doneStages++
		a.deactivateStage(comp.stage)
		for _, dep := range st.dependents {
			next := &a.stages[dep]
			next.remainingDeps--
			if next.remainingDeps == 0 {
				a.activateStage(dep)
			}
		}
	}
}

// attained returns consumed service in container-spec-seconds as of now.
func (a *application) attained(now time.Time, scale time.Duration) float64 {
	running := (float64(now.UnixNano())*float64(a.usage) - a.runWeight) / float64(scale)
	if running < 0 {
		running = 0
	}
	return a.finalizedService + running
}

// estimated is the stage-aware service estimate over the active stages (see
// engine.jobState.estimated).
func (a *application) estimated(now time.Time, scale time.Duration) float64 {
	est := a.completedStagesService
	nowNanos := float64(now.UnixNano())
	for _, si := range a.activeStages {
		st := &a.stages[si]
		runningSpec := (nowNanos*float64(st.usage) - st.runWeight) / float64(scale)
		if runningSpec < 0 {
			runningSpec = 0
		}
		stageAttained := st.finalized + runningSpec

		// Progress: done tasks plus partial progress of running attempts.
		// The per-attempt rate is 1/duration in spec seconds, so elapsed
		// wall time converts through scale.
		partial := (nowNanos*st.invDurSum - st.startInvDurSum) / float64(scale)
		if partial < 0 {
			partial = 0
		}
		progress := (float64(st.doneTask) + partial) / float64(len(st.tasks))
		if progress > 1 {
			progress = 1
		}
		stageEst := stageAttained
		if progress > 0 {
			stageEst = stageAttained / progress
		}
		est += stageEst
	}
	return est
}

// appView adapts application to sched.JobView at one instant.
type appView struct {
	app   *application
	now   time.Time
	scale time.Duration
}

var _ sched.JobView = (*appView)(nil)

func (a *application) view(now time.Time, scale time.Duration) *appView {
	a.viewAdapter.app = a
	a.viewAdapter.now = now
	a.viewAdapter.scale = scale
	return &a.viewAdapter
}

func (v *appView) ID() int            { return v.app.spec.ID }
func (v *appView) Seq() int           { return v.app.seq }
func (v *appView) Priority() int      { return v.app.spec.Priority }
func (v *appView) Attained() float64  { return v.app.attained(v.now, v.scale) }
func (v *appView) Estimated() float64 { return v.app.estimated(v.now, v.scale) }

func (v *appView) ReadyDemand() float64 {
	total := 0
	for _, si := range v.app.activeStages {
		total += v.app.stages[si].readyContainers
	}
	return float64(total)
}

func (v *appView) RemainingDemand() float64 {
	total := 0
	for i := range v.app.stages {
		if v.app.stages[i].completed {
			continue
		}
		total += v.app.stages[i].totalContainers - v.app.stages[i].doneContainers
	}
	return float64(total)
}

func (v *appView) SizeHint() float64 { return v.app.spec.EffectiveSizeHint() }

func (v *appView) RemainingSizeHint() float64 {
	rem := v.app.spec.EffectiveSizeHint() - v.Attained()
	if rem < 0 {
		return 0
	}
	return rem
}
