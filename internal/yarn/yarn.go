// Package yarn is a miniature, concurrent YARN-like resource manager: the
// runnable counterpart of the paper's implementation section (Fig. 4). Where
// internal/engine simulates the cluster in virtual time, this package runs
// one for real — a ResourceManager goroutine owning cluster state, one
// NodeManager goroutine per node executing task attempts on its containers,
// a job-admission module bounding concurrently running applications, and the
// same pluggable sched.Scheduler interface deciding per-job container
// targets on every cluster event.
//
// Wall-clock time is scaled: a task specified to take 10 seconds runs for
// 10 * Config.TimeScale of real time, and everything the scheduler observes
// (attained service, stage progress) is reported back in spec seconds, so
// the same policies and workloads drive both the simulators and this live
// cluster.
package yarn

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"lasmq/internal/dist"
	"lasmq/internal/job"
	"lasmq/internal/obs"
	"lasmq/internal/sched"
	"lasmq/internal/substrate"
)

// Config describes the live cluster.
type Config struct {
	// Nodes is the number of node managers.
	Nodes int
	// ContainersPerNode is each node's container capacity. A multi-container
	// task must fit on a single node, as in YARN.
	ContainersPerNode int
	// MaxRunningJobs bounds concurrently running applications (the paper's
	// job-admission module). Zero means unlimited.
	MaxRunningJobs int
	// TimeScale converts spec seconds to wall-clock duration (e.g. 1 ms
	// means a 10-second task runs for 10 ms).
	TimeScale time.Duration
	// FailureProb is the probability a task attempt fails partway and is
	// re-queued (the paper's status monitor counts successful attempts
	// only). Decided by the ResourceManager at launch, so runs with the
	// same seed inject the same failures.
	FailureProb float64
	// Seed drives failure sampling.
	Seed int64
	// HeartbeatInterval is the scheduling heartbeat; scheduling also runs on
	// every task completion and submission, so the heartbeat is a backstop.
	HeartbeatInterval time.Duration
	// Probe receives telemetry events (see internal/obs). All events are
	// emitted from the ResourceManager goroutine with timestamps in spec
	// seconds (wall nanoseconds divided by TimeScale), the same clock the
	// policies observe. A nil probe costs nothing; sinks that are read
	// concurrently (e.g. obs.Counters behind an HTTP endpoint) must be
	// internally synchronized.
	Probe obs.Probe
}

// DefaultConfig returns a 4-node cluster of 30 containers each (the paper's
// testbed: 120 containers total) at millisecond scale.
func DefaultConfig() Config {
	return Config{
		Nodes:             4,
		ContainersPerNode: 30,
		MaxRunningJobs:    30,
		TimeScale:         time.Millisecond,
		HeartbeatInterval: 5 * time.Millisecond,
	}
}

func (c *Config) validate() error {
	if c.Nodes <= 0 {
		return fmt.Errorf("yarn: nodes must be positive, got %d", c.Nodes)
	}
	if c.ContainersPerNode <= 0 {
		return fmt.Errorf("yarn: containers per node must be positive, got %d", c.ContainersPerNode)
	}
	if c.MaxRunningJobs < 0 {
		return fmt.Errorf("yarn: max running jobs must be >= 0, got %d", c.MaxRunningJobs)
	}
	if c.TimeScale <= 0 {
		return fmt.Errorf("yarn: time scale must be positive, got %v", c.TimeScale)
	}
	if c.FailureProb < 0 || c.FailureProb >= 1 {
		return fmt.Errorf("yarn: failure probability must be in [0,1), got %v", c.FailureProb)
	}
	if c.HeartbeatInterval <= 0 {
		return fmt.Errorf("yarn: heartbeat interval must be positive, got %v", c.HeartbeatInterval)
	}
	return nil
}

// JobReport describes one completed application.
type JobReport struct {
	ID        int
	Name      string
	Bin       int
	Submitted time.Time
	Admitted  time.Time
	Completed time.Time
	// Response is the job response time in spec seconds (wall response
	// divided by TimeScale).
	Response float64
	// Service is the consumed service in container-spec-seconds.
	Service float64
	// Failures counts failed task attempts (failure injection).
	Failures int
	// LocalTasks and RemoteTasks count first-stage tasks that ran on and off
	// their block-holding nodes (only populated for SubmitWithLocality jobs).
	LocalTasks  int
	RemoteTasks int
}

// Cluster is the live mini-YARN cluster. Create with New, then Start, Submit
// jobs, and Drain (or Shutdown).
type Cluster struct {
	cfg    Config
	policy sched.Scheduler

	rm    *resourceManager
	nodes []*nodeManager
	wg    sync.WaitGroup

	startOnce sync.Once
	stopOnce  sync.Once
	started   bool
}

// New builds a cluster around the given scheduling policy (which must be a
// fresh instance; it is invoked only from the ResourceManager goroutine).
func New(cfg Config, policy sched.Scheduler) (*Cluster, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if policy == nil {
		return nil, errors.New("yarn: nil scheduler")
	}
	c := &Cluster{cfg: cfg, policy: policy}
	c.rm = newResourceManager(c)
	for i := 0; i < cfg.Nodes; i++ {
		c.nodes = append(c.nodes, newNodeManager(i, cfg.ContainersPerNode, c.rm.completions))
	}
	return c, nil
}

// Start launches the ResourceManager and NodeManager goroutines.
func (c *Cluster) Start() {
	c.startOnce.Do(func() {
		c.started = true
		for _, nm := range c.nodes {
			c.wg.Add(1)
			go func(nm *nodeManager) {
				defer c.wg.Done()
				nm.run()
			}(nm)
		}
		c.wg.Add(1)
		go func() {
			defer c.wg.Done()
			c.rm.run()
		}()
	})
}

// Locality describes data placement for a job's first (map) stage:
// PreferredNodes[task] lists the nodes holding that task's input block (from
// an HDFS-like store), and RemotePenalty multiplies a task's duration when it
// runs on a node that does not hold its block. The ResourceManager prefers a
// block-holding node with free containers and otherwise runs the task remote
// immediately (no delay scheduling).
type Locality struct {
	PreferredNodes [][]int
	RemotePenalty  float64
}

// TaskWork is real work executed by a task attempt: stage and task identify
// the unit. When a job is submitted with work, the spec's task durations act
// as the scheduler's progress estimates while actual completion happens when
// the work returns. Work runs on NodeManager goroutines and must be safe for
// concurrent invocation across tasks.
type TaskWork func(stage, task int)

// Submit hands a job to the admission module. The submission time is now.
// Submit must not be called after Shutdown.
func (c *Cluster) Submit(spec job.Spec) error {
	return c.submit(spec, nil, nil)
}

// SubmitWithLocality submits a simulated job whose first-stage tasks have
// block locations: tasks run data-local when possible and pay
// loc.RemotePenalty on their durations otherwise.
func (c *Cluster) SubmitWithLocality(spec job.Spec, loc Locality) error {
	if len(loc.PreferredNodes) != len(spec.Stages[0].Tasks) {
		return fmt.Errorf("yarn: job %d has %d first-stage tasks but %d block locations",
			spec.ID, len(spec.Stages[0].Tasks), len(loc.PreferredNodes))
	}
	if loc.RemotePenalty < 1 {
		return fmt.Errorf("yarn: remote penalty must be >= 1, got %v", loc.RemotePenalty)
	}
	for ti, nodes := range loc.PreferredNodes {
		for _, n := range nodes {
			if n < 0 || n >= c.cfg.Nodes {
				return fmt.Errorf("yarn: job %d task %d prefers unknown node %d", spec.ID, ti, n)
			}
		}
	}
	return c.submit(spec, nil, &loc)
}

// SubmitWithWork submits a job whose task attempts execute real work instead
// of sleeping out their specified durations (the durations remain the
// scheduler's progress estimates, as task-duration predictions are in real
// Hadoop).
func (c *Cluster) SubmitWithWork(spec job.Spec, work TaskWork) error {
	if work == nil {
		return errors.New("yarn: nil task work")
	}
	return c.submit(spec, work, nil)
}

func (c *Cluster) submit(spec job.Spec, work TaskWork, loc *Locality) error {
	if err := spec.Validate(); err != nil {
		return fmt.Errorf("yarn: %w", err)
	}
	for si := range spec.Stages {
		for _, t := range spec.Stages[si].Tasks {
			if t.Containers > c.cfg.ContainersPerNode {
				return fmt.Errorf("yarn: job %d has a task needing %d containers, above the per-node capacity %d",
					spec.ID, t.Containers, c.cfg.ContainersPerNode)
			}
		}
	}
	if !c.started {
		return errors.New("yarn: cluster not started")
	}
	c.rm.submissions <- submission{spec: spec, work: work, locality: loc}
	return nil
}

// submission pairs a job spec with its (optional) real work and locality.
type submission struct {
	spec     job.Spec
	work     TaskWork
	locality *Locality
}

// Drain blocks until every submitted job has completed (or ctx expires) and
// returns their reports in completion order.
func (c *Cluster) Drain(ctx context.Context) ([]JobReport, error) {
	done := make(chan []JobReport, 1)
	select {
	case c.rm.drainRequests <- done:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	select {
	case reports := <-done:
		return reports, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Shutdown stops the ResourceManager and all NodeManagers and waits for
// their goroutines to exit. Running task attempts are abandoned.
func (c *Cluster) Shutdown() {
	c.stopOnce.Do(func() {
		if !c.started {
			return
		}
		close(c.rm.quit)
		for _, nm := range c.nodes {
			close(nm.quit)
		}
		c.wg.Wait()
	})
}

// --- NodeManager ---

// launchRequest asks a node to run one task attempt.
type launchRequest struct {
	jobID      int
	stage      int
	task       int
	containers int
	duration   time.Duration
	// success is decided by the RM at launch (failure injection); a failed
	// attempt consumes its (truncated) duration without completing the task.
	success bool
	// work, when non-nil, is executed instead of sleeping out duration.
	work TaskWork
}

// completion reports a finished attempt back to the ResourceManager.
type completion struct {
	node       int
	jobID      int
	stage      int
	task       int
	containers int
	started    time.Time
	finished   time.Time
	success    bool
}

// nodeManager owns one node's containers and executes task attempts. Its
// free-container count is owned by the ResourceManager loop (the RM
// subtracts on launch; completions add back when the RM processes them), so
// no locking is needed.
type nodeManager struct {
	id       int
	capacity int

	launches    chan launchRequest
	completions chan<- completion
	quit        chan struct{}
	running     sync.WaitGroup
}

func newNodeManager(id, capacity int, completions chan<- completion) *nodeManager {
	return &nodeManager{
		id:          id,
		capacity:    capacity,
		launches:    make(chan launchRequest, capacity),
		completions: completions,
		quit:        make(chan struct{}),
	}
}

// run executes launch requests until quit, then waits for in-flight attempts.
func (n *nodeManager) run() {
	for {
		select {
		case req := <-n.launches:
			n.running.Add(1)
			go func(req launchRequest) {
				defer n.running.Done()
				started := time.Now()
				if req.work != nil {
					req.work(req.stage, req.task)
				} else {
					timer := time.NewTimer(req.duration)
					defer timer.Stop()
					select {
					case <-timer.C:
					case <-n.quit:
						return // abandoned on shutdown
					}
				}
				comp := completion{
					node:       n.id,
					jobID:      req.jobID,
					stage:      req.stage,
					task:       req.task,
					containers: req.containers,
					started:    started,
					finished:   time.Now(),
					success:    req.success,
				}
				select {
				case n.completions <- comp:
				case <-n.quit:
				}
			}(req)
		case <-n.quit:
			n.running.Wait()
			return
		}
	}
}

// --- ResourceManager ---

// resourceManager owns all cluster state and runs the scheduling loop: it is
// the only goroutine touching applications, node free-counts and the
// admission queue, so the design is lock-free by construction. Policies are
// driven through the scheduling-substrate kernel — the same admission
// module, view registry and capability dispatch (BufferedAssigner, Observer)
// the simulators use — so stateful policies behave identically on the live
// cluster.
type resourceManager struct {
	cluster *Cluster

	submissions   chan submission
	completions   chan completion
	drainRequests chan chan []JobReport
	quit          chan struct{}

	driver *substrate.Driver
	adm    *substrate.Queue[*application]
	vs     substrate.ViewSet
	quant  sched.Quantizer
	cands  []launchCand
	probe  obs.Probe

	apps      map[int]*application
	rng       *rand.Rand
	order     []int
	remaining int
	freeOn    []int // free containers per node

	reports  []JobReport
	drainers []chan []JobReport
}

// launchCand is one application below its container target in a round.
type launchCand struct {
	app    *application
	target int
}

func newResourceManager(c *Cluster) *resourceManager {
	free := make([]int, c.cfg.Nodes)
	for i := range free {
		free[i] = c.cfg.ContainersPerNode
	}
	rm := &resourceManager{
		cluster:       c,
		submissions:   make(chan submission),
		completions:   make(chan completion, c.cfg.Nodes*c.cfg.ContainersPerNode),
		drainRequests: make(chan chan []JobReport),
		quit:          make(chan struct{}),
		driver:        substrate.NewDriver(c.policy),
		adm:           substrate.NewQueue[*application](c.cfg.MaxRunningJobs),
		apps:          make(map[int]*application),
		rng:           dist.New(c.cfg.Seed),
		freeOn:        free,
		probe:         c.cfg.Probe,
	}
	rm.driver.SetProbe(c.cfg.Probe)
	return rm
}

// specTime converts a wall-clock instant to the spec-second clock every
// telemetry event and policy invocation uses.
func (rm *resourceManager) specTime(t time.Time) float64 {
	return float64(t.UnixNano()) / float64(rm.cluster.cfg.TimeScale)
}

func (rm *resourceManager) run() {
	heartbeat := time.NewTicker(rm.cluster.cfg.HeartbeatInterval)
	defer heartbeat.Stop()
	for {
		select {
		case sub := <-rm.submissions:
			rm.handleSubmission(sub)
			rm.admitAndSchedule()
		case comp := <-rm.completions:
			rm.handleCompletion(comp)
			rm.admitAndSchedule()
		case <-heartbeat.C:
			rm.admitAndSchedule()
		case done := <-rm.drainRequests:
			if rm.remaining == 0 {
				done <- append([]JobReport(nil), rm.reports...)
			} else {
				rm.drainers = append(rm.drainers, done)
			}
		case <-rm.quit:
			return
		}
	}
}

func (rm *resourceManager) handleSubmission(sub submission) {
	app := newApplication(sub.spec, time.Now())
	app.work = sub.work
	app.locality = sub.locality
	rm.apps[sub.spec.ID] = app
	rm.order = append(rm.order, sub.spec.ID)
	rm.adm.Push(app)
	rm.remaining++
	if rm.probe != nil {
		rm.probe.JobSubmitted(rm.specTime(app.submittedAt), app.spec.ID)
	}
}

func (rm *resourceManager) admit() {
	rm.adm.Admit(func(app *application, seq int) {
		app.admitted = true
		app.admittedAt = time.Now()
		app.seq = seq
		if rm.probe != nil {
			waited := float64(app.admittedAt.Sub(app.submittedAt)) / float64(rm.cluster.cfg.TimeScale)
			rm.probe.JobAdmitted(rm.specTime(app.admittedAt), app.spec.ID, waited)
		}
	})
}

func (rm *resourceManager) handleCompletion(comp completion) {
	rm.freeOn[comp.node] += comp.containers
	app, ok := rm.apps[comp.jobID]
	if !ok {
		return
	}
	app.completeTask(comp, rm.cluster.cfg.TimeScale)
	if rm.probe != nil {
		now, start := rm.specTime(comp.finished), rm.specTime(comp.started)
		if comp.success {
			rm.probe.TaskDone(now, comp.jobID, comp.stage, comp.task, start, false)
			if app.stages[comp.stage].completed {
				rm.probe.StageDone(now, comp.jobID, comp.stage)
			}
		} else {
			rm.probe.TaskFail(now, comp.jobID, comp.stage, comp.task, start)
		}
	}
	if app.done() {
		rm.finishApp(app)
	}
}

func (rm *resourceManager) finishApp(app *application) {
	now := time.Now()
	rm.adm.Done()
	rm.remaining--
	scale := float64(rm.cluster.cfg.TimeScale)
	rm.reports = append(rm.reports, JobReport{
		ID:          app.spec.ID,
		Name:        app.spec.Name,
		Bin:         app.spec.Bin,
		Submitted:   app.submittedAt,
		Admitted:    app.admittedAt,
		Completed:   now,
		Response:    float64(now.Sub(app.submittedAt)) / scale,
		Service:     app.finalizedService,
		Failures:    app.failures,
		LocalTasks:  app.localTasks,
		RemoteTasks: app.remoteTasks,
	})
	if rm.probe != nil {
		rm.probe.JobDone(rm.specTime(now), app.spec.ID, rm.reports[len(rm.reports)-1].Response)
	}
	delete(rm.apps, app.spec.ID)
	if rm.remaining == 0 {
		for _, done := range rm.drainers {
			done <- append([]JobReport(nil), rm.reports...)
		}
		rm.drainers = nil
	}
}

// admitAndSchedule is the heart of the RM: release waiting applications,
// query the policy for per-job container targets, and launch ready tasks
// onto nodes (first fit), reserving free containers for the preferred job
// when its multi-container task does not fit yet.
//
// Rounds that provably cannot launch a task — the cluster is saturated, or
// no admitted application has a ready task — skip the full policy
// invocation; the kernel driver replays only the policy's state mutation
// (sched.Observer), so stateful policies (LAS_MQ demotions, Adaptive
// completion history) keep their internal clocks in sync on the live
// cluster instead of silently missing those instants.
func (rm *resourceManager) admitAndSchedule() {
	rm.admit()
	if rm.adm.Running() == 0 {
		return
	}
	now := time.Now()
	scale := rm.cluster.cfg.TimeScale
	policyNow := float64(now.UnixNano()) / float64(scale)

	ready := 0.0
	rm.vs.Begin(true, false)
	for _, id := range rm.order {
		app, ok := rm.apps[id]
		if !ok || !app.admitted {
			continue
		}
		v := app.view(now, scale)
		rm.vs.Add(v)
		d := v.ReadyDemand()
		rm.vs.SetDemand(id, d)
		ready += d
	}
	if rm.vs.Len() == 0 {
		return
	}
	if rm.totalFree() == 0 || ready == 0 {
		if rm.probe != nil {
			rm.probe.RoundSkipped(policyNow, true)
		}
		rm.driver.Observe(policyNow, &rm.vs)
		return
	}

	capacity := rm.cluster.cfg.Nodes * rm.cluster.cfg.ContainersPerNode
	alloc := rm.driver.Assign(policyNow, float64(capacity), rm.vs.Views())
	targets := rm.quant.QuantizeInto(alloc, rm.vs.Demand(), capacity)

	cands := rm.cands[:0]
	for _, id := range rm.order {
		app, ok := rm.apps[id]
		if !ok || !app.admitted {
			continue
		}
		if t := targets[id]; t > app.usage {
			cands = append(cands, launchCand{app: app, target: t})
		}
	}
	rm.cands = cands
	sort.SliceStable(cands, func(i, j int) bool {
		di := cands[i].target - cands[i].app.usage
		dj := cands[j].target - cands[j].app.usage
		if di != dj {
			return di > dj
		}
		return cands[i].app.seq < cands[j].app.seq
	})

	reserved := 0
	for _, c := range cands {
		for c.app.usage < c.target {
			launched, need := rm.launchNext(c.app, reserved)
			if launched {
				continue
			}
			if need > 0 {
				free := rm.totalFree()
				if need > free {
					need = free
				}
				reserved += need
			}
			break
		}
	}
	// Work conservation: leftover (unreserved) containers go to any ready
	// task, round-robin across applications.
	progress := true
	for progress && rm.totalFree() > reserved {
		progress = false
		for _, id := range rm.order {
			app, ok := rm.apps[id]
			if !ok || !app.admitted {
				continue
			}
			if launched, _ := rm.launchNext(app, reserved); launched {
				progress = true
			}
		}
	}
}

func (rm *resourceManager) totalFree() int {
	total := 0
	for _, f := range rm.freeOn {
		total += f
	}
	return total
}

// launchNext starts the application's next ready task on the first node with
// room, honoring reservations. When the task does not fit anywhere, need
// reports its container requirement.
func (rm *resourceManager) launchNext(app *application, reserved int) (launched bool, need int) {
	spec, stage, taskIdx, ok := app.peekReady()
	if !ok {
		return false, 0
	}
	if rm.totalFree()-reserved < spec.Containers {
		return false, spec.Containers
	}
	// Locality: prefer a block-holding node when this is a first-stage task
	// of a locality-aware job.
	node := -1
	local := false
	if app.locality != nil && stage == 0 {
		for _, n := range app.locality.PreferredNodes[taskIdx] {
			if rm.freeOn[n] >= spec.Containers {
				node, local = n, true
				break
			}
		}
	}
	if node < 0 {
		// First fit: a multi-container task must fit on one node (as in YARN).
		for n, free := range rm.freeOn {
			if free >= spec.Containers {
				node = n
				break
			}
		}
	}
	if node >= 0 {
		rm.freeOn[node] -= spec.Containers
		start := time.Now()
		if rm.probe != nil {
			if !app.started {
				app.started = true
				rm.probe.JobStarted(rm.specTime(start), app.spec.ID)
			}
			rm.probe.TaskStart(rm.specTime(start), app.spec.ID, stage, taskIdx, spec.Containers, false)
		}
		app.markLaunched(stage, taskIdx, spec.Containers, start)
		// Failure injection: a failed attempt dies after a uniform fraction
		// of its duration without completing the task. Real work (TaskWork)
		// is never failure-injected: its outcome is the work itself.
		duration := spec.Duration
		if app.locality != nil && stage == 0 {
			if local {
				app.localTasks++
			} else {
				app.remoteTasks++
				duration *= app.locality.RemotePenalty
			}
		}
		success := true
		if p := rm.cluster.cfg.FailureProb; p > 0 && app.work == nil && rm.rng.Float64() < p {
			success = false
			duration *= rm.rng.Float64()
		}
		rm.cluster.nodes[node].launches <- launchRequest{
			jobID:      app.spec.ID,
			stage:      stage,
			task:       taskIdx,
			containers: spec.Containers,
			duration:   time.Duration(duration * float64(rm.cluster.cfg.TimeScale)),
			success:    success,
			work:       app.work,
		}
		return true, 0
	}
	// Fragmented: fits in total but not on any single node.
	return false, spec.Containers
}
