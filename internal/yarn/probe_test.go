package yarn

import (
	"testing"
	"time"

	"lasmq/internal/core"
	"lasmq/internal/obs"
)

// TestLiveClusterTelemetry runs a small workload with failure injection and
// an admission limit against the obs.Counters sink and checks the aggregate
// invariants hold on the live (wall-clock, concurrent) substrate: job and
// task accounting balances, the admission module produced a backlog, and
// LAS_MQ emitted demotion events through the live driver.
func TestLiveClusterTelemetry(t *testing.T) {
	counters := obs.NewCounters()
	cfg := fastConfig()
	cfg.MaxRunningJobs = 2
	cfg.FailureProb = 0.2
	cfg.Seed = 5
	cfg.Probe = counters

	mq, err := core.New(core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(cfg, mq)
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	defer c.Shutdown()

	const jobs = 6
	for id := 1; id <= jobs; id++ {
		var spec = uniformJob(id, 3, 40+20*float64(id))
		if id%2 == 0 {
			spec = mapReduceJob(id, 3, 50, 1, 30)
		}
		spec.ID = id
		if err := c.Submit(spec); err != nil {
			t.Fatal(err)
		}
		time.Sleep(2 * time.Millisecond)
	}
	reports := drain(t, c)
	if len(reports) != jobs {
		t.Fatalf("%d reports, want %d", len(reports), jobs)
	}

	s := counters.Snapshot()
	if s.JobsSubmitted != jobs || s.JobsAdmitted != jobs || s.JobsCompleted != jobs {
		t.Fatalf("job accounting: submitted=%d admitted=%d completed=%d, want all %d",
			s.JobsSubmitted, s.JobsAdmitted, s.JobsCompleted, jobs)
	}
	if s.TasksCompleted+s.TaskFailures != s.TasksLaunched {
		t.Fatalf("task accounting: %d done + %d failed != %d launched",
			s.TasksCompleted, s.TaskFailures, s.TasksLaunched)
	}
	var wantFailures int64
	for _, rep := range reports {
		wantFailures += int64(rep.Failures)
	}
	if s.TaskFailures != wantFailures {
		t.Fatalf("TaskFailures=%d, reports say %d", s.TaskFailures, wantFailures)
	}
	if s.PeakAdmissionBacklog == 0 {
		t.Error("MaxRunningJobs=2 on 6 jobs should have produced an admission backlog")
	}
	if s.RoundsExecuted == 0 {
		t.Error("no RoundExecuted events from the live driver")
	}
	if s.TotalDemotions() == 0 {
		t.Error("LAS_MQ demoted no jobs despite long-running tasks")
	}
	if s.MaxAdmissionWait < 0 {
		t.Errorf("negative admission wait %v", s.MaxAdmissionWait)
	}
}
