package yarn

import (
	"fmt"

	"lasmq/internal/dfs"
)

// LocalityFromDFS builds a job Locality from an HDFS-like store: the job's
// i-th first-stage (map) task reads block i of the given file, as the
// paper's implementation derives map tasks from input splits. remotePenalty
// multiplies a map task's duration when it runs on a node without the block.
func LocalityFromDFS(store *dfs.Store, file string, remotePenalty float64) (Locality, error) {
	blocks := store.Blocks(file)
	if len(blocks) == 0 {
		return Locality{}, fmt.Errorf("yarn: file %q has no blocks in the store", file)
	}
	preferred := make([][]int, len(blocks))
	for i, b := range blocks {
		preferred[i] = append([]int(nil), b.Replicas...)
	}
	return Locality{PreferredNodes: preferred, RemotePenalty: remotePenalty}, nil
}
