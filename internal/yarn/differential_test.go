package yarn

import (
	"sort"
	"testing"
	"time"

	"lasmq/internal/core"
	"lasmq/internal/engine"
	"lasmq/internal/job"
	"lasmq/internal/sched"
)

// tableIMini is a scaled-down Table-I workload for the live differential
// test: one job per representative PUMA row (names, bins, and the relative
// size ordering match workload.TableI), with task counts and durations shrunk
// so the scaled-clock run finishes in a few hundred milliseconds. Tasks are
// single-stage and one container each so the task engine and the
// node-granular mini-YARN pack identically. Durations are staggered so no
// two tasks ever complete at the same instant: the engine batches
// simultaneous completions into one scheduling round while the live RM runs
// a round per completion message, and distinct completion times make both
// substrates see the identical event sequence. The stagger (>= 2 spec
// seconds between any two events) also dwarfs live wall-clock jitter.
func tableIMini() []job.Spec {
	mk := func(id int, name string, bin, tasks int, dur float64) job.Spec {
		ts := make([]job.TaskSpec, tasks)
		for i := range ts {
			// Distinct per task within a job (+3 each) and per job
			// (+0.1*id) so completion instants never coincide.
			ts[i] = job.TaskSpec{Duration: dur + 3*float64(i) + 0.1*float64(id), Containers: 1}
		}
		return job.Spec{
			ID: id, Name: name, Bin: bin, Priority: 1,
			Stages: []job.StageSpec{{Name: "map", Tasks: ts}},
		}
	}
	return []job.Spec{
		mk(1, "SelfJoin", 1, 2, 15),       // size ~33
		mk(2, "WordCount", 4, 6, 60),      // size ~405
		mk(3, "TeraGen", 1, 1, 25),        // size ~25
		mk(4, "SequenceCount", 3, 4, 45),  // size ~198
		mk(5, "Classification", 2, 3, 30), // size ~99
	}
}

// completionOrderEngine runs the mini workload through the task engine and
// returns job IDs sorted by completion time.
func completionOrderEngine(t *testing.T, policy sched.Scheduler, containers int) []int {
	t.Helper()
	res, err := engine.Run(tableIMini(), policy, engine.Config{Containers: containers})
	if err != nil {
		t.Fatalf("engine: %v", err)
	}
	jobs := append([]engine.JobResult(nil), res.Jobs...)
	sort.SliceStable(jobs, func(i, j int) bool { return jobs[i].Completed < jobs[j].Completed })
	order := make([]int, len(jobs))
	for i, jr := range jobs {
		order[i] = jr.ID
	}
	return order
}

// completionOrderLive runs the same workload on the live mini-YARN cluster
// under a scaled clock and returns job IDs sorted by completion time.
func completionOrderLive(t *testing.T, policy sched.Scheduler, cfg Config) []int {
	t.Helper()
	c, err := New(cfg, policy)
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	defer c.Shutdown()
	for _, spec := range tableIMini() {
		if err := c.Submit(spec); err != nil {
			t.Fatal(err)
		}
	}
	reports := drain(t, c)
	sort.SliceStable(reports, func(i, j int) bool {
		return reports[i].Completed.Before(reports[j].Completed)
	})
	order := make([]int, len(reports))
	for i, r := range reports {
		order[i] = r.ID
	}
	return order
}

// TestEngineYarnCompletionOrderAgreement is the cross-substrate differential
// test: the same (scaled-down) Table-I workload driven through the task
// engine and through the live mini-YARN cluster must complete jobs in the
// same order per policy. Both substrates now invoke policies through the
// internal/substrate kernel, so this checks that the live data path — RM
// heartbeat rounds, node-granular launches, wall-clock service accounting —
// preserves the scheduling decisions the discrete-event engine makes exactly.
func TestEngineYarnCompletionOrderAgreement(t *testing.T) {
	cfg := Config{
		Nodes:             2,
		ContainersPerNode: 2,
		MaxRunningJobs:    0,
		TimeScale:         time.Millisecond,
		HeartbeatInterval: 2 * time.Millisecond,
	}
	containers := cfg.Nodes * cfg.ContainersPerNode

	mq := func() sched.Scheduler {
		mqCfg := core.DefaultConfig()
		mqCfg.StageAware = false // single-stage jobs; compare like with like
		mqCfg.OrderByDemand = false
		s, err := core.New(mqCfg)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	policies := []struct {
		name string
		mk   func() sched.Scheduler
	}{
		{name: "FIFO", mk: func() sched.Scheduler { return sched.NewFIFO() }},
		{name: "LAS_MQ", mk: mq},
	}
	for _, p := range policies {
		want := completionOrderEngine(t, p.mk(), containers)
		got := completionOrderLive(t, p.mk(), cfg)
		if len(got) != len(want) {
			t.Fatalf("%s: live run completed %d jobs, engine %d", p.name, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("%s: completion order diverged: engine %v, live %v", p.name, want, got)
				break
			}
		}
	}
}
