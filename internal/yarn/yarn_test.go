package yarn

import (
	"context"
	"strings"
	"testing"
	"time"

	"lasmq/internal/core"
	"lasmq/internal/job"
	"lasmq/internal/sched"
)

// fastConfig keeps live tests quick: a small cluster at 1 ms per spec second.
func fastConfig() Config {
	return Config{
		Nodes:             2,
		ContainersPerNode: 4,
		MaxRunningJobs:    0,
		TimeScale:         time.Millisecond,
		HeartbeatInterval: 2 * time.Millisecond,
	}
}

func uniformJob(id int, n int, duration float64) job.Spec {
	tasks := make([]job.TaskSpec, n)
	for i := range tasks {
		tasks[i] = job.TaskSpec{Duration: duration, Containers: 1}
	}
	return job.Spec{
		ID: id, Name: "uniform", Bin: 1, Priority: 1,
		Stages: []job.StageSpec{{Name: "map", Tasks: tasks}},
	}
}

func mapReduceJob(id, nMap int, mapDur float64, nReduce int, redDur float64) job.Spec {
	maps := make([]job.TaskSpec, nMap)
	for i := range maps {
		maps[i] = job.TaskSpec{Duration: mapDur, Containers: 1}
	}
	reduces := make([]job.TaskSpec, nReduce)
	for i := range reduces {
		reduces[i] = job.TaskSpec{Duration: redDur, Containers: 2}
	}
	return job.Spec{
		ID: id, Name: "mapreduce", Bin: 2, Priority: 1,
		Stages: []job.StageSpec{
			{Name: "map", Tasks: maps},
			{Name: "reduce", Tasks: reduces},
		},
	}
}

func drain(t *testing.T, c *Cluster) []JobReport {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	reports, err := c.Drain(ctx)
	if err != nil {
		t.Fatalf("drain: %v", err)
	}
	return reports
}

func TestConfigValidation(t *testing.T) {
	mutations := []func(*Config){
		func(c *Config) { c.Nodes = 0 },
		func(c *Config) { c.ContainersPerNode = 0 },
		func(c *Config) { c.MaxRunningJobs = -1 },
		func(c *Config) { c.TimeScale = 0 },
		func(c *Config) { c.HeartbeatInterval = 0 },
	}
	for i, mutate := range mutations {
		cfg := fastConfig()
		mutate(&cfg)
		if _, err := New(cfg, sched.NewFIFO()); err == nil {
			t.Errorf("mutation %d: expected validation error", i)
		}
	}
	if _, err := New(fastConfig(), nil); err == nil {
		t.Error("expected error for nil scheduler")
	}
}

func TestSingleJobCompletes(t *testing.T) {
	c, err := New(fastConfig(), sched.NewFIFO())
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	defer c.Shutdown()

	spec := uniformJob(1, 8, 20) // 8 tasks of 20 spec-seconds on 8 containers
	if err := c.Submit(spec); err != nil {
		t.Fatal(err)
	}
	reports := drain(t, c)
	if len(reports) != 1 {
		t.Fatalf("got %d reports, want 1", len(reports))
	}
	r := reports[0]
	// All 8 tasks run in parallel: response ~20 spec seconds; timers can
	// only fire late, never early.
	if r.Response < 20 {
		t.Errorf("response = %v spec-seconds, below the physical minimum 20", r.Response)
	}
	if r.Response > 200 {
		t.Errorf("response = %v spec-seconds, want roughly 20 (scheduling overhead too high)", r.Response)
	}
	// Consumed service is at least the nominal total (8 x 20 = 160).
	if r.Service < 160*0.99 {
		t.Errorf("service = %v, want >= 160", r.Service)
	}
}

func TestStageDependencyLive(t *testing.T) {
	c, err := New(fastConfig(), sched.NewFIFO())
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	defer c.Shutdown()

	// 4 maps of 20 then 2 reduces of 10: response >= 30 spec seconds.
	if err := c.Submit(mapReduceJob(1, 4, 20, 2, 10)); err != nil {
		t.Fatal(err)
	}
	reports := drain(t, c)
	if r := reports[0].Response; r < 30 {
		t.Errorf("response = %v, below map+reduce minimum 30", r)
	}
}

func TestLASMQPrioritizesSmallJobLive(t *testing.T) {
	mq, err := core.New(core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg := fastConfig()
	c, err := New(cfg, mq)
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	defer c.Shutdown()

	// A large job grabs the cluster; a small job arrives afterwards and must
	// overtake it once the large job is demoted.
	large := uniformJob(1, 64, 50)
	small := uniformJob(2, 2, 5)
	if err := c.Submit(large); err != nil {
		t.Fatal(err)
	}
	time.Sleep(60 * time.Millisecond) // let the large job attain service
	if err := c.Submit(small); err != nil {
		t.Fatal(err)
	}
	reports := drain(t, c)
	byID := make(map[int]JobReport, len(reports))
	for _, r := range reports {
		byID[r.ID] = r
	}
	if !byID[2].Completed.Before(byID[1].Completed) {
		t.Errorf("small job (done %v) did not overtake large job (done %v)",
			byID[2].Completed, byID[1].Completed)
	}
	// The small job should finish in a small multiple of its isolated time
	// (2 tasks x 5 s on a free-ish cluster), far below the large job's span.
	if byID[2].Response > byID[1].Response/2 {
		t.Errorf("small job response %v not well below large job's %v",
			byID[2].Response, byID[1].Response)
	}
}

func TestFIFOBlocksSmallJobLive(t *testing.T) {
	c, err := New(fastConfig(), sched.NewFIFO())
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	defer c.Shutdown()

	large := uniformJob(1, 64, 20)
	small := uniformJob(2, 2, 5)
	if err := c.Submit(large); err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond)
	if err := c.Submit(small); err != nil {
		t.Fatal(err)
	}
	reports := drain(t, c)
	byID := make(map[int]JobReport, len(reports))
	for _, r := range reports {
		byID[r.ID] = r
	}
	// Under FIFO the small job waits for most of the large one: its response
	// must be several times its isolated runtime (5 spec seconds).
	if byID[2].Response < 25 {
		t.Errorf("small job response %v under FIFO suspiciously small (no head-of-line blocking?)",
			byID[2].Response)
	}
}

func TestAdmissionLimitLive(t *testing.T) {
	cfg := fastConfig()
	cfg.MaxRunningJobs = 1
	c, err := New(cfg, sched.NewFair())
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	defer c.Shutdown()

	if err := c.Submit(uniformJob(1, 4, 30)); err != nil {
		t.Fatal(err)
	}
	if err := c.Submit(uniformJob(2, 4, 30)); err != nil {
		t.Fatal(err)
	}
	reports := drain(t, c)
	byID := make(map[int]JobReport, len(reports))
	for _, r := range reports {
		byID[r.ID] = r
	}
	// Job 2 is admitted only after job 1 completes.
	if byID[2].Admitted.Before(byID[1].Completed) {
		t.Errorf("job 2 admitted at %v before job 1 completed at %v",
			byID[2].Admitted, byID[1].Completed)
	}
}

func TestReduceTasksNeedSingleNode(t *testing.T) {
	cfg := fastConfig() // 2 nodes x 4 containers
	c, err := New(cfg, sched.NewFIFO())
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	defer c.Shutdown()

	// Reduce tasks of 2 containers fit on a node; the job must complete.
	if err := c.Submit(mapReduceJob(1, 8, 10, 4, 10)); err != nil {
		t.Fatal(err)
	}
	reports := drain(t, c)
	if len(reports) != 1 {
		t.Fatalf("got %d reports, want 1", len(reports))
	}
}

func TestSubmitRejectsOversizedTask(t *testing.T) {
	cfg := fastConfig() // 4 containers per node
	c, err := New(cfg, sched.NewFIFO())
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	defer c.Shutdown()

	bad := job.Spec{
		ID: 1, Name: "wide", Priority: 1,
		Stages: []job.StageSpec{{Name: "map", Tasks: []job.TaskSpec{{Duration: 1, Containers: 5}}}},
	}
	err = c.Submit(bad)
	if err == nil || !strings.Contains(err.Error(), "per-node capacity") {
		t.Errorf("Submit = %v, want per-node capacity error", err)
	}
}

func TestSubmitBeforeStart(t *testing.T) {
	c, err := New(fastConfig(), sched.NewFIFO())
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Submit(uniformJob(1, 1, 1)); err == nil {
		t.Error("expected error submitting before Start")
	}
	c.Start()
	c.Shutdown()
}

func TestSubmitRejectsInvalidSpec(t *testing.T) {
	c, err := New(fastConfig(), sched.NewFIFO())
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	defer c.Shutdown()
	bad := uniformJob(1, 1, 1)
	bad.Stages[0].Tasks[0].Duration = -1
	if err := c.Submit(bad); err == nil {
		t.Error("expected error for invalid spec")
	}
}

func TestDrainContextCancel(t *testing.T) {
	c, err := New(fastConfig(), sched.NewFIFO())
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	defer c.Shutdown()
	if err := c.Submit(uniformJob(1, 8, 5000)); err != nil { // long job
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := c.Drain(ctx); err == nil {
		t.Error("expected context deadline error from Drain")
	}
}

func TestShutdownWithRunningTasks(t *testing.T) {
	c, err := New(fastConfig(), sched.NewFIFO())
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	if err := c.Submit(uniformJob(1, 8, 10000)); err != nil {
		t.Fatal(err)
	}
	time.Sleep(10 * time.Millisecond)
	done := make(chan struct{})
	go func() {
		c.Shutdown()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Shutdown did not return with running tasks")
	}
}

func TestShutdownIdempotent(t *testing.T) {
	c, err := New(fastConfig(), sched.NewFIFO())
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	c.Shutdown()
	c.Shutdown() // must not panic or block
}

func TestFailureInjectionLive(t *testing.T) {
	cfg := fastConfig()
	cfg.FailureProb = 0.3
	cfg.Seed = 9
	c, err := New(cfg, sched.NewFIFO())
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	defer c.Shutdown()

	spec := uniformJob(1, 24, 5)
	if err := c.Submit(spec); err != nil {
		t.Fatal(err)
	}
	reports := drain(t, c)
	r := reports[0]
	if r.Failures == 0 {
		t.Error("expected failed attempts at FailureProb=0.3")
	}
	// Every task still completed despite retries, and the consumed service
	// exceeds the nominal total (failed attempts burn containers).
	if r.Service <= spec.TotalService() {
		t.Errorf("service %v should exceed nominal %v with failures", r.Service, spec.TotalService())
	}
}

func TestFailureProbValidationLive(t *testing.T) {
	cfg := fastConfig()
	cfg.FailureProb = 1
	if _, err := New(cfg, sched.NewFIFO()); err == nil {
		t.Error("expected validation error for failure probability 1")
	}
}

func TestManyJobsUnderLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("live cluster load test")
	}
	cfg := Config{
		Nodes:             4,
		ContainersPerNode: 8,
		MaxRunningJobs:    6,
		TimeScale:         200 * time.Microsecond,
		HeartbeatInterval: time.Millisecond,
	}
	mq, err := core.New(core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(cfg, mq)
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	defer c.Shutdown()

	var totalService float64
	const jobs = 20
	for i := 1; i <= jobs; i++ {
		var spec job.Spec
		if i%4 == 0 {
			spec = mapReduceJob(i, 12, 15, 3, 10)
		} else {
			spec = uniformJob(i, 6, 10)
		}
		totalService += spec.TotalService()
		if err := c.Submit(spec); err != nil {
			t.Fatal(err)
		}
	}
	reports := drain(t, c)
	if len(reports) != jobs {
		t.Fatalf("got %d reports, want %d", len(reports), jobs)
	}
	var consumed float64
	for _, r := range reports {
		if r.Response <= 0 {
			t.Errorf("job %d response %v", r.ID, r.Response)
		}
		consumed += r.Service
	}
	// Timers never fire early, so consumed >= nominal.
	if consumed < totalService*0.99 {
		t.Errorf("consumed service %v below nominal %v", consumed, totalService)
	}
}

// --- White-box application accounting tests (no goroutines) ---

func TestApplicationAccounting(t *testing.T) {
	spec := mapReduceJob(1, 2, 10, 1, 5)
	base := time.Now()
	app := newApplication(spec, base)
	scale := time.Millisecond

	if app.done() {
		t.Fatal("new application already done")
	}
	ts, stage, idx, ok := app.peekReady()
	if !ok || stage != 0 || ts.Containers != 1 {
		t.Fatalf("peekReady = %+v stage %d ok=%v", ts, stage, ok)
	}

	// Launch both maps at t0, complete at t0+10ms (10 spec seconds).
	app.markLaunched(0, 0, 1, base)
	_, _, idx2, _ := app.peekReady()
	app.markLaunched(0, idx2, 1, base)
	if app.usage != 2 {
		t.Fatalf("usage = %d, want 2", app.usage)
	}
	mid := base.Add(5 * time.Millisecond)
	if got := app.attained(mid, scale); got < 9.9 || got > 10.1 {
		t.Errorf("attained mid-map = %v, want ~10 (2 containers x 5 s)", got)
	}
	// Stage-aware estimate at 50% progress: ~20 (stage total).
	if got := app.estimated(mid, scale); got < 19 || got > 21 {
		t.Errorf("estimated mid-map = %v, want ~20", got)
	}

	end := base.Add(10 * time.Millisecond)
	for _, taskIdx := range []int{idx, idx2} {
		app.completeTask(completion{
			jobID: 1, stage: 0, task: taskIdx, containers: 1,
			started: base, finished: end, success: true,
		}, scale)
	}
	if app.doneStages != 1 || len(app.activeStages) != 1 || app.activeStages[0] != 1 {
		t.Fatalf("after map stage: doneStages=%d activeStages=%v, want reduce stage active",
			app.doneStages, app.activeStages)
	}
	if got := app.attained(end, scale); got < 19.9 || got > 20.1 {
		t.Errorf("attained after maps = %v, want 20", got)
	}

	// Reduce: 2 containers for 5 spec seconds.
	ts, stage, idx, ok = app.peekReady()
	if !ok || stage != 1 || ts.Containers != 2 {
		t.Fatalf("reduce peekReady = %+v stage %d ok %v", ts, stage, ok)
	}
	app.markLaunched(1, idx, 2, end)
	app.completeTask(completion{
		jobID: 1, stage: 1, task: idx, containers: 2,
		started: end, finished: end.Add(5 * time.Millisecond), success: true,
	}, scale)
	if !app.done() {
		t.Fatal("application not done after all stages")
	}
	if got := app.finalizedService; got < 29.9 || got > 30.1 {
		t.Errorf("final service = %v, want 30", got)
	}
}

func TestApplicationViewDemands(t *testing.T) {
	spec := mapReduceJob(1, 3, 10, 2, 5)
	app := newApplication(spec, time.Now())
	v := app.view(time.Now(), time.Millisecond)
	if got := v.ReadyDemand(); got != 3 {
		t.Errorf("ReadyDemand = %v, want 3 maps", got)
	}
	if got := v.RemainingDemand(); got != 7 {
		t.Errorf("RemainingDemand = %v, want 3 + 2x2", got)
	}
	if got := v.SizeHint(); got != spec.TotalService() {
		t.Errorf("SizeHint = %v, want %v", got, spec.TotalService())
	}
}

// observingScheduler forwards Assign to the wrapped policy and counts the
// Observe updates the kernel driver delivers on rounds that cannot launch
// tasks. Counters are only read after Shutdown, when the RM goroutine that
// calls the policy has exited.
type observingScheduler struct {
	inner sched.Scheduler
	fwd   sched.Observer // non-nil when inner is stateful

	assigns      int
	observes     int
	observedJobs int
}

func (o *observingScheduler) Name() string { return o.inner.Name() }

func (o *observingScheduler) Assign(now, capacity float64, jobs []sched.JobView) sched.Assignment {
	o.assigns++
	return o.inner.Assign(now, capacity, jobs)
}

func (o *observingScheduler) Observe(now float64, jobs []sched.JobView) {
	o.observes++
	o.observedJobs += len(jobs)
	if o.fwd != nil {
		o.fwd.Observe(now, jobs)
	}
}

// TestAdaptiveReceivesObserveLive shows a stateful policy getting Observe
// updates on the live cluster: once every task of every admitted job is
// launched, nothing is ready, so heartbeat rounds cannot launch anything —
// the RM skips the full policy invocation and the kernel driver replays the
// state mutation via Observe instead (previously those instants were
// silently dropped).
func TestAdaptiveReceivesObserveLive(t *testing.T) {
	adaptive, err := core.NewAdaptive(core.DefaultAdaptiveConfig())
	if err != nil {
		t.Fatalf("adaptive: %v", err)
	}
	wrapped := &observingScheduler{inner: adaptive, fwd: adaptive}
	c, err := New(fastConfig(), wrapped)
	if err != nil {
		t.Fatalf("new cluster: %v", err)
	}
	c.Start()
	// Single-task jobs long enough (40-60 ms wall at the test's 1 ms scale,
	// vs. the 2 ms heartbeat) that many heartbeats fire while both tasks run
	// and nothing is ready.
	if err := c.Submit(uniformJob(1, 1, 40)); err != nil {
		t.Fatalf("submit: %v", err)
	}
	if err := c.Submit(uniformJob(2, 1, 60)); err != nil {
		t.Fatalf("submit: %v", err)
	}
	reports := drain(t, c)
	c.Shutdown()
	if len(reports) != 2 {
		t.Fatalf("completed %d jobs, want 2", len(reports))
	}
	if wrapped.assigns == 0 {
		t.Fatal("expected full scheduling rounds to reach the policy")
	}
	if wrapped.observes == 0 {
		t.Fatal("expected Observe updates on rounds with nothing to launch")
	}
	if wrapped.observedJobs == 0 {
		t.Fatal("Observe updates carried no job views")
	}
}

// TestAdmissionLimitEdgeCasesLive drives the kernel admission queue through
// its edge cases on the live cluster: limit 0 (unlimited) and a limit above
// the job count must both admit everything and complete the workload.
func TestAdmissionLimitEdgeCasesLive(t *testing.T) {
	for _, limit := range []int{0, 50} {
		cfg := fastConfig()
		cfg.MaxRunningJobs = limit
		c, err := New(cfg, sched.NewFIFO())
		if err != nil {
			t.Fatalf("limit %d: new cluster: %v", limit, err)
		}
		c.Start()
		for id := 1; id <= 3; id++ {
			if err := c.Submit(uniformJob(id, 2, 10)); err != nil {
				t.Fatalf("limit %d: submit %d: %v", limit, id, err)
			}
		}
		reports := drain(t, c)
		c.Shutdown()
		if len(reports) != 3 {
			t.Fatalf("limit %d: completed %d jobs, want 3", limit, len(reports))
		}
		for _, r := range reports {
			if r.Response <= 0 {
				t.Errorf("limit %d: job %d has response %v", limit, r.ID, r.Response)
			}
		}
	}
}
