// Package eventq implements the priority queue over virtual time used by the
// discrete-event simulators. Events with equal timestamps are delivered in
// insertion order, which keeps simulations deterministic.
package eventq

// Queue is a min-heap of values keyed by (time, insertion sequence).
// The zero value is an empty queue ready to use.
type Queue[T any] struct {
	items []entry[T]
	seq   uint64
}

type entry[T any] struct {
	time  float64
	seq   uint64
	value T
}

// Len reports the number of queued events.
func (q *Queue[T]) Len() int { return len(q.items) }

// Push schedules value at the given virtual time.
func (q *Queue[T]) Push(time float64, value T) {
	q.items = append(q.items, entry[T]{time: time, seq: q.seq, value: value})
	q.seq++
	q.up(len(q.items) - 1)
}

// Peek returns the earliest event without removing it. ok is false if the
// queue is empty.
func (q *Queue[T]) Peek() (time float64, value T, ok bool) {
	if len(q.items) == 0 {
		var zero T
		return 0, zero, false
	}
	return q.items[0].time, q.items[0].value, true
}

// Pop removes and returns the earliest event. ok is false if the queue is
// empty.
func (q *Queue[T]) Pop() (time float64, value T, ok bool) {
	time, value, ok = q.popNoShrink()
	if ok {
		q.shrink()
	}
	return time, value, ok
}

// popNoShrink is Pop without the capacity check, so batch drains can defer
// the (reallocating) shrink until the whole batch is out instead of paying a
// quarter-capacity copy on every element.
func (q *Queue[T]) popNoShrink() (time float64, value T, ok bool) {
	if len(q.items) == 0 {
		var zero T
		return 0, zero, false
	}
	top := q.items[0]
	last := len(q.items) - 1
	q.items[0] = q.items[last]
	q.items = q.items[:last]
	if last > 0 {
		q.down(0)
	}
	return top.time, top.value, true
}

// PopBatch removes every event sharing the earliest timestamp and appends
// them, in insertion order, to buf[:0] — so callers can reuse one buffer
// across calls instead of allocating a slice per batch. ok is false if the
// queue is empty. The backing array is shrunk at most once per batch, after
// the last element is out.
func (q *Queue[T]) PopBatch(buf []T) (time float64, batch []T, ok bool) {
	batch = buf[:0]
	t, first, ok := q.popNoShrink()
	if !ok {
		return 0, batch, false
	}
	batch = append(batch, first)
	for {
		nt, _, ok := q.Peek()
		if !ok || nt != t {
			q.shrink()
			return t, batch, true
		}
		_, v, _ := q.popNoShrink()
		batch = append(batch, v)
	}
}

// Reset empties the queue while keeping its backing array, so one Queue can
// be reused across simulation runs. The insertion-sequence counter restarts,
// making a reset queue indistinguishable from a fresh one.
func (q *Queue[T]) Reset() {
	clear(q.items)
	q.items = q.items[:0]
	q.seq = 0
}

// shrinkMin is the capacity below which the heap's backing array is never
// reallocated downward (shrinking tiny slices would only cause churn).
const shrinkMin = 64

// shrink reallocates the backing array once occupancy falls below a quarter
// of its capacity, returning memory after the simulation's event population
// peaks (e.g. all arrivals pushed up front, then drained).
func (q *Queue[T]) shrink() {
	if c := cap(q.items); c > shrinkMin && len(q.items) < c/4 {
		items := make([]entry[T], len(q.items), c/2)
		copy(items, q.items)
		q.items = items
	}
}

func (q *Queue[T]) less(i, j int) bool {
	if q.items[i].time != q.items[j].time {
		return q.items[i].time < q.items[j].time
	}
	return q.items[i].seq < q.items[j].seq
}

func (q *Queue[T]) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			return
		}
		q.items[i], q.items[parent] = q.items[parent], q.items[i]
		i = parent
	}
}

func (q *Queue[T]) down(i int) {
	n := len(q.items)
	for {
		left := 2*i + 1
		if left >= n {
			return
		}
		smallest := left
		if right := left + 1; right < n && q.less(right, left) {
			smallest = right
		}
		if !q.less(smallest, i) {
			return
		}
		q.items[i], q.items[smallest] = q.items[smallest], q.items[i]
		i = smallest
	}
}
