package eventq

import (
	"math/rand"
	"testing"
)

// mirror drives a Queue and a Ladder with the same operation sequence and
// fails the test on the first divergence in results or lengths.
type mirror struct {
	t    *testing.T
	q    Queue[int]
	l    Ladder[int]
	qbuf []int
	lbuf []int
}

func (m *mirror) push(time float64, v int) {
	m.t.Helper()
	m.q.Push(time, v)
	m.l.Push(time, v)
	m.checkLen()
}

func (m *mirror) pop() {
	m.t.Helper()
	qt, qv, qok := m.q.Pop()
	lt, lv, lok := m.l.Pop()
	if qt != lt || qv != lv || qok != lok {
		m.t.Fatalf("Pop diverged: queue (%v, %d, %t) vs ladder (%v, %d, %t)",
			qt, qv, qok, lt, lv, lok)
	}
	m.checkLen()
}

func (m *mirror) peek() {
	m.t.Helper()
	qt, qv, qok := m.q.Peek()
	lt, lv, lok := m.l.Peek()
	if qt != lt || qv != lv || qok != lok {
		m.t.Fatalf("Peek diverged: queue (%v, %d, %t) vs ladder (%v, %d, %t)",
			qt, qv, qok, lt, lv, lok)
	}
}

func (m *mirror) popBatch() {
	m.t.Helper()
	qt, qb, qok := m.q.PopBatch(m.qbuf)
	lt, lb, lok := m.l.PopBatch(m.lbuf)
	m.qbuf, m.lbuf = qb, lb
	if qt != lt || qok != lok || len(qb) != len(lb) {
		m.t.Fatalf("PopBatch diverged: queue (%v, %v, %t) vs ladder (%v, %v, %t)",
			qt, qb, qok, lt, lb, lok)
	}
	for i := range qb {
		if qb[i] != lb[i] {
			m.t.Fatalf("PopBatch diverged at index %d: queue %v vs ladder %v", i, qb, lb)
		}
	}
	m.checkLen()
}

func (m *mirror) checkLen() {
	m.t.Helper()
	if m.q.Len() != m.l.Len() {
		m.t.Fatalf("Len diverged: queue %d vs ladder %d", m.q.Len(), m.l.Len())
	}
}

func (m *mirror) drain() {
	m.t.Helper()
	for m.q.Len() > 0 || m.l.Len() > 0 {
		m.pop()
	}
	m.pop() // one empty pop: both must report !ok
}

// TestLadderZeroValue: the zero value must be a usable empty queue, exactly
// like Queue's.
func TestLadderZeroValue(t *testing.T) {
	var l Ladder[string]
	if l.Len() != 0 {
		t.Fatalf("zero-value Len = %d, want 0", l.Len())
	}
	if _, _, ok := l.Pop(); ok {
		t.Fatal("Pop on zero-value ladder reported ok")
	}
	if _, _, ok := l.Peek(); ok {
		t.Fatal("Peek on zero-value ladder reported ok")
	}
	if _, batch, ok := l.PopBatch(nil); ok || len(batch) != 0 {
		t.Fatalf("PopBatch on zero-value ladder = (%v, %t), want empty", batch, ok)
	}
	l.Push(2, "b")
	l.Push(1, "a")
	if tm, v, ok := l.Pop(); !ok || tm != 1 || v != "a" {
		t.Fatalf("Pop = (%v, %q, %t), want (1, a, true)", tm, v, ok)
	}
	if tm, v, ok := l.Pop(); !ok || tm != 2 || v != "b" {
		t.Fatalf("Pop = (%v, %q, %t), want (2, b, true)", tm, v, ok)
	}
}

// TestLadderOrdering: events come out sorted by time with ties in insertion
// order, matching the heap queue on a random workload.
func TestLadderOrdering(t *testing.T) {
	m := &mirror{t: t}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 4000; i++ {
		// Coarse times force plenty of exact ties.
		m.push(float64(rng.Intn(97)), i)
	}
	m.drain()
}

// TestLadderFIFOAcrossBucketBoundaries pins equal-time delivery order when
// the tied events interact with the ladder's bucket structure: ties landing
// exactly on a rung boundary, ties pushed into a rung versus inserted into
// the active segment after that rung activates, and ties split between a
// rung and the overflow list across a rebase.
func TestLadderFIFOAcrossBucketBoundaries(t *testing.T) {
	m := &mirror{t: t}

	// Span [0, 64): after the first rebase the rungs are width 1, so integer
	// times sit exactly on rung boundaries.
	m.push(0, 1)
	m.push(64, 2)
	m.pop() // pops (0, 1) and rebases {0, 64}
	if m.l.width != 1 {
		t.Fatalf("rebase width = %v, want 1 (test assumes unit rungs)", m.l.width)
	}

	// Boundary tie: t=1 is the exact edge between rung 0 and rung 1; all
	// four must come out 10, 11, 12, 13 even though they are pushed across
	// an active-segment drain and the rung's activation.
	m.push(1, 10)
	m.push(1, 11)   // both land in rung 1
	m.push(0.5, 20) // inside the active span: binary-inserted
	m.popBatch()    // (0.5, [20]); drains the active segment
	m.push(1, 12)   // still rung 1
	m.peek()        // activates (sorts) rung 1
	m.push(1, 13)   // now binary-inserted into the active segment
	m.popBatch()    // (1, [10 11 12 13])

	// Rebase-straddling tie: t=64 was pushed into overflow above; once the
	// rungs drain, a rebase puts it at the new base. Push more ties at t=64
	// before and after that rebase happens.
	m.push(64, 30)
	m.popBatch() // forces the rebase at t=64: batch must be [2 30]
	m.push(64, 31)
	m.popBatch() // (64, [31])
	m.drain()
}

// TestLadderPushDuringPopBatch: pushing events at the currently draining
// timestamp between the pops of a batch must extend the batch in insertion
// order, identically for heap and ladder.
func TestLadderPushDuringPopBatch(t *testing.T) {
	m := &mirror{t: t}
	for i := 0; i < 10; i++ {
		m.push(5, i)
	}
	m.push(7, 99)
	// Drain the t=5 batch by hand, injecting same-time and later-time events
	// mid-drain.
	for i := 0; i < 3; i++ {
		m.pop()
	}
	m.push(5, 100) // joins the tail of the current batch
	m.push(6, 101) // must wait for the whole t=5 batch
	m.popBatch()   // rest of t=5: 3..9 then 100
	m.popBatch()   // (6, [101])
	m.drain()
}

// TestLadderReset: a reset ladder behaves like a fresh one (including the
// restarted insertion sequence) while reusing its arrays.
func TestLadderReset(t *testing.T) {
	var l Ladder[int]
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 1000; i++ {
		l.Push(rng.Float64()*100, i)
	}
	for i := 0; i < 500; i++ {
		l.Pop()
	}
	l.Reset()
	if l.Len() != 0 {
		t.Fatalf("Len after Reset = %d, want 0", l.Len())
	}
	if _, _, ok := l.Pop(); ok {
		t.Fatal("Pop after Reset reported ok")
	}
	m := &mirror{t: t, l: l}
	for i := 0; i < 1000; i++ {
		m.push(float64(rng.Intn(50)), i)
	}
	m.drain()
}

// TestQueueReset: same contract for the heap queue.
func TestQueueReset(t *testing.T) {
	var q Queue[int]
	for i := 0; i < 100; i++ {
		q.Push(float64(i%7), i)
	}
	q.Reset()
	if q.Len() != 0 {
		t.Fatalf("Len after Reset = %d, want 0", q.Len())
	}
	q.Push(1, 42)
	if _, v, ok := q.Pop(); !ok || v != 42 {
		t.Fatalf("Pop after Reset = (%d, %t), want (42, true)", v, ok)
	}
}

// TestPopBatchDefersShrink: draining a large same-time batch must shrink the
// backing array at most once (after the batch), not cascade a reallocation
// per popped element.
func TestPopBatchDefersShrink(t *testing.T) {
	var q Queue[int]
	const n = 1024
	for i := 0; i < n; i++ {
		q.Push(1, i)
	}
	before := cap(q.items)
	_, batch, ok := q.PopBatch(nil)
	if !ok || len(batch) != n {
		t.Fatalf("PopBatch = (%d events, %t), want (%d, true)", len(batch), ok, n)
	}
	// A single end-of-batch shrink halves the capacity once; the pre-fix
	// cascade would shrink it toward shrinkMin.
	if got := cap(q.items); got < before/2 {
		t.Errorf("capacity after batch = %d, want >= %d (single deferred shrink of %d)",
			got, before/2, before)
	}
}

// TestLadderMatchesQueueRandom is the deterministic arm of the differential
// fuzz: long random interleavings of Push/Pop/PopBatch/Peek across several
// seeds, including time collisions, out-of-order (past-time) pushes and full
// drains that force rebases.
func TestLadderMatchesQueueRandom(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		m := &mirror{t: t}
		for op := 0; op < 20000; op++ {
			switch r := rng.Intn(10); {
			case r < 5:
				// Mostly-monotone times with collisions, occasionally far
				// future or past.
				base := float64(op/10) / 2
				jitter := float64(rng.Intn(40)-4) * 0.25
				m.push(base+jitter, op)
			case r < 7:
				m.pop()
			case r < 9:
				m.popBatch()
			default:
				m.peek()
			}
		}
		m.drain()
	}
}

// FuzzLadderMatchesQueue feeds arbitrary interleaved Push/Pop/PopBatch/Peek
// sequences to both implementations and requires identical observable
// behavior, proving the ladder preserves the (time, insertion-seq) delivery
// contract.
func FuzzLadderMatchesQueue(f *testing.F) {
	f.Add([]byte{0, 10, 0, 10, 1, 0, 200, 2, 0, 10, 3})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 2, 2, 2})
	f.Add([]byte{0, 255, 0, 1, 1, 0, 128, 1, 1, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		m := &mirror{t: t}
		for i := 0; i < len(data); i++ {
			switch data[i] % 4 {
			case 0:
				if i+1 >= len(data) {
					return
				}
				i++
				// Quarter-unit quantization yields frequent exact ties;
				// int8 range covers negative (past) times too.
				m.push(float64(int8(data[i]))/4, i)
			case 1:
				m.pop()
			case 2:
				m.popBatch()
			case 3:
				m.peek()
			}
		}
		m.drain()
	})
}
