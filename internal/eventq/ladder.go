package eventq

import "slices"

// ladderRungs is the number of buckets the pending span is split into at
// each rebase. Wider than the simulators' per-instant batch sizes, narrow
// enough that a rung's sort stays cache-resident.
const ladderRungs = 64

// Ladder is a bucketed ("ladder"/calendar) event queue with the same
// (time, insertion-sequence) delivery contract as Queue: events come out in
// nondecreasing time order and events with equal timestamps come out in
// insertion order. The zero value is an empty queue ready to use.
//
// The structure targets the simulators' mostly-monotone event pattern —
// pushes land at or after the current virtual time, most of them well after
// it. Far-future events are appended unsorted to coarse buckets (rungs) or,
// beyond the bucketed span, to an overflow list, both O(1); only the rung
// currently being drained is sorted, once, when it becomes the active
// segment. Pushes that land inside the active segment's span binary-insert
// into it. Amortized cost per event is O(1) plus its share of one
// O(k log k) rung sort, versus the binary heap's O(log n) per operation on
// the whole pending population.
type Ladder[T any] struct {
	seq uint64
	n   int

	// cur is the sorted active segment; live entries are cur[head:]. Events
	// with time < curEnd belong here and binary-insert on push.
	cur    []entry[T]
	head   int
	curEnd float64

	// rungs hold unsorted future events: rung i spans
	// [base+width*i, base+width*(i+1)); rungIdx is the next rung to activate.
	// Events at or past spanEnd = base+width*len(rungs) go to overflow, which
	// is redistributed into fresh rungs once everything earlier has drained.
	rungs    [][]entry[T]
	rungIdx  int
	base     float64
	width    float64
	spanEnd  float64
	overflow []entry[T]
}

// Len reports the number of queued events.
func (l *Ladder[T]) Len() int { return l.n }

// Push schedules value at the given virtual time.
func (l *Ladder[T]) Push(time float64, value T) {
	e := entry[T]{time: time, seq: l.seq, value: value}
	l.seq++
	l.n++
	if time < l.curEnd {
		l.insertCur(e)
		return
	}
	if time < l.spanEnd {
		// The index is a deterministic function of the time, and the lower
		// clamp (rungIdx, which only ever grows while a rung holds events)
		// cannot separate equal timestamps — so equal-time events always land
		// in the same rung and the activation sort restores FIFO among them.
		i := int((time - l.base) / l.width)
		if i < l.rungIdx {
			i = l.rungIdx
		}
		if i >= len(l.rungs) {
			i = len(l.rungs) - 1
		}
		l.rungs[i] = append(l.rungs[i], e)
		return
	}
	l.overflow = append(l.overflow, e)
}

// Peek returns the earliest event without removing it. ok is false if the
// queue is empty. Peek may advance the ladder's internal bucket structure
// (activating and sorting the next rung) but never changes the queue's
// logical contents.
func (l *Ladder[T]) Peek() (time float64, value T, ok bool) {
	if !l.ensureHead() {
		var zero T
		return 0, zero, false
	}
	e := &l.cur[l.head]
	return e.time, e.value, true
}

// Pop removes and returns the earliest event. ok is false if the queue is
// empty.
func (l *Ladder[T]) Pop() (time float64, value T, ok bool) {
	if !l.ensureHead() {
		var zero T
		return 0, zero, false
	}
	e := l.cur[l.head]
	l.cur[l.head] = entry[T]{}
	l.head++
	l.n--
	l.compact()
	return e.time, e.value, true
}

// PopBatch removes every event sharing the earliest timestamp and appends
// them, in insertion order, to buf[:0], mirroring Queue.PopBatch.
func (l *Ladder[T]) PopBatch(buf []T) (time float64, batch []T, ok bool) {
	batch = buf[:0]
	t, first, ok := l.Pop()
	if !ok {
		return 0, batch, false
	}
	batch = append(batch, first)
	for {
		nt, _, ok := l.Peek()
		if !ok || nt != t {
			return t, batch, true
		}
		_, v, _ := l.Pop()
		batch = append(batch, v)
	}
}

// Reset empties the ladder while keeping every backing array (rungs, active
// segment, overflow), so one Ladder can be reused across simulation runs.
func (l *Ladder[T]) Reset() {
	clear(l.cur)
	l.cur = l.cur[:0]
	l.head = 0
	l.curEnd = 0
	for i := range l.rungs {
		clear(l.rungs[i])
		l.rungs[i] = l.rungs[i][:0]
	}
	l.rungIdx = 0
	l.base = 0
	l.width = 0
	l.spanEnd = 0
	clear(l.overflow)
	l.overflow = l.overflow[:0]
	l.seq = 0
	l.n = 0
}

// insertCur binary-inserts e into the active segment. Every queued entry's
// sequence number is smaller than e's, so the upper bound by time alone is
// the correct (time, seq) position and FIFO among equal timestamps holds.
func (l *Ladder[T]) insertCur(e entry[T]) {
	lo, hi := l.head, len(l.cur)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if l.cur[mid].time <= e.time {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	l.cur = append(l.cur, entry[T]{})
	copy(l.cur[lo+1:], l.cur[lo:])
	l.cur[lo] = e
}

// ensureHead makes cur[head] the earliest queued event, activating rungs and
// rebasing the overflow as needed. It reports false when the queue is empty.
func (l *Ladder[T]) ensureHead() bool {
	if l.n == 0 {
		return false
	}
	for l.head == len(l.cur) {
		if !l.advance() {
			return false
		}
	}
	return true
}

// advance replaces the drained active segment with the next non-empty rung
// (sorting it), rebasing the overflow into fresh rungs when all rungs are
// spent. It reports false when nothing is left anywhere.
func (l *Ladder[T]) advance() bool {
	l.cur = l.cur[:0]
	l.head = 0
	for i := l.rungIdx; i < len(l.rungs); i++ {
		if len(l.rungs[i]) == 0 {
			continue
		}
		// Adopt the rung as the new active segment; the drained segment's
		// backing array is recycled as the (now empty) rung's.
		l.cur, l.rungs[i] = l.rungs[i], l.cur
		l.rungIdx = i + 1
		l.curEnd = l.base + l.width*float64(l.rungIdx)
		sortEntries(l.cur)
		return true
	}
	l.rungIdx = len(l.rungs)
	return l.rebase()
}

// rebase spreads the overflow over a fresh set of rungs spanning exactly the
// overflow's time range. Only reached with every rung and the active segment
// empty, so all remaining events (and every future push, whose time can sort
// before none of the already-delivered ones under the simulators' usage) are
// re-bucketed consistently.
func (l *Ladder[T]) rebase() bool {
	if len(l.overflow) == 0 {
		return false
	}
	if l.rungs == nil {
		l.rungs = make([][]entry[T], ladderRungs)
	}
	min, max := l.overflow[0].time, l.overflow[0].time
	for i := 1; i < len(l.overflow); i++ {
		t := l.overflow[i].time
		if t < min {
			min = t
		}
		if t > max {
			max = t
		}
	}
	l.base = min
	l.width = (max - min) / float64(len(l.rungs))
	if !(l.width > 0) {
		// Degenerate span (all timestamps equal, or a width that underflowed):
		// any positive width buckets everything into rung 0.
		l.width = 1
	}
	l.spanEnd = l.base + l.width*float64(len(l.rungs))
	l.rungIdx = 0
	for _, e := range l.overflow {
		i := int((e.time - l.base) / l.width)
		if i < 0 {
			i = 0
		}
		if i >= len(l.rungs) {
			i = len(l.rungs) - 1
		}
		l.rungs[i] = append(l.rungs[i], e)
	}
	clear(l.overflow)
	l.overflow = l.overflow[:0]
	return true
}

// compact bounds the consumed prefix of the active segment so a long
// insert-at-head workload cannot grow its backing array without bound. The
// copy moves at most as many entries as were popped since the last compact,
// keeping Pop amortized O(1).
func (l *Ladder[T]) compact() {
	if l.head < shrinkMin || l.head*2 < len(l.cur) {
		return
	}
	n := copy(l.cur, l.cur[l.head:])
	clear(l.cur[n:])
	l.cur = l.cur[:n]
	l.head = 0
}

// sortEntries sorts a rung by (time, seq) as it becomes the active segment.
// slices.SortFunc with a capture-free comparator keeps the path allocation
// free, unlike sort.Slice.
func sortEntries[T any](es []entry[T]) {
	slices.SortFunc(es, func(a, b entry[T]) int {
		if a.time != b.time {
			if a.time < b.time {
				return -1
			}
			return 1
		}
		// Sequence numbers are unique, so the order is total.
		if a.seq < b.seq {
			return -1
		}
		return 1
	})
}
