package eventq

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEmptyQueue(t *testing.T) {
	var q Queue[string]
	if q.Len() != 0 {
		t.Errorf("empty queue Len = %d", q.Len())
	}
	if _, _, ok := q.Pop(); ok {
		t.Error("Pop on empty queue reported ok")
	}
	if _, _, ok := q.Peek(); ok {
		t.Error("Peek on empty queue reported ok")
	}
}

func TestOrdering(t *testing.T) {
	var q Queue[int]
	times := []float64{5, 1, 3, 2, 4}
	for i, tm := range times {
		q.Push(tm, i)
	}
	var got []float64
	for q.Len() > 0 {
		tm, _, ok := q.Pop()
		if !ok {
			t.Fatal("Pop failed on non-empty queue")
		}
		got = append(got, tm)
	}
	if !sort.Float64sAreSorted(got) {
		t.Errorf("pop order not sorted: %v", got)
	}
}

func TestFIFOAmongTies(t *testing.T) {
	var q Queue[int]
	for i := 0; i < 10; i++ {
		q.Push(7.0, i)
	}
	for want := 0; want < 10; want++ {
		_, v, ok := q.Pop()
		if !ok {
			t.Fatal("Pop failed")
		}
		if v != want {
			t.Fatalf("tie-break order broken: got %d, want %d", v, want)
		}
	}
}

func TestPeekMatchesPop(t *testing.T) {
	var q Queue[string]
	q.Push(2, "b")
	q.Push(1, "a")
	pt, pv, _ := q.Peek()
	qt, qv, _ := q.Pop()
	if pt != qt || pv != qv {
		t.Errorf("Peek (%v,%q) != Pop (%v,%q)", pt, pv, qt, qv)
	}
	if pv != "a" {
		t.Errorf("earliest event = %q, want a", pv)
	}
}

func TestInterleavedPushPop(t *testing.T) {
	var q Queue[float64]
	r := rand.New(rand.NewSource(1))
	lastPopped := -1.0
	// Push monotonically increasing times while popping; order must hold.
	for i := 0; i < 1000; i++ {
		q.Push(float64(i)+r.Float64(), float64(i))
		if i%3 == 0 {
			tm, _, ok := q.Pop()
			if !ok {
				t.Fatal("unexpected empty queue")
			}
			if tm < lastPopped {
				t.Fatalf("time went backwards: %v after %v", tm, lastPopped)
			}
			lastPopped = tm
		}
	}
	for q.Len() > 0 {
		tm, _, _ := q.Pop()
		if tm < lastPopped {
			t.Fatalf("time went backwards: %v after %v", tm, lastPopped)
		}
		lastPopped = tm
	}
}

func TestHeapProperty(t *testing.T) {
	f := func(times []float64) bool {
		var q Queue[int]
		for i, tm := range times {
			q.Push(tm, i)
		}
		prev := math.Inf(-1)
		for q.Len() > 0 {
			tm, _, ok := q.Pop()
			if !ok || tm < prev {
				return false
			}
			prev = tm
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestLenTracksOperations(t *testing.T) {
	var q Queue[int]
	for i := 0; i < 50; i++ {
		q.Push(float64(i), i)
	}
	if q.Len() != 50 {
		t.Fatalf("Len = %d, want 50", q.Len())
	}
	for i := 0; i < 20; i++ {
		q.Pop()
	}
	if q.Len() != 30 {
		t.Fatalf("Len = %d, want 30", q.Len())
	}
}
