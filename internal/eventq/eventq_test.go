package eventq

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEmptyQueue(t *testing.T) {
	var q Queue[string]
	if q.Len() != 0 {
		t.Errorf("empty queue Len = %d", q.Len())
	}
	if _, _, ok := q.Pop(); ok {
		t.Error("Pop on empty queue reported ok")
	}
	if _, _, ok := q.Peek(); ok {
		t.Error("Peek on empty queue reported ok")
	}
}

func TestOrdering(t *testing.T) {
	var q Queue[int]
	times := []float64{5, 1, 3, 2, 4}
	for i, tm := range times {
		q.Push(tm, i)
	}
	var got []float64
	for q.Len() > 0 {
		tm, _, ok := q.Pop()
		if !ok {
			t.Fatal("Pop failed on non-empty queue")
		}
		got = append(got, tm)
	}
	if !sort.Float64sAreSorted(got) {
		t.Errorf("pop order not sorted: %v", got)
	}
}

func TestFIFOAmongTies(t *testing.T) {
	var q Queue[int]
	for i := 0; i < 10; i++ {
		q.Push(7.0, i)
	}
	for want := 0; want < 10; want++ {
		_, v, ok := q.Pop()
		if !ok {
			t.Fatal("Pop failed")
		}
		if v != want {
			t.Fatalf("tie-break order broken: got %d, want %d", v, want)
		}
	}
}

func TestPeekMatchesPop(t *testing.T) {
	var q Queue[string]
	q.Push(2, "b")
	q.Push(1, "a")
	pt, pv, _ := q.Peek()
	qt, qv, _ := q.Pop()
	if pt != qt || pv != qv {
		t.Errorf("Peek (%v,%q) != Pop (%v,%q)", pt, pv, qt, qv)
	}
	if pv != "a" {
		t.Errorf("earliest event = %q, want a", pv)
	}
}

func TestInterleavedPushPop(t *testing.T) {
	var q Queue[float64]
	r := rand.New(rand.NewSource(1))
	lastPopped := -1.0
	// Push monotonically increasing times while popping; order must hold.
	for i := 0; i < 1000; i++ {
		q.Push(float64(i)+r.Float64(), float64(i))
		if i%3 == 0 {
			tm, _, ok := q.Pop()
			if !ok {
				t.Fatal("unexpected empty queue")
			}
			if tm < lastPopped {
				t.Fatalf("time went backwards: %v after %v", tm, lastPopped)
			}
			lastPopped = tm
		}
	}
	for q.Len() > 0 {
		tm, _, _ := q.Pop()
		if tm < lastPopped {
			t.Fatalf("time went backwards: %v after %v", tm, lastPopped)
		}
		lastPopped = tm
	}
}

func TestHeapProperty(t *testing.T) {
	f := func(times []float64) bool {
		var q Queue[int]
		for i, tm := range times {
			q.Push(tm, i)
		}
		prev := math.Inf(-1)
		for q.Len() > 0 {
			tm, _, ok := q.Pop()
			if !ok || tm < prev {
				return false
			}
			prev = tm
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestLenTracksOperations(t *testing.T) {
	var q Queue[int]
	for i := 0; i < 50; i++ {
		q.Push(float64(i), i)
	}
	if q.Len() != 50 {
		t.Fatalf("Len = %d, want 50", q.Len())
	}
	for i := 0; i < 20; i++ {
		q.Pop()
	}
	if q.Len() != 30 {
		t.Fatalf("Len = %d, want 30", q.Len())
	}
}

func TestPopBatchEqualTimeOrder(t *testing.T) {
	var q Queue[int]
	// Interleave three timestamps; equal-time events must come back in
	// insertion order, whole timestamp groups at a time.
	q.Push(2, 20)
	q.Push(1, 10)
	q.Push(2, 21)
	q.Push(1, 11)
	q.Push(3, 30)
	q.Push(1, 12)

	var buf []int
	want := []struct {
		time  float64
		batch []int
	}{
		{1, []int{10, 11, 12}},
		{2, []int{20, 21}},
		{3, []int{30}},
	}
	for _, w := range want {
		tm, batch, ok := q.PopBatch(buf)
		if !ok || tm != w.time {
			t.Fatalf("PopBatch = (%v, %v, %v), want time %v", tm, batch, ok, w.time)
		}
		if len(batch) != len(w.batch) {
			t.Fatalf("batch at t=%v: got %v, want %v", tm, batch, w.batch)
		}
		for i := range batch {
			if batch[i] != w.batch[i] {
				t.Fatalf("batch at t=%v: got %v, want %v (insertion order)", tm, batch, w.batch)
			}
		}
		buf = batch // reuse the returned buffer, as the simulator does
	}
	if _, _, ok := q.PopBatch(buf); ok {
		t.Fatal("PopBatch on empty queue reported ok")
	}
}

func TestPopBatchReusesBuffer(t *testing.T) {
	var q Queue[int]
	for i := 0; i < 8; i++ {
		q.Push(1, i)
	}
	buf := make([]int, 0, 16)
	_, batch, ok := q.PopBatch(buf)
	if !ok || len(batch) != 8 {
		t.Fatalf("PopBatch = (%v, ok=%v), want 8 events", batch, ok)
	}
	if &batch[0] != &buf[:1][0] {
		t.Fatal("PopBatch did not reuse the caller's buffer backing array")
	}
}

func TestPopBatchMatchesPopSequence(t *testing.T) {
	f := func(times []float64) bool {
		var a, b Queue[int]
		for i, tm := range times {
			a.Push(tm, i)
			b.Push(tm, i)
		}
		var buf []int
		var fromBatches []int
		for {
			_, batch, ok := a.PopBatch(buf)
			if !ok {
				break
			}
			fromBatches = append(fromBatches, batch...)
			buf = batch
		}
		var fromPops []int
		for {
			_, v, ok := b.Pop()
			if !ok {
				break
			}
			fromPops = append(fromPops, v)
		}
		if len(fromBatches) != len(fromPops) {
			return false
		}
		for i := range fromPops {
			if fromBatches[i] != fromPops[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestShrinkReleasesBacking(t *testing.T) {
	var q Queue[int]
	const n = 4096
	for i := 0; i < n; i++ {
		q.Push(float64(i), i)
	}
	grown := cap(q.items)
	prev := math.Inf(-1)
	for q.Len() > 0 {
		tm, _, ok := q.Pop()
		if !ok || tm < prev {
			t.Fatalf("order violated while shrinking: %v after %v", tm, prev)
		}
		prev = tm
	}
	if cap(q.items) >= grown {
		t.Fatalf("backing array never shrank: cap still %d (peak %d)", cap(q.items), grown)
	}
	// The queue must stay fully usable after shrinking.
	q.Push(1, 1)
	if tm, v, ok := q.Pop(); !ok || tm != 1 || v != 1 {
		t.Fatalf("queue unusable after shrink: (%v, %v, %v)", tm, v, ok)
	}
}
