package workload_test

import (
	"math"
	"reflect"
	"strings"
	"testing"

	"lasmq/internal/job"
	"lasmq/internal/substrate"
	"lasmq/internal/workload"
)

func flatJobs() []substrate.JobSpec {
	return []substrate.JobSpec{
		{ID: 1, Arrival: 0, Size: 30, Width: 3, Priority: 2},
		{ID: 2, Arrival: 1.5, Size: 8, Width: 0.4, Priority: 5, SizeHint: 9},
		{ID: 3, Arrival: 2, Size: 200, Width: 64, Priority: 1},
	}
}

func drain(t *testing.T, src substrate.Stream[job.Spec]) []job.Spec {
	t.Helper()
	var out []job.Spec
	for {
		spec, ok, err := src.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			return out
		}
		// Deep-copy: the stream reuses its backings between Next calls.
		stages := make([]job.StageSpec, len(spec.Stages))
		for i, st := range spec.Stages {
			stages[i] = st
			stages[i].Tasks = append([]job.TaskSpec(nil), st.Tasks...)
		}
		spec.Stages = stages
		out = append(out, spec)
	}
}

// TestStageSourceShape pins the conversion contract: width-derived map
// counts capped at MaxMaps, a ReduceContainers-wide reduce tail, valid specs,
// and total container-time exactly equal to the flat size.
func TestStageSourceShape(t *testing.T) {
	src, err := workload.NewStageSource(substrate.SliceStream(flatJobs()), workload.DefaultStageConfig())
	if err != nil {
		t.Fatal(err)
	}
	specs := drain(t, src)
	if len(specs) != 3 {
		t.Fatalf("%d specs, want 3", len(specs))
	}
	wantMaps := []int{3, 1, 4} // floor(width) clamped to [1, MaxMaps=4]
	for i, spec := range specs {
		flat := flatJobs()[i]
		if err := spec.Validate(); err != nil {
			t.Fatalf("job %d: converted spec invalid: %v", flat.ID, err)
		}
		if spec.ID != flat.ID || spec.Arrival != flat.Arrival || spec.Priority != flat.Priority || spec.SizeHint != flat.SizeHint {
			t.Fatalf("job %d: identity fields not carried over: %+v", flat.ID, spec)
		}
		if len(spec.Stages) != 2 {
			t.Fatalf("job %d: %d stages, want 2", flat.ID, len(spec.Stages))
		}
		if got := len(spec.Stages[0].Tasks); got != wantMaps[i] {
			t.Fatalf("job %d: %d map tasks, want %d", flat.ID, got, wantMaps[i])
		}
		reduce := spec.Stages[1].Tasks
		if len(reduce) != 1 || reduce[0].Containers != workload.ReduceContainers {
			t.Fatalf("job %d: reduce stage = %+v", flat.ID, reduce)
		}
		var total float64
		for _, st := range spec.Stages {
			for _, task := range st.Tasks {
				total += task.Duration * float64(task.Containers)
			}
		}
		if math.Abs(total-flat.Size) > 1e-9 {
			t.Fatalf("job %d: total container-time %v, want size %v", flat.ID, total, flat.Size)
		}
	}
}

// TestStageSourceDeterministic pins that two passes over the same flat
// stream yield identical staged sequences (the conversion is RNG-free).
func TestStageSourceDeterministic(t *testing.T) {
	mk := func() []job.Spec {
		src, err := workload.NewStageSource(substrate.SliceStream(flatJobs()), workload.DefaultStageConfig())
		if err != nil {
			t.Fatal(err)
		}
		return drain(t, src)
	}
	if a, b := mk(), mk(); !reflect.DeepEqual(a, b) {
		t.Fatalf("two passes diverged:\n %+v\n %+v", a, b)
	}
}

// TestStageSourceMapOnly pins ReduceFraction=0: single-stage jobs, full
// service in the map stage.
func TestStageSourceMapOnly(t *testing.T) {
	src, err := workload.NewStageSource(substrate.SliceStream(flatJobs()), workload.StageConfig{MaxMaps: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, spec := range drain(t, src) {
		if len(spec.Stages) != 1 {
			t.Fatalf("job %d: %d stages, want 1 (map-only)", spec.ID, len(spec.Stages))
		}
	}
}

func TestStageSourceValidation(t *testing.T) {
	if _, err := workload.NewStageSource(nil, workload.DefaultStageConfig()); err == nil {
		t.Fatal("nil stream should fail")
	}
	if _, err := workload.NewStageSource(substrate.SliceStream(flatJobs()), workload.StageConfig{MaxMaps: 0}); err == nil || !strings.Contains(err.Error(), "max maps") {
		t.Fatalf("MaxMaps=0 should fail, got %v", err)
	}
	if _, err := workload.NewStageSource(substrate.SliceStream(flatJobs()), workload.StageConfig{MaxMaps: 1, ReduceFraction: 1}); err == nil || !strings.Contains(err.Error(), "reduce fraction") {
		t.Fatalf("ReduceFraction=1 should fail, got %v", err)
	}
	src, err := workload.NewStageSource(substrate.SliceStream([]substrate.JobSpec{{ID: 9, Size: 0, Width: 1}}), workload.DefaultStageConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := src.Next(); err == nil || !strings.Contains(err.Error(), "non-positive size") {
		t.Fatalf("zero-size flat job should surface an error, got %v", err)
	}
}
