package workload

import (
	"math"
	"testing"

	"lasmq/internal/job"
)

func TestTableIComposition(t *testing.T) {
	types := TableI()
	if len(types) != 8 {
		t.Fatalf("TableI has %d types, want 8", len(types))
	}
	totalJobs := 0
	for _, jt := range types {
		totalJobs += jt.Count
	}
	if totalJobs != 100 {
		t.Errorf("total jobs = %d, want 100", totalJobs)
	}
	// Spot-check Table I numbers.
	wc := types[7]
	if wc.Name != "WordCount" || wc.Maps != 721 || wc.Reduces != 80 || wc.Count != 10 || wc.Bin != 4 {
		t.Errorf("WordCount row = %+v, mismatch with Table I", wc)
	}
	tg := types[0]
	if tg.Name != "TeraGen" || tg.Maps != 100 || tg.Reduces != 10 || tg.Count != 3 || tg.Bin != 1 {
		t.Errorf("TeraGen row = %+v, mismatch with Table I", tg)
	}
}

func TestGenerateShape(t *testing.T) {
	specs, err := Generate(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 100 {
		t.Fatalf("generated %d jobs, want 100", len(specs))
	}
	if err := job.ValidateAll(specs); err != nil {
		t.Fatalf("generated invalid workload: %v", err)
	}
	byName := make(map[string]int)
	prevArrival := -1.0
	for _, s := range specs {
		byName[s.Name]++
		if s.Arrival < prevArrival {
			t.Errorf("arrivals not sorted: %v after %v", s.Arrival, prevArrival)
		}
		prevArrival = s.Arrival
		if s.Priority < 1 || s.Priority > 5 {
			t.Errorf("priority %d out of [1,5]", s.Priority)
		}
		if len(s.Stages) != 2 {
			t.Errorf("job %s has %d stages, want 2", s.Name, len(s.Stages))
		}
		for _, task := range s.Stages[1].Tasks {
			if task.Containers != ReduceContainers {
				t.Errorf("reduce task uses %d containers, want %d", task.Containers, ReduceContainers)
			}
		}
	}
	for _, jt := range TableI() {
		if byName[jt.Name] != jt.Count {
			t.Errorf("%s count = %d, want %d", jt.Name, byName[jt.Name], jt.Count)
		}
	}
}

func TestGenerateTaskCountsMatchTableI(t *testing.T) {
	specs, err := Generate(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	byName := make(map[string][2]int)
	for _, jt := range TableI() {
		byName[jt.Name] = [2]int{jt.Maps, jt.Reduces}
	}
	for _, s := range specs {
		want := byName[s.Name]
		if len(s.Stages[0].Tasks) != want[0] {
			t.Errorf("%s has %d maps, want %d", s.Name, len(s.Stages[0].Tasks), want[0])
		}
		if len(s.Stages[1].Tasks) != want[1] {
			t.Errorf("%s has %d reduces, want %d", s.Name, len(s.Stages[1].Tasks), want[1])
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Seed = 7
	a, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i].Arrival != b[i].Arrival || a[i].Name != b[i].Name ||
			a[i].TotalService() != b[i].TotalService() {
			t.Fatalf("job %d differs across identical seeds", i)
		}
	}
	cfg.Seed = 8
	c, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a {
		if a[i].Name != c[i].Name || a[i].Arrival != c[i].Arrival {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical workloads")
	}
}

func TestGenerateMeanArrivalInterval(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MeanInterval = 50
	var last float64
	const rounds = 40
	for seed := int64(0); seed < rounds; seed++ {
		cfg.Seed = seed
		specs, err := Generate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		last += specs[len(specs)-1].Arrival
	}
	mean := last / rounds / 100
	if math.Abs(mean-50) > 5 {
		t.Errorf("mean interval = %v, want ~50", mean)
	}
}

func TestSkewZeroGivesExactMeans(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DurationSigma = 0
	specs, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	means := make(map[string][2]float64)
	for _, jt := range TableI() {
		means[jt.Name] = [2]float64{jt.MapMean, jt.ReduceMean}
	}
	for _, s := range specs {
		want := means[s.Name]
		if s.Stages[0].Tasks[0].Duration != want[0] {
			t.Errorf("%s map duration = %v, want %v", s.Name, s.Stages[0].Tasks[0].Duration, want[0])
		}
		if s.Stages[1].Tasks[0].Duration != want[1] {
			t.Errorf("%s reduce duration = %v, want %v", s.Name, s.Stages[1].Tasks[0].Duration, want[1])
		}
	}
}

func TestSizeHintPerturbation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SizeErrorFactor = 10
	specs, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	perturbed := 0
	for _, s := range specs {
		if s.SizeHint <= 0 {
			t.Fatalf("job %d has no size hint despite error factor", s.ID)
		}
		ratio := s.SizeHint / s.TotalService()
		if ratio < 0.1-1e-9 || ratio > 10+1e-9 {
			t.Errorf("hint ratio %v outside [0.1, 10]", ratio)
		}
		if math.Abs(ratio-1) > 0.01 {
			perturbed++
		}
	}
	if perturbed < 50 {
		t.Errorf("only %d/100 hints perturbed; expected most", perturbed)
	}

	cfg.SizeErrorFactor = 0
	specs, err = Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range specs {
		if s.SizeHint != 0 {
			t.Errorf("hint %v set despite factor 0 (want exact default)", s.SizeHint)
		}
	}
}

func TestLoadCalibration(t *testing.T) {
	// Both paper regimes are deeply congested (FIFO bins flat at thousands
	// of seconds: response dominated by the admission queue); the 50 s
	// interval must offer strictly more load than the 80 s one.
	l80 := Load(TableI(), 80, 120)
	if l80 < 1.5 || l80 > 2.8 {
		t.Errorf("load at 80 s = %v, want within [1.5, 2.8]", l80)
	}
	l50 := Load(TableI(), 50, 120)
	if l50 <= l80 {
		t.Errorf("load at 50 s = %v, want above the 80 s load %v", l50, l80)
	}
	if Load(nil, 80, 120) != 0 {
		t.Error("empty mix load should be 0")
	}
}

func TestGenerateValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MeanInterval = 0
	if _, err := Generate(cfg); err == nil {
		t.Error("expected error for zero interval")
	}
	cfg = DefaultConfig()
	cfg.DurationSigma = -1
	if _, err := Generate(cfg); err == nil {
		t.Error("expected error for negative sigma")
	}
	bad := []JobType{{Name: "x", Maps: 0, Count: 1, MapMean: 1}}
	if _, err := GenerateMix(bad, DefaultConfig()); err == nil {
		t.Error("expected error for zero maps")
	}
	bad = []JobType{{Name: "x", Maps: 1, Reduces: 1, Count: 1, MapMean: 1, ReduceMean: 0}}
	if _, err := GenerateMix(bad, DefaultConfig()); err == nil {
		t.Error("expected error for zero reduce mean")
	}
}
