// Package workload generates the paper's testbed workload (Table I): 100
// Hadoop jobs drawn from eight PUMA benchmark types across four input-size
// bins, arriving as a Poisson process. The map/reduce task counts and the
// per-type job counts are taken verbatim from Table I; per-task durations are
// a calibrated substitute for the PUMA datasets on the authors' hardware
// (documented in DESIGN.md), with lognormal skew per the paper's motivation
// that data skew is common in each stage.
package workload

import (
	"fmt"
	"math"
	"math/rand"

	"lasmq/internal/dist"
	"lasmq/internal/job"
)

// JobType describes one benchmark from Table I.
type JobType struct {
	Name        string
	Bin         int
	DatasetSize string  // as reported in Table I
	Maps        int     // number of map tasks
	Reduces     int     // number of reduce tasks
	Count       int     // jobs of this type in the 100-job mix
	MapMean     float64 // mean map task duration (seconds, calibrated)
	ReduceMean  float64 // mean reduce task duration (seconds, calibrated)
}

// TableI is the paper's workload composition. Task counts and job counts are
// verbatim; the duration means are calibrated so the testbed operates in the
// deeply congested regime the paper's measurements imply (FIFO response
// times flat at thousands of seconds across all bins because every job
// "waits for the completion of the 29 jobs before it"), with bin 4
// dominating total work the way 100 GB WordCount runs dominate 1 GB jobs.
func TableI() []JobType {
	return []JobType{
		{Name: "TeraGen", Bin: 1, DatasetSize: "1 GB", Maps: 100, Reduces: 10, Count: 3, MapMean: 12, ReduceMean: 15},
		{Name: "SelfJoin", Bin: 1, DatasetSize: "1 GB", Maps: 102, Reduces: 10, Count: 15, MapMean: 12, ReduceMean: 20},
		{Name: "Classification", Bin: 2, DatasetSize: "10 GB", Maps: 102, Reduces: 20, Count: 17, MapMean: 25, ReduceMean: 25},
		{Name: "HistogramMovies", Bin: 2, DatasetSize: "10 GB", Maps: 102, Reduces: 20, Count: 12, MapMean: 25, ReduceMean: 25},
		{Name: "HistogramRatings", Bin: 2, DatasetSize: "10 GB", Maps: 102, Reduces: 20, Count: 8, MapMean: 25, ReduceMean: 25},
		{Name: "SequenceCount", Bin: 3, DatasetSize: "30 GB", Maps: 234, Reduces: 60, Count: 16, MapMean: 38, ReduceMean: 45},
		{Name: "InvertedIndex", Bin: 3, DatasetSize: "30 GB", Maps: 234, Reduces: 60, Count: 19, MapMean: 35, ReduceMean: 40},
		{Name: "WordCount", Bin: 4, DatasetSize: "100 GB", Maps: 721, Reduces: 80, Count: 10, MapMean: 150, ReduceMean: 200},
	}
}

// ReduceContainers is the number of containers a reduce task occupies: the
// paper's implementation allocates two 2 GB containers per 4 GB reduce task.
const ReduceContainers = 2

// Config controls workload generation.
type Config struct {
	// MeanInterval is the mean Poisson inter-arrival time in seconds (the
	// paper evaluates 80 and 50).
	MeanInterval float64
	// DurationSigma is the lognormal shape of per-task duration skew
	// (0 disables skew). Default via DefaultConfig: 0.4.
	DurationSigma float64
	// SizeErrorFactor perturbs each job's SizeHint for the SJF/SRTF
	// motivation experiments: the hint becomes size * factor^u with u drawn
	// uniformly from [-1, 1]. Values <= 1 leave hints exact.
	SizeErrorFactor float64
	// Seed drives all randomness (arrivals, type order, priorities, skew).
	Seed int64
}

// DefaultConfig returns the Fig. 5 configuration (80-second mean interval).
func DefaultConfig() Config {
	return Config{MeanInterval: 80, DurationSigma: 0.4}
}

// Generate builds the 100-job Table I workload: the per-type jobs are
// shuffled into a random submission order, arrivals follow a Poisson process,
// and priorities are uniform in [1,5] (used only by the Fair baseline).
func Generate(cfg Config) ([]job.Spec, error) {
	return GenerateMix(TableI(), cfg)
}

// GenerateMix is Generate for a custom job mix.
func GenerateMix(types []JobType, cfg Config) ([]job.Spec, error) {
	if cfg.MeanInterval <= 0 {
		return nil, fmt.Errorf("workload: mean interval must be positive, got %v", cfg.MeanInterval)
	}
	if cfg.DurationSigma < 0 {
		return nil, fmt.Errorf("workload: duration sigma must be >= 0, got %v", cfg.DurationSigma)
	}
	for _, jt := range types {
		if jt.Maps <= 0 || jt.Reduces < 0 || jt.Count < 0 {
			return nil, fmt.Errorf("workload: invalid type %q", jt.Name)
		}
		if jt.MapMean <= 0 || (jt.Reduces > 0 && jt.ReduceMean <= 0) {
			return nil, fmt.Errorf("workload: type %q has non-positive task means", jt.Name)
		}
	}

	r := dist.New(cfg.Seed)
	// Expand the mix and shuffle the submission order.
	var order []int // index into types
	for ti, jt := range types {
		for c := 0; c < jt.Count; c++ {
			order = append(order, ti)
		}
	}
	r.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })

	arrivals, err := dist.NewPoissonProcess(r, cfg.MeanInterval)
	if err != nil {
		return nil, err
	}

	specs := make([]job.Spec, 0, len(order))
	for i, ti := range order {
		jt := types[ti]
		spec := job.Spec{
			ID:       i + 1,
			Name:     jt.Name,
			Bin:      jt.Bin,
			Priority: dist.IntBetween(r, 1, 5),
			Arrival:  arrivals.Next(),
		}
		maps := make([]job.TaskSpec, jt.Maps)
		for m := range maps {
			maps[m] = job.TaskSpec{Duration: taskDuration(r, jt.MapMean, cfg.DurationSigma), Containers: 1}
		}
		spec.Stages = append(spec.Stages, job.StageSpec{Name: "map", Tasks: maps})
		if jt.Reduces > 0 {
			reduces := make([]job.TaskSpec, jt.Reduces)
			for m := range reduces {
				reduces[m] = job.TaskSpec{
					Duration:   taskDuration(r, jt.ReduceMean, cfg.DurationSigma),
					Containers: ReduceContainers,
				}
			}
			spec.Stages = append(spec.Stages, job.StageSpec{Name: "reduce", Tasks: reduces})
		}
		if cfg.SizeErrorFactor > 1 {
			u := 2*r.Float64() - 1
			spec.SizeHint = spec.TotalService() * math.Pow(cfg.SizeErrorFactor, u)
		}
		specs = append(specs, spec)
	}
	return specs, nil
}

// taskDuration draws a skewed task duration with the given mean: lognormal
// with shape sigma, or exactly the mean when sigma is zero.
func taskDuration(r *rand.Rand, mean, sigma float64) float64 {
	if sigma == 0 {
		return mean
	}
	return dist.LognormalMean(r, mean, sigma)
}

// TotalService returns the expected total service of the mix in
// container-seconds (using duration means), useful for load calculations.
func TotalService(types []JobType) float64 {
	var total float64
	for _, jt := range types {
		perJob := float64(jt.Maps)*jt.MapMean + float64(jt.Reduces)*jt.ReduceMean*ReduceContainers
		total += perJob * float64(jt.Count)
	}
	return total
}

// Load estimates the offered load of the mix: expected service arrival rate
// divided by cluster capacity.
func Load(types []JobType, meanInterval float64, containers int) float64 {
	jobs := 0
	for _, jt := range types {
		jobs += jt.Count
	}
	if jobs == 0 || meanInterval <= 0 || containers <= 0 {
		return 0
	}
	meanService := TotalService(types) / float64(jobs)
	return meanService / (meanInterval * float64(containers))
}
