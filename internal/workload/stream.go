// Streaming flat-trace adapter: converts the streaming kernel's flat
// JobSpecs (the trace substrate's output — total size, width, arrival) into
// the engine's structured map→reduce job.Specs on the fly, so the task-level
// engine can consume the same million-job trace streams the fluid simulator
// does without materializing a workload. The conversion is deterministic and
// RNG-free — a pure function of each flat spec — so two passes over the same
// trace stream yield identical staged sequences, the property the sharded
// engine's Shards/Workers contracts rest on.
package workload

import (
	"errors"
	"fmt"
	"math"

	"lasmq/internal/job"
	"lasmq/internal/substrate"
)

// StageConfig controls the flat→staged conversion.
type StageConfig struct {
	// MaxMaps caps the map-stage task count; a flat job of width w becomes
	// min(max(1, floor(w)), MaxMaps) map tasks so huge trace widths don't
	// explode per-job task state in million-job runs.
	MaxMaps int
	// ReduceFraction is the fraction of a job's total service spent in the
	// reduce stage (the remainder is split evenly across map tasks). Zero
	// yields single-stage map-only jobs.
	ReduceFraction float64
}

// DefaultStageConfig mirrors the Table I shape at trace scale: up to 4-wide
// map stages and a 20% reduce tail on ReduceContainers containers.
func DefaultStageConfig() StageConfig {
	return StageConfig{MaxMaps: 4, ReduceFraction: 0.2}
}

func (c StageConfig) validate() error {
	if c.MaxMaps < 1 {
		return fmt.Errorf("workload: stage source max maps must be >= 1, got %d", c.MaxMaps)
	}
	if c.ReduceFraction < 0 || c.ReduceFraction >= 1 {
		return fmt.Errorf("workload: stage source reduce fraction must be in [0,1), got %v", c.ReduceFraction)
	}
	return nil
}

// NewStageSource adapts a flat trace stream to a structured engine source:
// each flat job of total size S and width w becomes a map stage of
// m = min(max(1, floor(w)), cfg.MaxMaps) single-container tasks of duration
// S*(1-ReduceFraction)/m each, followed (when ReduceFraction > 0) by one
// reduce task of S*ReduceFraction/ReduceContainers seconds on
// ReduceContainers containers, so the job's total container-time is exactly
// S and its attained-service trajectory is comparable across substrates.
// The returned stream reuses its spec backings between Next calls — legal
// against engine.RunStream, which deep-copies specs into pooled records.
func NewStageSource(src substrate.Stream[substrate.JobSpec], cfg StageConfig) (substrate.Stream[job.Spec], error) {
	if src == nil {
		return nil, errors.New("workload: nil stage source stream")
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	s := &stageSource{src: src, cfg: cfg}
	s.tasks = make([]job.TaskSpec, 0, cfg.MaxMaps)
	return s, nil
}

type stageSource struct {
	src substrate.Stream[substrate.JobSpec]
	cfg StageConfig

	// Reused spec backings (engine.RunStream deep-copies on Pop).
	stages [2]job.StageSpec
	tasks  []job.TaskSpec
	reduce [1]job.TaskSpec
}

func (s *stageSource) Next() (job.Spec, bool, error) {
	flat, ok, err := s.src.Next()
	if !ok || err != nil {
		return job.Spec{}, false, err
	}
	if flat.Size <= 0 {
		return job.Spec{}, false, fmt.Errorf("workload: stage source: job %d has non-positive size %v", flat.ID, flat.Size)
	}

	maps := int(math.Floor(flat.Width))
	if maps < 1 {
		maps = 1
	}
	if maps > s.cfg.MaxMaps {
		maps = s.cfg.MaxMaps
	}
	mapService := flat.Size * (1 - s.cfg.ReduceFraction)
	s.tasks = s.tasks[:maps]
	per := mapService / float64(maps)
	for i := range s.tasks {
		s.tasks[i] = job.TaskSpec{Duration: per, Containers: 1}
	}
	s.stages[0] = job.StageSpec{Name: "map", Tasks: s.tasks}

	spec := job.Spec{
		ID:       flat.ID,
		Arrival:  flat.Arrival,
		Priority: flat.Priority,
		SizeHint: flat.SizeHint,
		Stages:   s.stages[:1],
	}
	if s.cfg.ReduceFraction > 0 {
		s.reduce[0] = job.TaskSpec{
			Duration:   flat.Size * s.cfg.ReduceFraction / ReduceContainers,
			Containers: ReduceContainers,
		}
		s.stages[1] = job.StageSpec{Name: "reduce", Tasks: s.reduce[:]}
		spec.Stages = s.stages[:2]
	}
	return spec, true, nil
}
