package workload

import (
	"fmt"

	"lasmq/internal/dist"
	"lasmq/internal/fluid"
	"lasmq/internal/job"
)

// MM1Config parameterizes the analytic cross-check workload: an M/M/1 queue
// — Poisson arrivals, exponential sizes, a unit-capacity cluster, width-1
// jobs — the one setting where FIFO/PS/SRPT/LAS mean response times have
// known closed forms (internal/analytic). Both substrates can run it:
// MM1Trace emits fluid specs and MM1Cluster converts them into single-task
// engine jobs, so the same draws drive both simulators.
type MM1Config struct {
	// Jobs is the number of arrivals to simulate.
	Jobs int
	// Rho is the offered load lambda*E[S] in (0,1).
	Rho float64
	// MeanSize is the exponential service mean E[S] = 1/mu.
	MeanSize float64
	// Seed drives arrivals and sizes.
	Seed int64
}

func (c *MM1Config) validate() error {
	if c.Jobs <= 0 {
		return fmt.Errorf("workload: mm1 jobs must be positive, got %d", c.Jobs)
	}
	if c.Rho <= 0 || c.Rho >= 1 {
		return fmt.Errorf("workload: mm1 rho must be in (0,1), got %v", c.Rho)
	}
	if c.MeanSize <= 0 {
		return fmt.Errorf("workload: mm1 mean size must be positive, got %v", c.MeanSize)
	}
	return nil
}

// MM1Trace generates the M/M/1 workload as fluid job specs: width-1 jobs for
// a capacity-1 cluster, so the fluid simulator realizes the single-server
// queue exactly (a width-1 job can never use more than the whole server).
func MM1Trace(cfg MM1Config) ([]fluid.JobSpec, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	r := dist.New(cfg.Seed)
	// Mean inter-arrival for load rho on a unit-capacity server: E[S]/rho.
	arrivals, err := dist.NewPoissonProcess(r, cfg.MeanSize/cfg.Rho)
	if err != nil {
		return nil, err
	}
	specs := make([]fluid.JobSpec, cfg.Jobs)
	for i := range specs {
		specs[i] = fluid.JobSpec{
			ID:       i + 1,
			Arrival:  arrivals.Next(),
			Size:     dist.Exponential(r, cfg.MeanSize),
			Width:    1,
			Priority: 1,
		}
	}
	return specs, nil
}

// MM1Cluster converts an M/M/1 fluid trace into task-level engine jobs: one
// stage with one task whose duration is the job size, occupying one
// container — run it on a one-container engine for the same queue. Only the
// non-preemptive policies (FIFO) match their closed form there: the engine
// never revokes a launched task, so preemptive disciplines degrade to FCFS
// at the single-server scale.
func MM1Cluster(specs []fluid.JobSpec) []job.Spec {
	out := make([]job.Spec, len(specs))
	for i := range specs {
		s := &specs[i]
		out[i] = job.Spec{
			ID:       s.ID,
			Name:     "mm1",
			Priority: s.Priority,
			Arrival:  s.Arrival,
			Stages: []job.StageSpec{{
				Name:  "service",
				Tasks: []job.TaskSpec{{Duration: s.Size, Containers: 1}},
			}},
		}
	}
	return out
}
