// Package mapreduce is a minimal MapReduce framework executing on the
// mini-YARN cluster — the "big data processing system" of the paper's title,
// made concrete. Map tasks run a user Mapper over input splits and partition
// their emissions by key hash across reducers; the shuffle barrier falls out
// of the cluster's stage-dependency handling (reduce tasks only start once
// the map stage completes, exactly the constraint the paper's Sec. III-D
// models); reduce tasks fold each key's values with a user Reducer.
//
// The point of running real computation is that the scheduler under test
// (LAS_MQ or any baseline) sees genuine Hadoop-shaped jobs: per-task
// durations the framework can only estimate, stage progress it can observe,
// and container demand from real remaining tasks.
package mapreduce

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
	"time"

	"lasmq/internal/job"
	"lasmq/internal/sched"
	"lasmq/internal/yarn"
)

// Mapper processes one input split, emitting key/value pairs.
type Mapper func(split string, emit func(key, value string))

// Reducer folds all values observed for one key into a single output value.
type Reducer func(key string, values []string) string

// Job is one MapReduce job.
type Job struct {
	// ID uniquely identifies the job within a Run call.
	ID int
	// Name labels the job in reports.
	Name string
	// Priority in [1,5] (used by the Fair baseline).
	Priority int
	// Splits are the input splits; each becomes one map task.
	Splits []string
	// Reducers is the number of reduce tasks (each takes 2 containers, as
	// in the paper's implementation).
	Reducers int
	// Map and Reduce are the job's functions. They may run concurrently
	// across tasks and must not share mutable state.
	Map    Mapper
	Reduce Reducer
	// MapSeconds and ReduceSeconds are per-task duration estimates handed to
	// the scheduler (spec seconds); zero defaults to 10.
	MapSeconds    float64
	ReduceSeconds float64
}

func (j *Job) validate() error {
	if len(j.Splits) == 0 {
		return fmt.Errorf("mapreduce: job %d has no input splits", j.ID)
	}
	if j.Reducers <= 0 {
		return fmt.Errorf("mapreduce: job %d needs at least one reducer", j.ID)
	}
	if j.Map == nil || j.Reduce == nil {
		return fmt.Errorf("mapreduce: job %d is missing its map or reduce function", j.ID)
	}
	if j.MapSeconds < 0 || j.ReduceSeconds < 0 {
		return fmt.Errorf("mapreduce: job %d has negative duration estimates", j.ID)
	}
	return nil
}

// Output is a job's final key -> reduced value mapping.
type Output map[string]string

// Result reports a Run: per-job outputs plus the cluster's job reports
// (response times in spec seconds).
type Result struct {
	Outputs map[int]Output
	Reports []yarn.JobReport
}

// Run executes the jobs concurrently on a dedicated mini-YARN cluster built
// from cfg and policy, waits for all of them, and returns their outputs.
func Run(cfg yarn.Config, policy sched.Scheduler, jobs []Job) (*Result, error) {
	return RunWithContext(context.Background(), cfg, policy, jobs)
}

// RunWithContext is Run with a cancellation/deadline context.
func RunWithContext(ctx context.Context, cfg yarn.Config, policy sched.Scheduler, jobs []Job) (*Result, error) {
	if len(jobs) == 0 {
		return nil, errors.New("mapreduce: no jobs")
	}
	seen := make(map[int]bool, len(jobs))
	for i := range jobs {
		if err := jobs[i].validate(); err != nil {
			return nil, err
		}
		if seen[jobs[i].ID] {
			return nil, fmt.Errorf("mapreduce: duplicate job ID %d", jobs[i].ID)
		}
		seen[jobs[i].ID] = true
	}

	cluster, err := yarn.New(cfg, policy)
	if err != nil {
		return nil, err
	}
	cluster.Start()
	defer cluster.Shutdown()

	execs := make(map[int]*execution, len(jobs))
	for i := range jobs {
		exec := newExecution(&jobs[i])
		execs[jobs[i].ID] = exec
		if err := cluster.SubmitWithWork(exec.spec(), exec.runTask); err != nil {
			return nil, err
		}
	}
	reports, err := cluster.Drain(ctx)
	if err != nil {
		return nil, err
	}

	res := &Result{Outputs: make(map[int]Output, len(jobs)), Reports: reports}
	for id, exec := range execs {
		res.Outputs[id] = exec.output()
	}
	return res, nil
}

// execution holds one job's intermediate and final state across its
// concurrently running tasks.
type execution struct {
	job *Job

	// buckets[r] collects the key/value pairs destined for reducer r.
	mu      []sync.Mutex
	buckets [][]kv

	outMu sync.Mutex
	out   Output
}

type kv struct{ key, value string }

func newExecution(j *Job) *execution {
	return &execution{
		job:     j,
		mu:      make([]sync.Mutex, j.Reducers),
		buckets: make([][]kv, j.Reducers),
		out:     make(Output),
	}
}

// spec translates the MapReduce job into a cluster job: one 1-container task
// per split, then Reducers 2-container tasks.
func (e *execution) spec() job.Spec {
	mapSec := e.job.MapSeconds
	if mapSec == 0 {
		mapSec = 10
	}
	redSec := e.job.ReduceSeconds
	if redSec == 0 {
		redSec = 10
	}
	maps := make([]job.TaskSpec, len(e.job.Splits))
	for i := range maps {
		maps[i] = job.TaskSpec{Duration: mapSec, Containers: 1}
	}
	reduces := make([]job.TaskSpec, e.job.Reducers)
	for i := range reduces {
		reduces[i] = job.TaskSpec{Duration: redSec, Containers: 2}
	}
	return job.Spec{
		ID:       e.job.ID,
		Name:     e.job.Name,
		Priority: e.job.Priority,
		Stages: []job.StageSpec{
			{Name: "map", Tasks: maps},
			{Name: "reduce", Tasks: reduces},
		},
	}
}

// runTask executes one task attempt (called from NodeManager goroutines).
func (e *execution) runTask(stage, task int) {
	switch stage {
	case 0:
		e.runMap(task)
	case 1:
		e.runReduce(task)
	}
}

func (e *execution) runMap(task int) {
	split := e.job.Splits[task]
	e.job.Map(split, func(key, value string) {
		r := int(hashKey(key) % uint32(e.job.Reducers))
		e.mu[r].Lock()
		e.buckets[r] = append(e.buckets[r], kv{key: key, value: value})
		e.mu[r].Unlock()
	})
}

func (e *execution) runReduce(task int) {
	// The map stage has completed (cluster stage dependency), so the bucket
	// is complete; the lock still guards against memory-model surprises.
	e.mu[task].Lock()
	bucket := e.buckets[task]
	e.mu[task].Unlock()

	grouped := make(map[string][]string)
	for _, pair := range bucket {
		grouped[pair.key] = append(grouped[pair.key], pair.value)
	}
	keys := make([]string, 0, len(grouped))
	for k := range grouped {
		keys = append(keys, k)
	}
	sort.Strings(keys) // deterministic reduce order
	for _, k := range keys {
		v := e.job.Reduce(k, grouped[k])
		e.outMu.Lock()
		e.out[k] = v
		e.outMu.Unlock()
	}
}

func (e *execution) output() Output {
	e.outMu.Lock()
	defer e.outMu.Unlock()
	out := make(Output, len(e.out))
	for k, v := range e.out {
		out[k] = v
	}
	return out
}

func hashKey(key string) uint32 {
	h := fnv.New32a()
	h.Write([]byte(key))
	return h.Sum32()
}

// DefaultClusterConfig returns a cluster configuration suitable for running
// real MapReduce work: task durations come from the work itself, so the time
// scale only affects heartbeat pacing.
func DefaultClusterConfig() yarn.Config {
	cfg := yarn.DefaultConfig()
	cfg.TimeScale = 100 * time.Microsecond
	cfg.HeartbeatInterval = time.Millisecond
	return cfg
}
