package mapreduce

import (
	"context"
	"strconv"
	"strings"
	"testing"
	"time"

	"lasmq/internal/core"
	"lasmq/internal/sched"
)

func wordCountJob(id int, splits []string, reducers int) Job {
	return Job{
		ID: id, Name: "wordcount", Priority: 1,
		Splits: splits, Reducers: reducers,
		Map: WordCountMap, Reduce: WordCountReduce,
		MapSeconds: 5, ReduceSeconds: 5,
	}
}

// directWordCount computes the expected counts without the framework.
func directWordCount(splits []string) map[string]int {
	counts := make(map[string]int)
	for _, s := range splits {
		for _, w := range strings.Fields(s) {
			counts[w]++
		}
	}
	return counts
}

func TestWordCountCorrect(t *testing.T) {
	splits := SynthesizeText(12, 200, 50, 1)
	want := directWordCount(splits)

	mq, err := core.New(core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(DefaultClusterConfig(), mq, []Job{wordCountJob(1, splits, 4)})
	if err != nil {
		t.Fatal(err)
	}
	out := res.Outputs[1]
	if len(out) != len(want) {
		t.Fatalf("output has %d words, want %d", len(out), len(want))
	}
	for word, count := range want {
		got, err := strconv.Atoi(out[word])
		if err != nil || got != count {
			t.Errorf("count[%s] = %q, want %d", word, out[word], count)
		}
	}
}

func TestWordCountSameOutputAcrossSchedulers(t *testing.T) {
	splits := SynthesizeText(8, 100, 30, 2)
	var outputs []Output
	for _, mk := range []func() sched.Scheduler{
		func() sched.Scheduler { return sched.NewFIFO() },
		func() sched.Scheduler { return sched.NewFair() },
		func() sched.Scheduler {
			s, _ := core.New(core.DefaultConfig())
			return s
		},
	} {
		res, err := Run(DefaultClusterConfig(), mk(), []Job{wordCountJob(1, splits, 3)})
		if err != nil {
			t.Fatal(err)
		}
		outputs = append(outputs, res.Outputs[1])
	}
	for i := 1; i < len(outputs); i++ {
		if len(outputs[i]) != len(outputs[0]) {
			t.Fatalf("scheduler %d produced %d words, scheduler 0 produced %d",
				i, len(outputs[i]), len(outputs[0]))
		}
		for k, v := range outputs[0] {
			if outputs[i][k] != v {
				t.Errorf("scheduler %d: count[%s] = %q, want %q", i, k, outputs[i][k], v)
			}
		}
	}
}

func TestInvertedIndex(t *testing.T) {
	splits := []string{
		"doc1\tthe quick fox",
		"doc2\tthe lazy dog",
		"doc3\tquick quick dog",
	}
	idx := Job{
		ID: 1, Name: "invertedindex", Priority: 1,
		Splits: splits, Reducers: 2,
		Map: InvertedIndexMap, Reduce: InvertedIndexReduce,
	}
	res, err := Run(DefaultClusterConfig(), sched.NewFIFO(), []Job{idx})
	if err != nil {
		t.Fatal(err)
	}
	out := res.Outputs[1]
	wants := map[string]string{
		"the":   "doc1,doc2",
		"quick": "doc1,doc3",
		"dog":   "doc2,doc3",
		"fox":   "doc1",
		"lazy":  "doc2",
	}
	for word, want := range wants {
		if out[word] != want {
			t.Errorf("index[%s] = %q, want %q", word, out[word], want)
		}
	}
}

func TestGrep(t *testing.T) {
	splits := []string{
		"alpha beta\ngamma ERROR one",
		"delta\nERROR two\nepsilon",
		"nothing here",
	}
	grep := Job{
		ID: 1, Name: "grep", Priority: 1,
		Splits: splits, Reducers: 1,
		Map: GrepMap("ERROR"), Reduce: CountReduce,
	}
	res, err := Run(DefaultClusterConfig(), sched.NewFair(), []Job{grep})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Outputs[1]["ERROR"]; got != "2" {
		t.Errorf("grep count = %q, want 2", got)
	}
}

func TestMultipleJobsConcurrently(t *testing.T) {
	big := wordCountJob(1, SynthesizeText(24, 400, 60, 3), 4)
	small := wordCountJob(2, SynthesizeText(2, 50, 20, 4), 2)
	grep := Job{
		ID: 3, Name: "grep", Priority: 1,
		Splits: []string{"x ERROR y", "z"}, Reducers: 1,
		Map: GrepMap("ERROR"), Reduce: CountReduce,
	}
	mq, err := core.New(core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(DefaultClusterConfig(), mq, []Job{big, small, grep})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Reports) != 3 {
		t.Fatalf("got %d reports, want 3", len(res.Reports))
	}
	for id, splits := range map[int][]string{1: big.Splits, 2: small.Splits} {
		want := directWordCount(splits)
		out := res.Outputs[id]
		if len(out) != len(want) {
			t.Errorf("job %d: %d words, want %d", id, len(out), len(want))
		}
	}
	if res.Outputs[3]["ERROR"] != "1" {
		t.Errorf("grep output = %v", res.Outputs[3])
	}
}

func TestRunValidation(t *testing.T) {
	good := wordCountJob(1, []string{"a b"}, 1)
	tests := []struct {
		name   string
		mutate func(*Job)
	}{
		{name: "no splits", mutate: func(j *Job) { j.Splits = nil }},
		{name: "no reducers", mutate: func(j *Job) { j.Reducers = 0 }},
		{name: "nil map", mutate: func(j *Job) { j.Map = nil }},
		{name: "nil reduce", mutate: func(j *Job) { j.Reduce = nil }},
		{name: "negative estimate", mutate: func(j *Job) { j.MapSeconds = -1 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			j := good
			tt.mutate(&j)
			if _, err := Run(DefaultClusterConfig(), sched.NewFIFO(), []Job{j}); err == nil {
				t.Error("expected validation error")
			}
		})
	}
	if _, err := Run(DefaultClusterConfig(), sched.NewFIFO(), nil); err == nil {
		t.Error("expected error for no jobs")
	}
	if _, err := Run(DefaultClusterConfig(), sched.NewFIFO(), []Job{good, good}); err == nil {
		t.Error("expected error for duplicate IDs")
	}
}

func TestRunContextCancel(t *testing.T) {
	slow := Job{
		ID: 1, Name: "slow", Priority: 1,
		Splits: []string{"x"}, Reducers: 1,
		Map: func(split string, emit func(k, v string)) {
			time.Sleep(200 * time.Millisecond)
			emit("k", "v")
		},
		Reduce: CountReduce,
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := RunWithContext(ctx, DefaultClusterConfig(), sched.NewFIFO(), []Job{slow}); err == nil {
		t.Error("expected context deadline error")
	}
}

func TestSynthesizeTextDeterministic(t *testing.T) {
	a := SynthesizeText(4, 50, 20, 7)
	b := SynthesizeText(4, 50, 20, 7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("split %d differs across identical seeds", i)
		}
	}
	c := SynthesizeText(4, 50, 20, 8)
	if a[0] == c[0] {
		t.Error("different seeds produced identical text")
	}
	words := strings.Fields(a[0])
	if len(words) != 50 {
		t.Errorf("split has %d words, want 50", len(words))
	}
}

func TestWordCountReduceSkipsGarbage(t *testing.T) {
	if got := WordCountReduce("w", []string{"1", "x", "2"}); got != "3" {
		t.Errorf("reduce = %q, want 3", got)
	}
}

func TestInvertedIndexMapNoTab(t *testing.T) {
	var pairs []kv
	InvertedIndexMap("no tab here", func(k, v string) {
		pairs = append(pairs, kv{k, v})
	})
	for _, p := range pairs {
		if p.value != "?" {
			t.Errorf("pair %v: want placeholder doc id", p)
		}
	}
	if len(pairs) != 3 {
		t.Errorf("got %d pairs, want 3 distinct words", len(pairs))
	}
}
