package mapreduce

import (
	"math/rand"
	"sort"
	"strconv"
	"strings"

	"lasmq/internal/dist"
)

// Built-in job functions mirroring the paper's Table I benchmarks.

// WordCountMap emits (word, "1") for every word in the split.
func WordCountMap(split string, emit func(key, value string)) {
	for _, word := range strings.Fields(split) {
		emit(word, "1")
	}
}

// WordCountReduce sums the counts of one word.
func WordCountReduce(key string, values []string) string {
	total := 0
	for _, v := range values {
		n, err := strconv.Atoi(v)
		if err != nil {
			continue // counts are framework-generated; skip anything else
		}
		total += n
	}
	return strconv.Itoa(total)
}

// InvertedIndexMap emits (word, splitID) pairs; splits are expected to be
// prefixed with "<id>\t".
func InvertedIndexMap(split string, emit func(key, value string)) {
	id, body, found := strings.Cut(split, "\t")
	if !found {
		body = split
		id = "?"
	}
	seen := make(map[string]bool)
	for _, word := range strings.Fields(body) {
		if !seen[word] {
			seen[word] = true
			emit(word, id)
		}
	}
}

// InvertedIndexReduce joins the sorted distinct document IDs of one word.
func InvertedIndexReduce(key string, values []string) string {
	seen := make(map[string]bool, len(values))
	var ids []string
	for _, v := range values {
		if !seen[v] {
			seen[v] = true
			ids = append(ids, v)
		}
	}
	sort.Strings(ids)
	return strings.Join(ids, ",")
}

// GrepMap emits (pattern, line) for lines containing the pattern.
func GrepMap(pattern string) Mapper {
	return func(split string, emit func(key, value string)) {
		for _, line := range strings.Split(split, "\n") {
			if strings.Contains(line, pattern) {
				emit(pattern, line)
			}
		}
	}
}

// CountReduce reports how many values a key received.
func CountReduce(key string, values []string) string {
	return strconv.Itoa(len(values))
}

// SynthesizeText builds deterministic pseudo-text splits for tests and
// examples: nSplits splits of wordsPerSplit words drawn Zipf-ishly from a
// vocabulary.
func SynthesizeText(nSplits, wordsPerSplit, vocabulary int, seed int64) []string {
	r := dist.New(seed)
	vocab := make([]string, vocabulary)
	for i := range vocab {
		vocab[i] = "w" + strconv.Itoa(i)
	}
	splits := make([]string, nSplits)
	var b strings.Builder
	for s := range splits {
		b.Reset()
		for w := 0; w < wordsPerSplit; w++ {
			if w > 0 {
				b.WriteByte(' ')
			}
			b.WriteString(vocab[zipfIndex(r, vocabulary)])
		}
		splits[s] = b.String()
	}
	return splits
}

// zipfIndex draws a vocabulary index with a Zipf-like skew (common words
// dominate, as in real text).
func zipfIndex(r *rand.Rand, n int) int {
	// Squaring a uniform variate biases toward low indices with the right
	// general shape and no state.
	u := r.Float64()
	idx := int(u * u * float64(n))
	if idx >= n {
		idx = n - 1
	}
	return idx
}
