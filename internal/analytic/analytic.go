// Package analytic provides closed-form and numeric queueing-theory response
// times used to cross-check the simulators against theory. The closed forms
// are the classical M/M/1 results; the numeric evaluator computes M/G/1 mean
// response times for FCFS (Pollaczek–Khinchine), PS, SRPT (Schrage–Miller)
// and LAS/FB (Coffman–Muntz / Kleinrock) from a dist.Service tail by grid
// integration. The crosscheck test family (and the `make crosscheck` gate)
// drives the fluid and engine substrates with matching M/M/1 workloads and
// asserts the simulated means converge to these values — the contract that
// lets the theory-grounded baselines (PS, SRPT, Gittins) be trusted as
// reference points. DESIGN.md documents the formulas and tolerance model.
package analytic

import (
	"fmt"
	"math"
	"sort"

	"lasmq/internal/dist"
)

// MM1FCFS returns the M/M/1 FCFS mean response time 1/(mu-lambda). In an
// M/M/1 queue FCFS, PS and LAS all share this mean (exponential service is
// the boundary of the decreasing-hazard class), which is what makes the
// triple such a sharp cross-check: three different scheduling dynamics must
// land on the same number.
func MM1FCFS(lambda, mu float64) float64 { return 1 / (mu - lambda) }

// MM1PS returns the M/M/1 PS mean response time, equal to FCFS's.
func MM1PS(lambda, mu float64) float64 { return MM1FCFS(lambda, mu) }

// MM1LAS returns the M/M/1 LAS mean response time, equal to FCFS's: the
// exponential's constant hazard rate makes every non-anticipating
// non-idling policy mean-equivalent.
func MM1LAS(lambda, mu float64) float64 { return MM1FCFS(lambda, mu) }

// MM1SRPT returns the M/M/1 SRPT mean response time. SRPT has no elementary
// closed form even for exponential service; this evaluates the
// Schrage–Miller integrals numerically (well below 0.1% error at the
// default resolution).
func MM1SRPT(lambda, mu float64) (float64, error) {
	m, err := NewMG1(lambda, dist.ExpService{M: 1 / mu}, 0)
	if err != nil {
		return 0, err
	}
	return m.SRPT(), nil
}

// mg1Points is the default integration resolution.
const mg1Points = 8192

// MG1 numerically evaluates M/G/1 mean response times for a general service
// distribution by grid integration of its tail. All cumulative integrals are
// precomputed at construction; the per-policy methods are cheap.
type MG1 struct {
	lambda float64
	mean   float64 // E[S], from the Service
	m2     float64 // E[S^2], numeric
	rho    float64

	xs    []float64 // ascending grid over (0, Upper]
	head  float64   // sanitized Tail(0)
	tails []float64 // sanitized monotone Tail at xs
	mass  []float64 // dF mass in (xs[i-1], xs[i]] (head cell starts at 0)
	integ []float64 // I(x)  = Integral_0^x Tail(t) dt            = E[min(S,x)]
	tint  []float64 // J(x)  = Integral_0^x t*Tail(t) dt          = E[min(S,x)^2]/2
	resid []float64 // R(x)  = Integral_0^x dt/(1-rho(t)),  rho(t) = lambda*Integral_0^t u dF(u)
}

// NewMG1 precomputes the evaluator for arrival rate lambda and service
// distribution s at the given grid resolution (0 means the default). It
// fails when the queue is unstable (rho = lambda*E[S] >= 1).
func NewMG1(lambda float64, s dist.Service, points int) (*MG1, error) {
	if points <= 0 {
		points = mg1Points
	}
	if lambda <= 0 {
		return nil, fmt.Errorf("analytic: lambda must be positive, got %v", lambda)
	}
	mean := s.Mean()
	if mean <= 0 || math.IsNaN(mean) || math.IsInf(mean, 0) {
		return nil, fmt.Errorf("analytic: service mean %v out of range", mean)
	}
	rho := lambda * mean
	if rho >= 1 {
		return nil, fmt.Errorf("analytic: unstable queue, rho = %v", rho)
	}

	m := &MG1{lambda: lambda, mean: mean, rho: rho}
	m.xs = mg1Grid(s.Upper(), points)
	n := len(m.xs)
	m.tails = make([]float64, n)
	m.mass = make([]float64, n)
	m.integ = make([]float64, n)
	m.tint = make([]float64, n)
	m.resid = make([]float64, n)

	// Sample and sanitize the tail (clamped, monotone non-increasing).
	prev := math.Min(1, math.Max(0, s.Tail(0)))
	m.head = prev
	for i, x := range m.xs {
		t := s.Tail(x)
		if math.IsNaN(t) || t < 0 {
			t = 0
		}
		if t > prev {
			t = prev
		}
		m.tails[i] = t
		m.mass[i] = prev - t
		prev = t
	}
	// Mass beyond Upper folds into the last cell so masses sum to Tail(0).
	m.mass[n-1] += prev

	// Trapezoid cumulatives. The head cell treats Tail on (0, xs[0]] as the
	// constant Tail(0) (xs[0] is ~1e-9 of Upper, so the choice is washed out).
	x0, t0 := 0.0, m.head
	var integ, tint, resid float64
	for i := 0; i < n; i++ {
		dx := m.xs[i] - x0
		// rho(t) at the segment endpoints, for the residence integrand.
		rhoAt0 := m.lambda * (integ - x0*t0)
		integ += dx * (t0 + m.tails[i]) / 2
		tint += dx * (x0*t0 + m.xs[i]*m.tails[i]) / 2
		rhoAt1 := m.lambda * (integ - m.xs[i]*m.tails[i])
		resid += dx * (1/(1-math.Min(rhoAt0, 1-1e-12)) + 1/(1-math.Min(rhoAt1, 1-1e-12))) / 2
		m.integ[i] = integ
		m.tint[i] = tint
		m.resid[i] = resid
		x0, t0 = m.xs[i], m.tails[i]
	}
	m.m2 = 2 * tint
	return m, nil
}

// mg1Grid is a log-spaced integration grid over (0, upper].
func mg1Grid(upper float64, points int) []float64 {
	if upper <= 0 || math.IsInf(upper, 0) || math.IsNaN(upper) {
		upper = 1
	}
	lo := upper * 1e-9
	ratio := math.Pow(upper/lo, 1/float64(points-1))
	xs := make([]float64, points)
	x := lo
	for i := range xs {
		xs[i] = x
		x *= ratio
	}
	xs[points-1] = upper
	return xs
}

// Rho returns the offered load lambda*E[S].
func (m *MG1) Rho() float64 { return m.rho }

// MeanService returns E[S].
func (m *MG1) MeanService() float64 { return m.mean }

// SecondMoment returns the numeric E[S^2].
func (m *MG1) SecondMoment() float64 { return m.m2 }

// FCFS returns the Pollaczek–Khinchine mean response time
// E[T] = E[S] + lambda*E[S^2] / (2*(1-rho)).
func (m *MG1) FCFS() float64 {
	return m.mean + m.lambda*m.m2/(2*(1-m.rho))
}

// PS returns the processor-sharing mean response time E[S]/(1-rho),
// famously insensitive to the service distribution beyond its mean.
func (m *MG1) PS() float64 { return m.mean / (1 - m.rho) }

// SRPT returns the Schrage–Miller mean response time
//
//	E[T] = Integral E[T(x)] dF(x),
//	E[T(x)] = lambda*J(x)/(1-rho(x))^2 + Integral_0^x dt/(1-rho(t)),
//
// where rho(x) = lambda*Integral_0^x t dF(t) is the load from jobs smaller
// than x and J(x) = Integral_0^x t*Tail(t) dt (integration by parts folds
// the x^2*Tail(x) boundary term of the classical waiting-time numerator
// into J).
func (m *MG1) SRPT() float64 {
	return m.overSizes(func(x float64) float64 {
		rhoX := m.lambda * (m.at(m.integ, x) - x*m.tailAt(x))
		den := 1 - math.Min(rhoX, 1-1e-12)
		return m.lambda*m.at(m.tint, x)/(den*den) + m.at(m.resid, x)
	})
}

// LAS returns the least-attained-service (foreground-background) mean
// response time
//
//	E[T(x)] = lambda*J(x)/(1-rhoTilde(x))^2 + x/(1-rhoTilde(x)),
//
// where rhoTilde(x) = lambda*E[min(S,x)] counts every job's service
// truncated at level x — the work that can preempt a job of size x under
// LAS.
func (m *MG1) LAS() float64 {
	return m.overSizes(func(x float64) float64 {
		den := 1 - math.Min(m.lambda*m.at(m.integ, x), 1-1e-12)
		return m.lambda*m.at(m.tint, x)/(den*den) + x/den
	})
}

// overSizes integrates f (a conditional mean response given size x) over the
// service distribution, evaluating f at each grid cell's midpoint with the
// cell's dF mass.
func (m *MG1) overSizes(f func(x float64) float64) float64 {
	var total float64
	x0 := 0.0
	for i, x1 := range m.xs {
		if w := m.mass[i]; w > 0 {
			total += w * f((x0+x1)/2)
		}
		x0 = x1
	}
	return total
}

// at linearly interpolates the cumulative array c (aligned with m.xs, with
// implied value 0 at x=0) at x.
func (m *MG1) at(c []float64, x float64) float64 {
	if x <= 0 {
		return 0
	}
	n := len(m.xs)
	if x >= m.xs[n-1] {
		return c[n-1]
	}
	i := sort.SearchFloat64s(m.xs, x)
	// m.xs[i-1] < x <= m.xs[i] (i may be 0: interpolate from the origin).
	x0, c0 := 0.0, 0.0
	if i > 0 {
		x0, c0 = m.xs[i-1], c[i-1]
	}
	return c0 + (c[i]-c0)*(x-x0)/(m.xs[i]-x0)
}

// tailAt linearly interpolates the sanitized tail at x.
func (m *MG1) tailAt(x float64) float64 {
	if x <= 0 {
		return m.head
	}
	n := len(m.xs)
	if x >= m.xs[n-1] {
		return m.tails[n-1]
	}
	i := sort.SearchFloat64s(m.xs, x)
	x0, t0 := 0.0, m.head
	if i > 0 {
		x0, t0 = m.xs[i-1], m.tails[i-1]
	}
	return t0 + (m.tails[i]-t0)*(x-x0)/(m.xs[i]-x0)
}
