package analytic

import (
	"math"
	"testing"

	"lasmq/internal/dist"
)

// relErr is the relative error |got-want|/|want|.
func relErr(got, want float64) float64 { return math.Abs(got-want) / math.Abs(want) }

// TestMG1MatchesMM1ClosedForms validates the numeric M/G/1 evaluator against
// the exponential closed forms: FCFS, PS and LAS must all hit 1/(mu-lambda)
// through three independent integration paths.
func TestMG1MatchesMM1ClosedForms(t *testing.T) {
	for _, rho := range []float64{0.5, 0.7, 0.9} {
		mu := 1.0
		lambda := rho * mu
		m, err := NewMG1(lambda, dist.ExpService{M: 1 / mu}, 0)
		if err != nil {
			t.Fatalf("rho=%v: %v", rho, err)
		}
		want := MM1FCFS(lambda, mu)
		if got := m.FCFS(); relErr(got, want) > 1e-3 {
			t.Errorf("rho=%v: FCFS = %v, closed form %v", rho, got, want)
		}
		if got := m.PS(); relErr(got, want) > 1e-3 {
			t.Errorf("rho=%v: PS = %v, closed form %v", rho, got, want)
		}
		// Exponential service sits on the boundary of the decreasing-hazard
		// class, where LAS is mean-equivalent to FCFS — a sharp test of the
		// two-dimensional LAS integral.
		if got := m.LAS(); relErr(got, want) > 5e-3 {
			t.Errorf("rho=%v: LAS = %v, closed form %v", rho, got, want)
		}
		// SRPT strictly beats every non-anticipating policy, and by a bounded
		// factor (mean response can never beat the no-queueing floor E[S]).
		srpt := m.SRPT()
		if srpt >= want || srpt < 1/mu {
			t.Errorf("rho=%v: SRPT = %v, want within [%v, %v)", rho, srpt, 1/mu, want)
		}
	}
}

// TestMG1SecondMoment checks the numeric E[S^2] against closed forms.
func TestMG1SecondMoment(t *testing.T) {
	m, err := NewMG1(0.5, dist.ExpService{M: 1}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.SecondMoment(); relErr(got, 2) > 1e-3 {
		t.Errorf("exp(1) E[S^2] = %v, want 2", got)
	}
	p := dist.ParetoService{Alpha: 3, Lo: 1, Hi: 100}
	mp, err := NewMG1(0.1, p, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := mp.SecondMoment(), p.RawMoment(2); relErr(got, want) > 1e-2 {
		t.Errorf("pareto E[S^2] = %v, closed form %v", got, want)
	}
}

// TestMG1PolicyOrdering asserts the theory ordering SRPT <= LAS <= PS <= FCFS
// under a heavy-tailed (decreasing-hazard) service distribution, where LAS
// is known to beat PS and FCFS is hurt most by size variance.
func TestMG1PolicyOrdering(t *testing.T) {
	s := dist.ParetoService{Alpha: 1.5, Lo: 1, Hi: 1000}
	m, err := NewMG1(0.7/s.Mean(), s, 0)
	if err != nil {
		t.Fatal(err)
	}
	srpt, las, ps, fcfs := m.SRPT(), m.LAS(), m.PS(), m.FCFS()
	if !(srpt <= las && las <= ps && ps <= fcfs) {
		t.Errorf("ordering violated: SRPT=%v LAS=%v PS=%v FCFS=%v", srpt, las, ps, fcfs)
	}
}

// TestMG1Unstable checks the stability guard.
func TestMG1Unstable(t *testing.T) {
	if _, err := NewMG1(1.5, dist.ExpService{M: 1}, 0); err == nil {
		t.Fatal("rho=1.5 accepted")
	}
	if _, err := NewMG1(-1, dist.ExpService{M: 1}, 0); err == nil {
		t.Fatal("negative lambda accepted")
	}
}
