package analytic_test

import (
	"fmt"
	"math"
	"os"
	"strconv"
	"testing"

	"lasmq/internal/analytic"
	"lasmq/internal/engine"
	"lasmq/internal/fluid"
	"lasmq/internal/sched"
	"lasmq/internal/stats"
	"lasmq/internal/workload"
)

// The crosscheck family drives the simulators with M/M/1 workloads
// (internal/workload.MM1Trace) and asserts the simulated steady-state mean
// response time agrees with the closed forms in this package. The contract
// (documented in DESIGN.md):
//
//   - estimator: per-seed mean over the jobs after a 10% warmup deletion
//     (the queue starts empty; discarding the transient removes the
//     empty-start bias that would otherwise dominate at high load);
//   - tolerance: the half-width of the 95% CI across seeds plus a small
//     discretization allowance proportional to the analytic value — the CI
//     absorbs sampling noise, the allowance absorbs the residual transient
//     and the fluid completion epsilon;
//   - scale: job count and seed count are intentionally modest so the gate
//     runs in seconds (`make crosscheck`); LASMQ_CROSSCHECK_JOBS and
//     LASMQ_CROSSCHECK_SEEDS scale it up for a slow, sharper run.

// crosscheckJobs returns the per-seed trace length.
func crosscheckJobs(t *testing.T) int { return envInt(t, "LASMQ_CROSSCHECK_JOBS", 4000) }

// crosscheckSeeds returns the number of independent replications.
func crosscheckSeeds(t *testing.T) int { return envInt(t, "LASMQ_CROSSCHECK_SEEDS", 4) }

func envInt(t *testing.T, name string, def int) int {
	v := os.Getenv(name)
	if v == "" {
		return def
	}
	n, err := strconv.Atoi(v)
	if err != nil || n <= 0 {
		t.Fatalf("%s=%q: want a positive integer", name, v)
	}
	return n
}

// warmupMean averages responses after deleting the first 10% as warmup.
func warmupMean(responses []float64) float64 {
	w := len(responses) / 10
	tail := responses[w:]
	var sum float64
	for _, x := range tail {
		sum += x
	}
	return sum / float64(len(tail))
}

// runMM1Fluid simulates one M/M/1 seed on the fluid substrate and returns
// the warmup-deleted mean response time.
func runMM1Fluid(t *testing.T, policy sched.Scheduler, jobs int, rho float64, seed int64) float64 {
	t.Helper()
	specs, err := workload.MM1Trace(workload.MM1Config{Jobs: jobs, Rho: rho, MeanSize: 1, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	res, err := fluid.Run(specs, policy, fluid.Config{Capacity: 1, TaskDuration: 1})
	if err != nil {
		t.Fatal(err)
	}
	return warmupMean(res.ResponseTimes())
}

// crosscheckFluid replicates the M/M/1 run across seeds and asserts the
// replicated mean agrees with the analytic value within CI95 plus the
// residual-bias allowance.
func crosscheckFluid(t *testing.T, mkPolicy func() sched.Scheduler, rho, want, biasFrac float64) {
	t.Helper()
	jobs, seeds := crosscheckJobs(t), crosscheckSeeds(t)
	means := make([]float64, seeds)
	for s := range means {
		means[s] = runMM1Fluid(t, mkPolicy(), jobs, rho, int64(1000+s))
	}
	rep := stats.Replicate(means)
	tol := rep.CI95 + biasFrac*want
	if diff := math.Abs(rep.Mean - want); diff > tol {
		t.Errorf("rho=%v: simulated mean %.4f vs analytic %.4f (|diff| %.4f > tol %.4f; CI95 %.4f, seeds %v)",
			rho, rep.Mean, want, diff, tol, rep.CI95, means)
	}
}

// biasFor returns the residual-bias allowance fraction for a load level: the
// queue's relaxation time grows like 1/(1-rho)^2, so the unconverged
// fraction of a fixed-length run grows with rho.
func biasFor(rho float64) float64 {
	switch {
	case rho >= 0.9:
		return 0.10
	case rho >= 0.7:
		return 0.05
	default:
		return 0.03
	}
}

// TestCrossCheckMM1Fluid is the gate: FIFO, PS, LAS and exact SRPT on the
// fluid substrate against their M/M/1 formulas at three load levels.
func TestCrossCheckMM1Fluid(t *testing.T) {
	mu := 1.0
	policies := []struct {
		name string
		mk   func() sched.Scheduler
		want func(lambda float64) float64
	}{
		{"FIFO", func() sched.Scheduler { return sched.NewFIFO() }, func(l float64) float64 { return analytic.MM1FCFS(l, mu) }},
		{"PS", func() sched.Scheduler { return sched.NewPS() }, func(l float64) float64 { return analytic.MM1PS(l, mu) }},
		{"LAS", func() sched.Scheduler { return sched.NewLAS() }, func(l float64) float64 { return analytic.MM1LAS(l, mu) }},
		{"SRPT", func() sched.Scheduler { return sched.NewSRPT() }, func(l float64) float64 {
			v, err := analytic.MM1SRPT(l, mu)
			if err != nil {
				t.Fatal(err)
			}
			return v
		}},
	}
	for _, rho := range []float64{0.5, 0.7, 0.9} {
		for _, p := range policies {
			p := p
			rho := rho
			t.Run(fmt.Sprintf("%s/rho=%.1f", p.name, rho), func(t *testing.T) {
				t.Parallel()
				crosscheckFluid(t, p.mk, rho, p.want(rho*mu), biasFor(rho))
			})
		}
	}
}

// TestCrossCheckMM1Engine runs the same queue through the task-level engine:
// one container, one task per job. The engine never preempts a launched
// task, so FCFS is the one discipline it realizes exactly — FIFO against
// Pollaczek–Khinchine closes the loop on the second substrate.
func TestCrossCheckMM1Engine(t *testing.T) {
	jobs, seeds := crosscheckJobs(t), crosscheckSeeds(t)
	for _, rho := range []float64{0.5, 0.7, 0.9} {
		rho := rho
		t.Run(fmt.Sprintf("FIFO/rho=%.1f", rho), func(t *testing.T) {
			t.Parallel()
			want := analytic.MM1FCFS(rho, 1)
			means := make([]float64, seeds)
			for s := range means {
				specs, err := workload.MM1Trace(workload.MM1Config{Jobs: jobs, Rho: rho, MeanSize: 1, Seed: int64(1000 + s)})
				if err != nil {
					t.Fatal(err)
				}
				res, err := engine.Run(workload.MM1Cluster(specs), sched.NewFIFO(), engine.Config{Containers: 1, StragglerFactor: 3})
				if err != nil {
					t.Fatal(err)
				}
				means[s] = warmupMean(res.ResponseTimes())
			}
			rep := stats.Replicate(means)
			tol := rep.CI95 + biasFor(rho)*want
			if diff := math.Abs(rep.Mean - want); diff > tol {
				t.Errorf("rho=%v: engine mean %.4f vs analytic %.4f (|diff| %.4f > tol %.4f; seeds %v)",
					rho, rep.Mean, want, diff, tol, means)
			}
		})
	}
}
