package trace

import (
	"encoding/csv"
	"fmt"
	"io"
	"math/rand"
	"strconv"

	"lasmq/internal/dist"
	"lasmq/internal/substrate"
)

// JobSpec is the flat trace job record — an alias of the substrate streaming
// kernel's canonical spec type (which fluid.JobSpec also aliases, so traces
// feed the simulators without this package importing one).
type JobSpec = substrate.JobSpec

// Source is the streaming trace interface (an alias of the substrate
// kernel's Source): Next yields one job at a time in arrival order, so
// consumers' memory is bounded by live jobs rather than trace length.
type Source = substrate.Source

// Collect drains a source into a materialized trace — the compatibility
// bridge from the streaming substrate back to the slice-based APIs.
func Collect(src Source) ([]JobSpec, error) {
	specs := make([]JobSpec, 0, 64)
	for {
		spec, ok, err := src.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			return specs, nil
		}
		specs = append(specs, spec)
	}
}

// facebookSource streams the synthetic heavy-tailed trace without
// materializing it. The generator is not naively streamable: job sizes are
// renormalized by the whole trace's mean, and the arrival stream continues
// on the same RNG after every size draw. So construction runs a setup pass
// — replaying all size draws on the seed's RNG in O(1) memory to obtain the
// renormalization scale and leave that RNG positioned at the arrival stream
// — and Next re-draws sizes one at a time on a second RNG seeded
// identically. The emitted sequence is byte-identical to Facebook's.
type facebookSource struct {
	cfg      FacebookConfig
	scale    float64
	arrivals *dist.PoissonProcess
	resize   *rand.Rand // replay RNG, positioned at size draw i
	i        int
}

// NewFacebookSource returns a streaming generator of the heavy-tailed trace:
// per-seed deterministic and byte-identical to the materialized Facebook.
func NewFacebookSource(cfg FacebookConfig) (Source, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	r := dist.New(cfg.Seed)
	var sum float64
	for i := 0; i < cfg.Jobs; i++ {
		sum += drawRawSize(r, &cfg)
	}
	scale := cfg.MeanSize / (sum / float64(cfg.Jobs))
	arrivals, err := dist.NewPoissonProcess(r, cfg.MeanSize/(cfg.Load*cfg.Capacity))
	if err != nil {
		return nil, err
	}
	return &facebookSource{
		cfg:      cfg,
		scale:    scale,
		arrivals: arrivals,
		resize:   dist.New(cfg.Seed),
	}, nil
}

func (s *facebookSource) Next() (JobSpec, bool, error) {
	if s.i >= s.cfg.Jobs {
		return JobSpec{}, false, nil
	}
	size := drawRawSize(s.resize, &s.cfg) * s.scale
	if size > s.cfg.MaxSize {
		size = s.cfg.MaxSize
	}
	s.i++
	return JobSpec{
		ID:       s.i,
		Arrival:  s.arrivals.Next(),
		Size:     size,
		Width:    widthFor(size, s.cfg.WidthTaskDuration, s.cfg.Capacity),
		Priority: 1,
	}, true, nil
}

// csvSource streams a WriteCSV-format trace one record at a time (the csv
// reader buffers chunks of the input; no record set is ever materialized).
type csvSource struct {
	cr   *csv.Reader
	line int
	done bool
}

// NewCSVSource returns a streaming reader of the CSV trace format. The
// header is read and checked eagerly; each Next parses and validates one
// record with the same per-line errors ReadCSV reports.
func NewCSVSource(r io.Reader) (Source, error) {
	cr := csv.NewReader(r)
	header, err := cr.Read()
	if err == io.EOF {
		return nil, fmt.Errorf("trace: empty csv")
	}
	if err != nil {
		return nil, fmt.Errorf("trace: read csv: %w", err)
	}
	want := []string{"id", "arrival", "size", "width", "priority"}
	if len(header) != len(want) {
		return nil, fmt.Errorf("trace: header has %d columns, want %d", len(header), len(want))
	}
	for i, col := range want {
		if header[i] != col {
			return nil, fmt.Errorf("trace: header column %d is %q, want %q", i, header[i], col)
		}
	}
	return &csvSource{cr: cr, line: 1}, nil
}

func (s *csvSource) Next() (JobSpec, bool, error) {
	if s.done {
		return JobSpec{}, false, nil
	}
	rec, err := s.cr.Read()
	if err == io.EOF {
		s.done = true
		return JobSpec{}, false, nil
	}
	if err != nil {
		s.done = true
		return JobSpec{}, false, fmt.Errorf("trace: read csv: %w", err)
	}
	s.line++
	id, err := strconv.Atoi(rec[0])
	if err != nil {
		return JobSpec{}, false, fmt.Errorf("trace: line %d: bad id %q", s.line, rec[0])
	}
	arrival, err := strconv.ParseFloat(rec[1], 64)
	if err != nil {
		return JobSpec{}, false, fmt.Errorf("trace: line %d: bad arrival %q", s.line, rec[1])
	}
	size, err := strconv.ParseFloat(rec[2], 64)
	if err != nil {
		return JobSpec{}, false, fmt.Errorf("trace: line %d: bad size %q", s.line, rec[2])
	}
	width, err := strconv.ParseFloat(rec[3], 64)
	if err != nil {
		return JobSpec{}, false, fmt.Errorf("trace: line %d: bad width %q", s.line, rec[3])
	}
	priority, err := strconv.Atoi(rec[4])
	if err != nil {
		return JobSpec{}, false, fmt.Errorf("trace: line %d: bad priority %q", s.line, rec[4])
	}
	spec := JobSpec{
		ID: id, Arrival: arrival, Size: size, Width: width, Priority: priority,
	}
	if err := validateSpec(&spec); err != nil {
		return JobSpec{}, false, fmt.Errorf("trace: line %d: %w", s.line, err)
	}
	return spec, true, nil
}
