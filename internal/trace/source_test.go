package trace

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

// TestFacebookSourceMatchesMaterialized pins the two-pass streaming
// generator's contract: for any seed, the streamed sequence is byte-identical
// to the materialized Facebook trace.
func TestFacebookSourceMatchesMaterialized(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		cfg := DefaultFacebookConfig()
		cfg.Jobs = 2000
		cfg.Seed = seed
		want, err := Facebook(cfg)
		if err != nil {
			t.Fatal(err)
		}
		src, err := NewFacebookSource(cfg)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Collect(src)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("seed %d: job %d differs:\nstream: %+v\n slice: %+v",
						seed, i, got[i], want[i])
				}
			}
			t.Fatalf("seed %d: traces differ in length: %d vs %d", seed, len(got), len(want))
		}
	}
}

// TestFacebookSourceExhausts pins that a drained source keeps returning
// ok=false instead of wrapping around.
func TestFacebookSourceExhausts(t *testing.T) {
	cfg := DefaultFacebookConfig()
	cfg.Jobs = 5
	cfg.Seed = 1
	src, err := NewFacebookSource(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < cfg.Jobs; i++ {
		if _, ok, err := src.Next(); !ok || err != nil {
			t.Fatalf("item %d: ok=%v err=%v", i, ok, err)
		}
	}
	for i := 0; i < 3; i++ {
		if _, ok, _ := src.Next(); ok {
			t.Fatal("drained source yielded another item")
		}
	}
}

// TestCSVSourceMatchesReadCSV round-trips a trace and pins that the chunked
// streaming reader reproduces the materialized parse exactly.
func TestCSVSourceMatchesReadCSV(t *testing.T) {
	cfg := DefaultFacebookConfig()
	cfg.Jobs = 500
	cfg.Seed = 2
	specs, err := Facebook(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, specs); err != nil {
		t.Fatal(err)
	}
	want, err := ReadCSV(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	src, err := NewCSVSource(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	got, err := Collect(src)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("streaming CSV parse differs from materialized parse")
	}
}

// TestCSVSourceErrors pins the streaming reader's error surface: the same
// header and per-line failures ReadCSV reports, at the same line numbers.
func TestCSVSourceErrors(t *testing.T) {
	cases := []struct {
		name, in, want string
	}{
		{"empty", "", "trace: empty csv"},
		{"bad header", "id,arrival,size\n", "trace: header has 3 columns, want 5"},
		{"wrong column", "id,arrival,size,width,prio\n", `trace: header column 4 is "prio", want "priority"`},
		{"bad id", "id,arrival,size,width,priority\nx,0,1,1,1\n", `trace: line 2: bad id "x"`},
		{"bad size", "id,arrival,size,width,priority\n1,0,zap,1,1\n", `trace: line 2: bad size "zap"`},
		{"invalid spec", "id,arrival,size,width,priority\n1,0,-4,1,1\n", "trace: line 2: size -4 out of range"},
		{"late error", "id,arrival,size,width,priority\n1,0,1,1,1\n2,0,1,1,0\n", "trace: line 3: priority 0 out of range"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			src, err := NewCSVSource(strings.NewReader(tc.in))
			if err == nil {
				_, err = Collect(src)
			}
			if err == nil || err.Error() != tc.want {
				t.Fatalf("got error %v, want %q", err, tc.want)
			}
			if _, rerr := ReadCSV(strings.NewReader(tc.in)); rerr == nil {
				t.Fatal("ReadCSV accepted input the streaming reader rejects")
			}
		})
	}
}
