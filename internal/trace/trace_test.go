package trace

import (
	"bytes"
	"math"
	"sort"
	"strings"
	"testing"
)

func TestFacebookShape(t *testing.T) {
	cfg := DefaultFacebookConfig()
	cfg.Jobs = 5000 // smaller for test speed; same machinery
	specs, err := Facebook(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 5000 {
		t.Fatalf("generated %d jobs, want 5000", len(specs))
	}
	var sum, maxSize float64
	prev := -1.0
	for _, s := range specs {
		if s.Size <= 0 || s.Size > cfg.MaxSize+1e-9 {
			t.Fatalf("size %v out of (0, %v]", s.Size, cfg.MaxSize)
		}
		if s.Width < 1 || s.Width > cfg.Capacity {
			t.Fatalf("width %v out of [1, %v]", s.Width, cfg.Capacity)
		}
		if s.Arrival < prev {
			t.Fatal("arrivals not sorted")
		}
		prev = s.Arrival
		if s.Priority < 1 || s.Priority > 5 {
			t.Fatalf("priority %d out of [1,5]", s.Priority)
		}
		sum += s.Size
		if s.Size > maxSize {
			maxSize = s.Size
		}
	}
	mean := sum / float64(len(specs))
	if math.Abs(mean-cfg.MeanSize) > cfg.MeanSize*0.15 {
		t.Errorf("mean size = %v, want ~%v", mean, cfg.MeanSize)
	}
	// Heavy tail: the largest job dwarfs the mean.
	if maxSize < 20*mean {
		t.Errorf("max size %v not heavy-tailed relative to mean %v", maxSize, mean)
	}
	// Median far below mean (right skew).
	sizes := make([]float64, len(specs))
	for i, s := range specs {
		sizes[i] = s.Size
	}
	sort.Float64s(sizes)
	if median := sizes[len(sizes)/2]; median > mean/2 {
		t.Errorf("median %v not well below mean %v: distribution not skewed", median, mean)
	}
}

func TestFacebookLoad(t *testing.T) {
	cfg := DefaultFacebookConfig()
	cfg.Jobs = 20000
	specs, err := Facebook(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var totalSize float64
	for _, s := range specs {
		totalSize += s.Size
	}
	horizon := specs[len(specs)-1].Arrival
	load := totalSize / (horizon * cfg.Capacity)
	if math.Abs(load-cfg.Load) > 0.08 {
		t.Errorf("realized load = %v, want ~%v", load, cfg.Load)
	}
}

func TestFacebookLargeJobsAreWide(t *testing.T) {
	cfg := DefaultFacebookConfig()
	cfg.Jobs = 5000
	specs, err := Facebook(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range specs {
		if s.Size >= 100 && s.Width < cfg.Capacity {
			t.Fatalf("job of size %v has width %v; large jobs should span the cluster", s.Size, s.Width)
		}
	}
}

func TestFacebookDeterministic(t *testing.T) {
	cfg := DefaultFacebookConfig()
	cfg.Jobs = 500
	a, err := Facebook(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Facebook(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("job %d differs across identical seeds", i)
		}
	}
	cfg.Seed = 99
	c, err := Facebook(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a[0] == c[0] && a[1] == c[1] && a[2] == c[2] {
		t.Error("different seeds produced identical traces")
	}
}

func TestFacebookValidation(t *testing.T) {
	mutations := []func(*FacebookConfig){
		func(c *FacebookConfig) { c.Jobs = 0 },
		func(c *FacebookConfig) { c.Load = 0 },
		func(c *FacebookConfig) { c.Load = 3 },
		func(c *FacebookConfig) { c.Capacity = 0 },
		func(c *FacebookConfig) { c.MeanSize = 0 },
		func(c *FacebookConfig) { c.Sigma = -1 },
		func(c *FacebookConfig) { c.TailFraction = 1.5 },
		func(c *FacebookConfig) { c.TailFraction = 0.1; c.TailAlpha = 0 },
		func(c *FacebookConfig) { c.MaxSize = 0 },
		func(c *FacebookConfig) { c.WidthTaskDuration = 0 },
	}
	for i, mutate := range mutations {
		cfg := DefaultFacebookConfig()
		mutate(&cfg)
		if _, err := Facebook(cfg); err == nil {
			t.Errorf("mutation %d: expected validation error", i)
		}
	}
}

func TestUniform(t *testing.T) {
	specs, err := Uniform(100, 10000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 100 {
		t.Fatalf("generated %d jobs, want 100", len(specs))
	}
	for _, s := range specs {
		if s.Size != 10000 || s.Width != 1 || s.Arrival != 0 {
			t.Fatalf("job %+v: want size 10000, width 1, arrival 0", s)
		}
	}
	if _, err := Uniform(0, 1, 1); err == nil {
		t.Error("expected error for zero jobs")
	}
	if _, err := Uniform(1, 0, 1); err == nil {
		t.Error("expected error for zero size")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	cfg := DefaultFacebookConfig()
	cfg.Jobs = 200
	specs, err := Facebook(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, specs); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(specs) {
		t.Fatalf("round trip returned %d jobs, want %d", len(back), len(specs))
	}
	for i := range specs {
		if specs[i] != back[i] {
			t.Fatalf("job %d changed in round trip:\n%+v\n%+v", i, specs[i], back[i])
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	tests := []struct {
		name string
		give string
	}{
		{name: "empty", give: ""},
		{name: "bad header", give: "a,b,c,d,e\n"},
		{name: "short header", give: "id,arrival\n"},
		{name: "bad id", give: "id,arrival,size,width,priority\nx,0,1,1,1\n"},
		{name: "bad arrival", give: "id,arrival,size,width,priority\n1,x,1,1,1\n"},
		{name: "bad size", give: "id,arrival,size,width,priority\n1,0,x,1,1\n"},
		{name: "bad width", give: "id,arrival,size,width,priority\n1,0,1,x,1\n"},
		{name: "bad priority", give: "id,arrival,size,width,priority\n1,0,1,1,x\n"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := ReadCSV(strings.NewReader(tt.give)); err == nil {
				t.Error("expected parse error")
			}
		})
	}
}
