package trace

import (
	"bytes"
	"math"
	"reflect"
	"strings"
	"testing"
	"testing/iotest"
)

// FuzzReadCSV ensures the trace parser never panics on arbitrary input, that
// anything it accepts round-trips through WriteCSV, and that the chunked
// streaming reader (which ReadCSV wraps) agrees with itself under the most
// hostile chunking — a one-byte-at-a-time reader splitting every record
// across reads.
func FuzzReadCSV(f *testing.F) {
	f.Add("id,arrival,size,width,priority\n1,0,10,2,1\n")
	f.Add("id,arrival,size,width,priority\n")
	f.Add("")
	f.Add("id,arrival,size,width,priority\n1,0,abc,2,1\n")
	f.Add("garbage")
	f.Add("id,arrival,size,width,priority\n1,0,10,2,1\n2,5,3.5,1,4\n")
	// Hostile numerics: overflow-to-Inf sizes, NaN, negative and zero sizes,
	// negative arrivals — all must be rejected, never simulated.
	f.Add("id,arrival,size,width,priority\n1,0,1e999,2,1\n")
	f.Add("id,arrival,size,width,priority\n1,0,NaN,2,1\n")
	f.Add("id,arrival,size,width,priority\n1,0,-5,2,1\n")
	f.Add("id,arrival,size,width,priority\n1,0,0,2,1\n")
	f.Add("id,arrival,size,width,priority\n1,-3,10,2,1\n")
	f.Add("id,arrival,size,width,priority\n1,Inf,10,2,1\n")
	f.Add("id,arrival,size,width,priority\n1,0,10,0,1\n")
	f.Add("id,arrival,size,width,priority\n1,0,10,2,0\n")
	f.Add("id,arrival,size,width,priority\n1,0,10,2,1,extra\n")
	f.Add("id,arrival,size,width,priority\n1,0,10\n")
	f.Add("\x00\xff\xfe")

	f.Fuzz(func(t *testing.T, input string) {
		specs, err := ReadCSV(strings.NewReader(input))

		// The streaming reader must agree with the materialized parse under
		// one-byte reads (every chunk boundary lands inside a record):
		// identical specs on success, an error whenever ReadCSV errors.
		chunked, chunkedErr := func() ([]JobSpec, error) {
			src, serr := NewCSVSource(iotest.OneByteReader(strings.NewReader(input)))
			if serr != nil {
				return nil, serr
			}
			return Collect(src)
		}()
		if err != nil {
			if chunkedErr == nil {
				t.Fatalf("chunked reader accepted input ReadCSV rejects (%v)", err)
			}
			return // rejected input is fine; panics are not
		}
		if chunkedErr != nil {
			t.Fatalf("chunked reader rejected accepted input: %v", chunkedErr)
		}
		if !reflect.DeepEqual(chunked, specs) {
			t.Fatal("chunked parse differs from materialized parse")
		}
		// Anything accepted must be simulatable: finite positive sizes and
		// widths, sane arrivals and priorities.
		for i := range specs {
			s := &specs[i]
			if !(s.Size > 0) || math.IsInf(s.Size, 0) {
				t.Fatalf("accepted unsimulatable size %v", s.Size)
			}
			if !(s.Width > 0) || math.IsInf(s.Width, 0) {
				t.Fatalf("accepted unsimulatable width %v", s.Width)
			}
			if !(s.Arrival >= 0) || math.IsInf(s.Arrival, 0) {
				t.Fatalf("accepted unsimulatable arrival %v", s.Arrival)
			}
			if s.Priority < 1 {
				t.Fatalf("accepted priority %d", s.Priority)
			}
		}
		var buf bytes.Buffer
		if err := WriteCSV(&buf, specs); err != nil {
			t.Fatalf("accepted trace failed to serialize: %v", err)
		}
		back, err := ReadCSV(&buf)
		if err != nil {
			t.Fatalf("serialized trace failed to parse: %v", err)
		}
		if len(back) != len(specs) {
			t.Fatalf("round trip changed length: %d -> %d", len(specs), len(back))
		}
	})
}
