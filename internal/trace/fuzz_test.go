package trace

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadCSV ensures the trace parser never panics on arbitrary input and
// that anything it accepts round-trips through WriteCSV.
func FuzzReadCSV(f *testing.F) {
	f.Add("id,arrival,size,width,priority\n1,0,10,2,1\n")
	f.Add("id,arrival,size,width,priority\n")
	f.Add("")
	f.Add("id,arrival,size,width,priority\n1,0,abc,2,1\n")
	f.Add("garbage")
	f.Add("id,arrival,size,width,priority\n1,0,10,2,1\n2,5,3.5,1,4\n")

	f.Fuzz(func(t *testing.T, input string) {
		specs, err := ReadCSV(strings.NewReader(input))
		if err != nil {
			return // rejected input is fine; panics are not
		}
		var buf bytes.Buffer
		if err := WriteCSV(&buf, specs); err != nil {
			t.Fatalf("accepted trace failed to serialize: %v", err)
		}
		back, err := ReadCSV(&buf)
		if err != nil {
			t.Fatalf("serialized trace failed to parse: %v", err)
		}
		if len(back) != len(specs) {
			t.Fatalf("round trip changed length: %d -> %d", len(specs), len(back))
		}
	})
}
