// Package trace provides the trace substrate for the paper's simulations.
//
// The paper's heavy-tailed workload comes from a 2010 Facebook production
// trace (24,443 jobs) that is not publicly redistributable; we synthesize an
// equivalent: heavy-tailed normalized job sizes (lognormal body with a
// bounded Pareto tail), renormalized so the mean size is ~20 (the value the
// paper reports for the normalized trace) and arrivals form a Poisson
// process at load 0.9. The light-tailed workload is the paper's exactly:
// 10,000 jobs, every size 10,000, submitted as a batch.
//
// Traces round-trip through a simple CSV format so runs are reproducible and
// externally-supplied traces can be replayed.
package trace

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"math/rand"
	"strconv"

	"lasmq/internal/dist"
)

// FacebookConfig controls synthesis of the heavy-tailed trace.
type FacebookConfig struct {
	// Jobs is the trace length (paper: 24,443).
	Jobs int
	// Load is the offered load (paper: 0.9).
	Load float64
	// Capacity is the simulated cluster capacity in containers; arrivals are
	// scaled so the load holds at this capacity.
	Capacity float64
	// MeanSize is the mean normalized job size (the paper reports ~20).
	MeanSize float64
	// Sigma is the lognormal shape of the size body.
	Sigma float64
	// TailFraction of jobs is drawn from a bounded Pareto tail instead of
	// the lognormal body, deepening the heavy tail.
	TailFraction float64
	// TailAlpha is the Pareto shape of the tail (close to 1 = very heavy).
	TailAlpha float64
	// MaxSize truncates job sizes (the paper's normalized trace tops out
	// below the fifth queue threshold, i.e. ~10^4 with alpha0=1, step 10).
	MaxSize float64
	// WidthTaskDuration converts a job's size into its parallelism cap:
	// width = clamp(ceil(size / WidthTaskDuration), 1, Capacity). Small
	// values make large jobs cluster-wide, reproducing FIFO's head-of-line
	// collapse on the heavy-tailed trace.
	WidthTaskDuration float64
	// Seed drives all randomness.
	Seed int64
}

// DefaultFacebookConfig returns the Fig. 7a / Fig. 8 configuration.
func DefaultFacebookConfig() FacebookConfig {
	return FacebookConfig{
		Jobs:              24443,
		Load:              0.9,
		Capacity:          20,
		MeanSize:          20,
		Sigma:             2.0,
		TailFraction:      0.05,
		TailAlpha:         1.1,
		MaxSize:           1e4,
		WidthTaskDuration: 0.25,
	}
}

func (c *FacebookConfig) validate() error {
	if c.Jobs <= 0 {
		return fmt.Errorf("trace: jobs must be positive, got %d", c.Jobs)
	}
	if c.Load <= 0 || c.Load >= 2 {
		return fmt.Errorf("trace: load must be in (0,2), got %v", c.Load)
	}
	if c.Capacity <= 0 {
		return fmt.Errorf("trace: capacity must be positive, got %v", c.Capacity)
	}
	if c.MeanSize <= 0 {
		return fmt.Errorf("trace: mean size must be positive, got %v", c.MeanSize)
	}
	if c.Sigma < 0 {
		return fmt.Errorf("trace: sigma must be >= 0, got %v", c.Sigma)
	}
	if c.TailFraction < 0 || c.TailFraction > 1 {
		return fmt.Errorf("trace: tail fraction must be in [0,1], got %v", c.TailFraction)
	}
	if c.TailFraction > 0 && c.TailAlpha <= 0 {
		return fmt.Errorf("trace: tail alpha must be positive, got %v", c.TailAlpha)
	}
	if c.MaxSize <= 0 {
		return fmt.Errorf("trace: max size must be positive, got %v", c.MaxSize)
	}
	if c.WidthTaskDuration <= 0 {
		return fmt.Errorf("trace: width task duration must be positive, got %v", c.WidthTaskDuration)
	}
	return nil
}

// Facebook synthesizes the heavy-tailed trace, materialized. It is a
// compatibility wrapper over NewFacebookSource and yields the identical
// sequence.
func Facebook(cfg FacebookConfig) ([]JobSpec, error) {
	src, err := NewFacebookSource(cfg)
	if err != nil {
		return nil, err
	}
	specs := make([]JobSpec, 0, cfg.Jobs)
	for {
		spec, ok, err := src.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			return specs, nil
		}
		specs = append(specs, spec)
	}
}

// drawRawSize draws one raw (pre-renormalization) job size: lognormal body
// with a bounded Pareto tail, clamped to [1e-3, MaxSize]. Both the
// materialized and streaming generators call it, so a size draw consumes the
// same RNG values on both paths.
func drawRawSize(r *rand.Rand, cfg *FacebookConfig) float64 {
	var s float64
	if r.Float64() < cfg.TailFraction {
		s = dist.BoundedPareto(r, cfg.TailAlpha, cfg.MeanSize, cfg.MaxSize)
	} else {
		s = dist.LognormalMean(r, cfg.MeanSize/2, cfg.Sigma)
	}
	if s > cfg.MaxSize {
		s = cfg.MaxSize
	}
	if s < 1e-3 {
		s = 1e-3
	}
	return s
}

func widthFor(size, taskDuration, capacity float64) float64 {
	w := math.Ceil(size / taskDuration)
	if w < 1 {
		w = 1
	}
	if w > capacity {
		w = capacity
	}
	return w
}

// Uniform builds the paper's light-tailed workload: n jobs of identical size
// submitted together at time zero with unit width (the paper simulates them
// on a normalized unit-capacity cluster). Trace jobs carry equal priority:
// the random [1,5] priorities are a testbed-workload detail, and equal
// priorities make the Fair baseline degrade to exact processor sharing, the
// behaviour the paper's Fig. 7b reports.
func Uniform(n int, size float64, seed int64) ([]JobSpec, error) {
	if n <= 0 {
		return nil, fmt.Errorf("trace: jobs must be positive, got %d", n)
	}
	if size <= 0 {
		return nil, fmt.Errorf("trace: size must be positive, got %v", size)
	}
	_ = seed // retained for API stability; the uniform trace is deterministic
	specs := make([]JobSpec, n)
	for i := range specs {
		specs[i] = JobSpec{
			ID:       i + 1,
			Arrival:  0,
			Size:     size,
			Width:    1,
			Priority: 1,
		}
	}
	return specs, nil
}

// WriteCSV serializes a trace as CSV with a header row:
// id,arrival,size,width,priority.
func WriteCSV(w io.Writer, specs []JobSpec) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"id", "arrival", "size", "width", "priority"}); err != nil {
		return fmt.Errorf("trace: write header: %w", err)
	}
	for i := range specs {
		s := &specs[i]
		record := []string{
			strconv.Itoa(s.ID),
			strconv.FormatFloat(s.Arrival, 'g', -1, 64),
			strconv.FormatFloat(s.Size, 'g', -1, 64),
			strconv.FormatFloat(s.Width, 'g', -1, 64),
			strconv.Itoa(s.Priority),
		}
		if err := cw.Write(record); err != nil {
			return fmt.Errorf("trace: write job %d: %w", s.ID, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a trace written by WriteCSV, materialized. It is a
// compatibility wrapper over NewCSVSource, which streams records in chunks
// instead of loading the whole file; the records (and per-line errors) are
// the same, though a malformed record past an invalid one now surfaces the
// first error in line order rather than the CSV-syntax error first.
func ReadCSV(r io.Reader) ([]JobSpec, error) {
	src, err := NewCSVSource(r)
	if err != nil {
		return nil, err
	}
	return Collect(src)
}

// validateSpec rejects trace rows no simulator run could make sense of:
// non-finite or negative arrivals, non-positive or non-finite sizes and
// widths (strconv accepts "NaN", "Inf" and overflow-huge exponents that
// round to +Inf — all of which would poison a simulation silently rather
// than fail it).
func validateSpec(s *JobSpec) error {
	if math.IsNaN(s.Arrival) || math.IsInf(s.Arrival, 0) || s.Arrival < 0 {
		return fmt.Errorf("arrival %v out of range", s.Arrival)
	}
	if math.IsNaN(s.Size) || math.IsInf(s.Size, 0) || s.Size <= 0 {
		return fmt.Errorf("size %v out of range", s.Size)
	}
	if math.IsNaN(s.Width) || math.IsInf(s.Width, 0) || s.Width <= 0 {
		return fmt.Errorf("width %v out of range", s.Width)
	}
	if s.Priority < 1 {
		return fmt.Errorf("priority %d out of range", s.Priority)
	}
	return nil
}
