// Package experiments wires the substrates together into one runner per
// table and figure of the paper's evaluation (Sec. V), plus the motivating
// example (Fig. 1) and ablations beyond the paper. Each runner returns
// structured results that the CLIs and benchmarks render; EXPERIMENTS.md
// records paper-vs-measured values.
package experiments

import (
	"fmt"
	"sort"
	"strings"

	"lasmq/internal/core"
	"lasmq/internal/engine"
	"lasmq/internal/obs"
	"lasmq/internal/sched"
)

// Policy names used across all experiments (the paper's four algorithms).
const (
	PolicyLASMQ = "LAS_MQ"
	PolicyLAS   = "LAS"
	PolicyFair  = "FAIR"
	PolicyFIFO  = "FIFO"
)

// PolicyOrder is the canonical reporting order.
var PolicyOrder = []string{PolicyLASMQ, PolicyLAS, PolicyFair, PolicyFIFO}

// Options tune experiment scale; the zero value is replaced by Defaults.
type Options struct {
	// Seed drives workload/trace synthesis. Runs with the same seed are
	// bit-for-bit reproducible.
	Seed int64
	// Repeats averages the cluster experiments over this many seeds
	// (the paper runs its experiments "multiple times"). Default 1.
	Repeats int
	// TraceJobs overrides the heavy-tailed trace length (default: the
	// paper's 24,443). Use a smaller value for quick runs.
	TraceJobs int
	// UniformJobs overrides the light-tailed workload length (default:
	// the paper's 10,000).
	UniformJobs int
	// ScaleJobs overrides the scale-100k stress trace length (default:
	// 100,000 — roughly 4x the paper's trace). Tests shrink it; the
	// benchmark tier runs it in full.
	ScaleJobs int
	// Scale1MJobs overrides the scale-1m streaming trace length (default:
	// 1,000,000). The trace is never materialized: each shard streams its
	// stride of a per-seed deterministic generator.
	Scale1MJobs int
	// Scale10MJobs overrides the scale-10m streaming trace length (default:
	// 10,000,000). scale-10m is scale-1m with the length knob turned up: same
	// sharded streaming machinery, an order of magnitude more jobs, and —
	// because peak heap tracks live jobs, not trace length — roughly the same
	// memory footprint (BenchmarkScale10M records both in BENCH_engine.json).
	Scale10MJobs int
	// Shards partitions the scale-1m cluster into this many independent
	// 20-container sub-clusters (default 8). Part of the simulated system —
	// it changes results and is folded into the cache fingerprint.
	Shards int
	// ShardWorkers bounds how many shards advance concurrently in scale-1m
	// (0 = GOMAXPROCS). Execution parallelism only: results are identical
	// for any value, so it is deliberately NOT fingerprinted.
	ShardWorkers int
	// FullReschedule forwards engine.Config.FullReschedule: it disables the
	// task-level engine's incremental round fast paths, re-invoking the
	// policy every round. Results must be identical either way (a
	// differential test enforces this); the knob exists for that test and as
	// an escape hatch.
	FullReschedule bool
	// Probe receives telemetry events (see internal/obs) from every engine
	// and fluid run an experiment performs. It is observation only: results
	// must be bit-for-bit identical with and without a probe (a differential
	// test enforces this), so it is deliberately NOT part of the replication
	// cache fingerprint. Experiments that take no Options (Fig1) run
	// unprobed.
	Probe obs.Probe
}

// Defaults fills unset fields with paper-scale values.
func (o Options) Defaults() Options {
	if o.Repeats <= 0 {
		o.Repeats = 1
	}
	if o.TraceJobs <= 0 {
		o.TraceJobs = 24443
	}
	if o.UniformJobs <= 0 {
		o.UniformJobs = 10000
	}
	if o.ScaleJobs <= 0 {
		o.ScaleJobs = 100000
	}
	if o.Scale1MJobs <= 0 {
		o.Scale1MJobs = 1000000
	}
	if o.Scale10MJobs <= 0 {
		o.Scale10MJobs = 10000000
	}
	if o.Shards <= 0 {
		o.Shards = 8
	}
	return o
}

// engineConfig returns the task-level engine configuration the cluster
// experiments share: the paper's testbed defaults plus the Options'
// scheduling-mode knob.
func (o Options) engineConfig() engine.Config {
	cfg := engine.DefaultConfig()
	cfg.FullReschedule = o.FullReschedule
	cfg.Probe = o.Probe
	return cfg
}

// clusterLASMQ returns the paper's testbed configuration of LAS_MQ
// (k = 10, alpha0 = 100, step = 10, both features on).
func clusterLASMQ() (*core.LASMQ, error) {
	return core.New(core.DefaultConfig())
}

// traceLASMQConfig returns the paper's simulation configuration of LAS_MQ
// (k = 10, alpha0 = 1, step = 10). The trace-driven simulator exercises the
// basic multilevel-queue mechanism: stage awareness needs stage progress
// (trace jobs have none) and in-queue ordering by remaining demand is
// disabled — with it on, the first queue becomes an SRPT approximation and
// the paper's Fig. 8b degradation at alpha0 = 10 cannot occur, so the
// paper's simulator evidently ran FIFO queues as well.
func traceLASMQConfig() core.Config {
	cfg := core.DefaultConfig()
	cfg.FirstThreshold = 1
	cfg.StageAware = false
	cfg.OrderByDemand = false
	return cfg
}

func traceLASMQ() (*core.LASMQ, error) {
	return core.New(traceLASMQConfig())
}

// newPolicy constructs a fresh scheduler by name; LAS_MQ uses the given
// constructor since its configuration differs between testbed and trace
// experiments.
func newPolicy(name string, mq func() (*core.LASMQ, error)) (sched.Scheduler, error) {
	switch name {
	case PolicyLASMQ:
		return mq()
	case PolicyLAS:
		return sched.NewLAS(), nil
	case PolicyFair:
		return sched.NewFair(), nil
	case PolicyFIFO:
		return sched.NewFIFO(), nil
	default:
		return nil, fmt.Errorf("experiments: unknown policy %q", name)
	}
}

// renderTable renders rows as a fixed-width text table.
func renderTable(header []string, rows [][]string) string {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range rows {
		writeRow(row)
	}
	return b.String()
}

// sortedKeysF returns the keys of a float-keyed map in ascending order.
func sortedKeysF(m map[float64]float64) []float64 {
	keys := make([]float64, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Float64s(keys)
	return keys
}

// sortedKeysI returns the keys of an int-keyed map in ascending order.
func sortedKeysI(m map[int]float64) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}
