package experiments

import (
	"fmt"

	"lasmq/internal/core"
	"lasmq/internal/fluid"
	"lasmq/internal/sched"
	"lasmq/internal/stats"
	"lasmq/internal/trace"
)

// TraceResult reports a trace-driven simulation (Fig. 7 style).
type TraceResult struct {
	// Mean is the average job response time per policy.
	Mean map[string]float64
	// Normalized is Fair's mean over each policy's mean.
	Normalized map[string]float64
	// Responses retains the per-job response times per policy. The
	// materialized-trace experiments (fig7a/fig7b/scale-100k) populate it for
	// percentile reporting; the streamed scale tiers leave it nil — retaining
	// tens of millions of samples would defeat their bounded-heap contract.
	Responses map[string][]float64
	// Slowdowns per policy (only populated when keepDetail).
	Slowdowns map[string][]float64
}

// Fig7HeavyTailed runs the synthetic Facebook trace (24,443 jobs, load 0.9)
// under all four policies with the paper's simulation parameters (k = 10,
// alpha0 = 1, step = 10). Expected shape: LAS best, LAS_MQ close behind
// (~30% better than Fair), FIFO catastrophically worse.
func Fig7HeavyTailed(opts Options) (*TraceResult, error) {
	opts = opts.Defaults()
	tcfg := trace.DefaultFacebookConfig()
	tcfg.Jobs = opts.TraceJobs
	tcfg.Seed = opts.Seed
	specs, err := trace.Facebook(tcfg)
	if err != nil {
		return nil, err
	}
	fcfg := fluid.DefaultConfig()
	fcfg.Capacity = tcfg.Capacity
	fcfg.Probe = opts.Probe
	return runTrace(specs, fcfg, traceLASMQ)
}

// Fig7Uniform runs the light-tailed workload (10,000 jobs of size 10,000 in
// a batch on a unit-capacity cluster). Expected shape: LAS_MQ and FIFO at
// about half the average response time of Fair and LAS, which both collapse
// to processor sharing.
func Fig7Uniform(opts Options) (*TraceResult, error) {
	opts = opts.Defaults()
	specs, err := trace.Uniform(opts.UniformJobs, 10000, opts.Seed)
	if err != nil {
		return nil, err
	}
	fcfg := fluid.Config{Capacity: 1, TaskDuration: 1, Probe: opts.Probe}
	return runTrace(specs, fcfg, traceLASMQ)
}

// Scale100k runs the heavy-tailed Facebook trace stretched to 100,000 jobs —
// roughly 4x the paper's — under all four policies with the Fig. 7a
// simulation parameters. It is not a paper figure; it is the scale tier that
// stresses the ladder event queue, the slab-allocated job state, and the
// incremental in-queue ordering at trace lengths the figure experiments
// never reach. BenchmarkScale100k records its runtime and peak heap in
// BENCH_engine.json.
func Scale100k(opts Options) (*TraceResult, error) {
	opts = opts.Defaults()
	tcfg := trace.DefaultFacebookConfig()
	tcfg.Jobs = opts.ScaleJobs
	tcfg.Seed = opts.Seed
	specs, err := trace.Facebook(tcfg)
	if err != nil {
		return nil, err
	}
	fcfg := fluid.DefaultConfig()
	fcfg.Capacity = tcfg.Capacity
	fcfg.Probe = opts.Probe
	return runTrace(specs, fcfg, traceLASMQ)
}

// Scale1M runs the heavy-tailed trace at a million jobs (default) — the tier
// past what a materialized trace and a single event loop handle comfortably.
// The trace is streamed (each shard pulls its stride of a per-seed
// deterministic generator; nothing is materialized) and the cluster is
// opts.Shards independent 20-container sub-clusters, each at load 0.9,
// advanced concurrently by up to opts.ShardWorkers workers. Shards changes
// results (and is fingerprinted); ShardWorkers never does. Peak heap is
// bounded by the jobs live at once, not the trace length; BenchmarkScale1M
// records runtime and peak heap in BENCH_engine.json.
func Scale1M(opts Options) (*TraceResult, error) {
	opts = opts.Defaults()
	return scaleStreamed(opts, opts.Scale1MJobs, "scale-1m")
}

// Scale10M is scale-1m with the trace length turned up to ten million jobs
// (default): a pure config knob over the same sharded streaming machinery.
// It exists as its own tier because it is the first one where materializing
// the trace would dominate the footprint — the streaming contract (peak heap
// tracks live jobs, not trace length) is what makes it affordable, and
// BenchmarkScale10M pins that by recording runtime and peak heap in
// BENCH_engine.json alongside scale-1m's.
func Scale10M(opts Options) (*TraceResult, error) {
	opts = opts.Defaults()
	return scaleStreamed(opts, opts.Scale10MJobs, "scale-10m")
}

// scaleStreamed runs one streamed-and-sharded scale tier: jobs total jobs
// across opts.Shards independent 20-container sub-clusters, each at load 0.9,
// every shard pulling its stride of a per-seed deterministic generator.
func scaleStreamed(opts Options, jobs int, label string) (*TraceResult, error) {
	tcfg := trace.DefaultFacebookConfig()
	tcfg.Jobs = jobs
	tcfg.Seed = opts.Seed
	// Global capacity scales with the shard count so every sub-cluster is
	// the Fig. 7a system: 20 containers at load 0.9.
	tcfg.Capacity = 20 * float64(opts.Shards)
	scfg := fluid.ShardedConfig{
		Config:  fluid.DefaultConfig(),
		Shards:  opts.Shards,
		Workers: opts.ShardWorkers,
	}
	scfg.Capacity = tcfg.Capacity
	scfg.Probe = opts.Probe
	res := &TraceResult{
		Mean:       make(map[string]float64, len(PolicyOrder)),
		Normalized: make(map[string]float64, len(PolicyOrder)),
	}
	for _, name := range PolicyOrder {
		newSource := func(shard int) (fluid.Source, error) {
			src, err := trace.NewFacebookSource(tcfg)
			if err != nil {
				return nil, err
			}
			return fluid.Strided(src, shard, opts.Shards), nil
		}
		newPol := func() (sched.Scheduler, error) { return newPolicy(name, traceLASMQ) }
		run, err := fluid.RunSharded(newSource, newPol, scfg)
		if err != nil {
			return nil, fmt.Errorf("%s %s: %w", label, name, err)
		}
		res.Mean[name] = run.MeanResponseTime()
	}
	fair := res.Mean[PolicyFair]
	for _, name := range PolicyOrder {
		res.Normalized[name] = stats.Normalized(fair, res.Mean[name])
	}
	return res, nil
}

func runTrace(specs []fluid.JobSpec, fcfg fluid.Config, mq func() (*core.LASMQ, error)) (*TraceResult, error) {
	res := &TraceResult{
		Mean:       make(map[string]float64, len(PolicyOrder)),
		Normalized: make(map[string]float64, len(PolicyOrder)),
		Responses:  make(map[string][]float64, len(PolicyOrder)),
		Slowdowns:  make(map[string][]float64, len(PolicyOrder)),
	}
	for _, name := range PolicyOrder {
		policy, err := newPolicy(name, mq)
		if err != nil {
			return nil, err
		}
		run, err := fluid.Run(specs, policy, fcfg)
		if err != nil {
			return nil, fmt.Errorf("trace sim %s: %w", name, err)
		}
		res.Mean[name] = run.MeanResponseTime()
		res.Responses[name] = run.ResponseTimes()
		res.Slowdowns[name] = run.Slowdowns()
	}
	fair := res.Mean[PolicyFair]
	for _, name := range PolicyOrder {
		res.Normalized[name] = stats.Normalized(fair, res.Mean[name])
	}
	return res, nil
}

// Table renders mean response times per policy (Fig. 7 bars) with the
// response-time tail where per-job responses were retained ("-" in the
// streamed scale tiers, which keep means only).
func (r *TraceResult) Table() string {
	header := []string{"policy", "mean response", "norm(vs FAIR)", "p50", "p95", "p99"}
	var rows [][]string
	for _, name := range PolicyOrder {
		row := []string{
			name,
			fmt.Sprintf("%.4g", r.Mean[name]),
			fmt.Sprintf("%.2f", r.Normalized[name]),
		}
		if rs := r.Responses[name]; len(rs) > 0 {
			s := stats.Summarize(rs)
			row = append(row,
				fmt.Sprintf("%.4g", s.P50),
				fmt.Sprintf("%.4g", s.P95),
				fmt.Sprintf("%.4g", s.P99))
		} else {
			row = append(row, "-", "-", "-")
		}
		rows = append(rows, row)
	}
	return renderTable(header, rows)
}

// Fig8QueuesResult maps number of queues to normalized response time.
type Fig8QueuesResult struct {
	// Normalized maps k (number of queues) to Fair's mean over LAS_MQ's.
	Normalized map[int]float64
}

// Fig8Queues sweeps the number of queues k over {1, 2, 4, 5, 10} on the
// heavy-tailed trace with alpha0 = 1, step = 10 (paper Fig. 8a). Expected
// shape: improves with k and beats Fair from k = 5 on.
func Fig8Queues(opts Options) (*Fig8QueuesResult, error) {
	opts = opts.Defaults()
	specs, fcfg, fairMean, err := fig8Setup(opts)
	if err != nil {
		return nil, err
	}
	res := &Fig8QueuesResult{Normalized: make(map[int]float64)}
	for _, k := range []int{1, 2, 4, 5, 10} {
		cfg := traceLASMQConfig()
		cfg.Queues = k
		mean, err := runLASMQTrace(specs, fcfg, cfg)
		if err != nil {
			return nil, fmt.Errorf("fig8a k=%d: %w", k, err)
		}
		res.Normalized[k] = stats.Normalized(fairMean, mean)
	}
	return res, nil
}

// Table renders Fig. 8a.
func (r *Fig8QueuesResult) Table() string {
	header := []string{"queues", "norm. resp. time (vs FAIR)"}
	var rows [][]string
	for _, k := range sortedKeysI(r.Normalized) {
		rows = append(rows, []string{fmt.Sprintf("%d", k), fmt.Sprintf("%.2f", r.Normalized[k])})
	}
	return renderTable(header, rows)
}

// Fig8ThresholdsResult maps the first queue's threshold to normalized
// response time.
type Fig8ThresholdsResult struct {
	// Normalized maps alpha0 to Fair's mean over LAS_MQ's.
	Normalized map[float64]float64
}

// Fig8Thresholds sweeps the first threshold alpha0 over {0.001, 0.01, 0.1,
// 1, 10} with k = 10, step = 10 (paper Fig. 8b). The paper's main message —
// performance is good and stable for a wide range of alpha0 — reproduces.
// Its sharp degradation at alpha0 = 10 does not: with weights normalized
// over non-empty queues, the first queue (which holds every job smaller
// than 10) receives ample capacity and never congests; see EXPERIMENTS.md.
func Fig8Thresholds(opts Options) (*Fig8ThresholdsResult, error) {
	opts = opts.Defaults()
	specs, fcfg, fairMean, err := fig8Setup(opts)
	if err != nil {
		return nil, err
	}
	res := &Fig8ThresholdsResult{Normalized: make(map[float64]float64)}
	for _, alpha := range []float64{0.001, 0.01, 0.1, 1, 10} {
		cfg := traceLASMQConfig()
		cfg.FirstThreshold = alpha
		mean, err := runLASMQTrace(specs, fcfg, cfg)
		if err != nil {
			return nil, fmt.Errorf("fig8b alpha0=%v: %w", alpha, err)
		}
		res.Normalized[alpha] = stats.Normalized(fairMean, mean)
	}
	return res, nil
}

// Table renders Fig. 8b.
func (r *Fig8ThresholdsResult) Table() string {
	header := []string{"alpha0", "norm. resp. time (vs FAIR)"}
	var rows [][]string
	for _, alpha := range sortedKeysF(r.Normalized) {
		rows = append(rows, []string{fmt.Sprintf("%g", alpha), fmt.Sprintf("%.2f", r.Normalized[alpha])})
	}
	return renderTable(header, rows)
}

func fig8Setup(opts Options) ([]fluid.JobSpec, fluid.Config, float64, error) {
	tcfg := trace.DefaultFacebookConfig()
	tcfg.Jobs = opts.TraceJobs
	tcfg.Seed = opts.Seed
	specs, err := trace.Facebook(tcfg)
	if err != nil {
		return nil, fluid.Config{}, 0, err
	}
	fcfg := fluid.DefaultConfig()
	fcfg.Capacity = tcfg.Capacity
	fcfg.Probe = opts.Probe
	fairRun, err := fluid.Run(specs, sched.NewFair(), fcfg)
	if err != nil {
		return nil, fluid.Config{}, 0, err
	}
	return specs, fcfg, fairRun.MeanResponseTime(), nil
}

func runLASMQTrace(specs []fluid.JobSpec, fcfg fluid.Config, cfg core.Config) (float64, error) {
	mq, err := core.New(cfg)
	if err != nil {
		return 0, err
	}
	run, err := fluid.Run(specs, mq, fcfg)
	if err != nil {
		return 0, err
	}
	return run.MeanResponseTime(), nil
}
