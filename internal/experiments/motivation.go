package experiments

import (
	"fmt"

	"lasmq/internal/core"
	"lasmq/internal/engine"
	"lasmq/internal/fluid"
	"lasmq/internal/sched"
	"lasmq/internal/stats"
	"lasmq/internal/workload"
)

// Fig1Result holds the motivating example's per-job response times.
type Fig1Result struct {
	// LAS and LASMQ map job name (A, B, C) to response time under plain LAS
	// and under the 2-level multilevel queue.
	LAS   map[string]float64
	LASMQ map[string]float64
}

// Fig1 reproduces the paper's motivating example (Fig. 1): jobs A, B, C of
// sizes 4, 4, 1 arriving at t = 0, 1, 2 on a unit-capacity cluster. Under
// LAS, A and B degenerate to processor sharing and A finishes at t = 9; a
// 2-level queue (threshold 1, strict priority) serves them one by one and
// cuts A's response time to 6 while B and C are unaffected.
func Fig1() (*Fig1Result, error) {
	specs := []fluid.JobSpec{
		{ID: 1, Arrival: 0, Size: 4, Width: 1, Priority: 1},
		{ID: 2, Arrival: 1, Size: 4, Width: 1, Priority: 1},
		{ID: 3, Arrival: 2, Size: 1, Width: 1, Priority: 1},
	}
	names := map[int]string{1: "A", 2: "B", 3: "C"}
	cfg := fluid.Config{Capacity: 1, TaskDuration: 1}

	lasRun, err := fluid.Run(specs, sched.NewLAS(), cfg)
	if err != nil {
		return nil, err
	}
	mqCfg := core.DefaultConfig()
	mqCfg.Queues = 2
	mqCfg.FirstThreshold = 1
	mqCfg.QueueWeightDecay = 1e9 // Fig. 1 assumes strict inter-queue priority
	mq, err := core.New(mqCfg)
	if err != nil {
		return nil, err
	}
	mqRun, err := fluid.Run(specs, mq, cfg)
	if err != nil {
		return nil, err
	}

	res := &Fig1Result{
		LAS:   make(map[string]float64, 3),
		LASMQ: make(map[string]float64, 3),
	}
	for _, jr := range lasRun.Jobs {
		res.LAS[names[jr.ID]] = jr.ResponseTime
	}
	for _, jr := range mqRun.Jobs {
		res.LASMQ[names[jr.ID]] = jr.ResponseTime
	}
	return res, nil
}

// Table renders Fig. 1.
func (r *Fig1Result) Table() string {
	header := []string{"job", "LAS response", "LAS+2 queues response"}
	var rows [][]string
	for _, name := range []string{"A", "B", "C"} {
		rows = append(rows, []string{
			name,
			fmt.Sprintf("%.2f", r.LAS[name]),
			fmt.Sprintf("%.2f", r.LASMQ[name]),
		})
	}
	return renderTable(header, rows)
}

// SJFErrorResult reports the size-estimate-error sweep motivating the paper:
// SJF with misestimated sizes versus the estimate-free LAS_MQ.
type SJFErrorResult struct {
	// SJF maps the estimate error factor to SJF's mean response time; the
	// job-size hints are perturbed by factor^u, u uniform in [-1, 1].
	SJF map[float64]float64
	// LASMQ is LAS_MQ's mean response time on the same workload (no
	// estimates needed, so it is a single value).
	LASMQ float64
	// Oracle is SJF's mean with perfect size information.
	Oracle float64
}

// MotivationSJFError quantifies the introduction's argument: size-based
// policies degrade as estimates degrade, while LAS_MQ needs none. It runs
// the Table I workload at the 50-second interval with SJF under increasing
// size-estimate error.
func MotivationSJFError(opts Options) (*SJFErrorResult, error) {
	opts = opts.Defaults()
	res := &SJFErrorResult{SJF: make(map[float64]float64)}
	factors := []float64{1, 2, 5, 10, 100}

	reps := opts.Repeats
	var lasmqSum, oracleSum float64
	sums := make(map[float64]float64, len(factors))
	for rep := 0; rep < reps; rep++ {
		seed := opts.Seed + int64(rep)
		// Exact-size workload for the oracle and LAS_MQ runs.
		wcfg := workload.DefaultConfig()
		wcfg.MeanInterval = 50
		wcfg.Seed = seed
		exact, err := workload.Generate(wcfg)
		if err != nil {
			return nil, err
		}
		mq, err := clusterLASMQ()
		if err != nil {
			return nil, err
		}
		mqRun, err := engine.Run(exact, mq, opts.engineConfig())
		if err != nil {
			return nil, err
		}
		lasmqSum += mqRun.MeanResponseTime()

		oracleRun, err := engine.Run(exact, sched.NewSJF(), opts.engineConfig())
		if err != nil {
			return nil, err
		}
		oracleSum += oracleRun.MeanResponseTime()

		for _, f := range factors {
			wcfg.SizeErrorFactor = f
			specs, err := workload.Generate(wcfg)
			if err != nil {
				return nil, err
			}
			run, err := engine.Run(specs, sched.NewSJF(), opts.engineConfig())
			if err != nil {
				return nil, err
			}
			sums[f] += run.MeanResponseTime()
		}
	}
	res.LASMQ = lasmqSum / float64(reps)
	res.Oracle = oracleSum / float64(reps)
	for _, f := range factors {
		res.SJF[f] = sums[f] / float64(reps)
	}
	return res, nil
}

// Table renders the estimate-error sweep.
func (r *SJFErrorResult) Table() string {
	header := []string{"policy", "estimate error", "mean response"}
	rows := [][]string{
		{"SJF (oracle)", "none", fmt.Sprintf("%.0f", r.Oracle)},
	}
	for _, f := range sortedKeysF(r.SJF) {
		rows = append(rows, []string{"SJF", fmt.Sprintf("x%g", f), fmt.Sprintf("%.0f", r.SJF[f])})
	}
	rows = append(rows, []string{"LAS_MQ", "not needed", fmt.Sprintf("%.0f", r.LASMQ)})
	return renderTable(header, rows)
}

// AblationWeights sweeps the cross-queue weight decay (a parameter the paper
// leaves unspecified) on the Table I workload, normalized over Fair.
func AblationWeights(opts Options) (map[float64]float64, error) {
	opts = opts.Defaults()
	res := make(map[float64]float64)
	for rep := 0; rep < opts.Repeats; rep++ {
		wcfg := workload.DefaultConfig()
		wcfg.MeanInterval = 50
		wcfg.Seed = opts.Seed + int64(rep)
		specs, err := workload.Generate(wcfg)
		if err != nil {
			return nil, err
		}
		fairRun, err := engine.Run(specs, sched.NewFair(), opts.engineConfig())
		if err != nil {
			return nil, err
		}
		for _, decay := range []float64{1, 1.5, 2, 4, 8} {
			cfg := core.DefaultConfig()
			cfg.QueueWeightDecay = decay
			mq, err := core.New(cfg)
			if err != nil {
				return nil, err
			}
			run, err := engine.Run(specs, mq, opts.engineConfig())
			if err != nil {
				return nil, err
			}
			res[decay] += stats.Normalized(fairRun.MeanResponseTime(), run.MeanResponseTime())
		}
	}
	for k := range res {
		res[k] /= float64(opts.Repeats)
	}
	return res, nil
}
