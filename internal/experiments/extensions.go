package experiments

import (
	"fmt"

	"lasmq/internal/core"
	"lasmq/internal/dist"
	"lasmq/internal/engine"
	"lasmq/internal/fluid"
	"lasmq/internal/geo"
	"lasmq/internal/sched"
	"lasmq/internal/stats"
	"lasmq/internal/trace"
	"lasmq/internal/workload"
)

// AdaptiveResult compares fixed, mistuned and online-adaptive threshold
// ladders on the heavy-tailed trace (the paper's future-work item 1).
type AdaptiveResult struct {
	// Tuned is the mean response with the paper's hand-tuned ladder.
	Tuned float64
	// Mistuned is the mean response with a ladder six orders of magnitude
	// off.
	Mistuned float64
	// Adaptive is the mean response starting from the mistuned ladder with
	// online refitting.
	Adaptive float64
	// Refits counts how many times the adaptive ladder was refitted.
	Refits int
}

// Adaptive runs the adaptive-threshold experiment.
func Adaptive(opts Options) (*AdaptiveResult, error) {
	opts = opts.Defaults()
	tcfg := trace.DefaultFacebookConfig()
	tcfg.Jobs = opts.TraceJobs
	tcfg.Seed = opts.Seed
	specs, err := trace.Facebook(tcfg)
	if err != nil {
		return nil, err
	}
	fcfg := fluid.DefaultConfig()
	fcfg.Capacity = tcfg.Capacity

	run := func(policy sched.Scheduler) (float64, error) {
		res, err := fluid.Run(specs, policy, fcfg)
		if err != nil {
			return 0, err
		}
		return res.MeanResponseTime(), nil
	}

	res := &AdaptiveResult{}
	tuned, err := core.New(traceLASMQConfig())
	if err != nil {
		return nil, err
	}
	if res.Tuned, err = run(tuned); err != nil {
		return nil, err
	}

	badCfg := traceLASMQConfig()
	badCfg.FirstThreshold = 1e-6
	badCfg.Step = 2
	bad, err := core.New(badCfg)
	if err != nil {
		return nil, err
	}
	if res.Mistuned, err = run(bad); err != nil {
		return nil, err
	}

	acfg := core.DefaultAdaptiveConfig()
	acfg.StageAware = false
	acfg.OrderByDemand = false
	acfg.InitialThreshold = 1e-6
	acfg.InitialStep = 2
	adaptive, err := core.NewAdaptive(acfg)
	if err != nil {
		return nil, err
	}
	if res.Adaptive, err = run(adaptive); err != nil {
		return nil, err
	}
	res.Refits = adaptive.Refits()
	return res, nil
}

// Table renders the adaptive experiment.
func (r *AdaptiveResult) Table() string {
	header := []string{"ladder", "mean response"}
	rows := [][]string{
		{"hand-tuned (alpha0=1, step 10)", fmt.Sprintf("%.4g", r.Tuned)},
		{"mistuned (alpha0=1e-6, step 2)", fmt.Sprintf("%.4g", r.Mistuned)},
		{fmt.Sprintf("adaptive from mistuned (%d refits)", r.Refits), fmt.Sprintf("%.4g", r.Adaptive)},
	}
	return renderTable(header, rows)
}

// TradeoffPoint is one point of the fairness/response tradeoff curve.
type TradeoffPoint struct {
	Theta        float64
	MeanResponse float64
	P99Response  float64
	JainIndex    float64
}

// Tradeoff sweeps the LAS_MQ/Fair blend parameter on the Table I workload
// (the paper's future-work item 2).
func Tradeoff(opts Options) ([]TradeoffPoint, error) {
	opts = opts.Defaults()
	wcfg := workload.DefaultConfig()
	wcfg.MeanInterval = 50
	wcfg.Seed = opts.Seed
	specs, err := workload.Generate(wcfg)
	if err != nil {
		return nil, err
	}
	var points []TradeoffPoint
	for _, theta := range []float64{0, 0.25, 0.5, 0.75, 1} {
		mq, err := clusterLASMQ()
		if err != nil {
			return nil, err
		}
		blend, err := sched.NewBlend(mq, sched.NewFair(), theta)
		if err != nil {
			return nil, err
		}
		res, err := engine.Run(specs, blend, opts.engineConfig())
		if err != nil {
			return nil, err
		}
		points = append(points, TradeoffPoint{
			Theta:        theta,
			MeanResponse: res.MeanResponseTime(),
			P99Response:  stats.Percentile(res.ResponseTimes(), 0.99),
			JainIndex:    stats.JainIndex(res.ResponseTimes()),
		})
	}
	return points, nil
}

// TradeoffTable renders the tradeoff curve.
func TradeoffTable(points []TradeoffPoint) string {
	header := []string{"theta (0=LAS_MQ, 1=FAIR)", "mean response", "p99 response", "jain"}
	var rows [][]string
	for _, p := range points {
		rows = append(rows, []string{
			fmt.Sprintf("%.2f", p.Theta),
			fmt.Sprintf("%.0f", p.MeanResponse),
			fmt.Sprintf("%.0f", p.P99Response),
			fmt.Sprintf("%.2f", p.JainIndex),
		})
	}
	return renderTable(header, rows)
}

// GeoResult compares job-ordering and task-placement policies on a
// geo-distributed deployment (the paper's future-work item 3).
type GeoResult struct {
	// Mean maps "<policy>+<placement>" to mean response time.
	Mean map[string]float64
}

// Geo runs the geo-distributed experiment: three sites, slow variable WAN, a
// contended mix of interactive queries and heavy scans.
func Geo(opts Options) (*GeoResult, error) {
	opts = opts.Defaults()
	r := dist.New(opts.Seed)
	var specs []geo.JobSpec
	arrival := 0.0
	for i := 1; i <= 30; i++ {
		arrival += dist.Exponential(r, 8)
		n, compute := 12, 3.0
		if i%5 == 0 {
			n, compute = 400, 5.0
		}
		tasks := make([]geo.TaskSpec, n)
		for t := range tasks {
			tasks[t] = geo.TaskSpec{Compute: compute, DataSite: t % 3, DataSize: 2}
		}
		specs = append(specs, geo.JobSpec{ID: i, Arrival: arrival, Priority: 1, Tasks: tasks})
	}
	cfg := geo.DefaultConfig()
	cfg.SiteContainers = []int{6, 6, 6}
	cfg.Seed = opts.Seed

	res := &GeoResult{Mean: make(map[string]float64)}
	combos := []struct {
		label     string
		policy    string
		placement geo.PlacementPolicy
	}{
		{label: "FIFO+aware", policy: PolicyFIFO, placement: geo.PlaceLocalityAware},
		{label: "FAIR+aware", policy: PolicyFair, placement: geo.PlaceLocalityAware},
		{label: "FAIR+blind", policy: PolicyFair, placement: geo.PlaceBlind},
		{label: "LAS_MQ+aware", policy: PolicyLASMQ, placement: geo.PlaceLocalityAware},
		{label: "LAS_MQ+blind", policy: PolicyLASMQ, placement: geo.PlaceBlind},
	}
	mkMQ := func() (*core.LASMQ, error) {
		c := core.DefaultConfig()
		c.FirstThreshold = 10
		return core.New(c)
	}
	for _, combo := range combos {
		policy, err := newPolicy(combo.policy, mkMQ)
		if err != nil {
			return nil, err
		}
		gcfg := cfg
		gcfg.Placement = combo.placement
		run, err := geo.Run(specs, policy, gcfg)
		if err != nil {
			return nil, fmt.Errorf("geo %s: %w", combo.label, err)
		}
		res.Mean[combo.label] = run.MeanResponseTime()
	}
	return res, nil
}

// Table renders the geo experiment.
func (r *GeoResult) Table() string {
	header := []string{"combo", "mean response"}
	var rows [][]string
	for _, label := range []string{"FIFO+aware", "FAIR+blind", "FAIR+aware", "LAS_MQ+blind", "LAS_MQ+aware"} {
		rows = append(rows, []string{label, fmt.Sprintf("%.1f", r.Mean[label])})
	}
	return renderTable(header, rows)
}
