package experiments

import (
	"strings"
	"testing"
)

func sampleClusterResult() *ClusterResult {
	res := &ClusterResult{
		MeanInterval: 80,
		ByPolicy:     make(map[string]*PolicyStats),
		Normalized:   make(map[string]float64),
	}
	for i, name := range PolicyOrder {
		res.ByPolicy[name] = &PolicyStats{
			MeanResponse: float64(100 * (i + 1)),
			BinMeans:     map[int]float64{1: 10, 2: 20, 3: 30, 4: 40},
			BinResponses: map[int][]float64{1: {10}, 2: {20}, 3: {30}, 4: {40}},
			Responses:    []float64{1, 2, 3, 4, 5},
			Slowdowns:    []float64{1, 1.5, 2},
		}
		res.Normalized[name] = 1
	}
	return res
}

func TestClusterWriteCSV(t *testing.T) {
	var b strings.Builder
	if err := sampleClusterResult().WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.HasPrefix(out, "policy,bin,mean_response,p50,p90,p95,p99,p999\n") {
		t.Errorf("missing header:\n%s", out)
	}
	// Bin rows carry per-bin tails (single-sample bins: every percentile is
	// the sample); the "all" row summarizes the overall responses {1..5}.
	for _, want := range []string{"LAS_MQ,1,10,10,10,10,10,10", "FIFO,all,400,3,", "FAIR,4,40,40,40,40,40,40"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing row %q:\n%s", want, out)
		}
	}
	// 4 policies x (4 bins + all) + header.
	if lines := strings.Count(out, "\n"); lines != 21 {
		t.Errorf("got %d lines, want 21", lines)
	}
}

func TestClusterWriteCDFCSV(t *testing.T) {
	var b strings.Builder
	if err := sampleClusterResult().WriteCDFCSV(&b, 100); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.HasPrefix(out, "policy,response,cdf\n") {
		t.Errorf("missing header:\n%s", out)
	}
	if !strings.Contains(out, "LAS_MQ,5,1") {
		t.Errorf("missing final CDF point:\n%s", out)
	}
}

func TestClusterWriteSlowdownCSV(t *testing.T) {
	var b strings.Builder
	if err := sampleClusterResult().WriteSlowdownCSV(&b, 100); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(b.String(), "policy,slowdown,cdf\n") {
		t.Errorf("missing header:\n%s", b.String())
	}
}

func TestTraceWriteCSV(t *testing.T) {
	res := &TraceResult{
		Mean:       map[string]float64{PolicyLASMQ: 1, PolicyLAS: 2, PolicyFair: 3, PolicyFIFO: 4},
		Normalized: map[string]float64{PolicyLASMQ: 3, PolicyLAS: 1.5, PolicyFair: 1, PolicyFIFO: 0.75},
		Responses:  map[string][]float64{PolicyLASMQ: {1, 1, 1}},
	}
	var b strings.Builder
	if err := res.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.HasPrefix(out, "policy,mean_response,normalized_vs_fair,p50,p90,p95,p99,p999\n") {
		t.Errorf("missing header:\n%s", out)
	}
	// LAS_MQ retained responses so its tail is populated; FIFO did not
	// (streamed scale tiers), so its percentile fields stay empty.
	if !strings.Contains(out, "LAS_MQ,1,3,1,1,1,1,1") || !strings.Contains(out, "FIFO,4,0.75,,,,,") {
		t.Errorf("rows missing:\n%s", out)
	}
}

func TestFig8WriteCSV(t *testing.T) {
	q := &Fig8QueuesResult{Normalized: map[int]float64{1: 0.1, 5: 1.2, 10: 1.3}}
	var b strings.Builder
	if err := q.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "queues,normalized_vs_fair\n1,0.1\n5,1.2\n10,1.3\n") {
		t.Errorf("unexpected output:\n%s", b.String())
	}

	th := &Fig8ThresholdsResult{Normalized: map[float64]float64{0.001: 1.2, 10: 1.1}}
	b.Reset()
	if err := th.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "alpha0,normalized_vs_fair\n0.001,1.2\n10,1.1\n") {
		t.Errorf("unexpected output:\n%s", b.String())
	}
}

func TestFig3WriteCSV(t *testing.T) {
	res := &Fig3Result{Cases: [4]float64{0.5, 1.1, 1.2, 1.5}}
	var b strings.Builder
	if err := res.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "1,no,no,0.5") || !strings.Contains(out, "4,yes,yes,1.5") {
		t.Errorf("rows missing:\n%s", out)
	}
}
