package experiments

import (
	"reflect"
	"testing"
)

// TestIncrementalMatchesFullAcrossRegistry is the end-to-end counterpart of
// the engine's differential test: every registered experiment, run at small
// scale over several seeds, must produce identical metric cells whether the
// task-level engine takes its incremental fast paths (the default) or
// re-invokes the policy every round (FullReschedule). Fluid- and geo-backed
// experiments don't branch on the knob, so for them this doubles as a
// same-seed determinism check.
func TestIncrementalMatchesFullAcrossRegistry(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the whole registry twice per seed")
	}
	base := Options{TraceJobs: 600, UniformJobs: 120, ScaleJobs: 800, Scale1MJobs: 1600, Scale10MJobs: 1600, Shards: 4}
	for i, name := range RegistryNames() {
		i, name := i, name
		t.Run(name, func(t *testing.T) {
			for seed := int64(1); seed <= 3; seed++ {
				full := base
				full.FullReschedule = true
				fullSample, err := Registry(full)[i].Run(seed)
				if err != nil {
					t.Fatalf("seed %d full: %v", seed, err)
				}
				incrSample, err := Registry(base)[i].Run(seed)
				if err != nil {
					t.Fatalf("seed %d incremental: %v", seed, err)
				}
				if !reflect.DeepEqual(fullSample.Cells, incrSample.Cells) {
					t.Fatalf("seed %d: cells differ between scheduling modes\n full: %+v\n incr: %+v",
						seed, fullSample.Cells, incrSample.Cells)
				}
			}
		})
	}
}
