package experiments_test

import (
	"strings"
	"testing"

	"lasmq/internal/experiments"
)

// TestPriceOfObliviousnessRanking is the experiment's acceptance gate: on the
// congested Table-I transient the mean response times must rank by how much
// prior information each policy holds,
//
//	SRPT <= GITTINS <= LAS_MQ <= LAS <= PS <= FIFO.
//
// The ranking is a property of the regime, not of one lucky draw — it holds
// seed-by-seed, so the test asserts it on independent seeds.
func TestPriceOfObliviousnessRanking(t *testing.T) {
	if testing.Short() {
		t.Skip("congested transient sweep is slow")
	}
	for _, seed := range []int64{1, 2} {
		res, err := experiments.PriceOfObliviousness(experiments.Options{Seed: seed})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		order := experiments.PricePolicyOrder
		for i := 1; i < len(order); i++ {
			lo, hi := order[i-1], order[i]
			if res.Mean[lo] > res.Mean[hi] {
				t.Errorf("seed %d: %s mean %.1f > %s mean %.1f — information ranking violated",
					seed, lo, res.Mean[lo], hi, res.Mean[hi])
			}
		}
		if got := res.Normalized[experiments.PolicyPS]; got != 1 {
			t.Errorf("seed %d: PS normalized to itself = %v, want 1", seed, got)
		}
	}
}

// TestPriceResultCSV checks the export shape: a header plus one row per
// policy, in rank order.
func TestPriceResultCSV(t *testing.T) {
	res := &experiments.PriceResult{
		Mean:       map[string]float64{},
		Normalized: map[string]float64{},
	}
	for i, name := range experiments.PricePolicyOrder {
		res.Mean[name] = float64(i + 1)
		res.Normalized[name] = float64(i+1) / 5
	}
	var b strings.Builder
	if err := res.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if want := len(experiments.PricePolicyOrder) + 1; len(lines) != want {
		t.Fatalf("CSV has %d lines, want %d:\n%s", len(lines), want, b.String())
	}
	if lines[0] != "policy,mean_response,normalized_vs_ps,p50,p90,p95,p99,p999" {
		t.Errorf("CSV header = %q", lines[0])
	}
	for i, name := range experiments.PricePolicyOrder {
		if !strings.HasPrefix(lines[i+1], name+",") {
			t.Errorf("CSV row %d = %q, want policy %s", i+1, lines[i+1], name)
		}
	}
}
