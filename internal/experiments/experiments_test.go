package experiments

import (
	"math"
	"strings"
	"testing"
)

// smallOpts shrinks the traces so the full experiment machinery runs in test
// time; shape assertions are correspondingly loose.
func smallOpts() Options {
	return Options{Seed: 1, Repeats: 1, TraceJobs: 3000, UniformJobs: 400}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.Defaults()
	if o.Repeats != 1 || o.TraceJobs != 24443 || o.UniformJobs != 10000 {
		t.Errorf("defaults = %+v", o)
	}
	o = Options{Repeats: 3, TraceJobs: 5, UniformJobs: 6}.Defaults()
	if o.Repeats != 3 || o.TraceJobs != 5 || o.UniformJobs != 6 {
		t.Errorf("explicit options overwritten: %+v", o)
	}
}

func TestFig1MatchesPaper(t *testing.T) {
	res, err := Fig1()
	if err != nil {
		t.Fatal(err)
	}
	wants := []struct {
		job     string
		las, mq float64
	}{
		{job: "A", las: 9, mq: 6},
		{job: "B", las: 8, mq: 8},
		{job: "C", las: 1, mq: 1},
	}
	for _, w := range wants {
		if math.Abs(res.LAS[w.job]-w.las) > 1e-2 {
			t.Errorf("LAS %s = %v, want %v", w.job, res.LAS[w.job], w.las)
		}
		if math.Abs(res.LASMQ[w.job]-w.mq) > 1e-2 {
			t.Errorf("LAS_MQ %s = %v, want %v", w.job, res.LASMQ[w.job], w.mq)
		}
	}
	if tbl := res.Table(); !strings.Contains(tbl, "A") || !strings.Contains(tbl, "6.00") {
		t.Errorf("table missing expected cells:\n%s", tbl)
	}
}

func TestFig3Shape(t *testing.T) {
	res, err := Fig3(Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	c := res.Cases
	// The full design (Case 4) must dominate every partial design and beat
	// Fair; each single feature must improve on the featureless Case 1.
	if c[3] <= 1 {
		t.Errorf("Case 4 = %v, want > 1 (beats Fair)", c[3])
	}
	for i := 0; i < 3; i++ {
		if c[3] < c[i] {
			t.Errorf("Case 4 (%v) not best: case %d = %v", c[3], i+1, c[i])
		}
	}
	if c[1] <= c[0] {
		t.Errorf("stage awareness did not improve: case2 %v vs case1 %v", c[1], c[0])
	}
	if c[2] <= c[0] {
		t.Errorf("in-queue ordering did not improve: case3 %v vs case1 %v", c[2], c[0])
	}
	if tbl := res.Table(); !strings.Contains(tbl, "Case 4") {
		t.Errorf("table missing Case 4:\n%s", tbl)
	}
}

func TestFig5Shape(t *testing.T) {
	res, err := Fig5(Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Headline claims: LAS_MQ beats Fair (and everything else); FIFO is far
	// worse than Fair; FIFO's bins are comparatively flat while LAS_MQ's
	// grow steeply with bin size; FIFO beats LAS_MQ on the largest bin.
	mq := res.ByPolicy[PolicyLASMQ]
	fifo := res.ByPolicy[PolicyFIFO]
	if res.Normalized[PolicyLASMQ] < 1.2 {
		t.Errorf("LAS_MQ normalized = %v, want >= 1.2 (paper: ~1.67)", res.Normalized[PolicyLASMQ])
	}
	if res.Normalized[PolicyFIFO] > 0.8 {
		t.Errorf("FIFO normalized = %v, want well below 1", res.Normalized[PolicyFIFO])
	}
	for _, name := range PolicyOrder {
		if name == PolicyLASMQ {
			continue
		}
		if res.ByPolicy[name].MeanResponse < mq.MeanResponse {
			t.Errorf("%s mean %v beat LAS_MQ %v", name, res.ByPolicy[name].MeanResponse, mq.MeanResponse)
		}
	}
	if fifo.BinMeans[4] >= mq.BinMeans[4] {
		t.Errorf("FIFO bin4 %v should beat LAS_MQ bin4 %v (paper Fig. 5b)", fifo.BinMeans[4], mq.BinMeans[4])
	}
	// FIFO flat: bins 1-3 within 2x of each other.
	if fifo.BinMeans[1] > 2*fifo.BinMeans[3] || fifo.BinMeans[3] > 2*fifo.BinMeans[1] {
		t.Errorf("FIFO bins not flat: %v", fifo.BinMeans)
	}
	// LAS_MQ steep: bin 4 at least 5x bin 1.
	if mq.BinMeans[4] < 5*mq.BinMeans[1] {
		t.Errorf("LAS_MQ bins not steep: %v", mq.BinMeans)
	}
	// Slowdowns: LAS_MQ smallest mean slowdown.
	mqSlow := mean(mq.Slowdowns)
	for _, name := range []string{PolicyFair, PolicyFIFO} {
		if mean(res.ByPolicy[name].Slowdowns) < mqSlow {
			t.Errorf("%s mean slowdown beat LAS_MQ", name)
		}
	}
	if tbl := res.Table(); !strings.Contains(tbl, "LAS_MQ") {
		t.Errorf("table malformed:\n%s", tbl)
	}
	if tbl := res.SlowdownTable(); !strings.Contains(tbl, "p99") {
		t.Errorf("slowdown table malformed:\n%s", tbl)
	}
}

func TestFig6HigherLoadWidensGap(t *testing.T) {
	f5, err := Fig5(Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	f6, err := Fig6(Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if f6.Normalized[PolicyLASMQ] <= 1 {
		t.Errorf("LAS_MQ normalized at 50 s = %v, want > 1", f6.Normalized[PolicyLASMQ])
	}
	// The paper's central load claim: the advantage grows at higher load.
	if f6.Normalized[PolicyLASMQ] < f5.Normalized[PolicyLASMQ]*0.95 {
		t.Errorf("gap did not grow with load: 50 s %v vs 80 s %v",
			f6.Normalized[PolicyLASMQ], f5.Normalized[PolicyLASMQ])
	}
}

func TestFig7HeavyTailedShape(t *testing.T) {
	res, err := Fig7HeavyTailed(smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	// Paper: LAS best, LAS_MQ close behind, both beat Fair; FIFO collapses.
	if res.Mean[PolicyLAS] > res.Mean[PolicyFair] {
		t.Errorf("LAS (%v) should beat Fair (%v) on heavy tail", res.Mean[PolicyLAS], res.Mean[PolicyFair])
	}
	if res.Mean[PolicyLASMQ] > res.Mean[PolicyFair] {
		t.Errorf("LAS_MQ (%v) should beat Fair (%v)", res.Mean[PolicyLASMQ], res.Mean[PolicyFair])
	}
	if res.Normalized[PolicyFIFO] > 0.3 {
		t.Errorf("FIFO normalized = %v, want catastrophic (< 0.3)", res.Normalized[PolicyFIFO])
	}
	if tbl := res.Table(); !strings.Contains(tbl, "FIFO") {
		t.Errorf("table malformed:\n%s", tbl)
	}
}

func TestFig7UniformShape(t *testing.T) {
	res, err := Fig7Uniform(smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	// Paper: LAS_MQ ~ FIFO at about half of Fair ~ LAS (processor sharing).
	if r := res.Mean[PolicyLASMQ] / res.Mean[PolicyFIFO]; r > 1.3 || r < 0.7 {
		t.Errorf("LAS_MQ/FIFO = %v, want ~1", r)
	}
	if r := res.Mean[PolicyFair] / res.Mean[PolicyLAS]; r > 1.2 || r < 0.8 {
		t.Errorf("FAIR/LAS = %v, want ~1 (both processor sharing)", r)
	}
	if r := res.Mean[PolicyFair] / res.Mean[PolicyLASMQ]; r < 1.6 {
		t.Errorf("FAIR/LAS_MQ = %v, want ~2 (paper Fig. 7b)", r)
	}
}

func TestFig8QueuesShape(t *testing.T) {
	res, err := Fig8Queues(smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	n := res.Normalized
	for _, k := range []int{1, 2, 4, 5, 10} {
		if _, ok := n[k]; !ok {
			t.Fatalf("missing k=%d in %v", k, n)
		}
	}
	// More queues must help, and enough queues must beat Fair while one
	// queue must not.
	if n[10] < n[1] {
		t.Errorf("10 queues (%v) worse than 1 queue (%v)", n[10], n[1])
	}
	if n[1] >= 1 {
		t.Errorf("1 queue normalized = %v, want < 1 (paper: below Fair)", n[1])
	}
	if n[10] <= 1 {
		t.Errorf("10 queues normalized = %v, want > 1", n[10])
	}
	if tbl := res.Table(); !strings.Contains(tbl, "queues") {
		t.Errorf("table malformed:\n%s", tbl)
	}
}

func TestFig8ThresholdsShape(t *testing.T) {
	res, err := Fig8Thresholds(smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	n := res.Normalized
	// The paper's main message holds: performance is good and stable across
	// four decades of alpha0. Its sharp degradation at alpha0 = 10 does not
	// reproduce under our cross-queue weight normalization (the first queue
	// stays under-loaded; see EXPERIMENTS.md), so we assert stability plus
	// no improvement at alpha0 = 10.
	for _, alpha := range []float64{0.001, 0.01, 0.1, 1, 10} {
		if n[alpha] <= 1 {
			t.Errorf("alpha0=%v normalized = %v, want > 1", alpha, n[alpha])
		}
	}
	if n[10] > n[0.01]*1.1 {
		t.Errorf("alpha0=10 (%v) should not beat small thresholds (%v)", n[10], n[0.01])
	}
	if tbl := res.Table(); !strings.Contains(tbl, "alpha0") {
		t.Errorf("table malformed:\n%s", tbl)
	}
}

func TestMotivationSJFError(t *testing.T) {
	res, err := MotivationSJFError(Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Larger estimate error must not improve SJF, and big error should be
	// clearly worse than the oracle.
	if res.SJF[100] <= res.Oracle {
		t.Errorf("SJF with x100 error (%v) not worse than oracle (%v)", res.SJF[100], res.Oracle)
	}
	// LAS_MQ without any estimates should be competitive with moderate-error
	// SJF.
	if res.LASMQ > res.SJF[100] {
		t.Errorf("LAS_MQ (%v) worse than SJF with x100 error (%v)", res.LASMQ, res.SJF[100])
	}
	if tbl := res.Table(); !strings.Contains(tbl, "oracle") {
		t.Errorf("table malformed:\n%s", tbl)
	}
}

func TestAblationWeights(t *testing.T) {
	res, err := AblationWeights(Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, decay := range []float64{1, 1.5, 2, 4, 8} {
		v, ok := res[decay]
		if !ok {
			t.Fatalf("missing decay %v", decay)
		}
		if v <= 0 {
			t.Errorf("decay %v: normalized %v", decay, v)
		}
	}
}

func TestAdaptiveExperiment(t *testing.T) {
	res, err := Adaptive(smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	if res.Refits == 0 {
		t.Error("adaptive scheduler never refitted")
	}
	if res.Adaptive >= res.Mistuned {
		t.Errorf("adaptive (%v) did not improve on mistuned (%v)", res.Adaptive, res.Mistuned)
	}
	if res.Tuned >= res.Mistuned {
		t.Errorf("tuned (%v) should beat mistuned (%v)", res.Tuned, res.Mistuned)
	}
	if tbl := res.Table(); !strings.Contains(tbl, "adaptive") {
		t.Errorf("table malformed:\n%s", tbl)
	}
}

func TestTradeoffExperiment(t *testing.T) {
	points, err := Tradeoff(Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 5 {
		t.Fatalf("got %d points, want 5", len(points))
	}
	// theta = 0 (pure LAS_MQ) has the best mean; theta = 1 (pure Fair) the
	// best fairness.
	first, last := points[0], points[len(points)-1]
	if first.Theta != 0 || last.Theta != 1 {
		t.Fatalf("endpoints = %v, %v", first.Theta, last.Theta)
	}
	if first.MeanResponse >= last.MeanResponse {
		t.Errorf("LAS_MQ mean %v not better than Fair %v", first.MeanResponse, last.MeanResponse)
	}
	if first.JainIndex >= last.JainIndex {
		t.Errorf("Fair fairness %v not better than LAS_MQ %v", last.JainIndex, first.JainIndex)
	}
	if tbl := TradeoffTable(points); !strings.Contains(tbl, "theta") {
		t.Errorf("table malformed:\n%s", tbl)
	}
}

func TestGeoExperiment(t *testing.T) {
	res, err := Geo(Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Mean["LAS_MQ+aware"] >= res.Mean["FAIR+aware"] {
		t.Errorf("LAS_MQ (%v) not better than Fair (%v) in geo",
			res.Mean["LAS_MQ+aware"], res.Mean["FAIR+aware"])
	}
	if res.Mean["FIFO+aware"] <= res.Mean["FAIR+aware"] {
		t.Errorf("FIFO (%v) should be worst in geo (Fair %v)",
			res.Mean["FIFO+aware"], res.Mean["FAIR+aware"])
	}
	if tbl := res.Table(); !strings.Contains(tbl, "LAS_MQ+aware") {
		t.Errorf("table malformed:\n%s", tbl)
	}
}

func TestTableIText(t *testing.T) {
	txt := TableIText()
	for _, want := range []string{"WordCount", "721", "100 GB", "TeraGen"} {
		if !strings.Contains(txt, want) {
			t.Errorf("Table I text missing %q:\n%s", want, txt)
		}
	}
}

func TestNewPolicyUnknown(t *testing.T) {
	if _, err := newPolicy("NOPE", clusterLASMQ); err == nil {
		t.Error("expected error for unknown policy")
	}
}

func mean(values []float64) float64 {
	if len(values) == 0 {
		return 0
	}
	var sum float64
	for _, v := range values {
		sum += v
	}
	return sum / float64(len(values))
}
