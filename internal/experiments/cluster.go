package experiments

import (
	"fmt"
	"strconv"

	"lasmq/internal/core"
	"lasmq/internal/engine"
	"lasmq/internal/job"
	"lasmq/internal/sched"
	"lasmq/internal/stats"
	"lasmq/internal/workload"
)

// PolicyStats aggregates one policy's cluster-experiment outcome.
type PolicyStats struct {
	// MeanResponse is the average job response time in seconds.
	MeanResponse float64
	// BinMeans is the average response time per Table I input-size bin.
	BinMeans map[int]float64
	// BinResponses retains the per-job response times per bin (the samples
	// behind BinMeans), so CSVs can report per-bin tails, not just means.
	BinResponses map[int][]float64
	// Responses are the per-job response times (for CDFs), concatenated
	// across repeats.
	Responses []float64
	// Slowdowns are per-job slowdowns (response / isolated runtime).
	Slowdowns []float64
}

// ClusterResult holds a full Fig. 5 / Fig. 6 style experiment.
type ClusterResult struct {
	// MeanInterval is the Poisson mean inter-arrival time in seconds.
	MeanInterval float64
	// ByPolicy maps policy name to aggregated stats.
	ByPolicy map[string]*PolicyStats
	// Normalized is Fair's mean response divided by each policy's
	// (values > 1 beat Fair).
	Normalized map[string]float64
}

// Fig5 runs the 80-second mean-interval testbed experiment (paper Fig. 5):
// response-time CDF, per-bin averages, and slowdown for LAS_MQ, LAS, FAIR
// and FIFO.
func Fig5(opts Options) (*ClusterResult, error) {
	return RunCluster(80, opts)
}

// Fig6 runs the 50-second mean-interval (higher-load) experiment (Fig. 6).
func Fig6(opts Options) (*ClusterResult, error) {
	return RunCluster(50, opts)
}

// RunCluster runs the Table I workload at the given mean arrival interval
// under all four policies.
func RunCluster(meanInterval float64, opts Options) (*ClusterResult, error) {
	opts = opts.Defaults()
	res := &ClusterResult{
		MeanInterval: meanInterval,
		ByPolicy:     make(map[string]*PolicyStats, len(PolicyOrder)),
		Normalized:   make(map[string]float64, len(PolicyOrder)),
	}
	for _, name := range PolicyOrder {
		res.ByPolicy[name] = &PolicyStats{
			BinMeans:     make(map[int]float64),
			BinResponses: make(map[int][]float64),
		}
	}

	for rep := 0; rep < opts.Repeats; rep++ {
		wcfg := workload.DefaultConfig()
		wcfg.MeanInterval = meanInterval
		wcfg.Seed = opts.Seed + int64(rep)
		specs, err := workload.Generate(wcfg)
		if err != nil {
			return nil, err
		}
		isolated, err := isolatedRuntimes(specs, opts.engineConfig())
		if err != nil {
			return nil, err
		}
		for _, name := range PolicyOrder {
			policy, err := newPolicy(name, clusterLASMQ)
			if err != nil {
				return nil, err
			}
			run, err := engine.Run(specs, policy, opts.engineConfig())
			if err != nil {
				return nil, fmt.Errorf("%s at interval %v: %w", name, meanInterval, err)
			}
			ps := res.ByPolicy[name]
			for _, jr := range run.Jobs {
				ps.Responses = append(ps.Responses, jr.ResponseTime)
				ps.Slowdowns = append(ps.Slowdowns, jr.ResponseTime/isolated[jr.ID])
				ps.BinResponses[jr.Bin] = append(ps.BinResponses[jr.Bin], jr.ResponseTime)
			}
		}
	}

	for _, name := range PolicyOrder {
		ps := res.ByPolicy[name]
		ps.MeanResponse = stats.Mean(ps.Responses)
		for bin, rs := range ps.BinResponses { // range-ok: commutative fold
			ps.BinMeans[bin] = stats.Mean(rs)
		}
	}
	fair := res.ByPolicy[PolicyFair].MeanResponse
	for _, name := range PolicyOrder {
		res.Normalized[name] = stats.Normalized(fair, res.ByPolicy[name].MeanResponse)
	}
	return res, nil
}

// isolatedRuntimes computes each job's alone-on-the-cluster runtime, the
// slowdown denominator.
func isolatedRuntimes(specs []job.Spec, cfg engine.Config) (map[int]float64, error) {
	out := make(map[int]float64, len(specs))
	for i := range specs {
		iso, err := engine.RunIsolated(specs[i], sched.NewFIFO(), cfg)
		if err != nil {
			return nil, err
		}
		out[specs[i].ID] = iso
	}
	return out, nil
}

// Table renders the experiment like the paper's Fig. 5(b)/6(b): average job
// response time per bin and overall, by policy.
func (r *ClusterResult) Table() string {
	header := []string{"policy", "bin1", "bin2", "bin3", "bin4", "all", "norm(vs FAIR)"}
	var rows [][]string
	for _, name := range PolicyOrder {
		ps := r.ByPolicy[name]
		row := []string{name}
		for bin := 1; bin <= 4; bin++ {
			row = append(row, fmt.Sprintf("%.0f", ps.BinMeans[bin]))
		}
		row = append(row,
			fmt.Sprintf("%.0f", ps.MeanResponse),
			fmt.Sprintf("%.2f", r.Normalized[name]))
		rows = append(rows, row)
	}
	return renderTable(header, rows)
}

// SlowdownTable renders mean and tail slowdowns plus Jain's fairness index
// per policy (Fig. 5(c)/6(c)).
func (r *ClusterResult) SlowdownTable() string {
	header := []string{"policy", "mean", "p50", "p90", "p99", "jain"}
	var rows [][]string
	for _, name := range PolicyOrder {
		s := stats.Summarize(r.ByPolicy[name].Slowdowns)
		rows = append(rows, []string{
			name,
			fmt.Sprintf("%.1f", s.Mean),
			fmt.Sprintf("%.1f", s.P50),
			fmt.Sprintf("%.1f", s.P90),
			fmt.Sprintf("%.1f", s.P99),
			fmt.Sprintf("%.2f", stats.JainIndex(r.ByPolicy[name].Slowdowns)),
		})
	}
	return renderTable(header, rows)
}

// Fig3Result reports the ablation of the paper's two design features.
type Fig3Result struct {
	// Normalized average job response time over Fair for:
	// Case 1: neither stage awareness nor in-queue ordering;
	// Case 2: stage awareness only;
	// Case 3: in-queue ordering only;
	// Case 4: both (the full LAS_MQ design).
	Cases [4]float64
}

// Fig3 reproduces the design-option comparison (paper Fig. 3): 100 jobs,
// Poisson arrivals with a 50-second mean interval, normalized over Fair.
func Fig3(opts Options) (*Fig3Result, error) {
	opts = opts.Defaults()
	variants := []struct {
		stageAware bool
		ordering   bool
	}{
		{stageAware: false, ordering: false},
		{stageAware: true, ordering: false},
		{stageAware: false, ordering: true},
		{stageAware: true, ordering: true},
	}
	var sums [4]float64
	for rep := 0; rep < opts.Repeats; rep++ {
		wcfg := workload.DefaultConfig()
		wcfg.MeanInterval = 50
		wcfg.Seed = opts.Seed + int64(rep)
		specs, err := workload.Generate(wcfg)
		if err != nil {
			return nil, err
		}
		fairRun, err := engine.Run(specs, sched.NewFair(), opts.engineConfig())
		if err != nil {
			return nil, err
		}
		fairMean := fairRun.MeanResponseTime()
		for i, v := range variants {
			cfg := core.DefaultConfig()
			cfg.StageAware = v.stageAware
			cfg.OrderByDemand = v.ordering
			mq, err := core.New(cfg)
			if err != nil {
				return nil, err
			}
			run, err := engine.Run(specs, mq, opts.engineConfig())
			if err != nil {
				return nil, fmt.Errorf("fig3 case %d: %w", i+1, err)
			}
			sums[i] += stats.Normalized(fairMean, run.MeanResponseTime())
		}
	}
	var res Fig3Result
	for i := range sums {
		res.Cases[i] = sums[i] / float64(opts.Repeats)
	}
	return &res, nil
}

// Table renders the ablation like Fig. 3.
func (r *Fig3Result) Table() string {
	header := []string{"case", "stage-aware", "in-queue ordering", "norm. resp. time (vs FAIR)"}
	features := [][2]string{{"no", "no"}, {"yes", "no"}, {"no", "yes"}, {"yes", "yes"}}
	var rows [][]string
	for i, c := range r.Cases {
		rows = append(rows, []string{
			"Case " + strconv.Itoa(i+1),
			features[i][0],
			features[i][1],
			fmt.Sprintf("%.2f", c),
		})
	}
	return renderTable(header, rows)
}

// TableIText renders the paper's Table I (workload composition).
func TableIText() string {
	header := []string{"bin", "job", "dataset", "maps", "reduces", "jobs"}
	var rows [][]string
	for _, jt := range workload.TableI() {
		rows = append(rows, []string{
			strconv.Itoa(jt.Bin),
			jt.Name,
			jt.DatasetSize,
			strconv.Itoa(jt.Maps),
			strconv.Itoa(jt.Reduces),
			strconv.Itoa(jt.Count),
		})
	}
	return renderTable(header, rows)
}
