package experiments

import (
	"fmt"
	"io"

	"lasmq/internal/stats"
)

// WriteCSV emits the experiment's plottable series: one row per
// (policy, bin) mean plus overall means, as the paper's Fig. 5b/6b bars.
func (r *ClusterResult) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "policy,bin,mean_response"); err != nil {
		return err
	}
	for _, name := range PolicyOrder {
		ps := r.ByPolicy[name]
		for bin := 1; bin <= 4; bin++ {
			if _, err := fmt.Fprintf(w, "%s,%d,%g\n", name, bin, ps.BinMeans[bin]); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s,all,%g\n", name, ps.MeanResponse); err != nil {
			return err
		}
	}
	return nil
}

// WriteCDFCSV emits the response-time CDFs (Fig. 5a/6a) downsampled to at
// most points rows per policy.
func (r *ClusterResult) WriteCDFCSV(w io.Writer, points int) error {
	if _, err := fmt.Fprintln(w, "policy,response,cdf"); err != nil {
		return err
	}
	for _, name := range PolicyOrder {
		cdf := stats.CDF(r.ByPolicy[name].Responses)
		step := 1
		if points > 0 && len(cdf) > points {
			step = len(cdf) / points
		}
		for i := 0; i < len(cdf); i += step {
			if _, err := fmt.Fprintf(w, "%s,%g,%g\n", name, cdf[i].X, cdf[i].P); err != nil {
				return err
			}
		}
		if n := len(cdf); n > 0 && (n-1)%step != 0 {
			if _, err := fmt.Fprintf(w, "%s,%g,%g\n", name, cdf[n-1].X, cdf[n-1].P); err != nil {
				return err
			}
		}
	}
	return nil
}

// WriteSlowdownCSV emits the slowdown CDFs (Fig. 5c/6c).
func (r *ClusterResult) WriteSlowdownCSV(w io.Writer, points int) error {
	if _, err := fmt.Fprintln(w, "policy,slowdown,cdf"); err != nil {
		return err
	}
	for _, name := range PolicyOrder {
		cdf := stats.CDF(r.ByPolicy[name].Slowdowns)
		step := 1
		if points > 0 && len(cdf) > points {
			step = len(cdf) / points
		}
		for i := 0; i < len(cdf); i += step {
			if _, err := fmt.Fprintf(w, "%s,%g,%g\n", name, cdf[i].X, cdf[i].P); err != nil {
				return err
			}
		}
	}
	return nil
}

// WriteCSV emits the trace experiment's bars (Fig. 7).
func (r *TraceResult) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "policy,mean_response,normalized_vs_fair"); err != nil {
		return err
	}
	for _, name := range PolicyOrder {
		if _, err := fmt.Fprintf(w, "%s,%g,%g\n", name, r.Mean[name], r.Normalized[name]); err != nil {
			return err
		}
	}
	return nil
}

// WriteCSV emits the queue-count sweep (Fig. 8a).
func (r *Fig8QueuesResult) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "queues,normalized_vs_fair"); err != nil {
		return err
	}
	for _, k := range sortedKeysI(r.Normalized) {
		if _, err := fmt.Fprintf(w, "%d,%g\n", k, r.Normalized[k]); err != nil {
			return err
		}
	}
	return nil
}

// WriteCSV emits the threshold sweep (Fig. 8b).
func (r *Fig8ThresholdsResult) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "alpha0,normalized_vs_fair"); err != nil {
		return err
	}
	for _, alpha := range sortedKeysF(r.Normalized) {
		if _, err := fmt.Fprintf(w, "%g,%g\n", alpha, r.Normalized[alpha]); err != nil {
			return err
		}
	}
	return nil
}

// WriteCSV emits the ablation bars (Fig. 3).
func (r *Fig3Result) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "case,stage_aware,in_queue_ordering,normalized_vs_fair"); err != nil {
		return err
	}
	features := [][2]string{{"no", "no"}, {"yes", "no"}, {"no", "yes"}, {"yes", "yes"}}
	for i, c := range r.Cases {
		if _, err := fmt.Fprintf(w, "%d,%s,%s,%g\n", i+1, features[i][0], features[i][1], c); err != nil {
			return err
		}
	}
	return nil
}
