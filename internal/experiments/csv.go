package experiments

import (
	"fmt"
	"io"

	"lasmq/internal/stats"
)

// percentileHeader is the tail-columns suffix every response-time CSV
// shares; percentileFields fills it from one sample (empty fields when the
// raw responses were not retained, e.g. the streamed scale tiers).
const percentileHeader = ",p50,p90,p95,p99,p999"

func percentileFields(values []float64) string {
	if len(values) == 0 {
		return ",,,,,"
	}
	s := stats.Summarize(values)
	return fmt.Sprintf(",%g,%g,%g,%g,%g", s.P50, s.P90, s.P95, s.P99, s.P999)
}

// WriteCSV emits the experiment's plottable series: one row per
// (policy, bin) mean plus overall means, as the paper's Fig. 5b/6b bars,
// each with its response-time tail.
func (r *ClusterResult) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "policy,bin,mean_response"+percentileHeader); err != nil {
		return err
	}
	for _, name := range PolicyOrder {
		ps := r.ByPolicy[name]
		for bin := 1; bin <= 4; bin++ {
			if _, err := fmt.Fprintf(w, "%s,%d,%g%s\n",
				name, bin, ps.BinMeans[bin], percentileFields(ps.BinResponses[bin])); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s,all,%g%s\n",
			name, ps.MeanResponse, percentileFields(ps.Responses)); err != nil {
			return err
		}
	}
	return nil
}

// WriteCDFCSV emits the response-time CDFs (Fig. 5a/6a) downsampled to at
// most points rows per policy.
func (r *ClusterResult) WriteCDFCSV(w io.Writer, points int) error {
	if _, err := fmt.Fprintln(w, "policy,response,cdf"); err != nil {
		return err
	}
	for _, name := range PolicyOrder {
		cdf := stats.CDF(r.ByPolicy[name].Responses)
		step := 1
		if points > 0 && len(cdf) > points {
			step = len(cdf) / points
		}
		for i := 0; i < len(cdf); i += step {
			if _, err := fmt.Fprintf(w, "%s,%g,%g\n", name, cdf[i].X, cdf[i].P); err != nil {
				return err
			}
		}
		if n := len(cdf); n > 0 && (n-1)%step != 0 {
			if _, err := fmt.Fprintf(w, "%s,%g,%g\n", name, cdf[n-1].X, cdf[n-1].P); err != nil {
				return err
			}
		}
	}
	return nil
}

// WriteSlowdownCSV emits the slowdown CDFs (Fig. 5c/6c).
func (r *ClusterResult) WriteSlowdownCSV(w io.Writer, points int) error {
	if _, err := fmt.Fprintln(w, "policy,slowdown,cdf"); err != nil {
		return err
	}
	for _, name := range PolicyOrder {
		cdf := stats.CDF(r.ByPolicy[name].Slowdowns)
		step := 1
		if points > 0 && len(cdf) > points {
			step = len(cdf) / points
		}
		for i := 0; i < len(cdf); i += step {
			if _, err := fmt.Fprintf(w, "%s,%g,%g\n", name, cdf[i].X, cdf[i].P); err != nil {
				return err
			}
		}
	}
	return nil
}

// WriteCSV emits the trace experiment's bars (Fig. 7) with response-time
// tails; the percentile fields are empty for the streamed scale tiers, which
// do not retain per-job responses.
func (r *TraceResult) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "policy,mean_response,normalized_vs_fair"+percentileHeader); err != nil {
		return err
	}
	for _, name := range PolicyOrder {
		if _, err := fmt.Fprintf(w, "%s,%g,%g%s\n",
			name, r.Mean[name], r.Normalized[name], percentileFields(r.Responses[name])); err != nil {
			return err
		}
	}
	return nil
}

// WriteCSV emits the queue-count sweep (Fig. 8a).
func (r *Fig8QueuesResult) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "queues,normalized_vs_fair"); err != nil {
		return err
	}
	for _, k := range sortedKeysI(r.Normalized) {
		if _, err := fmt.Fprintf(w, "%d,%g\n", k, r.Normalized[k]); err != nil {
			return err
		}
	}
	return nil
}

// WriteCSV emits the threshold sweep (Fig. 8b).
func (r *Fig8ThresholdsResult) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "alpha0,normalized_vs_fair"); err != nil {
		return err
	}
	for _, alpha := range sortedKeysF(r.Normalized) {
		if _, err := fmt.Fprintf(w, "%g,%g\n", alpha, r.Normalized[alpha]); err != nil {
			return err
		}
	}
	return nil
}

// WriteCSV emits the ablation bars (Fig. 3).
func (r *Fig3Result) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "case,stage_aware,in_queue_ordering,normalized_vs_fair"); err != nil {
		return err
	}
	features := [][2]string{{"no", "no"}, {"yes", "no"}, {"no", "yes"}, {"yes", "yes"}}
	for i, c := range r.Cases {
		if _, err := fmt.Fprintf(w, "%d,%s,%s,%g\n", i+1, features[i][0], features[i][1], c); err != nil {
			return err
		}
	}
	return nil
}
