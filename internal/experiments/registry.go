package experiments

import (
	"fmt"
	"sort"
	"strings"

	"lasmq/internal/runner"
	"lasmq/internal/stats"
)

// Registry returns the replication table: every experiment as a pure
// func(seed) that re-derives its workload from that seed and reports its
// figures as metric cells for the runner engine's cross-seed aggregation.
// The Options' scale knobs (TraceJobs, UniformJobs, ScaleJobs) apply to
// every entry and
// are folded into the cache fingerprint; Options.Seed and Options.Repeats
// are ignored — the runner owns seeding, and each replication is one repeat.
func Registry(opts Options) []runner.Experiment {
	opts = opts.Defaults()
	// ShardWorkers is execution parallelism only (results are identical for
	// any value), so it is deliberately absent from the fingerprint.
	fp := fmt.Sprintf("trace-jobs=%d,uniform-jobs=%d,scale-jobs=%d,scale1m-jobs=%d,scale10m-jobs=%d,shards=%d,full-resched=%t",
		opts.TraceJobs, opts.UniformJobs, opts.ScaleJobs, opts.Scale1MJobs, opts.Scale10MJobs, opts.Shards, opts.FullReschedule)
	perSeed := func(seed int64) Options {
		o := opts
		o.Seed = seed
		o.Repeats = 1
		return o
	}
	exp := func(name string, run func(seed int64) ([]runner.Cell, error)) runner.Experiment {
		return runner.Experiment{
			Name:        name,
			Fingerprint: fp,
			Run: func(seed int64) (*runner.Sample, error) {
				cells, err := run(seed)
				if err != nil {
					return nil, err
				}
				return &runner.Sample{Experiment: name, Seed: seed, Cells: cells}, nil
			},
		}
	}
	return []runner.Experiment{
		exp("fig1", func(seed int64) ([]runner.Cell, error) {
			res, err := Fig1()
			if err != nil {
				return nil, err
			}
			var cells []runner.Cell
			for _, job := range []string{"A", "B", "C"} {
				cells = append(cells,
					runner.Cell{Group: job, Key: "las", Value: res.LAS[job]},
					runner.Cell{Group: job, Key: "lasmq", Value: res.LASMQ[job]})
			}
			return cells, nil
		}),
		exp("fig3", func(seed int64) ([]runner.Cell, error) {
			res, err := Fig3(perSeed(seed))
			if err != nil {
				return nil, err
			}
			var cells []runner.Cell
			for i, c := range res.Cases {
				cells = append(cells, runner.Cell{
					Group: fmt.Sprintf("case%d", i+1), Key: "norm", Value: c,
				})
			}
			return cells, nil
		}),
		exp("fig5", func(seed int64) ([]runner.Cell, error) {
			res, err := Fig5(perSeed(seed))
			if err != nil {
				return nil, err
			}
			return clusterCells(res), nil
		}),
		exp("fig6", func(seed int64) ([]runner.Cell, error) {
			res, err := Fig6(perSeed(seed))
			if err != nil {
				return nil, err
			}
			return clusterCells(res), nil
		}),
		exp("fig7a", func(seed int64) ([]runner.Cell, error) {
			res, err := Fig7HeavyTailed(perSeed(seed))
			if err != nil {
				return nil, err
			}
			return traceCells(res), nil
		}),
		exp("fig7b", func(seed int64) ([]runner.Cell, error) {
			res, err := Fig7Uniform(perSeed(seed))
			if err != nil {
				return nil, err
			}
			return traceCells(res), nil
		}),
		exp("fig8a", func(seed int64) ([]runner.Cell, error) {
			res, err := Fig8Queues(perSeed(seed))
			if err != nil {
				return nil, err
			}
			var cells []runner.Cell
			for _, k := range sortedKeysI(res.Normalized) {
				cells = append(cells, runner.Cell{
					Group: fmt.Sprintf("k=%d", k), Key: "norm", Value: res.Normalized[k],
				})
			}
			return cells, nil
		}),
		exp("fig8b", func(seed int64) ([]runner.Cell, error) {
			res, err := Fig8Thresholds(perSeed(seed))
			if err != nil {
				return nil, err
			}
			var cells []runner.Cell
			for _, alpha := range sortedKeysF(res.Normalized) {
				cells = append(cells, runner.Cell{
					Group: fmt.Sprintf("alpha0=%g", alpha), Key: "norm", Value: res.Normalized[alpha],
				})
			}
			return cells, nil
		}),
		exp("sjf-error", func(seed int64) ([]runner.Cell, error) {
			res, err := MotivationSJFError(perSeed(seed))
			if err != nil {
				return nil, err
			}
			cells := []runner.Cell{
				{Group: "SJF-oracle", Key: "mean", Value: res.Oracle},
				{Group: "LAS_MQ", Key: "mean", Value: res.LASMQ},
			}
			for _, f := range sortedKeysF(res.SJF) {
				cells = append(cells, runner.Cell{
					Group: fmt.Sprintf("SJF-x%g", f), Key: "mean", Value: res.SJF[f],
				})
			}
			return cells, nil
		}),
		exp("weights", func(seed int64) ([]runner.Cell, error) {
			res, err := AblationWeights(perSeed(seed))
			if err != nil {
				return nil, err
			}
			var cells []runner.Cell
			for _, decay := range sortedKeysF(res) {
				cells = append(cells, runner.Cell{
					Group: fmt.Sprintf("decay=%g", decay), Key: "norm", Value: res[decay],
				})
			}
			return cells, nil
		}),
		exp("adaptive", func(seed int64) ([]runner.Cell, error) {
			res, err := Adaptive(perSeed(seed))
			if err != nil {
				return nil, err
			}
			return []runner.Cell{
				{Group: "tuned", Key: "mean", Value: res.Tuned},
				{Group: "mistuned", Key: "mean", Value: res.Mistuned},
				{Group: "adaptive", Key: "mean", Value: res.Adaptive},
				{Group: "adaptive", Key: "refits", Value: float64(res.Refits)},
			}, nil
		}),
		exp("tradeoff", func(seed int64) ([]runner.Cell, error) {
			points, err := Tradeoff(perSeed(seed))
			if err != nil {
				return nil, err
			}
			var cells []runner.Cell
			for _, p := range points {
				g := fmt.Sprintf("theta=%g", p.Theta)
				cells = append(cells,
					runner.Cell{Group: g, Key: "mean", Value: p.MeanResponse},
					runner.Cell{Group: g, Key: "p99", Value: p.P99Response},
					runner.Cell{Group: g, Key: "jain", Value: p.JainIndex})
			}
			return cells, nil
		}),
		exp("geo", func(seed int64) ([]runner.Cell, error) {
			res, err := Geo(perSeed(seed))
			if err != nil {
				return nil, err
			}
			labels := make([]string, 0, len(res.Mean))
			for label := range res.Mean {
				labels = append(labels, label)
			}
			sort.Strings(labels)
			var cells []runner.Cell
			for _, label := range labels {
				cells = append(cells, runner.Cell{Group: label, Key: "mean", Value: res.Mean[label]})
			}
			return cells, nil
		}),
		exp("price-of-obliviousness", func(seed int64) ([]runner.Cell, error) {
			res, err := PriceOfObliviousness(perSeed(seed))
			if err != nil {
				return nil, err
			}
			var cells []runner.Cell
			for _, name := range PricePolicyOrder {
				s := stats.Summarize(res.Responses[name])
				cells = append(cells,
					runner.Cell{Group: name, Key: "mean", Value: res.Mean[name]},
					runner.Cell{Group: name, Key: "norm", Value: res.Normalized[name]},
					runner.Cell{Group: name, Key: "p50", Value: s.P50},
					runner.Cell{Group: name, Key: "p95", Value: s.P95},
					runner.Cell{Group: name, Key: "p99", Value: s.P99})
			}
			return cells, nil
		}),
		exp("scale-100k", func(seed int64) ([]runner.Cell, error) {
			res, err := Scale100k(perSeed(seed))
			if err != nil {
				return nil, err
			}
			return traceCells(res), nil
		}),
		exp("scale-1m", func(seed int64) ([]runner.Cell, error) {
			res, err := Scale1M(perSeed(seed))
			if err != nil {
				return nil, err
			}
			return traceCells(res), nil
		}),
		exp("scale-10m", func(seed int64) ([]runner.Cell, error) {
			res, err := Scale10M(perSeed(seed))
			if err != nil {
				return nil, err
			}
			return traceCells(res), nil
		}),
		exp("scale-1m-engine", func(seed int64) ([]runner.Cell, error) {
			res, err := Scale1MEngine(perSeed(seed))
			if err != nil {
				return nil, err
			}
			return traceCells(res), nil
		}),
		exp("scale-10m-engine", func(seed int64) ([]runner.Cell, error) {
			res, err := Scale10MEngine(perSeed(seed))
			if err != nil {
				return nil, err
			}
			return traceCells(res), nil
		}),
	}
}

// clusterCells flattens a ClusterResult (Fig. 5/6) into metric cells:
// per-bin and overall means, the normalized ratio, and the slowdown tail.
func clusterCells(res *ClusterResult) []runner.Cell {
	var cells []runner.Cell
	for _, name := range PolicyOrder {
		ps := res.ByPolicy[name]
		for bin := 1; bin <= 4; bin++ {
			cells = append(cells, runner.Cell{
				Group: name, Key: fmt.Sprintf("bin%d", bin), Value: ps.BinMeans[bin],
			})
		}
		s := stats.Summarize(ps.Slowdowns)
		r := stats.Summarize(ps.Responses)
		cells = append(cells,
			runner.Cell{Group: name, Key: "all", Value: ps.MeanResponse},
			runner.Cell{Group: name, Key: "norm", Value: res.Normalized[name]},
			runner.Cell{Group: name, Key: "p50", Value: r.P50},
			runner.Cell{Group: name, Key: "p95", Value: r.P95},
			runner.Cell{Group: name, Key: "p99", Value: r.P99},
			runner.Cell{Group: name, Key: "slowdown_mean", Value: s.Mean},
			runner.Cell{Group: name, Key: "slowdown_p99", Value: s.P99},
			runner.Cell{Group: name, Key: "jain", Value: stats.JainIndex(ps.Slowdowns)})
	}
	return cells
}

// traceCells flattens a TraceResult (Fig. 7) into metric cells. Response
// percentiles appear only where the experiment retained raw responses — the
// streamed scale tiers report means alone so their cell sets stay identical
// across retention policies.
func traceCells(res *TraceResult) []runner.Cell {
	var cells []runner.Cell
	for _, name := range PolicyOrder {
		cells = append(cells,
			runner.Cell{Group: name, Key: "mean", Value: res.Mean[name]},
			runner.Cell{Group: name, Key: "norm", Value: res.Normalized[name]})
		if rs := res.Responses[name]; len(rs) > 0 {
			s := stats.Summarize(rs)
			cells = append(cells,
				runner.Cell{Group: name, Key: "p50", Value: s.P50},
				runner.Cell{Group: name, Key: "p95", Value: s.P95},
				runner.Cell{Group: name, Key: "p99", Value: s.P99})
		}
	}
	return cells
}

// RegistryNames returns the registered experiment names in reporting order.
func RegistryNames() []string {
	return []string{
		"fig1", "fig3", "fig5", "fig6", "fig7a", "fig7b", "fig8a", "fig8b",
		"sjf-error", "weights", "adaptive", "tradeoff", "geo",
		"price-of-obliviousness", "scale-100k", "scale-1m", "scale-10m",
		"scale-1m-engine", "scale-10m-engine",
	}
}

// SelectRegistry filters the registry down to the named experiments,
// preserving registration order; an empty names list selects everything.
func SelectRegistry(opts Options, names ...string) ([]runner.Experiment, error) {
	all := Registry(opts)
	if len(names) == 0 {
		return all, nil
	}
	want := make(map[string]bool, len(names))
	for _, n := range names {
		want[n] = true
	}
	var out []runner.Experiment
	for _, e := range all {
		if want[e.Name] {
			out = append(out, e)
			delete(want, e.Name)
		}
	}
	for _, n := range names {
		if want[n] {
			return nil, fmt.Errorf("experiments: unknown experiment %q (valid: %s)",
				n, strings.Join(RegistryNames(), ", "))
		}
	}
	return out, nil
}
