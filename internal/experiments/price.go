package experiments

import (
	"fmt"
	"io"
	"math"

	"lasmq/internal/core"
	"lasmq/internal/dist"
	"lasmq/internal/fluid"
	"lasmq/internal/sched"
	"lasmq/internal/stats"
	"lasmq/internal/workload"
)

// The price-of-obliviousness experiment (ROADMAP open item 4) measures what
// LAS_MQ gives up by knowing nothing a priori: it lines the paper's policies
// up against the theory-grounded baselines on one axis, from the clairvoyant
// optimum down to FIFO —
//
//	SRPT      knows exact remaining sizes (clairvoyant optimum),
//	GITTINS   knows the service distribution (optimal non-anticipating),
//	LAS_MQ    knows nothing (the paper's policy),
//	LAS       knows nothing,
//	PS        knows nothing, shares blindly,
//	FIFO      knows nothing, never preempts.
//
// The workload is the Table-I mix as a fluid trace: each job's size is its
// type's two-stage total (map + reduce stage totals with lognormal skew per
// stage), so sizes form per-type clusters — near-deterministic within a type,
// heavy-tailed across types (WordCount is ~90x TeraGen). Arrivals reproduce
// the paper's own testbed regime: Poisson submissions whose offered load
// exceeds capacity (Sec. V submits 100 jobs at a mean 80 s interval into 120
// containers, an offered load over 2), so the run is a congested transient
// that drains after the last arrival rather than a steady-state queue. That
// congested clustered shape is exactly where the gap hierarchy shows: small
// jobs that arrive mid-backlog preempt under every attained-service policy
// but must share under PS, which puts LAS and LAS_MQ ahead of PS; within a
// co-present cluster of near-equal jobs LAS degrades to processor sharing
// (synchronized completions) while LAS_MQ's FIFO-within-queue drains the
// cluster in arrival order, which puts LAS_MQ ahead of LAS; and Gittins —
// whose index *increases* with attained service within a near-deterministic
// cluster — recovers most of SRPT's advantage from the distribution alone.

// PricePolicyOrder is the reporting order, best (most-informed) first — the
// order the mean response times are expected to rank in.
var PricePolicyOrder = []string{PolicySRPT, PolicyGittins, PolicyLASMQ, PolicyLAS, PolicyPS, PolicyFIFO}

// Baseline policy names introduced by the price-of-obliviousness experiment.
const (
	PolicySRPT    = "SRPT"
	PolicyGittins = "GITTINS"
	PolicyPS      = "PS"
)

// priceStageSigma is the lognormal shape of per-stage total-service skew:
// stage totals are sums of many task durations, so their coefficient of
// variation is small.
const priceStageSigma = 0.15

// priceMixRepeat multiplies the Table-I per-type counts (100 jobs x 3 = 300
// jobs), enough arrivals for the ranking to be stable at a fixed seed while
// keeping a replicated sweep fast.
const priceMixRepeat = 3

// priceCapacity and priceLoad pin the simulated cluster: the testbed's 120
// containers at the testbed's offered load — the paper's submission schedule
// (mean job size 20372 container-seconds arriving every 80 s into 120
// containers) offers ~2.1x capacity, a deliberate congested transient.
const (
	priceCapacity = 120.0
	priceLoad     = 2.12
)

// priceFirstThreshold and priceStep place the LAS_MQ thresholds so each
// Table-I size cluster completes in its own queue (boundaries 2000, 6000,
// 18000, 54000, 162000 container-seconds straddle the six per-type totals).
// Cluster isolation is what lets FIFO-within-queue drain a cluster in
// arrival order instead of a larger straggler blocking a queue it shares
// with smaller clusters.
const (
	priceFirstThreshold = 2000.0
	priceStep           = 3.0
)

// PriceResult reports the price-of-obliviousness sweep.
type PriceResult struct {
	// Mean is the average response time per policy.
	Mean map[string]float64
	// Normalized is each policy's mean over PS's (the oblivious sharing
	// reference): < 1 beats blind sharing, > 1 pays for obliviousness.
	Normalized map[string]float64
	// Responses retains the per-job response times per policy: the
	// information hierarchy shows sharpest in the tail, so the sweep
	// reports percentiles alongside the means.
	Responses map[string][]float64
}

// priceStageTotals returns a type's expected map-stage and reduce-stage
// totals in container-seconds (reduce tasks occupy ReduceContainers each).
func priceStageTotals(jt workload.JobType) (mapTot, redTot float64) {
	return float64(jt.Maps) * jt.MapMean,
		float64(jt.Reduces) * jt.ReduceMean * workload.ReduceContainers
}

// priceTrace synthesizes the Table-I fluid trace: per-type clusters of
// two-stage sizes, Poisson arrivals at the configured load, width capped at
// the type's peak container demand.
func priceTrace(types []workload.JobType, seed int64) ([]fluid.JobSpec, error) {
	r := dist.New(seed)
	var order []int
	for ti, jt := range types {
		for c := 0; c < jt.Count*priceMixRepeat; c++ {
			order = append(order, ti)
		}
	}
	r.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })

	// Offered load rho = meanSize / (meanInterval * capacity); TotalService
	// covers one copy of the mix, the trace holds priceMixRepeat copies.
	meanSize := workload.TotalService(types) * float64(priceMixRepeat) / float64(len(order))
	arrivals, err := dist.NewPoissonProcess(r, meanSize/(priceLoad*priceCapacity))
	if err != nil {
		return nil, err
	}
	specs := make([]fluid.JobSpec, len(order))
	for i, ti := range order {
		jt := types[ti]
		mapTot, redTot := priceStageTotals(jt)
		size := dist.LognormalMean(r, mapTot, priceStageSigma)
		if redTot > 0 {
			size += dist.LognormalMean(r, redTot, priceStageSigma)
		}
		width := float64(jt.Maps)
		if w := float64(jt.Reduces * workload.ReduceContainers); w > width {
			width = w
		}
		specs[i] = fluid.JobSpec{
			ID:       i + 1,
			Arrival:  arrivals.Next(),
			Size:     size,
			Width:    width,
			Priority: 1,
		}
	}
	return specs, nil
}

// PriceGittinsModel builds the service-distribution oracle the Gittins
// baseline schedules from: a mixture over Table-I types of the numeric
// convolution of the two per-stage lognormal totals — the distribution
// knowledge a production scheduler could fit from historical runs without
// seeing any individual job's size.
func PriceGittinsModel(types []workload.JobType) (dist.Service, error) {
	parts := make([]dist.Service, 0, len(types))
	weights := make([]float64, 0, len(types))
	for _, jt := range types {
		mapTot, redTot := priceStageTotals(jt)
		mapS := dist.LognormalMeanService(mapTot, priceStageSigma)
		var part dist.Service = mapS
		if redTot > 0 {
			part = dist.Convolve(mapS, dist.LognormalMeanService(redTot, priceStageSigma), 512)
		}
		parts = append(parts, part)
		weights = append(weights, float64(jt.Count))
	}
	return dist.NewMixture(parts, weights)
}

// PriceOfObliviousness runs the sweep. The LAS_MQ configuration is the
// simulation one (k = 10 FIFO queues, default weight decay) with the
// cluster-isolating thresholds above.
func PriceOfObliviousness(opts Options) (*PriceResult, error) {
	opts = opts.Defaults()
	types := workload.TableI()
	specs, err := priceTrace(types, opts.Seed)
	if err != nil {
		return nil, err
	}
	model, err := PriceGittinsModel(types)
	if err != nil {
		return nil, err
	}
	fcfg := fluid.Config{Capacity: priceCapacity, TaskDuration: 1, Probe: opts.Probe}

	res := &PriceResult{
		Mean:       make(map[string]float64, len(PricePolicyOrder)),
		Normalized: make(map[string]float64, len(PricePolicyOrder)),
		Responses:  make(map[string][]float64, len(PricePolicyOrder)),
	}
	for _, name := range PricePolicyOrder {
		var policy sched.Scheduler
		switch name {
		case PolicySRPT:
			policy = sched.NewSRPT()
		case PolicyGittins:
			policy = sched.NewGittins(model)
		case PolicyPS:
			policy = sched.NewPS()
		case PolicyLASMQ:
			cfg := traceLASMQConfig()
			cfg.FirstThreshold = priceFirstThreshold
			cfg.Step = priceStep
			mq, err := core.New(cfg)
			if err != nil {
				return nil, err
			}
			policy = mq
		default:
			p, err := newPolicy(name, traceLASMQ)
			if err != nil {
				return nil, err
			}
			policy = p
		}
		run, err := fluid.Run(specs, policy, fcfg)
		if err != nil {
			return nil, fmt.Errorf("price-of-obliviousness %s: %w", name, err)
		}
		res.Mean[name] = run.MeanResponseTime()
		res.Responses[name] = run.ResponseTimes()
	}
	ps := res.Mean[PolicyPS]
	for _, name := range PricePolicyOrder {
		if m := res.Mean[name]; m > 0 {
			res.Normalized[name] = m / ps
		} else {
			res.Normalized[name] = math.NaN()
		}
	}
	return res, nil
}

// Table renders the sweep, most-informed policy first; the tail columns are
// where the information hierarchy separates hardest.
func (r *PriceResult) Table() string {
	header := []string{"policy", "mean response", "norm(vs PS)", "p50", "p95", "p99"}
	var rows [][]string
	for _, name := range PricePolicyOrder {
		s := stats.Summarize(r.Responses[name])
		rows = append(rows, []string{
			name,
			fmt.Sprintf("%.4g", r.Mean[name]),
			fmt.Sprintf("%.3f", r.Normalized[name]),
			fmt.Sprintf("%.4g", s.P50),
			fmt.Sprintf("%.4g", s.P95),
			fmt.Sprintf("%.4g", s.P99),
		})
	}
	return renderTable(header, rows)
}

// WriteCSV emits the sweep in rank order: policy, mean response, the ratio
// against PS, and the response-time tail — where the information hierarchy
// separates hardest.
func (r *PriceResult) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "policy,mean_response,normalized_vs_ps"+percentileHeader); err != nil {
		return err
	}
	for _, name := range PricePolicyOrder {
		if _, err := fmt.Fprintf(w, "%s,%g,%g%s\n",
			name, r.Mean[name], r.Normalized[name], percentileFields(r.Responses[name])); err != nil {
			return err
		}
	}
	return nil
}
