package experiments

import (
	"io"
	"reflect"
	"testing"

	"lasmq/internal/obs"
)

// TestProbedMatchesUnprobedAcrossRegistry is the telemetry layer's
// end-to-end differential gate: every registered experiment, run at small
// scale over several seeds, must produce identical metric cells with and
// without a probe attached (every sink type fanned in). Options.Probe is
// deliberately excluded from the replication cache fingerprint; this test
// is what makes that exclusion sound.
func TestProbedMatchesUnprobedAcrossRegistry(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the whole registry twice per seed")
	}
	base := Options{TraceJobs: 600, UniformJobs: 120, ScaleJobs: 800, Scale1MJobs: 1600, Scale10MJobs: 1600, Shards: 4}
	for i, name := range RegistryNames() {
		i, name := i, name
		t.Run(name, func(t *testing.T) {
			for seed := int64(1); seed <= 2; seed++ {
				plainSample, err := Registry(base)[i].Run(seed)
				if err != nil {
					t.Fatalf("seed %d unprobed: %v", seed, err)
				}
				probed := base
				probed.Probe = obs.Multi(obs.NewCounters(), obs.NewJSONL(io.Discard), obs.NewChromeTrace(),
					obs.NewRing(1<<12), obs.NewHistograms(), obs.NewSeries(50, 0))
				probedSample, err := Registry(probed)[i].Run(seed)
				if err != nil {
					t.Fatalf("seed %d probed: %v", seed, err)
				}
				if !reflect.DeepEqual(plainSample.Cells, probedSample.Cells) {
					t.Fatalf("seed %d: attaching a probe changed the experiment's cells\n plain: %+v\n probed: %+v",
						seed, plainSample.Cells, probedSample.Cells)
				}
			}
		})
	}
}
