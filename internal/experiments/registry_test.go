package experiments

import (
	"bytes"
	"encoding/json"
	"testing"

	"lasmq/internal/runner"
)

func TestRegistryNamesMatchTable(t *testing.T) {
	exps := Registry(Options{})
	names := RegistryNames()
	if len(exps) != len(names) {
		t.Fatalf("registry has %d entries, names list %d", len(exps), len(names))
	}
	for i, e := range exps {
		if e.Name != names[i] {
			t.Errorf("entry %d is %q, names list says %q", i, e.Name, names[i])
		}
		if e.Run == nil {
			t.Errorf("entry %q has nil Run", e.Name)
		}
		if e.Fingerprint == "" {
			t.Errorf("entry %q has empty fingerprint", e.Name)
		}
	}
}

func TestSelectRegistry(t *testing.T) {
	sel, err := SelectRegistry(Options{}, "fig5", "fig8a")
	if err != nil {
		t.Fatal(err)
	}
	if len(sel) != 2 || sel[0].Name != "fig5" || sel[1].Name != "fig8a" {
		t.Errorf("selection = %v", sel)
	}
	if _, err := SelectRegistry(Options{}, "nope"); err == nil {
		t.Error("unknown experiment accepted")
	}
	all, err := SelectRegistry(Options{})
	if err != nil || len(all) != len(RegistryNames()) {
		t.Errorf("empty selection: %d entries, err %v", len(all), err)
	}
}

// TestRegistryFingerprintTracksScale: cache keys must change when the scale
// knobs do, or cells from different scales would collide.
func TestRegistryFingerprintTracksScale(t *testing.T) {
	a := Registry(Options{TraceJobs: 1000})[0].Fingerprint
	b := Registry(Options{TraceJobs: 2000})[0].Fingerprint
	if a == b {
		t.Errorf("fingerprint %q ignores trace length", a)
	}
}

// TestReplicatedDeterminismRealExperiments is the determinism regression on
// the real merge path: the same seeds through real (fluid-simulator-backed)
// experiments must produce byte-identical merged reports with -workers 1 and
// -workers 8. This catches map-iteration order leaking into cells as well as
// scheduling nondeterminism in the pool.
func TestReplicatedDeterminismRealExperiments(t *testing.T) {
	opts := Options{TraceJobs: 600, UniformJobs: 120}
	var blobs [][]byte
	for _, workers := range []int{1, 8} {
		exps, err := SelectRegistry(opts, "fig1", "fig7a", "fig8b")
		if err != nil {
			t.Fatal(err)
		}
		report, err := runner.Run(exps, runner.Options{Seeds: 3, BaseSeed: 1, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		blob, err := json.Marshal(report)
		if err != nil {
			t.Fatal(err)
		}
		blobs = append(blobs, blob)
	}
	if !bytes.Equal(blobs[0], blobs[1]) {
		t.Errorf("replicated results differ between -workers 1 and -workers 8")
	}
}

// TestReplicatedClusterCells spot-checks the Fig. 5 cell flattening: every
// policy must expose bins, overall mean, normalized ratio and slowdown
// cells, and FAIR's normalized cell is 1 by construction.
func TestReplicatedClusterCells(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster experiment in -short mode")
	}
	exps, err := SelectRegistry(Options{}, "fig5")
	if err != nil {
		t.Fatal(err)
	}
	report, err := runner.Run(exps, runner.Options{Seeds: 1, BaseSeed: 1, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	a := report.Aggregate("fig5")
	if a == nil {
		t.Fatal("fig5 aggregate missing")
	}
	for _, name := range PolicyOrder {
		for _, key := range []string{"bin1", "bin2", "bin3", "bin4", "all", "norm", "slowdown_mean", "slowdown_p99", "jain"} {
			if a.Cell(name, key) == nil {
				t.Errorf("cell (%s, %s) missing", name, key)
			}
		}
	}
	fair := a.Cell(PolicyFair, "norm")
	if fair == nil || fair.Stats.Mean != 1 {
		t.Errorf("FAIR normalized = %+v, want exactly 1", fair)
	}
	mq := a.Cell(PolicyLASMQ, "norm")
	if mq == nil || mq.Stats.Mean <= 1 {
		t.Errorf("LAS_MQ normalized = %+v, want > 1 (beats Fair)", mq)
	}
}
