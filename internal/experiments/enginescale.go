package experiments

import (
	"fmt"

	"lasmq/internal/core"
	"lasmq/internal/engine"
	"lasmq/internal/sched"
	"lasmq/internal/stats"
	"lasmq/internal/substrate"
	"lasmq/internal/trace"
	"lasmq/internal/workload"
)

// Scale1MEngine is scale-1m on the task-level engine substrate: the same
// streamed heavy-tailed trace, but every flat trace job is converted on the
// fly into a structured map→reduce job (workload.NewStageSource) and
// simulated task by task — discrete attempts, chaos failures, stragglers and
// speculation included — across opts.Shards independent 20-container
// sub-clusters (engine.RunSharded). The fluid tier answers "what does the
// policy do to the fluid limit of this trace"; this tier answers the same
// question where attempt bookkeeping and chaos live, at a per-job cost an
// order of magnitude higher — which is exactly why it shards.
func Scale1MEngine(opts Options) (*TraceResult, error) {
	opts = opts.Defaults()
	return scaleEngineStreamed(opts, opts.Scale1MJobs, "scale-1m-engine")
}

// Scale10MEngine is scale-1m-engine with the trace length turned up to ten
// million jobs: the flagship engine scale-out tier.
// BenchmarkScale10MEngineSharded records its wall-clock and peak heap in
// BENCH_engine.json.
func Scale10MEngine(opts Options) (*TraceResult, error) {
	opts = opts.Defaults()
	return scaleEngineStreamed(opts, opts.Scale10MJobs, "scale-10m-engine")
}

// engineScaleConfig is the per-run engine configuration of the engine scale
// tiers: each of opts.Shards sub-clusters is a 20-container system with the
// paper's 30-job admission cap and light chaos (1% failures, 2% stragglers,
// speculation on), so the tier exercises the attempt/re-queue/kill paths the
// fluid substrate cannot.
func engineScaleConfig(opts Options) engine.ShardedConfig {
	cfg := engine.DefaultConfig()
	cfg.Containers = 20 * opts.Shards
	cfg.MaxRunningJobs = 30
	cfg.FailureProb = 0.01
	cfg.StragglerProb = 0.02
	cfg.StragglerFactor = 3
	cfg.Speculation = true
	cfg.Seed = opts.Seed
	cfg.Probe = opts.Probe
	return engine.ShardedConfig{Config: cfg, Shards: opts.Shards, Workers: opts.ShardWorkers}
}

// engineScaleLASMQ configures LAS_MQ for the engine scale tiers: trace job
// sizes are normalized (mean ~20 container-seconds), so the first demotion
// threshold drops to 1 as in the trace simulations; stage awareness and
// demand ordering stay on — unlike flat fluid jobs, engine jobs have real
// stage progress for the scheduler to see.
func engineScaleLASMQ() (*core.LASMQ, error) {
	cfg := core.DefaultConfig()
	cfg.FirstThreshold = 1
	return core.New(cfg)
}

// scaleEngineStreamed runs one engine scale tier: jobs total jobs across
// opts.Shards independent 20-container sub-clusters, every shard pulling its
// stride of a per-seed deterministic flat-trace generator and staging it
// on the fly.
func scaleEngineStreamed(opts Options, jobs int, label string) (*TraceResult, error) {
	tcfg := trace.DefaultFacebookConfig()
	tcfg.Jobs = jobs
	tcfg.Seed = opts.Seed
	// Global capacity scales with the shard count so every sub-cluster is
	// the Fig. 7a system: 20 containers at load 0.9.
	tcfg.Capacity = 20 * float64(opts.Shards)
	scfg := engineScaleConfig(opts)
	res := &TraceResult{
		Mean:       make(map[string]float64, len(PolicyOrder)),
		Normalized: make(map[string]float64, len(PolicyOrder)),
	}
	for _, name := range PolicyOrder {
		newSource := func(shard int) (engine.Source, error) {
			src, err := trace.NewFacebookSource(tcfg)
			if err != nil {
				return nil, err
			}
			return workload.NewStageSource(
				substrate.Strided[substrate.JobSpec](src, shard, scfg.Shards),
				workload.DefaultStageConfig())
		}
		newPol := func() (sched.Scheduler, error) { return newPolicy(name, engineScaleLASMQ) }
		run, err := engine.RunSharded(newSource, newPol, scfg)
		if err != nil {
			return nil, fmt.Errorf("%s %s: %w", label, name, err)
		}
		res.Mean[name] = run.MeanResponseTime()
	}
	fair := res.Mean[PolicyFair]
	for _, name := range PolicyOrder {
		res.Normalized[name] = stats.Normalized(fair, res.Mean[name])
	}
	return res, nil
}
