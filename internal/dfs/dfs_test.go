package dfs

import (
	"testing"
	"testing/quick"
)

func mustStore(t *testing.T, cfg Config) *Store {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestConfigValidation(t *testing.T) {
	mutations := []func(*Config){
		func(c *Config) { c.Nodes = 0 },
		func(c *Config) { c.BlockSize = 0 },
		func(c *Config) { c.Replication = 0 },
		func(c *Config) { c.Replication = c.Nodes + 1 },
	}
	for i, mutate := range mutations {
		cfg := DefaultConfig()
		mutate(&cfg)
		if _, err := New(cfg); err == nil {
			t.Errorf("mutation %d: expected validation error", i)
		}
	}
}

func TestAddFileSplitsIntoBlocks(t *testing.T) {
	cfg := Config{Nodes: 4, BlockSize: 128, Replication: 2}
	s := mustStore(t, cfg)
	blocks, err := s.AddFile("input", 300)
	if err != nil {
		t.Fatal(err)
	}
	if len(blocks) != 3 {
		t.Fatalf("got %d blocks, want 3 (300 bytes / 128)", len(blocks))
	}
	if blocks[0].Size != 128 || blocks[1].Size != 128 || blocks[2].Size != 44 {
		t.Errorf("block sizes = %d,%d,%d, want 128,128,44",
			blocks[0].Size, blocks[1].Size, blocks[2].Size)
	}
	for i, b := range blocks {
		if b.Index != i || b.File != "input" {
			t.Errorf("block %d metadata = %+v", i, b)
		}
		if len(b.Replicas) != 2 {
			t.Errorf("block %d has %d replicas, want 2", i, len(b.Replicas))
		}
		seen := make(map[int]bool)
		for _, n := range b.Replicas {
			if n < 0 || n >= cfg.Nodes {
				t.Errorf("block %d on unknown node %d", i, n)
			}
			if seen[n] {
				t.Errorf("block %d replicated twice on node %d", i, n)
			}
			seen[n] = true
		}
	}
	if s.Splits("input") != 3 {
		t.Errorf("Splits = %d, want 3", s.Splits("input"))
	}
}

func TestAddFileValidation(t *testing.T) {
	s := mustStore(t, DefaultConfig())
	if _, err := s.AddFile("x", 0); err == nil {
		t.Error("expected error for empty file")
	}
	if _, err := s.AddFile("x", 100); err != nil {
		t.Fatal(err)
	}
	if _, err := s.AddFile("x", 100); err == nil {
		t.Error("expected error for duplicate file")
	}
}

func TestBalancedPlacement(t *testing.T) {
	cfg := Config{Nodes: 4, BlockSize: 1, Replication: 2}
	s := mustStore(t, cfg)
	if _, err := s.AddFile("big", 100); err != nil { // 100 blocks x 2 replicas
		t.Fatal(err)
	}
	if imb := s.Imbalance(); imb > 1.1 {
		t.Errorf("imbalance = %v, want near 1 for equal blocks", imb)
	}
	total := int64(0)
	for _, b := range s.BytesOn() {
		total += b
	}
	if total != 200 {
		t.Errorf("total stored bytes = %d, want 200 (100 blocks x 2)", total)
	}
}

func TestHoldersAndLocality(t *testing.T) {
	cfg := Config{Nodes: 3, BlockSize: 10, Replication: 2}
	s := mustStore(t, cfg)
	if _, err := s.AddFile("f", 25); err != nil {
		t.Fatal(err)
	}
	holders := s.HoldersOf("f", 0)
	if len(holders) != 2 {
		t.Fatalf("holders = %v", holders)
	}
	for _, n := range holders {
		if !s.IsLocal("f", 0, n) {
			t.Errorf("IsLocal false for holder %d", n)
		}
	}
	for n := 0; n < 3; n++ {
		isHolder := n == holders[0] || n == holders[1]
		if s.IsLocal("f", 0, n) != isHolder {
			t.Errorf("IsLocal(%d) = %v", n, s.IsLocal("f", 0, n))
		}
	}
	if s.HoldersOf("f", 99) != nil {
		t.Error("holders of unknown block should be nil")
	}
	if s.HoldersOf("nope", 0) != nil {
		t.Error("holders of unknown file should be nil")
	}
}

func TestBlocksCopyIsolated(t *testing.T) {
	s := mustStore(t, Config{Nodes: 2, BlockSize: 10, Replication: 1})
	if _, err := s.AddFile("f", 10); err != nil {
		t.Fatal(err)
	}
	blocks := s.Blocks("f")
	blocks[0].Replicas[0] = 99
	if s.HoldersOf("f", 0)[0] == 99 {
		t.Error("mutating returned blocks leaked into the store")
	}
}

func TestPlacementPropertyReplicasDistinct(t *testing.T) {
	f := func(nFiles uint8, sizeRaw uint16) bool {
		cfg := Config{Nodes: 5, BlockSize: 64, Replication: 3}
		s, err := New(cfg)
		if err != nil {
			return false
		}
		for i := 0; i <= int(nFiles%10); i++ {
			size := int64(sizeRaw%2000) + 1
			blocks, err := s.AddFile(fileName(i), size)
			if err != nil {
				return false
			}
			var total int64
			for _, b := range blocks {
				total += b.Size
				if len(b.Replicas) != 3 {
					return false
				}
				seen := make(map[int]bool)
				for _, n := range b.Replicas {
					if n < 0 || n >= 5 || seen[n] {
						return false
					}
					seen[n] = true
				}
			}
			if total != size {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func fileName(i int) string { return "file-" + string(rune('a'+i)) }

func TestImbalanceEdgeCases(t *testing.T) {
	s := mustStore(t, Config{Nodes: 2, BlockSize: 10, Replication: 1})
	if got := s.Imbalance(); got != 1 {
		t.Errorf("empty store imbalance = %v, want 1", got)
	}
	if _, err := s.AddFile("f", 5); err != nil {
		t.Fatal(err)
	}
	// One block on one node, nothing on the other.
	if got := s.Imbalance(); got <= 1 {
		t.Errorf("imbalance = %v, want > 1 with one empty node", got)
	}
}
