// Package dfs is a miniature HDFS-like block store: files are split into
// fixed-size blocks, blocks are replicated across nodes with balanced
// placement, and clients ask which nodes hold a block so map tasks can run
// data-local — the paper's testbed ran HDFS with 128 MB blocks and
// replication factor 2, and its implementation derives the number of map
// tasks from the input's splits.
package dfs

import (
	"fmt"
	"sort"
)

// Config describes the store.
type Config struct {
	// Nodes is the number of datanodes.
	Nodes int
	// BlockSize is the block size in bytes (the paper's testbed: 128 MB).
	BlockSize int64
	// Replication is the number of replicas per block (the paper's
	// testbed: 2).
	Replication int
}

// DefaultConfig mirrors the paper's HDFS settings on a 4-node cluster.
func DefaultConfig() Config {
	return Config{Nodes: 4, BlockSize: 128 << 20, Replication: 2}
}

func (c *Config) validate() error {
	if c.Nodes <= 0 {
		return fmt.Errorf("dfs: nodes must be positive, got %d", c.Nodes)
	}
	if c.BlockSize <= 0 {
		return fmt.Errorf("dfs: block size must be positive, got %d", c.BlockSize)
	}
	if c.Replication <= 0 {
		return fmt.Errorf("dfs: replication must be positive, got %d", c.Replication)
	}
	if c.Replication > c.Nodes {
		return fmt.Errorf("dfs: replication %d exceeds node count %d", c.Replication, c.Nodes)
	}
	return nil
}

// Block identifies one block of a file.
type Block struct {
	File  string
	Index int
	// Size is the block's actual size (the last block may be short).
	Size int64
	// Replicas are the node indices holding the block.
	Replicas []int
}

// Store is the namenode: file → block → replica metadata. It is not safe
// for concurrent mutation; simulations populate it up front.
type Store struct {
	cfg    Config
	files  map[string][]Block
	perNod []int64 // bytes stored per node (for balanced placement)
}

// New returns an empty store.
func New(cfg Config) (*Store, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return &Store{
		cfg:    cfg,
		files:  make(map[string][]Block),
		perNod: make([]int64, cfg.Nodes),
	}, nil
}

// AddFile splits a file of the given size into blocks and places replicas,
// least-loaded nodes first (balanced placement). It returns the blocks.
func (s *Store) AddFile(name string, size int64) ([]Block, error) {
	if size <= 0 {
		return nil, fmt.Errorf("dfs: file %q has non-positive size %d", name, size)
	}
	if _, exists := s.files[name]; exists {
		return nil, fmt.Errorf("dfs: file %q already exists", name)
	}
	var blocks []Block
	for index, remaining := 0, size; remaining > 0; index++ {
		blockSize := s.cfg.BlockSize
		if remaining < blockSize {
			blockSize = remaining
		}
		remaining -= blockSize
		replicas := s.pickNodes(blockSize)
		blocks = append(blocks, Block{
			File:     name,
			Index:    index,
			Size:     blockSize,
			Replicas: replicas,
		})
	}
	s.files[name] = blocks
	return blocks, nil
}

// pickNodes chooses the Replication least-loaded nodes (ties by index) and
// accounts the stored bytes.
func (s *Store) pickNodes(blockSize int64) []int {
	type load struct {
		node  int
		bytes int64
	}
	loads := make([]load, s.cfg.Nodes)
	for i := range loads {
		loads[i] = load{node: i, bytes: s.perNod[i]}
	}
	sort.SliceStable(loads, func(i, j int) bool {
		if loads[i].bytes != loads[j].bytes {
			return loads[i].bytes < loads[j].bytes
		}
		return loads[i].node < loads[j].node
	})
	replicas := make([]int, 0, s.cfg.Replication)
	for i := 0; i < s.cfg.Replication; i++ {
		replicas = append(replicas, loads[i].node)
		s.perNod[loads[i].node] += blockSize
	}
	sort.Ints(replicas)
	return replicas
}

// Blocks returns a deep copy of a file's blocks (nil if unknown).
func (s *Store) Blocks(name string) []Block {
	blocks, ok := s.files[name]
	if !ok {
		return nil
	}
	out := make([]Block, len(blocks))
	for i, b := range blocks {
		out[i] = b
		out[i].Replicas = append([]int(nil), b.Replicas...)
	}
	return out
}

// Splits returns the number of blocks of a file — the paper's implementation
// derives the total number of map tasks "by examining the number of splits
// of the inputs".
func (s *Store) Splits(name string) int { return len(s.files[name]) }

// HoldersOf reports the nodes holding block index of the file, or nil.
func (s *Store) HoldersOf(name string, index int) []int {
	blocks := s.files[name]
	if index < 0 || index >= len(blocks) {
		return nil
	}
	out := make([]int, len(blocks[index].Replicas))
	copy(out, blocks[index].Replicas)
	return out
}

// IsLocal reports whether node holds a replica of the block.
func (s *Store) IsLocal(name string, index, node int) bool {
	for _, n := range s.HoldersOf(name, index) {
		if n == node {
			return true
		}
	}
	return false
}

// BytesOn reports the bytes stored per node (replicas counted).
func (s *Store) BytesOn() []int64 {
	out := make([]int64, len(s.perNod))
	copy(out, s.perNod)
	return out
}

// Imbalance reports max/min stored bytes across nodes (1 = perfectly
// balanced; +Inf if some node is empty while another is not).
func (s *Store) Imbalance() float64 {
	var minBytes, maxBytes int64 = -1, 0
	for _, b := range s.perNod {
		if b > maxBytes {
			maxBytes = b
		}
		if minBytes < 0 || b < minBytes {
			minBytes = b
		}
	}
	if maxBytes == 0 {
		return 1
	}
	if minBytes == 0 {
		return float64(maxBytes) // effectively unbounded; avoid Inf for callers
	}
	return float64(maxBytes) / float64(minBytes)
}
