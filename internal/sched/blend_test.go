package sched_test

import (
	"math"
	"testing"

	"lasmq/internal/sched"
)

func TestNewBlendValidation(t *testing.T) {
	if _, err := sched.NewBlend(nil, sched.NewFair(), 0.5); err == nil {
		t.Error("expected error for nil primary")
	}
	if _, err := sched.NewBlend(sched.NewLAS(), nil, 0.5); err == nil {
		t.Error("expected error for nil secondary")
	}
	if _, err := sched.NewBlend(sched.NewLAS(), sched.NewFair(), -0.1); err == nil {
		t.Error("expected error for theta < 0")
	}
	if _, err := sched.NewBlend(sched.NewLAS(), sched.NewFair(), 1.1); err == nil {
		t.Error("expected error for theta > 1")
	}
}

func TestBlendEndpoints(t *testing.T) {
	jobs := views(
		job(1, 1, 1, 0, 100),
		job(2, 2, 1, 500, 100),
	)
	las := sched.NewLAS()
	fair := sched.NewFair()

	pure, err := sched.NewBlend(las, fair, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := las.Assign(0, 50, jobs)
	got := pure.Assign(0, 50, jobs)
	for id := range want {
		if got[id] != want[id] {
			t.Errorf("theta=0: job %d got %v, want primary's %v", id, got[id], want[id])
		}
	}

	full, err := sched.NewBlend(las, fair, 1)
	if err != nil {
		t.Fatal(err)
	}
	want = fair.Assign(0, 50, jobs)
	got = full.Assign(0, 50, jobs)
	for id := range want {
		if got[id] != want[id] {
			t.Errorf("theta=1: job %d got %v, want secondary's %v", id, got[id], want[id])
		}
	}
}

func TestBlendConvexCombination(t *testing.T) {
	jobs := views(
		job(1, 1, 1, 0, 100),
		job(2, 2, 1, 500, 100),
	)
	las := sched.NewLAS()
	fair := sched.NewFair()
	b, err := sched.NewBlend(las, fair, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	la := las.Assign(0, 50, jobs)
	fa := fair.Assign(0, 50, jobs)
	got := b.Assign(0, 50, jobs)
	for _, j := range jobs {
		id := j.ID()
		want := 0.75*la[id] + 0.25*fa[id]
		if math.Abs(got[id]-want) > 1e-9 {
			t.Errorf("job %d got %v, want %v", id, got[id], want)
		}
	}
	if got.Total() > 50+1e-9 {
		t.Errorf("blend exceeds capacity: %v", got.Total())
	}
}

func TestBlendInvariants(t *testing.T) {
	jobs := views(
		job(1, 1, 3, 120, 40),
		job(2, 2, 1, 0, 90),
		job(3, 3, 5, 700, 10),
	)
	for _, theta := range []float64{0, 0.25, 0.5, 0.75, 1} {
		b, err := sched.NewBlend(sched.NewLAS(), sched.NewFair(), theta)
		if err != nil {
			t.Fatal(err)
		}
		alloc := b.Assign(0, 100, jobs)
		checkInvariants(t, b.Name(), 100, jobs, alloc)
	}
}

func TestBlendName(t *testing.T) {
	b, err := sched.NewBlend(sched.NewLAS(), sched.NewFair(), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if got := b.Name(); got != "BLEND(LAS,FAIR,0.50)" {
		t.Errorf("Name = %q", got)
	}
	if b.Theta() != 0.5 {
		t.Errorf("Theta = %v", b.Theta())
	}
}

func TestBlendHorizonDelegates(t *testing.T) {
	jobs := views(
		job(1, 1, 1, 0, 100),
		job(2, 2, 1, 50, 100),
	)
	las := sched.NewLAS()
	b, err := sched.NewBlend(las, sched.NewFair(), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	alloc := b.Assign(0, 10, jobs)
	h := b.Horizon(0, jobs, alloc)
	if math.IsInf(h, 1) || h <= 0 {
		t.Errorf("blend horizon = %v, want finite positive (LAS catch-up)", h)
	}
	// Fair-only blend: no hinter components -> +Inf.
	ff, err := sched.NewBlend(sched.NewFair(), sched.NewFIFO(), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if h := ff.Horizon(0, jobs, alloc); !math.IsInf(h, 1) {
		t.Errorf("hinterless blend horizon = %v, want +Inf", h)
	}
}
