package sched

// FIFO serves jobs strictly in admission order: the earliest-admitted job
// receives containers up to its full demand before any later job receives
// anything. This is the paper's worst-performing baseline on mixed job
// sizes because small jobs are blocked behind large ones.
//
// The scheduler carries sort scratch, so one instance must not be shared
// between concurrent simulation runs.
type FIFO struct {
	entries []viewEntry
}

// NewFIFO returns the FIFO baseline scheduler.
func NewFIFO() *FIFO { return &FIFO{} }

var (
	_ Scheduler        = (*FIFO)(nil)
	_ BufferedAssigner = (*FIFO)(nil)
)

// Name implements Scheduler.
func (f *FIFO) Name() string { return "FIFO" }

// Assign implements Scheduler.
func (f *FIFO) Assign(now float64, capacity float64, jobs []JobView) Assignment {
	out := make(Assignment, len(jobs))
	f.AssignInto(now, capacity, jobs, out)
	return out
}

// AssignInto implements BufferedAssigner.
func (f *FIFO) AssignInto(now float64, capacity float64, jobs []JobView, out Assignment) {
	clearAssignment(out)
	entries := buildEntries(&f.entries, jobs, func(j JobView) float64 { return float64(j.Seq()) })
	sortEntries(entries)
	fillInOrderInto(capacity, entries, out)
}
