package sched

import "sort"

// FIFO serves jobs strictly in admission order: the earliest-admitted job
// receives containers up to its full demand before any later job receives
// anything. This is the paper's worst-performing baseline on mixed job
// sizes because small jobs are blocked behind large ones.
type FIFO struct{}

// NewFIFO returns the FIFO baseline scheduler.
func NewFIFO() *FIFO { return &FIFO{} }

var _ Scheduler = (*FIFO)(nil)

// Name implements Scheduler.
func (f *FIFO) Name() string { return "FIFO" }

// Assign implements Scheduler.
func (f *FIFO) Assign(now float64, capacity float64, jobs []JobView) Assignment {
	ordered := append([]JobView(nil), jobs...)
	sort.SliceStable(ordered, func(i, j int) bool { return ordered[i].Seq() < ordered[j].Seq() })
	return fillInOrder(capacity, ordered)
}
