// Package sched defines the scheduling policy interface shared by the
// task-level cluster simulator (internal/engine) and the fluid trace
// simulator (internal/fluid), plus the baseline policies the paper compares
// against: FIFO, Fair, LAS, and SJF/SRTF (the motivation baselines that
// require a priori size information).
//
// A policy is pure: it observes a snapshot of runnable jobs and returns a
// container share per job. Engines are responsible for enforcing capacity,
// quantizing shares to whole containers where needed, and driving time.
package sched

// JobView is the scheduler-facing snapshot of one runnable job. Both
// simulation engines implement it.
type JobView interface {
	// ID uniquely identifies the job within a run.
	ID() int
	// Seq is the admission sequence number; lower means admitted earlier.
	// FIFO and all tie-breaks use Seq so runs are deterministic.
	Seq() int
	// Priority is the job priority (the paper draws integers in [1,5]);
	// the Fair scheduler shares capacity proportionally to it.
	Priority() int
	// Attained is the exact service consumed so far, in container-time units.
	Attained() float64
	// Estimated is the service estimate used for queue demotion: attained
	// service plus the stage-aware projection of the current stage when the
	// engine supports stage progress, otherwise equal to Attained.
	Estimated() float64
	// ReadyDemand is the number of containers the job can use right now
	// (ready tasks of the current stage, respecting stage dependencies).
	ReadyDemand() float64
	// RemainingDemand is the number of containers needed by all remaining
	// tasks of the current stage, including running ones. LAS_MQ orders jobs
	// within a queue by this value.
	RemainingDemand() float64
	// SizeHint is an a priori estimate of the job's total service, used only
	// by the SJF baseline. Engines may perturb it to model estimation error.
	SizeHint() float64
	// RemainingSizeHint estimates the job's remaining service, used only by
	// the SRTF baseline.
	RemainingSizeHint() float64
}

// Assignment maps job ID to the container share granted this round.
// Shares are fractional; the task-level engine quantizes them.
type Assignment map[int]float64

// Scheduler decides how cluster capacity is split among runnable jobs.
type Scheduler interface {
	// Name identifies the policy in reports (e.g. "LAS_MQ", "FAIR").
	Name() string
	// Assign returns the share of capacity granted to each job. The sum of
	// shares must not exceed capacity and no job may receive more than its
	// ReadyDemand.
	Assign(now float64, capacity float64, jobs []JobView) Assignment
}

// Hinter is implemented by policies whose decision can change before the
// next external event (arrival or completion). The fluid engine uses the
// horizon to re-invoke the scheduler exactly when needed, e.g. at LAS
// catch-up points or LAS_MQ queue-threshold crossings.
type Hinter interface {
	// Horizon returns the earliest virtual time strictly after now at which
	// the policy's decision could change given the allocation it just
	// returned, or +Inf if only external events can change it.
	Horizon(now float64, jobs []JobView, alloc Assignment) float64
}

// Total returns the sum of all shares in the assignment.
func (a Assignment) Total() float64 {
	var sum float64
	for _, v := range a { // range-ok: diagnostic sum; never feeds scheduling decisions
		sum += v
	}
	return sum
}
