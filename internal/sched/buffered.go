package sched

import "slices"

// BufferedAssigner is the allocation-free variant of Scheduler.Assign: the
// policy clears out and fills it with exactly the shares Assign would
// return, reusing policy-owned scratch buffers instead of allocating per
// round. All policies in this package and internal/core implement it; the
// engines call it on the hot path. A policy carrying scratch buffers is not
// safe for concurrent use — use one instance per simulation run.
type BufferedAssigner interface {
	AssignInto(now float64, capacity float64, jobs []JobView, out Assignment)
}

// Observer is implemented by stateful policies (LAS_MQ and wrappers around
// it) whose Assign mutates internal state: Observe applies exactly that
// state mutation — queue demotions, completion tracking, dropping departed
// jobs — without computing an allocation. The task-level engine calls it at
// instants where it skips a full scheduling round, so that skipping rounds
// cannot change the policy's state trajectory. Observe followed by Assign
// at the same instant must behave like Assign alone (the mutation is
// idempotent at a fixed time).
type Observer interface {
	Observe(now float64, jobs []JobView)
}

// ObserveHinter extends Observer for policies that can bound when their
// next state change happens: ObserveHorizon returns the earliest virtual
// time strictly after now at which Observe could mutate state, given
// per-job upper bounds on the growth rate of the policy's decision metric
// (for the fluid engine these are the exact allocation rates; the
// task-level engine passes conservative bounds derived from container
// usage). The engine may skip Observe calls before the horizon as long as
// the job set and the rate bounds are unchanged.
type ObserveHinter interface {
	Observer
	ObserveHorizon(now float64, jobs []JobView, rates Assignment) float64
}

// viewEntry caches one job's sort key and tie-break so ordering policies
// sort concrete data instead of making interface calls inside a
// reflection-based comparator.
type viewEntry struct {
	key float64
	seq int
	job JobView
}

// buildEntries fills scratch (reusing its backing array) with
// (key(j), Seq, j) for every job.
func buildEntries(scratch *[]viewEntry, jobs []JobView, key func(JobView) float64) []viewEntry {
	entries := (*scratch)[:0]
	for _, j := range jobs {
		entries = append(entries, viewEntry{key: key(j), seq: j.Seq(), job: j})
	}
	*scratch = entries
	return entries
}

// sortEntries orders entries by (key, seq) ascending. Sequence numbers are
// unique, so the order is total and a stable sort is equivalent to any
// correct sort. Already-ordered input — the common case round over round —
// is detected with one linear scan and skipped.
func sortEntries(entries []viewEntry) {
	sorted := true
	for i := 1; i < len(entries); i++ {
		if less(entries[i], entries[i-1]) {
			sorted = false
			break
		}
	}
	if sorted {
		return
	}
	slices.SortFunc(entries, func(a, b viewEntry) int {
		if less(a, b) {
			return -1
		}
		if less(b, a) {
			return 1
		}
		return 0
	})
}

func less(a, b viewEntry) bool {
	if a.key != b.key {
		return a.key < b.key
	}
	return a.seq < b.seq
}

// fillEntry is one job in a water-filling pass.
type fillEntry struct {
	id     int
	demand float64
	weight float64
}

// fillInOrderInto grants each entry min(demand, remaining capacity) in
// entry order, writing shares into out, and returns the total granted.
func fillInOrderInto(capacity float64, entries []viewEntry, out Assignment) float64 {
	var granted float64
	for i := range entries {
		if capacity <= 0 {
			break
		}
		d := entries[i].job.ReadyDemand()
		if d <= 0 {
			continue
		}
		x := d
		if capacity < x {
			x = capacity
		}
		out[entries[i].job.ID()] = x
		capacity -= x
		granted += x
	}
	return granted
}

// fillActive performs demand-capped weighted max-min sharing (progressive
// water filling) over the active entries, compacting the slice in place as
// jobs saturate. Shares are added into out; the return value is the total
// granted, accumulated in deterministic entry order.
func fillActive(capacity float64, active []fillEntry, out Assignment) float64 {
	const eps = 1e-12
	var granted float64
	for capacity > eps && len(active) > 0 {
		var totalW float64
		for i := range active {
			totalW += active[i].weight
		}
		perWeight := capacity / totalW
		// Saturate every job whose demand is within its proportional share.
		k := 0
		saturated := false
		for i := range active {
			e := active[i]
			share := perWeight * e.weight
			if e.demand <= share+eps {
				out[e.id] += e.demand
				capacity -= e.demand
				granted += e.demand
				saturated = true
			} else {
				active[k] = e
				k++
			}
		}
		if !saturated {
			// No bottlenecked jobs: everyone takes the proportional share.
			for i := range active {
				x := perWeight * active[i].weight
				out[active[i].id] += x
				granted += x
			}
			return granted
		}
		active = active[:k]
	}
	return granted
}

// weightedFillInto runs fillActive over the jobs with positive demand and
// weight, reusing scratch for the active set.
func weightedFillInto(capacity float64, jobs []JobView, weight func(JobView) float64, out Assignment, scratch *[]fillEntry) float64 {
	active := (*scratch)[:0]
	for _, j := range jobs {
		d := j.ReadyDemand()
		w := weight(j)
		if d <= 0 || w <= 0 {
			continue
		}
		active = append(active, fillEntry{id: j.ID(), demand: d, weight: w})
	}
	*scratch = active
	return fillActive(capacity, active, out)
}

// clearAssignment empties out in place (policies clear their output buffer
// at the top of AssignInto).
func clearAssignment(out Assignment) {
	clear(out)
}

// assignInto dispatches to p's AssignInto when implemented, otherwise
// copies a fresh p.Assign result into out. Wrapper policies (Blend) use it
// so arbitrary components keep working.
func assignInto(p Scheduler, now, capacity float64, jobs []JobView, out Assignment) {
	if ba, ok := p.(BufferedAssigner); ok {
		ba.AssignInto(now, capacity, jobs, out)
		return
	}
	clearAssignment(out)
	for id, x := range p.Assign(now, capacity, jobs) {
		out[id] = x
	}
}
