package sched

import "sort"

// SJF is the shortest-job-first policy that the paper's introduction argues
// against: it needs a priori size information (JobView.SizeHint). Engines may
// perturb the hint to model estimation error, reproducing the paper's claim
// that under-estimated large jobs delay all smaller jobs behind them.
type SJF struct{}

// NewSJF returns the SJF baseline scheduler.
func NewSJF() *SJF { return &SJF{} }

var _ Scheduler = (*SJF)(nil)

// Name implements Scheduler.
func (s *SJF) Name() string { return "SJF" }

// Assign implements Scheduler.
func (s *SJF) Assign(now float64, capacity float64, jobs []JobView) Assignment {
	ordered := append([]JobView(nil), jobs...)
	sort.SliceStable(ordered, func(i, j int) bool {
		if ordered[i].SizeHint() != ordered[j].SizeHint() {
			return ordered[i].SizeHint() < ordered[j].SizeHint()
		}
		return ordered[i].Seq() < ordered[j].Seq()
	})
	return fillInOrder(capacity, ordered)
}

// SRTF is the preemptive shortest-remaining-time-first policy. Like SJF it
// requires size information (JobView.RemainingSizeHint).
type SRTF struct{}

// NewSRTF returns the SRTF baseline scheduler.
func NewSRTF() *SRTF { return &SRTF{} }

var _ Scheduler = (*SRTF)(nil)

// Name implements Scheduler.
func (s *SRTF) Name() string { return "SRTF" }

// Assign implements Scheduler.
func (s *SRTF) Assign(now float64, capacity float64, jobs []JobView) Assignment {
	ordered := append([]JobView(nil), jobs...)
	sort.SliceStable(ordered, func(i, j int) bool {
		if ordered[i].RemainingSizeHint() != ordered[j].RemainingSizeHint() {
			return ordered[i].RemainingSizeHint() < ordered[j].RemainingSizeHint()
		}
		return ordered[i].Seq() < ordered[j].Seq()
	})
	return fillInOrder(capacity, ordered)
}
