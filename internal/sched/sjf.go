package sched

// SJF is the shortest-job-first policy that the paper's introduction argues
// against: it needs a priori size information (JobView.SizeHint). Engines may
// perturb the hint to model estimation error, reproducing the paper's claim
// that under-estimated large jobs delay all smaller jobs behind them.
//
// The scheduler carries sort scratch, so one instance must not be shared
// between concurrent simulation runs.
type SJF struct {
	entries []viewEntry
}

// NewSJF returns the SJF baseline scheduler.
func NewSJF() *SJF { return &SJF{} }

var (
	_ Scheduler        = (*SJF)(nil)
	_ BufferedAssigner = (*SJF)(nil)
)

// Name implements Scheduler.
func (s *SJF) Name() string { return "SJF" }

// Assign implements Scheduler.
func (s *SJF) Assign(now float64, capacity float64, jobs []JobView) Assignment {
	out := make(Assignment, len(jobs))
	s.AssignInto(now, capacity, jobs, out)
	return out
}

// AssignInto implements BufferedAssigner.
func (s *SJF) AssignInto(now float64, capacity float64, jobs []JobView, out Assignment) {
	clearAssignment(out)
	entries := buildEntries(&s.entries, jobs, JobView.SizeHint)
	sortEntries(entries)
	fillInOrderInto(capacity, entries, out)
}

// SRTF is the preemptive shortest-remaining-time-first policy. Like SJF it
// requires size information (JobView.RemainingSizeHint).
//
// The scheduler carries sort scratch, so one instance must not be shared
// between concurrent simulation runs.
type SRTF struct {
	entries []viewEntry
}

// NewSRTF returns the SRTF baseline scheduler.
func NewSRTF() *SRTF { return &SRTF{} }

var (
	_ Scheduler        = (*SRTF)(nil)
	_ BufferedAssigner = (*SRTF)(nil)
)

// Name implements Scheduler.
func (s *SRTF) Name() string { return "SRTF" }

// Assign implements Scheduler.
func (s *SRTF) Assign(now float64, capacity float64, jobs []JobView) Assignment {
	out := make(Assignment, len(jobs))
	s.AssignInto(now, capacity, jobs, out)
	return out
}

// AssignInto implements BufferedAssigner.
func (s *SRTF) AssignInto(now float64, capacity float64, jobs []JobView, out Assignment) {
	clearAssignment(out)
	entries := buildEntries(&s.entries, jobs, JobView.RemainingSizeHint)
	sortEntries(entries)
	fillInOrderInto(capacity, entries, out)
}
