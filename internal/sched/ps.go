package sched

// PS is the processor-sharing baseline: capacity is split evenly among all
// runnable jobs with demand-capped max-min water filling, so unused share
// flows to jobs that can use it. It is the priority-blind special case of
// Fair and the insertion-free reference point for the analytic cross-check:
// in an M/M/1 queue PS has the closed-form mean response time E[S]/(1-rho).
//
// The scheduler carries water-filling scratch, so one instance must not be
// shared between concurrent simulation runs.
type PS struct {
	fill []fillEntry
}

// NewPS returns the processor-sharing baseline scheduler.
func NewPS() *PS { return &PS{} }

var (
	_ Scheduler        = (*PS)(nil)
	_ BufferedAssigner = (*PS)(nil)
)

// Name implements Scheduler.
func (p *PS) Name() string { return "PS" }

// Assign implements Scheduler.
func (p *PS) Assign(now float64, capacity float64, jobs []JobView) Assignment {
	out := make(Assignment, len(jobs))
	p.AssignInto(now, capacity, jobs, out)
	return out
}

// AssignInto implements BufferedAssigner.
func (p *PS) AssignInto(now float64, capacity float64, jobs []JobView, out Assignment) {
	clearAssignment(out)
	weightedFillInto(capacity, jobs, func(JobView) float64 { return 1 }, out, &p.fill)
}
