// Package schedtest provides a fake sched.JobView for tests of scheduling
// policies and engines.
package schedtest

// FakeJob is a configurable sched.JobView.
type FakeJob struct {
	JobID        int
	JobSeq       int
	JobPriority  int
	AttainedVal  float64
	EstimatedVal float64
	ReadyVal     float64
	RemainingVal float64
	SizeHintVal  float64
	RemSizeVal   float64
}

// ID implements sched.JobView.
func (f *FakeJob) ID() int { return f.JobID }

// Seq implements sched.JobView.
func (f *FakeJob) Seq() int { return f.JobSeq }

// Priority implements sched.JobView.
func (f *FakeJob) Priority() int { return f.JobPriority }

// Attained implements sched.JobView.
func (f *FakeJob) Attained() float64 { return f.AttainedVal }

// Estimated implements sched.JobView.
func (f *FakeJob) Estimated() float64 { return f.EstimatedVal }

// ReadyDemand implements sched.JobView.
func (f *FakeJob) ReadyDemand() float64 { return f.ReadyVal }

// RemainingDemand implements sched.JobView.
func (f *FakeJob) RemainingDemand() float64 { return f.RemainingVal }

// SizeHint implements sched.JobView.
func (f *FakeJob) SizeHint() float64 { return f.SizeHintVal }

// RemainingSizeHint implements sched.JobView.
func (f *FakeJob) RemainingSizeHint() float64 { return f.RemSizeVal }
