package sched

import (
	"math"
	"sort"
)

// Quantize converts fractional container shares into whole containers using
// the largest-remainder method, never exceeding capacity, each job's demand
// cap, or (in total) the sum of the fractional shares rounded to the nearest
// whole container. The task-level engine uses it to turn policy output into
// physical container counts.
//
// Ties in the fractional remainders are broken by ascending job ID so that
// quantization is deterministic.
func Quantize(alloc Assignment, demand map[int]float64, capacity int) map[int]int {
	type share struct {
		id    int
		whole int
		frac  float64
	}
	shares := make([]share, 0, len(alloc))
	total := 0
	for id, x := range alloc {
		if x <= 0 {
			continue
		}
		if d, ok := demand[id]; ok && x > d {
			x = d
		}
		whole := int(math.Floor(x + 1e-9))
		shares = append(shares, share{id: id, whole: whole, frac: x - float64(whole)})
		total += whole
	}
	// Distribute the remaining whole containers (from summed fractions) to the
	// largest remainders first.
	budget := int(math.Round(alloc.Total()))
	if budget > capacity {
		budget = capacity
	}
	// Defensive: if the floored shares already exceed the budget (a policy
	// over-allocated), trim the largest holders first, deterministically.
	if total > budget {
		trim := make([]int, len(shares))
		for i := range shares {
			trim[i] = i
		}
		sort.Slice(trim, func(a, b int) bool {
			if shares[trim[a]].whole != shares[trim[b]].whole {
				return shares[trim[a]].whole > shares[trim[b]].whole
			}
			return shares[trim[a]].id < shares[trim[b]].id
		})
		for i := 0; total > budget; i = (i + 1) % len(trim) {
			if shares[trim[i]].whole > 0 {
				shares[trim[i]].whole--
				total--
			}
		}
	}
	remaining := budget - total
	sort.Slice(shares, func(i, j int) bool {
		if shares[i].frac != shares[j].frac {
			return shares[i].frac > shares[j].frac
		}
		return shares[i].id < shares[j].id
	})
	result := make(map[int]int, len(shares))
	for _, s := range shares {
		n := s.whole
		if remaining > 0 && s.frac > 1e-9 {
			limit := math.Inf(1)
			if d, ok := demand[s.id]; ok {
				limit = d
			}
			if float64(n+1) <= limit+1e-9 {
				n++
				remaining--
			}
		}
		if n > 0 {
			result[s.id] = n
		}
	}
	return result
}
