package sched

import (
	"math"
	"slices"
)

// Quantizer converts fractional container shares into whole containers
// using the largest-remainder method, reusing internal scratch and the
// result map across rounds so quantization is allocation-free on the hot
// path. One Quantizer must not be shared between concurrent simulations;
// the returned map is valid until the next QuantizeInto call.
type Quantizer struct {
	shares []qshare
	trim   []int
	out    map[int]int
}

type qshare struct {
	id    int
	whole int
	frac  float64
}

// Quantize is the allocating convenience wrapper around QuantizeInto; see
// Quantizer for the semantics.
func Quantize(alloc Assignment, demand map[int]float64, capacity int) map[int]int {
	var qz Quantizer
	return qz.QuantizeInto(alloc, demand, capacity)
}

// QuantizeInto converts the fractional shares in alloc into whole
// containers, never exceeding capacity, each job's demand cap, or (in
// total) the sum of the fractional shares rounded to the nearest whole
// container. The task-level engine uses it to turn policy output into
// physical container counts.
//
// Shares are processed in ascending job-ID order and remainder ties break
// by ascending job ID, so the result — including the floating-point
// rounding of the share total — is deterministic and independent of map
// iteration order.
func (qz *Quantizer) QuantizeInto(alloc Assignment, demand map[int]float64, capacity int) map[int]int {
	shares := qz.shares[:0]
	for id := range alloc { // range-ok: ids are sorted immediately below
		shares = append(shares, qshare{id: id})
	}
	// Job IDs are unique, so each comparator below is a total order and the
	// unstable sort is deterministic; slices.SortFunc keeps the round free of
	// sort.Slice's interface/reflect allocations.
	slices.SortFunc(shares, func(a, b qshare) int { return a.id - b.id })
	var allocTotal float64
	total := 0
	k := 0
	for _, s := range shares {
		x := alloc[s.id]
		if x <= 0 {
			continue
		}
		allocTotal += x
		if d, ok := demand[s.id]; ok && x > d {
			x = d
		}
		whole := int(math.Floor(x + 1e-9))
		shares[k] = qshare{id: s.id, whole: whole, frac: x - float64(whole)}
		total += whole
		k++
	}
	shares = shares[:k]
	qz.shares = shares

	// Distribute the remaining whole containers (from summed fractions) to the
	// largest remainders first.
	budget := int(math.Round(allocTotal))
	if budget > capacity {
		budget = capacity
	}
	// Defensive: if the floored shares already exceed the budget (a policy
	// over-allocated), trim the largest holders first, deterministically.
	if total > budget {
		trim := qz.trim[:0]
		for i := range shares {
			trim = append(trim, i)
		}
		qz.trim = trim
		slices.SortFunc(trim, func(a, b int) int {
			if shares[a].whole != shares[b].whole {
				return shares[b].whole - shares[a].whole
			}
			return shares[a].id - shares[b].id
		})
		for i := 0; total > budget; i = (i + 1) % len(trim) {
			if shares[trim[i]].whole > 0 {
				shares[trim[i]].whole--
				total--
			}
		}
	}
	remaining := budget - total
	slices.SortFunc(shares, func(a, b qshare) int {
		if a.frac != b.frac {
			if a.frac > b.frac {
				return -1
			}
			return 1
		}
		return a.id - b.id
	})
	if qz.out == nil {
		qz.out = make(map[int]int, len(shares))
	} else {
		clear(qz.out)
	}
	for _, s := range shares {
		n := s.whole
		if remaining > 0 && s.frac > 1e-9 {
			limit := math.Inf(1)
			if d, ok := demand[s.id]; ok {
				limit = d
			}
			if float64(n+1) <= limit+1e-9 {
				n++
				remaining--
			}
		}
		if n > 0 {
			qz.out[s.id] = n
		}
	}
	return qz.out
}
