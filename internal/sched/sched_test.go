package sched_test

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"lasmq/internal/sched"
	"lasmq/internal/sched/schedtest"
)

func job(id, seq, prio int, attained, ready float64) *schedtest.FakeJob {
	return &schedtest.FakeJob{
		JobID:        id,
		JobSeq:       seq,
		JobPriority:  prio,
		AttainedVal:  attained,
		EstimatedVal: attained,
		ReadyVal:     ready,
		RemainingVal: ready,
	}
}

func views(jobs ...*schedtest.FakeJob) []sched.JobView {
	out := make([]sched.JobView, len(jobs))
	for i, j := range jobs {
		out[i] = j
	}
	return out
}

func TestFIFOServesInAdmissionOrder(t *testing.T) {
	s := sched.NewFIFO()
	jobs := views(
		job(1, 2, 1, 0, 50),
		job(2, 1, 1, 0, 80),
		job(3, 3, 1, 0, 50),
	)
	alloc := s.Assign(0, 100, jobs)
	if alloc[2] != 80 {
		t.Errorf("earliest job got %v, want full demand 80", alloc[2])
	}
	if alloc[1] != 20 {
		t.Errorf("second job got %v, want leftover 20", alloc[1])
	}
	if alloc[3] != 0 {
		t.Errorf("third job got %v, want 0", alloc[3])
	}
}

func TestFIFOSkipsZeroDemand(t *testing.T) {
	s := sched.NewFIFO()
	jobs := views(job(1, 1, 1, 0, 0), job(2, 2, 1, 0, 10))
	alloc := s.Assign(0, 100, jobs)
	if _, ok := alloc[1]; ok {
		t.Error("zero-demand job received an allocation entry")
	}
	if alloc[2] != 10 {
		t.Errorf("job 2 got %v, want 10", alloc[2])
	}
}

func TestFairProportionalToPriority(t *testing.T) {
	s := sched.NewFair()
	jobs := views(
		job(1, 1, 1, 0, 1000),
		job(2, 2, 4, 0, 1000),
	)
	alloc := s.Assign(0, 100, jobs)
	if math.Abs(alloc[1]-20) > 1e-9 || math.Abs(alloc[2]-80) > 1e-9 {
		t.Errorf("alloc = %v, want 20/80 split by priority", alloc)
	}
}

func TestFairDemandCapRedistributes(t *testing.T) {
	s := sched.NewFair()
	jobs := views(
		job(1, 1, 1, 0, 5), // can only use 5
		job(2, 2, 1, 0, 1000),
	)
	alloc := s.Assign(0, 100, jobs)
	if alloc[1] != 5 {
		t.Errorf("capped job got %v, want 5", alloc[1])
	}
	if math.Abs(alloc[2]-95) > 1e-9 {
		t.Errorf("other job got %v, want redistributed 95", alloc[2])
	}
}

func TestFairZeroOrNegativePriorityTreatedAsOne(t *testing.T) {
	s := sched.NewFair()
	jobs := views(
		job(1, 1, 0, 0, 1000),
		job(2, 2, 1, 0, 1000),
	)
	alloc := s.Assign(0, 100, jobs)
	if math.Abs(alloc[1]-50) > 1e-9 {
		t.Errorf("zero-priority job got %v, want 50", alloc[1])
	}
}

func TestLASFavorsLeastAttained(t *testing.T) {
	s := sched.NewLAS()
	jobs := views(
		job(1, 1, 1, 500, 100),
		job(2, 2, 1, 10, 100),
		job(3, 3, 1, 200, 100),
	)
	alloc := s.Assign(0, 100, jobs)
	if alloc[2] != 100 {
		t.Errorf("least-attained job got %v, want all 100", alloc[2])
	}
	if alloc[1] != 0 || alloc[3] != 0 {
		t.Errorf("other jobs got %v/%v, want 0", alloc[1], alloc[3])
	}
}

func TestLASTieGroupSharesEvenly(t *testing.T) {
	s := sched.NewLAS()
	jobs := views(
		job(1, 1, 1, 50, 100),
		job(2, 2, 1, 50, 100),
		job(3, 3, 1, 900, 100),
	)
	alloc := s.Assign(0, 100, jobs)
	if math.Abs(alloc[1]-50) > 1e-9 || math.Abs(alloc[2]-50) > 1e-9 {
		t.Errorf("tied jobs got %v/%v, want even 50/50", alloc[1], alloc[2])
	}
	if alloc[3] != 0 {
		t.Errorf("large job got %v, want 0", alloc[3])
	}
}

func TestLASSpilloverToNextGroup(t *testing.T) {
	s := sched.NewLAS()
	jobs := views(
		job(1, 1, 1, 0, 30), // least attained but small demand
		job(2, 2, 1, 10, 100),
	)
	alloc := s.Assign(0, 100, jobs)
	if alloc[1] != 30 {
		t.Errorf("least job got %v, want its demand 30", alloc[1])
	}
	if math.Abs(alloc[2]-70) > 1e-9 {
		t.Errorf("next job got %v, want spillover 70", alloc[2])
	}
}

func TestLASHorizonCatchUp(t *testing.T) {
	s := sched.NewLAS()
	jobs := views(
		job(1, 1, 1, 0, 100),
		job(2, 2, 1, 50, 100),
	)
	alloc := s.Assign(0, 10, jobs)
	// Job 1 runs at rate 10 from attained 0; catches job 2 (attained 50) at t=5.
	h := s.Horizon(0, jobs, alloc)
	if math.Abs(h-5) > 1e-6 {
		t.Errorf("horizon = %v, want 5", h)
	}
}

func TestLASHorizonInfiniteWhenAllServed(t *testing.T) {
	s := sched.NewLAS()
	jobs := views(job(1, 1, 1, 0, 10))
	alloc := s.Assign(0, 100, jobs)
	if h := s.Horizon(0, jobs, alloc); !math.IsInf(h, 1) {
		t.Errorf("horizon = %v, want +Inf", h)
	}
}

func TestSJFOrdersBySizeHint(t *testing.T) {
	s := sched.NewSJF()
	small := job(1, 2, 1, 0, 100)
	small.SizeHintVal = 10
	large := job(2, 1, 1, 0, 100)
	large.SizeHintVal = 1000
	alloc := s.Assign(0, 100, views(small, large))
	if alloc[1] != 100 {
		t.Errorf("small job got %v, want all capacity", alloc[1])
	}
}

func TestSJFMisestimatedLargeJobBlocks(t *testing.T) {
	// The introduction's motivation: a large job whose size is
	// under-estimated is placed ahead of genuinely small jobs.
	s := sched.NewSJF()
	small := job(1, 1, 1, 0, 100)
	small.SizeHintVal = 10
	large := job(2, 2, 1, 0, 100)
	large.SizeHintVal = 5 // under-estimated; true size is huge
	alloc := s.Assign(0, 100, views(small, large))
	if alloc[2] != 100 {
		t.Errorf("under-estimated large job got %v, want all capacity", alloc[2])
	}
}

func TestSRTFOrdersByRemaining(t *testing.T) {
	s := sched.NewSRTF()
	a := job(1, 1, 1, 0, 100)
	a.RemSizeVal = 500
	b := job(2, 2, 1, 0, 100)
	b.RemSizeVal = 5
	alloc := s.Assign(0, 100, views(a, b))
	if alloc[2] != 100 {
		t.Errorf("shortest-remaining job got %v, want all capacity", alloc[2])
	}
}

func TestQuantizeBasic(t *testing.T) {
	alloc := sched.Assignment{1: 33.4, 2: 33.3, 3: 33.3}
	demand := map[int]float64{1: 100, 2: 100, 3: 100}
	q := sched.Quantize(alloc, demand, 100)
	total := q[1] + q[2] + q[3]
	if total != 100 {
		t.Errorf("quantized total = %d, want 100 (%v)", total, q)
	}
	if q[1] < 33 || q[1] > 34 {
		t.Errorf("job 1 got %d, want 33 or 34", q[1])
	}
}

func TestQuantizeRespectsDemand(t *testing.T) {
	alloc := sched.Assignment{1: 10.6}
	demand := map[int]float64{1: 10}
	q := sched.Quantize(alloc, demand, 100)
	if q[1] != 10 {
		t.Errorf("job 1 got %d, want demand cap 10", q[1])
	}
}

func TestQuantizeDropsZero(t *testing.T) {
	alloc := sched.Assignment{1: 0, 2: 5}
	demand := map[int]float64{1: 10, 2: 10}
	q := sched.Quantize(alloc, demand, 100)
	if _, ok := q[1]; ok {
		t.Error("zero share produced an entry")
	}
	if q[2] != 5 {
		t.Errorf("job 2 got %d, want 5", q[2])
	}
}

// Invariant checks shared by all policies.
func checkInvariants(t *testing.T, name string, capacity float64, jobs []sched.JobView, alloc sched.Assignment) {
	t.Helper()
	const eps = 1e-6
	if total := alloc.Total(); total > capacity+eps {
		t.Errorf("%s: total allocation %v exceeds capacity %v", name, total, capacity)
	}
	demand := make(map[int]float64, len(jobs))
	for _, j := range jobs {
		demand[j.ID()] = j.ReadyDemand()
	}
	var totalDemand float64
	for _, d := range demand {
		totalDemand += d
	}
	for id, x := range alloc {
		if x < -eps {
			t.Errorf("%s: negative allocation %v for job %d", name, x, id)
		}
		if x > demand[id]+eps {
			t.Errorf("%s: job %d allocated %v beyond demand %v", name, id, x, demand[id])
		}
	}
	// Work conservation: if demand >= capacity, all capacity is used.
	if totalDemand >= capacity-eps {
		if total := alloc.Total(); total < capacity-eps {
			t.Errorf("%s: not work conserving: used %v of %v with demand %v",
				name, total, capacity, totalDemand)
		}
	} else if total := alloc.Total(); math.Abs(total-totalDemand) > eps {
		t.Errorf("%s: demand-limited case used %v, want all demand %v", name, total, totalDemand)
	}
}

func TestPolicyInvariantsProperty(t *testing.T) {
	policies := []sched.Scheduler{
		sched.NewFIFO(), sched.NewFair(), sched.NewLAS(), sched.NewSJF(), sched.NewSRTF(),
	}
	f := func(seed int64, n uint8, capRaw uint16) bool {
		r := rand.New(rand.NewSource(seed))
		count := int(n%20) + 1
		capacity := float64(capRaw%200) + 1
		jobs := make([]sched.JobView, 0, count)
		for i := 0; i < count; i++ {
			fj := job(i+1, i+1, r.Intn(5)+1, r.Float64()*1000, float64(r.Intn(150)))
			fj.SizeHintVal = r.Float64() * 1000
			fj.RemSizeVal = r.Float64() * 500
			jobs = append(jobs, fj)
		}
		for _, p := range policies {
			alloc := p.Assign(0, capacity, jobs)
			// Inline invariant checks returning bool for quick.
			const eps = 1e-6
			if alloc.Total() > capacity+eps {
				return false
			}
			var totalDemand float64
			for _, j := range jobs {
				totalDemand += j.ReadyDemand()
			}
			for _, j := range jobs {
				if alloc[j.ID()] < -eps || alloc[j.ID()] > j.ReadyDemand()+eps {
					return false
				}
			}
			want := math.Min(capacity, totalDemand)
			if math.Abs(alloc.Total()-want) > eps {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestPolicyInvariantsExamples(t *testing.T) {
	policies := []sched.Scheduler{
		sched.NewFIFO(), sched.NewFair(), sched.NewLAS(), sched.NewSJF(), sched.NewSRTF(),
	}
	jobs := views(
		job(1, 1, 3, 120, 40),
		job(2, 2, 1, 0, 90),
		job(3, 3, 5, 700, 10),
	)
	for _, p := range policies {
		alloc := p.Assign(0, 100, jobs)
		checkInvariants(t, p.Name(), 100, jobs, alloc)
	}
}

func TestPoliciesDeterministic(t *testing.T) {
	policies := []sched.Scheduler{
		sched.NewFIFO(), sched.NewFair(), sched.NewLAS(), sched.NewSJF(), sched.NewSRTF(),
	}
	jobs := views(
		job(1, 1, 3, 120, 40),
		job(2, 2, 1, 120, 90),
		job(3, 3, 5, 700, 10),
	)
	for _, p := range policies {
		a := p.Assign(0, 64, jobs)
		b := p.Assign(0, 64, jobs)
		if len(a) != len(b) {
			t.Fatalf("%s: non-deterministic allocation size", p.Name())
		}
		for id, x := range a {
			if b[id] != x {
				t.Errorf("%s: job %d allocation differs: %v vs %v", p.Name(), id, x, b[id])
			}
		}
	}
}

func TestQuantizeBudgetCappedByCapacity(t *testing.T) {
	// Fractional shares summing past capacity are clamped.
	alloc := sched.Assignment{1: 60.7, 2: 60.7}
	demand := map[int]float64{1: 100, 2: 100}
	q := sched.Quantize(alloc, demand, 100)
	if total := q[1] + q[2]; total > 100 {
		t.Errorf("quantized total %d exceeds capacity", total)
	}
}

func TestQuantizeEmpty(t *testing.T) {
	if q := sched.Quantize(sched.Assignment{}, nil, 10); len(q) != 0 {
		t.Errorf("empty allocation produced %v", q)
	}
}
