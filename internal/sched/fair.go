package sched

// Fair is the YARN Fair scheduler baseline: capacity is shared among
// runnable jobs proportionally to their priorities (the paper draws
// priorities uniformly from [1,5]), with demand-capped max-min water
// filling so unused share flows to jobs that can use it.
//
// The scheduler carries water-filling scratch, so one instance must not be
// shared between concurrent simulation runs.
type Fair struct {
	fill []fillEntry
}

// NewFair returns the Fair baseline scheduler.
func NewFair() *Fair { return &Fair{} }

var (
	_ Scheduler        = (*Fair)(nil)
	_ BufferedAssigner = (*Fair)(nil)
)

// Name implements Scheduler.
func (f *Fair) Name() string { return "FAIR" }

// Assign implements Scheduler.
func (f *Fair) Assign(now float64, capacity float64, jobs []JobView) Assignment {
	out := make(Assignment, len(jobs))
	f.AssignInto(now, capacity, jobs, out)
	return out
}

// AssignInto implements BufferedAssigner.
func (f *Fair) AssignInto(now float64, capacity float64, jobs []JobView, out Assignment) {
	clearAssignment(out)
	weightedFillInto(capacity, jobs, func(j JobView) float64 {
		p := j.Priority()
		if p <= 0 {
			p = 1
		}
		return float64(p)
	}, out, &f.fill)
}
