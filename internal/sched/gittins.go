package sched

import (
	"math"

	"lasmq/internal/dist"
)

// Gittins is the Gittins-index policy: the optimal non-anticipating
// scheduler for an M/G/1 queue (Gittins 1989; Aalto, Ayesta, Righter 2009).
// It knows the service *distribution* but not individual job sizes — the
// strongest baseline that plays by the same no-prior-information rules as
// LAS and LAS_MQ — and serves jobs in decreasing order of their Gittins
// index at their current attained service. The index is discretized once per
// distribution into a dist.GittinsTable, built lazily on first use.
//
// For distributions with decreasing hazard rate the index decreases in
// attained service and Gittins coincides with foreground-background (LAS);
// for exponential service the index is constant and any non-anticipating
// order is optimal; for the near-deterministic per-type clusters of the
// Table-I mix the index *increases* within a cluster, which is exactly the
// FIFO-within-queue behaviour LAS_MQ approximates without knowing the
// distribution.
//
// The scheduler carries sort scratch, so one instance must not be shared
// between concurrent simulation runs.
type Gittins struct {
	service dist.Service
	table   *dist.GittinsTable
	entries []viewEntry
}

// NewGittins returns the Gittins-index policy for the given service
// distribution. A nil distribution defaults to unit-mean exponential, under
// which the index is constant and the policy degrades to FIFO — the optimal
// non-anticipating behaviour for memoryless service.
func NewGittins(service dist.Service) *Gittins {
	if service == nil {
		service = dist.ExpService{M: 1}
	}
	return &Gittins{service: service}
}

var (
	_ Scheduler        = (*Gittins)(nil)
	_ BufferedAssigner = (*Gittins)(nil)
	_ Hinter           = (*Gittins)(nil)
)

// Name implements Scheduler.
func (g *Gittins) Name() string { return "GITTINS" }

// lazyTable builds the discretized index on first use.
func (g *Gittins) lazyTable() *dist.GittinsTable {
	if g.table == nil {
		g.table = dist.NewGittinsTable(g.service)
	}
	return g.table
}

// Assign implements Scheduler.
func (g *Gittins) Assign(now float64, capacity float64, jobs []JobView) Assignment {
	out := make(Assignment, len(jobs))
	g.AssignInto(now, capacity, jobs, out)
	return out
}

// AssignInto implements BufferedAssigner: jobs are served in decreasing
// index order (the table guarantees the index is never NaN, so the negated
// key totally orders with Seq as tie-break; an infinite index — a job past
// the distribution's support or sitting on a completion atom — sorts first
// and is driven to completion).
func (g *Gittins) AssignInto(now float64, capacity float64, jobs []JobView, out Assignment) {
	clearAssignment(out)
	table := g.lazyTable()
	entries := buildEntries(&g.entries, jobs, func(j JobView) float64 {
		return -table.Index(j.Attained())
	})
	sortEntries(entries)
	fillInOrderInto(capacity, entries, out)
}

// Horizon implements Hinter: the discretized index is constant between grid
// levels, so the ranking can only change when a served job's attained
// service crosses its next grid boundary.
func (g *Gittins) Horizon(now float64, jobs []JobView, alloc Assignment) float64 {
	table := g.lazyTable()
	horizon := math.Inf(1)
	for _, j := range jobs {
		rate := alloc[j.ID()]
		if rate <= 0 {
			continue
		}
		b := table.NextBoundary(j.Attained())
		if math.IsInf(b, 1) {
			continue
		}
		if t := now + (b-j.Attained())/rate; t > now && t < horizon {
			horizon = t
		}
	}
	if horizon <= now {
		return math.Inf(1)
	}
	return horizon
}
