package sched

import (
	"math"
	"slices"
)

// ExactSizer is implemented by engine job views that can report the job's
// exact remaining service (total minus attained), as opposed to the
// possibly-perturbed RemainingSizeHint. The SRPT baseline uses it to be a
// true clairvoyant optimum rather than an estimate-driven heuristic; views
// without it fall back to the hint.
type ExactSizer interface {
	ExactRemaining() float64
}

// exactRemaining reads the exact remaining service when the view offers it.
func exactRemaining(j JobView) float64 {
	if e, ok := j.(ExactSizer); ok {
		return e.ExactRemaining()
	}
	return j.RemainingSizeHint()
}

// srptRec is SRPT's persistent record of one job: the sort key under which
// its entry was last filed, used to binary-locate the entry on update and
// removal.
type srptRec struct {
	rem float64
	seq int
}

// srptEntry is one job in the persistent remaining-service order.
type srptEntry struct {
	rem float64
	seq int
	id  int
}

// SRPT is the preemptive shortest-remaining-processing-time baseline with
// exact sizes — the clairvoyant optimum the paper's oblivious policies are
// measured against. Unlike SRTF it reads exact remaining service through
// ExactSizer, immune to hint perturbation.
//
// The remaining-service order is persistent across rounds (the PR 4
// incremental sorted-list machinery): arrivals binary-insert, departures
// binary-remove by their stored key, and in-place remaining-service decay —
// which almost never inverts the order, since the jobs being served are
// already the smallest — marks the list dirty for a single sortedness walk
// instead of an eager re-sort.
//
// The scheduler carries persistent state, so one instance must not be shared
// between concurrent simulation runs.
type SRPT struct {
	tracked  map[int]srptRec
	ordered  []srptEntry
	views    map[int]JobView
	seen     map[int]bool
	departed []int
	dirty    bool
}

// NewSRPT returns the exact-SRPT baseline scheduler.
func NewSRPT() *SRPT {
	return &SRPT{
		tracked: make(map[int]srptRec),
		views:   make(map[int]JobView),
		seen:    make(map[int]bool),
	}
}

var (
	_ Scheduler        = (*SRPT)(nil)
	_ BufferedAssigner = (*SRPT)(nil)
	_ Hinter           = (*SRPT)(nil)
	_ Observer         = (*SRPT)(nil)
)

// Name implements Scheduler.
func (s *SRPT) Name() string { return "SRPT" }

// Assign implements Scheduler.
func (s *SRPT) Assign(now float64, capacity float64, jobs []JobView) Assignment {
	out := make(Assignment, len(jobs))
	s.AssignInto(now, capacity, jobs, out)
	return out
}

// AssignInto implements BufferedAssigner.
func (s *SRPT) AssignInto(now float64, capacity float64, jobs []JobView, out Assignment) {
	clearAssignment(out)
	s.sweep(jobs)
	s.restoreOrder()
	for i := range s.ordered {
		if capacity <= 0 {
			break
		}
		j := s.views[s.ordered[i].id]
		d := j.ReadyDemand()
		if d <= 0 {
			continue
		}
		x := d
		if capacity < x {
			x = capacity
		}
		out[j.ID()] = x
		capacity -= x
	}
}

// Observe implements Observer: it keeps the persistent order in sync on
// rounds where the engine skips the allocation.
func (s *SRPT) Observe(now float64, jobs []JobView) {
	s.sweep(jobs)
	s.restoreOrder()
}

// sweep syncs the persistent order with the current views: binary insertion
// of arrivals, removal of departures by stored key, and in-place refresh of
// remaining service (deferring the rarely-needed re-sort to restoreOrder's
// sortedness walk).
func (s *SRPT) sweep(jobs []JobView) {
	seen := s.seen
	clear(seen)
	clear(s.views)
	for _, j := range jobs {
		id := j.ID()
		seen[id] = true
		s.views[id] = j
		rem := exactRemaining(j)
		rec, ok := s.tracked[id]
		if !ok {
			seq := j.Seq()
			s.insertEntry(srptEntry{rem: rem, seq: seq, id: id})
			s.tracked[id] = srptRec{rem: rem, seq: seq}
			continue
		}
		if rem != rec.rem {
			if pos := s.findEntry(rec, id); pos >= 0 {
				s.ordered[pos].rem = rem
			}
			s.dirty = true
			rec.rem = rem
			s.tracked[id] = rec
		}
	}
	s.departed = s.departed[:0]
	for id := range s.tracked { // range-ok: per-id collection, order restored by sort below
		if !seen[id] {
			s.departed = append(s.departed, id)
		}
	}
	slices.Sort(s.departed) // deterministic removal order
	for _, id := range s.departed {
		s.removeEntry(s.tracked[id], id)
		delete(s.tracked, id)
	}
}

// restoreOrder re-checks the list when members changed remaining service in
// place since the last round. One linear walk; the sort fallback fires only
// when the decay actually inverted the order.
func (s *SRPT) restoreOrder() {
	if !s.dirty {
		return
	}
	s.dirty = false
	if !isSortedSRPT(s.ordered) {
		slices.SortFunc(s.ordered, compareRemSeq)
	}
}

// insertEntry binary-inserts e. Inserting into a dirty list may place e
// imprecisely; restoreOrder repairs that before the order is ever read.
func (s *SRPT) insertEntry(e srptEntry) {
	list := s.ordered
	lo, hi := 0, len(list)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if srptLess(list[mid], e) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	list = append(list, srptEntry{})
	copy(list[lo+1:], list[lo:])
	list[lo] = e
	s.ordered = list
}

// findEntry locates the job's entry by its stored key, falling back to a
// linear scan when the list is dirty. Returns -1 if absent.
func (s *SRPT) findEntry(rec srptRec, id int) int {
	list := s.ordered
	key := srptEntry{rem: rec.rem, seq: rec.seq, id: id}
	lo, hi := 0, len(list)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if srptLess(list[mid], key) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(list) && list[lo].id == id {
		return lo
	}
	for i := range list {
		if list[i].id == id {
			return i
		}
	}
	return -1
}

// removeEntry deletes the job's entry from the ordered list.
func (s *SRPT) removeEntry(rec srptRec, id int) {
	if pos := s.findEntry(rec, id); pos >= 0 {
		list := s.ordered
		copy(list[pos:], list[pos+1:])
		s.ordered = list[:len(list)-1]
	}
}

// srptLess orders jobs by (remaining service, seq) ascending; sequence
// numbers are unique so the order is total.
func srptLess(a, b srptEntry) bool {
	if a.rem != b.rem {
		return a.rem < b.rem
	}
	return a.seq < b.seq
}

func isSortedSRPT(list []srptEntry) bool {
	for i := 1; i < len(list); i++ {
		if srptLess(list[i], list[i-1]) {
			return false
		}
	}
	return true
}

func compareRemSeq(a, b srptEntry) int {
	if a.rem != b.rem {
		if a.rem < b.rem {
			return -1
		}
		return 1
	}
	if a.seq < b.seq {
		return -1
	}
	return 1
}

// Horizon implements Hinter: under linear remaining-service decay the first
// order inversion always occurs between entries adjacent in the current
// order, when a faster-draining later entry catches a slower earlier one.
func (s *SRPT) Horizon(now float64, jobs []JobView, alloc Assignment) float64 {
	horizon := math.Inf(1)
	for i := 1; i < len(s.ordered); i++ {
		a, b := &s.ordered[i-1], &s.ordered[i]
		ra, rb := alloc[a.id], alloc[b.id]
		if rb <= ra {
			continue
		}
		dt := (b.rem - a.rem) / (rb - ra)
		if t := now + dt; t > now && t < horizon {
			horizon = t
		}
	}
	return horizon
}
