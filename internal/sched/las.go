package sched

import (
	"math"
	"sort"
)

// LAS is the least-attained-service baseline: all capacity goes to the jobs
// that have received the least service so far. Jobs whose attained service is
// (numerically) equal form a tie group and share capacity evenly, which makes
// the policy degrade to processor sharing when many equal-size jobs are
// present — exactly the pathology LAS_MQ is designed to avoid.
//
// The scheduler carries sort and water-filling scratch, so one instance must
// not be shared between concurrent simulation runs.
type LAS struct {
	entries []viewEntry
	fill    []fillEntry
	levels  []float64
}

// NewLAS returns the LAS baseline scheduler.
func NewLAS() *LAS { return &LAS{} }

var (
	_ Scheduler        = (*LAS)(nil)
	_ BufferedAssigner = (*LAS)(nil)
	_ Hinter           = (*LAS)(nil)
)

// lasTieEps is the tolerance under which two attained-service values are
// considered equal and their jobs share capacity evenly. Without a tolerance
// the fluid simulation would ping-pong between tied jobs in zero-length
// steps.
const lasTieEps = 1e-6

// Name implements Scheduler.
func (l *LAS) Name() string { return "LAS" }

// Assign implements Scheduler.
func (l *LAS) Assign(now float64, capacity float64, jobs []JobView) Assignment {
	out := make(Assignment, len(jobs))
	l.AssignInto(now, capacity, jobs, out)
	return out
}

// AssignInto implements BufferedAssigner.
func (l *LAS) AssignInto(now float64, capacity float64, jobs []JobView, out Assignment) {
	clearAssignment(out)
	entries := buildEntries(&l.entries, jobs, JobView.Attained)
	sortEntries(entries)
	i := 0
	for i < len(entries) && capacity > 0 {
		// Collect the tie group starting at i.
		groupEnd := i + 1
		for groupEnd < len(entries) && entries[groupEnd].key-entries[i].key <= lasTieEps {
			groupEnd++
		}
		// Evenly share remaining capacity within the group, capped by demand
		// (unweighted max-min). Grants and the capacity they consume are
		// accumulated in group order, keeping the result deterministic.
		active := l.fill[:0]
		for _, e := range entries[i:groupEnd] {
			if d := e.job.ReadyDemand(); d > 0 {
				active = append(active, fillEntry{id: e.job.ID(), demand: d, weight: 1})
			}
		}
		l.fill = active
		capacity -= fillActive(capacity, active, out)
		i = groupEnd
	}
}

// Horizon implements Hinter: the decision changes when a served job's
// attained service catches up with the attained service of a job that is
// currently ahead of it.
func (l *LAS) Horizon(now float64, jobs []JobView, alloc Assignment) float64 {
	// Collect attained levels of all jobs, and find for each served job the
	// next level strictly above its own.
	levels := l.levels[:0]
	for _, j := range jobs {
		levels = append(levels, j.Attained())
	}
	l.levels = levels
	sort.Float64s(levels)

	horizon := math.Inf(1)
	for _, j := range jobs {
		rate := alloc[j.ID()]
		if rate <= 0 {
			continue
		}
		a := j.Attained()
		// Next attained level strictly above a (beyond the tie tolerance).
		idx := sort.SearchFloat64s(levels, a+lasTieEps)
		if idx >= len(levels) {
			continue
		}
		t := now + (levels[idx]-a)/rate
		if t < horizon {
			horizon = t
		}
	}
	if horizon <= now {
		return math.Inf(1)
	}
	return horizon
}
