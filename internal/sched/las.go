package sched

import (
	"math"
	"sort"
)

// LAS is the least-attained-service baseline: all capacity goes to the jobs
// that have received the least service so far. Jobs whose attained service is
// (numerically) equal form a tie group and share capacity evenly, which makes
// the policy degrade to processor sharing when many equal-size jobs are
// present — exactly the pathology LAS_MQ is designed to avoid.
type LAS struct{}

// NewLAS returns the LAS baseline scheduler.
func NewLAS() *LAS { return &LAS{} }

var (
	_ Scheduler = (*LAS)(nil)
	_ Hinter    = (*LAS)(nil)
)

// lasTieEps is the tolerance under which two attained-service values are
// considered equal and their jobs share capacity evenly. Without a tolerance
// the fluid simulation would ping-pong between tied jobs in zero-length
// steps.
const lasTieEps = 1e-6

// Name implements Scheduler.
func (l *LAS) Name() string { return "LAS" }

// Assign implements Scheduler.
func (l *LAS) Assign(now float64, capacity float64, jobs []JobView) Assignment {
	ordered := append([]JobView(nil), jobs...)
	sort.SliceStable(ordered, func(i, j int) bool {
		if ordered[i].Attained() != ordered[j].Attained() {
			return ordered[i].Attained() < ordered[j].Attained()
		}
		return ordered[i].Seq() < ordered[j].Seq()
	})
	alloc := make(Assignment, len(ordered))
	i := 0
	for i < len(ordered) && capacity > 0 {
		// Collect the tie group starting at i.
		groupEnd := i + 1
		for groupEnd < len(ordered) && ordered[groupEnd].Attained()-ordered[i].Attained() <= lasTieEps {
			groupEnd++
		}
		group := ordered[i:groupEnd]
		// Evenly share remaining capacity within the group, capped by demand
		// (unweighted max-min).
		groupAlloc := weightedFill(capacity, group, func(JobView) float64 { return 1 })
		for id, x := range groupAlloc {
			alloc[id] = x
			capacity -= x
		}
		i = groupEnd
	}
	return alloc
}

// Horizon implements Hinter: the decision changes when a served job's
// attained service catches up with the attained service of a job that is
// currently ahead of it.
func (l *LAS) Horizon(now float64, jobs []JobView, alloc Assignment) float64 {
	// Collect attained levels of all jobs, and find for each served job the
	// next level strictly above its own.
	levels := make([]float64, 0, len(jobs))
	for _, j := range jobs {
		levels = append(levels, j.Attained())
	}
	sort.Float64s(levels)

	horizon := math.Inf(1)
	for _, j := range jobs {
		rate := alloc[j.ID()]
		if rate <= 0 {
			continue
		}
		a := j.Attained()
		// Next attained level strictly above a (beyond the tie tolerance).
		idx := sort.SearchFloat64s(levels, a+lasTieEps)
		if idx >= len(levels) {
			continue
		}
		t := now + (levels[idx]-a)/rate
		if t < horizon {
			horizon = t
		}
	}
	if horizon <= now {
		return math.Inf(1)
	}
	return horizon
}
