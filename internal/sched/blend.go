package sched

import (
	"fmt"
	"math"
)

// Blend mixes two policies' allocations convexly — the paper's second
// future-work direction ("design a tunable parameter to make the tradeoff
// [between fairness and job response times] and flexibly adjust the
// performance as needed"). With theta = 0 the blend is the primary policy
// (e.g. LAS_MQ, best mean response); with theta = 1 it is the secondary
// (e.g. Fair, best fairness); values in between trade mean response time for
// tail slowdown.
//
// Because both component allocations respect capacity and per-job demand,
// any convex combination does too, and the blend stays work conserving when
// both components are.
type Blend struct {
	primary   Scheduler
	secondary Scheduler
	theta     float64
}

var (
	_ Scheduler = (*Blend)(nil)
	_ Hinter    = (*Blend)(nil)
)

// NewBlend returns a scheduler allocating
// (1-theta)*primary + theta*secondary. theta must be in [0, 1].
func NewBlend(primary, secondary Scheduler, theta float64) (*Blend, error) {
	if primary == nil || secondary == nil {
		return nil, fmt.Errorf("sched: blend components must be non-nil")
	}
	if theta < 0 || theta > 1 {
		return nil, fmt.Errorf("sched: blend theta must be in [0,1], got %v", theta)
	}
	return &Blend{primary: primary, secondary: secondary, theta: theta}, nil
}

// Name implements Scheduler.
func (b *Blend) Name() string {
	return fmt.Sprintf("BLEND(%s,%s,%.2f)", b.primary.Name(), b.secondary.Name(), b.theta)
}

// Theta returns the blend parameter.
func (b *Blend) Theta() float64 { return b.theta }

// Assign implements Scheduler.
func (b *Blend) Assign(now float64, capacity float64, jobs []JobView) Assignment {
	if b.theta == 0 {
		return b.primary.Assign(now, capacity, jobs)
	}
	if b.theta == 1 {
		return b.secondary.Assign(now, capacity, jobs)
	}
	pa := b.primary.Assign(now, capacity, jobs)
	sa := b.secondary.Assign(now, capacity, jobs)
	out := make(Assignment, len(pa)+len(sa))
	for id, x := range pa {
		out[id] += (1 - b.theta) * x
	}
	for id, x := range sa {
		out[id] += b.theta * x
	}
	return out
}

// Horizon implements Hinter: the earliest change point of either component,
// evaluated against the blended allocation (both components' horizons are
// pure functions of the allocation they are given).
func (b *Blend) Horizon(now float64, jobs []JobView, alloc Assignment) float64 {
	horizon := math.Inf(1)
	if h, ok := b.primary.(Hinter); ok {
		if t := h.Horizon(now, jobs, alloc); t < horizon {
			horizon = t
		}
	}
	if h, ok := b.secondary.(Hinter); ok {
		if t := h.Horizon(now, jobs, alloc); t < horizon {
			horizon = t
		}
	}
	return horizon
}
