package sched

import (
	"fmt"
	"math"

	"lasmq/internal/obs"
)

// Blend mixes two policies' allocations convexly — the paper's second
// future-work direction ("design a tunable parameter to make the tradeoff
// [between fairness and job response times] and flexibly adjust the
// performance as needed"). With theta = 0 the blend is the primary policy
// (e.g. LAS_MQ, best mean response); with theta = 1 it is the secondary
// (e.g. Fair, best fairness); values in between trade mean response time for
// tail slowdown.
//
// Because both component allocations respect capacity and per-job demand,
// any convex combination does too, and the blend stays work conserving when
// both components are.
type Blend struct {
	primary   Scheduler
	secondary Scheduler
	theta     float64

	pa, sa Assignment // scratch for component allocations
}

var (
	_ Scheduler        = (*Blend)(nil)
	_ BufferedAssigner = (*Blend)(nil)
	_ Observer         = (*Blend)(nil)
	_ ObserveHinter    = (*Blend)(nil)
	_ Hinter           = (*Blend)(nil)
	_ obs.ProbeSetter  = (*Blend)(nil)
)

// NewBlend returns a scheduler allocating
// (1-theta)*primary + theta*secondary. theta must be in [0, 1].
func NewBlend(primary, secondary Scheduler, theta float64) (*Blend, error) {
	if primary == nil || secondary == nil {
		return nil, fmt.Errorf("sched: blend components must be non-nil")
	}
	if theta < 0 || theta > 1 {
		return nil, fmt.Errorf("sched: blend theta must be in [0,1], got %v", theta)
	}
	return &Blend{primary: primary, secondary: secondary, theta: theta}, nil
}

// Name implements Scheduler.
func (b *Blend) Name() string {
	return fmt.Sprintf("BLEND(%s,%s,%.2f)", b.primary.Name(), b.secondary.Name(), b.theta)
}

// Theta returns the blend parameter.
func (b *Blend) Theta() float64 { return b.theta }

// SetProbe implements obs.ProbeSetter by forwarding the probe to both
// components, so a blend wrapping LAS_MQ keeps demotion telemetry flowing.
func (b *Blend) SetProbe(p obs.Probe) {
	if ps, ok := b.primary.(obs.ProbeSetter); ok {
		ps.SetProbe(p)
	}
	if ps, ok := b.secondary.(obs.ProbeSetter); ok {
		ps.SetProbe(p)
	}
}

// Assign implements Scheduler.
func (b *Blend) Assign(now float64, capacity float64, jobs []JobView) Assignment {
	out := make(Assignment, len(jobs))
	b.AssignInto(now, capacity, jobs, out)
	return out
}

// AssignInto implements BufferedAssigner, reusing scratch maps for the
// component allocations.
func (b *Blend) AssignInto(now float64, capacity float64, jobs []JobView, out Assignment) {
	if b.theta == 0 {
		assignInto(b.primary, now, capacity, jobs, out)
		return
	}
	if b.theta == 1 {
		assignInto(b.secondary, now, capacity, jobs, out)
		return
	}
	if b.pa == nil {
		b.pa = make(Assignment, len(jobs))
		b.sa = make(Assignment, len(jobs))
	}
	assignInto(b.primary, now, capacity, jobs, b.pa)
	assignInto(b.secondary, now, capacity, jobs, b.sa)
	clearAssignment(out)
	for id, x := range b.pa {
		out[id] += (1 - b.theta) * x
	}
	for id, x := range b.sa {
		out[id] += b.theta * x
	}
}

// Observe implements Observer by forwarding to stateful components, so a
// blend wrapping LAS_MQ keeps its queue state in sync even at instants the
// engine skips a full scheduling round. A blend with theta strictly between
// 0 and 1 invokes BOTH components' Assign each round, so both components'
// state must advance.
func (b *Blend) Observe(now float64, jobs []JobView) {
	if o, ok := b.primary.(Observer); ok && b.theta < 1 {
		o.Observe(now, jobs)
	}
	if o, ok := b.secondary.(Observer); ok && b.theta > 0 {
		o.Observe(now, jobs)
	}
}

// ObserveHorizon implements ObserveHinter so that wrapping a horizon-
// hinting policy (LAS_MQ) in a blend does not silently disable the
// substrate's observation gating. The blend's horizon is the minimum over
// its active components (primary when theta < 1, secondary when theta > 0):
// a horizon-hinting component contributes its own horizon, a stateful
// component without a hint forces `now` (it must be observed every round —
// the conservative answer), and a stateless component never constrains.
func (b *Blend) ObserveHorizon(now float64, jobs []JobView, rates Assignment) float64 {
	horizon := math.Inf(1)
	if b.theta < 1 {
		if t := componentObserveHorizon(b.primary, now, jobs, rates); t < horizon {
			horizon = t
		}
	}
	if b.theta > 0 {
		if t := componentObserveHorizon(b.secondary, now, jobs, rates); t < horizon {
			horizon = t
		}
	}
	return horizon
}

func componentObserveHorizon(c Scheduler, now float64, jobs []JobView, rates Assignment) float64 {
	if h, ok := c.(ObserveHinter); ok {
		return h.ObserveHorizon(now, jobs, rates)
	}
	if _, ok := c.(Observer); ok {
		return now
	}
	return math.Inf(1)
}

// Horizon implements Hinter: the earliest change point of either component,
// evaluated against the blended allocation (both components' horizons are
// pure functions of the allocation they are given).
func (b *Blend) Horizon(now float64, jobs []JobView, alloc Assignment) float64 {
	horizon := math.Inf(1)
	if h, ok := b.primary.(Hinter); ok {
		if t := h.Horizon(now, jobs, alloc); t < horizon {
			horizon = t
		}
	}
	if h, ok := b.secondary.(Hinter); ok {
		if t := h.Horizon(now, jobs, alloc); t < horizon {
			horizon = t
		}
	}
	return horizon
}
