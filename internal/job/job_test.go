package job

import (
	"strings"
	"testing"
)

func validSpec() Spec {
	return Spec{
		ID:       1,
		Name:     "WordCount",
		Bin:      4,
		Priority: 3,
		Arrival:  10,
		Stages: []StageSpec{
			{Name: "map", Tasks: []TaskSpec{{Duration: 10, Containers: 1}, {Duration: 20, Containers: 1}}},
			{Name: "reduce", Tasks: []TaskSpec{{Duration: 5, Containers: 2}}},
		},
	}
}

func TestStageService(t *testing.T) {
	s := validSpec()
	if got := s.Stages[0].Service(); got != 30 {
		t.Errorf("map stage service = %v, want 30", got)
	}
	if got := s.Stages[1].Service(); got != 10 {
		t.Errorf("reduce stage service = %v, want 10", got)
	}
}

func TestTotalService(t *testing.T) {
	s := validSpec()
	if got := s.TotalService(); got != 40 {
		t.Errorf("TotalService = %v, want 40", got)
	}
}

func TestTotalTasks(t *testing.T) {
	s := validSpec()
	if got := s.TotalTasks(); got != 3 {
		t.Errorf("TotalTasks = %d, want 3", got)
	}
}

func TestEffectiveSizeHint(t *testing.T) {
	s := validSpec()
	if got := s.EffectiveSizeHint(); got != 40 {
		t.Errorf("default hint = %v, want true size 40", got)
	}
	s.SizeHint = 7
	if got := s.EffectiveSizeHint(); got != 7 {
		t.Errorf("explicit hint = %v, want 7", got)
	}
}

func TestValidate(t *testing.T) {
	tests := []struct {
		name    string
		mutate  func(*Spec)
		wantErr string
	}{
		{name: "valid", mutate: func(s *Spec) {}},
		{name: "negative arrival", mutate: func(s *Spec) { s.Arrival = -1 }, wantErr: "negative arrival"},
		{name: "no stages", mutate: func(s *Spec) { s.Stages = nil }, wantErr: "no stages"},
		{name: "empty stage", mutate: func(s *Spec) { s.Stages[0].Tasks = nil }, wantErr: "no tasks"},
		{name: "zero duration", mutate: func(s *Spec) { s.Stages[0].Tasks[0].Duration = 0 }, wantErr: "non-positive duration"},
		{name: "negative duration", mutate: func(s *Spec) { s.Stages[0].Tasks[0].Duration = -5 }, wantErr: "non-positive duration"},
		{name: "zero containers", mutate: func(s *Spec) { s.Stages[1].Tasks[0].Containers = 0 }, wantErr: "non-positive containers"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			s := validSpec()
			tt.mutate(&s)
			err := s.Validate()
			if tt.wantErr == "" {
				if err != nil {
					t.Errorf("Validate() = %v, want nil", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tt.wantErr) {
				t.Errorf("Validate() = %v, want error containing %q", err, tt.wantErr)
			}
		})
	}
}

func TestValidateAll(t *testing.T) {
	a, b := validSpec(), validSpec()
	b.ID = 2
	if err := ValidateAll([]Spec{a, b}); err != nil {
		t.Errorf("ValidateAll = %v, want nil", err)
	}
	b.ID = 1
	if err := ValidateAll([]Spec{a, b}); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Errorf("ValidateAll = %v, want duplicate-ID error", err)
	}
	bad := validSpec()
	bad.Stages = nil
	if err := ValidateAll([]Spec{bad}); err == nil {
		t.Error("ValidateAll accepted invalid spec")
	}
}

func TestDeps(t *testing.T) {
	s := Spec{
		ID: 1,
		Stages: []StageSpec{
			{Name: "a", Tasks: []TaskSpec{{Duration: 1, Containers: 1}}},
			{Name: "b", Tasks: []TaskSpec{{Duration: 1, Containers: 1}}},
			{Name: "c", Tasks: []TaskSpec{{Duration: 1, Containers: 1}}, DependsOn: []int{0}},
			{Name: "d", Tasks: []TaskSpec{{Duration: 1, Containers: 1}}, DependsOn: []int{}},
		},
	}
	if got := s.Deps(0); got != nil {
		t.Errorf("Deps(0) = %v, want nil (root)", got)
	}
	if got := s.Deps(1); len(got) != 1 || got[0] != 0 {
		t.Errorf("Deps(1) = %v, want linear default [0]", got)
	}
	if got := s.Deps(2); len(got) != 1 || got[0] != 0 {
		t.Errorf("Deps(2) = %v, want explicit [0]", got)
	}
	if got := s.Deps(3); got == nil || len(got) != 0 {
		t.Errorf("Deps(3) = %v, want explicit empty (root)", got)
	}
}

func TestValidateDAGEdges(t *testing.T) {
	base := func() Spec {
		return Spec{
			ID: 1,
			Stages: []StageSpec{
				{Name: "a", Tasks: []TaskSpec{{Duration: 1, Containers: 1}}},
				{Name: "b", Tasks: []TaskSpec{{Duration: 1, Containers: 1}}},
			},
		}
	}
	s := base()
	s.Stages[1].DependsOn = []int{-1}
	if err := s.Validate(); err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Errorf("negative dep: %v", err)
	}
	s = base()
	s.Stages[1].DependsOn = []int{1}
	if err := s.Validate(); err == nil || !strings.Contains(err.Error(), "itself") {
		t.Errorf("self dep: %v", err)
	}
	// Three-stage cycle through explicit deps.
	s = base()
	s.Stages = append(s.Stages, StageSpec{
		Name: "c", Tasks: []TaskSpec{{Duration: 1, Containers: 1}}, DependsOn: []int{1},
	})
	s.Stages[0].DependsOn = []int{2}
	s.Stages[1].DependsOn = []int{0}
	if err := s.Validate(); err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Errorf("cycle: %v", err)
	}
	// Valid diamond passes.
	s = base()
	s.Stages = append(s.Stages,
		StageSpec{Name: "c", Tasks: []TaskSpec{{Duration: 1, Containers: 1}}, DependsOn: []int{0}},
		StageSpec{Name: "d", Tasks: []TaskSpec{{Duration: 1, Containers: 1}}, DependsOn: []int{1, 2}},
	)
	if err := s.Validate(); err != nil {
		t.Errorf("diamond: %v", err)
	}
}
