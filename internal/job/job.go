// Package job defines the static description of data-processing jobs used by
// the task-level cluster simulator: jobs consist of stages, stages consist
// of tasks, and tasks occupy a fixed number of containers for a duration.
//
// By default stages form a chain — stage i+1 only starts once stage i has
// completed, like Hadoop's map→reduce (the paper does not consider stage
// overlap within a dependency). Spark-style jobs can instead declare an
// arbitrary stage DAG via StageSpec.DependsOn; independent stages then run
// concurrently, exactly as Spark schedules independent RDD lineage branches.
package job

import "fmt"

// TaskSpec describes one task of a stage.
type TaskSpec struct {
	// Duration is the nominal running time of the task in seconds.
	Duration float64
	// Containers is the number of containers the task occupies while running
	// (the paper's implementation uses 1 for map tasks and 2 for reduce
	// tasks, since reduce tasks get 4 GB against the 2 GB container unit).
	Containers int
}

// StageSpec describes one stage of a job.
type StageSpec struct {
	// Name labels the stage (e.g. "map", "reduce").
	Name string
	// Tasks are the stage's tasks. All must be present before the stage can
	// complete.
	Tasks []TaskSpec
	// DependsOn lists the indices of stages that must complete before this
	// stage starts. nil means the linear default: the previous stage (none
	// for stage 0). An explicit empty slice ([]int{}) declares a root stage
	// with no dependencies.
	DependsOn []int
}

// Deps resolves the effective dependencies of stage i in the spec: the
// explicit DependsOn when set, otherwise the linear default.
func (s *Spec) Deps(i int) []int {
	st := &s.Stages[i]
	if st.DependsOn != nil {
		return st.DependsOn
	}
	if i == 0 {
		return nil
	}
	return []int{i - 1}
}

// Service returns the total service of the stage in container-seconds.
func (s *StageSpec) Service() float64 {
	var total float64
	for _, t := range s.Tasks {
		total += t.Duration * float64(t.Containers)
	}
	return total
}

// Spec describes a job to be submitted to the simulated cluster.
type Spec struct {
	// ID uniquely identifies the job within a workload.
	ID int
	// Name is the benchmark name (e.g. "WordCount").
	Name string
	// Bin is the input-size bin (1..4 in the paper's Table I); purely a
	// reporting label.
	Bin int
	// Priority is the job priority in [1,5]; only the Fair scheduler uses it.
	Priority int
	// Arrival is the submission time in seconds.
	Arrival float64
	// SizeHint is the a priori size estimate available to the SJF/SRTF
	// baselines, in container-seconds. Zero means "use the true total
	// service". Experiments perturb it to model estimation error.
	SizeHint float64
	// Stages are executed sequentially.
	Stages []StageSpec
}

// TotalService returns the exact total service of the job in
// container-seconds (the paper's notion of job size).
func (s *Spec) TotalService() float64 {
	var total float64
	for i := range s.Stages {
		total += s.Stages[i].Service()
	}
	return total
}

// TotalTasks returns the number of tasks across all stages.
func (s *Spec) TotalTasks() int {
	n := 0
	for i := range s.Stages {
		n += len(s.Stages[i].Tasks)
	}
	return n
}

// EffectiveSizeHint returns SizeHint, defaulting to the true total service.
func (s *Spec) EffectiveSizeHint() float64 {
	if s.SizeHint > 0 {
		return s.SizeHint
	}
	return s.TotalService()
}

// Validate checks that the spec can be simulated.
func (s *Spec) Validate() error {
	if s.Arrival < 0 {
		return fmt.Errorf("job %d: negative arrival %v", s.ID, s.Arrival)
	}
	if len(s.Stages) == 0 {
		return fmt.Errorf("job %d: no stages", s.ID)
	}
	for si := range s.Stages {
		st := &s.Stages[si]
		if len(st.Tasks) == 0 {
			return fmt.Errorf("job %d stage %d (%s): no tasks", s.ID, si, st.Name)
		}
		for ti, task := range st.Tasks {
			if task.Duration <= 0 {
				return fmt.Errorf("job %d stage %d task %d: non-positive duration %v",
					s.ID, si, ti, task.Duration)
			}
			if task.Containers <= 0 {
				return fmt.Errorf("job %d stage %d task %d: non-positive containers %d",
					s.ID, si, ti, task.Containers)
			}
		}
		for _, dep := range st.DependsOn {
			if dep < 0 || dep >= len(s.Stages) {
				return fmt.Errorf("job %d stage %d: dependency %d out of range", s.ID, si, dep)
			}
			if dep == si {
				return fmt.Errorf("job %d stage %d: depends on itself", s.ID, si)
			}
		}
	}
	if err := s.checkAcyclic(); err != nil {
		return err
	}
	return nil
}

// checkAcyclic verifies the stage dependency graph has no cycles, so every
// stage can eventually run.
func (s *Spec) checkAcyclic() error {
	const (
		unvisited = iota
		visiting
		done
	)
	state := make([]int, len(s.Stages))
	var visit func(i int) error
	visit = func(i int) error {
		switch state[i] {
		case done:
			return nil
		case visiting:
			return fmt.Errorf("job %d: stage dependency cycle through stage %d", s.ID, i)
		}
		state[i] = visiting
		for _, dep := range s.Deps(i) {
			if err := visit(dep); err != nil {
				return err
			}
		}
		state[i] = done
		return nil
	}
	for i := range s.Stages {
		if err := visit(i); err != nil {
			return err
		}
	}
	return nil
}

// ValidateAll validates a whole workload and checks job IDs are unique.
func ValidateAll(specs []Spec) error {
	seen := make(map[int]bool, len(specs))
	for i := range specs {
		if err := specs[i].Validate(); err != nil {
			return err
		}
		if seen[specs[i].ID] {
			return fmt.Errorf("duplicate job ID %d", specs[i].ID)
		}
		seen[specs[i].ID] = true
	}
	return nil
}
