// Package lasmq is a from-scratch reproduction of "Job Scheduling without
// Prior Information in Big Data Processing Systems" (Hu, Li, Qin, Goh —
// ICDCS 2017): the LAS_MQ multilevel-queue job scheduler for YARN-style
// clusters, together with everything needed to evaluate it — a task-level
// discrete-event cluster simulator, an event-driven fluid simulator for
// trace-scale studies, the FIFO/Fair/LAS/SJF/SRTF baselines, the paper's
// Table I workload, a synthetic Facebook-2010-like trace, and one runner per
// table and figure of the paper's evaluation.
//
// # The scheduler
//
// LAS_MQ schedules jobs without knowing their sizes. Jobs enter the
// highest-priority queue and are demoted once the service they have attained
// (container-seconds, optionally projected forward with stage awareness)
// crosses exponentially increasing thresholds. Small jobs therefore complete
// in the top queues while large jobs sink, which mimics shortest-job-first
// without size information. Capacity is shared across queues by weighted
// fair sharing (no starvation) and jobs within a queue are served one by one,
// ordered by the container demand of their remaining tasks.
//
// # Quick start
//
//	cfg := lasmq.DefaultSchedulerConfig()
//	scheduler, err := lasmq.NewScheduler(cfg)
//	if err != nil { ... }
//	specs, err := lasmq.GenerateWorkload(lasmq.DefaultWorkloadConfig())
//	if err != nil { ... }
//	result, err := lasmq.RunCluster(specs, scheduler, lasmq.DefaultClusterConfig())
//	if err != nil { ... }
//	fmt.Println(result.MeanResponseTime())
//
// See examples/ for runnable programs, cmd/ for the CLIs, and DESIGN.md /
// EXPERIMENTS.md for the system inventory and the paper-vs-measured record.
package lasmq
