package lasmq_test

import (
	"fmt"

	"lasmq"
)

// ExampleRunCluster schedules two hand-built jobs — one large, one small —
// and shows LAS_MQ letting the late small job overtake the demoted large one.
func ExampleRunCluster() {
	mkJob := func(id int, name string, arrival float64, tasks int, dur float64) lasmq.JobSpec {
		ts := make([]lasmq.TaskSpec, tasks)
		for i := range ts {
			ts[i] = lasmq.TaskSpec{Duration: dur, Containers: 1}
		}
		return lasmq.JobSpec{
			ID: id, Name: name, Priority: 1, Arrival: arrival,
			Stages: []lasmq.StageSpec{{Name: "map", Tasks: ts}},
		}
	}
	specs := []lasmq.JobSpec{
		mkJob(1, "large", 0, 100, 60),
		mkJob(2, "small", 30, 2, 5),
	}
	scheduler, err := lasmq.NewScheduler(lasmq.DefaultSchedulerConfig())
	if err != nil {
		fmt.Println(err)
		return
	}
	cfg := lasmq.DefaultClusterConfig()
	cfg.Containers = 20

	result, err := lasmq.RunCluster(specs, scheduler, cfg)
	if err != nil {
		fmt.Println(err)
		return
	}
	for _, jr := range result.Jobs {
		fmt.Printf("%s: response %.0f s\n", jr.Name, jr.ResponseTime)
	}
	// Output:
	// large: response 305 s
	// small: response 35 s
}

// ExampleRunTrace reproduces the paper's motivating example (Fig. 1): under
// LAS, jobs A and B degrade to processor sharing; a 2-level multilevel queue
// serves them one by one and cuts A's response time from 9 to 6.
func ExampleRunTrace() {
	specs := []lasmq.TraceJob{
		{ID: 1, Arrival: 0, Size: 4, Width: 1, Priority: 1}, // A
		{ID: 2, Arrival: 1, Size: 4, Width: 1, Priority: 1}, // B
		{ID: 3, Arrival: 2, Size: 1, Width: 1, Priority: 1}, // C
	}
	cfg := lasmq.FluidConfig{Capacity: 1, TaskDuration: 1}

	las, err := lasmq.RunTrace(specs, lasmq.NewLAS(), cfg)
	if err != nil {
		fmt.Println(err)
		return
	}
	mqCfg := lasmq.DefaultSchedulerConfig()
	mqCfg.Queues = 2
	mqCfg.FirstThreshold = 1
	mqCfg.QueueWeightDecay = 1e9 // strict priority, as in the paper's figure
	mq, err := lasmq.NewScheduler(mqCfg)
	if err != nil {
		fmt.Println(err)
		return
	}
	mlq, err := lasmq.RunTrace(specs, mq, cfg)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("job A under LAS: %.0f\n", las.Jobs[0].ResponseTime)
	fmt.Printf("job A under 2-level queue: %.0f\n", mlq.Jobs[0].ResponseTime)
	// Output:
	// job A under LAS: 9
	// job A under 2-level queue: 6
}

// ExampleNewTradeoff blends LAS_MQ with Fair to trade mean response time for
// fairness (the paper's future-work knob).
func ExampleNewTradeoff() {
	mq, err := lasmq.NewScheduler(lasmq.DefaultSchedulerConfig())
	if err != nil {
		fmt.Println(err)
		return
	}
	blend, err := lasmq.NewTradeoff(mq, lasmq.NewFair(), 0.5)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println(blend.Name())
	// Output:
	// BLEND(LAS_MQ,FAIR,0.50)
}
