module lasmq

go 1.22
