package lasmq

import (
	"io"

	"lasmq/internal/analytic"
	"lasmq/internal/core"
	"lasmq/internal/dfs"
	"lasmq/internal/dist"
	"lasmq/internal/engine"
	"lasmq/internal/experiments"
	"lasmq/internal/fluid"
	"lasmq/internal/geo"
	"lasmq/internal/job"
	"lasmq/internal/mapreduce"
	"lasmq/internal/runner"
	"lasmq/internal/sched"
	"lasmq/internal/substrate"
	"lasmq/internal/trace"
	"lasmq/internal/workload"
	"lasmq/internal/yarn"
)

// Scheduling policies.
type (
	// Scheduler is the policy interface shared by both simulators: it
	// observes runnable-job snapshots and returns container shares.
	Scheduler = sched.Scheduler
	// JobView is the scheduler-facing snapshot of one runnable job.
	JobView = sched.JobView
	// Assignment maps job ID to granted container share.
	Assignment = sched.Assignment
	// SchedulerConfig configures the LAS_MQ policy (queues, thresholds,
	// cross-queue weights, stage awareness, in-queue ordering).
	SchedulerConfig = core.Config
	// LASMQ is the paper's multilevel-queue scheduler.
	LASMQ = core.LASMQ
)

// NewScheduler returns a fresh LAS_MQ scheduler. Schedulers are stateful;
// use one instance per simulation run.
func NewScheduler(cfg SchedulerConfig) (*LASMQ, error) { return core.New(cfg) }

// DefaultSchedulerConfig returns the paper's testbed configuration
// (k = 10 queues, first threshold 100 container-seconds, step 10).
func DefaultSchedulerConfig() SchedulerConfig { return core.DefaultConfig() }

// Extensions beyond the paper (its Discussion section's future work).
type (
	// AdaptiveSchedulerConfig configures the adaptive-threshold LAS_MQ
	// variant, which refits its threshold ladder online from completed-job
	// sizes.
	AdaptiveSchedulerConfig = core.AdaptiveConfig
	// AdaptiveLASMQ is the adaptive-threshold scheduler.
	AdaptiveLASMQ = core.Adaptive
	// Tradeoff blends two policies' allocations convexly (e.g. LAS_MQ with
	// Fair) to trade mean response time for fairness.
	Tradeoff = sched.Blend
)

// NewAdaptiveScheduler returns the adaptive-threshold LAS_MQ variant.
func NewAdaptiveScheduler(cfg AdaptiveSchedulerConfig) (*AdaptiveLASMQ, error) {
	return core.NewAdaptive(cfg)
}

// DefaultAdaptiveSchedulerConfig returns the default adaptive configuration.
func DefaultAdaptiveSchedulerConfig() AdaptiveSchedulerConfig {
	return core.DefaultAdaptiveConfig()
}

// NewTradeoff returns a scheduler allocating
// (1-theta)*primary + theta*secondary; with primary LAS_MQ and secondary
// Fair, theta tunes the fairness/response-time tradeoff.
func NewTradeoff(primary, secondary Scheduler, theta float64) (*Tradeoff, error) {
	return sched.NewBlend(primary, secondary, theta)
}

// NewFIFO returns the FIFO baseline: strict admission-order service.
func NewFIFO() Scheduler { return sched.NewFIFO() }

// NewFair returns the Fair baseline: priority-weighted max-min sharing.
func NewFair() Scheduler { return sched.NewFair() }

// NewLAS returns the least-attained-service baseline.
func NewLAS() Scheduler { return sched.NewLAS() }

// NewSJF returns the shortest-job-first baseline (requires size hints).
func NewSJF() Scheduler { return sched.NewSJF() }

// NewSRTF returns the shortest-remaining-time-first baseline (requires size
// hints).
func NewSRTF() Scheduler { return sched.NewSRTF() }

// NewPS returns the processor-sharing baseline: equal fluid shares across all
// runnable jobs — the oblivious sharing reference the price-of-obliviousness
// experiment normalizes against.
func NewPS() Scheduler { return sched.NewPS() }

// NewSRPT returns the exact shortest-remaining-processing-time baseline: the
// clairvoyant optimum, reading exact remaining service rather than the
// possibly-perturbed size hints SRTF uses.
func NewSRPT() Scheduler { return sched.NewSRPT() }

// ServiceDist is an analytic service-time distribution — tail, mean, and
// upper support — the prior knowledge the Gittins baseline schedules from.
type ServiceDist = dist.Service

// NewGittins returns the Gittins-index baseline: the optimal non-anticipating
// policy given the service distribution of job sizes. A nil service falls
// back to the unit-mean exponential, whose constant index degrades the policy
// to FIFO (which is optimal there).
func NewGittins(service ServiceDist) Scheduler { return sched.NewGittins(service) }

// Task-level cluster simulation (the YARN substrate).
type (
	// JobSpec describes a multi-stage job for the cluster simulator.
	JobSpec = job.Spec
	// StageSpec is one stage (map or reduce) of a JobSpec.
	StageSpec = job.StageSpec
	// TaskSpec is one task of a stage.
	TaskSpec = job.TaskSpec
	// ClusterConfig configures the cluster simulator (containers, admission
	// limit, failure/straggler injection, speculation).
	ClusterConfig = engine.Config
	// ClusterResult reports a cluster simulation run.
	ClusterResult = engine.Result
	// ClusterJobResult reports one finished job of a cluster run.
	ClusterJobResult = engine.JobResult
	// SimResult is the scheduling-substrate kernel's result accumulator.
	// Both ClusterResult and FluidResult embed it, so the response-time and
	// slowdown statistics (MeanResponseTime, ResponseTimes, Slowdowns,
	// BinMeans) read identically across the simulators; code can accept a
	// *SimResult to work with either.
	SimResult = substrate.Result
)

// RunCluster simulates the workload on the task-level cluster simulator.
func RunCluster(specs []JobSpec, policy Scheduler, cfg ClusterConfig) (*ClusterResult, error) {
	return engine.Run(specs, policy, cfg)
}

// RunIsolated returns a job's completion time alone on the cluster — the
// denominator of the paper's slowdown metric.
func RunIsolated(spec JobSpec, policy Scheduler, cfg ClusterConfig) (float64, error) {
	return engine.RunIsolated(spec, policy, cfg)
}

// DefaultClusterConfig returns the paper's testbed: 120 containers and an
// admission limit of 30 concurrently running jobs.
func DefaultClusterConfig() ClusterConfig { return engine.DefaultConfig() }

// Fluid trace simulation.
type (
	// TraceJob describes a malleable trace job for the fluid simulator.
	TraceJob = fluid.JobSpec
	// FluidConfig configures the fluid simulator (capacity, demand
	// granularity, admission limit).
	FluidConfig = fluid.Config
	// FluidResult reports a fluid simulation run.
	FluidResult = fluid.Result
	// FluidJobResult reports one finished trace job.
	FluidJobResult = fluid.JobResult
)

// RunTrace simulates a trace on the event-driven fluid simulator.
func RunTrace(specs []TraceJob, policy Scheduler, cfg FluidConfig) (*FluidResult, error) {
	return fluid.Run(specs, policy, cfg)
}

// DefaultFluidConfig returns the heavy-tailed trace simulation configuration.
func DefaultFluidConfig() FluidConfig { return fluid.DefaultConfig() }

// Geo-distributed analytics (the paper's third future-work direction).
type (
	// GeoConfig describes a multi-site deployment with time-varying
	// inter-site bandwidth.
	GeoConfig = geo.Config
	// GeoJob is a geo-analytics query: tasks over site-resident data.
	GeoJob = geo.JobSpec
	// GeoTask is one task of a GeoJob.
	GeoTask = geo.TaskSpec
	// GeoResult reports a geo simulation run.
	GeoResult = geo.Result
	// GeoPlacement selects the task placement policy.
	GeoPlacement = geo.PlacementPolicy
)

// Geo placement policies.
const (
	// GeoPlaceLocalityAware runs tasks at their data's site when possible,
	// spilling to the fastest link otherwise.
	GeoPlaceLocalityAware = geo.PlaceLocalityAware
	// GeoPlaceBlind ignores data locality (the decoupled strawman).
	GeoPlaceBlind = geo.PlaceBlind
)

// RunGeo simulates a geo-distributed workload: job ordering from the policy,
// task placement from cfg.Placement.
func RunGeo(specs []GeoJob, policy Scheduler, cfg GeoConfig) (*GeoResult, error) {
	return geo.Run(specs, policy, cfg)
}

// DefaultGeoConfig returns three 20-container sites with several-fold
// bandwidth variability.
func DefaultGeoConfig() GeoConfig { return geo.DefaultConfig() }

// Live mini-YARN cluster (a concurrent resource manager, not a simulation).
type (
	// LiveClusterConfig configures the mini-YARN cluster (nodes, containers
	// per node, admission limit, time scale).
	LiveClusterConfig = yarn.Config
	// LiveCluster is a running cluster: ResourceManager plus one NodeManager
	// goroutine per node, executing task attempts in scaled real time.
	LiveCluster = yarn.Cluster
	// LiveJobReport describes one application completed on a LiveCluster.
	LiveJobReport = yarn.JobReport
)

// NewLiveCluster builds a mini-YARN cluster around a scheduling policy.
// Call Start, Submit jobs, then Drain (and Shutdown when done).
func NewLiveCluster(cfg LiveClusterConfig, policy Scheduler) (*LiveCluster, error) {
	return yarn.New(cfg, policy)
}

// DefaultLiveClusterConfig returns a 4-node, 120-container cluster at
// millisecond time scale.
func DefaultLiveClusterConfig() LiveClusterConfig { return yarn.DefaultConfig() }

// HDFS-like block storage and data locality.
type (
	// DFSConfig describes the block store (block size, replication).
	DFSConfig = dfs.Config
	// DFSStore is the namenode: file -> block -> replica metadata.
	DFSStore = dfs.Store
	// DFSBlock is one replicated block of a file.
	DFSBlock = dfs.Block
	// Locality carries per-map-task block locations for the live cluster.
	Locality = yarn.Locality
)

// NewDFS returns an empty block store.
func NewDFS(cfg DFSConfig) (*DFSStore, error) { return dfs.New(cfg) }

// DefaultDFSConfig mirrors the paper's HDFS settings: 128 MB blocks,
// replication factor 2, four nodes.
func DefaultDFSConfig() DFSConfig { return dfs.DefaultConfig() }

// LocalityFromDFS derives a job's map-task block locations from a store, for
// LiveCluster.SubmitWithLocality.
func LocalityFromDFS(store *DFSStore, file string, remotePenalty float64) (Locality, error) {
	return yarn.LocalityFromDFS(store, file, remotePenalty)
}

// MapReduce: a minimal framework running real computation on the mini-YARN
// cluster, scheduled by any policy.
type (
	// MapReduceJob is one MapReduce job (splits, mapper, reducer).
	MapReduceJob = mapreduce.Job
	// MapReduceMapper processes one input split.
	MapReduceMapper = mapreduce.Mapper
	// MapReduceReducer folds one key's values.
	MapReduceReducer = mapreduce.Reducer
	// MapReduceOutput is a job's final key -> value mapping.
	MapReduceOutput = mapreduce.Output
	// MapReduceResult carries outputs plus cluster job reports.
	MapReduceResult = mapreduce.Result
)

// RunMapReduce executes MapReduce jobs concurrently on a dedicated mini-YARN
// cluster under the given scheduling policy.
func RunMapReduce(cfg LiveClusterConfig, policy Scheduler, jobs []MapReduceJob) (*MapReduceResult, error) {
	return mapreduce.Run(cfg, policy, jobs)
}

// DefaultMapReduceClusterConfig returns a cluster configuration tuned for
// real-work MapReduce jobs.
func DefaultMapReduceClusterConfig() LiveClusterConfig { return mapreduce.DefaultClusterConfig() }

// Built-in MapReduce functions mirroring the paper's benchmarks.
var (
	// WordCountMap emits (word, "1") per word.
	WordCountMap = mapreduce.WordCountMap
	// WordCountReduce sums per-word counts.
	WordCountReduce MapReduceReducer = mapreduce.WordCountReduce
	// InvertedIndexMap emits (word, docID) pairs.
	InvertedIndexMap = mapreduce.InvertedIndexMap
	// InvertedIndexReduce joins a word's document IDs.
	InvertedIndexReduce MapReduceReducer = mapreduce.InvertedIndexReduce
	// GrepMap builds a mapper emitting lines containing a pattern.
	GrepMap = mapreduce.GrepMap
	// CountReduce counts a key's values.
	CountReduce MapReduceReducer = mapreduce.CountReduce
	// SynthesizeText builds deterministic pseudo-text splits.
	SynthesizeText = mapreduce.SynthesizeText
)

// Workload and trace synthesis.
type (
	// WorkloadConfig controls Table I workload generation.
	WorkloadConfig = workload.Config
	// WorkloadJobType is one row of the paper's Table I.
	WorkloadJobType = workload.JobType
	// FacebookTraceConfig controls synthesis of the heavy-tailed trace.
	FacebookTraceConfig = trace.FacebookConfig
)

// GenerateWorkload builds the paper's 100-job Table I workload with Poisson
// arrivals.
func GenerateWorkload(cfg WorkloadConfig) ([]JobSpec, error) { return workload.Generate(cfg) }

// DefaultWorkloadConfig returns the Fig. 5 workload configuration
// (80-second mean arrival interval).
func DefaultWorkloadConfig() WorkloadConfig { return workload.DefaultConfig() }

// TableI returns the paper's workload composition.
func TableI() []WorkloadJobType { return workload.TableI() }

// FacebookTrace synthesizes the heavy-tailed Facebook-2010-like trace.
func FacebookTrace(cfg FacebookTraceConfig) ([]TraceJob, error) { return trace.Facebook(cfg) }

// DefaultFacebookTraceConfig returns the paper's trace parameters
// (24,443 jobs at load 0.9, mean normalized size 20).
func DefaultFacebookTraceConfig() FacebookTraceConfig { return trace.DefaultFacebookConfig() }

// UniformTrace builds the paper's light-tailed workload: n identical jobs
// submitted as a batch.
func UniformTrace(n int, size float64) ([]TraceJob, error) { return trace.Uniform(n, size, 0) }

// WriteTraceCSV serializes a trace in the CSV format the CLIs replay
// (header: id,arrival,size,width,priority).
func WriteTraceCSV(w io.Writer, specs []TraceJob) error { return trace.WriteCSV(w, specs) }

// ReadTraceCSV parses a trace written by WriteTraceCSV.
func ReadTraceCSV(r io.Reader) ([]TraceJob, error) { return trace.ReadCSV(r) }

// Experiments: one runner per paper table/figure (see EXPERIMENTS.md).
type (
	// ExperimentOptions tune experiment scale and seeding.
	ExperimentOptions = experiments.Options
)

// Replicated experiment runs (the parallel multi-seed replication engine).
type (
	// ReplicationOptions tune a replicated run: seed count, base seed,
	// worker-pool size, and the content-addressed result cache directory.
	ReplicationOptions = runner.Options
	// ReplicationReport is a full replicated run: per-experiment aggregates
	// plus cache hit/miss counters.
	ReplicationReport = runner.Report
	// ReplicationAggregate is one experiment merged across seeds.
	ReplicationAggregate = runner.Aggregate
	// ReplicationCell is one metric cell's cross-seed statistics
	// (mean ± 95 % CI, per-seed spread).
	ReplicationCell = runner.AggregateCell
	// RegisteredExperiment is one entry of the replication table: a pure
	// func(seed) producing a metric-cell sample.
	RegisteredExperiment = runner.Experiment
	// ExperimentSample is one experiment's result at one seed.
	ExperimentSample = runner.Sample
	// MetricCell is one scalar metric of a sample.
	MetricCell = runner.Cell
)

// ExperimentRegistry returns every paper experiment as a replication-table
// entry at the given scale.
func ExperimentRegistry(opts ExperimentOptions) []RegisteredExperiment {
	return experiments.Registry(opts)
}

// ExperimentNames lists the registered experiment names in reporting order.
func ExperimentNames() []string { return experiments.RegistryNames() }

// RunReplicated fans the named experiments (all when names is empty) out
// over ropts.Seeds seeds on a bounded worker pool, reusing cached cells when
// ropts.CacheDir is set, and returns deterministic mean ± 95 % CI aggregates.
func RunReplicated(opts ExperimentOptions, ropts ReplicationOptions, names ...string) (*ReplicationReport, error) {
	exps, err := experiments.SelectRegistry(opts, names...)
	if err != nil {
		return nil, err
	}
	return runner.Run(exps, ropts)
}

// RunExperiments is the generic entry point for caller-supplied experiment
// tables (anything expressible as a pure func(seed) sample).
func RunExperiments(exps []RegisteredExperiment, ropts ReplicationOptions) (*ReplicationReport, error) {
	return runner.Run(exps, ropts)
}

// Experiment runners re-exported from the harness.
var (
	// Fig1 reproduces the motivating example (LAS vs. a 2-level queue).
	Fig1 = experiments.Fig1
	// Fig3 reproduces the design-option ablation.
	Fig3 = experiments.Fig3
	// Fig5 reproduces the 80-second-interval testbed experiment.
	Fig5 = experiments.Fig5
	// Fig6 reproduces the 50-second-interval (higher-load) experiment.
	Fig6 = experiments.Fig6
	// Fig7HeavyTailed reproduces the heavy-tailed trace simulation.
	Fig7HeavyTailed = experiments.Fig7HeavyTailed
	// Fig7Uniform reproduces the uniform-workload simulation.
	Fig7Uniform = experiments.Fig7Uniform
	// Fig8Queues reproduces the number-of-queues sensitivity sweep.
	Fig8Queues = experiments.Fig8Queues
	// Fig8Thresholds reproduces the first-threshold sensitivity sweep.
	Fig8Thresholds = experiments.Fig8Thresholds
	// PriceOfObliviousness runs the information-hierarchy sweep: SRPT,
	// Gittins, LAS_MQ, LAS, PS and FIFO on the congested Table-I mix.
	PriceOfObliviousness = experiments.PriceOfObliviousness
)

// Analytic queueing baselines (see DESIGN.md, "Analytic cross-check"): the
// closed forms and the numeric M/G/1 evaluator that the crosscheck test
// family validates both simulators against.
type (
	// MG1 is the numeric M/G/1 evaluator: mean response time under FCFS, PS,
	// SRPT and LAS for an arbitrary service distribution.
	MG1 = analytic.MG1
)

// NewMG1 builds an M/G/1 evaluator at arrival rate lambda for the service
// distribution (points <= 0 selects the default grid resolution).
func NewMG1(lambda float64, service ServiceDist, points int) (*MG1, error) {
	return analytic.NewMG1(lambda, service, points)
}

// Closed-form M/M/1 mean response times.
var (
	// MM1FCFS is the M/M/1 FCFS mean response time, 1/(mu-lambda).
	MM1FCFS = analytic.MM1FCFS
	// MM1PS is the M/M/1 processor-sharing mean response time.
	MM1PS = analytic.MM1PS
	// MM1LAS is the M/M/1 least-attained-service mean response time.
	MM1LAS = analytic.MM1LAS
	// MM1SRPT is the M/M/1 SRPT mean response time (numeric).
	MM1SRPT = analytic.MM1SRPT
)
