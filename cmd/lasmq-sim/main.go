// Command lasmq-sim runs trace-driven fluid simulations (the paper's Sec. V-C
// evaluation). It replays a CSV trace (see lasmq-trace) or synthesizes the
// built-in heavy-tailed or uniform workloads, under a chosen policy.
//
// Usage:
//
//	lasmq-sim [-trace file.csv | -synth facebook|uniform] [-scheduler lasmq|...]
//	          [-capacity 20] [-jobs N] [-seed 1] [-queues 10] [-threshold 1]
//	          [-step 10] [-decay 8] [-jobs-csv] [-cdf]
//	          [-trace-out run.trace] [-trace-format jsonl|chrome]
//	          [-hist-out hist.csv] [-series-out series.csv] [-series-window 50]
//
// -trace-out records every scheduler event (submissions, admissions, queue
// demotions, completions) to a file: -trace-format jsonl is a deterministic
// line-oriented log, chrome is Chrome trace-event JSON for Perfetto
// (https://ui.perfetto.dev) or chrome://tracing. -hist-out writes the run's
// latency distributions (response, slowdown, admission wait, task duration,
// scheduler round latency) as log-scale histogram CSVs with p50..p999
// summary rows; -series-out writes a windowed virtual-time series
// (utilization, per-queue depths, live jobs, events/sec) sampled every
// -series-window cluster seconds. All of it is observation only — simulated
// results are identical with telemetry on or off.
package main

import (
	"flag"
	"fmt"
	"os"

	"lasmq/internal/cli"
	"lasmq/internal/core"
	"lasmq/internal/fluid"
	"lasmq/internal/obs"
	"lasmq/internal/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "lasmq-sim:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		traceFile = flag.String("trace", "", "CSV trace to replay (from lasmq-trace)")
		synth     = flag.String("synth", "facebook", "built-in trace when -trace is unset: facebook or uniform")
		jobs      = flag.Int("jobs", 0, "override job count (default: paper scale)")
		seed      = flag.Int64("seed", 1, "trace synthesis seed")
		schedName = flag.String("scheduler", "lasmq", "scheduling policy: "+cli.SchedulerNames())
		capacity  = flag.Float64("capacity", 0, "cluster capacity in containers (default: per-trace)")

		queues    = flag.Int("queues", 10, "LAS_MQ: number of queues")
		threshold = flag.Float64("threshold", 1, "LAS_MQ: first queue threshold")
		step      = flag.Float64("step", 10, "LAS_MQ: threshold step")
		decay     = flag.Float64("decay", 8, "LAS_MQ: cross-queue weight decay")
		ordering  = flag.Bool("ordering", false, "LAS_MQ: order within queues by remaining demand (trace sims default to FIFO queues)")

		jobsCSV = flag.Bool("jobs-csv", false, "print per-job results as CSV")
		showCDF = flag.Bool("cdf", false, "print the response-time CDF")

		traceOut    = flag.String("trace-out", "", "write a scheduler event trace to this file (telemetry; results are unaffected)")
		traceFormat = flag.String("trace-format", "jsonl", "event-trace format: "+cli.TraceFormats()+" (chrome opens in Perfetto / chrome://tracing)")
		histOut     = flag.String("hist-out", "", "write latency histograms (response/slowdown/wait/task/round) as CSV to this file")
		seriesOut   = flag.String("series-out", "", "write the windowed utilization/queue-depth series as CSV to this file")
		seriesWin   = flag.Float64("series-window", 50, "series sampling window in cluster seconds")
	)
	flag.Parse()
	if flag.NArg() > 0 {
		return fmt.Errorf("unexpected arguments %q: lasmq-sim takes flags only (see -h)", flag.Args())
	}

	specs, fcfg, err := loadTrace(*traceFile, *synth, *jobs, *seed, *capacity)
	if err != nil {
		return err
	}

	mqCfg := core.Config{
		Queues:           *queues,
		FirstThreshold:   *threshold,
		Step:             *step,
		QueueWeightDecay: *decay,
		StageAware:       false, // trace jobs have no stage structure
		OrderByDemand:    *ordering,
	}
	policy, err := cli.BuildScheduler(*schedName, mqCfg)
	if err != nil {
		return err
	}

	sink, err := cli.OpenTraceSink(*traceOut, *traceFormat)
	if err != nil {
		return err
	}
	hsink, err := cli.OpenHistSink(*histOut, *seriesOut, *seriesWin, int(fcfg.Capacity))
	if err != nil {
		return err
	}
	fcfg.Probe = obs.Multi(sink.Probe(), hsink.Probe())

	res, err := fluid.Run(specs, policy, fcfg)
	if err != nil {
		return err
	}
	if err := sink.Close(); err != nil {
		return err
	}
	if err := hsink.Close(); err != nil {
		return err
	}

	if *jobsCSV {
		fmt.Println("id,arrival,completed,response,size,width,slowdown")
		for _, jr := range res.Jobs {
			fmt.Printf("%d,%g,%g,%g,%g,%g,%g\n",
				jr.ID, jr.Arrival, jr.Completed, jr.ResponseTime, jr.Size, jr.Width, jr.Slowdown)
		}
		return nil
	}

	fmt.Printf("scheduler=%s jobs=%d capacity=%g makespan=%.4g rounds=%d\n",
		res.Scheduler, len(res.Jobs), fcfg.Capacity, res.Makespan, res.Rounds)
	cli.PrintSummary(os.Stdout, "response times", res.ResponseTimes())
	cli.PrintSummary(os.Stdout, "slowdowns", res.Slowdowns())
	if *showCDF {
		cli.PrintCDF(os.Stdout, res.ResponseTimes(), 50)
	}
	sink.PrintSummary(os.Stdout)
	hsink.PrintSummary(os.Stdout)
	return nil
}

func loadTrace(file, synth string, jobs int, seed int64, capacity float64) ([]fluid.JobSpec, fluid.Config, error) {
	fcfg := fluid.DefaultConfig()
	switch {
	case file != "":
		f, err := os.Open(file)
		if err != nil {
			return nil, fcfg, err
		}
		defer f.Close()
		specs, err := trace.ReadCSV(f)
		if err != nil {
			return nil, fcfg, err
		}
		// Replays default to the capacity the shipped generator targets;
		// override with -capacity for traces built against another cluster.
		fcfg.Capacity = trace.DefaultFacebookConfig().Capacity
		if capacity > 0 {
			fcfg.Capacity = capacity
		}
		return specs, fcfg, nil
	case synth == "facebook":
		tcfg := trace.DefaultFacebookConfig()
		if jobs > 0 {
			tcfg.Jobs = jobs
		}
		tcfg.Seed = seed
		if capacity > 0 {
			tcfg.Capacity = capacity
		}
		specs, err := trace.Facebook(tcfg)
		fcfg.Capacity = tcfg.Capacity
		return specs, fcfg, err
	case synth == "uniform":
		n := 10000
		if jobs > 0 {
			n = jobs
		}
		specs, err := trace.Uniform(n, 10000, seed)
		fcfg.Capacity = 1
		if capacity > 0 {
			fcfg.Capacity = capacity
		}
		return specs, fcfg, err
	default:
		return nil, fcfg, fmt.Errorf("unknown synthetic trace %q (want facebook or uniform)", synth)
	}
}
