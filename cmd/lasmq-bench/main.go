// Command lasmq-bench regenerates the paper's tables and figures. Each
// experiment prints the same rows/series the paper reports (normalized or
// absolute average job response times); EXPERIMENTS.md records the
// paper-vs-measured comparison.
//
// Usage:
//
//	lasmq-bench [-experiment all|fig1|fig3|fig5|fig6|fig7a|fig7b|fig8a|fig8b|
//	             table1|sjf-error|weights|adaptive|tradeoff|geo|
//	             price-of-obliviousness|scale-100k|scale-1m|scale-10m|
//	             scale-1m-engine|scale-10m-engine]
//	            [-seed N] [-repeats N] [-trace-jobs N] [-uniform-jobs N]
//	            [-scale-jobs N] [-scale1m-jobs N] [-scale10m-jobs N]
//	            [-shards K] [-shard-workers M]
//	            [-csv-dir DIR]
//	            [-seeds N] [-workers M] [-cache DIR]
//	            [-cpuprofile FILE] [-memprofile FILE]
//	            [-trace-out FILE] [-trace-format jsonl|chrome]
//	            [-hist-out FILE] [-series-out FILE] [-series-window W]
//
// scale-100k (100,000 jobs, materialized), scale-1m (1,000,000 jobs, streamed
// over -shards independent sub-clusters), scale-10m (10,000,000 jobs, the
// same machinery 10x longer) and their task-engine twins scale-1m-engine /
// scale-10m-engine (the same streamed traces staged into map→reduce jobs and
// simulated task by task with chaos injection, sharded via engine.RunSharded)
// are stress tiers, not paper figures; "all" skips them in direct mode so
// reproduce-scale runs stay figure-shaped (select them explicitly, or run
// replicated mode, where the registry includes them).
//
// -cpuprofile and -memprofile capture pprof profiles of the selected
// experiments (`go tool pprof` reads them), the same hooks `go test -bench`
// offers — use them to find where a slow figure actually spends its time.
//
// With -seeds > 1 (or -workers/-cache set) the replication engine takes
// over: every experiment is fanned out over N seeds on an M-worker pool,
// finished (experiment, seed) cells are served from the content-addressed
// cache in -cache DIR, and each figure is reported as mean ± 95 % CI across
// the seeds. A re-run with the same cache directory completes from cache.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"lasmq/internal/cli"
	"lasmq/internal/experiments"
	"lasmq/internal/obs"
	"lasmq/internal/runner"
)

// validExperiments lists every value -experiment accepts: the pseudo-name
// "all", the direct-only "table1" report, and the replication registry.
func validExperiments() []string {
	return append([]string{"all", "table1"}, experiments.RegistryNames()...)
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "lasmq-bench:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		experiment   = flag.String("experiment", "all", "experiment to run (all, fig1, fig3, fig5, fig6, fig7a, fig7b, fig8a, fig8b, table1, sjf-error, weights, adaptive, tradeoff, geo, price-of-obliviousness, scale-100k, scale-1m, scale-10m, scale-1m-engine, scale-10m-engine)")
		seed         = flag.Int64("seed", 1, "workload/trace synthesis seed")
		repeats      = flag.Int("repeats", 1, "averaging repeats for cluster experiments")
		traceJobs    = flag.Int("trace-jobs", 0, "heavy-tailed trace length (default: paper's 24443)")
		uniformJobs  = flag.Int("uniform-jobs", 0, "uniform workload length (default: paper's 10000)")
		scaleJobs    = flag.Int("scale-jobs", 0, "scale-100k stress trace length (default: 100000)")
		scale1mJobs  = flag.Int("scale1m-jobs", 0, "scale-1m streaming trace length (default: 1000000)")
		scale10mJobs = flag.Int("scale10m-jobs", 0, "scale-10m streaming trace length (default: 10000000)")
		shards       = flag.Int("shards", 0, "scale-1m/scale-10m cluster partitions; affects results (default: 8)")
		shardWorker  = flag.Int("shard-workers", 0, "concurrently advancing shards in the scale tiers; never affects results (default: GOMAXPROCS)")
		csvDirFlag   = flag.String("csv-dir", "", "also write each experiment's plottable series as CSV files into this directory")
		seeds        = flag.Int("seeds", 1, "replications per experiment; > 1 engages the parallel replication engine and reports mean ± 95% CI")
		workers      = flag.Int("workers", 0, "worker-pool size for the replication engine (default GOMAXPROCS); setting it engages the engine")
		cacheDir     = flag.String("cache", "", "content-addressed result cache directory; re-runs serve completed (experiment, seed) cells from it")
		cpuProfile   = flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
		memProfile   = flag.String("memprofile", "", "write a pprof heap profile at the end of the run to this file")
		traceOut     = flag.String("trace-out", "", "write a scheduler event trace of the selected experiments to this file (direct mode only)")
		traceFormat  = flag.String("trace-format", "jsonl", "event-trace format: "+cli.TraceFormats())
		histOut      = flag.String("hist-out", "", "write the selected experiments' latency histograms as CSV to this file (direct mode only)")
		seriesOut    = flag.String("series-out", "", "write the windowed utilization/queue-depth series as CSV to this file (direct mode only)")
		seriesWin    = flag.Float64("series-window", 50, "series sampling window in cluster seconds")
	)
	flag.Parse()
	if flag.NArg() > 0 {
		return fmt.Errorf("unexpected arguments %q: lasmq-bench takes flags only (see -h)", flag.Args())
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "lasmq-bench: memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "lasmq-bench: memprofile:", err)
			}
		}()
	}
	csvDir = *csvDirFlag
	if csvDir != "" {
		if err := os.MkdirAll(csvDir, 0o755); err != nil {
			return err
		}
	}

	opts := experiments.Options{
		Seed:         *seed,
		Repeats:      *repeats,
		TraceJobs:    *traceJobs,
		UniformJobs:  *uniformJobs,
		ScaleJobs:    *scaleJobs,
		Scale1MJobs:  *scale1mJobs,
		Scale10MJobs: *scale10mJobs,
		Shards:       *shards,
		ShardWorkers: *shardWorker,
	}

	if *seeds > 1 || *workers > 0 || *cacheDir != "" {
		if *traceOut != "" {
			return fmt.Errorf("-trace-out requires direct mode: the replication engine runs experiments on concurrent workers, which would interleave one trace file")
		}
		if *histOut != "" || *seriesOut != "" {
			return fmt.Errorf("-hist-out/-series-out require direct mode: the replication engine runs experiments on concurrent workers, which would interleave one sink")
		}
		return runReplicated(opts, runner.Options{
			Seeds:    *seeds,
			BaseSeed: *seed,
			Workers:  *workers,
			CacheDir: *cacheDir,
		}, *experiment)
	}

	sink, err := cli.OpenTraceSink(*traceOut, *traceFormat)
	if err != nil {
		return err
	}
	// The series utilization denominator is per-experiment cluster capacity,
	// which varies across the registry; 20 containers is the Fig. 7a system
	// most experiments run on.
	hsink, err := cli.OpenHistSink(*histOut, *seriesOut, *seriesWin, 20)
	if err != nil {
		return err
	}
	opts.Probe = obs.Multi(sink.Probe(), hsink.Probe())
	finishTrace := func() error {
		if err := sink.Close(); err != nil {
			return err
		}
		if err := hsink.Close(); err != nil {
			return err
		}
		sink.PrintSummary(os.Stdout)
		hsink.PrintSummary(os.Stdout)
		return nil
	}

	runners := map[string]func(experiments.Options) error{
		"table1":    showTableI,
		"fig1":      showFig1,
		"fig3":      showFig3,
		"fig5":      showCluster(80, experiments.Fig5),
		"fig6":      showCluster(50, experiments.Fig6),
		"fig7a":     showFig7a,
		"fig7b":     showFig7b,
		"fig8a":     showFig8a,
		"fig8b":     showFig8b,
		"sjf-error": showSJFError,
		"weights":   showWeights,
		"adaptive":  showAdaptive,
		"tradeoff":  showTradeoff,
		"geo":       showGeo,

		"price-of-obliviousness": showPrice,
		"scale-100k":             showScale100k,
		"scale-1m":               showScale1M,
		"scale-10m":              showScale10M,
		"scale-1m-engine":        showScale1MEngine,
		"scale-10m-engine":       showScale10MEngine,
	}
	if *experiment != "all" {
		runner, ok := runners[*experiment]
		if !ok {
			return fmt.Errorf("unknown experiment %q (valid: %s)",
				*experiment, strings.Join(validExperiments(), ", "))
		}
		if err := timed(*experiment, func() error { return runner(opts) }); err != nil {
			return err
		}
		return finishTrace()
	}
	for _, name := range []string{
		"table1", "fig1", "fig3", "fig5", "fig6",
		"fig7a", "fig7b", "fig8a", "fig8b", "sjf-error", "weights",
		"adaptive", "tradeoff", "geo", "price-of-obliviousness",
	} {
		if err := timed(name, func() error { return runners[name](opts) }); err != nil {
			return err
		}
	}
	return finishTrace()
}

// runReplicated drives the replication engine: the selected experiments fan
// out over the seed range on the worker pool, cached cells are reused, and
// every figure prints as a mean ± 95 % CI table.
func runReplicated(opts experiments.Options, ropts runner.Options, experiment string) error {
	var names []string
	if experiment != "all" {
		names = []string{experiment}
	}
	exps, err := experiments.SelectRegistry(opts, names...)
	if err != nil {
		return err
	}
	start := time.Now()
	report, err := runner.Run(exps, ropts)
	if err != nil {
		return err
	}
	ropts = ropts.Defaults()
	fmt.Printf("== Replicated run: %d experiment(s) x %d seed(s) (base seed %d, %d workers) ==\n\n",
		len(exps), ropts.Seeds, ropts.BaseSeed, ropts.Workers)
	for i := range report.Aggregates {
		a := &report.Aggregates[i]
		fmt.Printf("-- %s (mean ± 95%% CI over %d seed(s)) --\n", a.Experiment, len(a.Seeds))
		fmt.Print(a.Table())
		fmt.Println()
	}
	if ropts.CacheDir != "" {
		fmt.Printf("cache: %d hit(s), %d miss(es) in %s\n", report.CacheHits, report.CacheMisses, ropts.CacheDir)
	}
	fmt.Printf("[replicated run finished in %v]\n", time.Since(start).Round(time.Millisecond))
	return writeCSV("replicated", report.WriteCSV)
}

// csvDir, when non-empty, receives one CSV file per experiment.
var csvDir string

// writeCSV writes one experiment's series to <csvDir>/<name>.csv.
func writeCSV(name string, write func(io.Writer) error) error {
	if csvDir == "" {
		return nil
	}
	path := filepath.Join(csvDir, name+".csv")
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("(wrote %s)\n", path)
	return nil
}

func timed(name string, f func() error) error {
	start := time.Now()
	if err := f(); err != nil {
		return fmt.Errorf("%s: %w", name, err)
	}
	fmt.Printf("[%s finished in %v]\n\n", name, time.Since(start).Round(time.Millisecond))
	return nil
}

func showTableI(experiments.Options) error {
	fmt.Println("== Table I: workload composition ==")
	fmt.Print(experiments.TableIText())
	return nil
}

func showFig1(experiments.Options) error {
	res, err := experiments.Fig1()
	if err != nil {
		return err
	}
	fmt.Println("== Fig. 1: motivating example (sizes 4, 4, 1) ==")
	fmt.Print(res.Table())
	return nil
}

func showFig3(opts experiments.Options) error {
	res, err := experiments.Fig3(opts)
	if err != nil {
		return err
	}
	fmt.Println("== Fig. 3: design options (normalized over FAIR, 50 s interval) ==")
	fmt.Print(res.Table())
	return writeCSV("fig3", res.WriteCSV)
}

func showCluster(interval float64, f func(experiments.Options) (*experiments.ClusterResult, error)) func(experiments.Options) error {
	return func(opts experiments.Options) error {
		res, err := f(opts)
		if err != nil {
			return err
		}
		fmt.Printf("== Cluster experiment, %v s mean arrival interval ==\n", interval)
		fmt.Print(res.Table())
		fmt.Println("slowdowns:")
		fmt.Print(res.SlowdownTable())
		tag := fmt.Sprintf("fig_interval%v", interval)
		if err := writeCSV(tag+"_bins", res.WriteCSV); err != nil {
			return err
		}
		if err := writeCSV(tag+"_cdf", func(w io.Writer) error { return res.WriteCDFCSV(w, 200) }); err != nil {
			return err
		}
		return writeCSV(tag+"_slowdown", func(w io.Writer) error { return res.WriteSlowdownCSV(w, 200) })
	}
}

func showFig7a(opts experiments.Options) error {
	res, err := experiments.Fig7HeavyTailed(opts)
	if err != nil {
		return err
	}
	fmt.Println("== Fig. 7a: heavy-tailed trace (Facebook-like, load 0.9) ==")
	fmt.Print(res.Table())
	return writeCSV("fig7a", res.WriteCSV)
}

func showFig7b(opts experiments.Options) error {
	res, err := experiments.Fig7Uniform(opts)
	if err != nil {
		return err
	}
	fmt.Println("== Fig. 7b: uniform workload (10,000 x size 10,000) ==")
	fmt.Print(res.Table())
	return writeCSV("fig7b", res.WriteCSV)
}

func showFig8a(opts experiments.Options) error {
	res, err := experiments.Fig8Queues(opts)
	if err != nil {
		return err
	}
	fmt.Println("== Fig. 8a: number of queues sweep ==")
	fmt.Print(res.Table())
	return writeCSV("fig8a", res.WriteCSV)
}

func showFig8b(opts experiments.Options) error {
	res, err := experiments.Fig8Thresholds(opts)
	if err != nil {
		return err
	}
	fmt.Println("== Fig. 8b: first-queue threshold sweep ==")
	fmt.Print(res.Table())
	return writeCSV("fig8b", res.WriteCSV)
}

func showSJFError(opts experiments.Options) error {
	res, err := experiments.MotivationSJFError(opts)
	if err != nil {
		return err
	}
	fmt.Println("== Motivation: SJF under size-estimate error (50 s interval) ==")
	fmt.Print(res.Table())
	return nil
}

func showAdaptive(opts experiments.Options) error {
	res, err := experiments.Adaptive(opts)
	if err != nil {
		return err
	}
	fmt.Println("== Extension: adaptive thresholds (heavy-tailed trace) ==")
	fmt.Print(res.Table())
	return nil
}

func showTradeoff(opts experiments.Options) error {
	points, err := experiments.Tradeoff(opts)
	if err != nil {
		return err
	}
	fmt.Println("== Extension: fairness/response tradeoff (LAS_MQ <-> FAIR blend) ==")
	fmt.Print(experiments.TradeoffTable(points))
	return nil
}

func showPrice(opts experiments.Options) error {
	res, err := experiments.PriceOfObliviousness(opts)
	if err != nil {
		return err
	}
	fmt.Println("== Price of obliviousness: information hierarchy on the congested Table-I mix ==")
	fmt.Print(res.Table())
	return writeCSV("price-of-obliviousness", res.WriteCSV)
}

func showScale100k(opts experiments.Options) error {
	res, err := experiments.Scale100k(opts)
	if err != nil {
		return err
	}
	fmt.Println("== Scale tier: heavy-tailed trace at 100,000 jobs ==")
	fmt.Print(res.Table())
	return writeCSV("scale-100k", res.WriteCSV)
}

func showScale1M(opts experiments.Options) error {
	res, err := experiments.Scale1M(opts)
	if err != nil {
		return err
	}
	fmt.Println("== Scale tier: streamed heavy-tailed trace at 1,000,000 jobs, sharded ==")
	fmt.Print(res.Table())
	return writeCSV("scale-1m", res.WriteCSV)
}

func showScale10M(opts experiments.Options) error {
	res, err := experiments.Scale10M(opts)
	if err != nil {
		return err
	}
	fmt.Println("== Scale tier: streamed heavy-tailed trace at 10,000,000 jobs, sharded ==")
	fmt.Print(res.Table())
	return writeCSV("scale-10m", res.WriteCSV)
}

func showScale1MEngine(opts experiments.Options) error {
	res, err := experiments.Scale1MEngine(opts)
	if err != nil {
		return err
	}
	fmt.Println("== Scale tier: 1,000,000 staged jobs on the task engine, sharded, chaos on ==")
	fmt.Print(res.Table())
	return writeCSV("scale-1m-engine", res.WriteCSV)
}

func showScale10MEngine(opts experiments.Options) error {
	res, err := experiments.Scale10MEngine(opts)
	if err != nil {
		return err
	}
	fmt.Println("== Scale tier: 10,000,000 staged jobs on the task engine, sharded, chaos on ==")
	fmt.Print(res.Table())
	return writeCSV("scale-10m-engine", res.WriteCSV)
}

func showGeo(opts experiments.Options) error {
	res, err := experiments.Geo(opts)
	if err != nil {
		return err
	}
	fmt.Println("== Extension: geo-distributed scheduling (3 sites, variable WAN) ==")
	fmt.Print(res.Table())
	return nil
}

func showWeights(opts experiments.Options) error {
	res, err := experiments.AblationWeights(opts)
	if err != nil {
		return err
	}
	fmt.Println("== Ablation: cross-queue weight decay (normalized over FAIR) ==")
	for _, decay := range []float64{1, 1.5, 2, 4, 8} {
		fmt.Printf("decay %-4g -> %.2f\n", decay, res[decay])
	}
	return nil
}
